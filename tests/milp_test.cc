#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "milp/solver.h"

namespace sqpr {
namespace milp {
namespace {

MipResult Solve(const Model& m, SolverOptions opts = {}) {
  Solver solver;
  return solver.Solve(m, opts);
}

TEST(MilpTest, PureLpPassesThrough) {
  Model m;
  m.AddVariable(0, 4, 1.0, /*is_integer=*/false, "x");
  auto r = Solve(m);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, 4.0, 1e-7);
}

TEST(MilpTest, SingleBinaryKnapsackStyle) {
  // max 3a + 2b st a + b <= 1 (binary): choose a.
  Model m;
  const int a = m.AddBinary(3, "a");
  const int b = m.AddBinary(2, "b");
  m.lp.AddRow(-lp::kInf, 1, {{a, 1}, {b, 1}}, "pick1");
  auto r = Solve(m);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, 3.0, 1e-7);
  EXPECT_NEAR(r.x[a], 1.0, 1e-9);
  EXPECT_NEAR(r.x[b], 0.0, 1e-9);
}

TEST(MilpTest, FractionalLpRoundsDownViaBranching) {
  // max x st 2x <= 3, x integer in [0,5] -> x = 1 (LP gives 1.5).
  Model m;
  const int x = m.AddVariable(0, 5, 1, /*is_integer=*/true, "x");
  m.lp.AddRow(-lp::kInf, 3, {{x, 2}}, "cap");
  auto r = Solve(m);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, 1.0, 1e-9);
}

TEST(MilpTest, KnapsackSmall) {
  // Classic: values {10,13,7,8}, weights {3,4,2,3}, cap 7 -> best 23
  // (items 0+1 weight 7).
  Model m;
  const double values[] = {10, 13, 7, 8};
  const double weights[] = {3, 4, 2, 3};
  std::vector<std::pair<int, double>> terms;
  for (int i = 0; i < 4; ++i) {
    const int v = m.AddBinary(values[i]);
    terms.emplace_back(v, weights[i]);
  }
  m.lp.AddRow(-lp::kInf, 7, terms, "weight");
  auto r = Solve(m);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, 23.0, 1e-7);
}

TEST(MilpTest, InfeasibleIntegerProblem) {
  // 0.4 <= x <= 0.6 with x integer has no solution.
  Model m;
  const int x = m.AddVariable(0, 1, 1, /*is_integer=*/true, "x");
  m.lp.AddRow(0.4, 0.6, {{x, 1}}, "band");
  EXPECT_EQ(Solve(m).status, MipStatus::kInfeasible);
}

TEST(MilpTest, LpInfeasibleProblem) {
  Model m;
  const int x = m.AddBinary(1, "x");
  m.lp.AddRow(2, lp::kInf, {{x, 1}}, "impossible");
  EXPECT_EQ(Solve(m).status, MipStatus::kInfeasible);
}

TEST(MilpTest, MixedIntegerContinuous) {
  // max y + x, y integer <= 2.5 constraint, x continuous <= 0.5.
  Model m;
  const int y = m.AddVariable(0, 10, 1, /*is_integer=*/true, "y");
  const int x = m.AddVariable(0, 10, 1, /*is_integer=*/false, "x");
  m.lp.AddRow(-lp::kInf, 2.5, {{y, 1}}, "ycap");
  m.lp.AddRow(-lp::kInf, 0.5, {{x, 1}}, "xcap");
  auto r = Solve(m);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.x[y], 2.0, 1e-9);
  EXPECT_NEAR(r.x[x], 0.5, 1e-7);
}

TEST(MilpTest, EqualityWithBinaries) {
  // a + b + c == 2, max a + 2b + 3c -> b = c = 1.
  Model m;
  const int a = m.AddBinary(1, "a");
  const int b = m.AddBinary(2, "b");
  const int c = m.AddBinary(3, "c");
  m.lp.AddRow(2, 2, {{a, 1}, {b, 1}, {c, 1}}, "exactly2");
  auto r = Solve(m);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, 5.0, 1e-7);
}

TEST(MilpTest, WarmStartAcceptedAsIncumbent) {
  Model m;
  const int a = m.AddBinary(3, "a");
  const int b = m.AddBinary(2, "b");
  m.lp.AddRow(-lp::kInf, 1, {{a, 1}, {b, 1}}, "pick1");
  std::vector<double> warm = {0.0, 1.0};  // feasible, obj 2
  SolverOptions opts;
  opts.warm_start = &warm;
  opts.max_nodes = 0;  // no search at all: only the warm start survives
  auto r = Solve(m, opts);
  ASSERT_TRUE(r.has_solution());
  EXPECT_NEAR(r.objective, 2.0, 1e-9);
}

TEST(MilpTest, InfeasibleWarmStartIgnored) {
  Model m;
  const int a = m.AddBinary(3, "a");
  const int b = m.AddBinary(2, "b");
  m.lp.AddRow(-lp::kInf, 1, {{a, 1}, {b, 1}}, "pick1");
  std::vector<double> warm = {1.0, 1.0};  // violates pick1
  SolverOptions opts;
  opts.warm_start = &warm;
  auto r = Solve(m, opts);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, 3.0, 1e-7);
}

TEST(MilpTest, NodeLimitReturnsIncumbentAsFeasible) {
  // A problem needing search, capped so tightly it cannot prove optimality
  // but the warm start guarantees a solution is returned.
  Model m;
  std::vector<std::pair<int, double>> terms;
  Rng rng(5);
  for (int i = 0; i < 12; ++i) {
    const int v = m.AddBinary(rng.NextDouble(1.0, 3.0));
    terms.emplace_back(v, rng.NextDouble(1.0, 3.0));
  }
  m.lp.AddRow(-lp::kInf, 8, terms, "weight");
  std::vector<double> warm(12, 0.0);  // all-zero is feasible
  SolverOptions opts;
  opts.warm_start = &warm;
  opts.max_nodes = 1;
  // Root cuts plus diving can close this instance inside the single
  // allowed node; switch them off so the limit path is actually taken.
  opts.cuts.enable = false;
  auto r = Solve(m, opts);
  EXPECT_TRUE(r.has_solution());
  EXPECT_EQ(r.status, MipStatus::kFeasible);
  EXPECT_GE(r.best_bound, r.objective - 1e-9);
}

TEST(MilpTest, BestBoundBracketsOptimum) {
  Model m;
  Rng rng(9);
  std::vector<std::pair<int, double>> terms;
  for (int i = 0; i < 10; ++i) {
    const int v = m.AddBinary(rng.NextDouble(1.0, 5.0));
    terms.emplace_back(v, rng.NextDouble(1.0, 4.0));
  }
  m.lp.AddRow(-lp::kInf, 10, terms, "weight");
  auto r = Solve(m);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.best_bound, r.objective, 1e-6);
  EXPECT_TRUE(m.lp.CheckFeasible(r.x, 1e-6).ok());
}

// ------------------------------------------------ Lazy constraint handler

// Forbids the specific point (1, 1) via a no-good cut, mimicking how the
// SQPR planner adds acyclicity cuts only when a candidate violates them.
class ForbidBothHandler : public LazyConstraintHandler {
 public:
  int AddViolatedCuts(const std::vector<double>& x,
                      lp::Model* relaxation) override {
    if (x[0] > 0.5 && x[1] > 0.5 && !added_) {
      relaxation->AddRow(-lp::kInf, 1, {{0, 1.0}, {1, 1.0}}, "nogood");
      added_ = true;
      return 1;
    }
    return 0;
  }
  bool added() const { return added_; }

 private:
  bool added_ = false;
};

TEST(MilpTest, LazyCutExcludesCandidate) {
  // Unconstrained max a + b would pick (1,1); the lazy handler forbids it,
  // leaving an optimum of 1 picked from either single variable.
  Model m;
  m.AddBinary(1, "a");
  m.AddBinary(1, "b");
  ForbidBothHandler handler;
  SolverOptions opts;
  opts.lazy = &handler;
  auto r = Solve(m, opts);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_TRUE(handler.added());
  EXPECT_NEAR(r.objective, 1.0, 1e-7);
}

TEST(MilpTest, StaleBasisDiscardedWhenPresolveColumnsDiffer) {
  // Regression: round 1 solves the model with every binary free; round
  // 2 solves the same skeleton with one variable pinned by its bounds
  // (exactly what SQPR's Rebind does to y/x/z between rounds), so
  // presolve eliminates a column it previously kept. Reusing round 1's
  // root basis verbatim would pair basis statuses with the wrong
  // reduced-space columns; the solver must detect the signature
  // mismatch, discard the basis, and still reach the new optimum.
  auto build = [](bool pin_first) {
    Model m;
    const double values[] = {5, 4, 3, 6, 2};
    const double weights[] = {2, 3, 1, 4, 2};
    std::vector<std::pair<int, double>> terms;
    for (int i = 0; i < 5; ++i) {
      const int v = m.AddBinary(values[i]);
      terms.emplace_back(v, weights[i]);
    }
    if (pin_first) m.lp.SetVariableBounds(0, 1.0, 1.0);
    m.lp.AddRow(-lp::kInf, 6.0, terms, "cap");
    return m;
  };

  Solver solver;
  const Model free_model = build(false);
  const MipResult round1 = solver.Solve(free_model, {});
  ASSERT_EQ(round1.status, MipStatus::kOptimal);
  ASSERT_FALSE(round1.root_basis.empty());

  const Model pinned_model = build(true);
  SolverOptions opts;
  opts.root_warm_basis = &round1.root_basis;
  opts.root_warm_basis_columns = &round1.root_basis_columns;
  const MipResult round2 = solver.Solve(pinned_model, opts);
  ASSERT_EQ(round2.status, MipStatus::kOptimal);
  EXPECT_TRUE(round2.warm_basis_discarded);
  EXPECT_FALSE(round2.used_warm_basis);
  // Cross-check the discarded-basis solve against a cold solve.
  const MipResult cold = solver.Solve(pinned_model, {});
  ASSERT_EQ(cold.status, MipStatus::kOptimal);
  EXPECT_NEAR(round2.objective, cold.objective, 1e-9);
  // And the signature machinery accepts the basis when columns *do*
  // match: re-solving the pinned model with its own harvest warm-starts.
  SolverOptions again;
  again.root_warm_basis = &round2.root_basis;
  again.root_warm_basis_columns = &round2.root_basis_columns;
  const MipResult round3 = solver.Solve(pinned_model, again);
  ASSERT_EQ(round3.status, MipStatus::kOptimal);
  EXPECT_TRUE(round3.used_warm_basis);
  EXPECT_NEAR(round3.objective, cold.objective, 1e-9);
}

TEST(MilpTest, DeadlineZeroStillReturnsWarmStart) {
  Model m;
  const int a = m.AddBinary(1, "a");
  (void)a;
  std::vector<double> warm = {0.0};
  SolverOptions opts;
  opts.warm_start = &warm;
  opts.deadline = Deadline::AfterMillis(0);
  auto r = Solve(m, opts);
  EXPECT_TRUE(r.has_solution());
}

// ------------------------------------- Randomised exhaustive cross-check

struct RandomMipCase {
  int num_vars;
  int num_rows;
  uint64_t seed;
};

class RandomBinaryMipTest : public ::testing::TestWithParam<RandomMipCase> {};

// Brute-force enumeration over all 2^n binary points must agree with
// branch-and-bound on both feasibility and the optimal objective.
TEST_P(RandomBinaryMipTest, MatchesBruteForce) {
  const RandomMipCase& tc = GetParam();
  Rng rng(tc.seed);
  Model m;
  for (int v = 0; v < tc.num_vars; ++v) {
    m.AddBinary(rng.NextDouble(-2.0, 5.0));
  }
  for (int r = 0; r < tc.num_rows; ++r) {
    std::vector<std::pair<int, double>> terms;
    for (int v = 0; v < tc.num_vars; ++v) {
      if (rng.NextBool(0.5)) terms.emplace_back(v, rng.NextDouble(-1.0, 3.0));
    }
    if (terms.empty()) continue;
    m.lp.AddRow(-lp::kInf, rng.NextDouble(1.0, 5.0), std::move(terms));
  }

  // Brute force.
  double best = -lp::kInf;
  for (int mask = 0; mask < (1 << tc.num_vars); ++mask) {
    std::vector<double> x(tc.num_vars);
    for (int v = 0; v < tc.num_vars; ++v) x[v] = (mask >> v) & 1;
    if (m.lp.CheckFeasible(x, 1e-9).ok()) {
      best = std::max(best, m.lp.ObjectiveValue(x));
    }
  }

  auto r = Solve(m);
  if (best == -lp::kInf) {
    EXPECT_EQ(r.status, MipStatus::kInfeasible) << "seed " << tc.seed;
  } else {
    ASSERT_EQ(r.status, MipStatus::kOptimal) << "seed " << tc.seed;
    EXPECT_NEAR(r.objective, best, 1e-6) << "seed " << tc.seed;
    EXPECT_TRUE(m.lp.CheckFeasible(r.x, 1e-6).ok()) << "seed " << tc.seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomBinaryMipTest,
    ::testing::Values(RandomMipCase{4, 2, 21}, RandomMipCase{6, 3, 22},
                      RandomMipCase{8, 4, 23}, RandomMipCase{10, 5, 24},
                      RandomMipCase{12, 6, 25}, RandomMipCase{12, 2, 26},
                      RandomMipCase{14, 7, 27}, RandomMipCase{10, 12, 28},
                      RandomMipCase{8, 1, 29}, RandomMipCase{15, 8, 30}));

// Randomised mixed problems with equality rows through a known integral
// point: B&B must find a solution at least as good as that point.
class RandomMixedMipTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomMixedMipTest, BeatsConstructedFeasiblePoint) {
  Rng rng(GetParam());
  Model m;
  const int n = 10;
  std::vector<double> ref(n);
  for (int v = 0; v < n; ++v) {
    const bool is_int = rng.NextBool(0.6);
    m.AddVariable(0, 3, rng.NextDouble(-1.0, 2.0), is_int);
    ref[v] = is_int ? static_cast<double>(rng.NextInt(0, 3))
                    : rng.NextDouble(0.0, 3.0);
  }
  for (int r = 0; r < 5; ++r) {
    std::vector<std::pair<int, double>> terms;
    double activity = 0.0;
    for (int v = 0; v < n; ++v) {
      if (rng.NextBool(0.4)) {
        const double coef = rng.NextDouble(0.2, 2.0);
        terms.emplace_back(v, coef);
        activity += coef * ref[v];
      }
    }
    if (terms.empty()) continue;
    m.lp.AddRow(-lp::kInf, activity + rng.NextDouble(0.0, 2.0),
                std::move(terms));
  }
  auto r = Solve(m);
  ASSERT_EQ(r.status, MipStatus::kOptimal) << "seed " << GetParam();
  EXPECT_GE(r.objective, m.lp.ObjectiveValue(ref) - 1e-6)
      << "seed " << GetParam();
  EXPECT_TRUE(m.lp.CheckFeasible(r.x, 1e-6).ok());
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomMixedMipTest,
                         ::testing::Range<uint64_t>(200, 215));

}  // namespace
}  // namespace milp
}  // namespace sqpr

namespace sqpr {
namespace milp {
namespace {

TEST(MilpBranchPriorityTest, HighPriorityVariablePlacedFirst) {
  // Priorities do not change the optimum, only the search order; verify
  // correctness is preserved with mixed priorities.
  Model m;
  Rng rng(31);
  std::vector<std::pair<int, double>> terms;
  for (int i = 0; i < 10; ++i) {
    const int v = m.AddVariable(0, 1, rng.NextDouble(1.0, 3.0), true, "",
                                /*priority=*/i % 3);
    terms.emplace_back(v, rng.NextDouble(1.0, 2.0));
  }
  m.lp.AddRow(-lp::kInf, 6, terms, "cap");
  Solver solver;
  auto with_priorities = solver.Solve(m, {});
  ASSERT_EQ(with_priorities.status, MipStatus::kOptimal);

  Model flat = m;
  std::fill(flat.branch_priority.begin(), flat.branch_priority.end(), 0);
  auto without = solver.Solve(flat, {});
  ASSERT_EQ(without.status, MipStatus::kOptimal);
  EXPECT_NEAR(with_priorities.objective, without.objective, 1e-6);
}

// Fractional-cut handler: forbids x0 + x1 >= 1.5 via cuts generated on
// fractional points, mimicking SQPR's fractional cycle separation.
class FractionalCutter : public LazyConstraintHandler {
 public:
  int AddViolatedCuts(const std::vector<double>&, lp::Model*) override {
    return 0;
  }
  int AddFractionalCuts(const std::vector<double>& x,
                        lp::Model* relaxation) override {
    if (added_ || x[0] + x[1] <= 1.0 + 1e-6) return 0;
    relaxation->AddRow(-lp::kInf, 1.0, {{0, 1.0}, {1, 1.0}}, "fcut");
    added_ = true;
    return 1;
  }
  bool added() const { return added_; }

 private:
  bool added_ = false;
};

TEST(MilpFractionalCutTest, CutsApplyDuringSearch) {
  Model m;
  m.AddBinary(1, "a");
  m.AddBinary(1, "b");
  // LP optimum is (1,1); the fractional cutter caps the pair sum at 1.
  FractionalCutter handler;
  SolverOptions options;
  options.lazy = &handler;
  Solver solver;
  auto r = solver.Solve(m, options);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_TRUE(handler.added());
  EXPECT_NEAR(r.objective, 1.0, 1e-7);
}

TEST(MilpDivingTest, FindsIncumbentOnFirstNode) {
  // A pure covering problem the dive solves without branching: pick at
  // least one of each pair.
  Model m;
  Rng rng(17);
  for (int i = 0; i < 12; ++i) m.AddBinary(-rng.NextDouble(1.0, 2.0));
  for (int i = 0; i < 12; i += 2) {
    m.lp.AddRow(1, lp::kInf,
                {{i, 1.0}, {i + 1, 1.0}}, "pair" + std::to_string(i));
  }
  Solver solver;
  auto r = solver.Solve(m, {});
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_TRUE(m.lp.CheckFeasible(r.x, 1e-6).ok());
  // Optimal picks exactly the cheaper element of each pair.
  int picked = 0;
  for (double v : r.x) picked += v > 0.5;
  EXPECT_EQ(picked, 6);
}

}  // namespace
}  // namespace milp
}  // namespace sqpr
