#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include <atomic>

#include "common/deadline.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/task_queue.h"
#include "common/zipf.h"

namespace sqpr {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad host count");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad host count");
}

TEST(StatusTest, AllFactoryCodesRoundTrip) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::Infeasible("x").IsInfeasible());
  EXPECT_TRUE(Status::DeadlineExceeded("x").IsDeadlineExceeded());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_EQ(Status::Internal("boom").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("no stream");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r = std::vector<int>{1, 2, 3};
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

// ------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.NextUint64() == b.NextUint64();
  EXPECT_LT(same, 2);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.NextBounded(17);
    EXPECT_LT(v, 17u);
  }
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.NextInt(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all values hit
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, DoubleMeanNearHalf) {
  Rng rng(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(9);
  Rng child = parent.Fork(1);
  Rng child2 = parent.Fork(1);  // parent advanced, so a different stream
  EXPECT_NE(child.NextUint64(), child2.NextUint64());
}

// ------------------------------------------------------------------ Zipf

TEST(ZipfTest, UniformWhenSZero) {
  ZipfSampler z(10, 0.0);
  for (size_t k = 0; k < 10; ++k) EXPECT_NEAR(z.Probability(k), 0.1, 1e-12);
}

TEST(ZipfTest, ProbabilitiesSumToOne) {
  ZipfSampler z(100, 1.0);
  double total = 0;
  for (size_t k = 0; k < 100; ++k) total += z.Probability(k);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfTest, RankOneTwiceAsLikelyAsRankTwoAtSOne) {
  ZipfSampler z(50, 1.0);
  EXPECT_NEAR(z.Probability(0) / z.Probability(1), 2.0, 1e-9);
}

TEST(ZipfTest, HigherSkewConcentratesMass) {
  ZipfSampler flat(100, 0.5), skewed(100, 2.0);
  EXPECT_GT(skewed.Probability(0), flat.Probability(0));
}

TEST(ZipfTest, SampleFrequenciesTrackProbabilities) {
  ZipfSampler z(20, 1.0);
  Rng rng(42);
  std::vector<int> counts(20, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[z.Sample(rng)];
  for (size_t k = 0; k < 5; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / n, z.Probability(k), 0.01)
        << "rank " << k;
  }
}

TEST(ZipfTest, SampleAlwaysInRange) {
  ZipfSampler z(7, 1.5);
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(z.Sample(rng), 7u);
}

// ----------------------------------------------------------------- Stats

TEST(StatsTest, RunningStatsBasics) {
  RunningStats s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.Add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 1.25, 1e-12);
}

TEST(StatsTest, RunningStatsEmpty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(StatsTest, PercentileNearestRank) {
  std::vector<double> v = {5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 1.0);
}

TEST(StatsTest, EmpiricalCdfMonotone) {
  auto cdf = EmpiricalCdf({3, 1, 2, 2, 5});
  ASSERT_EQ(cdf.size(), 4u);  // tie on value 2 collapsed
  for (size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GT(cdf[i].first, cdf[i - 1].first);
    EXPECT_GT(cdf[i].second, cdf[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(StatsTest, EmpiricalCdfTies) {
  auto cdf = EmpiricalCdf({2, 2, 2});
  ASSERT_EQ(cdf.size(), 1u);
  EXPECT_DOUBLE_EQ(cdf[0].second, 1.0);
}

// -------------------------------------------------------------- Deadline

TEST(DeadlineTest, InfiniteNeverExpires) {
  Deadline d;
  EXPECT_FALSE(d.Expired());
  EXPECT_FALSE(d.is_finite());
}

TEST(DeadlineTest, PastDeadlineExpires) {
  Deadline d = Deadline::AfterMillis(0);
  EXPECT_TRUE(d.is_finite());
  EXPECT_TRUE(d.Expired());
}

TEST(DeadlineTest, FutureDeadlineNotYetExpired) {
  Deadline d = Deadline::AfterMillis(60000);
  EXPECT_FALSE(d.Expired());
  EXPECT_GT(d.RemainingMillis(), 1000);
}

// ------------------------------------------------------ ThreadPool/Latch

TEST(LatchTest, WaitReturnsAfterAllCountDowns) {
  Latch latch(2);
  EXPECT_FALSE(latch.TryWait());
  latch.CountDown();
  EXPECT_FALSE(latch.TryWait());
  latch.CountDown();
  EXPECT_TRUE(latch.TryWait());
  latch.Wait();  // already released: returns immediately
  latch.CountDown();  // past zero: no-op
  EXPECT_TRUE(latch.TryWait());
}

TEST(LatchTest, ZeroCountIsImmediatelyReleased) {
  Latch latch(0);
  EXPECT_TRUE(latch.TryWait());
  latch.Wait();
}

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  constexpr int kTasks = 64;
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::atomic<int> sum{0};
  Latch latch(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([i, &sum, &latch] {
      sum.fetch_add(i + 1);
      latch.CountDown();
    });
  }
  latch.Wait();
  EXPECT_EQ(sum.load(), kTasks * (kTasks + 1) / 2);
}

TEST(ThreadPoolTest, LatchPublishesResultsWrittenBeforeCountDown) {
  // The pattern the planning service relies on: workers fill distinct
  // slots, the waiter reads them after Wait() with no further locking.
  ThreadPool pool(3);
  std::vector<int> slots(24, -1);
  Latch latch(static_cast<int>(slots.size()));
  for (size_t i = 0; i < slots.size(); ++i) {
    pool.Submit([i, &slots, &latch] {
      slots[i] = static_cast<int>(i) * 3;
      latch.CountDown();
    });
  }
  latch.Wait();
  for (size_t i = 0; i < slots.size(); ++i) {
    EXPECT_EQ(slots[i], static_cast<int>(i) * 3);
  }
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 16; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1); });
    }
  }  // destructor joins only after every queued task ran
  EXPECT_EQ(ran.load(), 16);
}

}  // namespace
}  // namespace sqpr
