#include "milp/presolve.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "milp/solver.h"

namespace sqpr {
namespace milp {
namespace {

TEST(PresolveTest, FixedColumnsAreRemovedAndFolded) {
  // x pinned at 2 contributes 2 to the row and 6 to the objective.
  Model m;
  const int x = m.AddVariable(2, 2, 3, /*is_integer=*/false, "x");
  const int y = m.AddVariable(0, 10, 1, /*is_integer=*/false, "y");
  m.lp.AddRow(-lp::kInf, 7, {{x, 1}, {y, 1}}, "cap");

  Presolver pre;
  const PresolveStats stats = pre.Apply(m);
  ASSERT_FALSE(stats.proven_infeasible);
  EXPECT_EQ(stats.fixed_columns, 1);
  EXPECT_EQ(pre.reduced().lp.num_variables(), 1);
  EXPECT_DOUBLE_EQ(pre.objective_constant(), 6.0);
  // Propagation folds the pinned 2 into y's bound (y <= 5), after which
  // the row is redundant and dropped entirely.
  EXPECT_EQ(pre.reduced().lp.num_rows(), 0);
  EXPECT_DOUBLE_EQ(pre.reduced().lp.variable_ub(0), 5.0);

  const std::vector<double> full = pre.Postsolve({4.0});
  EXPECT_DOUBLE_EQ(full[x], 2.0);
  EXPECT_DOUBLE_EQ(full[y], 4.0);
}

TEST(PresolveTest, SingletonRowBecomesBound) {
  Model m;
  const int x = m.AddVariable(0, 100, 1, /*is_integer=*/false, "x");
  m.lp.AddRow(-lp::kInf, 9, {{x, 3}}, "cap");  // x <= 3

  Presolver pre;
  const PresolveStats stats = pre.Apply(m);
  ASSERT_FALSE(stats.proven_infeasible);
  EXPECT_EQ(stats.singleton_rows, 1);
  EXPECT_EQ(pre.reduced().lp.num_rows(), 0);
  ASSERT_EQ(pre.reduced().lp.num_variables(), 1);
  EXPECT_DOUBLE_EQ(pre.reduced().lp.variable_ub(0), 3.0);
}

TEST(PresolveTest, NegativeCoefficientSingleton) {
  Model m;
  const int x = m.AddVariable(-50, 50, 1, /*is_integer=*/false, "x");
  m.lp.AddRow(-6, lp::kInf, {{x, -2}}, "floor");  // -2x >= -6 -> x <= 3

  Presolver pre;
  ASSERT_FALSE(pre.Apply(m).proven_infeasible);
  ASSERT_EQ(pre.reduced().lp.num_variables(), 1);
  EXPECT_DOUBLE_EQ(pre.reduced().lp.variable_ub(0), 3.0);
  EXPECT_DOUBLE_EQ(pre.reduced().lp.variable_lb(0), -50.0);
}

TEST(PresolveTest, IntegerBandWithNoLatticePointIsInfeasible) {
  Model m;
  const int x = m.AddVariable(0, 1, 1, /*is_integer=*/true, "x");
  m.lp.AddRow(0.4, 0.6, {{x, 1}}, "band");
  Presolver pre;
  EXPECT_TRUE(pre.Apply(m).proven_infeasible);
}

TEST(PresolveTest, IntegerBoundsRoundInwardAndPin) {
  // 0.3 <= x <= 1.7 integral -> x in {1}; pinned.
  Model m;
  const int x = m.AddVariable(0.3, 1.7, 5, /*is_integer=*/true, "x");
  (void)x;
  Presolver pre;
  const PresolveStats stats = pre.Apply(m);
  ASSERT_FALSE(stats.proven_infeasible);
  EXPECT_EQ(stats.fixed_columns, 1);
  EXPECT_DOUBLE_EQ(pre.objective_constant(), 5.0);
  EXPECT_EQ(pre.reduced().lp.num_variables(), 0);
}

TEST(PresolveTest, ActivityPropagationTightensAndCascades) {
  // Binary chain: a + b <= 1 with a pinned to 1 forces b = 0, which in
  // turn satisfies b + c <= 1 trivially (row removed), leaving only c.
  Model m;
  const int a = m.AddVariable(1, 1, 0, /*is_integer=*/true, "a");
  const int b = m.AddBinary(1, "b");
  const int c = m.AddBinary(1, "c");
  m.lp.AddRow(-lp::kInf, 1, {{a, 1}, {b, 1}}, "ab");
  m.lp.AddRow(-lp::kInf, 1, {{b, 1}, {c, 1}}, "bc");

  Presolver pre;
  const PresolveStats stats = pre.Apply(m);
  ASSERT_FALSE(stats.proven_infeasible);
  EXPECT_EQ(stats.fixed_columns, 2);  // a (input) and b (propagated)
  ASSERT_EQ(pre.reduced().lp.num_variables(), 1);
  EXPECT_EQ(pre.reduced().lp.num_rows(), 0);
  const std::vector<double> full = pre.Postsolve({1.0});
  EXPECT_DOUBLE_EQ(full[a], 1.0);
  EXPECT_DOUBLE_EQ(full[b], 0.0);
  EXPECT_DOUBLE_EQ(full[c], 1.0);
}

TEST(PresolveTest, RowInfeasibleFromActivityBounds) {
  Model m;
  const int x = m.AddBinary(1, "x");
  const int y = m.AddBinary(1, "y");
  m.lp.AddRow(3, lp::kInf, {{x, 1}, {y, 1}}, "impossible");
  Presolver pre;
  EXPECT_TRUE(pre.Apply(m).proven_infeasible);
}

TEST(PresolveTest, ProjectToReducedRejectsPinnedDisagreement) {
  Model m;
  const int x = m.AddVariable(2, 2, 0, /*is_integer=*/false, "x");
  const int y = m.AddVariable(0, 5, 1, /*is_integer=*/false, "y");
  (void)x;
  (void)y;
  Presolver pre;
  ASSERT_FALSE(pre.Apply(m).proven_infeasible);
  std::vector<double> reduced;
  EXPECT_TRUE(pre.ProjectToReduced({2.0, 3.0}, &reduced));
  ASSERT_EQ(reduced.size(), 1u);
  EXPECT_DOUBLE_EQ(reduced[0], 3.0);
  EXPECT_FALSE(pre.ProjectToReduced({1.0, 3.0}, &reduced));
}

TEST(PresolveTest, TranslateRowFoldsPinnedTerms) {
  Model m;
  const int x = m.AddVariable(3, 3, 0, /*is_integer=*/false, "x");
  const int y = m.AddVariable(0, 5, 1, /*is_integer=*/false, "y");
  Presolver pre;
  ASSERT_FALSE(pre.Apply(m).proven_infeasible);

  std::vector<std::pair<int, double>> reduced_terms;
  double lb, ub;
  pre.TranslateRow({{x, 2.0}, {y, 1.0}}, 4.0, 10.0, &reduced_terms, &lb, &ub);
  ASSERT_EQ(reduced_terms.size(), 1u);
  EXPECT_EQ(reduced_terms[0].first, pre.column_map(y));
  EXPECT_DOUBLE_EQ(lb, -2.0);  // 4 - 2*3
  EXPECT_DOUBLE_EQ(ub, 4.0);   // 10 - 2*3
}

// ---------------------------------------------------------------------
// Property sweep: presolve must never change the optimal objective.
// Random binary knapsack/covering mixes, with a slice of variables
// pre-pinned the way SQPR's §IV-A reduction pins out-of-closure
// decisions.
// ---------------------------------------------------------------------

class PresolveEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(PresolveEquivalence, SameOptimumWithAndWithoutPresolve) {
  Rng rng(0x9e3779b9u + static_cast<uint64_t>(GetParam()));
  Model m;
  const int n = 6 + static_cast<int>(rng.NextUint64() % 6);  // 6..11 vars
  std::vector<int> vars;
  for (int i = 0; i < n; ++i) {
    const double obj = 1.0 + 9.0 * rng.NextDouble();
    const int v = m.AddBinary(obj);
    vars.push_back(v);
    if (rng.NextDouble() < 0.3) {
      // Pin ~30% of columns like the planner's variable fixing does.
      const double val = rng.NextDouble() < 0.5 ? 0.0 : 1.0;
      m.lp.SetVariableBounds(v, val, val);
    }
  }
  const int rows = 3 + static_cast<int>(rng.NextUint64() % 4);
  for (int r = 0; r < rows; ++r) {
    std::vector<std::pair<int, double>> terms;
    for (int v : vars) {
      if (rng.NextDouble() < 0.5) {
        terms.emplace_back(v, 1.0 + 4.0 * rng.NextDouble());
      }
    }
    if (terms.empty()) continue;
    double cap = 0.0;
    for (const auto& [v, a] : terms) cap += a;
    if (rng.NextDouble() < 0.7) {
      m.lp.AddRow(-lp::kInf, 0.6 * cap, terms, "knap");
    } else {
      m.lp.AddRow(0.2 * cap, lp::kInf, terms, "cover");
    }
  }

  SolverOptions with, without;
  with.presolve = true;
  without.presolve = false;
  Solver solver;
  const MipResult a = solver.Solve(m, with);
  const MipResult b = solver.Solve(m, without);
  ASSERT_EQ(a.status, b.status) << "instance " << GetParam();
  if (a.has_solution()) {
    EXPECT_NEAR(a.objective, b.objective, 1e-6) << "instance " << GetParam();
    EXPECT_TRUE(m.lp.CheckFeasible(a.x, 1e-6).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, PresolveEquivalence,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace milp
}  // namespace sqpr
