// Tests for the continuous planning service: deterministic event loop,
// plan-reuse cache, bounded re-planning rounds, host failure/rejoin
// fallout and the monitor→re-plan round trip (§IV-B/§IV-C).

#include "service/planning_service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "model/catalog.h"
#include "model/cluster.h"
#include "service/event_loop.h"
#include "service/plan_cache.h"
#include "service/replan_policy.h"
#include "sim/cluster_sim.h"
#include "workload/generator.h"
#include "workload/trace.h"

namespace sqpr {
namespace {

// ---- Event queue / virtual clock. ----

TEST(EventQueueTest, PopsInTimestampThenInsertionOrder) {
  EventQueue queue;
  queue.Push(Event::Tick(30));
  queue.Push(Event::Arrival(10, 1));
  queue.Push(Event::Departure(10, 2));  // same time as the arrival
  queue.Push(Event::Tick(20));

  EXPECT_EQ(queue.NextTime(), 10);
  Event first = queue.Pop();
  EXPECT_EQ(first.kind, EventKind::kQueryArrival);  // inserted before
  Event second = queue.Pop();
  EXPECT_EQ(second.kind, EventKind::kQueryDeparture);
  EXPECT_EQ(queue.Pop().time_ms, 20);
  EXPECT_EQ(queue.Pop().time_ms, 30);
  EXPECT_TRUE(queue.empty());
}

TEST(VirtualClockTest, NeverMovesBackwards) {
  VirtualClock clock;
  clock.AdvanceTo(100);
  clock.AdvanceTo(50);
  EXPECT_EQ(clock.now_ms(), 100);
}

// ---- Re-planning scheduler. ----

TEST(ReplanSchedulerTest, DeduplicatesAndBoundsRounds) {
  ReplanPolicyOptions options;
  options.max_queries_per_round = 2;
  ReplanScheduler scheduler(options);
  EXPECT_TRUE(scheduler.Enqueue(7));
  EXPECT_FALSE(scheduler.Enqueue(7));  // already pending
  EXPECT_TRUE(scheduler.Enqueue(8));
  EXPECT_TRUE(scheduler.Enqueue(9));
  EXPECT_EQ(scheduler.pending(), 3u);

  const std::vector<StreamId> round1 = scheduler.NextRound();
  ASSERT_EQ(round1.size(), 2u);  // bounded
  EXPECT_EQ(round1[0], 7);       // FIFO
  EXPECT_EQ(round1[1], 8);
  // Popped queries can be enqueued again.
  EXPECT_TRUE(scheduler.Enqueue(7));
  scheduler.Discard(7);
  const std::vector<StreamId> round2 = scheduler.NextRound();
  ASSERT_EQ(round2.size(), 1u);
  EXPECT_EQ(round2[0], 9);
  EXPECT_FALSE(scheduler.HasPending());
}

// Round composition is pinned at enqueue time: a discard shrinks its
// round without pulling queries forward from later rounds, and an
// unwound round requeued at the front pops again as the same group.
// Both properties keep round boundaries — and so commit points —
// identical across pipeline depths.
TEST(ReplanSchedulerTest, DiscardAndRequeuePreserveRoundBoundaries) {
  ReplanPolicyOptions options;
  options.max_queries_per_round = 2;
  ReplanScheduler scheduler(options);
  for (StreamId q : {1, 2, 3, 4, 5}) EXPECT_TRUE(scheduler.Enqueue(q));
  // Groups cut at enqueue: [1,2] [3,4] [5].

  scheduler.Discard(2);
  const std::vector<StreamId> first = scheduler.NextRound();
  ASSERT_EQ(first.size(), 1u) << "discard must not re-pack 3 forward";
  EXPECT_EQ(first[0], 1);

  // Unwind simulation: the round goes back to the front and is popped
  // again verbatim, ahead of the groups behind it.
  scheduler.Requeue(first);
  const std::vector<StreamId> again = scheduler.NextRound();
  ASSERT_EQ(again.size(), 1u);
  EXPECT_EQ(again[0], 1);

  const std::vector<StreamId> second = scheduler.NextRound();
  ASSERT_EQ(second.size(), 2u);
  EXPECT_EQ(second[0], 3);
  EXPECT_EQ(second[1], 4);
  // A requeue races a fresh enqueue of the same query: the pending copy
  // wins, no duplicates.
  EXPECT_TRUE(scheduler.Enqueue(3));
  scheduler.Requeue(second);
  const std::vector<StreamId> third = scheduler.NextRound();
  ASSERT_EQ(third.size(), 1u);
  EXPECT_EQ(third[0], 4);
  EXPECT_EQ(scheduler.pending(), 2u);  // 5 and the re-enqueued 3
}

// ---- Plan cache. ----

TEST(PlanCacheTest, IndexesMaterializedStreamsBySignature) {
  Catalog catalog(CostModel{});
  Cluster cluster(2, HostSpec{10.0, 1000.0, 1000.0, ""}, 1000.0);
  const StreamId a = catalog.AddBaseStream(0, 10.0, "a");
  const StreamId b = catalog.AddBaseStream(0, 10.0, "b");
  const StreamId c = catalog.AddBaseStream(1, 10.0, "c");
  const OperatorId join_ab = *catalog.JoinOperator(a, b);
  const StreamId ab = catalog.op(join_ab).output;
  const StreamId abc = *catalog.CanonicalJoinStream({a, b, c});

  Deployment dep(&cluster, &catalog);
  ASSERT_TRUE(dep.PlaceOperator(0, join_ab).ok());

  PlanCache cache(&catalog);
  cache.Rebuild(dep);

  PlanCache::Hit hit;
  ASSERT_TRUE(cache.FindMaterialized(ab, &hit));
  ASSERT_EQ(hit.hosts.size(), 1u);
  EXPECT_EQ(hit.hosts[0], 0);

  // Exact hit for ab itself.
  PlanCache::Lookup exact = cache.OnArrival(ab);
  EXPECT_TRUE(exact.exact);
  EXPECT_FALSE(exact.served);

  // abc gets ab as a canonical proper-subquery candidate.
  PlanCache::Lookup partial = cache.OnArrival(abc);
  EXPECT_FALSE(partial.exact);
  ASSERT_EQ(partial.partial.size(), 1u);
  EXPECT_EQ(partial.partial[0].stream, ab);

  EXPECT_EQ(cache.exact_hits(), 1);
  EXPECT_EQ(cache.partial_hits(), 1);

  // A flow materialises the stream at the receiving host too.
  ASSERT_TRUE(dep.AddFlow(0, 1, ab).ok());
  cache.Rebuild(dep);
  ASSERT_TRUE(cache.FindMaterialized(ab, &hit));
  EXPECT_EQ(hit.hosts.size(), 2u);
}

TEST(PlanCacheTest, RebuildSkipsScanWhenDeploymentVersionUnchanged) {
  Catalog catalog(CostModel{});
  Cluster cluster(2, HostSpec{10.0, 1000.0, 1000.0, ""}, 1000.0);
  const StreamId a = catalog.AddBaseStream(0, 10.0, "a");
  const StreamId b = catalog.AddBaseStream(0, 10.0, "b");
  const OperatorId join_ab = *catalog.JoinOperator(a, b);

  Deployment dep(&cluster, &catalog);
  ASSERT_TRUE(dep.PlaceOperator(0, join_ab).ok());

  PlanCache cache(&catalog);
  cache.Rebuild(dep);
  EXPECT_EQ(cache.rebuilds(), 1);
  EXPECT_EQ(cache.noop_skips(), 0);

  // Boundary: a rebuild request against an unchanged deployment (the
  // repeat-arrival dedup shape) must skip the fixpoint scan.
  cache.Rebuild(dep);
  EXPECT_EQ(cache.rebuilds(), 1);
  EXPECT_EQ(cache.noop_skips(), 1);

  // Any real mutation re-arms the scan.
  ASSERT_TRUE(dep.AddFlow(0, 1, catalog.op(join_ab).output).ok());
  cache.Rebuild(dep);
  EXPECT_EQ(cache.rebuilds(), 2);
  EXPECT_EQ(cache.noop_skips(), 1);
}

TEST(PlanCacheTest, ApplyDeltaGroundsAdditionsTransitively) {
  Catalog catalog(CostModel{});
  Cluster cluster(3, HostSpec{10.0, 1000.0, 1000.0, ""}, 1000.0);
  const StreamId a = catalog.AddBaseStream(0, 10.0, "a");
  const StreamId b = catalog.AddBaseStream(0, 10.0, "b");
  const StreamId c = catalog.AddBaseStream(1, 10.0, "c");
  const OperatorId join_ab = *catalog.JoinOperator(a, b);
  const StreamId ab = catalog.op(join_ab).output;
  const OperatorId join_ab_c = *catalog.JoinOperator(ab, c);
  const StreamId abc = catalog.op(join_ab_c).output;

  Deployment dep(&cluster, &catalog);
  PlanCache cache(&catalog);
  cache.Rebuild(dep);  // empty baseline the deltas extend
  const int64_t rebuilds_before = cache.rebuilds();

  // One additive delta: ab produced on host 0, shipped to host 1 where
  // it joins c — the flow and the downstream operator must ground
  // transitively off the worklist, not via a rescan.
  ASSERT_TRUE(dep.PlaceOperator(0, join_ab).ok());
  ASSERT_TRUE(dep.AddFlow(0, 1, ab).ok());
  ASSERT_TRUE(dep.PlaceOperator(1, join_ab_c).ok());
  ASSERT_TRUE(dep.SetServing(abc, 1).ok());
  DeploymentDelta delta;
  delta.ops_added = {{0, join_ab}, {1, join_ab_c}};
  delta.flows_added = {{0, 1, ab}};
  delta.serving_changes.push_back({abc, kInvalidHost, 1});
  EXPECT_TRUE(cache.ApplyDelta(dep, delta));
  EXPECT_EQ(cache.rebuilds(), rebuilds_before);
  EXPECT_EQ(cache.delta_updates(), 1);

  PlanCache fresh(&catalog);
  fresh.Rebuild(dep);
  EXPECT_EQ(cache.DebugDump(), fresh.DebugDump());

  PlanCache::Lookup lookup = cache.OnArrival(abc);
  EXPECT_TRUE(lookup.exact);
  EXPECT_TRUE(lookup.served);

  // A delta carrying removals is not monotone: the cache must fall back
  // to a full rebuild and still match from-scratch state.
  ASSERT_TRUE(dep.ClearServing(abc).ok());
  ASSERT_TRUE(dep.RemoveOperator(1, join_ab_c).ok());
  DeploymentDelta removal;
  removal.ops_removed = {{1, join_ab_c}};
  removal.serving_changes.push_back({abc, 1, kInvalidHost});
  EXPECT_FALSE(cache.ApplyDelta(dep, removal));
  EXPECT_EQ(cache.rebuilds(), rebuilds_before + 1);
  PlanCache fresh2(&catalog);
  fresh2.Rebuild(dep);
  EXPECT_EQ(cache.DebugDump(), fresh2.DebugDump());
}

// ---- Service scaffolding shared by the scenario tests. ----

struct ServiceFixture {
  ServiceFixture(int hosts, double cpu, int bases,
                 ServiceOptions options = {})
      : cluster(hosts, HostSpec{cpu, 500.0, 500.0, ""}, 1000.0),
        catalog(CostModel{}) {
    for (int i = 0; i < bases; ++i) {
      base.push_back(catalog.AddBaseStream(i % hosts, 10.0));
    }
    // Keep unit solves snappy — but only when the test did not
    // configure the solver itself: the determinism tests pass a huge
    // deadline with a node bound, and clobbering it here would make
    // them wall-clock-bounded (flaky across machine load, e.g. under
    // TSan).
    if (options.planner.timeout_ms == SqprPlanner::Options{}.timeout_ms) {
      options.planner.timeout_ms = 200;
    }
    service = std::make_unique<PlanningService>(&cluster, &catalog, options);
  }

  StreamId Join(std::initializer_list<int> leaves) {
    std::vector<StreamId> ids;
    for (int i : leaves) ids.push_back(base[i]);
    return *catalog.CanonicalJoinStream(std::move(ids));
  }

  EventOutcome StepOne(Event event) {
    EXPECT_TRUE(service->Enqueue(event).ok());
    Result<EventOutcome> outcome = service->Step();
    EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
    return outcome.ok() ? *outcome : EventOutcome{};
  }

  Cluster cluster;
  Catalog catalog;
  std::vector<StreamId> base;
  std::unique_ptr<PlanningService> service;
};

TEST(PlanningServiceTest, ArrivalDepartureLifecycle) {
  ServiceFixture fx(2, 2.0, 4);
  const StreamId q = fx.Join({0, 1});

  EventOutcome arrival = fx.StepOne(Event::Arrival(10, q));
  EXPECT_TRUE(arrival.admitted);
  EXPECT_FALSE(arrival.already_served);
  ASSERT_EQ(fx.service->admitted_queries().size(), 1u);

  // Repeat arrival dedups via the cache/planner (free admission).
  EventOutcome repeat = fx.StepOne(Event::Arrival(20, q));
  EXPECT_TRUE(repeat.admitted);
  EXPECT_TRUE(repeat.already_served);
  EXPECT_EQ(fx.service->stats().dedup_hits, 1);
  EXPECT_EQ(fx.service->plan_cache().exact_hits(), 1);

  fx.StepOne(Event::Departure(30, q));
  EXPECT_TRUE(fx.service->admitted_queries().empty());
  EXPECT_EQ(fx.service->deployment().num_placed_operators(), 0);
  EXPECT_TRUE(fx.service->deployment().Validate().ok());
  EXPECT_EQ(fx.service->clock().now_ms(), 30);
}

TEST(PlanningServiceTest, CacheFastPathServesMaterializedSubquery) {
  ServiceFixture fx(2, 4.0, 3);
  const StreamId abc = fx.Join({0, 1, 2});
  EventOutcome arrival = fx.StepOne(Event::Arrival(1, abc));
  ASSERT_TRUE(arrival.admitted);

  // The committed 3-way plan materialises exactly one 2-way
  // intermediate; its arrival needs only a serving arc — no solve.
  const std::vector<StreamId> subs = {fx.Join({0, 1}), fx.Join({1, 2}),
                                      fx.Join({0, 2})};
  int fast = 0, admitted = 0;
  int64_t t = 2;
  for (StreamId s : subs) {
    EventOutcome outcome = fx.StepOne(Event::Arrival(t++, s));
    fast += outcome.via_cache;
    admitted += outcome.admitted;
  }
  EXPECT_EQ(fast, 1);
  EXPECT_EQ(fx.service->stats().cache_fast_path, 1);
  EXPECT_GE(admitted, 1);
  EXPECT_TRUE(fx.service->deployment().Validate().ok());
}

TEST(PlanningServiceTest, RejectsEventsBeforeTheVirtualClock) {
  ServiceFixture fx(2, 2.0, 2);
  fx.StepOne(Event::Tick(100));
  EXPECT_FALSE(fx.service->Enqueue(Event::Tick(50)).ok());
  EXPECT_TRUE(fx.service->Enqueue(Event::Tick(100)).ok());
}

// Satellite: the §IV-B monitor→re-plan round trip, driven by a
// SimReport-shaped measurement with a synthetic rate drift.
TEST(PlanningServiceTest, MonitorReportDriftTriggersReplanAndRevalidates) {
  ServiceFixture fx(2, 2.0, 4);
  const StreamId q01 = fx.Join({0, 1});
  const StreamId q23 = fx.Join({2, 3});
  ASSERT_TRUE(fx.StepOne(Event::Arrival(1, q01)).admitted);
  ASSERT_TRUE(fx.StepOne(Event::Arrival(2, q23)).admitted);

  // Synthetic measurement: base[0] runs at half its estimate (a 50%
  // drift, beyond the 20% threshold); everything else on estimate.
  SimReport report;
  report.measured_rate_mbps[fx.base[0]] = 5.0;
  report.measured_rate_mbps[q01] = 2.5;  // composite: ignored by monitor
  report.cpu_utilization = {0.4, 0.4};

  const Event event = fx.service->MonitorReportFromSim(10, report);
  ASSERT_EQ(event.measured_base_rates.size(), 1u);  // composites filtered

  EventOutcome outcome = fx.StepOne(event);
  // q01 was removed (evicted) and entered the speculative re-planning
  // round the event dispatched; retiring the round re-admits it. q23
  // was untouched.
  EXPECT_EQ(outcome.evicted, 1);
  fx.service->FinishInFlightRound();
  EXPECT_GE(fx.service->stats().replanned_admitted, 1);
  EXPECT_DOUBLE_EQ(fx.catalog.stream(fx.base[0]).rate_mbps, 5.0);
  const auto& admitted = fx.service->admitted_queries();
  EXPECT_NE(std::find(admitted.begin(), admitted.end(), q01),
            admitted.end());
  EXPECT_NE(std::find(admitted.begin(), admitted.end(), q23),
            admitted.end());
  // The re-admission went through the planner's validate_commits path;
  // the final committed state must audit clean under the new rates.
  EXPECT_TRUE(fx.service->deployment().Validate().ok());
}

TEST(PlanningServiceTest, RateGrowthEvictsUntilFeasible) {
  // Near-saturated cluster; a popular base stream triples. The service
  // must end every event with a valid deployment, shedding queries that
  // no longer fit.
  ServiceFixture fx(2, 0.3, 6);
  int64_t t = 1;
  int admitted_before = 0;
  for (int i = 0; i + 1 < 6; ++i) {
    admitted_before += fx.StepOne(Event::Arrival(t++, fx.Join({i, i + 1})))
                           .admitted;
  }
  ASSERT_GT(admitted_before, 0);

  EventOutcome outcome = fx.StepOne(
      Event::MonitorReport(t, {{fx.base[1], 30.0}}));
  EXPECT_GE(outcome.evicted, 1);
  EXPECT_TRUE(fx.service->deployment().Validate().ok());
  EXPECT_LE(static_cast<int>(fx.service->admitted_queries().size()),
            admitted_before);
}

TEST(PlanningServiceTest, HostFailureEvictsAndRejoinRestores) {
  ServiceFixture fx(3, 1.0, 6);
  int64_t t = 1;
  std::vector<StreamId> queries;
  for (int i = 0; i + 1 < 6; i += 2) queries.push_back(fx.Join({i, i + 1}));
  int admitted = 0;
  for (StreamId q : queries) {
    admitted += fx.StepOne(Event::Arrival(t++, q)).admitted;
  }
  ASSERT_GT(admitted, 0);

  const HostId failed = 1;
  EventOutcome failure = fx.StepOne(Event::HostFailure(t++, failed));
  EXPECT_FALSE(fx.service->HostActive(failed));
  EXPECT_EQ(fx.cluster.host(failed).cpu, 0.0);
  // Nothing may remain allocated on the dead host, and the survivors
  // must still validate.
  EXPECT_TRUE(fx.service->deployment().OperatorsOn(failed).empty());
  EXPECT_NEAR(fx.service->deployment().NicOutUsed(failed), 0.0, 1e-9);
  EXPECT_TRUE(fx.service->deployment().Validate().ok());
  // Fallout was queued and (bounded-round) re-admission attempted.
  EXPECT_GE(failure.evicted + failure.replanned_admitted +
                failure.replanned_rejected,
            0);

  EventOutcome join = fx.StepOne(Event::HostJoin(t++, failed));
  (void)join;
  EXPECT_TRUE(fx.service->HostActive(failed));
  EXPECT_GT(fx.cluster.host(failed).cpu, 0.0);
  EXPECT_TRUE(fx.service->deployment().Validate().ok());
}

// Satellite: plan-cache counter semantics at the service level — miss
// on first sight, exact hit for a materialised subquery (fast-path
// admission), partial hit for a superquery reusing it, dedup exact hit
// for a served stream — plus invalidation: once failures purge the
// hosts, the rebuilt index must forget everything it knew.
TEST(PlanningServiceTest, PlanCacheCountersAndEvictHostInvalidation) {
  ServiceFixture fx(2, 4.0, 4);
  const StreamId abc = fx.Join({0, 1, 2});
  int64_t t = 1;

  // First sight of the canonical stream: a miss, then a full solve.
  ASSERT_TRUE(fx.StepOne(Event::Arrival(t++, abc)).admitted);
  EXPECT_EQ(fx.service->plan_cache().misses(), 1);
  EXPECT_EQ(fx.service->plan_cache().exact_hits(), 0);
  EXPECT_EQ(fx.service->plan_cache().partial_hits(), 0);

  // The committed 3-way plan materialises exactly one 2-way
  // intermediate; its arrival is an exact (materialised-but-unserved)
  // hit admitted with a single serving arc.
  const std::vector<StreamId> subs = {fx.Join({0, 1}), fx.Join({1, 2}),
                                      fx.Join({0, 2})};
  StreamId mat = kInvalidStream;
  for (StreamId s : subs) {
    if (fx.service->plan_cache().FindMaterialized(s, nullptr)) mat = s;
  }
  ASSERT_NE(mat, kInvalidStream);
  EventOutcome sub_arrival = fx.StepOne(Event::Arrival(t++, mat));
  EXPECT_TRUE(sub_arrival.admitted);
  EXPECT_TRUE(sub_arrival.via_cache);
  EXPECT_EQ(fx.service->plan_cache().exact_hits(), 1);

  // A 4-way superquery is not materialised itself but sees the
  // materialised proper subqueries as reuse candidates: a partial
  // (subquery) hit, distinct from the exact-hit counter.
  EventOutcome super_arrival = fx.StepOne(Event::Arrival(t++, fx.Join({0, 1, 2, 3})));
  EXPECT_GE(super_arrival.reuse_candidates, 1);
  EXPECT_EQ(fx.service->plan_cache().partial_hits(), 1);
  EXPECT_EQ(fx.service->plan_cache().exact_hits(), 1);
  EXPECT_EQ(fx.service->plan_cache().misses(), 1);

  // A repeat arrival of a served stream is an exact hit too (dedup).
  EventOutcome dedup = fx.StepOne(Event::Arrival(t++, abc));
  EXPECT_TRUE(dedup.already_served);
  EXPECT_EQ(fx.service->plan_cache().exact_hits(), 2);

  // Failures purge both hosts (EvictHost under each handler): the
  // rebuilt index must drop every entry — nothing is materialised any
  // more — and a fresh arrival of the former hit is a plain miss.
  fx.StepOne(Event::HostFailure(t++, 0));
  fx.StepOne(Event::HostFailure(t++, 1));
  fx.service->FinishInFlightRound();
  EXPECT_EQ(fx.service->plan_cache().num_indexed(), 0);
  EXPECT_FALSE(fx.service->plan_cache().FindMaterialized(mat, nullptr));
  const int64_t misses_before = fx.service->plan_cache().misses();
  EventOutcome after = fx.StepOne(Event::Arrival(t++, mat));
  EXPECT_FALSE(after.admitted);
  EXPECT_FALSE(after.via_cache);
  EXPECT_EQ(fx.service->plan_cache().misses(), misses_before + 1);
}

// Tentpole: an arrival that misses the plan cache no longer retires the
// in-flight re-planning round — it solves speculatively on the loop
// thread while the round keeps solving — and the committed result is
// still identical for every worker count.
TEST(PlanningServiceTest, CacheMissArrivalOverlapsInFlightRound) {
  auto run = [](int workers) {
    ServiceOptions options;
    options.replan.workers = workers;
    // Deterministic solver: node-bounded, not wall-clock-bounded.
    options.planner.timeout_ms = 60000;
    options.planner.max_nodes = 150;
    ServiceFixture fx(2, 0.3, 6, options);

    int64_t t = 1;
    for (int i = 0; i + 1 < 6; ++i) {
      fx.StepOne(Event::Arrival(t++, fx.Join({i, i + 1})));
    }
    // A tripled base rate makes the near-saturated cluster shed load:
    // evictions queue and a round is dispatched at the end of the event.
    EventOutcome drift =
        fx.StepOne(Event::MonitorReport(t++, {{fx.base[1], 30.0}}));
    EXPECT_GE(drift.evicted, 1);
    EXPECT_GT(fx.service->pending_replans(), 0);

    // Cache-miss arrival while that round is in flight: the solve
    // overlaps it instead of forcing it to retire first.
    const int64_t overlapped_before =
        fx.service->stats().overlapped_arrival_solves;
    fx.StepOne(Event::Arrival(t++, fx.Join({0, 2})));
    EXPECT_EQ(fx.service->stats().overlapped_arrival_solves,
              overlapped_before + 1);

    fx.service->FinishInFlightRound();
    EXPECT_TRUE(fx.service->deployment().Validate().ok());
    return fx.service->deployment().Fingerprint();
  };

  const std::string inline_mode = run(0);
  EXPECT_EQ(inline_mode, run(1));
  EXPECT_EQ(inline_mode, run(4));
}

// Tentpole: an EvictHost (host failure) arriving while a re-planning
// round is solving on the worker pool. The service must retire the
// round (committing or conflict-re-solving its proposals) before the
// host's budgets are zeroed, honour departures that raced the round,
// and keep the committed deployment valid throughout — with the same
// final state for any worker count.
TEST(PlanningServiceTest, EvictHostWhileRoundInFlightStaysConsistent) {
  auto run = [](int workers) {
    ServiceOptions options;
    options.replan.workers = workers;
    // Deterministic solver: node-bounded, not wall-clock-bounded.
    options.planner.timeout_ms = 60000;
    options.planner.max_nodes = 150;
    ServiceFixture fx(2, 0.3, 6, options);

    int64_t t = 1;
    std::vector<StreamId> queries;
    for (int i = 0; i + 1 < 6; ++i) queries.push_back(fx.Join({i, i + 1}));
    int admitted = 0;
    for (StreamId q : queries) {
      admitted += fx.StepOne(Event::Arrival(t++, q)).admitted;
    }
    EXPECT_GT(admitted, 0);

    // A tripled base rate makes the near-saturated cluster shed load:
    // evictions queue and (async mode) a round goes in flight.
    EventOutcome drift = fx.StepOne(
        Event::MonitorReport(t++, {{fx.base[1], 30.0}}));
    EXPECT_GE(drift.evicted, 1);
    if (workers > 0) {
      EXPECT_GT(fx.service->pending_replans(), 0);
    }

    // While the round solves: a departure races it (its proposal must
    // be dropped, not committed)...
    const StreamId departed = queries[0];
    fx.StepOne(Event::Departure(t++, departed));

    // ...and then a host fails. The failure must retire the round
    // before zeroing budgets and evicting fallout.
    fx.StepOne(Event::HostFailure(t++, 1));
    EXPECT_FALSE(fx.service->HostActive(1));
    EXPECT_TRUE(fx.service->deployment().OperatorsOn(1).empty());
    EXPECT_NEAR(fx.service->deployment().NicOutUsed(1), 0.0, 1e-9);
    EXPECT_TRUE(fx.service->deployment().Validate().ok());

    fx.StepOne(Event::HostJoin(t++, 1));
    fx.StepOne(Event::Tick(t++));
    fx.service->FinishInFlightRound();

    EXPECT_TRUE(fx.service->deployment().Validate().ok());
    const auto& admitted_now = fx.service->admitted_queries();
    EXPECT_EQ(std::find(admitted_now.begin(), admitted_now.end(), departed),
              admitted_now.end())
        << "departed query must not be re-admitted by an in-flight round";
    return fx.service->deployment().Fingerprint();
  };

  const std::string one = run(1);
  const std::string four = run(4);
  EXPECT_EQ(one, four);
}

// Tentpole acceptance: replaying one churn trace with 1 and with 4
// workers commits bit-for-bit identical deployments and admission
// statistics — the worker count only changes wall-clock, never results.
TEST(PlanningServiceTest, WorkerCountDoesNotChangeCommittedDeployments) {
  auto run = [](int workers) {
    Cluster cluster(3, HostSpec{0.8, 70.0, 70.0, ""}, 140.0);
    Catalog catalog(CostModel{});
    WorkloadConfig wc;
    wc.num_base_streams = 24;
    wc.num_queries = 40;
    wc.seed = 17;
    Result<Workload> workload = GenerateWorkload(wc, 3, &catalog);
    EXPECT_TRUE(workload.ok());
    TraceConfig tc;
    tc.num_events = 60;
    tc.seed = 17;
    tc.min_failures = 2;
    tc.min_drift_reports = 3;
    Result<std::vector<Event>> trace =
        GenerateTrace(tc, *workload, 3, catalog);
    EXPECT_TRUE(trace.ok());

    ServiceOptions options;
    options.planner.timeout_ms = 60000;
    options.planner.max_nodes = 150;
    options.replan.workers = workers;
    PlanningService service(&cluster, &catalog, options);
    for (const Event& e : *trace) EXPECT_TRUE(service.Enqueue(e).ok());
    EXPECT_TRUE(service.RunUntilIdle().ok());
    EXPECT_TRUE(service.deployment().Validate().ok());
    const ServiceStats& stats = service.stats();
    return std::make_tuple(service.deployment().Fingerprint(),
                           stats.admitted, stats.rejected, stats.evictions,
                           stats.replanned_admitted, stats.replanned_rejected,
                           stats.commit_conflicts);
  };
  const auto one = run(1);
  const auto four = run(4);
  EXPECT_EQ(one, four);
  EXPECT_GT(std::get<3>(one), 0) << "trace must exercise re-planning";
}

// The stall/SLO watchdog (WatchdogOptions) observes wall clock, so its
// counters are normally machine-dependent — but at the extremes they
// are exact and therefore testable: a vanishing budget makes every
// stage sample (and every Step) a breach, so each breach counter equals
// its histogram's sample count and loop_stalls equals the event count —
// all worker-invariant at a fixed depth, because the sample counts
// themselves are. A huge budget yields zero breaches. And the watchdog
// never gates behaviour: every run commits the budget-free fingerprint.
TEST(PlanningServiceTest, WatchdogBreachCountsAreExactAtExtremeBudgets) {
  struct WatchdogRun {
    std::string fingerprint;
    int64_t events = 0;
    int64_t loop_stalls = 0;
    double worst_stall_ms = 0.0;
    size_t admit_n = 0, solve_n = 0, commit_n = 0, barrier_n = 0,
           measure_n = 0;
    int64_t admit_b = 0, solve_b = 0, commit_b = 0, barrier_b = 0,
            measure_b = 0;
  };
  // Closed-loop replay so all five stage histograms (including
  // measure_ms) take samples; node-bounded solver as always.
  auto run = [](double budget_ms, int workers) {
    Cluster cluster(3, HostSpec{0.6, 70.0, 70.0, ""}, 140.0);
    Catalog catalog(CostModel{});
    WorkloadConfig wc;
    wc.num_base_streams = 18;
    wc.num_queries = 30;
    wc.arities = {2, 3};
    wc.seed = 11;
    Result<Workload> workload = GenerateWorkload(wc, 3, &catalog);
    EXPECT_TRUE(workload.ok());
    TraceConfig tc;
    tc.num_events = 36;
    tc.seed = 11 * 977 + 13;
    tc.mean_gap_ms = 40;
    tc.drift_weight = 0.11;
    tc.tick_weight = 0.55;
    tc.min_drift_reports = 2;
    tc.closed_loop = true;
    Result<std::vector<Event>> trace =
        GenerateTrace(tc, *workload, 3, catalog);
    EXPECT_TRUE(trace.ok());

    ServiceOptions options;
    options.planner.timeout_ms = 60000;
    options.planner.max_nodes = 80;
    options.replan.workers = workers;
    options.replan.clamp_workers_to_cores = false;
    options.closed_loop = true;
    options.telemetry.measure_period = 2;
    options.telemetry.seed = 11;
    options.telemetry.sim.rate_scale = 0.02;
    options.telemetry.sim.duration_ms = 400;
    options.watchdog.event_stall_ms = budget_ms;
    options.watchdog.admit_budget_ms = budget_ms;
    options.watchdog.solve_budget_ms = budget_ms;
    options.watchdog.commit_budget_ms = budget_ms;
    options.watchdog.barrier_budget_ms = budget_ms;
    options.watchdog.measure_budget_ms = budget_ms;
    PlanningService service(&cluster, &catalog, options);
    for (const Event& e : *trace) EXPECT_TRUE(service.Enqueue(e).ok());
    EXPECT_TRUE(service.RunUntilIdle().ok());

    const ServiceStats& stats = service.stats();
    WatchdogRun r;
    r.fingerprint = service.deployment().Fingerprint();
    r.events = stats.events;
    r.loop_stalls = stats.loop_stalls;
    r.worst_stall_ms = stats.worst_stall_ms;
    r.admit_n = stats.admit_ms.count();
    r.solve_n = stats.solve_ms.count();
    r.commit_n = stats.commit_ms.count();
    r.barrier_n = stats.barrier_ms.count();
    r.measure_n = stats.measure_ms.count();
    r.admit_b = stats.admit_budget_breaches;
    r.solve_b = stats.solve_budget_breaches;
    r.commit_b = stats.commit_budget_breaches;
    r.barrier_b = stats.barrier_budget_breaches;
    r.measure_b = stats.measure_budget_breaches;
    return r;
  };

  const WatchdogRun off = run(/*budget_ms=*/0.0, /*workers=*/0);
  EXPECT_GT(off.events, 0);
  EXPECT_GT(off.measure_n, 0u) << "closed loop never measured";
  EXPECT_EQ(off.loop_stalls, 0);
  EXPECT_EQ(off.admit_b + off.solve_b + off.commit_b + off.barrier_b +
                off.measure_b,
            0)
      << "budgets of 0 mean the watchdog is off";

  // Tiny budget (1 picosecond): every wall-clock sample breaches, so
  // the breach counters collapse onto the deterministic sample counts.
  const WatchdogRun tiny = run(/*budget_ms=*/1e-9, /*workers=*/0);
  EXPECT_EQ(tiny.fingerprint, off.fingerprint)
      << "watchdog budgets changed the committed deployment";
  EXPECT_EQ(tiny.loop_stalls, tiny.events);
  EXPECT_GT(tiny.worst_stall_ms, 0.0);
  EXPECT_EQ(tiny.admit_b, static_cast<int64_t>(tiny.admit_n));
  EXPECT_EQ(tiny.solve_b, static_cast<int64_t>(tiny.solve_n));
  EXPECT_EQ(tiny.commit_b, static_cast<int64_t>(tiny.commit_n));
  EXPECT_EQ(tiny.barrier_b, static_cast<int64_t>(tiny.barrier_n));
  EXPECT_EQ(tiny.measure_b, static_cast<int64_t>(tiny.measure_n));

  // Worker-invariant at a fixed depth: multi-worker wall times differ,
  // but with every sample breaching, the counts are the contract's.
  const WatchdogRun tiny_w4 = run(/*budget_ms=*/1e-9, /*workers=*/4);
  EXPECT_EQ(tiny_w4.fingerprint, off.fingerprint);
  EXPECT_EQ(tiny_w4.events, tiny.events);
  EXPECT_EQ(tiny_w4.loop_stalls, tiny.loop_stalls);
  EXPECT_EQ(tiny_w4.admit_b, tiny.admit_b);
  EXPECT_EQ(tiny_w4.solve_b, tiny.solve_b);
  EXPECT_EQ(tiny_w4.commit_b, tiny.commit_b);
  EXPECT_EQ(tiny_w4.barrier_b, tiny.barrier_b);
  EXPECT_EQ(tiny_w4.measure_b, tiny.measure_b);

  // Huge budget: nothing on this machine takes 10^12 ms, so zero
  // breaches and zero stalls — while the histograms still sample.
  const WatchdogRun huge = run(/*budget_ms=*/1e12, /*workers=*/0);
  EXPECT_EQ(huge.fingerprint, off.fingerprint);
  EXPECT_EQ(huge.loop_stalls, 0);
  EXPECT_DOUBLE_EQ(huge.worst_stall_ms, 0.0);
  EXPECT_EQ(huge.admit_n, tiny.admit_n);
  EXPECT_EQ(huge.admit_b + huge.solve_b + huge.commit_b + huge.barrier_b +
                huge.measure_b,
            0);
}

// Tentpole: the arrival-path commit-conflict fallback, driven
// deterministically at pipeline depth 1. The injection hook commits an
// intervening admission between the arrival's propose and commit, so
// the strict structure-version gate must bounce the proposal and the
// service must re-solve inline — with the conflict counted, both
// commit attempts sampled into commit_ms, the re-solve sampled into
// solve_ms, and the reuse index repaired via a scheduled full rebuild
// (not an incremental delta, whose chain the conflict broke).
TEST(PlanningServiceTest, AdmitConflictFallbackResolvesAndRepairsCache) {
  // One-shot hook: fires between the arrival's ProposeAdmission and
  // CommitProposal, admitting another query directly on the planner —
  // the structural bump an older pipelined round's commit would cause.
  // (Captured locals are bound before the fixture exists; the target
  // query is filled in right after.)
  StreamId intervening = kInvalidStream;
  bool fired = false;
  ServiceOptions options;
  options.planner.timeout_ms = 60000;
  options.planner.max_nodes = 150;
  options.replan.pipeline_depth = 1;
  options.inject_between_propose_and_commit = [&](SqprPlanner& planner) {
    if (fired) return;
    fired = true;
    Result<PlanningStats> stats = planner.SubmitQuery(intervening);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    ASSERT_TRUE(stats->admitted);
  };
  ServiceFixture fx(2, 2.0, 4, options);
  const StreamId arrival = fx.Join({0, 1});
  intervening = fx.Join({2, 3});

  const auto& stats = fx.service->stats();
  const size_t commits_before = stats.commit_ms.count();
  const size_t solves_before = stats.solve_ms.count();
  const int64_t rebuilds_before = fx.service->plan_cache().rebuilds();
  const int64_t deltas_before = stats.cache_delta_updates;

  EventOutcome outcome = fx.StepOne(Event::Arrival(1, arrival));
  ASSERT_TRUE(fired);
  EXPECT_TRUE(outcome.admitted);
  EXPECT_FALSE(outcome.already_served);

  // The gate fired exactly once and the fallback resolved it.
  EXPECT_EQ(stats.commit_conflicts, 1);
  // Both the bounced commit attempt and the fresh one landed in the
  // histogram — conflict re-solves are indistinguishable there from
  // inline solves.
  EXPECT_EQ(stats.commit_ms.count(), commits_before + 2);
  EXPECT_EQ(stats.solve_ms.count(), solves_before + 1);

  // Cache repair went through a full rebuild, not a delta: the
  // injected admission bypassed the service's cache marking, so only
  // the conflict path's MarkCacheRebuild makes the index consistent.
  EXPECT_EQ(fx.service->plan_cache().rebuilds(), rebuilds_before + 1);
  EXPECT_EQ(stats.cache_delta_updates, deltas_before);
  PlanCache fresh(&fx.catalog);
  fresh.Rebuild(fx.service->deployment());
  EXPECT_EQ(fx.service->plan_cache().DebugDump(), fresh.DebugDump());

  // Both the arrival and the injected admission are served.
  EXPECT_NE(fx.service->deployment().ServingHost(arrival), kInvalidHost);
  EXPECT_NE(fx.service->deployment().ServingHost(intervening), kInvalidHost);
  EXPECT_TRUE(fx.service->deployment().Validate().ok());
}

// Tentpole: a barrier hitting a pipeline with several rounds in flight
// commits only the oldest (its pinned point) and unwinds the younger
// speculative rounds — so the committed deployments, admission
// statistics and remaining backlog are bit-identical to a depth-1
// service, which never dispatched those rounds in the first place.
TEST(PlanningServiceTest, BarrierUnwindKeepsDepthsBitIdentical) {
  auto run = [](int depth, int64_t* unwinds) {
    ServiceOptions options;
    options.planner.timeout_ms = 60000;
    options.planner.max_nodes = 150;
    options.replan.pipeline_depth = depth;
    // One query per round: the host-failure fallout splits into several
    // rounds, so deeper pipelines genuinely overlap them.
    options.replan.max_queries_per_round = 1;
    ServiceFixture fx(2, 2.0, 6, options);

    int64_t t = 1;
    int admitted = 0;
    for (auto leaves : {std::pair<int, int>{0, 1}, {2, 3}, {4, 5}}) {
      admitted +=
          fx.StepOne(Event::Arrival(t++, fx.Join({leaves.first, leaves.second})))
              .admitted;
    }
    EXPECT_EQ(admitted, 3);

    // Every plan touches host 1 (half the bases live there): the
    // failure evicts all three queries into three one-query rounds.
    EventOutcome failure = fx.StepOne(Event::HostFailure(t++, 1));
    EXPECT_GE(failure.evicted, 2);
    // The join is a barrier: at depth >= 2 it catches speculative
    // rounds mid-flight and must unwind them.
    fx.StepOne(Event::HostJoin(t++, 1));
    for (int i = 0; i < 8; ++i) fx.StepOne(Event::Tick(t++));
    fx.service->FinishInFlightRound();

    EXPECT_TRUE(fx.service->deployment().Validate().ok());
    EXPECT_EQ(fx.service->pending_replans(), 0);
    const ServiceStats& stats = fx.service->stats();
    *unwinds = stats.round_unwinds;
    return std::make_tuple(fx.service->deployment().Fingerprint(),
                           stats.admitted, stats.rejected, stats.evictions,
                           stats.replanned_admitted,
                           stats.replanned_rejected, stats.replan_rounds);
  };

  int64_t unwinds1 = 0, unwinds2 = 0, unwinds4 = 0;
  const auto depth1 = run(1, &unwinds1);
  const auto depth2 = run(2, &unwinds2);
  const auto depth4 = run(4, &unwinds4);
  EXPECT_EQ(depth1, depth2);
  EXPECT_EQ(depth1, depth4);
  EXPECT_EQ(unwinds1, 0) << "depth 1 never speculates past a commit point";
  EXPECT_GE(unwinds2, 1) << "the join barrier must catch a round in flight";
  EXPECT_GE(unwinds4, unwinds2);
}

TEST(PlanningServiceTest, IncrementalCacheEqualsRebuildOnRandomizedTraces) {
  // The incremental-maintenance contract: after every event — commits,
  // serving-only departures, GC departures, evictions, drift cycles —
  // the service's incrementally maintained cache must equal a cache
  // rebuilt from scratch against the committed deployment.
  for (uint64_t seed : {3u, 11u, 29u}) {
    Cluster cluster(3, HostSpec{0.8, 70.0, 70.0, ""}, 140.0);
    Catalog catalog(CostModel{});
    WorkloadConfig wc;
    wc.num_base_streams = 24;
    wc.num_queries = 40;
    wc.seed = seed;
    Result<Workload> workload = GenerateWorkload(wc, 3, &catalog);
    ASSERT_TRUE(workload.ok());
    TraceConfig tc;
    tc.num_events = 80;
    tc.seed = seed;
    tc.min_failures = 2;
    tc.min_drift_reports = 3;
    Result<std::vector<Event>> trace =
        GenerateTrace(tc, *workload, 3, catalog);
    ASSERT_TRUE(trace.ok());

    ServiceOptions options;
    options.planner.timeout_ms = 60000;
    options.planner.max_nodes = 150;
    PlanningService service(&cluster, &catalog, options);
    for (const Event& e : *trace) ASSERT_TRUE(service.Enqueue(e).ok());
    int step = 0;
    while (service.HasPendingEvents()) {
      ASSERT_TRUE(service.Step().ok());
      PlanCache fresh(&catalog);
      fresh.Rebuild(service.deployment());
      ASSERT_EQ(service.plan_cache().DebugDump(), fresh.DebugDump())
          << "seed " << seed << " diverged after event " << step;
      ++step;
    }
    service.FinishInFlightRound();
    PlanCache fresh(&catalog);
    fresh.Rebuild(service.deployment());
    EXPECT_EQ(service.plan_cache().DebugDump(), fresh.DebugDump());

    // The fast path must actually be exercised, not silently bypassed:
    // additive admissions go through deltas, and the full rebuilds stay
    // a strict subset of the mutating events.
    EXPECT_GT(service.stats().cache_delta_updates, 0) << "seed " << seed;
    EXPECT_GT(service.plan_cache().rebuilds(), 0) << "seed " << seed;
    EXPECT_LT(service.plan_cache().rebuilds(),
              static_cast<int64_t>(trace->size()))
        << "seed " << seed;
  }
}

TEST(PlanningServiceTest, RepeatArrivalDedupDoesNotRescanCache) {
  ServiceFixture fx(2, 2.0, 4);
  const StreamId q = fx.Join({0, 1});
  EXPECT_TRUE(fx.StepOne(Event::Arrival(0, q)).admitted);
  const int64_t rebuilds_after_admit = fx.service->plan_cache().rebuilds();
  const int64_t deltas_after_admit = fx.service->stats().cache_delta_updates;

  // The repeat arrival is a dedup hit: the deployment does not move, so
  // the reuse index must neither rebuild nor apply a delta for it.
  EventOutcome repeat = fx.StepOne(Event::Arrival(10, q));
  EXPECT_TRUE(repeat.already_served);
  EXPECT_EQ(fx.service->plan_cache().rebuilds(), rebuilds_after_admit);
  EXPECT_EQ(fx.service->stats().cache_delta_updates, deltas_after_admit);
}

// ---- Copy-on-write planner snapshots. ----

bool SameDelta(const DeploymentDelta& x, const DeploymentDelta& y) {
  auto serving_eq = [](const DeploymentDelta::ServingChange& a,
                       const DeploymentDelta::ServingChange& b) {
    return a.stream == b.stream && a.before == b.before && a.after == b.after;
  };
  return x.ops_added == y.ops_added && x.ops_removed == y.ops_removed &&
         x.flows_added == y.flows_added &&
         x.flows_removed == y.flows_removed &&
         x.serving_changes.size() == y.serving_changes.size() &&
         std::equal(x.serving_changes.begin(), x.serving_changes.end(),
                    y.serving_changes.begin(), serving_eq);
}

TEST(SqprPlannerTest, SnapshotSharesCoreAndMaterializesExactState) {
  Cluster cluster(2, HostSpec{2.0, 500.0, 500.0, ""}, 1000.0);
  Catalog catalog(CostModel{});
  std::vector<StreamId> base;
  for (int i = 0; i < 6; ++i) base.push_back(catalog.AddBaseStream(i % 2, 10.0));
  SqprPlanner::Options options;
  options.timeout_ms = 60000;
  options.max_nodes = 150;
  SqprPlanner planner(&cluster, &catalog, options);

  const StreamId ab = *catalog.CanonicalJoinStream({base[0], base[1]});
  const StreamId cd = *catalog.CanonicalJoinStream({base[2], base[3]});
  const StreamId ef = *catalog.CanonicalJoinStream({base[4], base[5]});
  for (StreamId q : {ab, cd, ef}) ASSERT_TRUE(planner.WarmCatalog(q).ok());
  ASSERT_TRUE(planner.SubmitQuery(ab)->admitted);

  // First snapshot: must rebase (no core yet) and pay the full copy.
  SqprPlanner::SnapshotStats first_stats;
  auto first = planner.MakeSnapshot(&first_stats);
  EXPECT_TRUE(first_stats.rebased);
  EXPECT_EQ(first_stats.overlay_entries, 0u);

  // Mutate past the snapshot: admit cd.
  ASSERT_TRUE(planner.SubmitQuery(cd)->admitted);

  // Second snapshot: shares the core, ships only the overlay — the
  // O(changes) bytes the tentpole is about.
  SqprPlanner::SnapshotStats second_stats;
  auto second = planner.MakeSnapshot(&second_stats);
  EXPECT_FALSE(second_stats.rebased);
  EXPECT_GT(second_stats.overlay_entries, 0u);
  EXPECT_LT(second_stats.bytes_copied,
            planner.deployment().ApproxSizeBytes());

  // The first snapshot still sees the pre-cd state: proposing cd from
  // it admits with a non-empty delta (nothing served it there)...
  Result<AdmissionProposal> stale = first->ProposeAdmission(cd);
  ASSERT_TRUE(stale.ok());
  EXPECT_TRUE(stale->stats.admitted);
  EXPECT_FALSE(stale->stats.already_served);
  EXPECT_FALSE(stale->delta.empty());

  // ...while the second snapshot's materialised state matches the live
  // planner exactly: identical proposals for a fresh query.
  Result<AdmissionProposal> from_snapshot = second->ProposeAdmission(ef);
  Result<AdmissionProposal> from_live = planner.ProposeAdmission(ef);
  ASSERT_TRUE(from_snapshot.ok() && from_live.ok());
  EXPECT_EQ(from_snapshot->stats.admitted, from_live->stats.admitted);
  EXPECT_TRUE(SameDelta(from_snapshot->delta, from_live->delta));

  // Snapshots are immutable views: nothing above moved the live state.
  Result<AdmissionProposal> commit_cd_again = planner.ProposeAdmission(cd);
  ASSERT_TRUE(commit_cd_again.ok());
  EXPECT_TRUE(commit_cd_again->stats.already_served);
}

TEST(SqprPlannerTest, SnapshotRebasesOnceOverlayExceedsThreshold) {
  Cluster cluster(2, HostSpec{2.0, 500.0, 500.0, ""}, 1000.0);
  Catalog catalog(CostModel{});
  std::vector<StreamId> base;
  for (int i = 0; i < 4; ++i) base.push_back(catalog.AddBaseStream(i % 2, 10.0));
  SqprPlanner::Options options;
  options.timeout_ms = 60000;
  options.max_nodes = 150;
  options.snapshot_rebase_threshold = 2;  // tiny: force frequent rebases
  SqprPlanner planner(&cluster, &catalog, options);

  const StreamId ab = *catalog.CanonicalJoinStream({base[0], base[1]});
  const StreamId cd = *catalog.CanonicalJoinStream({base[2], base[3]});
  for (StreamId q : {ab, cd}) ASSERT_TRUE(planner.WarmCatalog(q).ok());

  SqprPlanner::SnapshotStats stats;
  planner.MakeSnapshot(&stats);
  EXPECT_TRUE(stats.rebased);
  ASSERT_TRUE(planner.SubmitQuery(ab)->admitted);  // >> 2 journal entries
  planner.MakeSnapshot(&stats);
  EXPECT_TRUE(stats.rebased) << "overlay beyond threshold must rebase";
  planner.MakeSnapshot(&stats);
  EXPECT_FALSE(stats.rebased) << "unchanged planner must reuse the core";
  EXPECT_EQ(stats.overlay_entries, 0u);

  // A rebased snapshot still materialises the exact live state.
  ASSERT_TRUE(planner.SubmitQuery(cd)->admitted);
  auto snap = planner.MakeSnapshot(&stats);
  Result<AdmissionProposal> p = snap->ProposeAdmission(cd);
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->stats.already_served);
}

TEST(PlanningServiceTest, ReplayIsDeterministic) {
  auto run = [](uint64_t seed) {
    Cluster cluster(3, HostSpec{0.8, 70.0, 70.0, ""}, 140.0);
    Catalog catalog(CostModel{});
    WorkloadConfig wc;
    wc.num_base_streams = 24;
    wc.num_queries = 40;
    wc.seed = seed;
    Result<Workload> workload = GenerateWorkload(wc, 3, &catalog);
    EXPECT_TRUE(workload.ok());
    TraceConfig tc;
    tc.num_events = 40;
    tc.seed = seed;
    Result<std::vector<Event>> trace =
        GenerateTrace(tc, *workload, 3, catalog);
    EXPECT_TRUE(trace.ok());

    ServiceOptions options;
    // Determinism must not depend on machine load: bound the solver by
    // node count (deterministic) rather than by wall clock.
    options.planner.timeout_ms = 60000;
    options.planner.max_nodes = 150;
    PlanningService service(&cluster, &catalog, options);
    for (const Event& e : *trace) EXPECT_TRUE(service.Enqueue(e).ok());
    EXPECT_TRUE(service.RunUntilIdle().ok());
    EXPECT_TRUE(service.deployment().Validate().ok());
    std::vector<StreamId> admitted = service.admitted_queries();
    std::sort(admitted.begin(), admitted.end());
    return std::make_tuple(admitted, service.stats().admitted,
                           service.stats().rejected,
                           service.stats().evictions);
  };
  EXPECT_EQ(run(5), run(5));
}

// ---- Trace generation / serialisation. ----

TEST(TraceTest, GeneratesRequiredEventMixDeterministically) {
  Catalog catalog(CostModel{});
  WorkloadConfig wc;
  wc.num_base_streams = 24;
  wc.num_queries = 50;
  Result<Workload> workload = GenerateWorkload(wc, 4, &catalog);
  ASSERT_TRUE(workload.ok());

  TraceConfig tc;
  tc.num_events = 200;
  tc.seed = 9;
  Result<std::vector<Event>> trace =
      GenerateTrace(tc, *workload, 4, catalog);
  ASSERT_TRUE(trace.ok());
  ASSERT_EQ(trace->size(), 200u);

  int failures = 0, drifts = 0, arrivals = 0;
  int64_t last_t = 0;
  for (const Event& e : *trace) {
    EXPECT_GT(e.time_ms, last_t);  // strictly increasing virtual time
    last_t = e.time_ms;
    failures += e.kind == EventKind::kHostFailure;
    drifts += e.kind == EventKind::kMonitorReport;
    arrivals += e.kind == EventKind::kQueryArrival;
  }
  EXPECT_GE(failures, tc.min_failures);
  EXPECT_GE(drifts, tc.min_drift_reports);
  EXPECT_GT(arrivals, 0);

  // Same seed, same trace.
  Result<std::vector<Event>> again =
      GenerateTrace(tc, *workload, 4, catalog);
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again->size(), trace->size());
  for (size_t i = 0; i < trace->size(); ++i) {
    EXPECT_EQ((*again)[i].time_ms, (*trace)[i].time_ms);
    EXPECT_EQ((*again)[i].kind, (*trace)[i].kind);
    EXPECT_EQ((*again)[i].query, (*trace)[i].query);
    EXPECT_EQ((*again)[i].host, (*trace)[i].host);
  }
}

// ---- Closed loop (§IV-C): self-measurement drives re-planning. ----

/// Closed-loop options with a cheap measurement sim and no smoothing or
/// noise, measuring on every tick.
ServiceOptions ClosedLoopOptions(int measure_period = 1) {
  ServiceOptions options;
  options.closed_loop = true;
  options.telemetry.measure_period = measure_period;
  options.telemetry.seed = 7;
  options.telemetry.sim.rate_scale = 0.05;
  options.telemetry.sim.duration_ms = 1000;
  return options;
}

TEST(PlanningServiceTest, ClosedLoopMeasuresAndReplansAutomatically) {
  ServiceFixture fx(2, 2.0, 4, ClosedLoopOptions());
  const StreamId q01 = fx.Join({0, 1});
  const StreamId q23 = fx.Join({2, 3});
  ASSERT_TRUE(fx.StepOne(Event::Arrival(1, q01)).admitted);
  ASSERT_TRUE(fx.StepOne(Event::Arrival(2, q23)).admitted);

  // Ground truth: base[0] actually runs at twice its 10 Mbps estimate.
  // No monitor event is ever enqueued — the service must notice by
  // measuring its own deployment on the next tick.
  RateTrajectory twice;
  twice.stream = fx.base[0];
  twice.base_rate_mbps = 20.0;
  fx.StepOne(Event::RateDirective(5, twice));
  EXPECT_EQ(fx.service->stats().rate_directives, 1);

  EventOutcome tick = fx.StepOne(Event::Tick(10));
  EXPECT_TRUE(tick.measured);
  EXPECT_EQ(fx.service->stats().measurement_ticks, 1);
  EXPECT_EQ(fx.service->stats().monitor_reports, 0);
  // The 2x drift exceeds the 20% threshold: q01 (leaf base[0]) was
  // evicted and queued for re-planning — an automatic §IV-B round.
  EXPECT_GE(tick.evicted, 1);
  EXPECT_EQ(fx.service->stats().auto_replan_rounds, 1);
  // The measured rate was installed: the estimate converged to ~20
  // (the realised sim rate; quantisation leaves a few percent).
  EXPECT_NEAR(fx.catalog.stream(fx.base[0]).rate_mbps, 20.0, 2.0);

  fx.service->FinishInFlightRound();
  EXPECT_GE(fx.service->stats().replanned_admitted +
                fx.service->stats().replanned_rejected,
            1);
  EXPECT_TRUE(fx.service->deployment().Validate().ok());

  // Converged: the next measurement sees rates on (the new) estimate
  // and does not re-plan again.
  const int64_t rounds_before = fx.service->stats().auto_replan_rounds;
  fx.StepOne(Event::Tick(20));
  EXPECT_EQ(fx.service->stats().measurement_ticks, 2);
  EXPECT_EQ(fx.service->stats().auto_replan_rounds, rounds_before);
  EXPECT_TRUE(fx.service->deployment().Validate().ok());
}

TEST(PlanningServiceTest, ClosedLoopHonoursMeasurePeriod) {
  ServiceFixture fx(2, 2.0, 2, ClosedLoopOptions(/*measure_period=*/3));
  ASSERT_TRUE(fx.StepOne(Event::Arrival(1, fx.Join({0, 1}))).admitted);
  int64_t t = 10;
  for (int i = 0; i < 6; ++i) fx.StepOne(Event::Tick(t += 10));
  // Ticks 3 and 6 measure; 1, 2, 4, 5 only drain re-planning rounds.
  EXPECT_EQ(fx.service->stats().ticks, 6);
  EXPECT_EQ(fx.service->stats().measurement_ticks, 2);
}

TEST(PlanningServiceTest, ClosedLoopRejectsNonBaseRateDirectives) {
  ServiceFixture fx(2, 2.0, 2, ClosedLoopOptions());
  const StreamId q = fx.Join({0, 1});
  ASSERT_TRUE(fx.StepOne(Event::Arrival(1, q)).admitted);

  // A directive for a composite (or unknown) stream could never be
  // observed — measurements only report base streams — so it must not
  // enter the rate model to silently never fire.
  RateTrajectory composite;
  composite.stream = q;
  composite.base_rate_mbps = 20.0;
  fx.StepOne(Event::RateDirective(5, composite));
  RateTrajectory unknown;
  unknown.stream = 9999;
  unknown.base_rate_mbps = 20.0;
  fx.StepOne(Event::RateDirective(6, unknown));

  EXPECT_EQ(fx.service->stats().rate_directives, 2);
  ASSERT_NE(fx.service->telemetry(), nullptr);
  EXPECT_TRUE(fx.service->telemetry()->rate_model().empty());
}

TEST(PlanningServiceTest, OpenLoopCountsButIgnoresRateDirectives) {
  ServiceFixture fx(2, 2.0, 2);  // closed_loop defaults to off
  ASSERT_TRUE(fx.StepOne(Event::Arrival(1, fx.Join({0, 1}))).admitted);

  RateTrajectory twice;
  twice.stream = fx.base[0];
  twice.base_rate_mbps = 20.0;
  fx.StepOne(Event::RateDirective(5, twice));
  EventOutcome tick = fx.StepOne(Event::Tick(10));

  // The directive is counted but there is no ground truth to measure:
  // no measurement, no drift, estimates untouched.
  EXPECT_FALSE(tick.measured);
  EXPECT_EQ(fx.service->stats().rate_directives, 1);
  EXPECT_EQ(fx.service->stats().measurement_ticks, 0);
  EXPECT_EQ(fx.service->telemetry(), nullptr);
  EXPECT_DOUBLE_EQ(fx.catalog.stream(fx.base[0]).rate_mbps, 10.0);
}

TEST(TraceTest, SaveLoadRoundTrip) {
  std::vector<Event> events;
  events.push_back(Event::Arrival(10, 3));
  events.push_back(Event::Departure(20, 3));
  events.push_back(Event::HostFailure(30, 1));
  events.push_back(Event::HostJoin(45, 1));
  events.push_back(
      Event::MonitorReport(50, {{0, 12.3456789}, {2, 0.25}}, {0.5, 1.25}));
  events.push_back(Event::Tick(60));

  const std::string path =
      ::testing::TempDir() + "/sqpr_trace_roundtrip.txt";
  ASSERT_TRUE(SaveTrace(events, path).ok());
  Result<std::vector<Event>> loaded = LoadTrace(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ((*loaded)[i].time_ms, events[i].time_ms);
    EXPECT_EQ((*loaded)[i].kind, events[i].kind);
    EXPECT_EQ((*loaded)[i].query, events[i].query);
    EXPECT_EQ((*loaded)[i].host, events[i].host);
    EXPECT_EQ((*loaded)[i].measured_base_rates,
              events[i].measured_base_rates);
    EXPECT_EQ((*loaded)[i].cpu_utilization, events[i].cpu_utilization);
  }
}

TEST(TraceTest, SaveLoadRoundTripsRateDirectives) {
  std::vector<Event> events;
  RateTrajectory constant;
  constant.kind = RateTrajectory::Kind::kConstant;
  constant.stream = 4;
  constant.base_rate_mbps = 12.3456789;
  events.push_back(Event::RateDirective(10, constant));

  RateTrajectory step;
  step.kind = RateTrajectory::Kind::kStep;
  step.stream = 5;
  step.base_rate_mbps = 10.0;
  step.step_at_ms = 750;
  step.step_factor = 1.75;
  events.push_back(Event::RateDirective(20, step));

  RateTrajectory walk;
  walk.kind = RateTrajectory::Kind::kRandomWalk;
  walk.stream = 6;
  walk.base_rate_mbps = 8.0;
  walk.period_ms = 120;
  walk.volatility = 0.25;
  walk.min_factor = 0.5;
  walk.max_factor = 3.0;
  events.push_back(Event::RateDirective(30, walk));

  RateTrajectory periodic;
  periodic.kind = RateTrajectory::Kind::kPeriodic;
  periodic.stream = 7;
  periodic.base_rate_mbps = 9.5;
  periodic.period_ms = 4000;
  periodic.amplitude = 0.6;
  periodic.phase = 1.25;
  events.push_back(Event::RateDirective(40, periodic));

  const std::string path =
      ::testing::TempDir() + "/sqpr_trace_rate_roundtrip.txt";
  ASSERT_TRUE(SaveTrace(events, path).ok());
  Result<std::vector<Event>> loaded = LoadTrace(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ((*loaded)[i].time_ms, events[i].time_ms);
    ASSERT_EQ((*loaded)[i].kind, EventKind::kRateDirective);
    const RateTrajectory& want = events[i].trajectory;
    const RateTrajectory& got = (*loaded)[i].trajectory;
    EXPECT_EQ(got.kind, want.kind);
    EXPECT_EQ(got.stream, want.stream);
    EXPECT_EQ(got.base_rate_mbps, want.base_rate_mbps);
    EXPECT_EQ(got.step_at_ms, want.step_at_ms);
    EXPECT_EQ(got.step_factor, want.step_factor);
    EXPECT_EQ(got.period_ms, want.period_ms);
    EXPECT_EQ(got.volatility, want.volatility);
    EXPECT_EQ(got.min_factor, want.min_factor);
    EXPECT_EQ(got.max_factor, want.max_factor);
    EXPECT_EQ(got.amplitude, want.amplitude);
    EXPECT_EQ(got.phase, want.phase);
  }
}

TEST(TraceTest, GeneratesClosedLoopTracesWithoutMonitorReports) {
  Catalog catalog(CostModel{});
  WorkloadConfig wc;
  wc.num_base_streams = 12;
  wc.num_queries = 20;
  Result<Workload> workload = GenerateWorkload(wc, 3, &catalog);
  ASSERT_TRUE(workload.ok());

  TraceConfig tc;
  tc.num_events = 120;
  tc.seed = 5;
  tc.closed_loop = true;
  tc.tick_weight = 0.5;
  tc.min_drift_reports = 4;
  Result<std::vector<Event>> trace = GenerateTrace(tc, *workload, 3, catalog);
  ASSERT_TRUE(trace.ok());

  int directives = 0, monitors = 0, ticks = 0;
  for (const Event& e : *trace) {
    directives += e.kind == EventKind::kRateDirective;
    monitors += e.kind == EventKind::kMonitorReport;
    if (e.kind == EventKind::kRateDirective) {
      EXPECT_GT(e.trajectory.base_rate_mbps, 0.0);
      EXPECT_GE(e.trajectory.stream, 0);
    }
    ticks += e.kind == EventKind::kTick;
  }
  EXPECT_EQ(monitors, 0) << "closed-loop traces script causes, never "
                            "measurements";
  EXPECT_GE(directives, tc.min_drift_reports);
  EXPECT_GT(ticks, 0);

  // Deterministic like every other generated trace.
  Result<std::vector<Event>> again = GenerateTrace(tc, *workload, 3, catalog);
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again->size(), trace->size());
  for (size_t i = 0; i < trace->size(); ++i) {
    EXPECT_EQ((*again)[i].kind, (*trace)[i].kind);
    EXPECT_EQ((*again)[i].trajectory.base_rate_mbps,
              (*trace)[i].trajectory.base_rate_mbps);
  }
}

// Satellite: parse diagnostics must name the offending line and quote
// it — closed-loop traces add directive syntax that has to be
// debuggable when hand-edited.
TEST(TraceTest, ParseErrorsReportLineNumberAndSnippet) {
  const std::string path = ::testing::TempDir() + "/sqpr_trace_bad.txt";
  auto write_and_load = [&](const std::string& content) {
    std::ofstream out(path);
    out << content;
    out.close();
    return LoadTrace(path);
  };

  // Line 3 (comments and blank lines count) is garbage.
  Result<std::vector<Event>> r =
      write_and_load("# header\n10 tick\nthis is not an event\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find(":3:"), std::string::npos)
      << r.status().ToString();
  EXPECT_NE(r.status().ToString().find("this is not an event"),
            std::string::npos)
      << r.status().ToString();

  // A known kind with a missing payload quotes the line too.
  r = write_and_load("10 arrival\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find(":1:"), std::string::npos);
  EXPECT_NE(r.status().ToString().find("10 arrival"), std::string::npos);

  // Unknown trajectory shapes name the shape and the line.
  r = write_and_load("10 tick\n20 rate 3 sawtooth 5.0\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find(":2:"), std::string::npos);
  EXPECT_NE(r.status().ToString().find("sawtooth"), std::string::npos);

  // Long lines are excerpted, not dumped wholesale.
  const std::string long_line(300, 'x');
  r = write_and_load(long_line + "\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("..."), std::string::npos);
  EXPECT_LT(r.status().ToString().size(), 200u);
}

}  // namespace
}  // namespace sqpr
