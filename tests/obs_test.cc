// Tests for the observability layer (src/obs/): the log-bucketed
// histogram behind every latency stat, the flight-recorder trace ring,
// and their serialised forms. Three contracts are pinned here:
//
//  * Histogram quantiles stay within one sub-bucket (<= 12.5% relative)
//    of the exact nearest-rank Percentile() they replaced, with exact
//    extrema — so swapping the service's sample window for buckets
//    cannot silently distort the bench numbers.
//  * The trace ring is a flight recorder: a full ring keeps the most
//    recent `capacity` spans and counts every overwritten one as a
//    drop; concurrent emit + drain is safe (this test is the TSan
//    stress the CI sanitizer job runs).
//  * Tracing never gates behavior: a closed-loop replay with the
//    recorder enabled commits the same deployment fingerprint as one
//    with it disabled (docs/ARCHITECTURE.md §4 + §7).

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/stats.h"
#include "model/catalog.h"
#include "model/cluster.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/planning_service.h"
#include "workload/generator.h"
#include "workload/trace.h"

namespace sqpr {
namespace {

using obs::Histogram;
using obs::SpanRecord;
using obs::ThreadTraceStats;
using obs::TraceRecorder;

// ---------------------------------------------------------------------------
// Histogram

TEST(HistogramTest, BucketBoundariesContainTheirValues) {
  // Lower bounds must be strictly increasing...
  for (int i = 1; i < Histogram::kNumBuckets; ++i) {
    EXPECT_LT(Histogram::BucketLowerBound(i - 1), Histogram::BucketLowerBound(i))
        << "bucket " << i;
  }
  // ...and every value must land in the bucket whose [lo, next_lo)
  // range contains it. Sweep octaves plus random points.
  std::mt19937_64 rng(42);
  std::uniform_real_distribution<double> frac(1.0, 2.0);
  for (int exp = Histogram::kMinExp; exp < Histogram::kMaxExp; ++exp) {
    for (int rep = 0; rep < 8; ++rep) {
      const double v = std::ldexp(frac(rng), exp);
      const int idx = Histogram::BucketIndex(v);
      ASSERT_GE(idx, 0);
      ASSERT_LT(idx, Histogram::kNumBuckets);
      EXPECT_LE(Histogram::BucketLowerBound(idx), v) << "value " << v;
      if (idx + 1 < Histogram::kNumBuckets) {
        EXPECT_LT(v, Histogram::BucketLowerBound(idx + 1)) << "value " << v;
      }
    }
  }
  // Out-of-range values clamp into the edge buckets rather than UB.
  EXPECT_EQ(Histogram::BucketIndex(0.0), 0);
  EXPECT_EQ(Histogram::BucketIndex(1e300), Histogram::kNumBuckets - 1);
}

TEST(HistogramTest, ExactMoments) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
  h.Add(2.0);
  h.Add(8.0);
  h.Add(5.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 15.0);
  EXPECT_DOUBLE_EQ(h.mean(), 5.0);
  EXPECT_DOUBLE_EQ(h.min(), 2.0);
  EXPECT_DOUBLE_EQ(h.max(), 8.0);
}

TEST(HistogramTest, NegativeAndNanClampToZero) {
  Histogram h;
  h.Add(-3.0);
  h.Add(std::nan(""));
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

TEST(HistogramTest, QuantilesTrackExactPercentileWithinOneSubBucket) {
  // Latency-shaped samples (lognormal): the histogram's quantile must
  // stay within one sub-bucket (12.5% relative) of the exact
  // nearest-rank answer, and be exact at the extrema. This is the bound
  // the bench schema relies on when it reports solver p50/p95/p99 from
  // buckets instead of a stored window.
  std::mt19937_64 rng(7);
  std::lognormal_distribution<double> dist(1.5, 1.0);
  Histogram h;
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    const double v = dist(rng);
    samples.push_back(v);
    h.Add(v);
  }
  for (double q : {0.10, 0.50, 0.90, 0.95, 0.99}) {
    const double exact = Percentile(samples, q);
    const double approx = h.Quantile(q);
    EXPECT_NEAR(approx, exact, 0.125 * exact)
        << "q=" << q << " exact=" << exact << " approx=" << approx;
  }
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), h.min());
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), h.max());
}

TEST(HistogramTest, CopyIsASnapshot) {
  Histogram h;
  h.Add(1.0);
  h.Add(4.0);
  Histogram copy = h;
  h.Add(100.0);
  EXPECT_EQ(copy.count(), 2u);
  EXPECT_DOUBLE_EQ(copy.max(), 4.0);
  EXPECT_EQ(h.count(), 3u);
}

// ---------------------------------------------------------------------------
// Metrics registry

TEST(MetricsRegistryTest, StablePointersAndJsonSchema) {
  obs::MetricsRegistry reg;
  obs::Counter* c = reg.counter("service.events");
  c->Increment(41);
  reg.counter("service.events")->Increment();  // same counter
  EXPECT_EQ(c->value(), 42);
  obs::Histogram* h = reg.histogram("service.solve_ms");
  h->Add(3.0);
  h->Add(5.0);

  const std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"schema\": \"sqpr-metrics-v1\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"service.events\": 42"), std::string::npos) << json;
  for (const char* field :
       {"\"count\"", "\"sum\"", "\"mean\"", "\"min\"", "\"max\"", "\"p50\"",
        "\"p90\"", "\"p95\"", "\"p99\""}) {
    EXPECT_NE(json.find(field), std::string::npos) << field << " missing";
  }
}

TEST(MetricsSnapshotTest, OpenMetricsEscapesLabelsAndSanitizesNames) {
  obs::MetricsRegistry reg;
  reg.counter("service.events")->Increment(7);
  reg.histogram("service.admit_ms")->Add(2.0);
  const obs::MetricsSnapshot snap = reg.TakeSnapshot();

  // Label values hit all three ABNF escapes (backslash, double quote,
  // newline); one label key needs name sanitisation.
  const std::map<std::string, std::string> labels = {
      {"path", "C:\\tmp\\x"},
      {"quote", "say \"hi\""},
      {"nl", "line1\nline2"},
      {"bad-key", "v"},
  };
  const std::string text = snap.ToOpenMetrics(labels);

  // Dotted metric names fold to underscores; counters get _total.
  EXPECT_NE(text.find("# TYPE service_events counter"), std::string::npos)
      << text;
  EXPECT_NE(text.find("service_events_total{"), std::string::npos) << text;
  EXPECT_NE(text.find("# TYPE service_admit_ms summary"), std::string::npos)
      << text;
  EXPECT_NE(text.find("service_admit_ms{"), std::string::npos) << text;
  EXPECT_NE(text.find("quantile=\"0.99\""), std::string::npos) << text;

  // Escapes, rendered: path="C:\\tmp\\x", quote="say \"hi\"",
  // nl="line1\nline2" — and the raw (unescaped) forms must be absent.
  EXPECT_NE(text.find("path=\"C:\\\\tmp\\\\x\""), std::string::npos) << text;
  EXPECT_NE(text.find("quote=\"say \\\"hi\\\"\""), std::string::npos) << text;
  EXPECT_NE(text.find("nl=\"line1\\nline2\""), std::string::npos) << text;
  EXPECT_EQ(text.find("line1\nline2"), std::string::npos)
      << "a raw newline survived inside a label value";
  EXPECT_NE(text.find("bad_key=\"v\""), std::string::npos) << text;
  EXPECT_EQ(text.find("bad-key"), std::string::npos) << text;

  // The exposition terminator, as the final line.
  const std::string eof = "# EOF\n";
  ASSERT_GE(text.size(), eof.size());
  EXPECT_EQ(text.substr(text.size() - eof.size()), eof);
}

TEST(MetricsSnapshotTest, DeltaSinceClampsAndResolvesWindowQuantiles) {
  obs::MetricsRegistry reg;
  obs::Counter* c = reg.counter("service.events");
  obs::Histogram* h = reg.histogram("service.solve_ms");

  // First window: 100 fast samples.
  c->Increment(5);
  for (int i = 0; i < 100; ++i) h->Add(1.0);
  const obs::MetricsSnapshot s0 = reg.TakeSnapshot();

  // Second window: 100 slow samples only.
  c->Increment(3);
  for (int i = 0; i < 100; ++i) h->Add(1000.0);
  const obs::MetricsSnapshot s1 = reg.TakeSnapshot();

  const obs::MetricsSnapshot delta = s1.DeltaSince(s0);
  EXPECT_EQ(delta.counters.at("service.events"), 3);
  const obs::HistogramSnapshot& dh = delta.histograms.at("service.solve_ms");
  EXPECT_EQ(dh.count, 100u);
  EXPECT_NEAR(dh.sum, 100000.0, 1e-6);
  // The delta's quantiles resolve from the WINDOW's buckets: this
  // window saw only slow samples, so its p50 sits at ~1000 even though
  // the cumulative p50 (rank 100 of 200) still lands on the fast group.
  EXPECT_NEAR(dh.Quantile(0.5), 1000.0, 0.125 * 1000.0);
  EXPECT_LT(s1.histograms.at("service.solve_ms").Quantile(0.5), 2.0);

  // Reversed snapshot order (what a racy torn read looks like) clamps
  // every monotone field at zero instead of wrapping.
  const obs::MetricsSnapshot rev = s0.DeltaSince(s1);
  EXPECT_EQ(rev.counters.at("service.events"), 0);
  const obs::HistogramSnapshot& rh = rev.histograms.at("service.solve_ms");
  EXPECT_EQ(rh.count, 0u);
  EXPECT_DOUBLE_EQ(rh.sum, 0.0);
  for (const uint64_t b : rh.buckets) EXPECT_EQ(b, 0u);

  // Metrics absent from `earlier` delta against zero.
  const obs::MetricsSnapshot from_zero = s0.DeltaSince(obs::MetricsSnapshot{});
  EXPECT_EQ(from_zero.counters.at("service.events"), 5);
  EXPECT_EQ(from_zero.histograms.at("service.solve_ms").count, 100u);
}

// ---------------------------------------------------------------------------
// Log level filter

TEST(LoggingTest, ParseLogLevel) {
  using logging_internal::LogLevel;
  using logging_internal::ParseLogLevel;
  EXPECT_EQ(ParseLogLevel(nullptr), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("INFO"), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("WARN"), LogLevel::kWarn);
  EXPECT_EQ(ParseLogLevel("WARNING"), LogLevel::kWarn);
  EXPECT_EQ(ParseLogLevel("FATAL"), LogLevel::kFatal);
  EXPECT_EQ(ParseLogLevel("ERROR"), LogLevel::kFatal);
  EXPECT_EQ(ParseLogLevel("banana"), LogLevel::kInfo);
}

// ---------------------------------------------------------------------------
// Trace ring

TEST(TraceTest, DisabledSpansAreInert) {
  TraceRecorder::Get().Disable();
  SQPR_TRACE_SPAN_ARGS(span, "test/inert", nullptr, nullptr);
  EXPECT_FALSE(span.active());
}

TEST(TraceTest, RingWrapKeepsRecentWindowAndCountsDrops) {
  TraceRecorder& rec = TraceRecorder::Get();
  TraceRecorder::Options options;
  options.per_thread_capacity = 16;
  rec.Enable(options);
  const uint32_t id = TraceRecorder::RegisterSpan("test/wrap", "seq", nullptr);

  // Fresh thread -> fresh ring with the small capacity; tag each span
  // with its sequence number so the retained window is checkable.
  constexpr uint64_t kEmitted = 50;
  std::thread emitter([&] {
    TraceRecorder::SetCurrentThreadName("wrap-thread");
    for (uint64_t i = 0; i < kEmitted; ++i) {
      rec.Emit(id, /*start_ns=*/i, /*dur_ns=*/1, /*virt_ms=*/-1, i, 0);
    }
  });
  emitter.join();
  rec.Disable();

  std::vector<ThreadTraceStats> stats;
  std::vector<SpanRecord> spans = rec.Drain(&stats);

  const ThreadTraceStats* ts = nullptr;
  for (const ThreadTraceStats& s : stats) {
    if (s.thread_name == "wrap-thread") ts = &s;
  }
  ASSERT_NE(ts, nullptr);
  EXPECT_EQ(ts->emitted, kEmitted);
  EXPECT_EQ(ts->dropped, kEmitted - 16);

  // The retained window is the most recent 16 spans, oldest first.
  std::vector<uint64_t> seqs;
  for (const SpanRecord& s : spans) {
    if (s.name_id == id) seqs.push_back(s.args[0]);
  }
  ASSERT_EQ(seqs.size(), 16u);
  for (size_t i = 0; i < seqs.size(); ++i) {
    EXPECT_EQ(seqs[i], kEmitted - 16 + i);
  }

  // A second drain returns nothing new and drop counters stay put.
  std::vector<ThreadTraceStats> stats2;
  std::vector<SpanRecord> again = rec.Drain(&stats2);
  for (const SpanRecord& s : again) EXPECT_NE(s.name_id, id);
  for (const ThreadTraceStats& s : stats2) {
    if (s.thread_name == "wrap-thread") EXPECT_EQ(s.dropped, kEmitted - 16);
  }
}

TEST(TraceTest, ConcurrentEmitAndDrainStress) {
  // The TSan job runs exactly this: emitters hammer their rings while
  // a reader drains mid-flight. Correctness bar: no torn records (every
  // drained span carries the id and arg pattern its emitter wrote) and
  // exact per-thread emit accounting at the end.
  TraceRecorder& rec = TraceRecorder::Get();
  TraceRecorder::Options options;
  options.per_thread_capacity = 256;
  rec.Enable(options);
  const uint32_t id =
      TraceRecorder::RegisterSpan("test/stress", "thread", "seq");

  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 20000;
  std::atomic<bool> done{false};
  std::vector<std::thread> emitters;
  for (int t = 0; t < kThreads; ++t) {
    emitters.emplace_back([&, t] {
      TraceRecorder::SetCurrentThreadName("stress-" + std::to_string(t));
      for (uint64_t i = 0; i < kPerThread; ++i) {
        obs::SpanScope span(id);
        span.set_args(static_cast<uint64_t>(t), i);
      }
    });
  }
  std::vector<SpanRecord> harvested;
  std::thread reader([&] {
    while (!done.load(std::memory_order_relaxed)) {
      std::vector<SpanRecord> batch = rec.Drain();
      harvested.insert(harvested.end(), batch.begin(), batch.end());
      std::this_thread::yield();
    }
  });
  for (std::thread& t : emitters) t.join();
  done.store(true, std::memory_order_relaxed);
  reader.join();
  rec.Disable();

  std::vector<ThreadTraceStats> stats;
  std::vector<SpanRecord> rest = rec.Drain(&stats);
  harvested.insert(harvested.end(), rest.begin(), rest.end());

  uint64_t stress_emitted = 0;
  for (const ThreadTraceStats& s : stats) {
    if (s.thread_name.rfind("stress-", 0) == 0) stress_emitted += s.emitted;
  }
  EXPECT_EQ(stress_emitted, kThreads * kPerThread);

  // Every harvested stress span must be internally consistent — a torn
  // slot would pair one emit's thread arg with another's.
  uint64_t seen = 0;
  for (const SpanRecord& s : harvested) {
    if (s.name_id != id) continue;
    ++seen;
    EXPECT_LT(s.args[0], static_cast<uint64_t>(kThreads));
    EXPECT_LT(s.args[1], kPerThread);
  }
  EXPECT_GT(seen, 0u);
  EXPECT_LE(seen, kThreads * kPerThread);
}

TEST(TraceTest, ChromeTraceJsonIsWellFormed) {
  TraceRecorder& rec = TraceRecorder::Get();
  rec.Enable();
  rec.Drain();  // discard anything prior tests left in the rings
  TraceRecorder::SetCurrentThreadName("loop");
  {
    SQPR_TRACE_SPAN_ARGS(span, "test/json.span", "alpha", "beta");
    span.set_args(7, 9);
  }
  { SQPR_TRACE_SPAN("test/json.plain"); }
  rec.Disable();
  const std::string json = rec.ChromeTraceJson();

  // Schema landmarks (tools/check_trace.py validates the same set).
  for (const char* needle :
       {"\"traceEvents\"", "\"schema\": \"sqpr-trace-v1\"", "\"ph\": \"M\"",
        "\"thread_name\"", "\"ph\": \"X\"", "\"name\": \"test/json.span\"",
        "\"cat\": \"test\"", "\"alpha\": 7", "\"beta\": 9", "\"ts\":",
        "\"dur\":", "\"emitted_spans\"", "\"dropped_spans\"", "\"threads\""}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle << " missing";
  }

  // Structural check: braces/brackets balance outside string literals.
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : json) {
    if (escaped) {
      escaped = false;
    } else if (c == '\\') {
      escaped = true;
    } else if (c == '"') {
      in_string = !in_string;
    } else if (!in_string && (c == '{' || c == '[')) {
      ++depth;
    } else if (!in_string && (c == '}' || c == ']')) {
      --depth;
      ASSERT_GE(depth, 0);
    }
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

// ---------------------------------------------------------------------------
// Determinism contract with tracing enabled

/// Minimal closed-loop replay (a condensed Replay() from
/// service_replay_property_test.cc): fresh state per call, node-bounded
/// solver, self-measuring loop.
std::string ClosedLoopFingerprint(uint64_t seed, int workers) {
  Cluster cluster(3, HostSpec{0.6, 70.0, 70.0, ""}, 140.0);
  Catalog catalog(CostModel{});
  WorkloadConfig wc;
  wc.num_base_streams = 18;
  wc.num_queries = 30;
  wc.arities = {2, 3};
  wc.seed = seed;
  Result<Workload> workload = GenerateWorkload(wc, 3, &catalog);
  EXPECT_TRUE(workload.ok()) << workload.status().ToString();

  TraceConfig tc;
  tc.num_events = 36;
  tc.seed = seed * 977 + 13;
  tc.mean_gap_ms = 40;
  tc.drift_weight = 0.11;
  tc.tick_weight = 0.55;
  tc.min_drift_reports = 2;
  tc.closed_loop = true;
  Result<std::vector<Event>> trace = GenerateTrace(tc, *workload, 3, catalog);
  EXPECT_TRUE(trace.ok()) << trace.status().ToString();

  ServiceOptions options;
  options.planner.timeout_ms = 60000;
  options.planner.max_nodes = 80;
  options.replan.workers = workers;
  options.closed_loop = true;
  options.telemetry.measure_period = 2;
  options.telemetry.seed = seed;
  options.telemetry.noise = 0.05;
  PlanningService service(&cluster, &catalog, options);
  for (const Event& e : *trace) EXPECT_TRUE(service.Enqueue(e).ok());
  EXPECT_TRUE(service.RunUntilIdle().ok());
  return service.deployment().Fingerprint();
}

TEST(TraceTest, TracingNeverGatesBehavior) {
  // The §4 contract says replays are bit-identical across worker
  // counts; §7 extends it to "and regardless of whether the flight
  // recorder is on". Same seed, tracing off vs on, inline and
  // multi-worker.
  const uint64_t seed = 11;
  TraceRecorder::Get().Disable();
  const std::string off_inline = ClosedLoopFingerprint(seed, 0);
  const std::string off_workers = ClosedLoopFingerprint(seed, 4);
  EXPECT_EQ(off_inline, off_workers);

  TraceRecorder::Get().Enable();
  const std::string on_inline = ClosedLoopFingerprint(seed, 0);
  const std::string on_workers = ClosedLoopFingerprint(seed, 4);
  TraceRecorder::Get().Disable();

  EXPECT_EQ(off_inline, on_inline) << "tracing changed the inline replay";
  EXPECT_EQ(off_inline, on_workers) << "tracing changed the workers=4 replay";

  // And the traced run actually recorded the event path.
  std::vector<SpanRecord> spans = TraceRecorder::Get().Drain();
  EXPECT_FALSE(spans.empty());
}

}  // namespace
}  // namespace sqpr
