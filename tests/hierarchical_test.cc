// Tests for the §VII hierarchical planner: site partitioning, query
// assignment, subset construction, end-to-end admission and the
// invariant that committed plans never use out-of-subset hosts beyond
// the allowed border roles.

#include "planner/hierarchical/hierarchical_planner.h"

#include <gtest/gtest.h>

#include <set>

#include "planner/sqpr/sqpr_planner.h"
#include "workload/generator.h"

namespace sqpr {
namespace {

struct Fixture {
  explicit Fixture(int hosts, int sites, uint64_t seed = 3)
      : catalog(CostModel{}),
        cluster(hosts, HostSpec{0.8, 120.0, 120.0, ""}, 240.0) {
    WorkloadConfig wc;
    wc.num_base_streams = 6 * hosts;
    wc.num_queries = 12 * hosts;
    wc.arities = {2, 3};
    wc.seed = seed;
    workload = *GenerateWorkload(wc, hosts, &catalog);
    HierarchicalPlanner::Options options;
    options.num_sites = sites;
    options.timeout_ms = 150;
    planner = std::make_unique<HierarchicalPlanner>(&cluster, &catalog,
                                                    options);
  }

  Catalog catalog;
  Cluster cluster;
  Workload workload;
  std::unique_ptr<HierarchicalPlanner> planner;
};

TEST(HierarchicalTest, SitesPartitionHosts) {
  Fixture f(7, 3);
  std::set<HostId> seen;
  int total = 0;
  for (int site = 0; site < 3; ++site) {
    for (HostId h : f.planner->SiteHosts(site)) {
      EXPECT_TRUE(seen.insert(h).second) << "host in two sites";
      ++total;
    }
  }
  EXPECT_EQ(total, 7);
}

TEST(HierarchicalTest, AssignPrefersLeafMajoritySite) {
  // 4 hosts, 2 sites {0,1} and {2,3}. A join whose leaves both live on
  // site-1 hosts must be assigned to site 1.
  Catalog catalog(CostModel{});
  Cluster cluster(4, HostSpec{1.0, 100.0, 100.0, ""}, 200.0);
  const StreamId a = catalog.AddBaseStream(2, 10.0, "a");
  const StreamId b = catalog.AddBaseStream(3, 10.0, "b");
  const StreamId ab = *catalog.CanonicalJoinStream({a, b});
  HierarchicalPlanner::Options options;
  options.num_sites = 2;
  HierarchicalPlanner planner(&cluster, &catalog, options);
  EXPECT_EQ(*planner.AssignSite(ab), 1);
}

TEST(HierarchicalTest, AdmitsAndValidates) {
  Fixture f(6, 2);
  int admitted = 0;
  for (StreamId q : f.workload.queries) {
    Result<PlanningStats> stats = f.planner->SubmitQuery(q);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    admitted += stats->admitted && !stats->already_served;
  }
  EXPECT_GT(admitted, 0);
  EXPECT_TRUE(f.planner->deployment().Validate().ok());
  EXPECT_EQ(static_cast<int>(f.planner->admitted_queries().size()),
            admitted);
}

TEST(HierarchicalTest, DedupReportsAlreadyServed) {
  Fixture f(4, 2);
  StreamId q = f.workload.queries.front();
  Result<PlanningStats> first = f.planner->SubmitQuery(q);
  ASSERT_TRUE(first.ok());
  if (first->admitted) {
    Result<PlanningStats> again = f.planner->SubmitQuery(q);
    ASSERT_TRUE(again.ok());
    EXPECT_TRUE(again->already_served);
    EXPECT_TRUE(again->admitted);
  }
}

TEST(HierarchicalTest, SingleSiteMatchesFlatSqprClosely) {
  // With one site the subset covers the whole cluster, so admissions
  // should be in the same ballpark as flat SQPR without its fallback.
  Fixture f(4, 1, /*seed=*/11);

  Catalog catalog2(CostModel{});
  Cluster cluster2(4, HostSpec{0.8, 120.0, 120.0, ""}, 240.0);
  WorkloadConfig wc;
  wc.num_base_streams = 24;
  wc.num_queries = 48;
  wc.arities = {2, 3};
  wc.seed = 11;
  Workload workload2 = *GenerateWorkload(wc, 4, &catalog2);
  SqprPlanner::Options flat_options;
  flat_options.timeout_ms = 150;
  flat_options.greedy_fallback = false;
  SqprPlanner flat(&cluster2, &catalog2, flat_options);

  int hier = 0, flat_admitted = 0;
  for (StreamId q : f.workload.queries) {
    hier += f.planner->SubmitQuery(q)->admitted ? 1 : 0;
  }
  for (StreamId q : workload2.queries) {
    flat_admitted += flat.SubmitQuery(q)->admitted ? 1 : 0;
  }
  // Identical models modulo solver nondeterminism-free; allow slack for
  // objective-equivalent plans that change later admissions.
  EXPECT_NEAR(hier, flat_admitted, 0.25 * flat_admitted + 3.0);
}

TEST(HierarchicalTest, OperatorsStayWithinAssignedSubset) {
  // After planning, every placed operator must sit on a host that is in
  // some site's subset-eligible role: since subsets are per-query we
  // check the weaker global invariant that hosts running operators also
  // carry CPU accounting and the deployment validates; plus at least one
  // site boundary is respected: no operator host is outside the union of
  // all sites (trivially all hosts) — so instead check per-query subset
  // on a fresh single submission.
  Catalog catalog(CostModel{});
  Cluster cluster(6, HostSpec{1.0, 200.0, 200.0, ""}, 400.0);
  const StreamId a = catalog.AddBaseStream(0, 10.0, "a");
  const StreamId b = catalog.AddBaseStream(1, 10.0, "b");
  const StreamId ab = *catalog.CanonicalJoinStream({a, b});
  HierarchicalPlanner::Options options;
  options.num_sites = 3;  // sites {0,1} {2,3} {4,5}
  HierarchicalPlanner planner(&cluster, &catalog, options);

  Result<PlanningStats> stats = planner.SubmitQuery(ab);
  ASSERT_TRUE(stats.ok());
  ASSERT_TRUE(stats->admitted);
  // Leaves live on hosts 0 and 1 -> site 0; subset = {0, 1}. Hosts 2..5
  // must be untouched.
  for (HostId h = 2; h < 6; ++h) {
    EXPECT_TRUE(planner.deployment().OperatorsOn(h).empty()) << h;
    EXPECT_DOUBLE_EQ(planner.deployment().CpuUsed(h), 0.0) << h;
    EXPECT_DOUBLE_EQ(planner.deployment().NicOutUsed(h), 0.0) << h;
  }
}

}  // namespace
}  // namespace sqpr
