#include <gtest/gtest.h>

#include <vector>

#include "engine/operators.h"
#include "engine/tuple.h"

namespace sqpr {
namespace engine {
namespace {

Schema BaseSchema() {
  return Schema({{"key", ValueType::kInt64}, {"payload", ValueType::kDouble}});
}

Tuple MakeTuple(int64_t ts, int64_t key, double payload = 0.5) {
  Tuple t;
  t.ts_ms = ts;
  t.values = {Value(key), Value(payload)};
  return t;
}

// ----------------------------------------------------------------- Tuple

TEST(SchemaTest, FindColumn) {
  Schema s = BaseSchema();
  EXPECT_EQ(s.FindColumn("key"), 0);
  EXPECT_EQ(s.FindColumn("payload"), 1);
  EXPECT_EQ(s.FindColumn("missing"), -1);
}

TEST(SchemaTest, ConcatRenamesDuplicates) {
  Schema joined = Schema::Concat(BaseSchema(), BaseSchema());
  EXPECT_EQ(joined.num_columns(), 4);
  EXPECT_EQ(joined.column(2).name, "r_key");
  EXPECT_EQ(joined.column(3).name, "r_payload");
}

TEST(SchemaTest, ProjectSubset) {
  auto projected = BaseSchema().Project({1});
  ASSERT_TRUE(projected.ok());
  EXPECT_EQ(projected->num_columns(), 1);
  EXPECT_EQ(projected->column(0).name, "payload");
  EXPECT_FALSE(BaseSchema().Project({5}).ok());
}

TEST(TupleTest, ConformanceChecks) {
  const Schema s = BaseSchema();
  EXPECT_TRUE(CheckConforms(s, MakeTuple(0, 1)).ok());
  Tuple wrong_arity;
  wrong_arity.values = {Value(int64_t{1})};
  EXPECT_FALSE(CheckConforms(s, wrong_arity).ok());
  Tuple wrong_type;
  wrong_type.values = {Value(1.5), Value(1.5)};
  EXPECT_FALSE(CheckConforms(s, wrong_type).ok());
}

TEST(TupleTest, ValueToString) {
  EXPECT_EQ(ValueToString(Value(int64_t{7})), "7");
  EXPECT_EQ(ValueToString(Value(std::string("x"))), "x");
}

// ------------------------------------------------------------------ Join

TEST(JoinTest, MatchesEqualKeysWithinWindow) {
  SymmetricHashJoin join(BaseSchema(), BaseSchema(), 0, 0, 1000);
  std::vector<Tuple> out;
  auto emit = [&](const Tuple& t) { out.push_back(t); };
  ASSERT_TRUE(join.Push(0, MakeTuple(0, 42), emit).ok());
  EXPECT_TRUE(out.empty());  // nothing on the other side yet
  ASSERT_TRUE(join.Push(1, MakeTuple(100, 42), emit).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].values.size(), 4u);
  EXPECT_EQ(std::get<int64_t>(out[0].values[0]), 42);
  EXPECT_EQ(out[0].ts_ms, 100);  // max of the two sides
}

TEST(JoinTest, NoMatchOnDifferentKeys) {
  SymmetricHashJoin join(BaseSchema(), BaseSchema(), 0, 0, 1000);
  std::vector<Tuple> out;
  auto emit = [&](const Tuple& t) { out.push_back(t); };
  ASSERT_TRUE(join.Push(0, MakeTuple(0, 1), emit).ok());
  ASSERT_TRUE(join.Push(1, MakeTuple(0, 2), emit).ok());
  EXPECT_TRUE(out.empty());
}

TEST(JoinTest, WindowExpiryPreventsOldMatches) {
  SymmetricHashJoin join(BaseSchema(), BaseSchema(), 0, 0, 100);
  std::vector<Tuple> out;
  auto emit = [&](const Tuple& t) { out.push_back(t); };
  ASSERT_TRUE(join.Push(0, MakeTuple(0, 5), emit).ok());
  ASSERT_TRUE(join.Push(1, MakeTuple(500, 5), emit).ok());  // too late
  EXPECT_TRUE(out.empty());
}

TEST(JoinTest, MultipleMatchesEmitAll) {
  SymmetricHashJoin join(BaseSchema(), BaseSchema(), 0, 0, 1000);
  std::vector<Tuple> out;
  auto emit = [&](const Tuple& t) { out.push_back(t); };
  ASSERT_TRUE(join.Push(0, MakeTuple(0, 9), emit).ok());
  ASSERT_TRUE(join.Push(0, MakeTuple(10, 9), emit).ok());
  ASSERT_TRUE(join.Push(1, MakeTuple(20, 9), emit).ok());
  EXPECT_EQ(out.size(), 2u);
}

TEST(JoinTest, LeftRightOrderPreserved) {
  SymmetricHashJoin join(BaseSchema(), BaseSchema(), 0, 0, 1000);
  std::vector<Tuple> out;
  auto emit = [&](const Tuple& t) { out.push_back(t); };
  // Right arrives first; output must still be (left values, right values).
  ASSERT_TRUE(join.Push(1, MakeTuple(0, 3, 0.25), emit).ok());
  ASSERT_TRUE(join.Push(0, MakeTuple(5, 3, 0.75), emit).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(std::get<double>(out[0].values[1]), 0.75);  // left payload
  EXPECT_DOUBLE_EQ(std::get<double>(out[0].values[3]), 0.25);  // right payload
}

TEST(JoinTest, EvictionShrinksWindow) {
  SymmetricHashJoin join(BaseSchema(), BaseSchema(), 0, 0, 100);
  auto emit = [](const Tuple&) {};
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(join.Push(0, MakeTuple(i * 10, i), emit).ok());
  }
  // Pushing on the other side at a late timestamp evicts old entries.
  ASSERT_TRUE(join.Push(1, MakeTuple(1000, 999), emit).ok());
  EXPECT_LT(join.window_size(0), 50u);
}

TEST(JoinTest, InvalidPortRejected) {
  SymmetricHashJoin join(BaseSchema(), BaseSchema(), 0, 0, 100);
  auto emit = [](const Tuple&) {};
  EXPECT_FALSE(join.Push(2, MakeTuple(0, 1), emit).ok());
}

TEST(JoinTest, CountersTrackTraffic) {
  SymmetricHashJoin join(BaseSchema(), BaseSchema(), 0, 0, 1000);
  auto emit = [](const Tuple&) {};
  ASSERT_TRUE(join.Push(0, MakeTuple(0, 1), emit).ok());
  ASSERT_TRUE(join.Push(1, MakeTuple(1, 1), emit).ok());
  EXPECT_EQ(join.tuples_in(), 2);
  EXPECT_EQ(join.tuples_out(), 1);
}

// ------------------------------------------------------- Filter / Project

TEST(FilterTest, KeepsMatchingTuples) {
  ModuloFilter filter(BaseSchema(), 0, 2, 0);
  std::vector<Tuple> out;
  auto emit = [&](const Tuple& t) { out.push_back(t); };
  ASSERT_TRUE(filter.Push(0, MakeTuple(0, 4), emit).ok());
  ASSERT_TRUE(filter.Push(0, MakeTuple(1, 5), emit).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(std::get<int64_t>(out[0].values[0]), 4);
}

TEST(FilterTest, NegativeKeysHandled) {
  ModuloFilter filter(BaseSchema(), 0, 3, 1);
  std::vector<Tuple> out;
  auto emit = [&](const Tuple& t) { out.push_back(t); };
  ASSERT_TRUE(filter.Push(0, MakeTuple(0, -2), emit).ok());  // -2 mod 3 == 1
  EXPECT_EQ(out.size(), 1u);
}

TEST(ProjectTest, SelectsColumns) {
  Project project(BaseSchema(), {1});
  std::vector<Tuple> out;
  auto emit = [&](const Tuple& t) { out.push_back(t); };
  ASSERT_TRUE(project.Push(0, MakeTuple(3, 7, 0.9), emit).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].values.size(), 1u);
  EXPECT_DOUBLE_EQ(std::get<double>(out[0].values[0]), 0.9);
  EXPECT_EQ(out[0].ts_ms, 3);
}

TEST(RelayTest, PassesThroughUnchanged) {
  Relay relay(BaseSchema());
  std::vector<Tuple> out;
  auto emit = [&](const Tuple& t) { out.push_back(t); };
  ASSERT_TRUE(relay.Push(0, MakeTuple(1, 2), emit).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(std::get<int64_t>(out[0].values[0]), 2);
  EXPECT_EQ(relay.tuples_out(), 1);
}

// ----------------------------------------------------------------- Source

TEST(RateSourceTest, EmitsAtConfiguredRate) {
  RateSource src(100.0, 16, 1);  // 100 tuples/sec
  int count = 0;
  src.EmitUntil(1000, [&](const Tuple&) { ++count; });
  EXPECT_NEAR(count, 101, 2);  // t=0 inclusive
}

TEST(RateSourceTest, KeysWithinDomain) {
  RateSource src(1000.0, 8, 2);
  src.EmitUntil(1000, [&](const Tuple& t) {
    const int64_t key = std::get<int64_t>(t.values[0]);
    EXPECT_GE(key, 0);
    EXPECT_LT(key, 8);
  });
}

TEST(RateSourceTest, TimestampsMonotone) {
  RateSource src(500.0, 8, 3);
  int64_t last = -1;
  src.EmitUntil(2000, [&](const Tuple& t) {
    EXPECT_GE(t.ts_ms, last);
    last = t.ts_ms;
  });
}

// ------------------------------------ Statistical selectivity validation

TEST(JoinStatisticsTest, MeasuredRateMatchesTheory) {
  // Two independent 200-tuple/sec streams with key domain 64 and a 500 ms
  // window: expected output 2*200*200*0.5/64 = 625 tuples/sec.
  const double rate = 200.0;
  const int64_t domain = 64;
  const int64_t window_ms = 500;
  SymmetricHashJoin join(BaseSchema(), BaseSchema(), 0, 0, window_ms);
  RateSource left(rate, domain, 10);
  RateSource right(rate, domain, 20);
  int64_t matches = 0;
  auto emit = [&](const Tuple&) { ++matches; };
  const int64_t duration_ms = 20000;
  for (int64_t now = 0; now <= duration_ms; now += 10) {
    left.EmitUntil(now, [&](const Tuple& t) {
      ASSERT_TRUE(join.Push(0, t, emit).ok());
    });
    right.EmitUntil(now, [&](const Tuple& t) {
      ASSERT_TRUE(join.Push(1, t, emit).ok());
    });
  }
  const double measured = static_cast<double>(matches) / (duration_ms / 1000.0);
  const double expected =
      ExpectedJoinRate(rate, rate, window_ms / 1000.0, domain);
  EXPECT_NEAR(measured / expected, 1.0, 0.15);
}

}  // namespace
}  // namespace engine
}  // namespace sqpr
