#include <gtest/gtest.h>

#include "model/catalog.h"
#include "model/cluster.h"
#include "plan/deployment.h"
#include "planner/sqpr/sqpr_planner.h"
#include "sim/cluster_sim.h"

namespace sqpr {
namespace {

SimConfig FastSim() {
  SimConfig config;
  config.tuple_bytes = 1250.0;
  config.rate_scale = 0.01;  // keep tuple counts small in unit tests
  config.window_ms = 1000;
  config.duration_ms = 5000;
  return config;
}

TEST(ClusterSimTest, RejectsInvalidDeployment) {
  Catalog catalog{CostModel{}};
  Cluster cluster(2, HostSpec{1.0, 100.0, 100.0, ""}, 1000.0);
  const StreamId a = catalog.AddBaseStream(0, 10.0);
  Deployment dep(&cluster, &catalog);
  ASSERT_TRUE(dep.SetServing(a, 1).ok());  // a not available at host 1
  ClusterSim sim(dep, FastSim());
  EXPECT_FALSE(sim.Setup().ok());
}

TEST(ClusterSimTest, DeliversServedBaseStream) {
  Catalog catalog{CostModel{}};
  Cluster cluster(2, HostSpec{1.0, 100.0, 100.0, ""}, 1000.0);
  const StreamId a = catalog.AddBaseStream(0, 10.0);
  Deployment dep(&cluster, &catalog);
  ASSERT_TRUE(dep.SetServing(a, 0).ok());
  ClusterSim sim(dep, FastSim());
  ASSERT_TRUE(sim.Setup().ok());
  auto report = sim.Run();
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->delivered_tuples[a], 0);
  // Delivery consumes outgoing bandwidth at the serving host.
  EXPECT_GT(report->network_mbps[0], 0.0);
}

TEST(ClusterSimTest, BaseRateOverridesDriveInjectionNotCosts) {
  // The §IV-C ground-truth hook: sources inject at the override rate,
  // so the measured production rate tracks the override while the
  // catalog estimate is what the planner still believes.
  Catalog catalog{CostModel{}};
  Cluster cluster(2, HostSpec{1.0, 100.0, 100.0, ""}, 1000.0);
  const StreamId a = catalog.AddBaseStream(0, 10.0);
  Deployment dep(&cluster, &catalog);
  ASSERT_TRUE(dep.SetServing(a, 0).ok());

  SimConfig config = FastSim();
  auto measured_rate = [&](double override_mbps) {
    SimConfig c = config;
    if (override_mbps > 0) c.base_rate_overrides[a] = override_mbps;
    ClusterSim sim(dep, c);
    EXPECT_TRUE(sim.Setup().ok());
    auto report = sim.Run();
    EXPECT_TRUE(report.ok());
    return report->measured_rate_mbps[a];
  };

  const double nominal = measured_rate(0);
  const double doubled = measured_rate(20.0);
  EXPECT_NEAR(nominal, 10.0, 1.0);   // on estimate (quantisation only)
  EXPECT_NEAR(doubled, 20.0, 2.0);   // tracks the override
  EXPECT_DOUBLE_EQ(catalog.stream(a).rate_mbps, 10.0);  // estimate intact
}

TEST(ClusterSimTest, RelayedStreamCountsProductionOnce) {
  // A stream relayed over flows must not measure above its injection
  // rate: re-publication at the receiving hosts is the same tuple, and
  // double-counting it would feed phantom drift to the closed loop.
  Catalog catalog{CostModel{}};
  Cluster cluster(3, HostSpec{1.0, 100.0, 100.0, ""}, 1000.0);
  const StreamId a = catalog.AddBaseStream(0, 10.0);
  Deployment dep(&cluster, &catalog);
  ASSERT_TRUE(dep.AddFlow(0, 1, a).ok());
  ASSERT_TRUE(dep.AddFlow(1, 2, a).ok());
  ASSERT_TRUE(dep.SetServing(a, 2).ok());
  ClusterSim sim(dep, FastSim());
  ASSERT_TRUE(sim.Setup().ok());
  auto report = sim.Run();
  ASSERT_TRUE(report.ok());
  EXPECT_NEAR(report->measured_rate_mbps[a], 10.0, 1.0);
}

TEST(ClusterSimTest, RelayedStreamReachesRemoteServer) {
  Catalog catalog{CostModel{}};
  Cluster cluster(3, HostSpec{1.0, 100.0, 100.0, ""}, 1000.0);
  const StreamId a = catalog.AddBaseStream(0, 10.0);
  Deployment dep(&cluster, &catalog);
  ASSERT_TRUE(dep.AddFlow(0, 1, a).ok());
  ASSERT_TRUE(dep.AddFlow(1, 2, a).ok());
  ASSERT_TRUE(dep.SetServing(a, 2).ok());
  ClusterSim sim(dep, FastSim());
  ASSERT_TRUE(sim.Setup().ok());
  auto report = sim.Run();
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->delivered_tuples[a], 0);
  // The relay host sees both directions of traffic.
  EXPECT_GT(report->network_mbps[1], 0.0);
}

TEST(ClusterSimTest, JoinDeploymentProducesResults) {
  Catalog catalog{CostModel{}};
  Cluster cluster(2, HostSpec{2.0, 100.0, 100.0, ""}, 1000.0);
  const StreamId a = catalog.AddBaseStream(0, 10.0);
  const StreamId b = catalog.AddBaseStream(1, 10.0);
  auto op = catalog.JoinOperator(a, b);
  ASSERT_TRUE(op.ok());
  const StreamId ab = catalog.op(*op).output;
  Deployment dep(&cluster, &catalog);
  ASSERT_TRUE(dep.AddFlow(1, 0, b).ok());
  ASSERT_TRUE(dep.PlaceOperator(0, *op).ok());
  ASSERT_TRUE(dep.SetServing(ab, 0).ok());

  SimConfig config = FastSim();
  config.rate_scale = 0.05;
  config.duration_ms = 20000;
  ClusterSim sim(dep, config);
  ASSERT_TRUE(sim.Setup().ok());
  auto report = sim.Run();
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->delivered_tuples[ab], 0);
  EXPECT_GT(report->total_tuples_processed, 0);
  // The host running the join does measurable CPU work.
  EXPECT_GT(report->cpu_utilization[0], 0.0);
  // Host 1 only forwards; it burns network, not CPU.
  EXPECT_DOUBLE_EQ(report->cpu_utilization[1], 0.0);
  EXPECT_GT(report->network_mbps[1], 0.0);
}

TEST(ClusterSimTest, CpuUtilizationTracksPlannerEstimate) {
  // The measured CPU fraction at the join host should be within a small
  // factor of γ_o / ζ_h — the quantity the planner budgeted (§II-B).
  Catalog catalog{CostModel{}};
  Cluster cluster(2, HostSpec{1.0, 100.0, 100.0, ""}, 1000.0);
  const StreamId a = catalog.AddBaseStream(0, 10.0);
  const StreamId b = catalog.AddBaseStream(0, 10.0);
  auto op = catalog.JoinOperator(a, b);
  ASSERT_TRUE(op.ok());
  const StreamId ab = catalog.op(*op).output;
  Deployment dep(&cluster, &catalog);
  ASSERT_TRUE(dep.PlaceOperator(0, *op).ok());
  ASSERT_TRUE(dep.SetServing(ab, 0).ok());

  SimConfig config = FastSim();
  config.rate_scale = 0.02;
  config.duration_ms = 20000;
  ClusterSim sim(dep, config);
  ASSERT_TRUE(sim.Setup().ok());
  auto report = sim.Run();
  ASSERT_TRUE(report.ok());
  const double expected = catalog.op(*op).cpu_cost / cluster.host(0).cpu;
  EXPECT_NEAR(report->cpu_utilization[0], expected, expected * 0.2);
}

TEST(ClusterSimTest, EndToEndWithSqprPlanner) {
  // Plan with SQPR, then actually execute the committed deployment.
  Catalog catalog{CostModel{}};
  Cluster cluster(3, HostSpec{2.0, 100.0, 100.0, ""}, 1000.0);
  std::vector<StreamId> base;
  for (int i = 0; i < 6; ++i) {
    base.push_back(catalog.AddBaseStream(i % 3, 10.0));
  }
  SqprPlanner planner(&cluster, &catalog, {});
  auto q1 = catalog.CanonicalJoinStream({base[0], base[1]});
  auto q2 = catalog.CanonicalJoinStream({base[2], base[3]});
  ASSERT_TRUE(planner.SubmitQuery(*q1)->admitted);
  ASSERT_TRUE(planner.SubmitQuery(*q2)->admitted);

  SimConfig config = FastSim();
  config.rate_scale = 0.05;
  config.duration_ms = 30000;
  ClusterSim sim(planner.deployment(), config);
  ASSERT_TRUE(sim.Setup().ok());
  auto report = sim.Run();
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->delivered_tuples[*q1], 0);
  EXPECT_GT(report->delivered_tuples[*q2], 0);
}

TEST(ClusterSimTest, MeasuredCompositeRateNearCostModel) {
  // §IV-B drift detection input: the measured composite rate should land
  // within a factor of ~2 of the catalog's cost-model rate (key domains
  // are derived from the mid-band selectivity).
  Catalog catalog{CostModel{}};
  Cluster cluster(1, HostSpec{2.0, 100.0, 100.0, ""}, 1000.0);
  const StreamId a = catalog.AddBaseStream(0, 10.0);
  const StreamId b = catalog.AddBaseStream(0, 10.0);
  auto op = catalog.JoinOperator(a, b);
  ASSERT_TRUE(op.ok());
  const StreamId ab = catalog.op(*op).output;
  Deployment dep(&cluster, &catalog);
  ASSERT_TRUE(dep.PlaceOperator(0, *op).ok());
  ASSERT_TRUE(dep.SetServing(ab, 0).ok());

  SimConfig config = FastSim();
  config.rate_scale = 0.05;
  config.duration_ms = 30000;
  ClusterSim sim(dep, config);
  ASSERT_TRUE(sim.Setup().ok());
  auto report = sim.Run();
  ASSERT_TRUE(report.ok());
  const double modelled = catalog.stream(ab).rate_mbps;
  const double measured = report->measured_rate_mbps[ab];
  EXPECT_GT(measured, 0.0);
  EXPECT_LT(measured / modelled, 4.0);
  EXPECT_GT(measured / modelled, 0.25);
}

}  // namespace
}  // namespace sqpr
