// Tests for the §IV-B/§IV-C adaptive loop: catalog rate updates,
// deployment ledger refresh, drift detection and the full
// remove→update→evict→re-admit cycle.

#include "monitor/resource_monitor.h"

#include <gtest/gtest.h>

#include <cmath>

#include "model/catalog.h"
#include "model/cluster.h"
#include "plan/deployment.h"
#include "workload/generator.h"

namespace sqpr {
namespace {

TEST(CatalogRateUpdateTest, CompositeRatesAndCostsRecompute) {
  Catalog catalog(CostModel{});
  const StreamId a = catalog.AddBaseStream(0, 10.0, "a");
  const StreamId b = catalog.AddBaseStream(0, 10.0, "b");
  const OperatorId join = *catalog.JoinOperator(a, b);
  const StreamId ab = catalog.op(join).output;

  const double old_rate = catalog.stream(ab).rate_mbps;
  const double old_cpu = catalog.op(join).cpu_cost;
  ASSERT_TRUE(catalog.UpdateBaseRate(a, 30.0).ok());

  // Join output rate = selectivity x (30 + 10); selectivity is a pure
  // function of the leaf set, so the ratio is exactly 2x.
  EXPECT_NEAR(catalog.stream(ab).rate_mbps, old_rate * 2.0, 1e-12);
  // Join CPU = cpu_per_mbps x (30 + 10) = 2x the old 20 Mbps cost.
  EXPECT_NEAR(catalog.op(join).cpu_cost, old_cpu * 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(catalog.stream(a).rate_mbps, 30.0);
}

TEST(CatalogRateUpdateTest, UnaryChainsFollowTheirInput) {
  Catalog catalog(CostModel{});
  const StreamId a = catalog.AddBaseStream(0, 10.0, "a");
  const OperatorId filter =
      *catalog.UnaryOperator(OpKind::kFilter, a, /*tag=*/1,
                             /*output_rate_fraction=*/0.5);
  const StreamId filtered = catalog.op(filter).output;
  EXPECT_DOUBLE_EQ(catalog.stream(filtered).rate_mbps, 5.0);
  ASSERT_TRUE(catalog.UpdateBaseRate(a, 40.0).ok());
  EXPECT_DOUBLE_EQ(catalog.stream(filtered).rate_mbps, 20.0);
}

TEST(CatalogRateUpdateTest, RejectsBadInput) {
  Catalog catalog(CostModel{});
  const StreamId a = catalog.AddBaseStream(0, 10.0, "a");
  const StreamId b = catalog.AddBaseStream(0, 10.0, "b");
  const StreamId ab = *catalog.CanonicalJoinStream({a, b});
  EXPECT_FALSE(catalog.UpdateBaseRate(ab, 5.0).ok());   // composite
  EXPECT_FALSE(catalog.UpdateBaseRate(999, 5.0).ok());  // unknown
  EXPECT_FALSE(catalog.UpdateBaseRate(a, -1.0).ok());   // non-positive
}

TEST(DeploymentTest, RecomputeAggregatesTracksNewCosts) {
  Catalog catalog(CostModel{});
  Cluster cluster(2, HostSpec{10.0, 1000.0, 1000.0, ""}, 1000.0);
  const StreamId a = catalog.AddBaseStream(0, 10.0, "a");
  const StreamId b = catalog.AddBaseStream(0, 10.0, "b");
  const OperatorId join = *catalog.JoinOperator(a, b);
  const StreamId ab = catalog.op(join).output;

  Deployment dep(&cluster, &catalog);
  ASSERT_TRUE(dep.PlaceOperator(0, join).ok());
  ASSERT_TRUE(dep.AddFlow(0, 1, ab).ok());
  const double cpu_before = dep.CpuUsed(0);
  const double nic_before = dep.NicOutUsed(0);

  ASSERT_TRUE(catalog.UpdateBaseRate(a, 30.0).ok());
  dep.RecomputeAggregates();
  EXPECT_NEAR(dep.CpuUsed(0), cpu_before * 2.0, 1e-12);       // 40 vs 20 Mbps
  EXPECT_NEAR(dep.NicOutUsed(0), nic_before * 2.0, 1e-12);    // join rate 2x
  EXPECT_NEAR(dep.LinkUsed(0, 1), catalog.stream(ab).rate_mbps, 1e-12);
}

TEST(ResourceMonitorTest, FlagsDriftAndMapsToQueries) {
  Catalog catalog(CostModel{});
  const StreamId a = catalog.AddBaseStream(0, 10.0, "a");
  const StreamId b = catalog.AddBaseStream(0, 10.0, "b");
  const StreamId c = catalog.AddBaseStream(0, 10.0, "c");
  const StreamId ab = *catalog.CanonicalJoinStream({a, b});
  const StreamId bc = *catalog.CanonicalJoinStream({b, c});

  ResourceMonitor monitor(&catalog, DriftOptions{});
  // a measured 25% high (over the 20% threshold); c on estimate.
  const DriftReport report = monitor.Analyze(
      {{a, 12.5}, {c, 10.0}}, /*cpu_utilization=*/{0.5}, {ab, bc});
  ASSERT_EQ(report.drifted_base_streams.size(), 1u);
  EXPECT_EQ(report.drifted_base_streams[0], a);
  ASSERT_EQ(report.queries_to_replan.size(), 1u);
  EXPECT_EQ(report.queries_to_replan[0], ab);  // bc has no drifted leaf
  EXPECT_TRUE(report.overloaded_hosts.empty());
}

TEST(ResourceMonitorTest, DeduplicatesQueriesImplicatedByBothConditions) {
  // A query hit by condition (a) estimate drift AND condition (b)
  // resource shortage on a host its plan touches must appear in the
  // re-planning list exactly once — double-listing would re-plan it
  // twice per round.
  Catalog catalog(CostModel{});
  Cluster cluster(1, HostSpec{5.0, 1000.0, 1000.0, ""}, 1000.0);
  const StreamId a = catalog.AddBaseStream(0, 10.0, "a");
  const StreamId b = catalog.AddBaseStream(0, 10.0, "b");
  SqprPlanner planner(&cluster, &catalog, {});
  const StreamId ab = *catalog.CanonicalJoinStream({a, b});
  ASSERT_TRUE(planner.SubmitQuery(ab)->admitted);

  ResourceMonitor monitor(&catalog, DriftOptions{});
  // a drifted 50% high; the single host (which runs ab's plan) is
  // overloaded at 150% CPU.
  const DriftReport report =
      monitor.Analyze({{a, 15.0}}, /*cpu_utilization=*/{1.5},
                      planner.admitted_queries(), &planner.deployment());
  ASSERT_EQ(report.drifted_base_streams.size(), 1u);
  ASSERT_EQ(report.overloaded_hosts.size(), 1u);
  ASSERT_EQ(report.queries_to_replan.size(), 1u);  // once, not twice
  EXPECT_EQ(report.queries_to_replan[0], ab);
}

TEST(ResourceMonitorTest, MapsOverloadedHostsToQueriesWithDeployment) {
  // With the committed deployment supplied, a pure host shortage (no
  // rate drift) also surfaces the affected queries.
  Catalog catalog(CostModel{});
  Cluster cluster(1, HostSpec{5.0, 1000.0, 1000.0, ""}, 1000.0);
  const StreamId a = catalog.AddBaseStream(0, 10.0, "a");
  const StreamId b = catalog.AddBaseStream(0, 10.0, "b");
  SqprPlanner planner(&cluster, &catalog, {});
  const StreamId ab = *catalog.CanonicalJoinStream({a, b});
  ASSERT_TRUE(planner.SubmitQuery(ab)->admitted);

  ResourceMonitor monitor(&catalog, DriftOptions{});
  const DriftReport report =
      monitor.Analyze({}, /*cpu_utilization=*/{1.5},
                      planner.admitted_queries(), &planner.deployment());
  ASSERT_EQ(report.queries_to_replan.size(), 1u);
  EXPECT_EQ(report.queries_to_replan[0], ab);

  // Without the deployment the host shortage cannot be mapped here (it
  // resolves lazily in AdaptiveReplan) — the list stays empty.
  const DriftReport lazy =
      monitor.Analyze({}, {1.5}, planner.admitted_queries());
  EXPECT_TRUE(lazy.queries_to_replan.empty());
  EXPECT_FALSE(lazy.empty());  // the overloaded host is still reported
}

// Boundary semantics (pinned by doc comments in resource_monitor.h):
// both drift conditions compare STRICTLY, so a measurement exactly at a
// threshold does not trigger re-planning.
TEST(ResourceMonitorTest, RateDeviationExactlyAtThresholdIsNotDrift) {
  Catalog catalog(CostModel{});
  const StreamId a = catalog.AddBaseStream(0, 10.0, "a");
  const StreamId b = catalog.AddBaseStream(0, 10.0, "b");
  const StreamId ab = *catalog.CanonicalJoinStream({a, b});

  DriftOptions options;
  options.rate_threshold = 0.2;
  ResourceMonitor monitor(&catalog, options);

  // |12 - 10| / 10 == 0.2 exactly (2.0/10.0 is the correctly rounded
  // double 0.2, identical to the threshold literal): on-estimate.
  const DriftReport at = monitor.Analyze({{a, 12.0}}, {}, {ab});
  EXPECT_TRUE(at.drifted_base_streams.empty());
  EXPECT_TRUE(at.queries_to_replan.empty());
  EXPECT_TRUE(at.empty());

  // The same holds below the estimate: |8 - 10| / 10 == 0.2.
  EXPECT_TRUE(monitor.Analyze({{a, 8.0}}, {}, {ab}).empty());

  // One step past the threshold in either direction drifts.
  const DriftReport above = monitor.Analyze({{a, 12.1}}, {}, {ab});
  ASSERT_EQ(above.drifted_base_streams.size(), 1u);
  EXPECT_EQ(above.drifted_base_streams[0], a);
  ASSERT_EQ(above.queries_to_replan.size(), 1u);
  EXPECT_EQ(above.queries_to_replan[0], ab);
  EXPECT_FALSE(monitor.Analyze({{a, 7.9}}, {}, {ab}).empty());
}

TEST(ResourceMonitorTest, CpuExactlyAtShortageThresholdIsNotOverloaded) {
  Catalog catalog(CostModel{});
  DriftOptions options;
  options.shortage_utilization = 1.0;
  ResourceMonitor monitor(&catalog, options);

  // Running exactly at capacity is not a shortage (strict comparison);
  // one ulp over is.
  const DriftReport at = monitor.Analyze({}, {1.0, 0.999999}, {});
  EXPECT_TRUE(at.overloaded_hosts.empty());
  EXPECT_TRUE(at.empty());

  const DriftReport over =
      monitor.Analyze({}, {1.0, std::nextafter(1.0, 2.0)}, {});
  ASSERT_EQ(over.overloaded_hosts.size(), 1u);
  EXPECT_EQ(over.overloaded_hosts[0], 1);
}

TEST(ResourceMonitorTest, EmptyDeploymentAndEmptyInputsAreBenign) {
  Catalog catalog(CostModel{});
  Cluster cluster(2, HostSpec{1.0, 100.0, 100.0, ""}, 1000.0);
  const StreamId a = catalog.AddBaseStream(0, 10.0, "a");
  Deployment empty(&cluster, &catalog);
  ResourceMonitor monitor(&catalog, DriftOptions{});

  // Nothing measured, nothing admitted, nothing deployed: an empty
  // report, not a crash or a spurious re-plan.
  const DriftReport nothing = monitor.Analyze({}, {}, {}, &empty);
  EXPECT_TRUE(nothing.empty());
  EXPECT_TRUE(nothing.queries_to_replan.empty());

  // A drifted stream with no admitted queries still reports the stream
  // (so its rate gets installed) but implicates no queries — even with
  // the empty deployment supplied for host mapping.
  const DriftReport drifted = monitor.Analyze({{a, 30.0}}, {1.5, 0.2}, {},
                                              &empty);
  ASSERT_EQ(drifted.drifted_base_streams.size(), 1u);
  ASSERT_EQ(drifted.overloaded_hosts.size(), 1u);
  EXPECT_TRUE(drifted.queries_to_replan.empty());

  // And an empty deployment never reports an over-budget host.
  EXPECT_EQ(FirstOverBudgetHost(empty, 1e-6), kInvalidHost);
}

TEST(ResourceMonitorTest, FlagsOverloadedHosts) {
  Catalog catalog(CostModel{});
  ResourceMonitor monitor(&catalog, DriftOptions{});
  const DriftReport report =
      monitor.Analyze({}, /*cpu_utilization=*/{0.7, 1.2, 0.9}, {});
  ASSERT_EQ(report.overloaded_hosts.size(), 1u);
  EXPECT_EQ(report.overloaded_hosts[0], 1);
}

TEST(AdaptiveReplanTest, RateGrowthEvictsUntilFeasible) {
  // Fill a small cluster near CPU capacity, then triple one popular
  // base stream's rate. The adaptive cycle must end with a valid
  // deployment; queries that no longer fit are rejected on re-admission.
  Catalog catalog(CostModel{});
  Cluster cluster(2, HostSpec{0.3, 500.0, 500.0, ""}, 1000.0);
  std::vector<StreamId> base;
  for (int i = 0; i < 6; ++i) {
    base.push_back(catalog.AddBaseStream(i % 2, 10.0));
  }
  SqprPlanner::Options options;
  options.timeout_ms = 300;
  SqprPlanner planner(&cluster, &catalog, options);

  std::vector<StreamId> queries;
  for (int i = 0; i + 1 < 6; ++i) {
    queries.push_back(*catalog.CanonicalJoinStream({base[i], base[i + 1]}));
  }
  int admitted_before = 0;
  for (StreamId q : queries) {
    admitted_before += planner.SubmitQuery(q)->admitted;
  }
  ASSERT_GT(admitted_before, 0);

  ResourceMonitor monitor(&catalog, DriftOptions{});
  const std::map<StreamId, double> measured = {{base[1], 30.0}};
  const DriftReport report = monitor.Analyze(
      measured, std::vector<double>(2, 0.5), planner.admitted_queries());
  EXPECT_FALSE(report.queries_to_replan.empty());

  Result<std::vector<PlanningStats>> stats =
      AdaptiveReplan(&planner, &catalog, measured, report);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_DOUBLE_EQ(catalog.stream(base[1]).rate_mbps, 30.0);
  EXPECT_TRUE(planner.deployment().Validate().ok());
  EXPECT_LE(static_cast<int>(planner.admitted_queries().size()),
            admitted_before);
}

TEST(AdaptiveReplanTest, RateDropFreesCapacityForMoreQueries) {
  Catalog catalog(CostModel{});
  Cluster cluster(2, HostSpec{0.08, 500.0, 500.0, ""}, 1000.0);
  std::vector<StreamId> base;
  for (int i = 0; i < 8; ++i) {
    base.push_back(catalog.AddBaseStream(i % 2, 10.0));
  }
  SqprPlanner::Options options;
  options.timeout_ms = 300;
  SqprPlanner planner(&cluster, &catalog, options);

  std::vector<StreamId> queries;
  for (int i = 0; i + 1 < 8; i += 2) {
    queries.push_back(*catalog.CanonicalJoinStream({base[i], base[i + 1]}));
  }
  std::vector<StreamId> rejected;
  for (StreamId q : queries) {
    if (!planner.SubmitQuery(q)->admitted) rejected.push_back(q);
  }
  ASSERT_FALSE(rejected.empty()) << "scenario must start saturated";

  // Every base stream actually runs at half the estimated rate.
  std::map<StreamId, double> measured;
  for (StreamId s : base) measured[s] = 5.0;
  ResourceMonitor monitor(&catalog, DriftOptions{});
  const DriftReport report = monitor.Analyze(
      measured, std::vector<double>(2, 0.5), planner.admitted_queries());
  ASSERT_TRUE(
      AdaptiveReplan(&planner, &catalog, measured, report).ok());

  int newly_admitted = 0;
  for (StreamId q : rejected) {
    newly_admitted += planner.SubmitQuery(q)->admitted;
  }
  EXPECT_GT(newly_admitted, 0);
  EXPECT_TRUE(planner.deployment().Validate().ok());
}

}  // namespace
}  // namespace sqpr
