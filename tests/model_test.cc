#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "model/catalog.h"
#include "model/cluster.h"
#include "model/cost_model.h"

namespace sqpr {
namespace {

Catalog MakeCatalog() { return Catalog(CostModel{}); }

// ------------------------------------------------------------- CostModel

TEST(CostModelTest, SelectivityInConfiguredBand) {
  CostModel cm;
  for (int32_t a = 0; a < 20; ++a) {
    for (int32_t b = a + 1; b < 20; ++b) {
      const double sel = cm.JoinSelectivity({a, b});
      EXPECT_GE(sel, cm.selectivity_min);
      EXPECT_LE(sel, cm.selectivity_max);
    }
  }
}

TEST(CostModelTest, SelectivityDeterministicInLeafSet) {
  CostModel cm;
  EXPECT_DOUBLE_EQ(cm.JoinSelectivity({1, 2, 3}), cm.JoinSelectivity({1, 2, 3}));
  EXPECT_NE(cm.JoinSelectivity({1, 2, 3}), cm.JoinSelectivity({1, 2, 4}));
}

TEST(CostModelTest, SelectivitySeedChangesDraw) {
  CostModel a, b;
  b.selectivity_seed = a.selectivity_seed + 1;
  EXPECT_NE(a.JoinSelectivity({1, 2}), b.JoinSelectivity({1, 2}));
}

TEST(CostModelTest, CpuCostLinearInRate) {
  CostModel cm;
  EXPECT_DOUBLE_EQ(cm.OperatorCpuCost(20.0), 2 * cm.OperatorCpuCost(10.0));
}

// --------------------------------------------------------------- Catalog

TEST(CatalogTest, BaseStreamRegistration) {
  Catalog catalog = MakeCatalog();
  const StreamId s = catalog.AddBaseStream(3, 10.0, "ticks");
  EXPECT_TRUE(catalog.stream(s).is_base);
  EXPECT_EQ(catalog.stream(s).source_host, 3);
  EXPECT_DOUBLE_EQ(catalog.stream(s).rate_mbps, 10.0);
  EXPECT_EQ(catalog.stream(s).leaves, std::vector<StreamId>{s});
}

TEST(CatalogTest, JoinStreamCanonicalAcrossOrders) {
  // join(join(a,b),c) and join(a,join(b,c)) must be the *same stream*
  // (§II-C equivalence) produced by *different operators*.
  Catalog catalog = MakeCatalog();
  const StreamId a = catalog.AddBaseStream(0, 10);
  const StreamId b = catalog.AddBaseStream(0, 10);
  const StreamId c = catalog.AddBaseStream(0, 10);

  auto ab = catalog.JoinOperator(a, b);
  ASSERT_TRUE(ab.ok());
  auto ab_c = catalog.JoinOperator(catalog.op(*ab).output, c);
  ASSERT_TRUE(ab_c.ok());

  auto bc = catalog.JoinOperator(b, c);
  ASSERT_TRUE(bc.ok());
  auto a_bc = catalog.JoinOperator(a, catalog.op(*bc).output);
  ASSERT_TRUE(a_bc.ok());

  EXPECT_EQ(catalog.op(*ab_c).output, catalog.op(*a_bc).output);
  EXPECT_NE(*ab_c, *a_bc);
}

TEST(CatalogTest, JoinOperatorDeduplicated) {
  Catalog catalog = MakeCatalog();
  const StreamId a = catalog.AddBaseStream(0, 10);
  const StreamId b = catalog.AddBaseStream(0, 10);
  auto op1 = catalog.JoinOperator(a, b);
  auto op2 = catalog.JoinOperator(b, a);  // commuted inputs
  ASSERT_TRUE(op1.ok());
  ASSERT_TRUE(op2.ok());
  EXPECT_EQ(*op1, *op2);
}

TEST(CatalogTest, JoinRejectsOverlappingLeaves) {
  Catalog catalog = MakeCatalog();
  const StreamId a = catalog.AddBaseStream(0, 10);
  const StreamId b = catalog.AddBaseStream(0, 10);
  auto ab = catalog.JoinOperator(a, b);
  ASSERT_TRUE(ab.ok());
  // join(ab, a) shares leaf a.
  auto bad = catalog.JoinOperator(catalog.op(*ab).output, a);
  EXPECT_FALSE(bad.ok());
}

TEST(CatalogTest, CanonicalJoinStreamValidation) {
  Catalog catalog = MakeCatalog();
  const StreamId a = catalog.AddBaseStream(0, 10);
  EXPECT_FALSE(catalog.CanonicalJoinStream({a}).ok());        // too few
  EXPECT_FALSE(catalog.CanonicalJoinStream({a, a}).ok());     // duplicate
  EXPECT_FALSE(catalog.CanonicalJoinStream({a, 999}).ok());   // unknown
}

TEST(CatalogTest, CompositeRateFromLeafSet) {
  Catalog catalog = MakeCatalog();
  const StreamId a = catalog.AddBaseStream(0, 10);
  const StreamId b = catalog.AddBaseStream(0, 10);
  auto ab = catalog.CanonicalJoinStream({a, b});
  ASSERT_TRUE(ab.ok());
  const double sel = catalog.cost_model().JoinSelectivity({a, b});
  EXPECT_NEAR(catalog.stream(*ab).rate_mbps, sel * 20.0, 1e-12);
}

TEST(CatalogTest, ProducersTrackAllSplits) {
  Catalog catalog = MakeCatalog();
  const StreamId a = catalog.AddBaseStream(0, 10);
  const StreamId b = catalog.AddBaseStream(0, 10);
  const StreamId c = catalog.AddBaseStream(0, 10);
  auto abc = catalog.CanonicalJoinStream({a, b, c});
  ASSERT_TRUE(abc.ok());
  auto closure = catalog.JoinClosure(*abc);
  ASSERT_TRUE(closure.ok());
  // A 3-way join has exactly 3 producers: (ab,c), (ac,b), (bc,a).
  EXPECT_EQ(catalog.ProducersOf(*abc).size(), 3u);
}

TEST(CatalogTest, ClosureSizesMatchCombinatorics) {
  Catalog catalog = MakeCatalog();
  std::vector<StreamId> base;
  for (int i = 0; i < 4; ++i) base.push_back(catalog.AddBaseStream(0, 10));
  auto q = catalog.CanonicalJoinStream(base);
  ASSERT_TRUE(q.ok());
  auto closure = catalog.JoinClosure(*q);
  ASSERT_TRUE(closure.ok());
  // Streams: 4 base + C(4,2)=6 pairs + C(4,3)=4 triples + 1 full = 15.
  EXPECT_EQ(closure->streams.size(), 15u);
  // Operators: 6 pair joins + 4 triples * 3 splits + 1 full * 7 = 25.
  EXPECT_EQ(closure->operators.size(), 25u);
}

TEST(CatalogTest, ClosureOfBaseStreamIsItself) {
  Catalog catalog = MakeCatalog();
  const StreamId a = catalog.AddBaseStream(0, 10);
  auto closure = catalog.JoinClosure(a);
  ASSERT_TRUE(closure.ok());
  EXPECT_EQ(closure->streams, std::vector<StreamId>{a});
  EXPECT_TRUE(closure->operators.empty());
}

TEST(CatalogTest, ClosureMemoised) {
  Catalog catalog = MakeCatalog();
  const StreamId a = catalog.AddBaseStream(0, 10);
  const StreamId b = catalog.AddBaseStream(0, 10);
  auto q = catalog.CanonicalJoinStream({a, b});
  ASSERT_TRUE(q.ok());
  auto c1 = catalog.JoinClosure(*q);
  const int streams_after_first = catalog.num_streams();
  auto c2 = catalog.JoinClosure(*q);
  EXPECT_EQ(catalog.num_streams(), streams_after_first);
  EXPECT_EQ(c1->streams, c2->streams);
}

TEST(CatalogTest, UnaryOperatorHashConsing) {
  Catalog catalog = MakeCatalog();
  const StreamId a = catalog.AddBaseStream(0, 10);
  auto f1 = catalog.UnaryOperator(OpKind::kFilter, a, /*tag=*/7, 0.5);
  auto f2 = catalog.UnaryOperator(OpKind::kFilter, a, /*tag=*/7, 0.5);
  auto f3 = catalog.UnaryOperator(OpKind::kFilter, a, /*tag=*/8, 0.5);
  ASSERT_TRUE(f1.ok() && f2.ok() && f3.ok());
  EXPECT_EQ(*f1, *f2);  // same deterministic operator => shared
  EXPECT_NE(*f1, *f3);  // different predicate => distinct
  EXPECT_DOUBLE_EQ(catalog.stream(catalog.op(*f1).output).rate_mbps, 5.0);
}

TEST(CatalogTest, UnaryOperatorRejectsJoinKind) {
  Catalog catalog = MakeCatalog();
  const StreamId a = catalog.AddBaseStream(0, 10);
  EXPECT_FALSE(catalog.UnaryOperator(OpKind::kJoin, a, 0, 0.5).ok());
}

// Concurrency stress for the thread-safe catalog (the service tentpole:
// speculative arrival solves intern on the loop thread while worker
// solves read): N reader threads traverse warmed closures — stream
// infos, producer lists, operator infos, leaf rates — while the main
// thread keeps interning overlapping closures over the same base pool.
// Runs under the -DSQPR_SANITIZE=thread CI job; any unsynchronised
// access is a TSan failure, any torn read trips the flags below.
TEST(CatalogTest, ConcurrentReadersDuringInterning) {
  Catalog catalog = MakeCatalog();
  constexpr int kBases = 16;
  constexpr int kReaders = 4;
  std::vector<StreamId> base;
  for (int i = 0; i < kBases; ++i) {
    base.push_back(catalog.AddBaseStream(i % 3, 10.0));
  }

  // Warm overlapping 3-way closures; readers traverse exactly these, so
  // every entry they touch is published before the threads start.
  std::vector<StreamId> warmed;
  for (int i = 0; i + 2 < kBases; ++i) {
    Result<StreamId> q =
        catalog.CanonicalJoinStream({base[i], base[i + 1], base[i + 2]});
    ASSERT_TRUE(q.ok());
    ASSERT_TRUE(catalog.JoinClosure(*q).ok());
    warmed.push_back(*q);
  }
  std::map<StreamId, std::vector<StreamId>> leaves_before;
  for (StreamId q : warmed) leaves_before[q] = catalog.stream(q).leaves;

  std::atomic<bool> stop{false};
  std::atomic<bool> reader_ok{true};
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      int last_num_streams = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        for (StreamId q : warmed) {
          const StreamInfo& info = catalog.stream(q);
          if (info.id != q || info.is_base || info.leaves.size() != 3u) {
            reader_ok = false;
          }
          // A 3-way join has exactly its 3 binary splits as producers,
          // all pre-warmed: the list must read complete and consistent.
          size_t produced = 0;
          for (OperatorId o : catalog.ProducersOf(q)) {
            if (catalog.op(o).output != q) reader_ok = false;
            ++produced;
          }
          if (produced != 3u) reader_ok = false;
          if (catalog.SumLeafRates(info.leaves) <= 0.0) reader_ok = false;
        }
        const int n = catalog.num_streams();
        if (n < last_num_streams) reader_ok = false;  // size is monotonic
        last_num_streams = n;
      }
    });
  }

  // The interner: overlapping 4- and 5-way closures over the same base
  // pool. Every new closure shares subset streams (and their producer
  // lists) with what the readers are iterating.
  for (int i = 0; i + 3 < kBases; ++i) {
    Result<StreamId> q = catalog.CanonicalJoinStream(
        {base[i], base[i + 1], base[i + 2], base[i + 3]});
    ASSERT_TRUE(q.ok());
    ASSERT_TRUE(catalog.JoinClosure(*q).ok());
  }
  for (int i = 0; i + 4 < kBases; ++i) {
    Result<StreamId> q = catalog.CanonicalJoinStream(
        {base[i], base[i + 1], base[i + 2], base[i + 3], base[i + 4]});
    ASSERT_TRUE(q.ok());
    ASSERT_TRUE(catalog.JoinClosure(*q).ok());
  }
  for (int i = 0; i + 5 < kBases; ++i) {
    Result<StreamId> q = catalog.CanonicalJoinStream(
        {base[i], base[i + 1], base[i + 2], base[i + 3], base[i + 4],
         base[i + 5]});
    ASSERT_TRUE(q.ok());
    ASSERT_TRUE(catalog.JoinClosure(*q).ok());
  }
  // Re-interning a warmed signature (any leaf order) yields the same
  // canonical id while readers hammer it.
  for (size_t i = 0; i < warmed.size(); ++i) {
    Result<StreamId> again = catalog.CanonicalJoinStream(
        {base[i + 2], base[i], base[i + 1]});
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(*again, warmed[i]);
  }

  stop.store(true, std::memory_order_relaxed);
  for (std::thread& r : readers) r.join();
  EXPECT_TRUE(reader_ok.load());

  // Stable ids: nothing the interner did may have moved or rewritten a
  // published entry.
  for (StreamId q : warmed) {
    EXPECT_EQ(catalog.stream(q).id, q);
    EXPECT_EQ(catalog.stream(q).leaves, leaves_before[q]);
    EXPECT_EQ(catalog.ProducersOf(q).size(), 3u);
  }
  // No duplicate canonical entries: every composite leaf signature maps
  // to exactly one stream (all composites here are joins).
  std::set<std::vector<StreamId>> signatures;
  for (StreamId s = 0; s < catalog.num_streams(); ++s) {
    if (catalog.stream(s).is_base) continue;
    EXPECT_TRUE(signatures.insert(catalog.stream(s).leaves).second)
        << "duplicate canonical stream for one leaf set";
  }
}

// --------------------------------------------------------------- Cluster

TEST(ClusterTest, UniformConstruction) {
  Cluster cluster(4, HostSpec{2.0, 100.0, 100.0, ""}, 1000.0);
  EXPECT_EQ(cluster.num_hosts(), 4);
  EXPECT_DOUBLE_EQ(cluster.host(2).cpu, 2.0);
  EXPECT_DOUBLE_EQ(cluster.link_mbps(0, 1), 1000.0);
  EXPECT_DOUBLE_EQ(cluster.link_mbps(1, 1), 0.0);  // self-link unusable
}

TEST(ClusterTest, LinkOverride) {
  Cluster cluster(3, HostSpec{1, 10, 10, ""}, 100.0);
  cluster.SetLink(0, 2, 5.0);
  EXPECT_DOUBLE_EQ(cluster.link_mbps(0, 2), 5.0);
  EXPECT_DOUBLE_EQ(cluster.link_mbps(2, 0), 100.0);  // directed
  cluster.SetLink(0, 2, 7.0);  // update in place
  EXPECT_DOUBLE_EQ(cluster.link_mbps(0, 2), 7.0);
}

TEST(ClusterTest, Scaling) {
  Cluster cluster(2, HostSpec{1.0, 10.0, 20.0, ""}, 100.0);
  cluster.ScaleCpu(4.0);
  cluster.ScaleBandwidth(10.0);
  EXPECT_DOUBLE_EQ(cluster.host(0).cpu, 4.0);
  EXPECT_DOUBLE_EQ(cluster.host(0).nic_out_mbps, 100.0);
  EXPECT_DOUBLE_EQ(cluster.host(0).nic_in_mbps, 200.0);
  EXPECT_DOUBLE_EQ(cluster.link_mbps(0, 1), 1000.0);
}

TEST(ClusterTest, Totals) {
  Cluster cluster(3, HostSpec{2.0, 10.0, 10.0, ""}, 100.0);
  EXPECT_DOUBLE_EQ(cluster.TotalCpu(), 6.0);
  EXPECT_DOUBLE_EQ(cluster.TotalNicOut(), 30.0);
  EXPECT_DOUBLE_EQ(cluster.TotalLinkCapacity(), 600.0);  // 6 directed links
}

}  // namespace
}  // namespace sqpr
