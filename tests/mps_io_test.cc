#include "milp/mps_io.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/rng.h"
#include "milp/solver.h"

namespace sqpr {
namespace milp {
namespace {

TEST(MpsReadTest, ParsesMinimalKnapsack) {
  const std::string text = R"(* classic knapsack
NAME test
OBJSENSE MAX
ROWS
 N obj
 L cap
COLUMNS
 MARKER0 'MARKER' 'INTORG'
 a obj 10 cap 3
 b obj 13 cap 4
 c obj 7 cap 2
 d obj 8 cap 3
 MARKER1 'MARKER' 'INTEND'
RHS
 rhs cap 7
ENDATA
)";
  Result<Model> model = ReadMpsFromString(text);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  EXPECT_EQ(model->lp.num_variables(), 4);
  EXPECT_EQ(model->lp.num_rows(), 1);
  EXPECT_EQ(model->lp.sense(), lp::Sense::kMaximize);
  for (int v = 0; v < 4; ++v) {
    EXPECT_TRUE(model->integer[v]);
    EXPECT_DOUBLE_EQ(model->lp.variable_lb(v), 0.0);
    EXPECT_DOUBLE_EQ(model->lp.variable_ub(v), 1.0);
  }
  EXPECT_DOUBLE_EQ(model->lp.row_ub(0), 7.0);
  EXPECT_FALSE(std::isfinite(model->lp.row_lb(0)));

  Solver solver;
  const MipResult r = solver.Solve(*model, SolverOptions{});
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, 23.0, 1e-7);  // items a + b
}

TEST(MpsReadTest, BoundTypes) {
  const std::string text = R"(NAME bounds
ROWS
 N obj
 G low
COLUMNS
 u obj 1 low 1
 l obj 1 low 1
 f obj 1 low 1
 x obj 1 low 1
 m obj 1 low 1
RHS
 rhs low -100
BOUNDS
 UP bnd u 4.5
 LO bnd l -2
 FR bnd f
 FX bnd x 3
 MI bnd m
ENDATA
)";
  Result<Model> model = ReadMpsFromString(text);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  EXPECT_EQ(model->lp.sense(), lp::Sense::kMinimize);  // MPS default
  const int u = 0, l = 1, f = 2, x = 3, m = 4;
  EXPECT_DOUBLE_EQ(model->lp.variable_ub(u), 4.5);
  EXPECT_DOUBLE_EQ(model->lp.variable_lb(l), -2.0);
  EXPECT_FALSE(std::isfinite(model->lp.variable_lb(f)));
  EXPECT_FALSE(std::isfinite(model->lp.variable_ub(f)));
  EXPECT_DOUBLE_EQ(model->lp.variable_lb(x), 3.0);
  EXPECT_DOUBLE_EQ(model->lp.variable_ub(x), 3.0);
  EXPECT_FALSE(std::isfinite(model->lp.variable_lb(m)));
}

TEST(MpsReadTest, RangesProduceIntervalRows) {
  const std::string text = R"(NAME ranges
ROWS
 N obj
 L lrow
 G grow
 E erow
COLUMNS
 x obj 1 lrow 1 grow 1
 x erow 1
RHS
 rhs lrow 10 grow 2 erow 5
RANGES
 rng lrow 3 grow 4 erow 2
BOUNDS
 FR bnd x
ENDATA
)";
  Result<Model> model = ReadMpsFromString(text);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  // L with rhs 10 range 3 -> [7, 10]; G with rhs 2 range 4 -> [2, 6];
  // E with rhs 5 range +2 -> [5, 7].
  EXPECT_DOUBLE_EQ(model->lp.row_lb(0), 7.0);
  EXPECT_DOUBLE_EQ(model->lp.row_ub(0), 10.0);
  EXPECT_DOUBLE_EQ(model->lp.row_lb(1), 2.0);
  EXPECT_DOUBLE_EQ(model->lp.row_ub(1), 6.0);
  EXPECT_DOUBLE_EQ(model->lp.row_lb(2), 5.0);
  EXPECT_DOUBLE_EQ(model->lp.row_ub(2), 7.0);
}

TEST(MpsReadTest, ReportsErrorsWithLineNumbers) {
  EXPECT_FALSE(ReadMpsFromString("GARBAGE\n").ok());
  const Status bad_row =
      ReadMpsFromString("ROWS\n Q what\n").status();
  EXPECT_TRUE(bad_row.IsInvalidArgument());
  EXPECT_NE(bad_row.message().find("line 2"), std::string::npos);
  const Status bad_col =
      ReadMpsFromString("ROWS\n N obj\nCOLUMNS\n x nosuchrow 1\n").status();
  EXPECT_NE(bad_col.message().find("unknown row"), std::string::npos);
  const Status bad_num =
      ReadMpsFromString("ROWS\n N obj\n L c\nCOLUMNS\n x c abc\n").status();
  EXPECT_NE(bad_num.message().find("bad number"), std::string::npos);
}

TEST(MpsWriteTest, LpFormatContainsAllParts) {
  Model m;
  const int a = m.AddBinary(3.0, "a");
  const int y = m.AddVariable(-1.0, 5.0, -2.0, /*is_integer=*/false, "y");
  m.lp.AddRow(1.0, 4.0, {{a, 2.0}, {y, 1.0}}, "band");
  const std::string text = WriteLpToString(m);
  EXPECT_NE(text.find("Maximize"), std::string::npos);
  EXPECT_NE(text.find("band"), std::string::npos);
  EXPECT_NE(text.find("Generals"), std::string::npos);
  EXPECT_NE(text.find("a"), std::string::npos);
}

Model RandomModel(uint64_t seed) {
  Rng rng(seed);
  Model m;
  const int n = 3 + static_cast<int>(rng.NextUint64() % 6);
  for (int i = 0; i < n; ++i) {
    const bool integer = rng.NextDouble() < 0.5;
    double lb = 0.0, ub = integer ? 1.0 : 10.0;
    const double kind = rng.NextDouble();
    if (kind < 0.2) {
      lb = ub = std::floor(5 * rng.NextDouble());  // pinned
    } else if (kind < 0.35) {
      lb = -5.0;
    } else if (kind < 0.45 && !integer) {
      ub = lp::kInf;
    }
    const double obj = std::round(20.0 * (rng.NextDouble() - 0.3)) / 2.0;
    m.AddVariable(lb, ub, obj, integer, "v" + std::to_string(i));
  }
  const int rows = 1 + static_cast<int>(rng.NextUint64() % 4);
  for (int r = 0; r < rows; ++r) {
    std::vector<std::pair<int, double>> terms;
    for (int v = 0; v < n; ++v) {
      if (rng.NextDouble() < 0.6) {
        terms.emplace_back(v, std::round(8.0 * (rng.NextDouble() - 0.4)));
      }
    }
    if (terms.empty()) terms.emplace_back(0, 1.0);
    const double kind = rng.NextDouble();
    const double b = std::round(10.0 * rng.NextDouble());
    if (kind < 0.4) {
      m.lp.AddRow(-lp::kInf, b, terms, "r" + std::to_string(r));
    } else if (kind < 0.7) {
      m.lp.AddRow(-b, lp::kInf, terms, "r" + std::to_string(r));
    } else if (kind < 0.85) {
      m.lp.AddRow(-b, b + 2.0, terms, "r" + std::to_string(r));  // interval
    } else {
      m.lp.AddRow(b, b, terms, "r" + std::to_string(r));  // equality
    }
  }
  if (rng.NextDouble() < 0.5) m.lp.set_sense(lp::Sense::kMinimize);
  return m;
}

class MpsRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(MpsRoundTrip, PreservesStructureAndOptimum) {
  const Model original = RandomModel(0x715717 + GetParam());
  const std::string text = WriteMpsToString(original);
  Result<Model> reread = ReadMpsFromString(text);
  ASSERT_TRUE(reread.ok()) << reread.status().ToString() << "\n" << text;

  ASSERT_EQ(reread->lp.num_variables(), original.lp.num_variables());
  ASSERT_EQ(reread->lp.num_rows(), original.lp.num_rows());
  EXPECT_EQ(reread->lp.sense(), original.lp.sense());
  for (int v = 0; v < original.lp.num_variables(); ++v) {
    EXPECT_EQ(reread->integer[v], original.integer[v]) << "var " << v;
    EXPECT_DOUBLE_EQ(reread->lp.variable_lb(v), original.lp.variable_lb(v));
    EXPECT_DOUBLE_EQ(reread->lp.variable_ub(v), original.lp.variable_ub(v));
    EXPECT_DOUBLE_EQ(reread->lp.objective(v), original.lp.objective(v));
  }
  for (int r = 0; r < original.lp.num_rows(); ++r) {
    EXPECT_DOUBLE_EQ(reread->lp.row_lb(r), original.lp.row_lb(r)) << r;
    EXPECT_DOUBLE_EQ(reread->lp.row_ub(r), original.lp.row_ub(r)) << r;
  }

  // Both must solve to the same optimum (or agree on infeasibility).
  Solver solver;
  SolverOptions opts;
  opts.deadline = Deadline::AfterMillis(2000);
  const MipResult a = solver.Solve(original, opts);
  const MipResult b = solver.Solve(*reread, opts);
  ASSERT_EQ(a.status, b.status) << "instance " << GetParam();
  if (a.status == MipStatus::kOptimal) {
    EXPECT_NEAR(a.objective, b.objective, 1e-6) << "instance " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomModels, MpsRoundTrip, ::testing::Range(0, 30));

}  // namespace
}  // namespace milp
}  // namespace sqpr
