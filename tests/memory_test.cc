// Tests for the §VII memory-resource extension: cost model, deployment
// accounting, model-builder constraint rows and end-to-end planner
// behaviour under tight memory budgets.

#include <gtest/gtest.h>

#include <cmath>

#include "model/catalog.h"
#include "model/cluster.h"
#include "plan/deployment.h"
#include "planner/sqpr/model_builder.h"
#include "planner/sqpr/sqpr_planner.h"
#include "workload/generator.h"

namespace sqpr {
namespace {

TEST(MemoryCostTest, OperatorMemoryIsLinearInInputRate) {
  CostModel cm;
  cm.mem_per_mbps = 0.125;
  EXPECT_DOUBLE_EQ(cm.OperatorMemMb(0.0), 0.0);
  EXPECT_DOUBLE_EQ(cm.OperatorMemMb(20.0), 2.5);
  EXPECT_DOUBLE_EQ(cm.OperatorMemMb(40.0), 5.0);
}

TEST(MemoryCostTest, CatalogOperatorsCarryMemory) {
  Catalog catalog(CostModel{});
  const StreamId a = catalog.AddBaseStream(0, 10.0, "a");
  const StreamId b = catalog.AddBaseStream(0, 10.0, "b");
  const OperatorId join = *catalog.JoinOperator(a, b);
  EXPECT_DOUBLE_EQ(catalog.op(join).mem_mb,
                   catalog.cost_model().OperatorMemMb(20.0));
  EXPECT_GT(catalog.op(join).mem_mb, 0.0);
}

TEST(MemoryDeploymentTest, PlaceAndRemoveTrackMemory) {
  Catalog catalog(CostModel{});
  Cluster cluster(1, HostSpec{10.0, 1000.0, 1000.0, ""}, 1000.0);
  const StreamId a = catalog.AddBaseStream(0, 10.0, "a");
  const StreamId b = catalog.AddBaseStream(0, 10.0, "b");
  const OperatorId join = *catalog.JoinOperator(a, b);

  Deployment dep(&cluster, &catalog);
  EXPECT_DOUBLE_EQ(dep.MemUsed(0), 0.0);
  ASSERT_TRUE(dep.PlaceOperator(0, join).ok());
  EXPECT_DOUBLE_EQ(dep.MemUsed(0), catalog.op(join).mem_mb);
  ASSERT_TRUE(dep.RemoveOperator(0, join).ok());
  EXPECT_DOUBLE_EQ(dep.MemUsed(0), 0.0);
}

TEST(MemoryDeploymentTest, CanPlaceRespectsMemoryBudget) {
  Catalog catalog(CostModel{});
  HostSpec host{10.0, 1000.0, 1000.0, ""};
  host.mem_mb = 3.0;  // fits one 2.5 MB join, not two
  Cluster cluster(1, host, 1000.0);
  const StreamId a = catalog.AddBaseStream(0, 10.0, "a");
  const StreamId b = catalog.AddBaseStream(0, 10.0, "b");
  const StreamId c = catalog.AddBaseStream(0, 10.0, "c");
  const OperatorId j1 = *catalog.JoinOperator(a, b);
  const OperatorId j2 = *catalog.JoinOperator(a, c);

  Deployment dep(&cluster, &catalog);
  EXPECT_TRUE(dep.CanPlaceOperator(0, j1));
  ASSERT_TRUE(dep.PlaceOperator(0, j1).ok());
  EXPECT_FALSE(dep.CanPlaceOperator(0, j2));  // CPU fine, memory not
}

TEST(MemoryDeploymentTest, ValidateFlagsMemoryOvercommit) {
  Catalog catalog(CostModel{});
  HostSpec host{10.0, 1000.0, 1000.0, ""};
  host.mem_mb = 3.0;
  Cluster cluster(1, host, 1000.0);
  const StreamId a = catalog.AddBaseStream(0, 10.0, "a");
  const StreamId b = catalog.AddBaseStream(0, 10.0, "b");
  const StreamId c = catalog.AddBaseStream(0, 10.0, "c");

  Deployment dep(&cluster, &catalog);
  // PlaceOperator does not gate on capacity (planners pre-check);
  // Validate() is the audit that must catch the overcommit.
  ASSERT_TRUE(dep.PlaceOperator(0, *catalog.JoinOperator(a, b)).ok());
  ASSERT_TRUE(dep.PlaceOperator(0, *catalog.JoinOperator(a, c)).ok());
  const Status audit = dep.Validate();
  ASSERT_FALSE(audit.ok());
  EXPECT_TRUE(audit.IsResourceExhausted());
  EXPECT_NE(audit.message().find("memory"), std::string::npos);
}

TEST(MemoryModelTest, RowEmittedOnlyForFiniteBudgets) {
  Catalog catalog(CostModel{});
  std::vector<HostSpec> hosts(2, HostSpec{1.0, 100.0, 100.0, ""});
  hosts[0].mem_mb = 4.0;  // finite -> row; host 1 stays unlimited
  Cluster cluster(hosts, 500.0);
  const StreamId a = catalog.AddBaseStream(0, 10.0, "a");
  const StreamId b = catalog.AddBaseStream(1, 10.0, "b");
  const StreamId ab = *catalog.CanonicalJoinStream({a, b});
  const Closure closure = *catalog.JoinClosure(ab);

  Deployment dep(&cluster, &catalog);
  SqprMip mip(dep, closure.streams, closure.operators, {{ab, false}},
              SqprModelOptions{});
  int mem_rows = 0;
  for (int r = 0; r < mip.mip().lp.num_rows(); ++r) {
    if (mip.mip().lp.row_name(r).rfind("mem_h", 0) == 0) ++mem_rows;
  }
  EXPECT_EQ(mem_rows, 1);
}

TEST(MemoryPlannerTest, TightMemoryRejectsWhatCpuWouldAdmit) {
  // Identical clusters except for memory; the memory-tight one must
  // admit strictly fewer queries, and every commit must stay valid.
  WorkloadConfig wc;
  wc.num_base_streams = 12;
  wc.num_queries = 30;
  wc.arities = {2};
  wc.seed = 7;

  auto run = [&](double mem_mb) {
    Catalog catalog(CostModel{});
    HostSpec host{2.0, 400.0, 400.0, ""};
    host.mem_mb = mem_mb;
    Cluster cluster(3, host, 800.0);
    Workload workload = *GenerateWorkload(wc, 3, &catalog);
    SqprPlanner::Options options;
    options.timeout_ms = 200;
    SqprPlanner planner(&cluster, &catalog, options);
    int admitted = 0;
    for (StreamId q : workload.queries) {
      auto stats = planner.SubmitQuery(q);
      EXPECT_TRUE(stats.ok());
      admitted += stats->admitted && !stats->already_served;
    }
    EXPECT_TRUE(planner.deployment().Validate().ok());
    for (HostId h = 0; h < 3; ++h) {
      EXPECT_LE(planner.deployment().MemUsed(h), mem_mb + 1e-6);
    }
    return admitted;
  };

  const int unlimited = run(std::numeric_limits<double>::infinity());
  const int tight = run(6.0);  // ~2 joins' worth of window state per host
  EXPECT_GT(unlimited, tight);
  EXPECT_GT(tight, 0);
}

}  // namespace
}  // namespace sqpr
