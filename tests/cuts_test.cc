#include "milp/cuts.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "lp/simplex.h"
#include "milp/solver.h"

namespace sqpr {
namespace milp {
namespace {

lp::SimplexResult SolveLp(const lp::Model& m) {
  lp::SimplexSolver solver;
  return solver.Solve(m);
}

/// Enumerates all 0/1 assignments of `m` (over binary columns) and
/// returns the integer-feasible ones. Only usable for small n.
std::vector<std::vector<double>> EnumerateBinaryFeasible(const lp::Model& m) {
  const int n = m.num_variables();
  std::vector<std::vector<double>> feasible;
  for (int mask = 0; mask < (1 << n); ++mask) {
    std::vector<double> x(n);
    for (int v = 0; v < n; ++v) x[v] = (mask >> v) & 1;
    bool in_bounds = true;
    for (int v = 0; v < n && in_bounds; ++v) {
      in_bounds = x[v] >= m.variable_lb(v) - 1e-9 &&
                  x[v] <= m.variable_ub(v) + 1e-9;
    }
    if (in_bounds && m.CheckFeasible(x, 1e-9).ok()) feasible.push_back(x);
  }
  return feasible;
}

TEST(CoverCutTest, SeparatesViolatedCover) {
  // 3 items of weight 2 into capacity 3: LP packs x = (0.75, 0.75, 0.75)
  // under max sum; any two items overflow, so the cover cut is
  // x0 + x1 + x2 <= 1.
  Model m;
  std::vector<std::pair<int, double>> terms;
  for (int i = 0; i < 3; ++i) terms.emplace_back(m.AddBinary(1.0), 2.0);
  m.lp.AddRow(-lp::kInf, 3.0, terms, "knap");

  lp::Model work = m.lp;
  const lp::SimplexResult rel = SolveLp(work);
  ASSERT_EQ(rel.status, lp::SolveStatus::kOptimal);

  CutOptions opts;
  opts.gomory = false;
  CutGenerator cg(m.integer, opts);
  const int before = work.num_rows();
  EXPECT_GT(cg.Separate(rel, &work), 0);
  ASSERT_GT(work.num_rows(), before);
  // The added row must cut the fractional point but keep every integer
  // feasible assignment.
  EXPECT_FALSE(work.CheckFeasible(rel.values, 1e-7).ok());
  for (const auto& x : EnumerateBinaryFeasible(m.lp)) {
    EXPECT_TRUE(work.CheckFeasible(x, 1e-7).ok());
  }
}

TEST(CoverCutTest, HandlesGeqRowsByNegation) {
  // -2x0 - 2x1 - 2x2 >= -3 is the same knapsack written as a >= row.
  Model m;
  std::vector<std::pair<int, double>> terms;
  for (int i = 0; i < 3; ++i) terms.emplace_back(m.AddBinary(1.0), -2.0);
  m.lp.AddRow(-3.0, lp::kInf, terms, "neg_knap");

  lp::Model work = m.lp;
  const lp::SimplexResult rel = SolveLp(work);
  ASSERT_EQ(rel.status, lp::SolveStatus::kOptimal);

  CutOptions opts;
  opts.gomory = false;
  CutGenerator cg(m.integer, opts);
  EXPECT_GT(cg.Separate(rel, &work), 0);
  for (const auto& x : EnumerateBinaryFeasible(m.lp)) {
    EXPECT_TRUE(work.CheckFeasible(x, 1e-7).ok());
  }
}

TEST(CoverCutTest, SkipsRowsWithContinuousColumns) {
  Model m;
  const int x = m.AddBinary(1.0);
  const int y = m.AddVariable(0, 1, 1.0, /*is_integer=*/false, "y");
  m.lp.AddRow(-lp::kInf, 1.5, {{x, 1.0}, {y, 1.0}}, "mixed");

  lp::Model work = m.lp;
  const lp::SimplexResult rel = SolveLp(work);
  ASSERT_EQ(rel.status, lp::SolveStatus::kOptimal);
  CutOptions opts;
  opts.gomory = false;
  CutGenerator cg(m.integer, opts);
  // Cover separation must refuse rows containing continuous columns —
  // the cover argument only holds over pure binaries.
  EXPECT_EQ(cg.Separate(rel, &work), 0);
}

TEST(GomoryCutTest, CutsFractionalLpOptimum) {
  // max y s.t. 2y <= 3, y integer in [0, 5]: LP gives y = 1.5; the GMI
  // cut from the single tableau row forces y <= 1.
  Model m;
  const int y = m.AddVariable(0, 5, 1.0, /*is_integer=*/true, "y");
  m.lp.AddRow(-lp::kInf, 3.0, {{y, 2.0}}, "cap");

  lp::Model work = m.lp;
  const lp::SimplexResult rel = SolveLp(work);
  ASSERT_EQ(rel.status, lp::SolveStatus::kOptimal);
  ASSERT_NEAR(rel.values[y], 1.5, 1e-7);

  CutOptions opts;
  opts.knapsack_cover = false;
  CutGenerator cg(m.integer, opts);
  EXPECT_GT(cg.Separate(rel, &work), 0);
  // Re-solving the tightened LP must land on an integral point.
  const lp::SimplexResult tightened = SolveLp(work);
  ASSERT_EQ(tightened.status, lp::SolveStatus::kOptimal);
  EXPECT_NEAR(tightened.values[y], 1.0, 1e-6);
}

TEST(GomoryCutTest, ValidForAllIntegerPointsOnRandomKnapsacks) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(0xc0ffee + seed);
    Model m;
    const int n = 5 + static_cast<int>(rng.NextUint64() % 4);
    std::vector<std::pair<int, double>> terms;
    double total = 0.0;
    for (int i = 0; i < n; ++i) {
      const double w = 1.0 + 4.0 * rng.NextDouble();
      terms.emplace_back(m.AddBinary(1.0 + 9.0 * rng.NextDouble()), w);
      total += w;
    }
    m.lp.AddRow(-lp::kInf, 0.5 * total, terms, "knap");

    lp::Model work = m.lp;
    const lp::SimplexResult rel = SolveLp(work);
    ASSERT_EQ(rel.status, lp::SolveStatus::kOptimal);

    CutGenerator cg(m.integer, CutOptions{});
    cg.Separate(rel, &work);
    for (const auto& x : EnumerateBinaryFeasible(m.lp)) {
      EXPECT_TRUE(work.CheckFeasible(x, 1e-6).ok())
          << "seed " << seed << ": cut excluded a feasible integer point";
    }
  }
}

// ---------------------------------------------------------------------
// End-to-end: the solver with cuts enabled must agree with the solver
// with cuts disabled on random mixed instances.
// ---------------------------------------------------------------------

class CutsEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(CutsEquivalence, SameOptimumWithAndWithoutCuts) {
  Rng rng(0xabcdef + static_cast<uint64_t>(GetParam()));
  Model m;
  const int n = 6 + static_cast<int>(rng.NextUint64() % 5);
  std::vector<int> vars;
  for (int i = 0; i < n; ++i) {
    vars.push_back(m.AddBinary(1.0 + 9.0 * rng.NextDouble()));
  }
  // One continuous coupling column like SQPR's potentials.
  const int p = m.AddVariable(0, 10, -0.1, /*is_integer=*/false, "p");
  const int rows = 2 + static_cast<int>(rng.NextUint64() % 3);
  for (int r = 0; r < rows; ++r) {
    std::vector<std::pair<int, double>> terms;
    double cap = 0.0;
    for (int v : vars) {
      if (rng.NextDouble() < 0.6) {
        const double a = 1.0 + 4.0 * rng.NextDouble();
        terms.emplace_back(v, a);
        cap += a;
      }
    }
    if (terms.empty()) continue;
    if (r == 0) terms.emplace_back(p, -1.0);
    m.lp.AddRow(-lp::kInf, 0.55 * cap, terms, "cap");
  }

  Solver solver;
  SolverOptions with, without;
  with.cuts.enable = true;
  without.cuts.enable = false;
  const MipResult a = solver.Solve(m, with);
  const MipResult b = solver.Solve(m, without);
  ASSERT_EQ(a.status, b.status) << "instance " << GetParam();
  if (a.has_solution()) {
    EXPECT_NEAR(a.objective, b.objective, 1e-5) << "instance " << GetParam();
    EXPECT_TRUE(m.lp.CheckFeasible(a.x, 1e-6).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, CutsEquivalence,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace milp
}  // namespace sqpr
