// Property test for the planning service's determinism contract
// (docs/ARCHITECTURE.md §4): replaying any trace with a node-bounded
// solver commits bit-for-bit identical deployments — and identical
// admission/eviction statistics — for every worker count, including the
// inline mode (workers == 0). Twenty generated traces with varied seeds
// and event mixes (arrivals/departures/failures/joins/drift/ticks)
// stand in for "any trace"; the two hand-written worker-invariance
// cases in service_test.cc remain as focused regressions.
//
// Each trace is replayed with workers in {0, 1, 4} — and, open-loop,
// across the full pipeline-depth {1, 2, 4} x workers {0, 1, 4} matrix
// (the depth axis of the same contract). Per-replay state is
// rebuilt from scratch (fresh catalog/cluster/workload from the same
// seed): drift reports install measured rates into the catalog, so
// nothing may leak between replays.
//
// The contract extends unchanged to closed-loop mode (§IV-C): a second
// property replays generated closed-loop traces — ground-truth rate
// trajectories plus periodic self-measurement, zero scripted monitor
// events — across the same worker counts.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "model/catalog.h"
#include "model/cluster.h"
#include "obs/audit.h"
#include "service/planning_service.h"
#include "workload/generator.h"
#include "workload/trace.h"

namespace sqpr {
namespace {

/// Everything the contract promises is worker-count-invariant. Wall
/// clock (latency stats) is deliberately excluded.
struct ReplayResult {
  std::string fingerprint;
  int64_t admitted = 0;
  int64_t rejected = 0;
  int64_t dedup_hits = 0;
  int64_t cache_fast_path = 0;
  int64_t evictions = 0;
  int64_t replanned_admitted = 0;
  int64_t replanned_rejected = 0;
  int64_t replan_dispatches = 0;
  int64_t commit_conflicts = 0;
  int64_t overlapped_arrival_solves = 0;
  int64_t monitor_reports = 0;
  int64_t rate_directives = 0;
  int64_t measurement_ticks = 0;
  int64_t auto_replan_rounds = 0;
  /// Analytic-mode measurements and incremental reuse-index updates are
  /// logical (commit-order) quantities, so the contract covers them;
  /// snapshot byte counts are NOT here (workers == 0 never snapshots).
  int64_t analytic_ticks = 0;
  int64_t cache_delta_updates = 0;
  int64_t cache_rebuilds = 0;
  int pending_replans = 0;
  bool valid = false;

  auto Tie() const {
    return std::tie(fingerprint, admitted, rejected, dedup_hits,
                    cache_fast_path, evictions, replanned_admitted,
                    replanned_rejected, replan_dispatches, commit_conflicts,
                    overlapped_arrival_solves, monitor_reports,
                    rate_directives, measurement_ticks, auto_replan_rounds,
                    analytic_ticks, cache_delta_updates, cache_rebuilds,
                    pending_replans, valid);
  }
  /// The subset additionally invariant across *pipeline depths*. The
  /// speculative-attempt counters are defined per attempt, not per
  /// logical outcome, so depth >= 2 legitimately moves them: unwound
  /// rounds re-dispatch (replan_dispatches), manufactured staleness is
  /// re-solved inline (commit_conflicts — and each conflict repairs the
  /// reuse index with a rebuild instead of a delta, moving the cache
  /// counters too).
  auto DepthInvariantTie() const {
    return std::tie(fingerprint, admitted, rejected, dedup_hits,
                    cache_fast_path, evictions, replanned_admitted,
                    replanned_rejected, monitor_reports, rate_directives,
                    pending_replans, valid);
  }
  bool operator==(const ReplayResult& other) const {
    return Tie() == other.Tie();
  }
};

std::ostream& operator<<(std::ostream& os, const ReplayResult& r) {
  return os << "admitted=" << r.admitted << " rejected=" << r.rejected
            << " dedup=" << r.dedup_hits << " cache=" << r.cache_fast_path
            << " evictions=" << r.evictions
            << " replanned=" << r.replanned_admitted << "/"
            << (r.replanned_admitted + r.replanned_rejected)
            << " dispatches=" << r.replan_dispatches
            << " conflicts=" << r.commit_conflicts
            << " overlapped=" << r.overlapped_arrival_solves
            << " monitor=" << r.monitor_reports
            << " directives=" << r.rate_directives
            << " measured=" << r.measurement_ticks
            << " auto=" << r.auto_replan_rounds
            << " analytic=" << r.analytic_ticks
            << " cache-deltas=" << r.cache_delta_updates
            << " cache-rebuilds=" << r.cache_rebuilds
            << " pending=" << r.pending_replans << " valid=" << r.valid
            << "\nfingerprint:\n"
            << r.fingerprint;
}

/// Varies the event mix deterministically with the seed so the twenty
/// instances cover different regimes (departure-heavy, churn-heavy,
/// drift-heavy, ...), not twenty samples of one distribution.
TraceConfig MakeTraceConfig(uint64_t seed) {
  TraceConfig tc;
  tc.num_events = 36;
  tc.seed = seed * 977 + 13;
  tc.mean_gap_ms = 40;
  tc.arrival_weight = 1.0;
  tc.departure_weight = 0.15 + 0.10 * static_cast<double>(seed % 4);
  tc.failure_weight = 0.02 + 0.02 * static_cast<double>(seed % 3);
  tc.join_weight = 0.06 + 0.03 * static_cast<double>(seed % 2);
  tc.drift_weight = 0.05 + 0.06 * static_cast<double>(seed % 5);
  tc.tick_weight = 0.10;
  tc.min_failures = 1 + static_cast<int>(seed % 2);
  tc.min_drift_reports = 1 + static_cast<int>(seed % 3);
  tc.drift_streams_per_report = 1 + static_cast<int>(seed % 3);
  return tc;
}

/// Scenario state rebuilt from scratch per replay (drift reports and
/// warm-ups mutate the catalog, so nothing may leak between replays).
/// Owned through pointers because the checkpoint/restore properties
/// need two independent scenarios alive at once ("the crashed process"
/// and "the restarted process").
struct Scenario {
  std::unique_ptr<Cluster> cluster;
  std::unique_ptr<Catalog> catalog;
  std::vector<Event> trace;
};

Scenario MakeScenario(uint64_t seed, bool closed_loop) {
  Scenario s;
  s.cluster =
      std::make_unique<Cluster>(3, HostSpec{0.6, 70.0, 70.0, ""}, 140.0);
  s.catalog = std::make_unique<Catalog>(CostModel{});

  WorkloadConfig wc;
  wc.num_base_streams = 18;
  wc.num_queries = 30;
  wc.arities = {2, 3};
  wc.seed = seed;
  Result<Workload> workload = GenerateWorkload(wc, 3, s.catalog.get());
  EXPECT_TRUE(workload.ok()) << workload.status().ToString();

  TraceConfig tc = MakeTraceConfig(seed);
  if (closed_loop) {
    // Drift slots become ground-truth trajectories and the tick weight
    // rises — the §IV-C measurements (and therefore every re-planning
    // round) fire from the service's own loop.
    tc.closed_loop = true;
    tc.tick_weight = 0.55;
  }
  Result<std::vector<Event>> trace =
      GenerateTrace(tc, *workload, 3, *s.catalog);
  EXPECT_TRUE(trace.ok()) << trace.status().ToString();
  s.trace = std::move(*trace);
  return s;
}

ServiceOptions MakeOptions(uint64_t seed, int workers, bool closed_loop,
                           MeasureMode mode, int pipeline_depth,
                           obs::AuditJournal* journal) {
  ServiceOptions options;
  // The contract requires a node-bounded solver: a wall-clock deadline
  // that fires mid-search would make the incumbent depend on machine
  // load (docs/ARCHITECTURE.md §4).
  options.planner.timeout_ms = 60000;
  options.planner.max_nodes = 80;
  options.replan.workers = workers;
  options.replan.pipeline_depth = pipeline_depth;
  // Genuine N-thread coverage: the default clamps the pool to the core
  // count (a latency guard, see ReplanPolicyOptions), which on a 1-core
  // CI host would silently turn every workers=4 replay into workers=1
  // and the worker-invariance property into a tautology.
  options.replan.clamp_workers_to_cores = false;
  if (closed_loop) {
    options.closed_loop = true;
    options.telemetry.mode = mode;
    options.telemetry.measure_period = 2;
    options.telemetry.seed = seed;
    // Exercise the full measurement shaping (noise + smoothing) — both
    // are seeded/stateful and must replay identically.
    options.telemetry.ewma_alpha = 0.7;
    options.telemetry.noise = 0.05;
    options.telemetry.sim.rate_scale = 0.02;
    options.telemetry.sim.duration_ms = 400;
  }
  options.audit = journal;
  return options;
}

ReplayResult Harvest(PlanningService& service) {
  ReplayResult result;
  result.fingerprint = service.deployment().Fingerprint();
  const ServiceStats& stats = service.stats();
  result.admitted = stats.admitted;
  result.rejected = stats.rejected;
  result.dedup_hits = stats.dedup_hits;
  result.cache_fast_path = stats.cache_fast_path;
  result.evictions = stats.evictions;
  result.replanned_admitted = stats.replanned_admitted;
  result.replanned_rejected = stats.replanned_rejected;
  result.replan_dispatches = stats.replan_dispatches;
  result.commit_conflicts = stats.commit_conflicts;
  result.overlapped_arrival_solves = stats.overlapped_arrival_solves;
  result.monitor_reports = stats.monitor_reports;
  result.rate_directives = stats.rate_directives;
  result.measurement_ticks = stats.measurement_ticks;
  result.auto_replan_rounds = stats.auto_replan_rounds;
  result.analytic_ticks = stats.analytic_ticks;
  result.cache_delta_updates = stats.cache_delta_updates;
  result.cache_rebuilds = service.plan_cache().rebuilds();
  result.pending_replans = service.pending_replans();
  result.valid = service.deployment().Validate().ok();
  return result;
}

ReplayResult Replay(uint64_t seed, int workers, bool closed_loop = false,
                    MeasureMode mode = MeasureMode::kEngine,
                    int pipeline_depth = 2,
                    obs::AuditJournal* journal = nullptr) {
  Scenario s = MakeScenario(seed, closed_loop);
  PlanningService service(
      s.cluster.get(), s.catalog.get(),
      MakeOptions(seed, workers, closed_loop, mode, pipeline_depth, journal));
  for (const Event& e : s.trace) EXPECT_TRUE(service.Enqueue(e).ok());
  EXPECT_TRUE(service.RunUntilIdle().ok());
  if (journal != nullptr) service.FinalizeAudit();
  return Harvest(service);
}

class ServiceReplayPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ServiceReplayPropertyTest, WorkerCountInvariantDeployments) {
  const uint64_t seed = GetParam();
  const ReplayResult inline_mode = Replay(seed, 0);
  EXPECT_TRUE(inline_mode.valid) << "seed " << seed;

  const ReplayResult one_worker = Replay(seed, 1);
  EXPECT_EQ(inline_mode, one_worker) << "workers 0 vs 1 diverged, seed "
                                     << seed;

  const ReplayResult four_workers = Replay(seed, 4);
  EXPECT_EQ(inline_mode, four_workers) << "workers 0 vs 4 diverged, seed "
                                       << seed;
}

// The same property over the §IV-C closed loop: the trace scripts
// ground-truth trajectories (zero monitor reports) and every
// measurement — the ClusterSim run, the seeded noise, the EWMA state,
// the drift cycle it triggers — happens at the tick barrier on the loop
// thread, so the full self-measuring service must stay bit-for-bit
// worker-count-invariant too.
TEST_P(ServiceReplayPropertyTest, ClosedLoopWorkerCountInvariant) {
  const uint64_t seed = GetParam();
  const ReplayResult inline_mode = Replay(seed, 0, /*closed_loop=*/true);
  EXPECT_TRUE(inline_mode.valid) << "seed " << seed;
  EXPECT_EQ(inline_mode.monitor_reports, 0)
      << "closed-loop traces must not script measurements, seed " << seed;
  EXPECT_GT(inline_mode.measurement_ticks, 0)
      << "closed loop never self-measured, seed " << seed;
  EXPECT_GT(inline_mode.rate_directives, 0) << "seed " << seed;

  const ReplayResult one_worker = Replay(seed, 1, /*closed_loop=*/true);
  EXPECT_EQ(inline_mode, one_worker)
      << "closed loop: workers 0 vs 1 diverged, seed " << seed;

  const ReplayResult four_workers = Replay(seed, 4, /*closed_loop=*/true);
  EXPECT_EQ(inline_mode, four_workers)
      << "closed loop: workers 0 vs 4 diverged, seed " << seed;
}

// And over the analytic measurement mode (no ClusterSim in the loop):
// the ledger-derived measurements are pure functions of the committed
// state and the seeded noise stream, so the copy-on-write snapshots,
// the incremental cache maintenance and the analytic drift decisions
// must all replay identically at every worker count.
TEST_P(ServiceReplayPropertyTest, AnalyticClosedLoopWorkerCountInvariant) {
  const uint64_t seed = GetParam();
  const ReplayResult inline_mode =
      Replay(seed, 0, /*closed_loop=*/true, MeasureMode::kAnalytic);
  EXPECT_TRUE(inline_mode.valid) << "seed " << seed;
  EXPECT_GT(inline_mode.measurement_ticks, 0) << "seed " << seed;
  EXPECT_EQ(inline_mode.analytic_ticks, inline_mode.measurement_ticks)
      << "every measurement must take the analytic path, seed " << seed;

  const ReplayResult one_worker =
      Replay(seed, 1, /*closed_loop=*/true, MeasureMode::kAnalytic);
  EXPECT_EQ(inline_mode, one_worker)
      << "analytic loop: workers 0 vs 1 diverged, seed " << seed;

  const ReplayResult four_workers =
      Replay(seed, 4, /*closed_loop=*/true, MeasureMode::kAnalytic);
  EXPECT_EQ(inline_mode, four_workers)
      << "analytic loop: workers 0 vs 4 diverged, seed " << seed;
}

// The contract's second axis (docs/ARCHITECTURE.md §4): the pipeline
// depth moves round dispatches earlier but never moves a commit point,
// so replaying the same open-loop trace across the full depth {1, 2, 4}
// × workers {0, 1, 4} matrix must commit bit-identical deployments and
// identical logical statistics. Compared on the depth-invariant subset
// (DepthInvariantTie) — the per-attempt counters differ by design.
// Open-loop only: the worker-invariance properties above already cover
// the closed loop at the default depth.
TEST_P(ServiceReplayPropertyTest, PipelineDepthWorkerMatrixInvariant) {
  const uint64_t seed = GetParam();
  const ReplayResult baseline =
      Replay(seed, 0, /*closed_loop=*/false, MeasureMode::kEngine,
             /*pipeline_depth=*/1);
  EXPECT_TRUE(baseline.valid) << "seed " << seed;
  for (const int depth : {1, 2, 4}) {
    for (const int workers : {0, 1, 4}) {
      if (depth == 1 && workers == 0) continue;  // the baseline itself
      const ReplayResult replay =
          Replay(seed, workers, /*closed_loop=*/false, MeasureMode::kEngine,
                 depth);
      EXPECT_TRUE(baseline.DepthInvariantTie() == replay.DepthInvariantTie())
          << "depth " << depth << " x workers " << workers
          << " diverged from depth 1 x workers 0, seed " << seed
          << "\nbaseline: " << baseline << "\nreplay:   " << replay;
    }
  }
}

// The decision audit journal rides the same contract (obs/audit.h):
// canonical records are emitted at commit points only, so the canonical
// rendering — header line plus every non-speculative record, "wall"
// object stripped — must be BYTE-identical across the full worker
// {0, 1, 4} x pipeline-depth {1, 2, 4} matrix. And auditing must never
// gate behaviour: the journal-attached replays commit the same
// deployment fingerprint as an audit-off replay of the same trace.
TEST_P(ServiceReplayPropertyTest, AuditJournalCanonicalBytesMatrixInvariant) {
  const uint64_t seed = GetParam();
  const ReplayResult audit_off =
      Replay(seed, 0, /*closed_loop=*/false, MeasureMode::kEngine,
             /*pipeline_depth=*/1);
  EXPECT_TRUE(audit_off.valid) << "seed " << seed;

  std::string canonical;
  for (const int depth : {1, 2, 4}) {
    for (const int workers : {0, 1, 4}) {
      obs::AuditJournal journal;
      const ReplayResult replay =
          Replay(seed, workers, /*closed_loop=*/false, MeasureMode::kEngine,
                 depth, &journal);
      EXPECT_EQ(replay.fingerprint, audit_off.fingerprint)
          << "auditing changed the committed deployment, depth " << depth
          << " x workers " << workers << ", seed " << seed;
      const std::string rendered = journal.ToJsonl(/*canonical=*/true);
      if (canonical.empty()) {
        canonical = rendered;
        // Shape sanity on the reference rendering: schema header,
        // terminator, and no leaked operational stratum.
        EXPECT_EQ(canonical.find(
                      "{\"schema\":\"sqpr-audit-v1\",\"canonical\":true}"),
                  0u)
            << "seed " << seed;
        EXPECT_NE(canonical.find("\"journal.close\""), std::string::npos)
            << "seed " << seed;
        EXPECT_EQ(canonical.find("\"wall\""), std::string::npos)
            << "canonical rendering leaked wall-clock fields, seed " << seed;
        EXPECT_EQ(canonical.find("\"round.dispatch\""), std::string::npos)
            << "canonical rendering leaked a speculative record, seed "
            << seed;
        EXPECT_GT(journal.canonical_size(), 0u) << "seed " << seed;
      } else {
        EXPECT_EQ(rendered, canonical)
            << "canonical audit bytes diverged at depth " << depth
            << " x workers " << workers << ", seed " << seed;
      }
    }
  }
}

// The durability axis of the same contract (docs/ARCHITECTURE.md
// "Durability & degraded modes"): kill the service after event k,
// restore the checkpoint into a fresh process, finish the trace — and
// land exactly where an uninterrupted run lands. Three properties in
// one sweep over workers {0, 1, 4} x pipeline-depth {1, 2}:
//
//   1. The checkpoint taken at event k is BYTE-identical across the
//      whole matrix (ExportCheckpoint is a pipeline barrier, so every
//      configuration serializes the same post-barrier state).
//   2. A fresh scenario (rebuilt from the same seed, as a restarted
//      process would) restored from that checkpoint and fed the
//      not-yet-consumed suffix commits the uninterrupted run's
//      deployment — same fingerprint, same logical statistics.
//   3. The restored run's final checkpoint is byte-identical to an
//      uninterrupted run's AT THE SAME configuration, and final
//      checkpoints are worker-invariant at fixed depth. (They are NOT
//      depth-invariant: a deeper pipeline may dispatch-and-unwind
//      speculative rounds the shallow one never starts, which consumes
//      round ids, plan-cache misses and catalog interning slots for
//      speculative closures — operational state the checkpoint must
//      carry for exact resume, deliberately outside the committed-state
//      contract that DepthInvariantTie pins.)
//
// The uninterrupted baseline ALSO checkpoints at event k: exporting is
// a barrier that finishes in-flight rounds and re-canonicalizes the
// ledgers (bumping the deployment version), so it is part of the
// replayed history — crashing and non-crashing runs must share it.
TEST_P(ServiceReplayPropertyTest, CheckpointRestoreCrashInvariant) {
  const uint64_t seed = GetParam();
  constexpr int kCrashAfter = 12;

  std::string checkpoint;      // taken at event k, matrix-invariant
  std::string baseline_final;  // final checkpoint, uninterrupted run
  ReplayResult baseline;
  {
    Scenario s = MakeScenario(seed, /*closed_loop=*/false);
    ASSERT_GT(s.trace.size(), static_cast<size_t>(kCrashAfter));
    PlanningService service(s.cluster.get(), s.catalog.get(),
                            MakeOptions(seed, /*workers=*/0,
                                        /*closed_loop=*/false,
                                        MeasureMode::kEngine,
                                        /*pipeline_depth=*/1, nullptr));
    for (const Event& e : s.trace) ASSERT_TRUE(service.Enqueue(e).ok());
    for (int i = 0; i < kCrashAfter; ++i) {
      ASSERT_TRUE(service.HasPendingEvents());
      const Result<EventOutcome> outcome = service.Step();
      ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    }
    Result<std::string> ck = service.ExportCheckpoint();
    ASSERT_TRUE(ck.ok()) << ck.status().ToString();
    checkpoint = std::move(*ck);
    ASSERT_TRUE(service.RunUntilIdle().ok());
    baseline = Harvest(service);
    ASSERT_TRUE(baseline.valid) << "seed " << seed;
    Result<std::string> fin = service.ExportCheckpoint();
    ASSERT_TRUE(fin.ok()) << fin.status().ToString();
    baseline_final = std::move(*fin);
  }

  for (const int depth : {1, 2}) {
    // Final checkpoint of the workers=0 uninterrupted run at this
    // depth: the reference the other worker counts must hit byte-ly.
    std::string depth_final;
    for (const int workers : {0, 1, 4}) {
      // The "crashing" run: same prefix, different configuration —
      // then run through so its final export doubles as this cell's
      // uninterrupted reference.
      std::string uninterrupted_final;
      {
        Scenario s = MakeScenario(seed, /*closed_loop=*/false);
        PlanningService service(
            s.cluster.get(), s.catalog.get(),
            MakeOptions(seed, workers, /*closed_loop=*/false,
                        MeasureMode::kEngine, depth, nullptr));
        for (const Event& e : s.trace) ASSERT_TRUE(service.Enqueue(e).ok());
        for (int i = 0; i < kCrashAfter; ++i) {
          const Result<EventOutcome> outcome = service.Step();
          ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
        }
        const Result<std::string> ck = service.ExportCheckpoint();
        ASSERT_TRUE(ck.ok()) << ck.status().ToString();
        EXPECT_EQ(*ck, checkpoint)
            << "checkpoint at event " << kCrashAfter << " diverged at depth "
            << depth << " x workers " << workers << ", seed " << seed;
        ASSERT_TRUE(service.RunUntilIdle().ok());
        const ReplayResult uninterrupted = Harvest(service);
        EXPECT_TRUE(baseline.DepthInvariantTie() ==
                    uninterrupted.DepthInvariantTie())
            << "uninterrupted run diverged at depth " << depth
            << " x workers " << workers << ", seed " << seed;
        Result<std::string> fin = service.ExportCheckpoint();
        ASSERT_TRUE(fin.ok()) << fin.status().ToString();
        uninterrupted_final = std::move(*fin);
        if (workers == 0) {
          depth_final = uninterrupted_final;
          if (depth == 1) {
            EXPECT_EQ(uninterrupted_final, baseline_final)
                << "depth-1 workers-0 rerun is the baseline, seed " << seed;
          }
        } else {
          EXPECT_EQ(uninterrupted_final, depth_final)
              << "final checkpoint not worker-invariant at depth " << depth
              << " x workers " << workers << ", seed " << seed;
        }
      }

      // The "restarted process": fresh scenario from the same seed,
      // restore, replay only the suffix.
      Scenario s = MakeScenario(seed, /*closed_loop=*/false);
      PlanningService restored(
          s.cluster.get(), s.catalog.get(),
          MakeOptions(seed, workers, /*closed_loop=*/false,
                      MeasureMode::kEngine, depth, nullptr));
      const Status ok = restored.RestoreCheckpoint(checkpoint);
      ASSERT_TRUE(ok.ok())
          << ok.ToString() << " at depth " << depth << " x workers "
          << workers << ", seed " << seed;
      ASSERT_EQ(restored.stats().events, kCrashAfter);
      for (size_t i = kCrashAfter; i < s.trace.size(); ++i) {
        ASSERT_TRUE(restored.Enqueue(s.trace[i]).ok());
      }
      ASSERT_TRUE(restored.RunUntilIdle().ok());
      const ReplayResult result = Harvest(restored);
      EXPECT_TRUE(baseline.DepthInvariantTie() == result.DepthInvariantTie())
          << "restored run diverged at depth " << depth << " x workers "
          << workers << ", seed " << seed << "\nbaseline: " << baseline
          << "\nrestored: " << result;
      const Result<std::string> fin = restored.ExportCheckpoint();
      ASSERT_TRUE(fin.ok()) << fin.status().ToString();
      EXPECT_EQ(*fin, uninterrupted_final)
          << "final checkpoint diverged after restore at depth " << depth
          << " x workers " << workers << ", seed " << seed;
    }
  }
}

// The same kill-restore-finish property through the §IV-C closed loop,
// which adds the telemetry state to the checkpoint: ground-truth
// trajectories (walk phases are re-derived lazily from virtual time),
// the raw measurement-noise RNG state (data-dependent draw count, so it
// is serialized verbatim), EWMA smoothing state and the last measured
// rates. A reduced matrix keeps the cost proportionate — the open-loop
// sweep above already covers the full one.
TEST_P(ServiceReplayPropertyTest, ClosedLoopCheckpointRestoreInvariant) {
  const uint64_t seed = GetParam();
  constexpr int kCrashAfter = 12;

  std::string checkpoint;
  std::string baseline_final;
  ReplayResult baseline;
  {
    Scenario s = MakeScenario(seed, /*closed_loop=*/true);
    ASSERT_GT(s.trace.size(), static_cast<size_t>(kCrashAfter));
    PlanningService service(s.cluster.get(), s.catalog.get(),
                            MakeOptions(seed, /*workers=*/0,
                                        /*closed_loop=*/true,
                                        MeasureMode::kEngine,
                                        /*pipeline_depth=*/2, nullptr));
    for (const Event& e : s.trace) ASSERT_TRUE(service.Enqueue(e).ok());
    for (int i = 0; i < kCrashAfter; ++i) {
      const Result<EventOutcome> outcome = service.Step();
      ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    }
    Result<std::string> ck = service.ExportCheckpoint();
    ASSERT_TRUE(ck.ok()) << ck.status().ToString();
    checkpoint = std::move(*ck);
    ASSERT_TRUE(service.RunUntilIdle().ok());
    baseline = Harvest(service);
    ASSERT_TRUE(baseline.valid) << "seed " << seed;
    Result<std::string> fin = service.ExportCheckpoint();
    ASSERT_TRUE(fin.ok()) << fin.status().ToString();
    baseline_final = std::move(*fin);
  }

  for (const int workers : {0, 4}) {
    Scenario s = MakeScenario(seed, /*closed_loop=*/true);
    PlanningService restored(
        s.cluster.get(), s.catalog.get(),
        MakeOptions(seed, workers, /*closed_loop=*/true, MeasureMode::kEngine,
                    /*pipeline_depth=*/2, nullptr));
    const Status ok = restored.RestoreCheckpoint(checkpoint);
    ASSERT_TRUE(ok.ok()) << ok.ToString() << " at workers " << workers
                         << ", seed " << seed;
    for (size_t i = kCrashAfter; i < s.trace.size(); ++i) {
      ASSERT_TRUE(restored.Enqueue(s.trace[i]).ok());
    }
    ASSERT_TRUE(restored.RunUntilIdle().ok());
    const ReplayResult result = Harvest(restored);
    EXPECT_TRUE(baseline.DepthInvariantTie() == result.DepthInvariantTie())
        << "closed loop: restored run diverged at workers " << workers
        << ", seed " << seed << "\nbaseline: " << baseline
        << "\nrestored: " << result;
    const Result<std::string> fin = restored.ExportCheckpoint();
    ASSERT_TRUE(fin.ok()) << fin.status().ToString();
    EXPECT_EQ(*fin, baseline_final)
        << "closed loop: final checkpoint diverged after restore at workers "
        << workers << ", seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Traces, ServiceReplayPropertyTest,
                         ::testing::Range(uint64_t{1}, uint64_t{21}));

}  // namespace
}  // namespace sqpr
