#include <gtest/gtest.h>

#include <set>

#include "model/catalog.h"
#include "model/cluster.h"
#include "plan/query_plan.h"
#include "planner/heuristic/heuristic_planner.h"
#include "planner/heuristic/join_trees.h"
#include "planner/optimistic/optimistic_bound.h"
#include "planner/soda/soda_planner.h"
#include "planner/sqpr/sqpr_planner.h"
#include "workload/generator.h"

namespace sqpr {
namespace {

/// A small planning scenario: `num_hosts` hosts, base streams spread
/// uniformly, everything generously provisioned unless scaled down.
struct Scenario {
  Scenario(int num_hosts, int num_base, double cpu = 4.0,
           double nic = 200.0, double link = 1000.0)
      : catalog(CostModel{}),
        cluster(num_hosts, HostSpec{cpu, nic, nic, ""}, link) {
    for (int i = 0; i < num_base; ++i) {
      base.push_back(catalog.AddBaseStream(i % num_hosts, 10.0));
    }
  }

  StreamId Join(std::vector<StreamId> leaves) {
    auto s = catalog.CanonicalJoinStream(std::move(leaves));
    EXPECT_TRUE(s.ok());
    return *s;
  }

  SqprPlanner MakeSqpr(SqprPlanner::Options opts = {}) {
    return SqprPlanner(&cluster, &catalog, opts);
  }

  Catalog catalog;
  Cluster cluster;
  std::vector<StreamId> base;
};

// ------------------------------------------------------------- JoinTrees

TEST(JoinTreesTest, CountsMatchDoubleFactorial) {
  Scenario s(2, 5);
  EXPECT_EQ(EnumerateJoinTrees(s.Join({s.base[0], s.base[1]}), &s.catalog)
                ->size(),
            1u);
  EXPECT_EQ(
      EnumerateJoinTrees(s.Join({s.base[0], s.base[1], s.base[2]}), &s.catalog)
          ->size(),
      3u);
  EXPECT_EQ(EnumerateJoinTrees(
                s.Join({s.base[0], s.base[1], s.base[2], s.base[3]}),
                &s.catalog)
                ->size(),
            15u);
  EXPECT_EQ(EnumerateJoinTrees(s.Join({s.base[0], s.base[1], s.base[2],
                                       s.base[3], s.base[4]}),
                               &s.catalog)
                ->size(),
            105u);
}

TEST(JoinTreesTest, AllTreesProduceTheQueryStream) {
  Scenario s(2, 4);
  const StreamId q = s.Join({s.base[0], s.base[1], s.base[2], s.base[3]});
  auto trees = EnumerateJoinTrees(q, &s.catalog);
  ASSERT_TRUE(trees.ok());
  for (const auto& tree : *trees) EXPECT_EQ(tree->stream, q);
}

TEST(JoinTreesTest, LeftDeepTemplateShape) {
  Scenario s(2, 3);
  const StreamId q = s.Join({s.base[0], s.base[1], s.base[2]});
  auto tree = LeftDeepTree(q, &s.catalog);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ((*tree)->stream, q);
  EXPECT_TRUE((*tree)->right->is_leaf());          // right child is a leaf
  EXPECT_FALSE((*tree)->left->is_leaf());          // left child is the subjoin
  EXPECT_EQ(BottomUpOperators(**tree).size(), 2u);  // k-1 joins
}

// ------------------------------------------------------- SQPR planner

TEST(SqprPlannerTest, AdmitsSingleTwoWayJoin) {
  Scenario s(3, 6);
  SqprPlanner planner = s.MakeSqpr();
  const StreamId q = s.Join({s.base[0], s.base[1]});
  auto stats = planner.SubmitQuery(q);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->admitted);
  EXPECT_FALSE(stats->already_served);
  EXPECT_EQ(planner.deployment().ServingHost(q) == kInvalidHost, false);
  EXPECT_TRUE(planner.deployment().Validate().ok());

  // The admitted plan must extract into a valid C1-C4 tree.
  auto plan = ExtractPlan(planner.deployment(), q);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_TRUE(ValidatePlanTree(*plan, s.catalog).ok());
}

TEST(SqprPlannerTest, DedupsRepeatedQuery) {
  Scenario s(3, 6);
  SqprPlanner planner = s.MakeSqpr();
  const StreamId q = s.Join({s.base[0], s.base[1]});
  ASSERT_TRUE(planner.SubmitQuery(q)->admitted);
  auto again = planner.SubmitQuery(q);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->admitted);
  EXPECT_TRUE(again->already_served);
  EXPECT_EQ(planner.admitted_queries().size(), 1u);
}

TEST(SqprPlannerTest, RejectsWhenCpuExhausted) {
  // One host, CPU so small no join fits.
  Scenario s(1, 4, /*cpu=*/1e-9);
  SqprPlanner planner = s.MakeSqpr();
  auto stats = planner.SubmitQuery(s.Join({s.base[0], s.base[1]}));
  ASSERT_TRUE(stats.ok());
  EXPECT_FALSE(stats->admitted);
  EXPECT_TRUE(planner.deployment().Validate().ok());
}

TEST(SqprPlannerTest, AdmittedQueriesSurviveLaterPlanning) {
  Scenario s(3, 9, /*cpu=*/1.0);
  SqprPlanner planner = s.MakeSqpr();
  std::vector<StreamId> queries = {
      s.Join({s.base[0], s.base[1]}),
      s.Join({s.base[1], s.base[2]}),
      s.Join({s.base[0], s.base[2]}),
      s.Join({s.base[3], s.base[4]}),
  };
  std::vector<StreamId> admitted;
  for (StreamId q : queries) {
    auto st = planner.SubmitQuery(q);
    ASSERT_TRUE(st.ok());
    if (st->admitted) admitted.push_back(q);
    // (IV.9): everything admitted earlier must still be served.
    for (StreamId prev : admitted) {
      EXPECT_NE(planner.deployment().ServingHost(prev), kInvalidHost)
          << "query " << prev << " dropped after planning " << q;
    }
    EXPECT_TRUE(planner.deployment().Validate().ok());
  }
  EXPECT_GE(admitted.size(), 2u);
}

TEST(SqprPlannerTest, ReusesSharedSubQuery) {
  // Queries join{0,1,2} then join{0,1,3}: the shared sub-join {0,1}
  // should be computed once (one placement of any {0,1} producer).
  // A tight gap and a generous timeout let the solver prove it instead
  // of stopping at a within-gap incumbent that duplicates the producer.
  Scenario s(4, 8, /*cpu=*/4.0);
  SqprPlanner::Options opts;
  opts.timeout_ms = 8000;
  opts.mip_gap_abs = 1e-4;
  opts.mip_gap_rel = 1e-7;
  SqprPlanner planner(&s.cluster, &s.catalog, opts);
  const StreamId q1 = s.Join({s.base[0], s.base[1], s.base[2]});
  const StreamId q2 = s.Join({s.base[0], s.base[1], s.base[3]});
  ASSERT_TRUE(planner.SubmitQuery(q1)->admitted);
  ASSERT_TRUE(planner.SubmitQuery(q2)->admitted);

  const StreamId ab = s.Join({s.base[0], s.base[1]});
  // Count placements of any producer of ab.
  int ab_producers = 0;
  for (HostId h = 0; h < s.cluster.num_hosts(); ++h) {
    for (OperatorId o : planner.deployment().OperatorsOn(h)) {
      if (s.catalog.op(o).output == ab) ++ab_producers;
    }
  }
  // Reuse bound: at most one producer instance of the shared sub-join.
  EXPECT_LE(ab_producers, 1);
  EXPECT_TRUE(planner.deployment().Validate().ok());
}

TEST(SqprPlannerTest, PotentialsModeMatchesLazyCuts) {
  // Same workload under both acyclicity formulations: admission decisions
  // must agree (they define the same feasible set).
  for (auto mode :
       {AcyclicityMode::kLazyCycleCuts, AcyclicityMode::kPotentials}) {
    Scenario s(3, 6, /*cpu=*/2.0);
    SqprPlanner::Options opts;
    opts.model.acyclicity = mode;
    SqprPlanner planner(&s.cluster, &s.catalog, opts);
    int admitted = 0;
    for (int i = 0; i < 4; ++i) {
      const StreamId q = s.Join({s.base[i % 6], s.base[(i + 1) % 6]});
      auto st = planner.SubmitQuery(q);
      ASSERT_TRUE(st.ok());
      admitted += st->admitted ? 1 : 0;
    }
    EXPECT_EQ(admitted, 4) << "mode " << static_cast<int>(mode);
    EXPECT_TRUE(planner.deployment().Validate().ok());
  }
}

TEST(SqprPlannerTest, NoRelayModeStillPlans) {
  Scenario s(3, 6);
  SqprPlanner::Options opts;
  opts.model.enable_relay = false;
  SqprPlanner planner(&s.cluster, &s.catalog, opts);
  const StreamId q = s.Join({s.base[0], s.base[1]});
  auto st = planner.SubmitQuery(q);
  ASSERT_TRUE(st.ok());
  EXPECT_TRUE(st->admitted);
  EXPECT_TRUE(planner.deployment().Validate().ok());
}

TEST(SqprPlannerTest, BatchSubmission) {
  Scenario s(3, 8);
  SqprPlanner planner = s.MakeSqpr();
  std::vector<StreamId> batch = {
      s.Join({s.base[0], s.base[1]}),
      s.Join({s.base[2], s.base[3]}),
      s.Join({s.base[0], s.base[1]}),  // duplicate inside the batch
  };
  auto stats = planner.SubmitBatch(batch);
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->size(), 3u);
  EXPECT_TRUE((*stats)[0].admitted);
  EXPECT_TRUE((*stats)[1].admitted);
  EXPECT_TRUE((*stats)[2].admitted);
  EXPECT_EQ(planner.admitted_queries().size(), 2u);  // dedup
  EXPECT_TRUE(planner.deployment().Validate().ok());
}

TEST(SqprPlannerTest, RemoveQueryReleasesResources) {
  Scenario s(3, 6);
  SqprPlanner planner = s.MakeSqpr();
  const StreamId q = s.Join({s.base[0], s.base[1]});
  ASSERT_TRUE(planner.SubmitQuery(q)->admitted);
  EXPECT_GT(planner.deployment().num_placed_operators(), 0);
  ASSERT_TRUE(planner.RemoveQuery(q).ok());
  EXPECT_EQ(planner.deployment().num_placed_operators(), 0);
  EXPECT_EQ(planner.deployment().num_flows(), 0);
  EXPECT_EQ(planner.deployment().ServingHost(q), kInvalidHost);
}

TEST(SqprPlannerTest, RemoveKeepsSharedSupport) {
  Scenario s(4, 8, /*cpu=*/4.0);
  SqprPlanner planner = s.MakeSqpr();
  const StreamId q1 = s.Join({s.base[0], s.base[1], s.base[2]});
  const StreamId q2 = s.Join({s.base[0], s.base[1], s.base[3]});
  ASSERT_TRUE(planner.SubmitQuery(q1)->admitted);
  ASSERT_TRUE(planner.SubmitQuery(q2)->admitted);
  ASSERT_TRUE(planner.RemoveQuery(q1).ok());
  // q2 must still be served and valid.
  EXPECT_NE(planner.deployment().ServingHost(q2), kInvalidHost);
  EXPECT_TRUE(planner.deployment().Validate().ok());
  auto plan = ExtractPlan(planner.deployment(), q2);
  EXPECT_TRUE(plan.ok());
}

TEST(SqprPlannerTest, ReplanQueriesKeepsThemAdmitted) {
  Scenario s(3, 6);
  SqprPlanner planner = s.MakeSqpr();
  const StreamId q1 = s.Join({s.base[0], s.base[1]});
  const StreamId q2 = s.Join({s.base[2], s.base[3]});
  ASSERT_TRUE(planner.SubmitQuery(q1)->admitted);
  ASSERT_TRUE(planner.SubmitQuery(q2)->admitted);
  auto stats = planner.ReplanQueries({q1, q2});
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE((*stats)[0].admitted);
  EXPECT_TRUE((*stats)[1].admitted);
  EXPECT_TRUE(planner.deployment().Validate().ok());
}

TEST(SqprPlannerTest, FullReplanMatchesOrBeatsReduced) {
  // With reduction disabled the model subsumes the reduced one, so the
  // unreduced planner must admit at least as many queries on this tiny
  // scenario (both get ample time).
  std::vector<int> admitted_counts;
  for (bool reduce : {true, false}) {
    Scenario s(2, 6, /*cpu=*/0.5);
    SqprPlanner::Options opts;
    opts.reduce_problem = reduce;
    opts.timeout_ms = 3000;
    SqprPlanner planner(&s.cluster, &s.catalog, opts);
    int admitted = 0;
    for (int i = 0; i + 1 < 6; i += 2) {
      auto st = planner.SubmitQuery(s.Join({s.base[i], s.base[i + 1]}));
      ASSERT_TRUE(st.ok());
      admitted += st->admitted;
    }
    admitted_counts.push_back(admitted);
  }
  EXPECT_GE(admitted_counts[1], admitted_counts[0]);
}

// ---------------------------------------------------- Heuristic planner

TEST(HeuristicPlannerTest, AdmitsAndValidates) {
  Scenario s(3, 6);
  HeuristicPlanner planner(&s.cluster, &s.catalog, {});
  const StreamId q = s.Join({s.base[0], s.base[1], s.base[2]});
  auto st = planner.SubmitQuery(q);
  ASSERT_TRUE(st.ok());
  EXPECT_TRUE(st->admitted);
  EXPECT_TRUE(planner.deployment().Validate().ok());
  auto plan = ExtractPlan(planner.deployment(), q);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(ValidatePlanTree(*plan, s.catalog).ok());
}

TEST(HeuristicPlannerTest, SinglePlanPerHostNoSpreading) {
  // All operators of one query land on a single host (the paper's noted
  // limitation: the heuristic never distributes plans over hosts).
  Scenario s(4, 8);
  HeuristicPlanner planner(&s.cluster, &s.catalog, {});
  const StreamId q = s.Join({s.base[0], s.base[1], s.base[2]});
  ASSERT_TRUE(planner.SubmitQuery(q)->admitted);
  std::set<HostId> hosts_with_ops;
  for (HostId h = 0; h < s.cluster.num_hosts(); ++h) {
    if (!planner.deployment().OperatorsOn(h).empty()) hosts_with_ops.insert(h);
  }
  EXPECT_EQ(hosts_with_ops.size(), 1u);
}

TEST(HeuristicPlannerTest, ReusesExistingSubQueries) {
  Scenario s(3, 6);
  HeuristicPlanner planner(&s.cluster, &s.catalog, {});
  ASSERT_TRUE(planner.SubmitQuery(s.Join({s.base[0], s.base[1]}))->admitted);
  const int ops_before = planner.deployment().num_placed_operators();
  ASSERT_TRUE(
      planner.SubmitQuery(s.Join({s.base[0], s.base[1], s.base[2]}))
          ->admitted);
  // Only one extra operator: join{01,2} reusing the existing join{0,1}.
  EXPECT_EQ(planner.deployment().num_placed_operators(), ops_before + 1);
}

TEST(HeuristicPlannerTest, RejectsWhenNothingFits) {
  Scenario s(2, 4, /*cpu=*/1e-9);
  HeuristicPlanner planner(&s.cluster, &s.catalog, {});
  auto st = planner.SubmitQuery(s.Join({s.base[0], s.base[1]}));
  ASSERT_TRUE(st.ok());
  EXPECT_FALSE(st->admitted);
}

// ---------------------------------------------------- Optimistic bound

TEST(OptimisticBoundTest, AdmitsUntilCpuExhausted) {
  Scenario s(2, 6, /*cpu=*/0.1);
  OptimisticBound bound(s.cluster, &s.catalog);
  int admitted = 0;
  for (int i = 0; i < 3; ++i) {
    auto r = bound.SubmitQuery(s.Join({s.base[2 * i], s.base[2 * i + 1]}));
    ASSERT_TRUE(r.ok());
    admitted += *r;
  }
  EXPECT_EQ(admitted, bound.admitted_count());
  EXPECT_LE(bound.cpu_used(), bound.cpu_budget() + 1e-9);
}

TEST(OptimisticBoundTest, ReuseMakesRepeatQueriesFree) {
  Scenario s(2, 4);
  OptimisticBound bound(s.cluster, &s.catalog);
  const StreamId q = s.Join({s.base[0], s.base[1]});
  ASSERT_TRUE(*bound.SubmitQuery(q));
  const double used = bound.cpu_used();
  ASSERT_TRUE(*bound.SubmitQuery(q));  // dedup: zero extra CPU
  EXPECT_DOUBLE_EQ(bound.cpu_used(), used);
  EXPECT_EQ(bound.admitted_count(), 1);
}

TEST(OptimisticBoundTest, SharedSubJoinReducesIncrementalCost) {
  Scenario s(2, 6);
  OptimisticBound bound(s.cluster, &s.catalog);
  ASSERT_TRUE(*bound.SubmitQuery(s.Join({s.base[0], s.base[1], s.base[2]})));
  const double used_after_first = bound.cpu_used();
  ASSERT_TRUE(*bound.SubmitQuery(s.Join({s.base[0], s.base[1], s.base[3]})));
  const double second_cost = bound.cpu_used() - used_after_first;
  // The second query can reuse join{0,1}: it should cost less than the
  // first one did from scratch.
  EXPECT_LT(second_cost, used_after_first);
}

TEST(OptimisticBoundTest, DominatesSqprOnSameSequence) {
  // Uses the full-closure credit below: the default chosen-tree
  // estimator is tighter but can legitimately be beaten.
  // The aggregate-host bound must admit at least as many queries as the
  // real planner on any submission sequence.
  Scenario s(3, 9, /*cpu=*/0.4);
  SqprPlanner sqpr = s.MakeSqpr();
  OptimisticBound bound(s.cluster, &s.catalog,
                        OptimisticBound::ReuseCredit::kFullClosure);
  int sqpr_admitted = 0;
  Rng rng(7);
  for (int i = 0; i < 10; ++i) {
    const StreamId q =
        s.Join({s.base[rng.NextBounded(9)],
                s.base[(rng.NextBounded(8) + 1 + rng.NextBounded(9)) % 9]});
    // (ensure two distinct leaves)
    auto st = sqpr.SubmitQuery(q);
    ASSERT_TRUE(st.ok());
    sqpr_admitted += st->admitted;
    ASSERT_TRUE(bound.SubmitQuery(q).ok());
  }
  EXPECT_GE(bound.admitted_count(), sqpr_admitted);
}

// ------------------------------------------------------------ SODA

TEST(SodaPlannerTest, AdmitsAndValidates) {
  Scenario s(3, 6);
  SodaPlanner planner(&s.cluster, &s.catalog, {});
  const StreamId q = s.Join({s.base[0], s.base[1], s.base[2]});
  auto st = planner.SubmitQuery(q);
  ASSERT_TRUE(st.ok());
  EXPECT_TRUE(st->admitted);
  EXPECT_TRUE(planner.deployment().Validate().ok());
  auto plan = ExtractPlan(planner.deployment(), q);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(ValidatePlanTree(*plan, s.catalog).ok());
}

TEST(SodaPlannerTest, MacroQRejectsOnCpu) {
  Scenario s(2, 4, /*cpu=*/1e-9);
  SodaPlanner planner(&s.cluster, &s.catalog, {});
  auto st = planner.SubmitQuery(s.Join({s.base[0], s.base[1]}));
  ASSERT_TRUE(st.ok());
  EXPECT_FALSE(st->admitted);
}

TEST(SodaPlannerTest, ReusesExistingStreams) {
  Scenario s(3, 6);
  SodaPlanner planner(&s.cluster, &s.catalog, {});
  ASSERT_TRUE(planner.SubmitQuery(s.Join({s.base[0], s.base[1]}))->admitted);
  const int ops_before = planner.deployment().num_placed_operators();
  ASSERT_TRUE(
      planner.SubmitQuery(s.Join({s.base[0], s.base[1], s.base[2]}))
          ->admitted);
  EXPECT_EQ(planner.deployment().num_placed_operators(), ops_before + 1);
}

TEST(SodaPlannerTest, DedupsRepeatedQuery) {
  Scenario s(3, 6);
  SodaPlanner planner(&s.cluster, &s.catalog, {});
  const StreamId q = s.Join({s.base[0], s.base[1]});
  ASSERT_TRUE(planner.SubmitQuery(q)->admitted);
  auto again = planner.SubmitQuery(q);
  EXPECT_TRUE(again->already_served);
}

// -------------------------------------------------------- Workload

TEST(WorkloadTest, GeneratesRequestedCounts) {
  Catalog catalog((CostModel()));
  WorkloadConfig config;
  config.num_base_streams = 30;
  config.num_queries = 50;
  config.seed = 3;
  auto w = GenerateWorkload(config, /*num_hosts=*/5, &catalog);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w->base_streams.size(), 30u);
  EXPECT_EQ(w->queries.size(), 50u);
}

TEST(WorkloadTest, BaseStreamsUniformOverHosts) {
  Catalog catalog((CostModel()));
  WorkloadConfig config;
  config.num_base_streams = 20;
  auto w = GenerateWorkload(config, /*num_hosts=*/4, &catalog);
  ASSERT_TRUE(w.ok());
  std::vector<int> per_host(4, 0);
  for (StreamId s : w->base_streams) {
    ++per_host[catalog.stream(s).source_host];
  }
  for (int c : per_host) EXPECT_EQ(c, 5);
}

TEST(WorkloadTest, AritiesRespected) {
  Catalog catalog((CostModel()));
  WorkloadConfig config;
  config.num_base_streams = 40;
  config.num_queries = 60;
  config.arities = {2, 3, 4};
  auto w = GenerateWorkload(config, 4, &catalog);
  ASSERT_TRUE(w.ok());
  for (StreamId q : w->queries) {
    const size_t k = catalog.stream(q).leaves.size();
    EXPECT_GE(k, 2u);
    EXPECT_LE(k, 4u);
  }
}

TEST(WorkloadTest, HigherZipfSkewIncreasesOverlap) {
  // More skew -> fewer distinct queries (more repeats/overlap).
  auto distinct_at = [](double zipf) {
    Catalog catalog((CostModel()));
    WorkloadConfig config;
    config.num_base_streams = 100;
    config.num_queries = 200;
    config.zipf_s = zipf;
    config.arities = {2};
    config.seed = 11;
    auto w = GenerateWorkload(config, 5, &catalog);
    EXPECT_TRUE(w.ok());
    return w->DistinctQueryCount();
  };
  EXPECT_LT(distinct_at(2.0), distinct_at(0.0));
}

TEST(WorkloadTest, DeterministicAcrossRuns) {
  auto make = [] {
    Catalog catalog((CostModel()));
    WorkloadConfig config;
    config.num_base_streams = 20;
    config.num_queries = 30;
    config.seed = 99;
    auto w = GenerateWorkload(config, 3, &catalog);
    EXPECT_TRUE(w.ok());
    return w->queries;
  };
  EXPECT_EQ(make(), make());
}

TEST(WorkloadTest, InvalidConfigsRejected) {
  Catalog catalog((CostModel()));
  WorkloadConfig bad;
  bad.num_base_streams = 0;
  EXPECT_FALSE(GenerateWorkload(bad, 2, &catalog).ok());
  WorkloadConfig bad2;
  bad2.arities = {1};
  EXPECT_FALSE(GenerateWorkload(bad2, 2, &catalog).ok());
  WorkloadConfig bad3;
  bad3.num_base_streams = 3;
  bad3.arities = {4};
  EXPECT_FALSE(GenerateWorkload(bad3, 2, &catalog).ok());
}

// --------------------------------------- Cross-planner integration sweep

struct SweepCase {
  int hosts;
  int base_streams;
  double cpu;
  uint64_t seed;
};

class PlannerSweepTest : public ::testing::TestWithParam<SweepCase> {};

// Every planner must produce only valid deployments, and SQPR must stay
// at or above the heuristic and at or below the optimistic bound — the
// Fig. 4(a) ordering — on arbitrary random workloads.
TEST_P(PlannerSweepTest, OrderingAndValidityHold) {
  const SweepCase& tc = GetParam();
  Catalog catalog((CostModel()));
  Cluster cluster(tc.hosts, HostSpec{tc.cpu, 150.0, 150.0, ""}, 500.0);
  WorkloadConfig config;
  config.num_base_streams = tc.base_streams;
  config.num_queries = 12;
  config.arities = {2, 3};
  config.seed = tc.seed;
  auto workload = GenerateWorkload(config, tc.hosts, &catalog);
  ASSERT_TRUE(workload.ok());

  SqprPlanner::Options opts;
  opts.timeout_ms = 500;
  SqprPlanner sqpr(&cluster, &catalog, opts);
  HeuristicPlanner heuristic(&cluster, &catalog, {});
  OptimisticBound bound(cluster, &catalog,
                        OptimisticBound::ReuseCredit::kFullClosure);

  int sqpr_admitted = 0, heuristic_admitted = 0;
  for (StreamId q : workload->queries) {
    auto s1 = sqpr.SubmitQuery(q);
    ASSERT_TRUE(s1.ok());
    sqpr_admitted += s1->admitted && !s1->already_served;
    auto s2 = heuristic.SubmitQuery(q);
    ASSERT_TRUE(s2.ok());
    heuristic_admitted += s2->admitted && !s2->already_served;
    ASSERT_TRUE(bound.SubmitQuery(q).ok());
  }
  EXPECT_TRUE(sqpr.deployment().Validate().ok());
  EXPECT_TRUE(heuristic.deployment().Validate().ok());
  EXPECT_GE(bound.admitted_count(), sqpr_admitted) << "seed " << tc.seed;

  // Every admitted SQPR query must have an extractable, C1-C4-valid plan.
  for (StreamId q : sqpr.admitted_queries()) {
    auto plan = ExtractPlan(sqpr.deployment(), q);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    EXPECT_TRUE(ValidatePlanTree(*plan, catalog).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PlannerSweepTest,
    ::testing::Values(SweepCase{2, 8, 0.5, 1}, SweepCase{3, 12, 0.4, 2},
                      SweepCase{4, 12, 0.3, 3}, SweepCase{3, 9, 1.0, 4},
                      SweepCase{2, 6, 0.2, 5}, SweepCase{4, 16, 0.6, 6}));

// ------------------------------------------- Speculative proposals

// Two hosts, all bases injected at host 0, host 1 unusable (zero CPU
// and NICs), host 0's CPU sized for exactly one 2-way join operator
// (cost 20 Mbps / 300 = 0.0667): two proposals solved against the same
// empty snapshot each fit alone but not together.
struct ProposalScenario {
  ProposalScenario()
      : catalog(CostModel{}),
        cluster(2, HostSpec{0.07, 500.0, 500.0, ""}, 1000.0) {
    HostSpec dead;
    dead.cpu = 0.0;
    dead.nic_out_mbps = 0.0;
    dead.nic_in_mbps = 0.0;
    cluster.SetHostSpec(1, dead);
    for (int i = 0; i < 4; ++i) {
      base.push_back(catalog.AddBaseStream(0, 10.0));
    }
  }
  Catalog catalog;
  Cluster cluster;
  std::vector<StreamId> base;
};

TEST(SqprProposalTest, ProposeDoesNotMutateAndCommitMatchesInlineSolve) {
  ProposalScenario s;
  const StreamId q = *s.catalog.CanonicalJoinStream({s.base[0], s.base[1]});
  SqprPlanner::Options options;
  options.timeout_ms = 60000;
  options.max_nodes = 200;

  SqprPlanner speculative(&s.cluster, &s.catalog, options);
  ASSERT_TRUE(speculative.WarmCatalog(q).ok());
  Result<AdmissionProposal> proposal = speculative.ProposeAdmission(q);
  ASSERT_TRUE(proposal.ok()) << proposal.status().ToString();
  EXPECT_TRUE(proposal->stats.admitted);
  // The solve was side-effect-free.
  EXPECT_TRUE(speculative.admitted_queries().empty());
  EXPECT_EQ(speculative.deployment().num_placed_operators(), 0);

  Result<PlanningStats> committed = speculative.CommitProposal(*proposal);
  ASSERT_TRUE(committed.ok()) << committed.status().ToString();
  EXPECT_TRUE(committed->admitted);
  EXPECT_TRUE(speculative.deployment().Validate().ok());

  // Same state + same (node-bounded, deterministic) solve inline.
  SqprPlanner inline_planner(&s.cluster, &s.catalog, options);
  ASSERT_TRUE(inline_planner.SubmitQuery(q)->admitted);
  EXPECT_EQ(speculative.deployment().Fingerprint(),
            inline_planner.deployment().Fingerprint());

  // Re-committing an equivalent proposal is a free dedup, not a double
  // allocation.
  Result<PlanningStats> again = speculative.CommitProposal(*proposal);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->already_served);
  EXPECT_TRUE(speculative.deployment().Validate().ok());
}

TEST(SqprProposalTest, StaleProposalConflictsInsteadOfOvercommitting) {
  ProposalScenario s;
  const StreamId q01 = *s.catalog.CanonicalJoinStream({s.base[0], s.base[1]});
  const StreamId q23 = *s.catalog.CanonicalJoinStream({s.base[2], s.base[3]});
  SqprPlanner::Options options;
  options.timeout_ms = 60000;
  options.max_nodes = 200;
  SqprPlanner planner(&s.cluster, &s.catalog, options);
  ASSERT_TRUE(planner.WarmCatalog(q01).ok());
  ASSERT_TRUE(planner.WarmCatalog(q23).ok());

  // Both solved against the same empty snapshot; each fits alone.
  Result<AdmissionProposal> p1 = planner.ProposeAdmission(q01);
  Result<AdmissionProposal> p2 = planner.ProposeAdmission(q23);
  ASSERT_TRUE(p1.ok() && p2.ok());
  ASSERT_TRUE(p1->stats.admitted && p2->stats.admitted);

  // FIFO commit: the first lands, the second must detect that the CPU
  // it assumed is gone rather than over-commit host 0.
  ASSERT_TRUE(planner.CommitProposal(*p1).ok());
  Result<PlanningStats> second = planner.CommitProposal(*p2);
  ASSERT_FALSE(second.ok());
  EXPECT_TRUE(second.status().IsFailedPrecondition())
      << second.status().ToString();
  EXPECT_TRUE(planner.deployment().Validate().ok());
  ASSERT_EQ(planner.admitted_queries().size(), 1u);
  EXPECT_EQ(planner.admitted_queries()[0], q01);

  // The caller-side fallback — a fresh synchronous solve — correctly
  // rejects against the live state.
  Result<PlanningStats> resolve = planner.SubmitQuery(q23);
  ASSERT_TRUE(resolve.ok());
  EXPECT_FALSE(resolve->admitted);
  EXPECT_TRUE(planner.deployment().Validate().ok());
}

}  // namespace
}  // namespace sqpr
