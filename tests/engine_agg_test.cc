// Tests for the windowed aggregation and union operators.

#include <gtest/gtest.h>

#include <vector>

#include "engine/operators.h"

namespace sqpr {
namespace engine {
namespace {

Schema KeyValueSchema() {
  return Schema({{"key", ValueType::kInt64}, {"value", ValueType::kDouble}});
}

Tuple KV(int64_t ts, int64_t key, double value) {
  Tuple t;
  t.ts_ms = ts;
  t.values = {Value(key), Value(value)};
  return t;
}

struct Collector {
  std::vector<Tuple> tuples;
  EmitFn fn() {
    return [this](const Tuple& t) { tuples.push_back(t); };
  }
  int64_t WindowOf(size_t i) const {
    return std::get<int64_t>(tuples[i].values[0]);
  }
  int64_t KeyOf(size_t i) const {
    return std::get<int64_t>(tuples[i].values[1]);
  }
  double AggOf(size_t i) const {
    return std::get<double>(tuples[i].values[2]);
  }
};

TEST(TumblingAggregateTest, CountsPerKeyPerWindow) {
  TumblingAggregate agg(KeyValueSchema(), 0, -1, AggFn::kCount, 100);
  Collector out;
  // Window [0,100): key 1 twice, key 2 once. Window [100,200): key 1 once.
  ASSERT_TRUE(agg.Push(0, KV(10, 1, 0), out.fn()).ok());
  ASSERT_TRUE(agg.Push(0, KV(20, 2, 0), out.fn()).ok());
  ASSERT_TRUE(agg.Push(0, KV(90, 1, 0), out.fn()).ok());
  EXPECT_TRUE(out.tuples.empty());  // window still open
  ASSERT_TRUE(agg.Push(0, KV(150, 1, 0), out.fn()).ok());  // closes [0,100)
  ASSERT_EQ(out.tuples.size(), 2u);
  EXPECT_EQ(out.WindowOf(0), 0);
  EXPECT_EQ(out.KeyOf(0), 1);
  EXPECT_DOUBLE_EQ(out.AggOf(0), 2.0);
  EXPECT_EQ(out.KeyOf(1), 2);
  EXPECT_DOUBLE_EQ(out.AggOf(1), 1.0);
  ASSERT_TRUE(agg.Flush(out.fn()).ok());
  ASSERT_EQ(out.tuples.size(), 3u);
  EXPECT_EQ(out.WindowOf(2), 100);
  EXPECT_DOUBLE_EQ(out.AggOf(2), 1.0);
}

TEST(TumblingAggregateTest, SumAvgMinMax) {
  struct Case {
    AggFn fn;
    double expected;
  };
  const std::vector<Case> cases = {
      {AggFn::kSum, 9.0},
      {AggFn::kAvg, 3.0},
      {AggFn::kMin, 1.0},
      {AggFn::kMax, 5.0},
  };
  for (const Case& c : cases) {
    TumblingAggregate agg(KeyValueSchema(), 0, 1, c.fn, 1000);
    Collector out;
    ASSERT_TRUE(agg.Push(0, KV(1, 7, 3.0), out.fn()).ok());
    ASSERT_TRUE(agg.Push(0, KV(2, 7, 1.0), out.fn()).ok());
    ASSERT_TRUE(agg.Push(0, KV(3, 7, 5.0), out.fn()).ok());
    ASSERT_TRUE(agg.Flush(out.fn()).ok());
    ASSERT_EQ(out.tuples.size(), 1u) << AggFnName(c.fn);
    EXPECT_DOUBLE_EQ(out.AggOf(0), c.expected) << AggFnName(c.fn);
  }
}

TEST(TumblingAggregateTest, IntegerValueColumnsAreAccepted) {
  Schema schema({{"key", ValueType::kInt64}, {"v", ValueType::kInt64}});
  TumblingAggregate agg(schema, 0, 1, AggFn::kSum, 50);
  Collector out;
  Tuple t;
  t.ts_ms = 5;
  t.values = {Value(int64_t{1}), Value(int64_t{4})};
  ASSERT_TRUE(agg.Push(0, t, out.fn()).ok());
  ASSERT_TRUE(agg.Flush(out.fn()).ok());
  ASSERT_EQ(out.tuples.size(), 1u);
  EXPECT_DOUBLE_EQ(out.AggOf(0), 4.0);
}

TEST(TumblingAggregateTest, LateTuplesAreDroppedAndCounted) {
  TumblingAggregate agg(KeyValueSchema(), 0, 1, AggFn::kSum, 100);
  Collector out;
  ASSERT_TRUE(agg.Push(0, KV(50, 1, 1.0), out.fn()).ok());
  ASSERT_TRUE(agg.Push(0, KV(250, 1, 1.0), out.fn()).ok());  // closes [0,100)
  EXPECT_EQ(agg.late_drops(), 0);
  ASSERT_TRUE(agg.Push(0, KV(60, 1, 99.0), out.fn()).ok());  // late
  EXPECT_EQ(agg.late_drops(), 1);
  ASSERT_TRUE(agg.Flush(out.fn()).ok());
  double total = 0.0;
  for (size_t i = 0; i < out.tuples.size(); ++i) total += out.AggOf(i);
  EXPECT_DOUBLE_EQ(total, 2.0);  // the late 99 never contributes
}

TEST(TumblingAggregateTest, MultipleWindowGapsFlushInOrder) {
  TumblingAggregate agg(KeyValueSchema(), 0, 1, AggFn::kCount, 10);
  Collector out;
  ASSERT_TRUE(agg.Push(0, KV(5, 1, 0), out.fn()).ok());
  ASSERT_TRUE(agg.Push(0, KV(25, 1, 0), out.fn()).ok());
  ASSERT_TRUE(agg.Push(0, KV(95, 1, 0), out.fn()).ok());
  ASSERT_TRUE(agg.Flush(out.fn()).ok());
  ASSERT_EQ(out.tuples.size(), 3u);
  EXPECT_LT(out.WindowOf(0), out.WindowOf(1));
  EXPECT_LT(out.WindowOf(1), out.WindowOf(2));
}

TEST(TumblingAggregateTest, RejectsNonNumericValueColumn) {
  Schema schema({{"key", ValueType::kInt64}, {"s", ValueType::kString}});
  TumblingAggregate agg(schema, 0, 1, AggFn::kSum, 100);
  Collector out;
  Tuple t;
  t.ts_ms = 1;
  t.values = {Value(int64_t{1}), Value(std::string("x"))};
  EXPECT_FALSE(agg.Push(0, t, out.fn()).ok());
}

TEST(UnionTest, MergesPortsAndCounts) {
  Union u(KeyValueSchema(), 3);
  Collector out;
  ASSERT_TRUE(u.Push(0, KV(1, 1, 1.0), out.fn()).ok());
  ASSERT_TRUE(u.Push(2, KV(2, 2, 2.0), out.fn()).ok());
  ASSERT_TRUE(u.Push(0, KV(3, 3, 3.0), out.fn()).ok());
  EXPECT_EQ(out.tuples.size(), 3u);
  EXPECT_EQ(u.port_count(0), 2);
  EXPECT_EQ(u.port_count(1), 0);
  EXPECT_EQ(u.port_count(2), 1);
  EXPECT_EQ(u.tuples_out(), 3);
  EXPECT_FALSE(u.Push(3, KV(4, 4, 4.0), out.fn()).ok());
}

}  // namespace
}  // namespace engine
}  // namespace sqpr
