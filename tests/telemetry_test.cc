// Tests for the closed-loop telemetry subsystem (§IV-C): ground-truth
// rate trajectories on the virtual clock and the periodic
// self-measurement engine (ClusterSim under true rates, seeded noise,
// EWMA smoothing). Everything here must be a pure function of
// (seed, trajectories, virtual time) — the service's determinism
// contract extends to closed-loop mode only because it is.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "model/catalog.h"
#include "model/cluster.h"
#include "monitor/resource_monitor.h"
#include "plan/deployment.h"
#include "planner/sqpr/sqpr_planner.h"
#include "telemetry/measurement_engine.h"
#include "telemetry/rate_model.h"

namespace sqpr {
namespace {

// ---- RateModel trajectories. ----

TEST(RateModelTest, ConstantAndStepTrajectories) {
  RateModel model(7);
  RateTrajectory constant;
  constant.kind = RateTrajectory::Kind::kConstant;
  constant.stream = 0;
  constant.base_rate_mbps = 12.5;
  ASSERT_TRUE(model.Install(constant, /*now_ms=*/100).ok());

  RateTrajectory step;
  step.kind = RateTrajectory::Kind::kStep;
  step.stream = 1;
  step.base_rate_mbps = 10.0;
  step.step_at_ms = 500;
  step.step_factor = 2.0;
  ASSERT_TRUE(model.Install(step, /*now_ms=*/100).ok());

  EXPECT_DOUBLE_EQ(*model.RateAt(0, 100), 12.5);
  EXPECT_DOUBLE_EQ(*model.RateAt(0, 100000), 12.5);
  // Step times are relative to the install time.
  EXPECT_DOUBLE_EQ(*model.RateAt(1, 100), 10.0);
  EXPECT_DOUBLE_EQ(*model.RateAt(1, 599), 10.0);
  EXPECT_DOUBLE_EQ(*model.RateAt(1, 600), 20.0);
  EXPECT_DOUBLE_EQ(*model.RateAt(1, 10000), 20.0);

  EXPECT_FALSE(model.RateAt(99, 100).ok());  // unmodelled stream
  EXPECT_TRUE(model.Models(0));
  EXPECT_FALSE(model.Models(99));
}

TEST(RateModelTest, PeriodicOscillatesAroundBaseWithinAmplitude) {
  RateModel model(7);
  RateTrajectory periodic;
  periodic.kind = RateTrajectory::Kind::kPeriodic;
  periodic.stream = 3;
  periodic.base_rate_mbps = 10.0;
  periodic.period_ms = 1000;
  periodic.amplitude = 0.5;
  periodic.phase = 0.0;
  ASSERT_TRUE(model.Install(periodic, /*now_ms=*/0).ok());

  double lo = 1e300, hi = -1e300;
  for (int64_t t = 0; t <= 2000; t += 50) {
    const double r = *model.RateAt(3, t);
    lo = std::min(lo, r);
    hi = std::max(hi, r);
    EXPECT_GE(r, 10.0 * (1.0 - 0.5) - 1e-9);
    EXPECT_LE(r, 10.0 * (1.0 + 0.5) + 1e-9);
  }
  // Two full periods sampled at 1/20 resolution must visit both halves.
  EXPECT_LT(lo, 10.0 * 0.7);
  EXPECT_GT(hi, 10.0 * 1.3);
  // Phase zero: the trajectory starts at the base rate.
  EXPECT_DOUBLE_EQ(*model.RateAt(3, 0), 10.0);
}

TEST(RateModelTest, RandomWalkIsSeededDeterministicAndBounded) {
  RateTrajectory walk;
  walk.kind = RateTrajectory::Kind::kRandomWalk;
  walk.stream = 5;
  walk.base_rate_mbps = 10.0;
  walk.period_ms = 100;
  walk.volatility = 0.3;
  walk.min_factor = 0.5;
  walk.max_factor = 2.0;

  RateModel a(42), b(42), c(43);
  ASSERT_TRUE(a.Install(walk, 0).ok());
  ASSERT_TRUE(b.Install(walk, 0).ok());
  ASSERT_TRUE(c.Install(walk, 0).ok());

  bool moved = false, differs = false;
  for (int64_t t = 0; t <= 10000; t += 100) {
    const double ra = *a.RateAt(5, t);
    // Same seed => identical walk, step for step.
    EXPECT_DOUBLE_EQ(ra, *b.RateAt(5, t)) << "t=" << t;
    differs |= std::abs(ra - *c.RateAt(5, t)) > 1e-12;
    moved |= std::abs(ra - 10.0) > 1e-12;
    // Clamped to [min_factor, max_factor] * base.
    EXPECT_GE(ra, 10.0 * 0.5 - 1e-9);
    EXPECT_LE(ra, 10.0 * 2.0 + 1e-9);
  }
  EXPECT_TRUE(moved) << "walk never left the base rate";
  EXPECT_TRUE(differs) << "different seeds produced identical walks";

  // The walk is a function of virtual time, not of call count:
  // re-querying the same timestamp returns the same value.
  const double at_5s = *a.RateAt(5, 5000);
  EXPECT_DOUBLE_EQ(*a.RateAt(5, 5000), at_5s);
}

TEST(RateModelTest, InstallValidatesAndReplaces) {
  RateModel model(1);
  RateTrajectory bad;
  bad.stream = 2;
  bad.base_rate_mbps = 0.0;  // must be positive
  EXPECT_FALSE(model.Install(bad, 0).ok());
  bad.stream = kInvalidStream;
  bad.base_rate_mbps = 5.0;
  EXPECT_FALSE(model.Install(bad, 0).ok());
  EXPECT_TRUE(model.empty());

  RateTrajectory first;
  first.stream = 2;
  first.base_rate_mbps = 5.0;
  ASSERT_TRUE(model.Install(first, 0).ok());
  RateTrajectory replacement = first;
  replacement.base_rate_mbps = 8.0;
  ASSERT_TRUE(model.Install(replacement, 100).ok());
  EXPECT_EQ(model.size(), 1u);
  EXPECT_DOUBLE_EQ(*model.RateAt(2, 200), 8.0);

  // Out-of-range knobs are clamped, not rejected: a periodic amplitude
  // >= 1 would drive the true rate negative, which could never be
  // installed as a catalog rate.
  RateTrajectory loud;
  loud.kind = RateTrajectory::Kind::kPeriodic;
  loud.stream = 3;
  loud.base_rate_mbps = 10.0;
  loud.period_ms = 1000;
  loud.amplitude = 5.0;
  loud.phase = -1.5707963267948966;  // sin = -1: the trough
  ASSERT_TRUE(model.Install(loud, 0).ok());
  EXPECT_GT(*model.RateAt(3, 0), 0.0);
}

// ---- MeasurementEngine. ----

/// A deployed two-way join to measure: a ⋈ b placed on host 0, served
/// from host 0.
struct MeasuredScenario {
  MeasuredScenario()
      : cluster(2, HostSpec{1.0, 100.0, 100.0, ""}, 1000.0),
        catalog(CostModel{}) {
    a = catalog.AddBaseStream(0, 10.0, "a");
    b = catalog.AddBaseStream(0, 10.0, "b");
    planner = std::make_unique<SqprPlanner>(&cluster, &catalog,
                                            SqprPlanner::Options{});
    ab = *catalog.CanonicalJoinStream({a, b});
    EXPECT_TRUE(planner->SubmitQuery(ab)->admitted);
  }

  Cluster cluster;
  Catalog catalog;
  StreamId a, b, ab;
  std::unique_ptr<SqprPlanner> planner;
};

TelemetryOptions CheapTelemetry(uint64_t seed) {
  TelemetryOptions options;
  options.seed = seed;
  options.sim.rate_scale = 0.05;
  options.sim.duration_ms = 1000;
  return options;
}

TEST(MeasurementEngineTest, ObservesGroundTruthRatesAndCpuDrift) {
  MeasuredScenario s;

  // Baseline: no trajectories — everything measures on-estimate.
  MeasurementEngine baseline(&s.catalog, CheapTelemetry(11));
  Result<Measurement> on_estimate =
      baseline.Measure(s.planner->deployment(), 1000);
  ASSERT_TRUE(on_estimate.ok()) << on_estimate.status().ToString();
  ASSERT_EQ(on_estimate->cpu_utilization.size(), 2u);

  // Ground truth: stream a actually runs at twice its estimate.
  MeasurementEngine drifted(&s.catalog, CheapTelemetry(11));
  RateTrajectory twice;
  twice.stream = s.a;
  twice.base_rate_mbps = 20.0;
  ASSERT_TRUE(drifted.rate_model().Install(twice, 0).ok());
  Result<Measurement> m = drifted.Measure(s.planner->deployment(), 1000);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_EQ(drifted.measurements(), 1);

  // The realised rate of a tracks the truth (sim quantisation leaves a
  // few percent), not the catalog estimate of 10.
  ASSERT_EQ(m->measured_base_rates.count(s.a), 1u);
  EXPECT_NEAR(m->measured_base_rates.at(s.a), 20.0, 2.0);
  // More input tuples at unchanged per-tuple cost: host 0 works harder
  // than it did on estimate.
  EXPECT_GT(m->cpu_utilization[0], on_estimate->cpu_utilization[0] * 1.3);
}

TEST(MeasurementEngineTest, NoiseIsSeededAndBounded) {
  MeasuredScenario s;

  TelemetryOptions noisy = CheapTelemetry(5);
  noisy.noise = 0.2;
  MeasurementEngine e1(&s.catalog, noisy);
  MeasurementEngine e2(&s.catalog, noisy);
  TelemetryOptions exact = CheapTelemetry(5);
  MeasurementEngine e0(&s.catalog, exact);

  Result<Measurement> m1 = e1.Measure(s.planner->deployment(), 500);
  Result<Measurement> m2 = e2.Measure(s.planner->deployment(), 500);
  Result<Measurement> m0 = e0.Measure(s.planner->deployment(), 500);
  ASSERT_TRUE(m1.ok() && m2.ok() && m0.ok());

  // Same seed => bit-identical noisy measurements (the determinism the
  // closed-loop replay contract rests on).
  EXPECT_EQ(m1->measured_base_rates, m2->measured_base_rates);
  EXPECT_EQ(m1->cpu_utilization, m2->cpu_utilization);

  // Noise stays within the configured relative band of the exact run.
  for (const auto& [stream, rate] : m0->measured_base_rates) {
    ASSERT_EQ(m1->measured_base_rates.count(stream), 1u);
    EXPECT_NEAR(m1->measured_base_rates.at(stream), rate,
                0.2 * rate + 1e-9);
  }
}

TEST(MeasurementEngineTest, EwmaSmoothsSuccessiveMeasurements) {
  MeasuredScenario s;

  TelemetryOptions smooth = CheapTelemetry(3);
  smooth.ewma_alpha = 0.5;
  MeasurementEngine engine(&s.catalog, smooth);

  RateTrajectory flat;
  flat.stream = s.a;
  flat.base_rate_mbps = 10.0;  // on estimate at first
  ASSERT_TRUE(engine.rate_model().Install(flat, 0).ok());
  Result<Measurement> first = engine.Measure(s.planner->deployment(), 1000);
  ASSERT_TRUE(first.ok());
  const double first_a = first->measured_base_rates.at(s.a);

  // The truth jumps to 30; with alpha = 0.5 the smoothed measurement
  // lands halfway between the previous state and the new sample.
  RateTrajectory jump;
  jump.stream = s.a;
  jump.base_rate_mbps = 30.0;
  ASSERT_TRUE(engine.rate_model().Install(jump, 1000).ok());
  Result<Measurement> second = engine.Measure(s.planner->deployment(), 2000);
  ASSERT_TRUE(second.ok());
  const double second_a = second->measured_base_rates.at(s.a);
  EXPECT_GT(second_a, first_a + 5.0);   // moved toward the new truth...
  EXPECT_LT(second_a, 30.0 - 5.0);      // ...but not all the way
}

// ---- Analytic measurement mode (the §IV-C hot-path optimisation). ----

/// The tentpole equivalence contract: at noise = 0, the analytic mode's
/// measurements must lead the §IV-B monitor to the SAME drift decisions
/// the engine mode's do, as long as the trajectories keep a clear
/// margin from the drift threshold (the engine realises rates in whole
/// tuples, so a few percent of quantisation noise is inherent to it).
TEST(MeasurementEngineTest, AnalyticMatchesEngineDriftDecisionsAtZeroNoise) {
  MeasuredScenario s;

  TelemetryOptions engine_opts = CheapTelemetry(17);
  TelemetryOptions analytic_opts = engine_opts;
  analytic_opts.mode = MeasureMode::kAnalytic;
  MeasurementEngine engine(&s.catalog, engine_opts);
  MeasurementEngine analytic(&s.catalog, analytic_opts);

  // Trajectories with fat margins around the 20% drift threshold:
  // a steps to 1.8x its estimate after 1.5 s; b runs at half estimate
  // throughout. Install identically into both ground-truth models.
  RateTrajectory step;
  step.kind = RateTrajectory::Kind::kStep;
  step.stream = s.a;
  step.base_rate_mbps = 10.0;
  step.step_at_ms = 1500;
  step.step_factor = 1.8;
  RateTrajectory half;
  half.stream = s.b;
  half.base_rate_mbps = 5.0;
  for (MeasurementEngine* e : {&engine, &analytic}) {
    ASSERT_TRUE(e->rate_model().Install(step, 0).ok());
    ASSERT_TRUE(e->rate_model().Install(half, 0).ok());
  }

  const ResourceMonitor monitor(&s.catalog, DriftOptions{});
  for (int64_t t : {500, 1000, 2000, 3000}) {
    Result<Measurement> me = engine.Measure(s.planner->deployment(), t);
    Result<Measurement> ma = analytic.Measure(s.planner->deployment(), t);
    ASSERT_TRUE(me.ok() && ma.ok()) << "t=" << t;

    const DriftReport de =
        monitor.Analyze(me->measured_base_rates, me->cpu_utilization,
                        s.planner->admitted_queries(),
                        &s.planner->deployment());
    const DriftReport da =
        monitor.Analyze(ma->measured_base_rates, ma->cpu_utilization,
                        s.planner->admitted_queries(),
                        &s.planner->deployment());
    EXPECT_EQ(de.drifted_base_streams, da.drifted_base_streams) << "t=" << t;
    EXPECT_EQ(de.overloaded_hosts, da.overloaded_hosts) << "t=" << t;
    EXPECT_EQ(de.queries_to_replan, da.queries_to_replan) << "t=" << t;
    // Sanity on the expected decisions themselves: b always drifted
    // (half rate), a joins it after the step.
    EXPECT_EQ(da.drifted_base_streams.empty(), false) << "t=" << t;
    EXPECT_EQ(std::count(da.drifted_base_streams.begin(),
                         da.drifted_base_streams.end(), s.a) == 1,
              t >= 1600)
        << "t=" << t;
  }
}

TEST(MeasurementEngineTest, AnalyticCpuIsCommittedCostScaledByTruthRatio) {
  MeasuredScenario s;

  TelemetryOptions opts = CheapTelemetry(19);
  opts.mode = MeasureMode::kAnalytic;
  MeasurementEngine analytic(&s.catalog, opts);

  // Truth: a runs at 2x estimate, b on estimate. The join's input rates
  // sum to 30 Mbps true vs 20 estimated, so the host's true CPU is the
  // committed ledger scaled by 1.5 — no simulation involved.
  RateTrajectory twice;
  twice.stream = s.a;
  twice.base_rate_mbps = 20.0;
  ASSERT_TRUE(analytic.rate_model().Install(twice, 0).ok());

  Result<Measurement> m = analytic.Measure(s.planner->deployment(), 1000);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  ASSERT_EQ(m->cpu_utilization.size(), 2u);
  const double committed_cpu = s.planner->deployment().CpuUsed(0);
  EXPECT_NEAR(m->cpu_utilization[0], committed_cpu * 1.5 / 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(m->cpu_utilization[1], 0.0);
  // Rates report the model truth exactly — no tuple quantisation.
  EXPECT_DOUBLE_EQ(m->measured_base_rates.at(s.a), 20.0);
  // The raw simulation report stays empty: no ClusterSim ran.
  EXPECT_TRUE(m->raw.measured_rate_mbps.empty());
  EXPECT_TRUE(m->raw.cpu_utilization.empty());
  EXPECT_EQ(analytic.measurements(), 1);
}

TEST(MeasurementEngineTest, AnalyticNoiseAndEwmaAreSeededLikeEngine) {
  MeasuredScenario s;

  TelemetryOptions noisy = CheapTelemetry(23);
  noisy.mode = MeasureMode::kAnalytic;
  noisy.noise = 0.2;
  noisy.ewma_alpha = 0.5;
  MeasurementEngine e1(&s.catalog, noisy);
  MeasurementEngine e2(&s.catalog, noisy);

  RateTrajectory twice;
  twice.stream = s.a;
  twice.base_rate_mbps = 20.0;
  ASSERT_TRUE(e1.rate_model().Install(twice, 0).ok());
  ASSERT_TRUE(e2.rate_model().Install(twice, 0).ok());

  for (int64_t t : {500, 1000, 1500}) {
    Result<Measurement> m1 = e1.Measure(s.planner->deployment(), t);
    Result<Measurement> m2 = e2.Measure(s.planner->deployment(), t);
    ASSERT_TRUE(m1.ok() && m2.ok());
    // Same seed => bit-identical noisy, smoothed analytic measurements.
    EXPECT_EQ(m1->measured_base_rates, m2->measured_base_rates);
    EXPECT_EQ(m1->cpu_utilization, m2->cpu_utilization);
    // Noise stays within the configured relative band of the truth.
    EXPECT_NEAR(m1->measured_base_rates.at(s.a), 20.0, 0.2 * 20.0 + 1e-9);
  }
}

TEST(MeasurementEngineTest, EmptyDeploymentMeasuresModelTruthOnly) {
  Cluster cluster(2, HostSpec{1.0, 100.0, 100.0, ""}, 1000.0);
  Catalog catalog(CostModel{});
  const StreamId a = catalog.AddBaseStream(0, 10.0, "a");
  Deployment empty(&cluster, &catalog);

  MeasurementEngine engine(&catalog, CheapTelemetry(9));
  RateTrajectory half;
  half.stream = a;
  half.base_rate_mbps = 5.0;
  ASSERT_TRUE(engine.rate_model().Install(half, 0).ok());

  Result<Measurement> m = engine.Measure(empty, 100);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  // Nothing deployed: CPU is idle everywhere, but the source host still
  // knows its injection rate — the model truth is reported.
  ASSERT_EQ(m->cpu_utilization.size(), 2u);
  EXPECT_DOUBLE_EQ(m->cpu_utilization[0], 0.0);
  EXPECT_DOUBLE_EQ(m->cpu_utilization[1], 0.0);
  ASSERT_EQ(m->measured_base_rates.count(a), 1u);
  EXPECT_DOUBLE_EQ(m->measured_base_rates.at(a), 5.0);
}

}  // namespace
}  // namespace sqpr
