#include <gtest/gtest.h>

#include "milp/solver.h"
#include "model/catalog.h"
#include "model/cluster.h"
#include "plan/deployment.h"
#include "planner/sqpr/model_builder.h"

namespace sqpr {
namespace {

/// Two hosts, base streams a@0 and b@1, canonical join ab.
struct MipFixture {
  MipFixture()
      : catalog(CostModel{}),
        cluster(2, HostSpec{1.0, 100.0, 100.0, ""}, 500.0) {
    a = catalog.AddBaseStream(0, 10.0, "a");
    b = catalog.AddBaseStream(1, 10.0, "b");
    ab = *catalog.CanonicalJoinStream({a, b});
    closure = *catalog.JoinClosure(ab);
  }

  SqprMip Build(const Deployment& dep, bool must_serve = false,
                SqprModelOptions options = {}) {
    return SqprMip(dep, closure.streams, closure.operators,
                   {{ab, must_serve}}, options);
  }

  Catalog catalog;
  Cluster cluster;
  StreamId a, b, ab;
  Closure closure;
};

TEST(SqprMipTest, VariableLayoutComplete) {
  MipFixture f;
  Deployment dep(&f.cluster, &f.catalog);
  SqprMip mip = f.Build(dep);
  // y for every (host, stream), x for every ordered pair and stream,
  // z for the single join operator on each host, d for the demand.
  for (HostId h = 0; h < 2; ++h) {
    for (StreamId s : {f.a, f.b, f.ab}) {
      EXPECT_GE(mip.VarY(h, s), 0);
    }
    EXPECT_GE(mip.VarD(h, f.ab), 0);
  }
  EXPECT_GE(mip.VarX(0, 1, f.a), 0);
  EXPECT_GE(mip.VarX(1, 0, f.ab), 0);
  EXPECT_EQ(mip.VarX(0, 0, f.a), -1);  // self-flows never exist
  EXPECT_EQ(mip.VarD(0, f.a), -1);     // a is not demanded
  // Streams outside the relevant set have no variables.
  EXPECT_EQ(mip.VarY(0, 999), -1);
}

TEST(SqprMipTest, StreamTooFatForLinkPruned) {
  MipFixture f;
  f.cluster.SetLink(0, 1, 5.0);  // below the 10 Mbps base rate
  Deployment dep(&f.cluster, &f.catalog);
  SqprMip mip = f.Build(dep);
  EXPECT_EQ(mip.VarX(0, 1, f.a), -1);        // cannot ever carry a
  EXPECT_GE(mip.VarX(0, 1, f.ab), 0);        // composite is thin enough
  EXPECT_GE(mip.VarX(1, 0, f.a), 0);         // reverse link unaffected
}

TEST(SqprMipTest, EmptyDeploymentWarmStartFeasible) {
  MipFixture f;
  Deployment dep(&f.cluster, &f.catalog);
  SqprMip mip = f.Build(dep);
  const std::vector<double> warm = mip.WarmStart();
  EXPECT_TRUE(mip.mip().lp.CheckFeasible(warm, 1e-6).ok());
  EXPECT_FALSE(mip.Serves(warm, f.ab));
}

TEST(SqprMipTest, CommittedStateWarmStartFeasible) {
  MipFixture f;
  Deployment dep(&f.cluster, &f.catalog);
  const OperatorId join_op = f.closure.operators.front();
  ASSERT_TRUE(dep.AddFlow(1, 0, f.b).ok());
  ASSERT_TRUE(dep.PlaceOperator(0, join_op).ok());
  ASSERT_TRUE(dep.SetServing(f.ab, 0).ok());
  ASSERT_TRUE(dep.Validate().ok());

  SqprMip mip = f.Build(dep, /*must_serve=*/true);
  const std::vector<double> warm = mip.WarmStart();
  const Status feas = mip.mip().lp.CheckFeasible(warm, 1e-6);
  EXPECT_TRUE(feas.ok()) << feas.ToString();
  EXPECT_TRUE(mip.Serves(warm, f.ab));
}

TEST(SqprMipTest, PotentialsWarmStartFeasible) {
  MipFixture f;
  Deployment dep(&f.cluster, &f.catalog);
  const OperatorId join_op = f.closure.operators.front();
  ASSERT_TRUE(dep.AddFlow(1, 0, f.b).ok());
  ASSERT_TRUE(dep.PlaceOperator(0, join_op).ok());
  ASSERT_TRUE(dep.SetServing(f.ab, 0).ok());

  SqprModelOptions options;
  options.acyclicity = AcyclicityMode::kPotentials;
  SqprMip mip = f.Build(dep, /*must_serve=*/true, options);
  const std::vector<double> warm = mip.WarmStart();
  const Status feas = mip.mip().lp.CheckFeasible(warm, 1e-6);
  EXPECT_TRUE(feas.ok()) << feas.ToString();
}

TEST(SqprMipTest, SolveAndCommitRoundTrip) {
  MipFixture f;
  Deployment dep(&f.cluster, &f.catalog);
  SqprMip mip = f.Build(dep);
  SqprMip::CycleCutHandler handler(&mip);
  milp::SolverOptions options;
  options.lazy = &handler;
  options.gap_abs = 0.01;
  milp::Solver solver;
  auto result = solver.Solve(mip.mip(), options);
  ASSERT_TRUE(result.has_solution());
  ASSERT_TRUE(mip.Serves(result.x, f.ab));

  Deployment target = dep;
  ASSERT_TRUE(mip.Commit(result.x, &target).ok());
  EXPECT_TRUE(target.Validate().ok());
  EXPECT_NE(target.ServingHost(f.ab), kInvalidHost);
  EXPECT_GT(target.num_placed_operators(), 0);
}

TEST(SqprMipTest, MustServeKeepsAdmittedQuery) {
  // Commit a serving state, rebuild with (IV.9): any solution must still
  // serve ab; the solver cannot drop it even though resources are tight.
  MipFixture f;
  Deployment dep(&f.cluster, &f.catalog);
  const OperatorId join_op = f.closure.operators.front();
  ASSERT_TRUE(dep.AddFlow(1, 0, f.b).ok());
  ASSERT_TRUE(dep.PlaceOperator(0, join_op).ok());
  ASSERT_TRUE(dep.SetServing(f.ab, 0).ok());

  SqprMip mip = f.Build(dep, /*must_serve=*/true);
  SqprMip::CycleCutHandler handler(&mip);
  milp::SolverOptions options;
  options.lazy = &handler;
  milp::Solver solver;
  auto result = solver.Solve(mip.mip(), options);
  ASSERT_TRUE(result.has_solution());
  EXPECT_TRUE(mip.Serves(result.x, f.ab));
}

TEST(SqprMipTest, CpuResidualBlocksSecondOperator) {
  // Host CPU only fits one join; an irrelevant placed operator consumes
  // it, so the relevant model must place the join on the other host.
  MipFixture f;
  // An unrelated stream pair c,d whose join occupies host 0.
  const StreamId c = f.catalog.AddBaseStream(0, 10.0, "c");
  const StreamId d = f.catalog.AddBaseStream(0, 10.0, "d");
  const OperatorId cd_op = *f.catalog.JoinOperator(c, d);
  const double gamma = f.catalog.op(cd_op).cpu_cost;

  Cluster tight(2, HostSpec{gamma * 1.5, 100.0, 100.0, ""}, 500.0);
  Deployment dep(&tight, &f.catalog);
  ASSERT_TRUE(dep.PlaceOperator(0, cd_op).ok());
  const StreamId cd = f.catalog.op(cd_op).output;
  ASSERT_TRUE(dep.SetServing(cd, 0).ok());
  ASSERT_TRUE(dep.Validate().ok());

  SqprMip mip(dep, f.closure.streams, f.closure.operators,
              {{f.ab, false}}, {});
  SqprMip::CycleCutHandler handler(&mip);
  milp::SolverOptions options;
  options.lazy = &handler;
  milp::Solver solver;
  auto result = solver.Solve(mip.mip(), options);
  ASSERT_TRUE(result.has_solution());
  ASSERT_TRUE(mip.Serves(result.x, f.ab));
  Deployment target = dep;
  ASSERT_TRUE(mip.Commit(result.x, &target).ok());
  EXPECT_TRUE(target.Validate().ok());
  // The new join cannot share host 0 (CPU residual 0.5 gamma).
  for (OperatorId o : f.closure.operators) {
    EXPECT_FALSE(target.RunsOperator(0, o));
  }
}

TEST(SqprMipTest, AvailabilityPinForFixedConsumer) {
  // An operator OUTSIDE the relevant set consumes base stream a at host 1
  // (via a flow); replanning a's flows must keep a available at host 1.
  MipFixture f;
  const StreamId e = f.catalog.AddBaseStream(1, 10.0, "e");
  const OperatorId ae_op = *f.catalog.JoinOperator(f.a, e);
  Deployment dep(&f.cluster, &f.catalog);
  ASSERT_TRUE(dep.AddFlow(0, 1, f.a).ok());
  ASSERT_TRUE(dep.PlaceOperator(1, ae_op).ok());
  ASSERT_TRUE(dep.SetServing(f.catalog.op(ae_op).output, 1).ok());
  ASSERT_TRUE(dep.Validate().ok());

  // Relevant set = closure(ab); ae_op is NOT in it but consumes a.
  SqprMip mip(dep, f.closure.streams, f.closure.operators, {{f.ab, false}},
              {});
  const int y_a_at_1 = mip.VarY(1, f.a);
  ASSERT_GE(y_a_at_1, 0);
  EXPECT_DOUBLE_EQ(mip.mip().lp.variable_lb(y_a_at_1), 1.0);  // pinned

  SqprMip::CycleCutHandler handler(&mip);
  milp::SolverOptions options;
  options.lazy = &handler;
  milp::Solver solver;
  auto result = solver.Solve(mip.mip(), options);
  ASSERT_TRUE(result.has_solution());
  Deployment target = dep;
  ASSERT_TRUE(mip.Commit(result.x, &target).ok());
  // The fixed consumer must still be supported after the commit.
  EXPECT_TRUE(target.Validate().ok());
}

TEST(SqprMipTest, NoRelayModeForbidsForwardingReceivedStreams) {
  MipFixture f;
  SqprModelOptions options;
  options.enable_relay = false;
  Deployment dep(&f.cluster, &f.catalog);
  SqprMip mip = f.Build(dep, false, options);
  SqprMip::CycleCutHandler handler(&mip);
  milp::SolverOptions solver_options;
  solver_options.lazy = &handler;
  milp::Solver solver;
  auto result = solver.Solve(mip.mip(), solver_options);
  ASSERT_TRUE(result.has_solution());
  ASSERT_TRUE(mip.Serves(result.x, f.ab));
  // No host forwards a base stream it does not source.
  EXPECT_LT(result.x[mip.VarX(1, 0, f.a)], 0.5);  // host 1 doesn't have a
  EXPECT_LT(result.x[mip.VarX(0, 1, f.b)], 0.5);  // host 0 doesn't have b
}

TEST(SqprMipTest, InfeasibleWhenNothingFits) {
  MipFixture f;
  Cluster tiny(2, HostSpec{1e-9, 100.0, 100.0, ""}, 500.0);
  Deployment dep(&tiny, &f.catalog);
  SqprMip mip(dep, f.closure.streams, f.closure.operators, {{f.ab, false}},
              {});
  SqprMip::CycleCutHandler handler(&mip);
  milp::SolverOptions options;
  options.lazy = &handler;
  milp::Solver solver;
  auto result = solver.Solve(mip.mip(), options);
  // The model is feasible (rejecting the query is allowed) but cannot
  // serve the query.
  ASSERT_TRUE(result.has_solution());
  EXPECT_FALSE(mip.Serves(result.x, f.ab));
}

TEST(SqprMipTest, ObjectiveWeightsRespectAdmissionDominance) {
  MipFixture f;
  Deployment dep(&f.cluster, &f.catalog);
  SqprMip mip = f.Build(dep);
  // The d variables' objective (λ1) must exceed the total magnitude of
  // every resource term in any 0/1 assignment; sample the coefficients.
  double lambda1 = 0.0;
  double other_sum = 0.0;
  const lp::Model& lp = mip.mip().lp;
  for (int v = 0; v < lp.num_variables(); ++v) {
    const double obj = lp.objective(v);
    if (obj > 0) {
      lambda1 = std::max(lambda1, obj);
    } else {
      other_sum += -obj;  // worst case: every cost variable at 1
    }
  }
  EXPECT_GT(lambda1, other_sum);
}

}  // namespace
}  // namespace sqpr
