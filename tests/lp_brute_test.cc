// Exactness property: on small random LPs the simplex optimum must
// equal the best vertex found by brute-force basis enumeration. This is
// the strongest correctness check we can run without an external
// solver — every basic feasible solution of the slack-form system is
// enumerated and evaluated.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "lp/model.h"
#include "lp/simplex.h"

namespace sqpr {
namespace lp {
namespace {

/// Solves the dense m x m system B y = rhs by Gaussian elimination with
/// partial pivoting. Returns false when singular.
bool DenseSolve(std::vector<double> B, int m, std::vector<double> rhs,
                std::vector<double>* y) {
  std::vector<int> perm(m);
  for (int i = 0; i < m; ++i) perm[i] = i;
  for (int col = 0; col < m; ++col) {
    int pivot = -1;
    double best = 1e-9;
    for (int r = col; r < m; ++r) {
      if (std::abs(B[r * m + col]) > best) {
        best = std::abs(B[r * m + col]);
        pivot = r;
      }
    }
    if (pivot < 0) return false;
    for (int c = 0; c < m; ++c) std::swap(B[pivot * m + c], B[col * m + c]);
    std::swap(rhs[pivot], rhs[col]);
    for (int r = 0; r < m; ++r) {
      if (r == col) continue;
      const double f = B[r * m + col] / B[col * m + col];
      if (f == 0.0) continue;
      for (int c = col; c < m; ++c) B[r * m + c] -= f * B[col * m + c];
      rhs[r] -= f * rhs[col];
    }
  }
  y->assign(m, 0.0);
  for (int i = 0; i < m; ++i) (*y)[i] = rhs[i] / B[i * m + i];
  return true;
}

/// Brute-force LP optimum over all slack-form bases: columns are the n
/// structural variables plus one slack per row (coefficient -1, bounds =
/// row bounds), equations A_full v = 0. For every m-subset of columns
/// chosen basic and every lower/upper assignment of the nonbasic
/// columns, solve for the basic values and keep the best feasible point.
/// Exponential — only usable for tiny models.
bool BruteForceOptimum(const Model& model, double* best_obj) {
  const int n = model.num_variables();
  const int m = model.num_rows();
  const int total = n + m;

  // Dense column matrix and bounds of the slack form.
  std::vector<double> cols(static_cast<size_t>(total) * m, 0.0);
  std::vector<double> lb(total), ub(total), obj(total, 0.0);
  for (int v = 0; v < n; ++v) {
    lb[v] = model.variable_lb(v);
    ub[v] = model.variable_ub(v);
    obj[v] = model.objective(v);
  }
  for (int r = 0; r < m; ++r) {
    for (const auto& [v, coef] : model.row_terms(r)) {
      cols[static_cast<size_t>(v) * m + r] += coef;
    }
    cols[static_cast<size_t>(n + r) * m + r] = -1.0;
    lb[n + r] = model.row_lb(r);
    ub[n + r] = model.row_ub(r);
  }

  const double sign = model.sense() == Sense::kMaximize ? 1.0 : -1.0;
  bool found = false;
  double best = -kInf;

  // Enumerate basic column subsets via bitmask.
  for (uint32_t mask = 0; mask < (1u << total); ++mask) {
    if (__builtin_popcount(mask) != m) continue;
    std::vector<int> basic, nonbasic;
    for (int c = 0; c < total; ++c) {
      if (mask & (1u << c)) {
        basic.push_back(c);
      } else {
        nonbasic.push_back(c);
      }
    }
    // Every nonbasic at lower or upper bound: 2^(total-m) assignments,
    // but skip sides at infinity.
    const int k = total - m;
    for (uint32_t side = 0; side < (1u << k); ++side) {
      std::vector<double> x(total, 0.0);
      bool ok = true;
      for (int j = 0; j < k && ok; ++j) {
        const int c = nonbasic[j];
        const double v = (side & (1u << j)) ? ub[c] : lb[c];
        if (!std::isfinite(v)) {
          ok = false;
        } else {
          x[c] = v;
        }
      }
      if (!ok) continue;
      // Solve B x_B = -N x_N.
      std::vector<double> B(static_cast<size_t>(m) * m);
      for (int j = 0; j < m; ++j) {
        for (int r = 0; r < m; ++r) {
          B[static_cast<size_t>(r) * m + j] =
              cols[static_cast<size_t>(basic[j]) * m + r];
        }
      }
      std::vector<double> rhs(m, 0.0);
      for (int j = 0; j < k; ++j) {
        const int c = nonbasic[j];
        for (int r = 0; r < m; ++r) {
          rhs[r] -= cols[static_cast<size_t>(c) * m + r] * x[c];
        }
      }
      std::vector<double> xb;
      if (!DenseSolve(B, m, rhs, &xb)) continue;
      for (int j = 0; j < m && ok; ++j) {
        const int c = basic[j];
        if (xb[j] < lb[c] - 1e-7 || xb[j] > ub[c] + 1e-7) ok = false;
        x[c] = xb[j];
      }
      if (!ok) continue;
      double value = 0.0;
      for (int v = 0; v < n; ++v) value += obj[v] * x[v];
      if (sign * value > sign * best || !found) {
        best = value;
        found = true;
      }
    }
  }
  *best_obj = best;
  return found;
}

Model RandomSmallLp(uint64_t seed) {
  Rng rng(seed);
  Model m(rng.NextBool(0.5) ? Sense::kMaximize : Sense::kMinimize);
  const int n = 2 + static_cast<int>(rng.NextUint64() % 3);  // 2..4 vars
  const int rows = 1 + static_cast<int>(rng.NextUint64() % 3);
  for (int v = 0; v < n; ++v) {
    const double lo = rng.NextBool(0.3) ? -2.0 : 0.0;
    m.AddVariable(lo, lo + 1.0 + 4.0 * rng.NextDouble(),
                  std::round(10.0 * (rng.NextDouble() - 0.4)) / 2.0);
  }
  for (int r = 0; r < rows; ++r) {
    std::vector<std::pair<int, double>> terms;
    for (int v = 0; v < n; ++v) {
      if (rng.NextBool(0.7)) {
        terms.emplace_back(v, std::round(6.0 * (rng.NextDouble() - 0.4)));
      }
    }
    if (terms.empty()) terms.emplace_back(0, 1.0);
    const double b = std::round(8.0 * rng.NextDouble());
    if (rng.NextBool(0.5)) {
      m.AddRow(-kInf, b, std::move(terms));
    } else {
      m.AddRow(-b, b + 2.0, std::move(terms));
    }
  }
  return m;
}

class SimplexVsBruteForce : public ::testing::TestWithParam<int> {};

TEST_P(SimplexVsBruteForce, OptimaAgree) {
  const Model m = RandomSmallLp(0xb407e + GetParam());
  SimplexSolver solver;
  const SimplexResult result = solver.Solve(m);

  double brute = 0.0;
  const bool brute_found = BruteForceOptimum(m, &brute);

  if (result.status == SolveStatus::kOptimal) {
    ASSERT_TRUE(brute_found) << "simplex found an optimum brute force missed";
    // The optimum lies at a vertex, which the enumeration visits.
    EXPECT_NEAR(result.objective, brute, 1e-5) << "instance " << GetParam();
    EXPECT_TRUE(m.CheckFeasible(result.values, 1e-6).ok());
  } else if (result.status == SolveStatus::kInfeasible) {
    EXPECT_FALSE(brute_found) << "instance " << GetParam()
                              << ": brute force found a feasible vertex";
  }
  // kUnbounded: all variables here are boxed, but rows can make the
  // enumeration miss unbounded rays; nothing to cross-check.
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, SimplexVsBruteForce,
                         ::testing::Range(0, 60));

}  // namespace
}  // namespace lp
}  // namespace sqpr
