// Durability and degraded-mode tests (docs/ARCHITECTURE.md "Durability
// & degraded modes"):
//
//  * canonical JSON: the write->parse->write byte-equality fixed point
//    and defensive parsing of hostile input (the corrupted-checkpoint
//    contract's foundation);
//  * checkpoint robustness: a real exported checkpoint with every
//    top-level field removed or type-swapped, ids pushed out of range,
//    the schema mismatched and the document truncated at every prefix
//    must produce a clean error Status — never UB, never an abort —
//    while unknown fields pass through untouched (forward
//    compatibility);
//  * the atomic write protocol: a crash mid-write (the real
//    "checkpoint-write" fault point, fired in a child process) leaves
//    the previous checkpoint byte-identical under the real name;
//  * catalog exhaustion: interning past capacity is a reason-coded
//    rejection at both the catalog and the service layer, not the
//    SQPR_CHECK abort it used to be;
//  * solver deadlines: an instantly-expired solve budget on every solve
//    still commits a valid deployment via best-incumbent / heuristic
//    fallback — degraded, counted, never crashed or hung.

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/json.h"
#include "model/catalog.h"
#include "model/cluster.h"
#include "service/checkpoint.h"
#include "service/planning_service.h"
#include "workload/generator.h"
#include "workload/trace.h"

namespace sqpr {
namespace {

// ---------------------------------------------------------------------
// Canonical JSON.

TEST(DurabilityJsonTest, WriteParseWriteIsAFixedPoint) {
  JsonValue root = JsonValue::Object();
  root.Set("schema", JsonValue::Str("test-v1"));
  root.Set("null", JsonValue::Null());
  root.Set("flags", JsonValue::Bool(true));
  root.Set("count", JsonValue::Int(-1234567890123456789LL));
  JsonValue doubles = JsonValue::Array();
  for (const double d : {0.1, 3.141592653589793, 1e-300, 2.5e17,
                         1.7976931348623157e308, -42.0, 0.0}) {
    doubles.Append(JsonValue::Double(d));
  }
  root.Set("doubles", doubles);
  // Escapes, raw UTF-8 and a control character — the writer must escape
  // what JSON requires and nothing else, identically on every pass.
  root.Set("text", JsonValue::Str("h\xc3\xa9llo \"quoted\"\\\n\t\x01 end"));
  JsonValue nested = JsonValue::Object();
  nested.Set("empty_array", JsonValue::Array());
  nested.Set("empty_object", JsonValue::Object());
  JsonValue pair = JsonValue::Array();
  pair.Append(JsonValue::Int(7));
  pair.Append(JsonValue::Str("x"));
  nested.Set("pair", pair);
  root.Set("nested", nested);

  const std::string once = WriteJson(root);
  Result<JsonValue> parsed = ParseJson(once);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(WriteJson(*parsed), once);

  // And the member order is the insertion order, not sorted: the
  // canonical form is deterministic because writers are, not because
  // the model reorders anything.
  EXPECT_LT(once.find("\"schema\""), once.find("\"null\""));
  EXPECT_LT(once.find("\"doubles\""), once.find("\"text\""));
}

TEST(DurabilityJsonTest, HostileInputIsACleanError) {
  const char* bad[] = {
      "",
      "{\"a\":1",              // truncated object
      "[1,2",                  // truncated array
      "\"unterminated",        // truncated string
      "{\"a\":}",              // missing value
      "{a:1}",                 // unquoted key
      "[1,]",                  // trailing comma
      "\"\\q\"",               // bad escape
      "\"\\u12\"",             // short unicode escape
      "1e999",                 // overflows to non-finite
      "nul",                   // truncated keyword
      "{} trailing",           // trailing garbage
      "[1] [2]",               // two documents
  };
  for (const char* text : bad) {
    const Result<JsonValue> parsed = ParseJson(text);
    EXPECT_FALSE(parsed.ok()) << "accepted: " << text;
    if (!parsed.ok()) {
      EXPECT_TRUE(parsed.status().IsInvalidArgument()) << text;
    }
  }
  // Nesting beyond the 128-level bound must be rejected, not recursed
  // into until the stack dies.
  const std::string deep =
      std::string(400, '[') + "1" + std::string(400, ']');
  EXPECT_FALSE(ParseJson(deep).ok());
}

// ---------------------------------------------------------------------
// Shared scenario plumbing for the service-level tests.

struct Scenario {
  std::unique_ptr<Cluster> cluster;
  std::unique_ptr<Catalog> catalog;
  std::vector<Event> trace;
};

Scenario MakeScenario(uint64_t seed, int num_events = 24) {
  Scenario s;
  s.cluster =
      std::make_unique<Cluster>(3, HostSpec{0.6, 70.0, 70.0, ""}, 140.0);
  s.catalog = std::make_unique<Catalog>(CostModel{});

  WorkloadConfig wc;
  wc.num_base_streams = 14;
  wc.num_queries = 20;
  wc.arities = {2, 3};
  wc.seed = seed;
  Result<Workload> workload = GenerateWorkload(wc, 3, s.catalog.get());
  EXPECT_TRUE(workload.ok()) << workload.status().ToString();

  TraceConfig tc;
  tc.num_events = num_events;
  tc.seed = seed;
  tc.mean_gap_ms = 40;
  Result<std::vector<Event>> trace =
      GenerateTrace(tc, *workload, 3, *s.catalog);
  EXPECT_TRUE(trace.ok()) << trace.status().ToString();
  s.trace = std::move(*trace);
  return s;
}

ServiceOptions DeterministicOptions() {
  ServiceOptions options;
  options.planner.timeout_ms = 60000;
  options.planner.max_nodes = 80;
  return options;
}

/// Replays a scenario's trace to completion and exports the checkpoint.
std::string ExportedCheckpoint(uint64_t seed) {
  Scenario s = MakeScenario(seed);
  PlanningService service(s.cluster.get(), s.catalog.get(),
                          DeterministicOptions());
  for (const Event& e : s.trace) EXPECT_TRUE(service.Enqueue(e).ok());
  EXPECT_TRUE(service.RunUntilIdle().ok());
  Result<std::string> ck = service.ExportCheckpoint();
  EXPECT_TRUE(ck.ok()) << ck.status().ToString();
  return ck.ok() ? *ck : std::string();
}

/// Restores `doc` into a fresh service built from the same seed and
/// returns the Status — the corrupted-checkpoint fuzz calls this once
/// per mangled document, with a brand-new service every time (a failed
/// restore may have partially applied; reuse is not part of the
/// contract).
Status TryRestore(uint64_t seed, const std::string& doc) {
  Scenario s = MakeScenario(seed);
  PlanningService service(s.cluster.get(), s.catalog.get(),
                          DeterministicOptions());
  return service.RestoreCheckpoint(doc);
}

/// Copy of `obj` with the member named `key` replaced (members are
/// immutable through the const accessor, so mangling means rebuilding).
JsonValue WithMember(const JsonValue& obj, const std::string& key,
                     JsonValue replacement) {
  JsonValue out = JsonValue::Object();
  for (const auto& m : obj.members()) {
    out.Set(m.first, m.first == key ? std::move(replacement) : m.second);
  }
  return out;
}

// ---------------------------------------------------------------------
// Checkpoint document robustness.

TEST(DurabilityCheckpointTest, ExportIsCanonicalJson) {
  const std::string doc = ExportedCheckpoint(3);
  ASSERT_FALSE(doc.empty());
  Result<JsonValue> parsed = ParseJson(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  // The export IS the canonical rendering: re-serializing the parsed
  // document reproduces it byte for byte (this is what makes two
  // services in the same state produce cmp-equal checkpoint files).
  EXPECT_EQ(WriteJson(*parsed), doc);
  EXPECT_TRUE(parsed->is_object());
  const JsonValue* schema = parsed->Find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->string_value(), kCheckpointSchema);
}

TEST(DurabilityCheckpointTest, UnknownFieldsAreIgnored) {
  const uint64_t seed = 3;
  const std::string doc = ExportedCheckpoint(seed);
  Result<JsonValue> parsed = ParseJson(doc);
  ASSERT_TRUE(parsed.ok());
  // A future writer grew fields this reader has never heard of — at the
  // root and inside a known sub-object. The v1 reader must not care.
  JsonValue future = JsonValue::Object();
  future.Set("x", JsonValue::Int(1));
  parsed->Set("zz_future_root_field", future);
  parsed->Set("zz_another", JsonValue::Str("ignore me"));
  const Status restored = TryRestore(seed, WriteJson(*parsed));
  EXPECT_TRUE(restored.ok()) << restored.ToString();
}

TEST(DurabilityCheckpointTest, EveryTopLevelFieldIsLoadBearing) {
  const uint64_t seed = 3;
  const std::string doc = ExportedCheckpoint(seed);
  Result<JsonValue> parsed = ParseJson(doc);
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(parsed->is_object());

  const size_t n = parsed->members().size();
  ASSERT_GT(n, 10u) << "checkpoint schema lost fields?";
  for (size_t drop = 0; drop < n; ++drop) {
    const std::string& name = parsed->members()[drop].first;
    // (a) Field removed entirely: a known field going missing is
    // corruption, not forward compatibility.
    JsonValue without = JsonValue::Object();
    for (size_t i = 0; i < n; ++i) {
      if (i != drop) {
        without.Set(parsed->members()[i].first, parsed->members()[i].second);
      }
    }
    Status st = TryRestore(seed, WriteJson(without));
    EXPECT_FALSE(st.ok()) << "restore accepted a checkpoint missing \""
                          << name << "\"";

    // (b) Field type-swapped: same sweep, wrong shape.
    const JsonValue swapped = WithMember(*parsed, name, JsonValue::Bool(true));
    st = TryRestore(seed, WriteJson(swapped));
    EXPECT_FALSE(st.ok()) << "restore accepted \"" << name
                          << "\" with a swapped type";
    if (!st.ok()) {
      EXPECT_TRUE(st.IsInvalidArgument() || st.IsFailedPrecondition())
          << name << ": " << st.ToString();
    }
  }
}

TEST(DurabilityCheckpointTest, CorruptedValuesAreCleanErrors) {
  const uint64_t seed = 3;
  const std::string doc = ExportedCheckpoint(seed);
  Result<JsonValue> base = ParseJson(doc);
  ASSERT_TRUE(base.ok());

  // Schema mismatch: quoted, explicit, non-fatal to the process.
  {
    const JsonValue v =
        WithMember(*base, "schema", JsonValue::Str("sqpr-checkpoint-v9"));
    const Status st = TryRestore(seed, WriteJson(v));
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.ToString().find("sqpr-checkpoint-v9"), std::string::npos)
        << st.ToString();
  }

  // Out-of-range ids anywhere id-shaped: the deployment mutators index
  // vectors by raw id, so the reader must bounds-check before replay.
  const auto corrupt_member = [&](const char* field, JsonValue bad) {
    const JsonValue v = WithMember(*base, field, std::move(bad));
    const Status st = TryRestore(seed, WriteJson(v));
    EXPECT_FALSE(st.ok()) << "restore accepted corrupted \"" << field << "\"";
  };
  JsonValue huge_ids = JsonValue::Array();
  huge_ids.Append(JsonValue::Int(1000000000));
  corrupt_member("warm_log", huge_ids);
  JsonValue negative_ids = JsonValue::Array();
  negative_ids.Append(JsonValue::Int(-7));
  corrupt_member("admitted", negative_ids);
  JsonValue bad_rate = JsonValue::Array();
  {
    JsonValue entry = JsonValue::Array();
    entry.Append(JsonValue::Int(999999));  // no such base stream
    entry.Append(JsonValue::Double(10.0));
    bad_rate.Append(entry);
  }
  corrupt_member("base_rates", bad_rate);

  // Truncation: no proper prefix of a JSON object is a JSON object, so
  // every cut must die in the parser with an offset-quoting error (and
  // therefore before any service state is touched).
  for (size_t cut = 0; cut < doc.size(); cut += 37) {
    const Result<JsonValue> parsed = ParseJson(doc.substr(0, cut));
    EXPECT_FALSE(parsed.ok()) << "prefix of length " << cut << " parsed";
  }
}

TEST(DurabilityCheckpointTest, RestoreRequiresAFreshService) {
  const uint64_t seed = 5;
  const std::string doc = ExportedCheckpoint(seed);
  Scenario s = MakeScenario(seed);
  PlanningService service(s.cluster.get(), s.catalog.get(),
                          DeterministicOptions());
  for (const Event& e : s.trace) ASSERT_TRUE(service.Enqueue(e).ok());
  ASSERT_TRUE(service.RunUntilIdle().ok());
  // The service has consumed events; restoring over live state would
  // silently merge two histories.
  const Status st = service.RestoreCheckpoint(doc);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsFailedPrecondition()) << st.ToString();
}

// ---------------------------------------------------------------------
// Atomic write protocol.

TEST(DurabilityWriteTest, WriteRenameProtocol) {
  const std::string path = ::testing::TempDir() + "sqpr_atomic_test.json";
  const std::string tmp = path + ".tmp";
  std::remove(path.c_str());
  std::remove(tmp.c_str());

  ASSERT_TRUE(WriteFileAtomic(path, "v1 contents").ok());
  Result<std::string> read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "v1 contents");
  // A clean write leaves no temp file behind.
  EXPECT_TRUE(ReadFileToString(tmp).status().IsNotFound());

  // A stale torn temp file (what a crashed writer leaves) neither
  // shadows the real checkpoint nor blocks the next write.
  {
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("{\"torn", f);
    std::fclose(f);
  }
  read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "v1 contents");
  ASSERT_TRUE(WriteFileAtomic(path, "v2").ok());
  read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "v2");
  EXPECT_TRUE(ReadFileToString(tmp).status().IsNotFound());
  std::remove(path.c_str());
}

// Not a test: the child half of TornWriteCrashLeavesPreviousIntact. It
// re-runs this binary with SQPR_FAULT armed so the injected _Exit(43)
// fires inside a real WriteFileAtomic, in a process we are allowed to
// lose. Without the env marker it skips instantly.
TEST(DurabilityWriteTest, TornWriteChildHelper) {
  const char* path = std::getenv("SQPR_TORN_WRITE_PATH");
  if (path == nullptr) GTEST_SKIP() << "child-only helper";
  const Status st =
      WriteFileAtomic(path, "replacement that must never appear");
  // Reaching here means the fault point did not fire — fail loudly so
  // the parent sees a wrong exit code.
  FAIL() << "expected SQPR_FAULT to kill this process, got " << st.ToString();
}

TEST(DurabilityWriteTest, TornWriteCrashLeavesPreviousIntact) {
  const std::string path = ::testing::TempDir() + "sqpr_torn_crash.json";
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  ASSERT_TRUE(WriteFileAtomic(path, "previous checkpoint").ok());

  // Re-exec ourselves: the fault spec is latched from the environment
  // on first use, so the crash must happen in a fresh process. Resolve
  // /proc/self/exe here — inside system()'s shell it would name the
  // shell.
  char self[4096];
  const ssize_t len = readlink("/proc/self/exe", self, sizeof(self) - 1);
  ASSERT_GT(len, 0);
  self[len] = '\0';
  const std::string cmd =
      "SQPR_FAULT=checkpoint-write:1 SQPR_TORN_WRITE_PATH=" + path + " \"" +
      self +
      "\" --gtest_filter=DurabilityWriteTest.TornWriteChildHelper "
      ">/dev/null 2>&1";
  const int rc = std::system(cmd.c_str());
  ASSERT_TRUE(WIFEXITED(rc));
  ASSERT_EQ(WEXITSTATUS(rc), fault::kCrashExitCode)
      << "child did not die at the checkpoint-write fault point";

  // The kill hit between the two halves of the temp-file write: the
  // real file must still hold the previous checkpoint, byte for byte.
  const Result<std::string> read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "previous checkpoint");
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

// ---------------------------------------------------------------------
// Catalog exhaustion degrades to rejection.

TEST(DurabilityDegradedTest, CatalogInterningPastCapacityIsAStatus) {
  Catalog catalog{CostModel{}};
  catalog.set_capacity_for_testing(/*max_streams=*/5, /*max_operators=*/1);

  StreamId a = catalog.AddBaseStream(0, 10.0, "a");
  StreamId b = catalog.AddBaseStream(0, 10.0, "b");
  StreamId c = catalog.AddBaseStream(1, 10.0, "c");
  ASSERT_NE(a, kInvalidStream);
  ASSERT_NE(b, kInvalidStream);
  ASSERT_NE(c, kInvalidStream);

  // Fourth of five stream slots: the join stream of {a, b}.
  Result<StreamId> ab = catalog.CanonicalJoinStream({a, b});
  ASSERT_TRUE(ab.ok()) << ab.status().ToString();

  // The single operator slot goes to (a ⋈ b); re-interning the same
  // combination is a find, not an allocation.
  const Result<OperatorId> op = catalog.JoinOperator(a, b);
  ASSERT_TRUE(op.ok()) << op.status().ToString();
  const Result<OperatorId> op_again = catalog.JoinOperator(a, b);
  ASSERT_TRUE(op_again.ok());
  EXPECT_EQ(*op_again, *op);

  // (a ⋈ c) needs a second operator: a reason-coded rejection — the
  // old behaviour was an SQPR_CHECK abort. (The operator store is
  // checked before the output stream is interned, so the stream store
  // still has its last slot.)
  const Result<OperatorId> op_new = catalog.JoinOperator(a, c);
  ASSERT_FALSE(op_new.ok());
  EXPECT_TRUE(op_new.status().IsResourceExhausted())
      << op_new.status().ToString();

  // The last stream slot goes to the {a, c} join stream (no operator
  // involved); after that, every new interning path degrades.
  const Result<StreamId> ac = catalog.CanonicalJoinStream({a, c});
  ASSERT_TRUE(ac.ok()) << ac.status().ToString();
  EXPECT_EQ(catalog.AddBaseStream(2, 10.0, "d"), kInvalidStream);
  const Result<StreamId> bc = catalog.CanonicalJoinStream({b, c});
  ASSERT_FALSE(bc.ok());
  EXPECT_TRUE(bc.status().IsResourceExhausted()) << bc.status().ToString();

  // Finding what already exists never depends on free capacity.
  const Result<StreamId> ab_again = catalog.CanonicalJoinStream({a, b});
  ASSERT_TRUE(ab_again.ok());
  EXPECT_EQ(*ab_again, *ab);
}

TEST(DurabilityDegradedTest, ServiceRejectsArrivalsOnExhaustedCatalog) {
  Scenario s = MakeScenario(11, /*num_events=*/30);
  // Freeze the stores at their current size: every arrival whose warm-up
  // needs even one new stream or operator now sees ResourceExhausted.
  s.catalog->set_capacity_for_testing(
      static_cast<size_t>(s.catalog->num_streams()),
      static_cast<size_t>(s.catalog->num_operators()));

  PlanningService service(s.cluster.get(), s.catalog.get(),
                          DeterministicOptions());
  for (const Event& e : s.trace) ASSERT_TRUE(service.Enqueue(e).ok());
  // The whole point: this used to abort inside the catalog. Now the
  // trace replays to completion.
  ASSERT_TRUE(service.RunUntilIdle().ok());

  const ServiceStats& stats = service.stats();
  EXPECT_GT(stats.catalog_exhausted, 0)
      << "no arrival exercised the exhaustion path — shrink the scenario";
  EXPECT_GE(stats.rejected, stats.catalog_exhausted);
  EXPECT_TRUE(service.deployment().Validate().ok());
}

// ---------------------------------------------------------------------
// Solver deadlines degrade, never crash or hang.

TEST(DurabilityDegradedTest, ExpiredSolveDeadlineStillCommitsValidPlans) {
  Scenario s = MakeScenario(4, /*num_events=*/30);
  ServiceOptions options = DeterministicOptions();
  // The deterministic lever: a negative budget is an already-expired
  // deadline, so EVERY solve breaches immediately — the strongest
  // possible overrun, on every event of the trace.
  options.planner.solve_deadline_ms = -1;

  PlanningService service(s.cluster.get(), s.catalog.get(), options);
  for (const Event& e : s.trace) ASSERT_TRUE(service.Enqueue(e).ok());
  ASSERT_TRUE(service.RunUntilIdle().ok());

  const ServiceStats& stats = service.stats();
  EXPECT_GT(stats.solver_deadline_breaches, 0);
  // Degraded is not dead: queries still get placed (incumbent or
  // heuristic fallback) and the committed deployment stays sound.
  EXPECT_GT(stats.admitted, 0);
  EXPECT_TRUE(service.deployment().Validate().ok());
  // A breach that fell back to the greedy heuristic is counted as such;
  // the fallback count can never exceed the breach count.
  EXPECT_LE(stats.heuristic_fallbacks, stats.solver_deadline_breaches);
}

}  // namespace
}  // namespace sqpr
