// Differential solver-equivalence harness for the incremental solve
// path. The planner's model cache + warm starts are performance-only by
// design: a patched (Rebind-ed) skeleton is bit-identical to a fresh
// build, pooled cycle cuts are valid for every integral point of the
// skeleton, and a warm root basis is repaired by the simplex phase 1.
// These tests pin that claim differentially:
//
//  * two planners consume identical randomised churn (admissions,
//    departures, replans, rate drift) — one with the model cache on,
//    one always rebuilding and cold-starting — and must agree after
//    every event on the admitted set, deployment feasibility and (when
//    both prove optimality under tight gaps) the solve objective;
//  * a warm-started simplex solve must reach the cold-start objective
//    on the same model;
//  * a warm-started MILP re-solve must reach the cold objective, and
//    discard the basis (not the answer) when presolve keeps a
//    different column set than when the basis was harvested.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "common/rng.h"
#include "lp/simplex.h"
#include "milp/solver.h"
#include "monitor/resource_monitor.h"
#include "planner/sqpr/sqpr_planner.h"
#include "workload/generator.h"

namespace sqpr {
namespace {

SqprPlanner::Options TightOptions(bool cache) {
  SqprPlanner::Options options;
  // Tight gaps + a roomy deadline: both sides prove optimality at this
  // problem scale, which is what makes objective equality assertable
  // (the optima may be symmetric placements, so deployments are
  // compared by feasibility and admitted set, not bit for bit).
  options.timeout_ms = 1500;
  options.mip_gap_abs = 1e-9;
  options.mip_gap_rel = 1e-6;
  options.enable_model_cache = cache;
  return options;
}

/// One churn step applied identically to both planners; asserts the
/// differential properties afterwards.
class SolverEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(SolverEquivalenceTest, IncrementalMatchesFromScratchUnderChurn) {
  const uint64_t seed = 0x5eed + static_cast<uint64_t>(GetParam());
  Rng rng(seed);

  // Kept small enough (3 hosts, 2-way joins) that the tight-gap solves
  // prove optimality well inside the deadline — a deadline-truncated
  // solve makes the objective comparison vacuous.
  Catalog catalog(CostModel{});
  Cluster cluster(3, HostSpec{0.6, 90.0, 90.0, ""}, 180.0);
  WorkloadConfig wc;
  wc.num_base_streams = 12;
  wc.num_queries = 24;
  wc.arities = {2};
  wc.seed = seed;
  Workload workload = *GenerateWorkload(wc, 3, &catalog);

  // Both planners share the catalog and cluster (planners only read
  // them during solves; the drift step below mutates the catalog once
  // for both).
  SqprPlanner incremental(&cluster, &catalog, TightOptions(true));
  SqprPlanner scratch(&cluster, &catalog, TightOptions(false));
  ResourceMonitor monitor(&catalog, DriftOptions{});

  int64_t patched_solves = 0;
  size_t next_query = 0;
  for (int step = 0; step < 30; ++step) {
    const double dice = rng.NextDouble();
    if (dice < 0.45 && next_query < workload.queries.size()) {
      const StreamId q = workload.queries[next_query++];
      Result<PlanningStats> a = incremental.SubmitQuery(q);
      Result<PlanningStats> b = scratch.SubmitQuery(q);
      ASSERT_TRUE(a.ok()) << a.status().ToString();
      ASSERT_TRUE(b.ok()) << b.status().ToString();
      ASSERT_EQ(a->admitted, b->admitted)
          << "seed " << seed << " step " << step << " query " << q;
      if (a->model_patched) ++patched_solves;
      if (a->proved_optimal && b->proved_optimal) {
        EXPECT_NEAR(a->objective, b->objective, 1e-6)
            << "seed " << seed << " step " << step << " query " << q;
      }
    } else if (dice < 0.65 && !incremental.admitted_queries().empty()) {
      const auto& admitted = incremental.admitted_queries();
      const StreamId victim = admitted[rng.NextUint64() % admitted.size()];
      ASSERT_TRUE(incremental.RemoveQuery(victim).ok());
      ASSERT_TRUE(scratch.RemoveQuery(victim).ok());
    } else if (dice < 0.9 && !incremental.admitted_queries().empty()) {
      // §IV-B replan of one query: the highest cache-hit-rate path —
      // the relevant sets (and so the solve structure) usually match
      // the query's previous admission solve.
      const auto& admitted = incremental.admitted_queries();
      const StreamId q = admitted[rng.NextUint64() % admitted.size()];
      Result<std::vector<PlanningStats>> a = incremental.ReplanQueries({q});
      Result<std::vector<PlanningStats>> b = scratch.ReplanQueries({q});
      ASSERT_TRUE(a.ok()) << a.status().ToString();
      ASSERT_TRUE(b.ok()) << b.status().ToString();
      ASSERT_EQ(a->front().admitted, b->front().admitted)
          << "seed " << seed << " step " << step << " replan " << q;
      if (a->front().model_patched) ++patched_solves;
      if (a->front().proved_optimal && b->front().proved_optimal) {
        EXPECT_NEAR(a->front().objective, b->front().objective, 1e-6)
            << "seed " << seed << " step " << step << " replan " << q;
      }
    } else if (!incremental.admitted_queries().empty()) {
      // Rate drift: one shared catalog install (epoch bump — the cache
      // invalidation path), then the §IV-B cycle on both planners with
      // the *same* pre-install report so they replan identical lists.
      std::map<StreamId, double> measured;
      const StreamId drifting =
          workload.base_streams[rng.NextUint64() %
                                workload.base_streams.size()];
      measured[drifting] = 5.0 + 20.0 * rng.NextDouble();
      const DriftReport report =
          monitor.Analyze(measured, std::vector<double>(3, 0.5),
                          incremental.admitted_queries());
      Result<std::vector<PlanningStats>> a =
          AdaptiveReplan(&incremental, &catalog, measured, report);
      Result<std::vector<PlanningStats>> b =
          AdaptiveReplan(&scratch, &catalog, measured, report);
      ASSERT_TRUE(a.ok()) << a.status().ToString();
      ASSERT_TRUE(b.ok()) << b.status().ToString();
    }

    // Feasibility-identical: both deployments pass the full §III audit
    // and agree on exactly which queries are served.
    ASSERT_TRUE(incremental.deployment().Validate().ok())
        << "seed " << seed << " step " << step;
    ASSERT_TRUE(scratch.deployment().Validate().ok())
        << "seed " << seed << " step " << step;
    const std::set<StreamId> served_a(incremental.admitted_queries().begin(),
                                      incremental.admitted_queries().end());
    const std::set<StreamId> served_b(scratch.admitted_queries().begin(),
                                      scratch.admitted_queries().end());
    ASSERT_EQ(served_a, served_b) << "seed " << seed << " step " << step;
  }
  // The churn must actually exercise the incremental path, or the whole
  // differential is vacuous.
  EXPECT_GT(patched_solves, 0) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverEquivalenceTest,
                         ::testing::Range(0, 4));

/// Warm-started simplex == cold-started simplex on the same model, over
/// randomised LPs (objective equality; the vertex may differ under
/// degeneracy, the value may not).
class WarmSimplexTest : public ::testing::TestWithParam<int> {};

TEST_P(WarmSimplexTest, WarmBasisReachesColdObjective) {
  const uint64_t seed = 0x3a51 + static_cast<uint64_t>(GetParam());
  Rng rng(seed);
  lp::Model m;
  const int n = 6 + static_cast<int>(rng.NextUint64() % 6);
  for (int v = 0; v < n; ++v) {
    m.AddVariable(0.0, 1.0 + 4.0 * rng.NextDouble(),
                  rng.NextDouble() * 10.0 - 2.0);
  }
  const int rows = 4 + static_cast<int>(rng.NextUint64() % 5);
  for (int r = 0; r < rows; ++r) {
    std::vector<std::pair<int, double>> terms;
    for (int v = 0; v < n; ++v) {
      if (rng.NextDouble() < 0.5) {
        terms.emplace_back(v, rng.NextDouble() * 4.0 - 1.0);
      }
    }
    if (terms.empty()) terms.emplace_back(0, 1.0);
    m.AddRow(-lp::kInf, 1.0 + 5.0 * rng.NextDouble(), std::move(terms));
  }

  lp::SimplexSolver cold;
  const lp::SimplexResult first = cold.Solve(m);
  ASSERT_EQ(first.status, lp::SolveStatus::kOptimal) << "seed " << seed;

  lp::SimplexOptions warm_options;
  warm_options.warm_basis = &first.basis_state;
  lp::SimplexSolver warm(warm_options);
  const lp::SimplexResult second = warm.Solve(m);
  ASSERT_EQ(second.status, lp::SolveStatus::kOptimal) << "seed " << seed;
  EXPECT_NEAR(second.objective, first.objective, 1e-7) << "seed " << seed;
  // Restarting at the optimal basis must not need meaningful work.
  EXPECT_LE(second.iterations, first.iterations) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, WarmSimplexTest, ::testing::Range(0, 8));

/// Warm-started MILP root == cold-started MILP on the same model: the
/// harvested root basis is installed (same presolve column signature)
/// and the objective is unchanged.
TEST(WarmMilpTest, RootBasisReuseKeepsObjective) {
  const uint64_t seed = 0x417;
  Rng rng(seed);
  milp::Model m;
  std::vector<std::pair<int, double>> weight_terms;
  for (int i = 0; i < 12; ++i) {
    const int v = m.AddBinary(1.0 + rng.NextDouble() * 9.0);
    weight_terms.emplace_back(v, 1.0 + rng.NextDouble() * 4.0);
  }
  m.lp.AddRow(-lp::kInf, 12.0, weight_terms, "cap");

  milp::Solver solver;
  milp::SolverOptions options;
  const milp::MipResult cold = solver.Solve(m, options);
  ASSERT_EQ(cold.status, milp::MipStatus::kOptimal);
  ASSERT_FALSE(cold.root_basis.empty());
  EXPECT_FALSE(cold.used_warm_basis);

  options.root_warm_basis = &cold.root_basis;
  options.root_warm_basis_columns = &cold.root_basis_columns;
  const milp::MipResult warm = solver.Solve(m, options);
  ASSERT_EQ(warm.status, milp::MipStatus::kOptimal);
  EXPECT_TRUE(warm.used_warm_basis);
  EXPECT_FALSE(warm.warm_basis_discarded);
  EXPECT_NEAR(warm.objective, cold.objective, 1e-9);
}

}  // namespace
}  // namespace sqpr
