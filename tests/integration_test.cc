// Cross-module integration tests: planner-produced MILPs through the
// MPS round-trip (regression: SQPR labels whole constraint families
// with one name, which must not merge rows on re-read), host-subset
// restricted models, and plan extraction under the hierarchical
// planner.

#include <gtest/gtest.h>

#include <set>

#include "milp/mps_io.h"
#include "milp/solver.h"
#include "model/catalog.h"
#include "model/cluster.h"
#include "plan/deployment.h"
#include "plan/query_plan.h"
#include "planner/sqpr/model_builder.h"
#include "planner/sqpr/sqpr_planner.h"

namespace sqpr {
namespace {

struct ModelFixture {
  ModelFixture()
      : catalog(CostModel{}),
        cluster(3, HostSpec{1.0, 120.0, 120.0, ""}, 240.0) {
    a = catalog.AddBaseStream(0, 10.0, "a");
    b = catalog.AddBaseStream(1, 10.0, "b");
    c = catalog.AddBaseStream(2, 10.0, "c");
    abc = *catalog.CanonicalJoinStream({a, b, c});
    closure = *catalog.JoinClosure(abc);
  }

  Catalog catalog;
  Cluster cluster;
  StreamId a, b, c, abc;
  Closure closure;
};

TEST(IntegrationTest, SqprModelSurvivesMpsRoundTrip) {
  // Regression: every (III.7) potential row is named "acyc"; the MPS
  // writer must uniquify names or the reader merges the rows and the
  // model silently loses most of its acyclicity structure.
  ModelFixture f;
  Deployment dep(&f.cluster, &f.catalog);
  SqprModelOptions options;
  options.acyclicity = AcyclicityMode::kPotentials;  // self-contained
  SqprMip mip(dep, f.closure.streams, f.closure.operators,
              {{f.abc, false}}, options);

  const std::string text = milp::WriteMpsToString(mip.mip());
  Result<milp::Model> reread = milp::ReadMpsFromString(text);
  ASSERT_TRUE(reread.ok()) << reread.status().ToString();
  ASSERT_EQ(reread->lp.num_rows(), mip.mip().lp.num_rows());
  ASSERT_EQ(reread->lp.num_variables(), mip.mip().lp.num_variables());
  for (int r = 0; r < reread->lp.num_rows(); ++r) {
    EXPECT_EQ(reread->lp.row_terms(r).size(),
              mip.mip().lp.row_terms(r).size())
        << "row " << r << " changed arity in the round-trip";
  }

  // Both models must solve to the same admission decision and value.
  milp::Solver solver;
  milp::SolverOptions solver_options;
  solver_options.deadline = Deadline::AfterMillis(3000);
  const milp::MipResult direct = solver.Solve(mip.mip(), solver_options);
  solver_options.deadline = Deadline::AfterMillis(3000);
  const milp::MipResult replayed = solver.Solve(*reread, solver_options);
  ASSERT_TRUE(direct.has_solution());
  ASSERT_TRUE(replayed.has_solution());
  EXPECT_NEAR(direct.objective, replayed.objective, 1e-4);
}

TEST(IntegrationTest, HostSubsetPinsAllForeignDecisions) {
  ModelFixture f;
  Deployment dep(&f.cluster, &f.catalog);
  SqprModelOptions options;
  options.host_subset = {0, 1};  // host 2 excluded (but sources stream c)
  SqprMip mip(dep, f.closure.streams, f.closure.operators,
              {{f.abc, false}}, options);

  // Every z/d variable on host 2 must be pinned to zero.
  for (OperatorId o : f.closure.operators) {
    const int z = mip.VarZ(2, o);
    if (z < 0) continue;
    EXPECT_DOUBLE_EQ(mip.mip().lp.variable_ub(z), 0.0) << "z op " << o;
  }
  const int d = mip.VarD(2, f.abc);
  if (d >= 0) EXPECT_DOUBLE_EQ(mip.mip().lp.variable_ub(d), 0.0);

  // A query whose leaves span all three hosts is unadmittable when the
  // excluded host cannot even export its base stream: flows out of host
  // 2 are pinned too, so the solver must reject.
  SqprMip::CycleCutHandler handler(&mip);
  milp::SolverOptions solver_options;
  solver_options.deadline = Deadline::AfterMillis(3000);
  solver_options.lazy = &handler;
  milp::Solver solver;
  const milp::MipResult result = solver.Solve(mip.mip(), solver_options);
  ASSERT_TRUE(result.has_solution());
  EXPECT_FALSE(mip.Serves(result.x, f.abc));
}

TEST(IntegrationTest, SubsetWithSourceHostsAdmits) {
  // Same query, but the subset includes every leaf's source host: now a
  // plan exists and the extracted tree must satisfy C1-C4 and only use
  // subset hosts.
  ModelFixture f;
  Deployment dep(&f.cluster, &f.catalog);
  SqprModelOptions options;
  options.host_subset = {0, 1, 2};
  SqprMip mip(dep, f.closure.streams, f.closure.operators,
              {{f.abc, false}}, options);
  SqprMip::CycleCutHandler handler(&mip);
  milp::SolverOptions solver_options;
  solver_options.deadline = Deadline::AfterMillis(5000);
  solver_options.lazy = &handler;
  milp::Solver solver;
  const milp::MipResult result = solver.Solve(mip.mip(), solver_options);
  ASSERT_TRUE(result.has_solution());
  ASSERT_TRUE(mip.Serves(result.x, f.abc));

  ASSERT_TRUE(mip.Commit(result.x, &dep).ok());
  EXPECT_TRUE(dep.Validate().ok());
  Result<QueryPlan> plan = ExtractPlan(dep, f.abc);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_GE(plan->NodeCount(), 3);  // at least two joins + leaves
}

TEST(IntegrationTest, MemoryRowsInteractWithSubset) {
  // Finite memory on a subset host must still produce a memory row for
  // it and none for hosts outside the subset whose z's are pinned
  // anyway (their rows may exist but are vacuous).
  Catalog catalog(CostModel{});
  std::vector<HostSpec> hosts(3, HostSpec{1.0, 120.0, 120.0, ""});
  hosts[0].mem_mb = 2.0;
  Cluster cluster(hosts, 240.0);
  const StreamId a = catalog.AddBaseStream(0, 10.0, "a");
  const StreamId b = catalog.AddBaseStream(1, 10.0, "b");
  const StreamId ab = *catalog.CanonicalJoinStream({a, b});
  const Closure closure = *catalog.JoinClosure(ab);

  Deployment dep(&cluster, &catalog);
  SqprModelOptions options;
  options.host_subset = {0, 1};
  SqprMip mip(dep, closure.streams, closure.operators, {{ab, false}},
              options);
  SqprMip::CycleCutHandler handler(&mip);
  milp::SolverOptions solver_options;
  solver_options.deadline = Deadline::AfterMillis(3000);
  solver_options.lazy = &handler;
  milp::Solver solver;
  const milp::MipResult result = solver.Solve(mip.mip(), solver_options);
  ASSERT_TRUE(result.has_solution());
  if (mip.Serves(result.x, ab)) {
    ASSERT_TRUE(mip.Commit(result.x, &dep).ok());
    EXPECT_TRUE(dep.Validate().ok());
    // Host 0 fits no 2.5 MB join window in 2 MB: the join must sit on
    // host 1.
    EXPECT_TRUE(dep.OperatorsOn(0).empty());
  }
}

}  // namespace
}  // namespace sqpr
