#include <gtest/gtest.h>

#include "model/catalog.h"
#include "model/cluster.h"
#include "plan/deployment.h"
#include "plan/query_plan.h"

namespace sqpr {
namespace {

/// Three hosts; base streams a@0, b@1; join stream ab.
struct Fixture {
  Fixture()
      : catalog(CostModel{}),
        cluster(3, HostSpec{1.0, 100.0, 100.0, ""}, 1000.0) {
    a = catalog.AddBaseStream(0, 10.0, "a");
    b = catalog.AddBaseStream(1, 10.0, "b");
    auto op = catalog.JoinOperator(a, b);
    join_ab = *op;
    ab = catalog.op(join_ab).output;
  }
  Catalog catalog;
  Cluster cluster;
  StreamId a, b, ab;
  OperatorId join_ab;
};

TEST(DeploymentTest, EmptyStateValidates) {
  Fixture f;
  Deployment dep(&f.cluster, &f.catalog);
  EXPECT_TRUE(dep.Validate().ok());
  EXPECT_EQ(dep.num_flows(), 0);
  EXPECT_EQ(dep.num_placed_operators(), 0);
}

TEST(DeploymentTest, FlowAccounting) {
  Fixture f;
  Deployment dep(&f.cluster, &f.catalog);
  ASSERT_TRUE(dep.AddFlow(0, 1, f.a).ok());
  EXPECT_DOUBLE_EQ(dep.NicOutUsed(0), 10.0);
  EXPECT_DOUBLE_EQ(dep.NicInUsed(1), 10.0);
  EXPECT_DOUBLE_EQ(dep.LinkUsed(0, 1), 10.0);
  ASSERT_TRUE(dep.RemoveFlow(0, 1, f.a).ok());
  EXPECT_DOUBLE_EQ(dep.NicOutUsed(0), 0.0);
  EXPECT_EQ(dep.num_flows(), 0);
}

TEST(DeploymentTest, DuplicateFlowRejected) {
  Fixture f;
  Deployment dep(&f.cluster, &f.catalog);
  ASSERT_TRUE(dep.AddFlow(0, 1, f.a).ok());
  EXPECT_FALSE(dep.AddFlow(0, 1, f.a).ok());
  EXPECT_FALSE(dep.AddFlow(0, 0, f.a).ok());  // self-flow
}

TEST(DeploymentTest, OperatorAccounting) {
  Fixture f;
  Deployment dep(&f.cluster, &f.catalog);
  ASSERT_TRUE(dep.PlaceOperator(0, f.join_ab).ok());
  EXPECT_DOUBLE_EQ(dep.CpuUsed(0), f.catalog.op(f.join_ab).cpu_cost);
  EXPECT_FALSE(dep.PlaceOperator(0, f.join_ab).ok());  // duplicate
  ASSERT_TRUE(dep.RemoveOperator(0, f.join_ab).ok());
  EXPECT_DOUBLE_EQ(dep.CpuUsed(0), 0.0);
}

TEST(DeploymentTest, ServingConsumesNicOut) {
  Fixture f;
  Deployment dep(&f.cluster, &f.catalog);
  ASSERT_TRUE(dep.SetServing(f.a, 0).ok());
  EXPECT_DOUBLE_EQ(dep.NicOutUsed(0), 10.0);
  EXPECT_EQ(dep.ServingHost(f.a), 0);
  ASSERT_TRUE(dep.ClearServing(f.a).ok());
  EXPECT_DOUBLE_EQ(dep.NicOutUsed(0), 0.0);
}

TEST(DeploymentTest, GroundedBaseStreamAtSource) {
  Fixture f;
  Deployment dep(&f.cluster, &f.catalog);
  const auto grounded = dep.GroundedAvailability();
  EXPECT_TRUE(grounded.at(0, f.a));
  EXPECT_FALSE(grounded.at(1, f.a));
  EXPECT_TRUE(grounded.at(1, f.b));
}

TEST(DeploymentTest, GroundedThroughFlowAndOperator) {
  Fixture f;
  Deployment dep(&f.cluster, &f.catalog);
  // b flows 1 -> 0; join at 0 produces ab; ab flows 0 -> 2.
  ASSERT_TRUE(dep.AddFlow(1, 0, f.b).ok());
  ASSERT_TRUE(dep.PlaceOperator(0, f.join_ab).ok());
  ASSERT_TRUE(dep.AddFlow(0, 2, f.ab).ok());
  const auto grounded = dep.GroundedAvailability();
  EXPECT_TRUE(grounded.at(0, f.b));
  EXPECT_TRUE(grounded.at(0, f.ab));
  EXPECT_TRUE(grounded.at(2, f.ab));
  EXPECT_FALSE(grounded.at(1, f.ab));
  EXPECT_TRUE(dep.Validate().ok());
}

TEST(DeploymentTest, AcausalFlowCycleNotGrounded) {
  Fixture f;
  Deployment dep(&f.cluster, &f.catalog);
  // Hosts 1 and 2 send b to each other, but neither generates it
  // (source is host 1... use stream a whose source is host 0).
  ASSERT_TRUE(dep.AddFlow(1, 2, f.a).ok());
  ASSERT_TRUE(dep.AddFlow(2, 1, f.a).ok());
  const auto grounded = dep.GroundedAvailability();
  EXPECT_FALSE(grounded.at(1, f.a));
  EXPECT_FALSE(grounded.at(2, f.a));
  EXPECT_FALSE(dep.Validate().ok());  // acausal flows rejected
}

TEST(DeploymentTest, OperatorMissingInputInvalid) {
  Fixture f;
  Deployment dep(&f.cluster, &f.catalog);
  ASSERT_TRUE(dep.PlaceOperator(2, f.join_ab).ok());  // no inputs at host 2
  EXPECT_FALSE(dep.Validate().ok());
}

TEST(DeploymentTest, ServingUngroundedStreamInvalid) {
  Fixture f;
  Deployment dep(&f.cluster, &f.catalog);
  ASSERT_TRUE(dep.SetServing(f.ab, 0).ok());
  EXPECT_FALSE(dep.Validate().ok());
}

TEST(DeploymentTest, CpuOverBudgetDetected) {
  Fixture f;
  // Tiny CPU budget.
  Cluster small(2, HostSpec{1e-6, 100.0, 100.0, ""}, 1000.0);
  Deployment dep(&small, &f.catalog);
  ASSERT_TRUE(dep.AddFlow(1, 0, f.b).ok());
  ASSERT_TRUE(dep.PlaceOperator(0, f.join_ab).ok());
  const Status v = dep.Validate();
  EXPECT_FALSE(v.ok());
  EXPECT_TRUE(v.IsResourceExhausted());
}

TEST(DeploymentTest, LinkOverBudgetDetected) {
  Fixture f;
  Cluster tight(2, HostSpec{1.0, 100.0, 100.0, ""}, 5.0);  // 5 Mbps links
  Deployment dep(&tight, &f.catalog);
  ASSERT_TRUE(dep.AddFlow(0, 1, f.a).ok());  // 10 Mbps > 5 Mbps
  EXPECT_FALSE(dep.Validate().ok());
}

TEST(DeploymentTest, CapacityHelpers) {
  Fixture f;
  Cluster tight(2, HostSpec{1.0, 15.0, 15.0, ""}, 1000.0);
  Deployment dep(&tight, &f.catalog);
  EXPECT_TRUE(dep.CanAddFlow(0, 1, f.a));
  ASSERT_TRUE(dep.AddFlow(0, 1, f.a).ok());
  EXPECT_FALSE(dep.CanAddFlow(0, 1, f.b));  // NIC out would hit 20 > 15
  EXPECT_FALSE(dep.CanServe(f.a, 0));       // 10 used + 10 more > 15
  EXPECT_TRUE(dep.CanServe(f.a, 1));        // host 1 has only 10 in
}

TEST(DeploymentTest, CopySemantics) {
  Fixture f;
  Deployment dep(&f.cluster, &f.catalog);
  ASSERT_TRUE(dep.AddFlow(1, 0, f.b).ok());
  Deployment copy = dep;
  ASSERT_TRUE(copy.PlaceOperator(0, f.join_ab).ok());
  EXPECT_EQ(dep.num_placed_operators(), 0);  // original untouched
  EXPECT_EQ(copy.num_placed_operators(), 1);
}

// ------------------------------------------------------------ QueryPlan

TEST(DeploymentTest, VersionCountsEverySuccessfulMutation) {
  Fixture f;
  Deployment dep(&f.cluster, &f.catalog);
  const uint64_t v0 = dep.version();
  ASSERT_TRUE(dep.AddFlow(0, 1, f.a).ok());
  EXPECT_EQ(dep.version(), v0 + 1);
  // Failed mutators do not move the version.
  EXPECT_FALSE(dep.AddFlow(0, 1, f.a).ok());
  EXPECT_EQ(dep.version(), v0 + 1);
  ASSERT_TRUE(dep.RemoveFlow(0, 1, f.a).ok());
  EXPECT_EQ(dep.version(), v0 + 2);
  // Ledger recomputes move the full version but not the structural
  // one — the PlanCache staleness key must ignore pure rate installs
  // yet catch every flow/placement/serving change.
  const uint64_t s0 = dep.structure_version();
  dep.RecomputeAggregates();
  EXPECT_EQ(dep.version(), v0 + 3);
  EXPECT_EQ(dep.structure_version(), s0);
  ASSERT_TRUE(dep.PlaceOperator(1, f.join_ab).ok());
  EXPECT_EQ(dep.structure_version(), s0 + 1);
}

TEST(DeploymentTest, JournalReplayReproducesStateExactly) {
  Fixture f;
  Deployment dep(&f.cluster, &f.catalog);
  ASSERT_TRUE(dep.PlaceOperator(1, f.join_ab).ok());

  dep.EnableJournal(64);
  const Deployment epoch_start = dep;  // the journal's replay base

  ASSERT_TRUE(dep.AddFlow(0, 1, f.a).ok());
  ASSERT_TRUE(dep.AddFlow(1, 2, f.ab).ok());
  ASSERT_TRUE(dep.SetServing(f.ab, 2).ok());
  ASSERT_TRUE(dep.RemoveFlow(1, 2, f.ab).ok());
  ASSERT_TRUE(dep.ClearServing(f.ab).ok());
  dep.RecomputeAggregates();
  EXPECT_FALSE(dep.journal_truncated());

  Deployment replayed = epoch_start;
  ASSERT_TRUE(replayed.ApplyJournal(dep.journal()).ok());
  EXPECT_EQ(replayed.Fingerprint(), dep.Fingerprint());
  EXPECT_DOUBLE_EQ(replayed.NicOutUsed(0), dep.NicOutUsed(0));
  EXPECT_DOUBLE_EQ(replayed.NicOutUsed(1), dep.NicOutUsed(1));
  EXPECT_DOUBLE_EQ(replayed.CpuUsed(1), dep.CpuUsed(1));
}

TEST(DeploymentTest, JournalOverflowTruncatesAndStopsRecording) {
  Fixture f;
  Deployment dep(&f.cluster, &f.catalog);
  dep.EnableJournal(3);
  // Each add/remove pair is two records: the fourth mutation overflows.
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(dep.AddFlow(0, 1, f.a).ok());
    ASSERT_TRUE(dep.RemoveFlow(0, 1, f.a).ok());
  }
  // Memory stays bounded: the journal was dropped, not grown, and the
  // truncation is visible so consumers rebase instead of replaying.
  EXPECT_TRUE(dep.journal_truncated());
  EXPECT_TRUE(dep.journal().empty());
  // Re-enabling starts a fresh, valid epoch.
  dep.EnableJournal(16);
  ASSERT_TRUE(dep.AddFlow(0, 1, f.a).ok());
  EXPECT_FALSE(dep.journal_truncated());
  EXPECT_EQ(dep.journal().size(), 1u);
}

TEST(QueryPlanTest, ExtractSimplePlan) {
  Fixture f;
  Deployment dep(&f.cluster, &f.catalog);
  ASSERT_TRUE(dep.AddFlow(1, 0, f.b).ok());
  ASSERT_TRUE(dep.PlaceOperator(0, f.join_ab).ok());
  ASSERT_TRUE(dep.SetServing(f.ab, 0).ok());
  ASSERT_TRUE(dep.Validate().ok());

  auto plan = ExtractPlan(dep, f.ab);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->query, f.ab);
  EXPECT_EQ(plan->serving_host, 0);
  EXPECT_TRUE(ValidatePlanTree(*plan, f.catalog).ok());
  // Root is the join operator on host 0; b arrives via a relay arc.
  EXPECT_EQ(plan->root->kind, PlanNodeKind::kOperator);
  EXPECT_EQ(plan->root->op, f.join_ab);
  EXPECT_EQ(plan->RelayCount(), 1);
  EXPECT_GE(plan->NodeCount(), 4);
}

TEST(QueryPlanTest, ExtractFailsWhenNotServed) {
  Fixture f;
  Deployment dep(&f.cluster, &f.catalog);
  EXPECT_FALSE(ExtractPlan(dep, f.ab).ok());
}

TEST(QueryPlanTest, RelayChainExtraction) {
  Fixture f;
  Deployment dep(&f.cluster, &f.catalog);
  // a relayed 0 -> 1 -> 2, served at 2.
  ASSERT_TRUE(dep.AddFlow(0, 1, f.a).ok());
  ASSERT_TRUE(dep.AddFlow(1, 2, f.a).ok());
  ASSERT_TRUE(dep.SetServing(f.a, 2).ok());
  ASSERT_TRUE(dep.Validate().ok());
  auto plan = ExtractPlan(dep, f.a);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(ValidatePlanTree(*plan, f.catalog).ok());
  EXPECT_EQ(plan->RelayCount(), 2);
}

TEST(QueryPlanTest, ValidatorCatchesC1Violation) {
  Fixture f;
  QueryPlan plan;
  plan.query = f.ab;
  plan.serving_host = 0;
  plan.root = std::make_unique<PlanNode>();
  plan.root->kind = PlanNodeKind::kBaseSource;
  plan.root->host = 0;
  plan.root->stream = f.a;  // wrong: root must emit ab
  EXPECT_FALSE(ValidatePlanTree(plan, f.catalog).ok());
}

TEST(QueryPlanTest, ValidatorCatchesC3Violation) {
  Fixture f;
  QueryPlan plan;
  plan.query = f.a;
  plan.serving_host = 1;
  auto relay = std::make_unique<PlanNode>();
  relay->kind = PlanNodeKind::kRelay;
  relay->host = 1;
  relay->stream = f.a;
  // No children: relay must have exactly one.
  plan.root = std::move(relay);
  EXPECT_FALSE(ValidatePlanTree(plan, f.catalog).ok());
}

TEST(QueryPlanTest, ValidatorCatchesC4Violation) {
  Fixture f;
  QueryPlan plan;
  plan.query = f.a;
  plan.serving_host = 1;
  auto leaf = std::make_unique<PlanNode>();
  leaf->kind = PlanNodeKind::kBaseSource;
  leaf->host = 1;  // source of a is host 0
  leaf->stream = f.a;
  plan.root = std::move(leaf);
  EXPECT_FALSE(ValidatePlanTree(plan, f.catalog).ok());
}

TEST(QueryPlanTest, ToStringMentionsHostsAndStreams) {
  Fixture f;
  Deployment dep(&f.cluster, &f.catalog);
  ASSERT_TRUE(dep.AddFlow(1, 0, f.b).ok());
  ASSERT_TRUE(dep.PlaceOperator(0, f.join_ab).ok());
  ASSERT_TRUE(dep.SetServing(f.ab, 0).ok());
  auto plan = ExtractPlan(dep, f.ab);
  ASSERT_TRUE(plan.ok());
  const std::string text = plan->ToString(f.catalog);
  EXPECT_NE(text.find("h0"), std::string::npos);
  EXPECT_NE(text.find("join"), std::string::npos);
}

// ------------------------------------------------- DeploymentDelta

TEST(DeploymentDeltaTest, DiffThenApplyReproducesTheTarget) {
  Fixture f;
  Deployment base(&f.cluster, &f.catalog);
  ASSERT_TRUE(base.AddFlow(1, 0, f.b).ok());

  Deployment next = base;  // value type: speculative copy
  ASSERT_TRUE(next.PlaceOperator(0, f.join_ab).ok());
  ASSERT_TRUE(next.AddFlow(0, 2, f.ab).ok());
  ASSERT_TRUE(next.SetServing(f.ab, 2).ok());
  ASSERT_TRUE(next.RemoveFlow(1, 0, f.b).ok());
  ASSERT_TRUE(next.AddFlow(1, 0, f.b).ok());  // re-added: no net change

  const DeploymentDelta delta = DiffDeployments(base, next);
  EXPECT_EQ(delta.ops_added.size(), 1u);
  EXPECT_TRUE(delta.ops_removed.empty());
  EXPECT_EQ(delta.flows_added.size(), 1u);
  EXPECT_TRUE(delta.flows_removed.empty());
  ASSERT_EQ(delta.serving_changes.size(), 1u);
  EXPECT_EQ(delta.serving_changes[0].stream, f.ab);
  EXPECT_EQ(delta.serving_changes[0].before, kInvalidHost);
  EXPECT_EQ(delta.serving_changes[0].after, 2);

  Deployment replay = base;
  ASSERT_TRUE(ApplyDeploymentDelta(delta, &replay).ok());
  EXPECT_EQ(replay.Fingerprint(), next.Fingerprint());
  EXPECT_TRUE(DiffDeployments(base, base).empty());
}

TEST(DeploymentDeltaTest, ApplySkipsWorkAnotherCommitAlreadyDid) {
  Fixture f;
  Deployment base(&f.cluster, &f.catalog);
  Deployment next = base;
  ASSERT_TRUE(next.PlaceOperator(0, f.join_ab).ok());
  const DeploymentDelta delta = DiffDeployments(base, next);

  // A competing commit placed the same operator first: applying the
  // delta shares it instead of failing.
  Deployment live = base;
  ASSERT_TRUE(live.PlaceOperator(0, f.join_ab).ok());
  ASSERT_TRUE(ApplyDeploymentDelta(delta, &live).ok());
  EXPECT_EQ(live.Fingerprint(), next.Fingerprint());
}

TEST(DeploymentDeltaTest, ApplyConflictsWhenServingDrifted) {
  Fixture f;
  Deployment base(&f.cluster, &f.catalog);
  ASSERT_TRUE(base.PlaceOperator(0, f.join_ab).ok());
  Deployment next = base;
  ASSERT_TRUE(next.SetServing(f.ab, 0).ok());
  const DeploymentDelta delta = DiffDeployments(base, next);

  // Meanwhile the live deployment started serving ab elsewhere: the
  // delta's `before` no longer matches and the apply must refuse.
  Deployment live = base;
  ASSERT_TRUE(live.AddFlow(0, 1, f.ab).ok());
  ASSERT_TRUE(live.SetServing(f.ab, 1).ok());
  const Status st = ApplyDeploymentDelta(delta, &live);
  EXPECT_TRUE(st.IsFailedPrecondition()) << st.ToString();
}

}  // namespace
}  // namespace sqpr
