#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "lp/model.h"
#include "lp/simplex.h"

namespace sqpr {
namespace lp {
namespace {

SimplexResult Solve(const Model& m) {
  SimplexSolver solver;
  return solver.Solve(m);
}

// ------------------------------------------------------------- Model API

TEST(LpModelTest, MergesDuplicateRowTerms) {
  Model m;
  const int x = m.AddVariable(0, 10, 1, "x");
  const int r = m.AddRow(0, 5, {{x, 1.0}, {x, 2.0}}, "r");
  ASSERT_EQ(m.row_terms(r).size(), 1u);
  EXPECT_DOUBLE_EQ(m.row_terms(r)[0].second, 3.0);
}

TEST(LpModelTest, DropsZeroCoefficients) {
  Model m;
  const int x = m.AddVariable(0, 1, 0, "x");
  const int y = m.AddVariable(0, 1, 0, "y");
  const int r = m.AddRow(0, 1, {{x, 0.0}, {y, 2.0}}, "r");
  ASSERT_EQ(m.row_terms(r).size(), 1u);
  EXPECT_EQ(m.row_terms(r)[0].first, y);
}

TEST(LpModelTest, CheckFeasibleDetectsRowViolation) {
  Model m;
  const int x = m.AddVariable(0, 10, 0, "x");
  m.AddRow(0, 3, {{x, 1.0}}, "cap");
  EXPECT_TRUE(m.CheckFeasible({2.0}, 1e-9).ok());
  EXPECT_FALSE(m.CheckFeasible({4.0}, 1e-9).ok());
}

TEST(LpModelTest, CheckFeasibleDetectsBoundViolation) {
  Model m;
  m.AddVariable(1, 2, 0, "x");
  EXPECT_FALSE(m.CheckFeasible({0.0}, 1e-9).ok());
}

TEST(LpModelTest, ObjectiveValue) {
  Model m;
  m.AddVariable(0, 1, 3, "x");
  m.AddVariable(0, 1, -2, "y");
  EXPECT_DOUBLE_EQ(m.ObjectiveValue({1.0, 0.5}), 2.0);
}

// ----------------------------------------------------------- Basic LPs

TEST(SimplexTest, TrivialBoundedMaximum) {
  // max x s.t. x in [0, 4]: optimum at the upper bound, no rows at all.
  Model m(Sense::kMaximize);
  m.AddVariable(0, 4, 1, "x");
  auto r = Solve(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, 4.0, 1e-8);
}

TEST(SimplexTest, TwoVariableTextbook) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  -> (2, 6), obj 36.
  Model m(Sense::kMaximize);
  const int x = m.AddVariable(0, kInf, 3, "x");
  const int y = m.AddVariable(0, kInf, 5, "y");
  m.AddRow(-kInf, 4, {{x, 1}}, "r1");
  m.AddRow(-kInf, 12, {{y, 2}}, "r2");
  m.AddRow(-kInf, 18, {{x, 3}, {y, 2}}, "r3");
  auto r = Solve(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, 36.0, 1e-7);
  EXPECT_NEAR(r.values[x], 2.0, 1e-7);
  EXPECT_NEAR(r.values[y], 6.0, 1e-7);
}

TEST(SimplexTest, Minimization) {
  // min x + y s.t. x + y >= 2, x,y >= 0 -> obj 2.
  Model m(Sense::kMinimize);
  const int x = m.AddVariable(0, kInf, 1, "x");
  const int y = m.AddVariable(0, kInf, 1, "y");
  m.AddRow(2, kInf, {{x, 1}, {y, 1}}, "cover");
  auto r = Solve(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, 2.0, 1e-7);
}

TEST(SimplexTest, EqualityConstraint) {
  // max x + 2y s.t. x + y == 3, x,y in [0, 2] -> (1, 2), obj 5.
  Model m(Sense::kMaximize);
  const int x = m.AddVariable(0, 2, 1, "x");
  const int y = m.AddVariable(0, 2, 2, "y");
  m.AddRow(3, 3, {{x, 1}, {y, 1}}, "eq");
  auto r = Solve(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, 5.0, 1e-7);
  EXPECT_NEAR(r.values[x], 1.0, 1e-7);
  EXPECT_NEAR(r.values[y], 2.0, 1e-7);
}

TEST(SimplexTest, InfeasibleDetected) {
  // x <= 1 and x >= 2 cannot both hold.
  Model m(Sense::kMaximize);
  const int x = m.AddVariable(0, kInf, 1, "x");
  m.AddRow(-kInf, 1, {{x, 1}}, "le");
  m.AddRow(2, kInf, {{x, 1}}, "ge");
  EXPECT_EQ(Solve(m).status, SolveStatus::kInfeasible);
}

TEST(SimplexTest, InfeasibleBoundsVsRow) {
  Model m(Sense::kMaximize);
  const int x = m.AddVariable(0, 1, 1, "x");
  const int y = m.AddVariable(0, 1, 1, "y");
  m.AddRow(3, kInf, {{x, 1}, {y, 1}}, "need3");
  EXPECT_EQ(Solve(m).status, SolveStatus::kInfeasible);
}

TEST(SimplexTest, UnboundedDetected) {
  Model m(Sense::kMaximize);
  m.AddVariable(0, kInf, 1, "x");
  EXPECT_EQ(Solve(m).status, SolveStatus::kUnbounded);
}

TEST(SimplexTest, UnboundedThroughRow) {
  // max x - y with x - y free to grow along the ray (t, t) ... constrain
  // x - y <= 5 is *not* added; the row x + 0y <= inf keeps it unbounded.
  Model m(Sense::kMaximize);
  const int x = m.AddVariable(0, kInf, 1, "x");
  const int y = m.AddVariable(0, kInf, -1, "y");
  m.AddRow(-kInf, kInf, {{x, 1}, {y, 1}}, "loose");
  EXPECT_EQ(Solve(m).status, SolveStatus::kUnbounded);
}

TEST(SimplexTest, FixedVariableRespected) {
  Model m(Sense::kMaximize);
  const int x = m.AddVariable(2, 2, 1, "x");  // fixed
  const int y = m.AddVariable(0, kInf, 1, "y");
  m.AddRow(-kInf, 5, {{x, 1}, {y, 1}}, "cap");
  auto r = Solve(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.values[x], 2.0, 1e-9);
  EXPECT_NEAR(r.values[y], 3.0, 1e-7);
}

TEST(SimplexTest, NegativeLowerBounds) {
  // min x s.t. x >= -3 -> -3.
  Model m(Sense::kMinimize);
  m.AddVariable(-3, 10, 1, "x");
  auto r = Solve(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, -3.0, 1e-8);
}

TEST(SimplexTest, FreeVariable) {
  // min x + y, x free, y >= 0, x + y >= 1, x >= -4 via row.
  Model m(Sense::kMinimize);
  const int x = m.AddVariable(-kInf, kInf, 1, "x");
  const int y = m.AddVariable(0, kInf, 1, "y");
  m.AddRow(1, kInf, {{x, 1}, {y, 1}}, "cover");
  m.AddRow(-4, kInf, {{x, 1}}, "xlb");
  auto r = Solve(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, 1.0, 1e-7);
}

TEST(SimplexTest, DegenerateVertexStillSolves) {
  // Multiple redundant constraints through the optimum.
  Model m(Sense::kMaximize);
  const int x = m.AddVariable(0, kInf, 1, "x");
  const int y = m.AddVariable(0, kInf, 1, "y");
  m.AddRow(-kInf, 4, {{x, 1}, {y, 1}}, "a");
  m.AddRow(-kInf, 4, {{x, 1}, {y, 1}}, "b");  // duplicate
  m.AddRow(-kInf, 8, {{x, 2}, {y, 2}}, "c");  // scaled duplicate
  m.AddRow(-kInf, 4, {{x, 1}}, "d");
  m.AddRow(-kInf, 4, {{y, 1}}, "e");
  auto r = Solve(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, 4.0, 1e-7);
}

TEST(SimplexTest, RangeRow) {
  // 1 <= x + y <= 2, max x + 2y with x,y in [0,2] -> y=2 infeasible (sum
  // cap), optimum y=2,x=0 -> sum=2 OK, obj 4.
  Model m(Sense::kMaximize);
  const int x = m.AddVariable(0, 2, 1, "x");
  const int y = m.AddVariable(0, 2, 2, "y");
  m.AddRow(1, 2, {{x, 1}, {y, 1}}, "range");
  auto r = Solve(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, 4.0, 1e-7);
  EXPECT_NEAR(r.values[y], 2.0, 1e-7);
}

TEST(SimplexTest, RangeRowLowerSideActive) {
  // min x + y s.t. 2 <= x + y <= 5 -> obj 2.
  Model m(Sense::kMinimize);
  const int x = m.AddVariable(0, kInf, 1, "x");
  const int y = m.AddVariable(0, kInf, 1, "y");
  m.AddRow(2, 5, {{x, 1}, {y, 1}}, "range");
  auto r = Solve(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, 2.0, 1e-7);
}

TEST(SimplexTest, SolutionSatisfiesModel) {
  Model m(Sense::kMaximize);
  const int x = m.AddVariable(0, 3, 2, "x");
  const int y = m.AddVariable(0, 3, 1, "y");
  const int z = m.AddVariable(0, 3, 3, "z");
  m.AddRow(-kInf, 6, {{x, 1}, {y, 2}, {z, 1}}, "a");
  m.AddRow(-kInf, 5, {{x, 1}, {y, 1}, {z, 2}}, "b");
  m.AddRow(1, kInf, {{x, 1}, {y, 1}}, "c");
  auto r = Solve(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_TRUE(m.CheckFeasible(r.values, 1e-6).ok());
}

// --------------------------------------------- Randomised property sweep

struct RandomLpCase {
  int num_vars;
  int num_rows;
  uint64_t seed;
};

class RandomLpTest : public ::testing::TestWithParam<RandomLpCase> {};

// Every randomly generated *feasible-by-construction* LP must (a) solve to
// Optimal, (b) produce a solution that satisfies the model, and (c) reach
// an objective at least as good as the known feasible reference point.
TEST_P(RandomLpTest, OptimalBeatsReferencePoint) {
  const RandomLpCase& tc = GetParam();
  Rng rng(tc.seed);
  Model m(Sense::kMaximize);

  // Reference point drawn inside the box; rows are built around it so the
  // LP is feasible by construction.
  std::vector<double> ref(tc.num_vars);
  for (int v = 0; v < tc.num_vars; ++v) {
    const double ub = rng.NextDouble(1.0, 10.0);
    m.AddVariable(0.0, ub, rng.NextDouble(-1.0, 2.0));
    ref[v] = rng.NextDouble(0.0, ub);
  }
  for (int r = 0; r < tc.num_rows; ++r) {
    std::vector<std::pair<int, double>> terms;
    double activity = 0.0;
    for (int v = 0; v < tc.num_vars; ++v) {
      if (rng.NextBool(0.4)) {
        const double coef = rng.NextDouble(-2.0, 3.0);
        terms.emplace_back(v, coef);
        activity += coef * ref[v];
      }
    }
    if (terms.empty()) continue;
    const double slackness = rng.NextDouble(0.0, 4.0);
    m.AddRow(-kInf, activity + slackness, std::move(terms));
  }

  auto result = Solve(m);
  ASSERT_EQ(result.status, SolveStatus::kOptimal) << "seed " << tc.seed;
  EXPECT_TRUE(m.CheckFeasible(result.values, 1e-5).ok()) << "seed " << tc.seed;
  EXPECT_GE(result.objective, m.ObjectiveValue(ref) - 1e-6)
      << "seed " << tc.seed;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomLpTest,
    ::testing::Values(RandomLpCase{3, 2, 1}, RandomLpCase{5, 4, 2},
                      RandomLpCase{8, 6, 3}, RandomLpCase{12, 10, 4},
                      RandomLpCase{20, 15, 5}, RandomLpCase{20, 30, 6},
                      RandomLpCase{40, 25, 7}, RandomLpCase{60, 40, 8},
                      RandomLpCase{6, 12, 9}, RandomLpCase{30, 30, 10},
                      RandomLpCase{50, 10, 11}, RandomLpCase{10, 50, 12}));

// Randomised equality-constrained LPs exercise phase 1 artificials.
class RandomEqualityLpTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomEqualityLpTest, PhaseOneFindsFeasiblePoint) {
  Rng rng(GetParam());
  const int n = 8;
  Model m(Sense::kMinimize);
  std::vector<double> ref(n);
  for (int v = 0; v < n; ++v) {
    m.AddVariable(0.0, 5.0, rng.NextDouble(0.0, 1.0));
    ref[v] = rng.NextDouble(0.5, 4.5);
  }
  for (int r = 0; r < 4; ++r) {
    std::vector<std::pair<int, double>> terms;
    double activity = 0.0;
    for (int v = 0; v < n; ++v) {
      if (rng.NextBool(0.5)) {
        const double coef = rng.NextDouble(0.5, 2.0);
        terms.emplace_back(v, coef);
        activity += coef * ref[v];
      }
    }
    if (terms.empty()) continue;
    m.AddRow(activity, activity, std::move(terms));  // equality through ref
  }
  auto result = Solve(m);
  ASSERT_EQ(result.status, SolveStatus::kOptimal);
  EXPECT_TRUE(m.CheckFeasible(result.values, 1e-5).ok());
  EXPECT_LE(result.objective, m.ObjectiveValue(ref) + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomEqualityLpTest,
                         ::testing::Range<uint64_t>(100, 120));

}  // namespace
}  // namespace lp
}  // namespace sqpr

namespace sqpr {
namespace lp {
namespace {

// ------------------------------------------------------ Warm-start bases

TEST(WarmStartTest, ReusingOptimalBasisConvergesInstantly) {
  Model m(Sense::kMaximize);
  const int x = m.AddVariable(0, kInf, 3, "x");
  const int y = m.AddVariable(0, kInf, 5, "y");
  m.AddRow(-kInf, 4, {{x, 1}}, "r1");
  m.AddRow(-kInf, 12, {{y, 2}}, "r2");
  m.AddRow(-kInf, 18, {{x, 3}, {y, 2}}, "r3");
  SimplexSolver cold;
  auto first = cold.Solve(m);
  ASSERT_EQ(first.status, SolveStatus::kOptimal);

  SimplexOptions warm_options;
  warm_options.warm_basis = &first.basis_state;
  SimplexSolver warm(warm_options);
  auto second = warm.Solve(m);
  ASSERT_EQ(second.status, SolveStatus::kOptimal);
  EXPECT_NEAR(second.objective, first.objective, 1e-9);
  EXPECT_LE(second.iterations, 2);  // already optimal
}

TEST(WarmStartTest, BoundChangeResolvesInFewIterations) {
  // Simulates a branch-and-bound child: solve, tighten one variable,
  // re-solve from the parent basis.
  Model m(Sense::kMaximize);
  const int x = m.AddVariable(0, 10, 2, "x");
  const int y = m.AddVariable(0, 10, 1, "y");
  m.AddRow(-kInf, 12, {{x, 1}, {y, 1}}, "cap");
  SimplexSolver cold;
  auto first = cold.Solve(m);
  ASSERT_EQ(first.status, SolveStatus::kOptimal);
  EXPECT_NEAR(first.objective, 22.0, 1e-7);  // x=10, y=2

  m.SetVariableBounds(x, 0, 5);  // branch: x <= 5
  SimplexOptions warm_options;
  warm_options.warm_basis = &first.basis_state;
  SimplexSolver warm(warm_options);
  auto second = warm.Solve(m);
  ASSERT_EQ(second.status, SolveStatus::kOptimal);
  EXPECT_NEAR(second.objective, 17.0, 1e-7);  // x=5, y=7
  EXPECT_TRUE(m.CheckFeasible(second.values, 1e-6).ok());
}

TEST(WarmStartTest, MismatchedWarmBasisIgnored) {
  Model m(Sense::kMaximize);
  m.AddVariable(0, 4, 1, "x");
  std::vector<BasisState> bogus = {BasisState::kBasic, BasisState::kBasic,
                                   BasisState::kBasic};
  SimplexOptions options;
  options.warm_basis = &bogus;
  SimplexSolver solver(options);
  auto r = solver.Solve(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, 4.0, 1e-8);
}

TEST(WarmStartTest, WarmBasisWithAddedRowsPadsSlacks) {
  Model m(Sense::kMaximize);
  const int x = m.AddVariable(0, 10, 1, "x");
  const int y = m.AddVariable(0, 10, 1, "y");
  m.AddRow(-kInf, 8, {{x, 1}, {y, 1}}, "cap");
  SimplexSolver cold;
  auto first = cold.Solve(m);
  ASSERT_EQ(first.status, SolveStatus::kOptimal);

  // Add a cut after the fact (lazy-constraint pattern).
  m.AddRow(-kInf, 3, {{x, 1}}, "cut");
  SimplexOptions warm_options;
  warm_options.warm_basis = &first.basis_state;
  SimplexSolver warm(warm_options);
  auto second = warm.Solve(m);
  ASSERT_EQ(second.status, SolveStatus::kOptimal);
  EXPECT_NEAR(second.objective, 8.0, 1e-7);  // x=3, y=5
  EXPECT_TRUE(m.CheckFeasible(second.values, 1e-6).ok());
}

TEST(WarmStartTest, InfeasibleAfterBranchDetected) {
  Model m(Sense::kMaximize);
  const int x = m.AddVariable(0, 10, 1, "x");
  m.AddRow(4, kInf, {{x, 1}}, "ge4");
  SimplexSolver cold;
  auto first = cold.Solve(m);
  ASSERT_EQ(first.status, SolveStatus::kOptimal);
  m.SetVariableBounds(x, 0, 2);  // conflicts with x >= 4
  SimplexOptions warm_options;
  warm_options.warm_basis = &first.basis_state;
  SimplexSolver warm(warm_options);
  EXPECT_EQ(warm.Solve(m).status, SolveStatus::kInfeasible);
}

// Randomised: warm-started re-solves after a bound change must agree
// with cold solves on the same modified model.
class WarmColdAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WarmColdAgreementTest, SameOptimum) {
  Rng rng(GetParam());
  Model m(Sense::kMaximize);
  const int n = 12;
  std::vector<double> ref(n);
  for (int v = 0; v < n; ++v) {
    m.AddVariable(0.0, 4.0, rng.NextDouble(-1.0, 2.0));
    ref[v] = rng.NextDouble(0.0, 4.0);
  }
  for (int r = 0; r < 8; ++r) {
    std::vector<std::pair<int, double>> terms;
    double activity = 0.0;
    for (int v = 0; v < n; ++v) {
      if (rng.NextBool(0.4)) {
        const double coef = rng.NextDouble(0.1, 2.0);
        terms.emplace_back(v, coef);
        activity += coef * ref[v];
      }
    }
    if (terms.empty()) continue;
    m.AddRow(-kInf, activity + rng.NextDouble(0.0, 2.0), std::move(terms));
  }
  SimplexSolver cold;
  auto base = cold.Solve(m);
  ASSERT_EQ(base.status, SolveStatus::kOptimal);

  // Tighten a random variable's upper bound below its current value.
  const int victim = static_cast<int>(rng.NextBounded(n));
  m.SetVariableBounds(victim, 0.0, base.values[victim] / 2.0);

  auto cold_again = cold.Solve(m);
  SimplexOptions warm_options;
  warm_options.warm_basis = &base.basis_state;
  SimplexSolver warm(warm_options);
  auto warm_again = warm.Solve(m);
  ASSERT_EQ(cold_again.status, SolveStatus::kOptimal);
  ASSERT_EQ(warm_again.status, SolveStatus::kOptimal);
  EXPECT_NEAR(warm_again.objective, cold_again.objective, 1e-5)
      << "seed " << GetParam();
  EXPECT_TRUE(m.CheckFeasible(warm_again.values, 1e-5).ok());
}

INSTANTIATE_TEST_SUITE_P(Sweep, WarmColdAgreementTest,
                         ::testing::Range<uint64_t>(300, 315));

}  // namespace
}  // namespace lp
}  // namespace sqpr
