// Randomised lifecycle fuzzing: interleave submissions, removals and
// §IV-B replans against the SQPR planner and audit the full §III
// invariants after every mutation. Any sequencing bug in commit /
// garbage-collection / ledger maintenance shows up as a Validate()
// failure with the seed that produced it.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.h"
#include "monitor/resource_monitor.h"
#include "plan/query_plan.h"
#include "planner/sqpr/sqpr_planner.h"
#include "workload/generator.h"

namespace sqpr {
namespace {

class PlannerFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(PlannerFuzzTest, InvariantsHoldUnderRandomLifecycles) {
  const uint64_t seed = 0xf022 + static_cast<uint64_t>(GetParam());
  Rng rng(seed);

  Catalog catalog(CostModel{});
  Cluster cluster(4, HostSpec{0.6, 90.0, 90.0, ""}, 180.0);
  WorkloadConfig wc;
  wc.num_base_streams = 24;
  wc.num_queries = 40;
  wc.arities = {2, 3};
  wc.seed = seed;
  Workload workload = *GenerateWorkload(wc, 4, &catalog);

  SqprPlanner::Options options;
  options.timeout_ms = 80;
  SqprPlanner planner(&cluster, &catalog, options);

  size_t next_query = 0;
  for (int step = 0; step < 60; ++step) {
    const double dice = rng.NextDouble();
    if (dice < 0.6 && next_query < workload.queries.size()) {
      // Submit the next workload query.
      Result<PlanningStats> stats =
          planner.SubmitQuery(workload.queries[next_query++]);
      ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    } else if (dice < 0.8 && !planner.admitted_queries().empty()) {
      // Remove a random admitted query.
      const auto& admitted = planner.admitted_queries();
      if (!admitted.empty()) {
        const StreamId victim =
            admitted[rng.NextUint64() % admitted.size()];
        ASSERT_TRUE(planner.RemoveQuery(victim).ok());
      }
    } else if (!planner.admitted_queries().empty()) {
      // Replan a random admitted query (§IV-B path).
      const auto& admitted = planner.admitted_queries();
      const StreamId q = admitted[rng.NextUint64() % admitted.size()];
      Result<std::vector<PlanningStats>> stats = planner.ReplanQueries({q});
      ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    }

    // Full §III audit after every mutation.
    const Status audit = planner.deployment().Validate();
    ASSERT_TRUE(audit.ok())
        << "seed " << seed << " step " << step << ": " << audit.ToString();

    // Every admitted query must have an extractable, C1-C4-valid plan.
    for (StreamId q : planner.admitted_queries()) {
      Result<QueryPlan> plan = ExtractPlan(planner.deployment(), q);
      ASSERT_TRUE(plan.ok())
          << "seed " << seed << " step " << step << " query " << q << ": "
          << plan.status().ToString();
    }

    // No admitted duplicates.
    const std::set<StreamId> unique(planner.admitted_queries().begin(),
                                    planner.admitted_queries().end());
    ASSERT_EQ(unique.size(), planner.admitted_queries().size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlannerFuzzTest, ::testing::Range(0, 8));

/// The same lifecycle fuzz with periodic measured-rate perturbations
/// through the §IV-B adaptive cycle.
class AdaptiveFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(AdaptiveFuzzTest, AdaptiveCycleKeepsInvariants) {
  const uint64_t seed = 0xad4e + static_cast<uint64_t>(GetParam());
  Rng rng(seed);

  Catalog catalog(CostModel{});
  Cluster cluster(3, HostSpec{0.5, 120.0, 120.0, ""}, 240.0);
  std::vector<StreamId> base;
  for (int i = 0; i < 10; ++i) {
    base.push_back(catalog.AddBaseStream(i % 3, 10.0));
  }
  SqprPlanner::Options options;
  options.timeout_ms = 100;
  SqprPlanner planner(&cluster, &catalog, options);
  ResourceMonitor monitor(&catalog, DriftOptions{});

  for (int round = 0; round < 6; ++round) {
    // Submit a couple of random 2-way joins.
    for (int i = 0; i < 3; ++i) {
      const StreamId a = base[rng.NextUint64() % base.size()];
      StreamId b = base[rng.NextUint64() % base.size()];
      if (a == b) continue;
      Result<StreamId> q = catalog.CanonicalJoinStream({a, b});
      ASSERT_TRUE(q.ok());
      ASSERT_TRUE(planner.SubmitQuery(*q).ok());
    }

    // Perturb one base stream's measured rate in [5, 25] Mbps.
    std::map<StreamId, double> measured;
    const StreamId drifting = base[rng.NextUint64() % base.size()];
    measured[drifting] = 5.0 + 20.0 * rng.NextDouble();

    const DriftReport report = monitor.Analyze(
        measured, std::vector<double>(3, 0.5), planner.admitted_queries());
    Result<std::vector<PlanningStats>> stats =
        AdaptiveReplan(&planner, &catalog, measured, report);
    ASSERT_TRUE(stats.ok())
        << "seed " << seed << " round " << round << ": "
        << stats.status().ToString();

    const Status audit = planner.deployment().Validate();
    ASSERT_TRUE(audit.ok())
        << "seed " << seed << " round " << round << ": " << audit.ToString();
    // The installed estimate must be what the monitor measured.
    EXPECT_DOUBLE_EQ(catalog.stream(drifting).rate_mbps, measured[drifting]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdaptiveFuzzTest, ::testing::Range(0, 6));

/// Model-patch fuzzing for the incremental solve path: random
/// interleavings of admissions, evictions and rate drift against the
/// planner with Options::verify_incremental on — every cache hit then
/// rebuilds the model from scratch and SQPR_CHECKs the patched skeleton
/// bit-identical (variable/row counts, every bound, term and objective
/// coefficient), so a stale row or column surviving a structure change
/// aborts the test at the first divergent solve.
class ModelPatchFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(ModelPatchFuzzTest, PatchedModelsMatchFreshBuilds) {
  const uint64_t seed = 0x9a7c + static_cast<uint64_t>(GetParam());
  Rng rng(seed);

  Catalog catalog(CostModel{});
  Cluster cluster(4, HostSpec{0.6, 90.0, 90.0, ""}, 180.0);
  WorkloadConfig wc;
  wc.num_base_streams = 16;
  wc.num_queries = 30;
  wc.arities = {2, 3};
  wc.seed = seed;
  Workload workload = *GenerateWorkload(wc, 4, &catalog);

  SqprPlanner::Options options;
  options.timeout_ms = 150;
  options.verify_incremental = true;
  SqprPlanner planner(&cluster, &catalog, options);
  ResourceMonitor monitor(&catalog, DriftOptions{});

  int64_t patched = 0;
  size_t next_query = 0;
  for (int step = 0; step < 50; ++step) {
    const double dice = rng.NextDouble();
    if (dice < 0.45 && next_query < workload.queries.size()) {
      Result<PlanningStats> stats =
          planner.SubmitQuery(workload.queries[next_query++]);
      ASSERT_TRUE(stats.ok()) << stats.status().ToString();
      if (stats->model_patched) ++patched;
    } else if (dice < 0.6 && !planner.admitted_queries().empty()) {
      const auto& admitted = planner.admitted_queries();
      const StreamId victim = admitted[rng.NextUint64() % admitted.size()];
      ASSERT_TRUE(planner.RemoveQuery(victim).ok());
    } else if (dice < 0.9 && !planner.admitted_queries().empty()) {
      // Replans repeat a solve structure almost verbatim — the densest
      // source of cache hits, hence of verified patches.
      const auto& admitted = planner.admitted_queries();
      const StreamId q = admitted[rng.NextUint64() % admitted.size()];
      Result<std::vector<PlanningStats>> stats = planner.ReplanQueries({q});
      ASSERT_TRUE(stats.ok()) << stats.status().ToString();
      if (stats->front().model_patched) ++patched;
    } else if (!planner.admitted_queries().empty()) {
      // Drift: bumps the catalog's rate epoch, so every cached model
      // must become unreachable (a hit *after* this would verify
      // against a fresh build under the new rates and abort on the
      // first stale coefficient).
      std::map<StreamId, double> measured;
      const StreamId drifting =
          workload
              .base_streams[rng.NextUint64() % workload.base_streams.size()];
      measured[drifting] = 5.0 + 20.0 * rng.NextDouble();
      const DriftReport report =
          monitor.Analyze(measured, std::vector<double>(4, 0.5),
                          planner.admitted_queries());
      Result<std::vector<PlanningStats>> stats =
          AdaptiveReplan(&planner, &catalog, measured, report);
      ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    }
    const Status audit = planner.deployment().Validate();
    ASSERT_TRUE(audit.ok())
        << "seed " << seed << " step " << step << ": " << audit.ToString();
  }
  // The fuzz must actually hit the cache for the verification to mean
  // anything.
  EXPECT_GT(patched, 0) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelPatchFuzzTest, ::testing::Range(0, 6));

}  // namespace
}  // namespace sqpr
