// Federated data-centre planning (§VII): a 12-host DSPS split into three
// 4-host sites. Each query is first assigned to a site (by where its
// base streams live), then planned with the SQPR MILP restricted to that
// site plus the border hosts sourcing remote streams — so planning cost
// stays bounded as the federation grows.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/hierarchical_sites

#include <cstdio>

#include "model/catalog.h"
#include "model/cluster.h"
#include "planner/hierarchical/hierarchical_planner.h"
#include "workload/generator.h"

using namespace sqpr;

int main() {
  // Three "data centres" of four hosts each.
  Cluster cluster(12, HostSpec{1.0, 150.0, 150.0, ""}, 300.0);
  Catalog catalog{CostModel{}};

  WorkloadConfig wc;
  wc.num_base_streams = 72;  // six per host, uniform spread
  wc.num_queries = 120;
  wc.arities = {2, 3};
  wc.seed = 2026;
  Workload workload = *GenerateWorkload(wc, cluster.num_hosts(), &catalog);

  HierarchicalPlanner::Options options;
  options.num_sites = 3;
  options.timeout_ms = 300;
  HierarchicalPlanner planner(&cluster, &catalog, options);

  std::printf("federation: %d hosts in %d sites\n", cluster.num_hosts(),
              planner.num_sites());
  for (int site = 0; site < planner.num_sites(); ++site) {
    const std::vector<HostId> hosts = planner.SiteHosts(site);
    std::printf("  site %d: hosts %d..%d\n", site, hosts.front(),
                hosts.back());
  }

  int admitted = 0, duplicates = 0;
  double total_ms = 0.0;
  for (StreamId q : workload.queries) {
    Result<PlanningStats> stats = planner.SubmitQuery(q);
    if (!stats.ok()) {
      std::printf("planning error: %s\n", stats.status().ToString().c_str());
      return 1;
    }
    if (stats->already_served) {
      ++duplicates;
    } else {
      admitted += stats->admitted;
      total_ms += stats->wall_ms;
    }
  }
  std::printf("\nsubmitted %zu queries: %d admitted, %d duplicate "
              "(free reuse), avg %.1f ms/plan\n",
              workload.queries.size(), admitted, duplicates,
              total_ms / std::max<size_t>(1, workload.queries.size()));

  std::printf("\nper-site load after planning (CPU used per host):\n");
  for (int site = 0; site < planner.num_sites(); ++site) {
    std::printf("  site %d:", site);
    for (HostId h : planner.SiteHosts(site)) {
      std::printf(" %.2f", planner.deployment().CpuUsed(h));
    }
    std::printf("\n");
  }

  const Status audit = planner.deployment().Validate();
  std::printf("\ndeployment audit: %s\n", audit.ToString().c_str());
  return audit.ok() ? 0 : 1;
}
