// Standalone tour of the DISSP-like stream engine: two rate sources feed
// a windowed symmetric-hash join; the join output is filtered, unioned
// with a second branch and aggregated into per-key counts per second.
// This is the operator library the cluster simulator deploys when it
// executes SQPR's committed plans (§V-B).
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/engine_pipeline

#include <cstdio>

#include "engine/operators.h"

using namespace sqpr::engine;

int main() {
  const int64_t kWindowMs = 500;
  const int64_t kKeyDomain = 32;

  RateSource left(/*tuples_per_sec=*/200, kKeyDomain, /*seed=*/1);
  RateSource right(/*tuples_per_sec=*/200, kKeyDomain, /*seed=*/2);
  SymmetricHashJoin join(left.schema(), right.schema(), /*left_key=*/0,
                         /*right_key=*/0, kWindowMs);
  ModuloFilter evens(join.output_schema(), /*column=*/0, /*modulus=*/2,
                     /*remainder=*/0);
  ModuloFilter odds(join.output_schema(), /*column=*/0, 2, 1);
  Union merge(join.output_schema(), /*num_inputs=*/2);
  TumblingAggregate counts(merge.output_schema(), /*key_column=*/0,
                           /*value_column=*/-1, AggFn::kCount,
                           /*window_ms=*/1000);

  int64_t results = 0;
  const EmitFn count_sink = [&](const Tuple& t) {
    ++results;
    if (results <= 5) {
      std::printf("  window=%lld key=%lld count=%.0f\n",
                  static_cast<long long>(std::get<int64_t>(t.values[0])),
                  static_cast<long long>(std::get<int64_t>(t.values[1])),
                  std::get<double>(t.values[2]));
    }
  };
  const EmitFn into_counts = [&](const Tuple& t) {
    (void)counts.Push(0, t, count_sink);
  };
  const EmitFn into_union0 = [&](const Tuple& t) {
    (void)merge.Push(0, t, into_counts);
  };
  const EmitFn into_union1 = [&](const Tuple& t) {
    (void)merge.Push(1, t, into_counts);
  };
  const EmitFn into_filters = [&](const Tuple& t) {
    (void)evens.Push(0, t, into_union0);
    (void)odds.Push(0, t, into_union1);
  };
  const EmitFn into_join_left = [&](const Tuple& t) {
    (void)join.Push(0, t, into_filters);
  };
  const EmitFn into_join_right = [&](const Tuple& t) {
    (void)join.Push(1, t, into_filters);
  };

  // Drive 5 seconds of virtual time in 10 ms ticks.
  std::printf("first aggregate results:\n");
  for (int64_t now = 0; now <= 5000; now += 10) {
    left.EmitUntil(now, into_join_left);
    right.EmitUntil(now, into_join_right);
  }
  (void)counts.Flush(count_sink);

  const double expected_total =
      2.0 *  // matches counted from each arriving side
      ExpectedJoinRate(left.tuples_per_sec(), right.tuples_per_sec(),
                       kWindowMs / 1000.0, kKeyDomain) *
      5.0 / 2.0;  // 5 s of virtual time; helper reports per-side rate
  std::printf("\njoin:      %lld in, %lld out (theory ~%.0f total)\n",
              static_cast<long long>(join.tuples_in()),
              static_cast<long long>(join.tuples_out()), expected_total);
  std::printf("filters:   evens %lld out, odds %lld out\n",
              static_cast<long long>(evens.tuples_out()),
              static_cast<long long>(odds.tuples_out()));
  std::printf("union:     %lld + %lld tuples merged\n",
              static_cast<long long>(merge.port_count(0)),
              static_cast<long long>(merge.port_count(1)));
  std::printf("aggregate: %lld windows*keys emitted, %lld late drops\n",
              static_cast<long long>(results),
              static_cast<long long>(counts.late_drops()));

  // The filter split is a partition: every join output survives exactly
  // one branch.
  if (evens.tuples_out() + odds.tuples_out() != join.tuples_out()) {
    std::printf("pipeline accounting mismatch!\n");
    return 1;
  }
  return 0;
}
