// Adaptive re-planning (§IV-B): plan queries, execute the deployment on
// the simulated cluster with real engine operators, compare measured
// composite stream rates against the planner's cost-model estimates, and
// re-plan the queries whose estimates drifted beyond a threshold.
//
//   ./build/examples/adaptive_replan

#include <cmath>
#include <cstdio>
#include <vector>

#include "model/catalog.h"
#include "model/cluster.h"
#include "monitor/resource_monitor.h"
#include "planner/sqpr/sqpr_planner.h"
#include "sim/cluster_sim.h"

using namespace sqpr;

int main() {
  Cluster cluster(3, HostSpec{2.0, 150.0, 150.0, ""}, 1000.0);
  Catalog catalog{CostModel{}};
  std::vector<StreamId> base;
  for (int i = 0; i < 6; ++i) {
    base.push_back(catalog.AddBaseStream(i % 3, 10.0));
  }

  SqprPlanner planner(&cluster, &catalog, {});
  std::vector<StreamId> queries = {
      *catalog.CanonicalJoinStream({base[0], base[1]}),
      *catalog.CanonicalJoinStream({base[2], base[3]}),
      *catalog.CanonicalJoinStream({base[4], base[5]}),
  };
  for (StreamId q : queries) {
    auto stats = planner.SubmitQuery(q);
    std::printf("admit %-12s -> %s\n", catalog.stream(q).name.c_str(),
                stats.ok() && stats->admitted ? "ok" : "rejected");
  }

  // Execute the committed deployment and measure realised rates.
  SimConfig sim_config;
  sim_config.rate_scale = 0.05;
  sim_config.duration_ms = 20000;
  ClusterSim sim(planner.deployment(), sim_config);
  if (!sim.Setup().ok()) return 1;
  Result<SimReport> report = sim.Run();
  if (!report.ok()) return 1;

  // §IV-B drift detection: list queries whose measured output rate
  // deviates from the initial estimate by more than the threshold.
  const double kDriftThreshold = 0.5;  // 50%
  std::vector<StreamId> drifted;
  std::printf("\n%-14s %12s %12s %8s\n", "stream", "model Mbps",
              "measured", "drift");
  for (StreamId q : planner.admitted_queries()) {
    const double modelled = catalog.stream(q).rate_mbps;
    const auto it = report->measured_rate_mbps.find(q);
    const double measured = it == report->measured_rate_mbps.end() ? 0.0
                                                                   : it->second;
    const double drift = modelled > 0 ? std::abs(measured - modelled) / modelled
                                      : 0.0;
    std::printf("%-14s %12.4f %12.4f %7.0f%%%s\n",
                catalog.stream(q).name.c_str(), modelled, measured,
                drift * 100.0, drift > kDriftThreshold ? "  <- replan" : "");
    if (drift > kDriftThreshold) drifted.push_back(q);
  }

  if (!drifted.empty()) {
    std::printf("\nre-planning %zu drifted quer%s...\n", drifted.size(),
                drifted.size() == 1 ? "y" : "ies");
    auto stats = planner.ReplanQueries(drifted);
    if (stats.ok()) {
      for (size_t i = 0; i < drifted.size(); ++i) {
        std::printf("  %-12s re-admitted=%s\n",
                    catalog.stream(drifted[i]).name.c_str(),
                    (*stats)[i].admitted ? "yes" : "no");
      }
    }
  } else {
    std::printf("\nno drift beyond %.0f%% — no re-planning needed\n",
                kDriftThreshold * 100);
  }

  std::printf("\nhost CPU utilisation measured in simulation: ");
  for (double u : report->cpu_utilization) std::printf("%.1f%% ", u * 100);
  std::printf("\n");

  // ---- Act 2: base-rate drift (§IV-B via the ResourceMonitor). ----
  // A source doubles its rate in production. The monitor flags every
  // query whose leaf set contains it; AdaptiveReplan installs the
  // measured rate into the catalog (composite rates and operator costs
  // recompute exactly), refreshes the ledgers and re-admits.
  std::printf("\n--- base stream %s doubles to 20 Mbps ---\n",
              catalog.stream(base[0]).name.c_str());
  const std::map<StreamId, double> measured = {{base[0], 20.0}};
  ResourceMonitor monitor(&catalog, DriftOptions{});
  const DriftReport drift_report = monitor.Analyze(
      measured, report->cpu_utilization, planner.admitted_queries());
  std::printf("monitor flags %zu quer%s for re-planning\n",
              drift_report.queries_to_replan.size(),
              drift_report.queries_to_replan.size() == 1 ? "y" : "ies");

  Result<std::vector<PlanningStats>> adaptive =
      AdaptiveReplan(&planner, &catalog, measured, drift_report);
  if (!adaptive.ok()) {
    std::printf("adaptive replan failed: %s\n",
                adaptive.status().ToString().c_str());
    return 1;
  }
  int readmitted = 0;
  for (const PlanningStats& s : *adaptive) readmitted += s.admitted;
  std::printf("re-admitted %d/%zu under the corrected estimates\n",
              readmitted, adaptive->size());
  const Status audit = planner.deployment().Validate();
  std::printf("deployment audit after adaptation: %s\n",
              audit.ToString().c_str());
  return audit.ok() ? 0 : 1;
}
