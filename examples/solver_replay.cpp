// Capture-and-replay of a reduced SQPR planning model: build the MILP
// for one query submission, dump it to MPS (the format CPLEX consumes in
// the paper's setup) and LP text, then re-read and re-solve the dump to
// show the round-trip is faithful. The same .mps file feeds the
// standalone `sqpr_solve` CLI:
//
//   ./build/examples/solver_replay /tmp/sqpr_q.mps
//   ./build/tools/sqpr_solve /tmp/sqpr_q.mps --no-cuts
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/solver_replay

#include <cstdio>

#include "milp/mps_io.h"
#include "milp/solver.h"
#include "model/catalog.h"
#include "model/cluster.h"
#include "plan/deployment.h"
#include "planner/sqpr/model_builder.h"

using namespace sqpr;

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "/tmp/sqpr_model.mps";

  // A 3-host cluster and a 3-way join query sharing nothing yet.
  Cluster cluster(3, HostSpec{1.0, 120.0, 120.0, ""}, 240.0);
  Catalog catalog{CostModel{}};
  const StreamId a = catalog.AddBaseStream(0, 10.0, "a");
  const StreamId b = catalog.AddBaseStream(1, 10.0, "b");
  const StreamId c = catalog.AddBaseStream(2, 10.0, "c");
  const StreamId abc = *catalog.CanonicalJoinStream({a, b, c});
  const Closure closure = *catalog.JoinClosure(abc);

  Deployment deployment(&cluster, &catalog);
  SqprModelOptions options;
  options.acyclicity = AcyclicityMode::kPotentials;  // self-contained MPS
  SqprMip mip(deployment, closure.streams, closure.operators,
              {{abc, false}}, options);

  std::printf("reduced model for %s: %d variables, %d rows\n",
              catalog.stream(abc).name.c_str(), mip.mip().lp.num_variables(),
              mip.mip().lp.num_rows());

  const Status written = milp::WriteMpsFile(mip.mip(), path);
  if (!written.ok()) {
    std::printf("write failed: %s\n", written.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (and %s.lp)\n", path.c_str(), path.c_str());
  (void)milp::WriteLpFile(mip.mip(), path + ".lp");

  // Solve the in-memory model and the re-read dump; objectives must
  // match exactly.
  // Deadlines are absolute wall-clock points: give each solve its own.
  milp::Solver solver;
  milp::SolverOptions solver_options;
  solver_options.deadline = Deadline::AfterMillis(3000);
  const milp::MipResult direct = solver.Solve(mip.mip(), solver_options);

  Result<milp::Model> reread = milp::ReadMpsFile(path);
  if (!reread.ok()) {
    std::printf("re-read failed: %s\n", reread.status().ToString().c_str());
    return 1;
  }
  solver_options.deadline = Deadline::AfterMillis(3000);
  const milp::MipResult replayed = solver.Solve(*reread, solver_options);

  std::printf("direct   : %-10s objective %.6f  (%lld nodes)\n",
              milp::MipStatusName(direct.status), direct.objective,
              static_cast<long long>(direct.nodes));
  std::printf("replayed : %-10s objective %.6f  (%lld nodes)\n",
              milp::MipStatusName(replayed.status), replayed.objective,
              static_cast<long long>(replayed.nodes));

  const bool same = direct.status == replayed.status &&
                    std::abs(direct.objective - replayed.objective) < 1e-6;
  std::printf("round-trip %s\n", same ? "faithful" : "MISMATCH");
  return same ? 0 : 1;
}
