// Quickstart: stand up a small DSPS, submit three join queries through
// the SQPR planner, and print the committed query plans.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "model/catalog.h"
#include "model/cluster.h"
#include "plan/query_plan.h"
#include "planner/sqpr/sqpr_planner.h"

using namespace sqpr;

int main() {
  // A 4-host cluster: 2 CPU units, 200 Mbps NICs, 1 Gbps links.
  Cluster cluster(4, HostSpec{2.0, 200.0, 200.0, ""}, 1000.0);

  // Eight 10 Mbps base streams, spread round-robin over the hosts.
  Catalog catalog{CostModel{}};
  std::vector<StreamId> base;
  for (int i = 0; i < 8; ++i) {
    base.push_back(catalog.AddBaseStream(i % 4, 10.0, "src" + std::to_string(i)));
  }

  SqprPlanner::Options options;
  options.timeout_ms = 1000;  // per-query solver budget (§IV-C)
  SqprPlanner planner(&cluster, &catalog, options);

  // Three continuous queries; q2 and q3 share the sub-join {src0, src1},
  // which SQPR discovers and reuses automatically (§II-C).
  const StreamId q1 = *catalog.CanonicalJoinStream({base[0], base[1]});
  const StreamId q2 = *catalog.CanonicalJoinStream({base[0], base[1], base[2]});
  const StreamId q3 = *catalog.CanonicalJoinStream({base[0], base[1], base[3]});

  for (StreamId q : {q1, q2, q3}) {
    Result<PlanningStats> stats = planner.SubmitQuery(q);
    if (!stats.ok()) {
      std::printf("planning error: %s\n", stats.status().ToString().c_str());
      return 1;
    }
    std::printf("query %-12s admitted=%s  wall=%.1f ms  nodes=%lld%s\n",
                catalog.stream(q).name.c_str(),
                stats->admitted ? "yes" : "no", stats->wall_ms,
                static_cast<long long>(stats->solver_nodes),
                stats->proved_optimal ? "  (proved optimal)" : "");
  }

  std::printf("\nCommitted plans:\n");
  for (StreamId q : planner.admitted_queries()) {
    Result<QueryPlan> plan = ExtractPlan(planner.deployment(), q);
    if (plan.ok()) std::printf("%s\n", plan->ToString(catalog).c_str());
  }

  std::printf("Resource usage per host (CPU used / NIC out Mbps):\n");
  for (HostId h = 0; h < cluster.num_hosts(); ++h) {
    std::printf("  host %d: %.3f / %.1f\n", h,
                planner.deployment().CpuUsed(h),
                planner.deployment().NicOutUsed(h));
  }
  return 0;
}
