// Data-centre planning: runs the full §V planner line-up — SQPR, the
// greedy heuristic, the SODA-style baseline and the optimistic bound —
// on one Zipf join workload in a resource-scarce cluster and prints the
// admission race (the intro's motivating scenario: admit as many
// continuous queries as the data centre can hold).
//
//   ./build/examples/datacenter_planning

#include <cstdio>

#include "model/catalog.h"
#include "model/cluster.h"
#include "planner/heuristic/heuristic_planner.h"
#include "planner/optimistic/optimistic_bound.h"
#include "planner/soda/soda_planner.h"
#include "planner/sqpr/sqpr_planner.h"
#include "workload/generator.h"

using namespace sqpr;

int main() {
  const int kHosts = 5;
  const int kQueries = 40;

  Cluster cluster(kHosts, HostSpec{0.8, 120.0, 120.0, ""}, 400.0);
  Catalog catalog{CostModel{}};

  WorkloadConfig config;
  config.num_base_streams = 50;
  config.num_queries = kQueries;
  config.arities = {2, 3};
  config.zipf_s = 1.0;
  config.seed = 2026;
  Result<Workload> workload = GenerateWorkload(config, kHosts, &catalog);
  if (!workload.ok()) {
    std::printf("workload error: %s\n", workload.status().ToString().c_str());
    return 1;
  }

  SqprPlanner::Options sqpr_options;
  sqpr_options.timeout_ms = 250;
  SqprPlanner sqpr(&cluster, &catalog, sqpr_options);
  HeuristicPlanner heuristic(&cluster, &catalog, {});
  SodaPlanner soda(&cluster, &catalog, {});
  OptimisticBound bound(cluster, &catalog);

  std::printf("# submitted  sqpr  heuristic  soda  optimistic_bound\n");
  int n_sqpr = 0, n_heur = 0, n_soda = 0;
  for (int i = 0; i < kQueries; ++i) {
    const StreamId q = workload->queries[i];
    n_sqpr += sqpr.SubmitQuery(q)->admitted && true;
    n_heur += heuristic.SubmitQuery(q)->admitted && true;
    n_soda += soda.SubmitQuery(q)->admitted && true;
    (void)bound.SubmitQuery(q);
    if ((i + 1) % 5 == 0) {
      std::printf("%10d  %4d  %9d  %4d  %16d\n", i + 1, n_sqpr, n_heur,
                  n_soda, bound.admitted_count());
    }
  }

  std::printf("\nFinal deployment footprints:\n");
  auto footprint = [&](const char* name, const Deployment& dep) {
    std::printf("  %-10s ops=%3d flows=%3d cpu=%.2f net=%.1f Mbps max-host-cpu=%.2f\n",
                name, dep.num_placed_operators(), dep.num_flows(),
                dep.TotalCpuUsed(), dep.TotalNetworkUsed(),
                dep.MaxHostCpuUsed());
  };
  footprint("sqpr", sqpr.deployment());
  footprint("heuristic", heuristic.deployment());
  footprint("soda", soda.deployment());
  return 0;
}
