// Reuse & relaying (the §II-C / Fig. 2 scenario): two queries share the
// sub-join {a, b}. With relaying enabled SQPR may serve the shared
// stream through an intermediate host to avoid NIC hot-spots; with
// relaying disabled, streams can only be sent by hosts that generate
// them. The example prints both deployments side by side.
//
//   ./build/examples/reuse_relay

#include <cstdio>

#include "model/catalog.h"
#include "model/cluster.h"
#include "plan/query_plan.h"
#include "planner/sqpr/sqpr_planner.h"

using namespace sqpr;

namespace {

void RunScenario(bool enable_relay) {
  std::printf("=== relaying %s ===\n", enable_relay ? "ENABLED" : "DISABLED");

  // Three hosts; host 0 has a deliberately small NIC so that fanning the
  // shared stream out of it directly is expensive.
  std::vector<HostSpec> hosts = {
      {1.0, 40.0, 200.0, "small-nic"},
      {1.0, 200.0, 200.0, "big-1"},
      {1.0, 200.0, 200.0, "big-2"},
  };
  Cluster cluster(hosts, 1000.0);

  Catalog catalog{CostModel{}};
  const StreamId a = catalog.AddBaseStream(0, 10.0, "a");
  const StreamId b = catalog.AddBaseStream(0, 10.0, "b");
  const StreamId c = catalog.AddBaseStream(1, 10.0, "c");
  const StreamId d = catalog.AddBaseStream(2, 10.0, "d");

  SqprPlanner::Options options;
  options.timeout_ms = 1500;
  options.model.enable_relay = enable_relay;
  SqprPlanner planner(&cluster, &catalog, options);

  const StreamId q1 = *catalog.CanonicalJoinStream({a, b, c});
  const StreamId q2 = *catalog.CanonicalJoinStream({a, b, d});

  for (StreamId q : {q1, q2}) {
    auto stats = planner.SubmitQuery(q);
    std::printf("query %-14s admitted=%s\n", catalog.stream(q).name.c_str(),
                stats.ok() && stats->admitted ? "yes" : "no");
  }
  for (StreamId q : planner.admitted_queries()) {
    auto plan = ExtractPlan(planner.deployment(), q);
    if (plan.ok()) {
      std::printf("%s  relays in plan: %d\n\n",
                  plan->ToString(catalog).c_str(), plan->RelayCount());
    }
  }
  std::printf("total network use: %.2f Mbps, NIC out of small-nic host: "
              "%.1f / 40 Mbps\n\n",
              planner.deployment().TotalNetworkUsed(),
              planner.deployment().NicOutUsed(0));
}

}  // namespace

int main() {
  RunScenario(/*enable_relay=*/true);
  RunScenario(/*enable_relay=*/false);
  return 0;
}
