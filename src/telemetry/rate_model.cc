#include "telemetry/rate_model.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace sqpr {

namespace {

/// True rates must stay installable (Catalog::UpdateBaseRate rejects
/// non-positive rates), so every trajectory floors at a tiny positive
/// rate regardless of parameters.
constexpr double kMinRateMbps = 1e-6;

}  // namespace

const char* RateTrajectoryKindName(RateTrajectory::Kind kind) {
  switch (kind) {
    case RateTrajectory::Kind::kConstant:
      return "constant";
    case RateTrajectory::Kind::kStep:
      return "step";
    case RateTrajectory::Kind::kRandomWalk:
      return "walk";
    case RateTrajectory::Kind::kPeriodic:
      return "periodic";
  }
  return "unknown";
}

Status RateModel::Install(RateTrajectory trajectory, int64_t now_ms) {
  if (trajectory.stream < 0) {
    return Status::InvalidArgument("rate trajectory needs a stream");
  }
  if (!(trajectory.base_rate_mbps > 0)) {
    return Status::InvalidArgument(
        "rate trajectory for stream " + std::to_string(trajectory.stream) +
        " needs a positive base rate");
  }
  trajectory.period_ms = std::max<int64_t>(1, trajectory.period_ms);
  trajectory.step_at_ms = std::max<int64_t>(0, trajectory.step_at_ms);
  trajectory.step_factor = std::max(1e-6, trajectory.step_factor);
  trajectory.volatility = std::clamp(trajectory.volatility, 0.0, 0.99);
  trajectory.min_factor = std::max(1e-6, trajectory.min_factor);
  trajectory.max_factor =
      std::max(trajectory.min_factor, trajectory.max_factor);
  trajectory.amplitude = std::clamp(trajectory.amplitude, 0.0, 0.95);

  Entry entry;
  entry.install_ms = now_ms;
  // The walk stream depends on (model seed, stream) only: installing or
  // replacing one stream's trajectory never perturbs another's draws,
  // and the same directive replayed at the same virtual time reproduces
  // the same walk.
  entry.walk_rng = Rng(seed_ ^ (0x9e3779b97f4a7c15ULL *
                                (static_cast<uint64_t>(trajectory.stream) + 1)));
  entry.trajectory = std::move(trajectory);
  entries_[entry.trajectory.stream] = std::move(entry);
  return Status::OK();
}

double RateModel::Eval(Entry* entry, int64_t t_ms) {
  const RateTrajectory& t = entry->trajectory;
  const int64_t rel_ms = std::max<int64_t>(0, t_ms - entry->install_ms);
  double rate = t.base_rate_mbps;
  switch (t.kind) {
    case RateTrajectory::Kind::kConstant:
      break;
    case RateTrajectory::Kind::kStep:
      if (rel_ms >= t.step_at_ms) rate *= t.step_factor;
      break;
    case RateTrajectory::Kind::kRandomWalk: {
      const int64_t target_steps = rel_ms / t.period_ms;
      while (entry->walk_steps < target_steps) {
        entry->walk_factor *=
            1.0 + entry->walk_rng.NextDouble(-t.volatility, t.volatility);
        entry->walk_factor =
            std::clamp(entry->walk_factor, t.min_factor, t.max_factor);
        ++entry->walk_steps;
      }
      rate *= entry->walk_factor;
      break;
    }
    case RateTrajectory::Kind::kPeriodic: {
      const double two_pi = 2.0 * 3.14159265358979323846;
      rate *= 1.0 + t.amplitude *
                        std::sin(two_pi * static_cast<double>(rel_ms) /
                                     static_cast<double>(t.period_ms) +
                                 t.phase);
      break;
    }
  }
  return std::max(kMinRateMbps, rate);
}

Result<double> RateModel::RateAt(StreamId s, int64_t t_ms) {
  auto it = entries_.find(s);
  if (it == entries_.end()) {
    return Status::NotFound("stream " + std::to_string(s) +
                            " has no rate trajectory");
  }
  return Eval(&it->second, t_ms);
}

std::map<StreamId, double> RateModel::RatesAt(int64_t t_ms) {
  std::map<StreamId, double> rates;
  for (auto& [s, entry] : entries_) rates[s] = Eval(&entry, t_ms);
  return rates;
}

}  // namespace sqpr
