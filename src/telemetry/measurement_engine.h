#ifndef SQPR_TELEMETRY_MEASUREMENT_ENGINE_H_
#define SQPR_TELEMETRY_MEASUREMENT_ENGINE_H_

#include <array>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "model/catalog.h"
#include "plan/deployment.h"
#include "sim/cluster_sim.h"
#include "telemetry/rate_model.h"

namespace sqpr {

/// How a self-measurement observes the committed deployment.
enum class MeasureMode : uint8_t {
  /// Ground truth: execute the deployment with real engine operators
  /// via ClusterSim under the rate model's true rates. Pays a full
  /// (scaled-down) simulation per measuring tick on the loop thread.
  kEngine,
  /// Analytic: derive the same observables from the committed
  /// deployment's ledgers — true base rates straight from the rate
  /// model, per-host CPU as each placed operator's committed cost
  /// scaled by the truth/estimate ratio of its input rates (the §II-B
  /// cost model is linear in the input rates, so the scaling is exact
  /// in the model). No simulation: O(placed operators) per measuring
  /// tick, orders of magnitude cheaper for large deployments.
  ///
  /// Equivalence contract vs kEngine at noise = 0: identical
  /// drifted-base-stream decisions away from tuple-quantisation error
  /// (the sim realises injection in whole tuples), and identical
  /// shortage decisions wherever realised utilisation tracks the linear
  /// model (an engine join's realised output rate is stochastic around
  /// it). tests/telemetry_test.cc pins the contract.
  kAnalytic,
};

const char* MeasureModeName(MeasureMode mode);

/// Configuration of the §IV-C self-measurement loop.
struct TelemetryOptions {
  /// Engine (simulate) or analytic (ledger-derived) measurements.
  MeasureMode mode = MeasureMode::kEngine;
  /// Self-measurement fires every `measure_period` kTick events (>= 1).
  int measure_period = 4;
  /// EWMA smoothing factor over successive measurements of the same
  /// quantity: smoothed = alpha * sample + (1 - alpha) * previous.
  /// 1.0 (default) = no smoothing, raw samples.
  double ewma_alpha = 1.0;
  /// Relative measurement noise: every sample (rate and CPU alike) is
  /// scaled by a seeded uniform factor in [1 - noise, 1 + noise] before
  /// smoothing. 0 (default) = exact measurements.
  double noise = 0.0;
  /// Seeds both the rate model's random-walk streams and the
  /// measurement-noise draws; replays with the same seed measure
  /// identically.
  uint64_t seed = 0;
  /// Per-measurement ClusterSim run over the committed deployment. The
  /// default is deliberately cheap (short horizon, scaled-down rates):
  /// a measurement happens on the loop thread at every measuring tick.
  SimConfig sim = DefaultSimConfig();

  static SimConfig DefaultSimConfig() {
    SimConfig config;
    config.rate_scale = 0.02;
    config.duration_ms = 500;
    config.window_ms = 500;
    return config;
  }
};

/// One §IV-C self-measurement: what the DISSP hosts would report after
/// sampling a reporting period under the current true rates.
struct Measurement {
  int64_t time_ms = 0;
  /// 0-based measurement sequence number (the sim-seed index): ties a
  /// measuring tick to its audit-journal record — measurements happen at
  /// deterministic logical points, so the index is replay-invariant.
  int64_t index = 0;
  /// Observed Mbps per base stream (noisy, EWMA-smoothed): realised
  /// injection rates from the simulation where the committed deployment
  /// uses the stream, the rate model's ground truth otherwise.
  std::map<StreamId, double> measured_base_rates;
  /// Per-host CPU as a fraction of budget, from executing the committed
  /// deployment under the true rates (noisy, EWMA-smoothed).
  std::vector<double> cpu_utilization;
  /// The raw simulation report the measurement was distilled from.
  /// Default-initialised (empty) in analytic mode, which runs no
  /// simulation.
  SimReport raw;
};

/// Serializable state of a MeasurementEngine (src/service/checkpoint.h).
/// The noise generator's raw words are carried because its draw count is
/// data-dependent (one draw per shaped sample, and the sample set
/// depends on the deployment) — unlike the rate model's walks it cannot
/// be replayed positionally. The rate model itself round-trips as its
/// trajectory directives; see RateModel::ExportTrajectories.
struct TelemetryCheckpoint {
  int64_t measurements = 0;
  std::array<uint64_t, 4> noise_rng_state = {0, 0, 0, 0};
  std::map<StreamId, double> rate_ewma;
  std::vector<double> cpu_ewma;
  std::vector<std::pair<RateTrajectory, int64_t>> trajectories;
};

/// The measurement half of the paper's closed control loop (§IV-C):
/// every measure_period ticks the planning service asks this engine to
/// measure its own committed deployment. The engine evaluates the
/// ground-truth RateModel at the virtual time, executes the deployment
/// under those rates via ClusterSim (base-rate overrides: sources inject
/// at the *true* rates while per-tuple costs stay derived from the
/// catalog *estimates* — exactly the gap a measurement should expose),
/// then applies seeded noise and EWMA smoothing. The output feeds the
/// same ResourceMonitor::Analyze + RunDriftCycle path a scripted
/// kMonitorReport event takes.
///
/// Loop-thread-owned: Measure() reads the committed deployment and the
/// catalog (lock-free reads), and is only called at the monitor barrier
/// — after the in-flight re-planning round has been retired — so it
/// never races worker solves. Determinism: measurements happen at
/// deterministic logical points, the sim is seeded per measurement
/// index, and noise draws advance once per sample in a fixed order, so
/// the whole closed loop is worker-count-invariant.
class MeasurementEngine {
 public:
  MeasurementEngine(const Catalog* catalog, TelemetryOptions options);

  RateModel& rate_model() { return rate_model_; }
  const RateModel& rate_model() const { return rate_model_; }
  const TelemetryOptions& options() const { return options_; }
  int64_t measurements() const { return measurements_; }

  /// Performs one self-measurement of `deployment` at virtual time
  /// `now_ms`. Advances the rate model (random walks), the noise stream
  /// and the EWMA state.
  Result<Measurement> Measure(const Deployment& deployment, int64_t now_ms);

  /// Checkpoint support (src/service/checkpoint.h).
  TelemetryCheckpoint ExportState() const;
  /// Reinstates exported state into an engine built with the *same*
  /// TelemetryOptions (in particular the same seed — the rate model's
  /// walk streams are derived from it and are not serialized). Returns
  /// the first trajectory re-install error, if any.
  Status RestoreState(const TelemetryCheckpoint& checkpoint);

 private:
  double Shape(double sample, double* ewma_state, bool first);

  /// Engine path: execute the deployment via ClusterSim under `truth`.
  Result<Measurement> MeasureEngine(const Deployment& deployment,
                                    int64_t now_ms,
                                    const std::map<StreamId, double>& truth);
  /// Analytic path: ledgers scaled by truth/estimate ratios.
  Measurement MeasureAnalytic(const Deployment& deployment, int64_t now_ms,
                              const std::map<StreamId, double>& truth);
  /// Applies noise + EWMA to raw rate/CPU samples in the fixed
  /// deterministic order both paths share.
  void ShapeMeasurement(const std::map<StreamId, double>& rate_samples,
                        const std::vector<double>& cpu_samples,
                        Measurement* m);

  const Catalog* catalog_;
  TelemetryOptions options_;
  RateModel rate_model_;
  Rng noise_rng_;
  int64_t measurements_ = 0;
  /// EWMA state, keyed like the outputs.
  std::map<StreamId, double> rate_ewma_;
  std::vector<double> cpu_ewma_;
};

}  // namespace sqpr

#endif  // SQPR_TELEMETRY_MEASUREMENT_ENGINE_H_
