#ifndef SQPR_TELEMETRY_RATE_MODEL_H_
#define SQPR_TELEMETRY_RATE_MODEL_H_

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "model/ids.h"

namespace sqpr {

/// Ground-truth trajectory of one base stream's data rate — what the
/// stream *actually* does over virtual time, as opposed to the catalog's
/// estimate. Trajectories are what closed-loop traces script instead of
/// hand-authored measurements (§IV-C): the service's own periodic
/// measurements observe the trajectory, detect drift against the
/// estimates and trigger re-planning without any scripted
/// kMonitorReport events.
///
/// All times are relative to the directive's install time (the event
/// timestamp when it comes from a trace), so a saved trace replays
/// identically wherever it lands on the virtual clock.
struct RateTrajectory {
  enum class Kind : uint8_t {
    /// rate(t) = base_rate_mbps.
    kConstant,
    /// rate(t) = base before step_at_ms, base * step_factor after.
    kStep,
    /// Bounded multiplicative random walk: every period_ms the factor is
    /// multiplied by a seeded draw from [1 - volatility, 1 + volatility]
    /// and clamped to [min_factor, max_factor]; rate(t) = base * factor.
    kRandomWalk,
    /// Diurnal-style oscillation:
    /// rate(t) = base * (1 + amplitude * sin(2*pi*t/period_ms + phase)).
    kPeriodic,
  };

  Kind kind = Kind::kConstant;
  StreamId stream = kInvalidStream;
  /// Baseline rate in Mbps the trajectory shapes. Traces carry it
  /// explicitly (usually the catalog estimate at authoring time) so a
  /// saved trace is self-contained: replays do not depend on what the
  /// closed loop has since installed into the catalog. Must be > 0.
  double base_rate_mbps = 0.0;

  // kStep only.
  int64_t step_at_ms = 0;
  double step_factor = 1.0;

  // kRandomWalk and kPeriodic: the walk step / oscillation period.
  int64_t period_ms = 1000;

  // kRandomWalk only.
  double volatility = 0.1;
  double min_factor = 0.25;
  double max_factor = 4.0;

  // kPeriodic only. Amplitude is clamped to [0, 0.95] at install so the
  // true rate stays positive (UpdateBaseRate rejects rates <= 0).
  double amplitude = 0.5;
  double phase = 0.0;
};

const char* RateTrajectoryKindName(RateTrajectory::Kind kind);

/// The ground truth of the closed loop: a seeded, deterministic
/// collection of per-stream rate trajectories advanced on the virtual
/// clock. Loop-thread-owned (workers never read it); every evaluation
/// is a pure function of (seed, installed trajectories, query time), so
/// replays are bit-for-bit reproducible — the random-walk state advances
/// with virtual time only, never with wall time or call count.
class RateModel {
 public:
  explicit RateModel(uint64_t seed = 0) : seed_(seed) {}

  /// Installs (or replaces) the trajectory for its stream with time
  /// origin `now_ms`. Out-of-range parameters are clamped; a
  /// non-positive base rate is rejected. Replacing a random walk resets
  /// its state — the walk stream is derived from (model seed, stream),
  /// so install *time* does not perturb other streams' draws.
  Status Install(RateTrajectory trajectory, int64_t now_ms);

  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }
  bool Models(StreamId s) const { return entries_.count(s) > 0; }

  /// True rate of one modelled stream at t_ms. Random-walk state only
  /// advances forward: querying a walk at an earlier time than a
  /// previous query returns the state as of the later time (the service
  /// only ever moves forward on the virtual clock).
  Result<double> RateAt(StreamId s, int64_t t_ms);

  /// True rates of every modelled stream at t_ms.
  std::map<StreamId, double> RatesAt(int64_t t_ms);

  /// Checkpoint support (src/service/checkpoint.h): the installed
  /// trajectories and their install times, in stream-id order. Walk
  /// state is deliberately *not* exported — it is a pure function of
  /// (model seed, stream, install time, latest query time), the walk
  /// stream is seeded from (seed, stream) alone, and the service only
  /// queries forward in virtual time; so re-Install()ing these pairs
  /// into a model with the same seed reproduces every subsequent
  /// evaluation bit-for-bit.
  std::vector<std::pair<RateTrajectory, int64_t>> ExportTrajectories() const {
    std::vector<std::pair<RateTrajectory, int64_t>> out;
    out.reserve(entries_.size());
    for (const auto& [s, entry] : entries_) {
      out.emplace_back(entry.trajectory, entry.install_ms);
    }
    return out;
  }

 private:
  struct Entry {
    RateTrajectory trajectory;
    int64_t install_ms = 0;
    Rng walk_rng{0};
    int64_t walk_steps = 0;
    double walk_factor = 1.0;
  };

  double Eval(Entry* entry, int64_t t_ms);

  uint64_t seed_;
  std::map<StreamId, Entry> entries_;
};

}  // namespace sqpr

#endif  // SQPR_TELEMETRY_RATE_MODEL_H_
