#include "telemetry/measurement_engine.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "obs/trace.h"

namespace sqpr {

const char* MeasureModeName(MeasureMode mode) {
  switch (mode) {
    case MeasureMode::kEngine:
      return "engine";
    case MeasureMode::kAnalytic:
      return "analytic";
  }
  return "?";
}

MeasurementEngine::MeasurementEngine(const Catalog* catalog,
                                     TelemetryOptions options)
    : catalog_(catalog),
      options_(options),
      rate_model_(options.seed),
      noise_rng_(options.seed ^ 0xda3e39cb94b95bdbULL) {
  SQPR_CHECK(catalog != nullptr);
  options_.measure_period = std::max(1, options_.measure_period);
  // alpha = 0 would freeze every measurement at its first sample
  // forever; clamp into (0, 1].
  options_.ewma_alpha = std::clamp(options_.ewma_alpha, 0.01, 1.0);
  // A noise factor reaching 1 - noise <= 0 could zero a sample, which
  // the drift cycle could never install (rates must stay positive).
  options_.noise = std::clamp(options_.noise, 0.0, 0.9);
}

double MeasurementEngine::Shape(double sample, double* ewma_state,
                                bool first) {
  double v = sample;
  if (options_.noise > 0) {
    v *= 1.0 + noise_rng_.NextDouble(-options_.noise, options_.noise);
  }
  *ewma_state = first ? v
                      : options_.ewma_alpha * v +
                            (1.0 - options_.ewma_alpha) * *ewma_state;
  return *ewma_state;
}

void MeasurementEngine::ShapeMeasurement(
    const std::map<StreamId, double>& rate_samples,
    const std::vector<double>& cpu_samples, Measurement* m) {
  // Noise and smoothing, in deterministic (ordered-map, then host
  // index) order: exactly one noise draw per sample per measurement.
  for (const auto& [s, sample] : rate_samples) {
    auto [it, inserted] = rate_ewma_.try_emplace(s, 0.0);
    m->measured_base_rates[s] = Shape(sample, &it->second, inserted);
  }
  const size_t hosts_before = cpu_ewma_.size();
  if (cpu_ewma_.size() < cpu_samples.size()) {
    cpu_ewma_.resize(cpu_samples.size(), 0.0);
  }
  m->cpu_utilization.resize(cpu_samples.size());
  for (size_t h = 0; h < cpu_samples.size(); ++h) {
    m->cpu_utilization[h] =
        Shape(cpu_samples[h], &cpu_ewma_[h], h >= hosts_before);
  }
}

TelemetryCheckpoint MeasurementEngine::ExportState() const {
  TelemetryCheckpoint ck;
  ck.measurements = measurements_;
  ck.noise_rng_state = noise_rng_.SaveState();
  ck.rate_ewma = rate_ewma_;
  ck.cpu_ewma = cpu_ewma_;
  ck.trajectories = rate_model_.ExportTrajectories();
  return ck;
}

Status MeasurementEngine::RestoreState(const TelemetryCheckpoint& checkpoint) {
  measurements_ = checkpoint.measurements;
  noise_rng_.RestoreState(checkpoint.noise_rng_state);
  rate_ewma_ = checkpoint.rate_ewma;
  cpu_ewma_ = checkpoint.cpu_ewma;
  for (const auto& [trajectory, install_ms] : checkpoint.trajectories) {
    SQPR_RETURN_IF_ERROR(rate_model_.Install(trajectory, install_ms));
  }
  return Status::OK();
}

Result<Measurement> MeasurementEngine::Measure(const Deployment& deployment,
                                               int64_t now_ms) {
  // Ground truth at this virtual time (advances random-walk state).
  const std::map<StreamId, double> truth = rate_model_.RatesAt(now_ms);
  if (options_.mode == MeasureMode::kAnalytic) {
    SQPR_TRACE_SPAN("telemetry/measure.analytic");
    return MeasureAnalytic(deployment, now_ms, truth);
  }
  SQPR_TRACE_SPAN("telemetry/measure.engine");
  return MeasureEngine(deployment, now_ms, truth);
}

Result<Measurement> MeasurementEngine::MeasureEngine(
    const Deployment& deployment, int64_t now_ms,
    const std::map<StreamId, double>& truth) {
  Measurement m;
  m.time_ms = now_ms;

  // Execute the committed deployment under the true rates. The sim seed
  // varies per measurement index so consecutive reporting periods are
  // independent samples, yet any replay reproduces them bit-for-bit.
  SimConfig sim_config = options_.sim;
  sim_config.base_rate_overrides = truth;
  sim_config.seed = options_.seed ^
                    (0x9e3779b97f4a7c15ULL *
                     (static_cast<uint64_t>(measurements_) + 1));
  ClusterSim sim(deployment, sim_config);
  SQPR_RETURN_IF_ERROR(sim.Setup());
  Result<SimReport> report = sim.Run();
  if (!report.ok()) return report.status();
  m.raw = std::move(*report);
  m.index = measurements_;
  ++measurements_;

  // Base-rate samples. A DISSP source host knows the injection rate of
  // every base stream it hosts, consumed or not: take the realised rate
  // from the simulation where the deployment ran a source, and the
  // model's ground truth for modelled streams the deployment does not
  // touch. Unmodelled but simulated streams are reported too — their
  // realised rates sit on-estimate, which the drift cycle installs
  // sub-threshold so estimates converge instead of drifting quietly.
  std::map<StreamId, double> samples = truth;
  for (const auto& [s, realised] : m.raw.measured_rate_mbps) {
    if (s < 0 || s >= catalog_->num_streams() || !catalog_->stream(s).is_base) {
      continue;
    }
    if (realised > 0) samples[s] = realised;
  }

  ShapeMeasurement(samples, m.raw.cpu_utilization, &m);
  return m;
}

Measurement MeasurementEngine::MeasureAnalytic(
    const Deployment& deployment, int64_t now_ms,
    const std::map<StreamId, double>& truth) {
  Measurement m;
  m.time_ms = now_ms;
  m.index = measurements_;
  ++measurements_;

  // Base-rate samples are the model's ground truth itself — the engine
  // realises exactly these rates (up to tuple quantisation). Streams
  // the model does not cover sit on-estimate by definition and are
  // omitted; the monitor treats absent streams as on-estimate, so the
  // drift decisions match the engine's.
  //
  // Per-host CPU: the committed ledgers are built from the catalog
  // *estimates*; the true cost of a placed operator under the §II-B
  // linear model is its committed cost scaled by the ratio of true to
  // estimated input rates. True composite rates scale with the summed
  // true base rates of their leaf set (JoinOutputRate is linear in that
  // sum, unary outputs are linear in their input), so every ratio
  // reduces to leaf-rate arithmetic — no simulation, no fixpoint.
  const Cluster& cluster = deployment.cluster();
  const int num_hosts = cluster.num_hosts();

  std::map<StreamId, double> true_rate_cache;
  auto true_rate = [&](StreamId s) -> double {
    auto cached = true_rate_cache.find(s);
    if (cached != true_rate_cache.end()) return cached->second;
    const StreamInfo& info = catalog_->stream(s);
    double rate = info.rate_mbps;
    if (info.is_base) {
      auto it = truth.find(s);
      if (it != truth.end()) rate = it->second;
    } else {
      double sum_true = 0.0;
      double sum_est = 0.0;
      for (StreamId leaf : info.leaves) {
        const StreamInfo& leaf_info = catalog_->stream(leaf);
        sum_est += leaf_info.rate_mbps;
        auto it = truth.find(leaf);
        sum_true += it != truth.end() ? it->second : leaf_info.rate_mbps;
      }
      if (sum_est > 0) rate = info.rate_mbps * (sum_true / sum_est);
    }
    true_rate_cache.emplace(s, rate);
    return rate;
  };

  std::vector<double> cpu(num_hosts, 0.0);
  for (HostId h = 0; h < num_hosts; ++h) {
    double used = 0.0;
    for (OperatorId o : deployment.OperatorsOn(h)) {
      const OperatorInfo& op = catalog_->op(o);
      double sum_true = 0.0;
      double sum_est = 0.0;
      for (StreamId in : op.inputs) {
        sum_est += catalog_->stream(in).rate_mbps;
        sum_true += true_rate(in);
      }
      used += sum_est > 0 ? op.cpu_cost * (sum_true / sum_est) : op.cpu_cost;
    }
    const double budget = cluster.host(h).cpu;
    cpu[h] = budget > 0 ? used / budget : 0.0;
  }

  ShapeMeasurement(truth, cpu, &m);
  return m;
}

}  // namespace sqpr
