#include "telemetry/measurement_engine.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace sqpr {

MeasurementEngine::MeasurementEngine(const Catalog* catalog,
                                     TelemetryOptions options)
    : catalog_(catalog),
      options_(options),
      rate_model_(options.seed),
      noise_rng_(options.seed ^ 0xda3e39cb94b95bdbULL) {
  SQPR_CHECK(catalog != nullptr);
  options_.measure_period = std::max(1, options_.measure_period);
  // alpha = 0 would freeze every measurement at its first sample
  // forever; clamp into (0, 1].
  options_.ewma_alpha = std::clamp(options_.ewma_alpha, 0.01, 1.0);
  // A noise factor reaching 1 - noise <= 0 could zero a sample, which
  // the drift cycle could never install (rates must stay positive).
  options_.noise = std::clamp(options_.noise, 0.0, 0.9);
}

double MeasurementEngine::Shape(double sample, double* ewma_state,
                                bool first) {
  double v = sample;
  if (options_.noise > 0) {
    v *= 1.0 + noise_rng_.NextDouble(-options_.noise, options_.noise);
  }
  *ewma_state = first ? v
                      : options_.ewma_alpha * v +
                            (1.0 - options_.ewma_alpha) * *ewma_state;
  return *ewma_state;
}

Result<Measurement> MeasurementEngine::Measure(const Deployment& deployment,
                                               int64_t now_ms) {
  Measurement m;
  m.time_ms = now_ms;

  // Ground truth at this virtual time (advances random-walk state).
  const std::map<StreamId, double> truth = rate_model_.RatesAt(now_ms);

  // Execute the committed deployment under the true rates. The sim seed
  // varies per measurement index so consecutive reporting periods are
  // independent samples, yet any replay reproduces them bit-for-bit.
  SimConfig sim_config = options_.sim;
  sim_config.base_rate_overrides = truth;
  sim_config.seed = options_.seed ^
                    (0x9e3779b97f4a7c15ULL *
                     (static_cast<uint64_t>(measurements_) + 1));
  ClusterSim sim(deployment, sim_config);
  SQPR_RETURN_IF_ERROR(sim.Setup());
  Result<SimReport> report = sim.Run();
  if (!report.ok()) return report.status();
  m.raw = std::move(*report);
  ++measurements_;

  // Base-rate samples. A DISSP source host knows the injection rate of
  // every base stream it hosts, consumed or not: take the realised rate
  // from the simulation where the deployment ran a source, and the
  // model's ground truth for modelled streams the deployment does not
  // touch. Unmodelled but simulated streams are reported too — their
  // realised rates sit on-estimate, which the drift cycle installs
  // sub-threshold so estimates converge instead of drifting quietly.
  std::map<StreamId, double> samples = truth;
  for (const auto& [s, realised] : m.raw.measured_rate_mbps) {
    if (s < 0 || s >= catalog_->num_streams() || !catalog_->stream(s).is_base) {
      continue;
    }
    if (realised > 0) samples[s] = realised;
  }

  // Noise and smoothing, in deterministic (ordered-map, then host
  // index) order: exactly one noise draw per sample per measurement.
  for (const auto& [s, sample] : samples) {
    auto [it, inserted] = rate_ewma_.try_emplace(s, 0.0);
    m.measured_base_rates[s] = Shape(sample, &it->second, inserted);
  }
  const size_t hosts_before = cpu_ewma_.size();
  if (cpu_ewma_.size() < m.raw.cpu_utilization.size()) {
    cpu_ewma_.resize(m.raw.cpu_utilization.size(), 0.0);
  }
  m.cpu_utilization.resize(m.raw.cpu_utilization.size());
  for (size_t h = 0; h < m.raw.cpu_utilization.size(); ++h) {
    m.cpu_utilization[h] =
        Shape(m.raw.cpu_utilization[h], &cpu_ewma_[h], h >= hosts_before);
  }
  return m;
}

}  // namespace sqpr
