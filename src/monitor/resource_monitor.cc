#include "monitor/resource_monitor.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/logging.h"
#include "plan/query_plan.h"

namespace sqpr {

HostId FirstOverBudgetHost(const Deployment& deployment, double tol) {
  const Cluster& cluster = deployment.cluster();
  for (HostId h = 0; h < cluster.num_hosts(); ++h) {
    const HostSpec& spec = cluster.host(h);
    if (deployment.CpuUsed(h) > spec.cpu + tol ||
        deployment.MemUsed(h) > spec.mem_mb + tol ||
        deployment.NicOutUsed(h) > spec.nic_out_mbps + tol ||
        deployment.NicInUsed(h) > spec.nic_in_mbps + tol) {
      return h;
    }
    for (HostId m = 0; m < cluster.num_hosts(); ++m) {
      if (m != h && deployment.LinkUsed(h, m) >
                        cluster.link_mbps(h, m) + tol) {
        return h;
      }
    }
  }
  return kInvalidHost;
}

DriftReport ResourceMonitor::Analyze(
    const std::map<StreamId, double>& measured_base_rates,
    const std::vector<double>& cpu_utilization,
    const std::vector<StreamId>& admitted,
    const Deployment* deployment) const {
  DriftReport report;

  std::set<StreamId> drifted;
  for (const auto& [s, measured] : measured_base_rates) {
    if (s < 0 || s >= catalog_->num_streams()) continue;
    // Non-positive measurements cannot be installed as catalog rates
    // (UpdateBaseRate rejects them), so flagging them as drift would
    // evict queries for ever without the estimate ever converging.
    if (measured <= 0) continue;
    const StreamInfo& info = catalog_->stream(s);
    if (!info.is_base || info.rate_mbps <= 0) continue;
    const double deviation =
        std::abs(measured - info.rate_mbps) / info.rate_mbps;
    if (deviation > options_.rate_threshold) drifted.insert(s);
  }
  report.drifted_base_streams.assign(drifted.begin(), drifted.end());

  for (size_t h = 0; h < cpu_utilization.size(); ++h) {
    if (cpu_utilization[h] > options_.shortage_utilization) {
      report.overloaded_hosts.push_back(static_cast<HostId>(h));
    }
  }

  // Affected queries, deduplicated across both §IV-B conditions: a query
  // implicated by a drifted leaf *and* an overloaded host must be
  // re-planned once per round, not twice. Host shortage maps to queries
  // only when the committed deployment is supplied; otherwise it is
  // resolved lazily in AdaptiveReplan. Each query's plan is extracted at
  // most once, regardless of how many hosts are overloaded.
  const std::set<HostId> overloaded(report.overloaded_hosts.begin(),
                                    report.overloaded_hosts.end());
  std::set<StreamId> to_replan;
  for (StreamId q : admitted) {
    const StreamInfo& info = catalog_->stream(q);
    const bool touched =
        std::any_of(info.leaves.begin(), info.leaves.end(),
                    [&](StreamId leaf) { return drifted.count(leaf) > 0; });
    if (touched) {
      to_replan.insert(q);
      continue;
    }
    if (deployment != nullptr &&
        PlanUsesAnyHost(*deployment, q, overloaded)) {
      to_replan.insert(q);
    }
  }
  report.queries_to_replan.assign(to_replan.begin(), to_replan.end());
  return report;
}

Status RunDriftCycle(SqprPlanner* planner, Catalog* catalog,
                     const std::map<StreamId, double>& measured_base_rates,
                     const DriftReport& report,
                     const std::function<void(StreamId)>& readmit_sink) {
  // 1. Remove the flagged queries ("considering the system without
  //    those queries", §IV-B).
  // RemoveQuery audits the deployment after each removal; while the
  // cycle is mid-flight the ledgers may legitimately be over budget
  // (rates grew under committed state), so ResourceExhausted is not
  // fatal here — the removal itself has been applied.
  // Defensive dedup: Analyze already emits a unique list, but a caller-
  // assembled report must not re-plan one query twice per round.
  std::set<StreamId> seen;
  for (StreamId q : report.queries_to_replan) {
    if (!seen.insert(q).second) continue;
    const Status st = planner->RemoveQuery(q);
    if (st.IsNotFound()) continue;
    if (!st.ok() && !st.IsResourceExhausted()) return st;
    readmit_sink(q);
  }

  // 2. Install measured rates; costs of still-committed operators may
  //    change, so refresh the ledgers.
  for (const auto& [s, rate] : measured_base_rates) {
    if (s >= 0 && s < catalog->num_streams() && rate > 0 &&
        catalog->stream(s).is_base &&
        std::abs(rate - catalog->stream(s).rate_mbps) > 1e-12) {
      SQPR_RETURN_IF_ERROR(catalog->UpdateBaseRate(s, rate));
    }
  }
  planner->RefreshAccounting();

  // 3. Evict further queries while any budget is over-committed under
  //    the new rates (§IV-B condition (b)). When no extractable plan
  //    touches the offending host, the usage is redundant support —
  //    purge it via EvictHost (which also evicts queries whose serving
  //    loses groundedness in the purge).
  while (true) {
    const HostId h = FirstOverBudgetHost(planner->deployment(), 1e-6);
    if (h == kInvalidHost) break;
    StreamId victim = kInvalidStream;
    for (StreamId q : planner->admitted_queries()) {
      if (PlanUsesHost(planner->deployment(), q, h)) {
        victim = q;
        break;
      }
    }
    if (victim != kInvalidStream) {
      const Status st = planner->RemoveQuery(victim);
      if (!st.ok() && !st.IsResourceExhausted() && !st.IsNotFound()) {
        return st;
      }
      readmit_sink(victim);
      continue;
    }
    Result<std::vector<StreamId>> purged = planner->EvictHost(h);
    if (!purged.ok()) return purged.status();
    for (StreamId q : *purged) readmit_sink(q);
    if (FirstOverBudgetHost(planner->deployment(), 1e-6) == h) {
      return Status::Internal("host " + std::to_string(h) +
                              " over budget with nothing left to evict");
    }
  }
  return Status::OK();
}

Result<std::vector<PlanningStats>> AdaptiveReplan(
    SqprPlanner* planner, Catalog* catalog,
    const std::map<StreamId, double>& measured_base_rates,
    const DriftReport& report) {
  // Steps 1–3 via the shared cycle, collecting removals for immediate
  // re-admission (step 4) under the corrected estimates.
  std::vector<StreamId> removed;
  SQPR_RETURN_IF_ERROR(
      RunDriftCycle(planner, catalog, measured_base_rates, report,
                    [&removed](StreamId q) { removed.push_back(q); }));

  std::vector<PlanningStats> stats;
  stats.reserve(removed.size());
  for (StreamId q : removed) {
    Result<PlanningStats> s = planner->SubmitQuery(q);
    if (!s.ok()) return s.status();
    stats.push_back(*s);
  }
  return stats;
}

}  // namespace sqpr
