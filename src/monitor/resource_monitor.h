#ifndef SQPR_MONITOR_RESOURCE_MONITOR_H_
#define SQPR_MONITOR_RESOURCE_MONITOR_H_

#include <functional>
#include <map>
#include <vector>

#include "common/status.h"
#include "model/catalog.h"
#include "planner/planner.h"
#include "planner/sqpr/sqpr_planner.h"

namespace sqpr {

/// Thresholds for the §IV-B drift detection. Both comparisons are
/// STRICT (exclusive): a measurement sitting exactly on a threshold
/// does not trigger.
struct DriftOptions {
  /// Relative deviation of a measured base-stream rate from the
  /// catalog estimate that triggers re-planning ("differs from the
  /// initial estimates by a given threshold"). A stream drifts when
  /// |measured - estimate| / estimate > rate_threshold; a deviation
  /// exactly at the threshold counts as on-estimate (it is still
  /// installed by the drift cycle, so estimates converge either way).
  double rate_threshold = 0.2;
  /// CPU utilisation above which a host counts as suffering a resource
  /// shortage (fraction of budget). Strict: utilisation == threshold is
  /// not a shortage, so the default 1.0 flags only hosts genuinely
  /// *over* budget, never one running exactly at capacity.
  double shortage_utilization = 1.0;
};

/// What the monitor found in one reporting period.
struct DriftReport {
  /// Base streams whose measured rate deviates beyond the threshold.
  std::vector<StreamId> drifted_base_streams;
  /// Hosts whose measured CPU exceeds the shortage threshold.
  std::vector<HostId> overloaded_hosts;
  /// Admitted queries affected by either condition — the re-planning
  /// list of §IV-B. Deduplicated (sorted, unique): a query implicated by
  /// both a drifted base stream and an overloaded host appears once, so
  /// one reporting period re-plans it exactly once.
  std::vector<StreamId> queries_to_replan;

  bool empty() const {
    return drifted_base_streams.empty() && overloaded_hosts.empty();
  }
};

/// The planner-side half of the paper's resource monitoring loop
/// (§IV-C): DISSP hosts sample utilisation and stream rates; this class
/// compares the reports against the catalog's cost-model estimates and
/// periodically constructs the list of queries needing re-planning
/// (§IV-B conditions (a) estimate drift and (b) resource shortage).
class ResourceMonitor {
 public:
  ResourceMonitor(const Catalog* catalog, DriftOptions options)
      : catalog_(catalog), options_(options) {}

  /// Analyses one reporting period.
  ///  * `measured_base_rates` — observed Mbps per base stream (absent
  ///    streams are assumed on-estimate);
  ///  * `cpu_utilization` — per-host CPU as a fraction of budget (e.g.
  ///    SimReport::cpu_utilization);
  ///  * `admitted` — currently admitted queries, used to map drifted
  ///    streams to affected queries via their leaf sets;
  ///  * `deployment` — optional committed state; when provided, queries
  ///    whose plans touch an overloaded host are also added to the
  ///    re-planning list (otherwise host shortages map to queries lazily
  ///    in AdaptiveReplan, where the deployment is available).
  /// The re-planning list is deduplicated across both conditions.
  /// Boundary semantics: empty inputs are all valid — no measured
  /// rates, no CPU observations, no admitted queries, or an empty
  /// deployment simply contribute nothing to the report. Threshold
  /// comparisons are strict; see DriftOptions.
  DriftReport Analyze(const std::map<StreamId, double>& measured_base_rates,
                      const std::vector<double>& cpu_utilization,
                      const std::vector<StreamId>& admitted,
                      const Deployment* deployment = nullptr) const;

 private:
  const Catalog* catalog_;
  DriftOptions options_;
};

/// First host whose committed usage exceeds any §II-B budget (CPU,
/// memory, NIC in/out or an outgoing link), or kInvalidHost when every
/// ledger fits. Used by the adaptive cycle and the planning service to
/// drive shortage-triggered eviction.
HostId FirstOverBudgetHost(const Deployment& deployment, double tol);

/// The shared remove+install+evict core of the §IV-B adaptive cycle,
/// parameterised on the re-admission sink — the ONE implementation both
/// §IV-B call sites use (AdaptiveReplan re-admits immediately; the
/// planning service feeds its bounded-round scheduler):
///
///  1. remove the report's re-planning list (deduplicated) from the
///     deployment, handing each removed query to `readmit_sink`;
///  2. install the measured base rates into the catalog (composite
///     rates and operator costs recompute exactly) and refresh the
///     deployment's resource ledgers;
///  3. while the refreshed deployment still over-commits a resource
///     (§IV-B condition (b)), evict admitted queries touching the
///     offending host — falling back to an EvictHost purge when only
///     redundant support, not an extractable plan, pins the host — and
///     hand those to `readmit_sink` too.
///
/// Mid-cycle the ledgers may legitimately over-commit (rates grew under
/// committed state), so ResourceExhausted from removal audits is
/// tolerated throughout. The sink is invoked once per removed query, in
/// removal order; re-admission policy is entirely the caller's.
Status RunDriftCycle(SqprPlanner* planner, Catalog* catalog,
                     const std::map<StreamId, double>& measured_base_rates,
                     const DriftReport& report,
                     const std::function<void(StreamId)>& readmit_sink);

/// Executes the full §IV-B adaptive cycle against a live SQPR planner:
/// RunDriftCycle (steps 1–3 above) followed by immediate re-admission of
/// every removed query through the planner (some may now be rejected —
/// the correct outcome when rates grew).
///
/// Returns the re-admission stats in removal order.
Result<std::vector<PlanningStats>> AdaptiveReplan(
    SqprPlanner* planner, Catalog* catalog,
    const std::map<StreamId, double>& measured_base_rates,
    const DriftReport& report);

}  // namespace sqpr

#endif  // SQPR_MONITOR_RESOURCE_MONITOR_H_
