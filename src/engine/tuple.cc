#include "engine/tuple.h"

namespace sqpr {
namespace engine {

ValueType TypeOf(const Value& v) {
  if (std::holds_alternative<int64_t>(v)) return ValueType::kInt64;
  if (std::holds_alternative<double>(v)) return ValueType::kDouble;
  return ValueType::kString;
}

std::string ValueToString(const Value& v) {
  switch (TypeOf(v)) {
    case ValueType::kInt64:
      return std::to_string(std::get<int64_t>(v));
    case ValueType::kDouble:
      return std::to_string(std::get<double>(v));
    case ValueType::kString:
      return std::get<std::string>(v);
  }
  return "";
}

int Schema::FindColumn(const std::string& name) const {
  for (int i = 0; i < num_columns(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return -1;
}

Schema Schema::Concat(const Schema& left, const Schema& right) {
  std::vector<Column> columns;
  columns.reserve(left.num_columns() + right.num_columns());
  for (int i = 0; i < left.num_columns(); ++i) {
    columns.push_back(left.column(i));
  }
  for (int i = 0; i < right.num_columns(); ++i) {
    Column c = right.column(i);
    if (left.FindColumn(c.name) >= 0) c.name = "r_" + c.name;
    columns.push_back(std::move(c));
  }
  return Schema(std::move(columns));
}

Result<Schema> Schema::Project(const std::vector<int>& indices) const {
  std::vector<Column> columns;
  columns.reserve(indices.size());
  for (int i : indices) {
    if (i < 0 || i >= num_columns()) {
      return Status::InvalidArgument("projection index out of range");
    }
    columns.push_back(columns_[i]);
  }
  return Schema(std::move(columns));
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (int i = 0; i < num_columns(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    switch (columns_[i].type) {
      case ValueType::kInt64:
        out += ":i64";
        break;
      case ValueType::kDouble:
        out += ":f64";
        break;
      case ValueType::kString:
        out += ":str";
        break;
    }
  }
  return out + ")";
}

Status CheckConforms(const Schema& schema, const Tuple& tuple) {
  if (static_cast<int>(tuple.values.size()) != schema.num_columns()) {
    return Status::InvalidArgument("tuple arity mismatch");
  }
  for (int i = 0; i < schema.num_columns(); ++i) {
    if (TypeOf(tuple.values[i]) != schema.column(i).type) {
      return Status::InvalidArgument("tuple type mismatch at column " +
                                     schema.column(i).name);
    }
  }
  return Status::OK();
}

}  // namespace engine
}  // namespace sqpr
