#ifndef SQPR_ENGINE_TUPLE_H_
#define SQPR_ENGINE_TUPLE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"

namespace sqpr {
namespace engine {

/// A relational value. The DISSP-like engine follows the paper's
/// relational streaming model ("streams may consist of relational tuples
/// with a given schema", §II-A).
using Value = std::variant<int64_t, double, std::string>;

enum class ValueType : uint8_t { kInt64, kDouble, kString };

ValueType TypeOf(const Value& v);
std::string ValueToString(const Value& v);

/// Column description.
struct Column {
  std::string name;
  ValueType type = ValueType::kInt64;
};

/// An ordered set of typed columns.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  int num_columns() const { return static_cast<int>(columns_.size()); }
  const Column& column(int i) const { return columns_[i]; }

  /// Index of a column by name; -1 when absent.
  int FindColumn(const std::string& name) const;

  /// Concatenation used by joins: left columns then right columns, with
  /// right-side duplicates renamed with a "r_" prefix.
  static Schema Concat(const Schema& left, const Schema& right);

  /// Projection onto a subset of column indices.
  Result<Schema> Project(const std::vector<int>& indices) const;

  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

/// A timestamped tuple. `ts_ms` is the event time used by windows.
struct Tuple {
  int64_t ts_ms = 0;
  std::vector<Value> values;
};

/// Checks that a tuple's arity and value types match the schema.
Status CheckConforms(const Schema& schema, const Tuple& tuple);

}  // namespace engine
}  // namespace sqpr

#endif  // SQPR_ENGINE_TUPLE_H_
