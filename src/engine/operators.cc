#include "engine/operators.h"

#include <algorithm>

#include "common/logging.h"

namespace sqpr {
namespace engine {

SymmetricHashJoin::SymmetricHashJoin(Schema left, Schema right, int left_key,
                                     int right_key, int64_t window_ms)
    : window_ms_(window_ms),
      output_schema_(Schema::Concat(left, right)) {
  schemas_[0] = std::move(left);
  schemas_[1] = std::move(right);
  keys_[0] = left_key;
  keys_[1] = right_key;
  SQPR_CHECK(keys_[0] >= 0 && keys_[0] < schemas_[0].num_columns());
  SQPR_CHECK(keys_[1] >= 0 && keys_[1] < schemas_[1].num_columns());
  SQPR_CHECK(schemas_[0].column(keys_[0]).type == ValueType::kInt64);
  SQPR_CHECK(schemas_[1].column(keys_[1]).type == ValueType::kInt64);
  SQPR_CHECK(window_ms > 0);
}

void SymmetricHashJoin::Evict(int port, int64_t now_ms) {
  auto& order = order_[port];
  auto& window = windows_[port];
  while (!order.empty() && order.front().first < now_ms - window_ms_) {
    const auto [ts, key] = order.front();
    order.pop_front();
    auto it = window.find(key);
    if (it == window.end()) continue;
    auto& bucket = it->second;
    while (!bucket.empty() && bucket.front().ts_ms < now_ms - window_ms_) {
      bucket.pop_front();
    }
    if (bucket.empty()) window.erase(it);
  }
}

Status SymmetricHashJoin::Push(int port, const Tuple& tuple,
                               const EmitFn& emit) {
  if (port < 0 || port > 1) return Status::InvalidArgument("bad join port");
  SQPR_RETURN_IF_ERROR(CheckConforms(schemas_[port], tuple));
  ++tuples_in_;
  const int other = 1 - port;
  Evict(other, tuple.ts_ms);

  const int64_t key = std::get<int64_t>(tuple.values[keys_[port]]);
  auto it = windows_[other].find(key);
  if (it != windows_[other].end()) {
    for (const Entry& match : it->second) {
      if (match.ts_ms < tuple.ts_ms - window_ms_) continue;
      Tuple out;
      out.ts_ms = std::max(tuple.ts_ms, match.ts_ms);
      const Tuple& left = port == 0 ? tuple : match.tuple;
      const Tuple& right = port == 0 ? match.tuple : tuple;
      out.values = left.values;
      out.values.insert(out.values.end(), right.values.begin(),
                        right.values.end());
      ++tuples_out_;
      emit(out);
    }
  }

  windows_[port][key].push_back({tuple.ts_ms, tuple});
  order_[port].emplace_back(tuple.ts_ms, key);
  return Status::OK();
}

size_t SymmetricHashJoin::window_size(int port) const {
  size_t total = 0;
  for (const auto& [key, bucket] : windows_[port]) {
    (void)key;
    total += bucket.size();
  }
  return total;
}

ModuloFilter::ModuloFilter(Schema input, int column, int64_t modulus,
                           int64_t remainder)
    : schema_(std::move(input)),
      column_(column),
      modulus_(modulus),
      remainder_(remainder) {
  SQPR_CHECK(column >= 0 && column < schema_.num_columns());
  SQPR_CHECK(schema_.column(column).type == ValueType::kInt64);
  SQPR_CHECK(modulus > 0);
}

Status ModuloFilter::Push(int port, const Tuple& tuple, const EmitFn& emit) {
  if (port != 0) return Status::InvalidArgument("filter has one port");
  SQPR_RETURN_IF_ERROR(CheckConforms(schema_, tuple));
  ++tuples_in_;
  const int64_t v = std::get<int64_t>(tuple.values[column_]);
  if (((v % modulus_) + modulus_) % modulus_ == remainder_) {
    ++tuples_out_;
    emit(tuple);
  }
  return Status::OK();
}

Project::Project(const Schema& input, std::vector<int> columns)
    : columns_(std::move(columns)) {
  Result<Schema> projected = input.Project(columns_);
  SQPR_CHECK(projected.ok()) << projected.status().ToString();
  schema_ = *projected;
}

Status Project::Push(int port, const Tuple& tuple, const EmitFn& emit) {
  if (port != 0) return Status::InvalidArgument("project has one port");
  ++tuples_in_;
  Tuple out;
  out.ts_ms = tuple.ts_ms;
  out.values.reserve(columns_.size());
  for (int c : columns_) {
    if (c < 0 || c >= static_cast<int>(tuple.values.size())) {
      return Status::InvalidArgument("projection index out of range");
    }
    out.values.push_back(tuple.values[c]);
  }
  ++tuples_out_;
  emit(out);
  return Status::OK();
}

Status Relay::Push(int port, const Tuple& tuple, const EmitFn& emit) {
  if (port != 0) return Status::InvalidArgument("relay has one port");
  ++tuples_in_;
  ++tuples_out_;
  emit(tuple);
  return Status::OK();
}

const char* AggFnName(AggFn fn) {
  switch (fn) {
    case AggFn::kCount:
      return "count";
    case AggFn::kSum:
      return "sum";
    case AggFn::kAvg:
      return "avg";
    case AggFn::kMin:
      return "min";
    case AggFn::kMax:
      return "max";
  }
  return "unknown";
}

TumblingAggregate::TumblingAggregate(Schema input, int key_column,
                                     int value_column, AggFn fn,
                                     int64_t window_ms)
    : input_schema_(std::move(input)),
      output_schema_(Schema({{"window_start", ValueType::kInt64},
                             {"key", ValueType::kInt64},
                             {std::string(AggFnName(fn)),
                              ValueType::kDouble}})),
      key_column_(key_column),
      value_column_(value_column),
      fn_(fn),
      window_ms_(window_ms) {}

void TumblingAggregate::EmitWindow(int64_t window_start,
                                   const std::map<int64_t, Accum>& groups,
                                   const EmitFn& emit) {
  for (const auto& [key, acc] : groups) {
    double out;
    switch (fn_) {
      case AggFn::kCount:
        out = static_cast<double>(acc.count);
        break;
      case AggFn::kSum:
        out = acc.sum;
        break;
      case AggFn::kAvg:
        out = acc.count > 0 ? acc.sum / static_cast<double>(acc.count) : 0.0;
        break;
      case AggFn::kMin:
        out = acc.min;
        break;
      case AggFn::kMax:
        out = acc.max;
        break;
      default:
        out = 0.0;
        break;
    }
    Tuple result;
    result.ts_ms = window_start + window_ms_;
    result.values = {Value(window_start), Value(key), Value(out)};
    ++tuples_out_;
    emit(result);
  }
}

Status TumblingAggregate::Push(int port, const Tuple& tuple,
                               const EmitFn& emit) {
  if (port != 0) return Status::InvalidArgument("aggregate has one port");
  ++tuples_in_;
  if (key_column_ < 0 || key_column_ >= input_schema_.num_columns() ||
      !std::holds_alternative<int64_t>(tuple.values[key_column_])) {
    return Status::InvalidArgument("bad aggregate key column");
  }
  double value = 0.0;
  if (fn_ != AggFn::kCount) {
    if (value_column_ < 0 || value_column_ >= input_schema_.num_columns()) {
      return Status::InvalidArgument("bad aggregate value column");
    }
    const Value& v = tuple.values[value_column_];
    if (std::holds_alternative<int64_t>(v)) {
      value = static_cast<double>(std::get<int64_t>(v));
    } else if (std::holds_alternative<double>(v)) {
      value = std::get<double>(v);
    } else {
      return Status::InvalidArgument("aggregate value must be numeric");
    }
  }

  // floor division for possibly-negative timestamps
  int64_t w = tuple.ts_ms / window_ms_;
  if (tuple.ts_ms < 0 && tuple.ts_ms % window_ms_ != 0) --w;
  const int64_t window_start = w * window_ms_;
  if (window_start < watermark_window_) {
    ++late_drops_;
    return Status::OK();
  }
  if (watermark_window_ == INT64_MIN) watermark_window_ = window_start;

  Accum& acc = windows_[window_start][std::get<int64_t>(
      tuple.values[key_column_])];
  if (acc.count == 0) {
    acc.min = value;
    acc.max = value;
  } else {
    acc.min = std::min(acc.min, value);
    acc.max = std::max(acc.max, value);
  }
  ++acc.count;
  acc.sum += value;

  // Flush every window strictly older than the newest one seen.
  while (!windows_.empty() && windows_.begin()->first < window_start) {
    EmitWindow(windows_.begin()->first, windows_.begin()->second, emit);
    watermark_window_ =
        std::max(watermark_window_, windows_.begin()->first + window_ms_);
    windows_.erase(windows_.begin());
  }
  return Status::OK();
}

Status TumblingAggregate::Flush(const EmitFn& emit) {
  while (!windows_.empty()) {
    EmitWindow(windows_.begin()->first, windows_.begin()->second, emit);
    watermark_window_ =
        std::max(watermark_window_, windows_.begin()->first + window_ms_);
    windows_.erase(windows_.begin());
  }
  return Status::OK();
}

Union::Union(Schema schema, int num_inputs)
    : schema_(std::move(schema)),
      num_inputs_(num_inputs),
      port_counts_(static_cast<size_t>(num_inputs), 0) {}

Status Union::Push(int port, const Tuple& tuple, const EmitFn& emit) {
  if (port < 0 || port >= num_inputs_) {
    return Status::InvalidArgument("union port out of range");
  }
  ++tuples_in_;
  ++port_counts_[port];
  ++tuples_out_;
  emit(tuple);
  return Status::OK();
}

RateSource::RateSource(double tuples_per_sec, int64_t key_domain,
                       uint64_t seed)
    : schema_(Schema({{"key", ValueType::kInt64},
                      {"payload", ValueType::kDouble}})),
      tuples_per_sec_(tuples_per_sec),
      key_domain_(key_domain),
      rng_(seed) {
  SQPR_CHECK(tuples_per_sec > 0);
  SQPR_CHECK(key_domain > 0);
}

int RateSource::EmitUntil(int64_t now_ms, const EmitFn& emit) {
  const double interval_ms = 1000.0 / tuples_per_sec_;
  int emitted = 0;
  while (next_emit_ms_ <= static_cast<double>(now_ms)) {
    Tuple t;
    t.ts_ms = static_cast<int64_t>(next_emit_ms_);
    t.values = {Value(static_cast<int64_t>(rng_.NextBounded(
                    static_cast<uint64_t>(key_domain_)))),
                Value(rng_.NextDouble())};
    emit(t);
    ++emitted;
    next_emit_ms_ += interval_ms;
  }
  return emitted;
}

double ExpectedJoinRate(double left_rate, double right_rate,
                        double window_sec, int64_t key_domain) {
  // Each left arrival matches right_rate * window_sec tuples in
  // expectation with probability 1/key_domain each, and vice versa.
  return 2.0 * left_rate * right_rate * window_sec /
         static_cast<double>(key_domain);
}

}  // namespace engine
}  // namespace sqpr
