#ifndef SQPR_ENGINE_OPERATORS_H_
#define SQPR_ENGINE_OPERATORS_H_

#include <climits>
#include <cstdint>
#include <deque>
#include <map>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "engine/tuple.h"

namespace sqpr {
namespace engine {

/// Sink invoked for every tuple an operator emits.
using EmitFn = std::function<void(const Tuple&)>;

/// Push-based streaming operator: tuples arrive on numbered input ports
/// and results are emitted through the sink. Implementations are
/// single-threaded (DISSP hosts schedule operators on a worker pool; the
/// simulator serialises per-operator work, which preserves semantics).
class StreamOperator {
 public:
  virtual ~StreamOperator() = default;
  virtual const char* kind() const = 0;
  virtual int num_inputs() const = 0;
  virtual const Schema& output_schema() const = 0;
  /// Processes one input tuple; emits zero or more outputs via `emit`.
  virtual Status Push(int port, const Tuple& tuple, const EmitFn& emit) = 0;

  /// Tuples processed and emitted so far (monitoring counters the
  /// resource monitors report to the planner, §IV-C).
  int64_t tuples_in() const { return tuples_in_; }
  int64_t tuples_out() const { return tuples_out_; }

 protected:
  int64_t tuples_in_ = 0;
  int64_t tuples_out_ = 0;
};

/// Sliding-window symmetric hash join on one key column per side.
/// Matches are exact equality on the key; each arriving tuple joins
/// against the opposite window's hash bucket, then is inserted into its
/// own window. Windows are time-based (`window_ms`) and evicted lazily.
class SymmetricHashJoin : public StreamOperator {
 public:
  SymmetricHashJoin(Schema left, Schema right, int left_key, int right_key,
                    int64_t window_ms);

  const char* kind() const override { return "join"; }
  int num_inputs() const override { return 2; }
  const Schema& output_schema() const override { return output_schema_; }
  Status Push(int port, const Tuple& tuple, const EmitFn& emit) override;

  size_t window_size(int port) const;

 private:
  struct Entry {
    int64_t ts_ms;
    Tuple tuple;
  };
  void Evict(int port, int64_t now_ms);

  Schema schemas_[2];
  int keys_[2];
  int64_t window_ms_;
  Schema output_schema_;
  std::unordered_map<int64_t, std::deque<Entry>> windows_[2];
  std::deque<std::pair<int64_t, int64_t>> order_[2];  // (ts, key) for evict
};

/// Filter on a single int64 column: keeps tuples with value % modulus ==
/// remainder (a deterministic, shareable predicate in the §II-C sense).
class ModuloFilter : public StreamOperator {
 public:
  ModuloFilter(Schema input, int column, int64_t modulus, int64_t remainder);

  const char* kind() const override { return "filter"; }
  int num_inputs() const override { return 1; }
  const Schema& output_schema() const override { return schema_; }
  Status Push(int port, const Tuple& tuple, const EmitFn& emit) override;

 private:
  Schema schema_;
  int column_;
  int64_t modulus_;
  int64_t remainder_;
};

/// Projection onto a subset of columns.
class Project : public StreamOperator {
 public:
  Project(const Schema& input, std::vector<int> columns);

  const char* kind() const override { return "project"; }
  int num_inputs() const override { return 1; }
  const Schema& output_schema() const override { return schema_; }
  Status Push(int port, const Tuple& tuple, const EmitFn& emit) override;

 private:
  Schema schema_;
  std::vector<int> columns_;
};

/// The µ relay operator of §II-C: forwards its input unchanged. Hosts
/// use relays to make streams available to other hosts.
class Relay : public StreamOperator {
 public:
  explicit Relay(Schema schema) : schema_(std::move(schema)) {}

  const char* kind() const override { return "relay"; }
  int num_inputs() const override { return 1; }
  const Schema& output_schema() const override { return schema_; }
  Status Push(int port, const Tuple& tuple, const EmitFn& emit) override;

 private:
  Schema schema_;
};

/// Aggregate functions supported by TumblingAggregate.
enum class AggFn : uint8_t { kCount, kSum, kAvg, kMin, kMax };

const char* AggFnName(AggFn fn);

/// Tumbling-window group-by aggregation over one numeric column.
///
/// Tuples are assigned to the window [k·w, (k+1)·w) containing their
/// event time. When a tuple arrives for a later window, every completed
/// window is flushed in (window, key) order — event time is assumed
/// near-monotone per stream, as produced by RateSource; tuples older
/// than the oldest open window are counted in late_drops() and dropped.
/// Output schema: (window_start:i64, key:i64, agg:f64).
class TumblingAggregate : public StreamOperator {
 public:
  /// `value_column` must be an int64 or double column; ignored (and -1
  /// allowed) for kCount.
  TumblingAggregate(Schema input, int key_column, int value_column, AggFn fn,
                    int64_t window_ms);

  const char* kind() const override { return "aggregate"; }
  int num_inputs() const override { return 1; }
  const Schema& output_schema() const override { return output_schema_; }
  Status Push(int port, const Tuple& tuple, const EmitFn& emit) override;

  /// Flushes every open window (end-of-stream).
  Status Flush(const EmitFn& emit);

  int64_t late_drops() const { return late_drops_; }

 private:
  struct Accum {
    int64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
  };
  void EmitWindow(int64_t window_start,
                  const std::map<int64_t, Accum>& groups, const EmitFn& emit);

  Schema input_schema_;
  Schema output_schema_;
  int key_column_;
  int value_column_;
  AggFn fn_;
  int64_t window_ms_;
  // window start -> key -> accumulator; std::map keeps flush order
  // deterministic.
  std::map<int64_t, std::map<int64_t, Accum>> windows_;
  int64_t late_drops_ = 0;
  int64_t watermark_window_ = INT64_MIN;  // oldest open window start
};

/// N-way union of identical-schema streams: tuples pass through in
/// arrival order. The planner models unions as relays with several
/// inputs; the engine keeps them explicit for monitoring.
class Union : public StreamOperator {
 public:
  Union(Schema schema, int num_inputs);

  const char* kind() const override { return "union"; }
  int num_inputs() const override { return num_inputs_; }
  const Schema& output_schema() const override { return schema_; }
  Status Push(int port, const Tuple& tuple, const EmitFn& emit) override;

  /// Tuples seen per input port.
  int64_t port_count(int port) const { return port_counts_[port]; }

 private:
  Schema schema_;
  int num_inputs_;
  std::vector<int64_t> port_counts_;
};

/// Deterministic base-stream source: emits tuples with a uniformly drawn
/// key in [0, key_domain) and a payload, at a fixed inter-arrival time.
/// The standard base-stream schema is (key:i64, payload:f64).
class RateSource {
 public:
  RateSource(double tuples_per_sec, int64_t key_domain, uint64_t seed);

  const Schema& schema() const { return schema_; }
  /// Emits all tuples due in (last_emit, now_ms]; returns the count.
  int EmitUntil(int64_t now_ms, const EmitFn& emit);
  double tuples_per_sec() const { return tuples_per_sec_; }

 private:
  Schema schema_;
  double tuples_per_sec_;
  int64_t key_domain_;
  Rng rng_;
  double next_emit_ms_ = 0.0;
};

/// Expected join-output rate (tuples/sec) for two independent uniform
/// key streams: r_l * r_r * window_sec / key_domain matches on each side.
/// Used by engine tests to validate measured selectivity against theory.
double ExpectedJoinRate(double left_rate, double right_rate,
                        double window_sec, int64_t key_domain);

}  // namespace engine
}  // namespace sqpr

#endif  // SQPR_ENGINE_OPERATORS_H_
