#ifndef SQPR_SIM_CLUSTER_SIM_H_
#define SQPR_SIM_CLUSTER_SIM_H_

#include <map>
#include <memory>
#include <vector>

#include "common/status.h"
#include "engine/operators.h"
#include "plan/deployment.h"

namespace sqpr {

/// Simulation parameters tying the abstract planner quantities (Mbps,
/// CPU units) to concrete tuple streams.
struct SimConfig {
  /// Wire size of one tuple; converts stream Mbps to tuples/sec:
  /// tuples_per_sec = rate_mbps * 1e6 / 8 / tuple_bytes.
  double tuple_bytes = 1250.0;
  /// Global rate scale, < 1 to keep simulations cheap while preserving
  /// ratios (all utilisations scale together).
  double rate_scale = 1.0;
  /// Join window. Key domains are derived per join so that the expected
  /// engine output rate matches the catalog's cost-model rate, keeping
  /// the executed system consistent with what the planner assumed.
  int64_t window_ms = 1000;
  int64_t duration_ms = 10000;
  uint64_t seed = 42;
  /// Ground-truth overrides of base-stream injection rates (Mbps,
  /// unscaled). Sources inject at these rates while per-tuple CPU costs
  /// and join key domains stay derived from the catalog *estimates* —
  /// exactly the estimate/reality gap a §IV-C self-measurement should
  /// observe as rate and utilisation drift. Streams absent from the map
  /// inject at their catalog rate.
  std::map<StreamId, double> base_rate_overrides;
};

/// Per-host / per-query measurements from one simulation run.
struct SimReport {
  /// Fraction of each host's CPU budget consumed by operator work.
  std::vector<double> cpu_utilization;
  /// Sent plus received Mbps per host (the Fig. 7(c) metric).
  std::vector<double> network_mbps;
  /// Result tuples delivered per served query stream.
  std::map<StreamId, int64_t> delivered_tuples;
  /// Measured composite output rate in Mbps per stream (for cost-model
  /// drift detection, §IV-B).
  std::map<StreamId, double> measured_rate_mbps;
  int64_t total_tuples_processed = 0;
};

/// Executes a committed Deployment with real engine operators on a
/// simulated cluster: base-stream sources inject tuples at their hosts,
/// placed operators process them, flows carry streams between hosts and
/// served streams are delivered to clients. This is the stand-in for the
/// paper's Emulab/DISSP deployment (§V-B): it validates that admitted
/// plans actually run and produce results, and measures realised CPU and
/// network usage.
class ClusterSim {
 public:
  ClusterSim(const Deployment& deployment, const SimConfig& config);
  // Out-of-line: OpInstance/SourceInstance are defined in the .cc file.
  ~ClusterSim();

  /// Builds operator instances and wiring from the deployment. Must be
  /// called before Run. Fails if the deployment is invalid.
  Status Setup();

  /// Runs the simulation for config.duration_ms of virtual time.
  Result<SimReport> Run();

 private:
  struct OpInstance;
  struct SourceInstance;

  /// Publishes a tuple of `stream` appearing at `host` to local
  /// consumers, outgoing flows and client delivery. `origin` is false
  /// for flow re-publication at the receiving host, so each tuple
  /// counts toward the stream's measured production rate exactly once.
  void Publish(HostId host, StreamId stream, const engine::Tuple& tuple,
               bool origin = true);

  /// Nominal (catalog-estimate) tuple rate; the basis for per-tuple
  /// cost conversion and key-domain derivation.
  double TuplesPerSec(StreamId s) const;
  /// True injection rate: the base-rate override when one is set for
  /// `s`, the nominal rate otherwise. Sources emit at this rate.
  double TrueTuplesPerSec(StreamId s) const;

  const Deployment& deployment_;
  SimConfig config_;

  std::vector<std::unique_ptr<OpInstance>> ops_;
  std::vector<std::unique_ptr<SourceInstance>> sources_;
  // (host, stream) -> consumers [(op index, port)].
  std::map<std::pair<HostId, StreamId>, std::vector<std::pair<int, int>>>
      consumers_;
  // (host, stream) -> flow destinations.
  std::map<std::pair<HostId, StreamId>, std::vector<HostId>> flow_dests_;

  // Accounting.
  std::vector<double> busy_sec_;
  std::vector<double> bytes_sent_, bytes_received_;
  std::map<StreamId, int64_t> delivered_;
  std::map<StreamId, int64_t> produced_count_;
  int64_t total_processed_ = 0;
  int publish_depth_ = 0;
};

}  // namespace sqpr

#endif  // SQPR_SIM_CLUSTER_SIM_H_
