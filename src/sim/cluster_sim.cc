#include "sim/cluster_sim.h"

#include <algorithm>

#include "common/logging.h"

namespace sqpr {

namespace {

/// Schema of a composite stream: left-fold of base schemas in leaf order.
engine::Schema StreamSchema(const Catalog& catalog, StreamId s) {
  const StreamInfo& info = catalog.stream(s);
  engine::Schema base(
      {{"key", engine::ValueType::kInt64}, {"payload", engine::ValueType::kDouble}});
  if (info.is_base) return base;
  engine::Schema acc = base;
  for (size_t i = 1; i < info.leaves.size(); ++i) {
    acc = engine::Schema::Concat(acc, base);
  }
  return acc;
}

}  // namespace

struct ClusterSim::OpInstance {
  HostId host = kInvalidHost;
  OperatorId op_id = kInvalidOperator;
  StreamId output = kInvalidStream;
  std::vector<StreamId> inputs;
  double cpu_cost_per_tuple_sec = 0.0;
  std::unique_ptr<engine::StreamOperator> impl;
};

struct ClusterSim::SourceInstance {
  HostId host = kInvalidHost;
  StreamId stream = kInvalidStream;
  std::unique_ptr<engine::RateSource> impl;
};

ClusterSim::ClusterSim(const Deployment& deployment, const SimConfig& config)
    : deployment_(deployment), config_(config) {}

ClusterSim::~ClusterSim() = default;

double ClusterSim::TuplesPerSec(StreamId s) const {
  const double rate_mbps =
      deployment_.catalog().stream(s).rate_mbps * config_.rate_scale;
  return rate_mbps * 1e6 / 8.0 / config_.tuple_bytes;
}

double ClusterSim::TrueTuplesPerSec(StreamId s) const {
  auto it = config_.base_rate_overrides.find(s);
  if (it == config_.base_rate_overrides.end()) return TuplesPerSec(s);
  return it->second * config_.rate_scale * 1e6 / 8.0 / config_.tuple_bytes;
}

Status ClusterSim::Setup() {
  SQPR_RETURN_IF_ERROR(deployment_.Validate());
  const Catalog& catalog = deployment_.catalog();
  const Cluster& cluster = deployment_.cluster();
  busy_sec_.assign(cluster.num_hosts(), 0.0);
  bytes_sent_.assign(cluster.num_hosts(), 0.0);
  bytes_received_.assign(cluster.num_hosts(), 0.0);

  // Operator instances.
  for (HostId h = 0; h < cluster.num_hosts(); ++h) {
    for (OperatorId o : deployment_.OperatorsOn(h)) {
      const OperatorInfo& info = catalog.op(o);
      auto inst = std::make_unique<OpInstance>();
      inst->host = h;
      inst->op_id = o;
      inst->output = info.output;
      inst->inputs = info.inputs;
      // The planner's γ_o is the CPU fraction consumed at nominal input
      // rates; convert to seconds of CPU per input tuple.
      double nominal_in_tps = 0.0;
      for (StreamId in : info.inputs) nominal_in_tps += TuplesPerSec(in);
      inst->cpu_cost_per_tuple_sec =
          nominal_in_tps > 0 ? info.cpu_cost / nominal_in_tps : 0.0;

      switch (info.kind) {
        case OpKind::kJoin: {
          SQPR_CHECK(info.inputs.size() == 2);
          const engine::Schema left = StreamSchema(catalog, info.inputs[0]);
          const engine::Schema right = StreamSchema(catalog, info.inputs[1]);
          // Pick the key domain so the expected engine output rate equals
          // the catalog's cost-model rate for this stream.
          const double lt = TuplesPerSec(info.inputs[0]);
          const double rt = TuplesPerSec(info.inputs[1]);
          const double target = TuplesPerSec(info.output);
          const double window_sec = config_.window_ms / 1000.0;
          int64_t key_domain = std::max<int64_t>(
              1, static_cast<int64_t>(2.0 * lt * rt * window_sec /
                                      std::max(1e-9, target)));
          inst->impl = std::make_unique<engine::SymmetricHashJoin>(
              left, right, /*left_key=*/0, /*right_key=*/0, config_.window_ms);
          (void)key_domain;  // applied via the shared source key domain
          break;
        }
        case OpKind::kFilter:
          inst->impl = std::make_unique<engine::ModuloFilter>(
              StreamSchema(catalog, info.inputs[0]), /*column=*/0,
              /*modulus=*/2, /*remainder=*/0);
          break;
        case OpKind::kProject: {
          inst->impl = std::make_unique<engine::Project>(
              StreamSchema(catalog, info.inputs[0]), std::vector<int>{0, 1});
          break;
        }
      }
      ops_.push_back(std::move(inst));
    }
  }

  // Consumer wiring: map (host, input stream) -> (op index, port).
  for (size_t i = 0; i < ops_.size(); ++i) {
    for (size_t port = 0; port < ops_[i]->inputs.size(); ++port) {
      consumers_[{ops_[i]->host, ops_[i]->inputs[port]}].emplace_back(
          static_cast<int>(i), static_cast<int>(port));
    }
  }

  // Flow wiring.
  for (StreamId s = 0; s < catalog.num_streams(); ++s) {
    for (const auto& [from, to] : deployment_.FlowsOf(s)) {
      flow_dests_[{from, s}].push_back(to);
    }
  }

  // Sources: base streams that anything consumes, flows or serves.
  for (StreamId s = 0; s < catalog.num_streams(); ++s) {
    const StreamInfo& info = catalog.stream(s);
    if (!info.is_base || info.source_host == kInvalidHost) continue;
    const bool used = consumers_.count({info.source_host, s}) > 0 ||
                      flow_dests_.count({info.source_host, s}) > 0 ||
                      deployment_.ServingHost(s) == info.source_host;
    if (!used) continue;
    auto src = std::make_unique<SourceInstance>();
    src->host = info.source_host;
    src->stream = s;
    // One shared key domain: joins then realise selectivity ~ window /
    // key_domain. 1/selectivity_mid keys makes pairwise join rates land
    // in the cost model's band.
    const double window_sec = config_.window_ms / 1000.0;
    const double mid_selectivity =
        0.5 * (catalog.cost_model().selectivity_min +
               catalog.cost_model().selectivity_max);
    // Key domain from the *nominal* rate (the selectivity the cost
    // model assumed); injection at the *true* rate (override when the
    // sim stands in for §IV-C ground truth). When the two differ the
    // realised output rates drift off the estimates — the signal the
    // measurement loop exists to observe.
    const double tps = TuplesPerSec(s);
    const int64_t key_domain = std::max<int64_t>(
        4, static_cast<int64_t>(2.0 * tps * window_sec / mid_selectivity /
                                2.0));
    src->impl = std::make_unique<engine::RateSource>(
        TrueTuplesPerSec(s), key_domain,
        config_.seed ^ static_cast<uint64_t>(s) * 0x9e37u);
    sources_.push_back(std::move(src));
  }
  return Status::OK();
}

void ClusterSim::Publish(HostId host, StreamId stream,
                         const engine::Tuple& tuple, bool origin) {
  // Guard against pathological recursion (validated deployments are
  // acyclic, so depth is bounded by the support-chain length).
  SQPR_CHECK(++publish_depth_ < 256) << "publish recursion too deep";
  const double bytes = config_.tuple_bytes;

  // Count production once, at the originating host: a tuple arriving
  // over a flow is the same tuple at a new host, and double-counting it
  // would inflate the measured rate of every relayed stream — phantom
  // drift the §IV-C closed loop would then "correct" forever.
  if (origin) produced_count_[stream] += 1;

  // Client delivery.
  if (deployment_.ServingHost(stream) == host) {
    delivered_[stream] += 1;
    bytes_sent_[host] += bytes;
  }

  // Local consumers.
  auto cit = consumers_.find({host, stream});
  if (cit != consumers_.end()) {
    for (const auto& [op_index, port] : cit->second) {
      OpInstance& inst = *ops_[op_index];
      busy_sec_[host] += inst.cpu_cost_per_tuple_sec;
      ++total_processed_;
      const Status pushed = inst.impl->Push(
          port, tuple, [this, &inst](const engine::Tuple& out) {
            Publish(inst.host, inst.output, out);
          });
      SQPR_CHECK(pushed.ok()) << pushed.ToString();
    }
  }

  // Outgoing flows.
  auto fit = flow_dests_.find({host, stream});
  if (fit != flow_dests_.end()) {
    for (HostId dest : fit->second) {
      bytes_sent_[host] += bytes;
      bytes_received_[dest] += bytes;
      Publish(dest, stream, tuple, /*origin=*/false);
    }
  }
  --publish_depth_;
}

Result<SimReport> ClusterSim::Run() {
  const Cluster& cluster = deployment_.cluster();
  const int64_t step_ms = 10;
  for (int64_t now = 0; now <= config_.duration_ms; now += step_ms) {
    for (auto& src : sources_) {
      src->impl->EmitUntil(now, [this, &src](const engine::Tuple& t) {
        Publish(src->host, src->stream, t);
      });
    }
  }

  SimReport report;
  const double duration_sec = config_.duration_ms / 1000.0;
  report.cpu_utilization.resize(cluster.num_hosts());
  report.network_mbps.resize(cluster.num_hosts());
  for (HostId h = 0; h < cluster.num_hosts(); ++h) {
    const double cpu = cluster.host(h).cpu;
    // busy_sec_ is already scale-free: the per-tuple cost was derived
    // from the *scaled* nominal tuple rate, so the scaled tuple counts
    // cancel the scaling exactly. Normalise by capacity only.
    report.cpu_utilization[h] = cpu > 0 ? busy_sec_[h] / duration_sec / cpu : 0;
    report.network_mbps[h] = (bytes_sent_[h] + bytes_received_[h]) * 8.0 /
                             1e6 / duration_sec / config_.rate_scale;
  }
  report.delivered_tuples = delivered_;
  for (const auto& [s, count] : produced_count_) {
    report.measured_rate_mbps[s] = static_cast<double>(count) *
                                   config_.tuple_bytes * 8.0 / 1e6 /
                                   duration_sec / config_.rate_scale;
  }
  report.total_tuples_processed = total_processed_;
  return report;
}

}  // namespace sqpr
