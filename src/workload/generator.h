#ifndef SQPR_WORKLOAD_GENERATOR_H_
#define SQPR_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "model/catalog.h"
#include "model/ids.h"

namespace sqpr {

/// Parameters of the §V evaluation workload: k-way join queries over a
/// pool of base streams picked with Zipfian skew (parameter 1 in the
/// baseline setup; swept over [0, 2] in Fig. 4(c)).
struct WorkloadConfig {
  int num_base_streams = 500;
  double base_rate_mbps = 10.0;
  /// Zipf skew for base-stream popularity; 0 = uniform.
  double zipf_s = 1.0;
  /// Query arities drawn uniformly ("equal parts of two-way, three-way
  /// and four-way joins", §V).
  std::vector<int> arities = {2, 3, 4};
  int num_queries = 1000;
  uint64_t seed = 1;
};

/// A generated workload: the base stream pool plus the sequence of
/// requested (canonical) result streams. Repeats are possible and
/// intentional — they exercise the dedup path of Algorithm 1 line 3.
struct Workload {
  std::vector<StreamId> base_streams;
  std::vector<StreamId> queries;

  /// Number of distinct requested streams (repeat submissions collapse).
  int DistinctQueryCount() const;
};

/// Registers base streams (uniformly spread over `num_hosts` hosts, §V)
/// and draws the query sequence into `catalog`.
Result<Workload> GenerateWorkload(const WorkloadConfig& config,
                                  int num_hosts, Catalog* catalog);

}  // namespace sqpr

#endif  // SQPR_WORKLOAD_GENERATOR_H_
