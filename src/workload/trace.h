#ifndef SQPR_WORKLOAD_TRACE_H_
#define SQPR_WORKLOAD_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "service/event_loop.h"
#include "workload/generator.h"

namespace sqpr {

/// Parameters of a synthetic service trace: the event mix the continuous
/// planning loop faces in sustained operation — arrivals and departures
/// (query churn), host failures and rejoins (topology churn), monitor
/// drift reports and periodic ticks (§IV-B/§IV-C).
struct TraceConfig {
  int num_events = 200;
  /// Virtual-time gap between consecutive events, drawn uniformly from
  /// [1, 2 * mean_gap_ms).
  int64_t mean_gap_ms = 50;

  /// Relative weights of the event kinds. Departures only fire while
  /// queries are active, joins only while hosts are down, failures only
  /// while at least two hosts are up (the planner needs a survivor).
  double arrival_weight = 1.0;
  double departure_weight = 0.35;
  double failure_weight = 0.03;
  double join_weight = 0.06;
  double drift_weight = 0.05;
  double tick_weight = 0.10;

  /// Floors enforced by swapping kinds in the tail of the trace, so any
  /// trace long enough is guaranteed to exercise failure recovery and
  /// the adaptive loop at least this often.
  int min_failures = 1;
  int min_drift_reports = 1;

  /// Measured-rate multiplier range for drift reports (both directions:
  /// values < 1 free capacity, > 1 trigger shortage eviction).
  double drift_scale_lo = 0.5;
  double drift_scale_hi = 2.5;
  /// Base streams sampled per drift report.
  int drift_streams_per_report = 2;

  uint64_t seed = 1;
};

/// Generates a deterministic event trace over an already generated
/// workload (the arrivals consume `workload.queries` in order, wrapping
/// around). Requires num_hosts >= 2 when failures are enabled.
Result<std::vector<Event>> GenerateTrace(const TraceConfig& config,
                                         const Workload& workload,
                                         int num_hosts,
                                         const Catalog& catalog);

/// Human-readable/diffable text serialisation, one event per line:
///   # comments and blank lines ignored
///   <t_ms> arrival <stream>
///   <t_ms> departure <stream>
///   <t_ms> host-failure <host>
///   <t_ms> host-join <host>
///   <t_ms> monitor <n> <stream> <mbps> ... [cpu <m> <u0> ...]
///   <t_ms> tick
Status SaveTrace(const std::vector<Event>& events, const std::string& path);
Result<std::vector<Event>> LoadTrace(const std::string& path);

}  // namespace sqpr

#endif  // SQPR_WORKLOAD_TRACE_H_
