#ifndef SQPR_WORKLOAD_TRACE_H_
#define SQPR_WORKLOAD_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "service/event_loop.h"
#include "workload/generator.h"

namespace sqpr {

/// Parameters of a synthetic service trace: the event mix the continuous
/// planning loop faces in sustained operation — arrivals and departures
/// (query churn), host failures and rejoins (topology churn), monitor
/// drift reports and periodic ticks (§IV-B/§IV-C).
struct TraceConfig {
  int num_events = 200;
  /// Virtual-time gap between consecutive events, drawn uniformly from
  /// [1, 2 * mean_gap_ms).
  int64_t mean_gap_ms = 50;

  /// Relative weights of the event kinds. Departures only fire while
  /// queries are active, joins only while hosts are down, failures only
  /// while at least two hosts are up (the planner needs a survivor).
  double arrival_weight = 1.0;
  double departure_weight = 0.35;
  double failure_weight = 0.03;
  double join_weight = 0.06;
  double drift_weight = 0.05;
  double tick_weight = 0.10;

  /// Floors enforced by swapping kinds in the tail of the trace, so any
  /// trace long enough is guaranteed to exercise failure recovery and
  /// the adaptive loop at least this often. In closed-loop traces the
  /// drift floor counts rate directives instead of monitor reports.
  int min_failures = 1;
  int min_drift_reports = 1;

  /// Closed-loop traces (§IV-C): drift slots emit ground-truth
  /// rate-trajectory directives — the kind sampled uniformly from
  /// {constant, step, walk, periodic}, shaped by the drift scale range
  /// below — instead of scripted kMonitorReport events. Replayed with
  /// ServiceOptions::closed_loop, the service's own periodic
  /// self-measurements observe the trajectories and trigger re-planning;
  /// such traces contain *zero* hand-authored measurements. Raise
  /// tick_weight when enabling this: measurements ride ticks.
  bool closed_loop = false;

  /// Measured-rate multiplier range for drift reports (both directions:
  /// values < 1 free capacity, > 1 trigger shortage eviction).
  double drift_scale_lo = 0.5;
  double drift_scale_hi = 2.5;
  /// Base streams sampled per drift report.
  int drift_streams_per_report = 2;

  uint64_t seed = 1;
};

/// Generates a deterministic event trace over an already generated
/// workload (the arrivals consume `workload.queries` in order, wrapping
/// around). Requires num_hosts >= 2 when failures are enabled.
Result<std::vector<Event>> GenerateTrace(const TraceConfig& config,
                                         const Workload& workload,
                                         int num_hosts,
                                         const Catalog& catalog);

/// Human-readable/diffable text serialisation, one event per line:
///   # comments and blank lines ignored
///   <t_ms> arrival <stream>
///   <t_ms> departure <stream>
///   <t_ms> host-failure <host>
///   <t_ms> host-join <host>
///   <t_ms> monitor <n> <stream> <mbps> ... [cpu <m> <u0> ...]
///   <t_ms> tick
///   <t_ms> rate <stream> constant <mbps>
///   <t_ms> rate <stream> step <mbps> <at_ms> <factor>
///   <t_ms> rate <stream> walk <mbps> <period_ms> <vol> <min_f> <max_f>
///   <t_ms> rate <stream> periodic <mbps> <period_ms> <amplitude> <phase>
/// (`rate` lines are closed-loop ground-truth directives; their times —
/// step_at, periods — are relative to the event timestamp.)
/// Parse errors report the line number and a snippet of the offending
/// line.
Status SaveTrace(const std::vector<Event>& events, const std::string& path);
Result<std::vector<Event>> LoadTrace(const std::string& path);

}  // namespace sqpr

#endif  // SQPR_WORKLOAD_TRACE_H_
