#include "workload/trace.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "common/rng.h"

namespace sqpr {
namespace {

/// Event kinds weighted for sampling; eligibility is state-dependent.
enum Kind { kArr, kDep, kFail, kJoin, kDrift, kTick, kKindCount };

/// Samples a ground-truth trajectory for a closed-loop drift slot: the
/// stream's actual rate departs from the catalog estimate by a shape
/// drawn from {constant, step, walk, periodic}, scaled into the
/// configured drift range.
RateTrajectory SampleTrajectory(const TraceConfig& config,
                                const Catalog& catalog, StreamId s,
                                Rng* rng) {
  RateTrajectory t;
  t.stream = s;
  t.base_rate_mbps = catalog.stream(s).rate_mbps;
  const double scale =
      rng->NextDouble(config.drift_scale_lo, config.drift_scale_hi);
  switch (rng->NextBounded(4)) {
    case 0:
      t.kind = RateTrajectory::Kind::kConstant;
      t.base_rate_mbps *= scale;
      break;
    case 1:
      t.kind = RateTrajectory::Kind::kStep;
      t.step_at_ms =
          config.mean_gap_ms * (2 + static_cast<int64_t>(rng->NextBounded(6)));
      t.step_factor = scale;
      break;
    case 2:
      t.kind = RateTrajectory::Kind::kRandomWalk;
      t.period_ms = std::max<int64_t>(1, config.mean_gap_ms);
      t.volatility =
          std::min(0.5, std::max(0.05, std::abs(scale - 1.0) / 4.0));
      t.min_factor = std::min(1.0, config.drift_scale_lo);
      t.max_factor = std::max(1.0, config.drift_scale_hi);
      break;
    default:
      t.kind = RateTrajectory::Kind::kPeriodic;
      t.period_ms = std::max<int64_t>(1, 12 * config.mean_gap_ms);
      t.amplitude = std::min(0.95, std::max(0.2, std::abs(scale - 1.0)));
      t.phase = rng->NextDouble(0.0, 6.28318530717958647692);
      break;
  }
  return t;
}

}  // namespace

Result<std::vector<Event>> GenerateTrace(const TraceConfig& config,
                                         const Workload& workload,
                                         int num_hosts,
                                         const Catalog& catalog) {
  if (config.num_events <= 0) {
    return Status::InvalidArgument("trace needs at least one event");
  }
  if (workload.queries.empty()) {
    return Status::InvalidArgument("workload has no queries");
  }
  if (workload.base_streams.empty()) {
    return Status::InvalidArgument("workload has no base streams");
  }
  if (num_hosts < 2 && (config.failure_weight > 0 || config.min_failures > 0)) {
    return Status::InvalidArgument(
        "host failures need at least two hosts");
  }

  Rng rng(config.seed);
  std::vector<Event> events;
  events.reserve(config.num_events);

  int64_t now = 0;
  size_t next_arrival = 0;            // index into workload.queries
  std::vector<StreamId> active;       // arrived, not yet departed
  std::set<HostId> failed;
  int failures = 0, drifts = 0;

  const double weights[kKindCount] = {
      config.arrival_weight, config.departure_weight, config.failure_weight,
      config.join_weight,    config.drift_weight,     config.tick_weight,
  };

  for (int i = 0; i < config.num_events; ++i) {
    now += 1 + static_cast<int64_t>(
                   rng.NextBounded(std::max<int64_t>(1, 2 * config.mean_gap_ms)));

    // Eligibility under the current trace state.
    bool eligible[kKindCount];
    eligible[kArr] = true;
    eligible[kDep] = !active.empty();
    eligible[kFail] =
        static_cast<int>(failed.size()) + 2 <= num_hosts;  // keep a survivor
    eligible[kJoin] = !failed.empty();
    eligible[kDrift] = true;
    eligible[kTick] = true;

    // Tail enforcement of the failure/drift floors: once the remaining
    // slots shrink to the outstanding minimums, stop sampling and emit
    // them. An owed failure reserves two slots: when every remaining
    // host but one is already down (failure ineligible), a host-join is
    // emitted first to make the failure possible on the next event.
    const int remaining = config.num_events - i;
    const int owed_failures =
        std::max(0, config.min_failures - failures);
    const int owed_drifts = std::max(0, config.min_drift_reports - drifts);
    int kind;
    if (owed_failures + owed_drifts > 0 &&
        2 * owed_failures + owed_drifts >= remaining) {
      if (owed_failures > 0) {
        // Failure ineligible implies a failed host exists, so the join
        // is always available as the unblocking move.
        kind = eligible[kFail] ? kFail : kJoin;
      } else {
        kind = kDrift;
      }
    } else {
      double total = 0.0;
      for (int k = 0; k < kKindCount; ++k) {
        if (eligible[k] && weights[k] > 0) total += weights[k];
      }
      if (total <= 0) {
        kind = kTick;
      } else {
        double draw = rng.NextDouble(0.0, total);
        kind = kTick;
        for (int k = 0; k < kKindCount; ++k) {
          if (!eligible[k] || weights[k] <= 0) continue;
          draw -= weights[k];
          if (draw <= 0) {
            kind = k;
            break;
          }
        }
      }
    }

    switch (kind) {
      case kArr: {
        const StreamId q =
            workload.queries[next_arrival++ % workload.queries.size()];
        events.push_back(Event::Arrival(now, q));
        active.push_back(q);
        break;
      }
      case kDep: {
        const size_t pick = rng.NextBounded(active.size());
        const StreamId q = active[pick];
        active.erase(active.begin() + static_cast<int64_t>(pick));
        events.push_back(Event::Departure(now, q));
        break;
      }
      case kFail: {
        HostId h;
        do {
          h = static_cast<HostId>(rng.NextBounded(num_hosts));
        } while (failed.count(h) > 0);
        failed.insert(h);
        ++failures;
        events.push_back(Event::HostFailure(now, h));
        break;
      }
      case kJoin: {
        const size_t pick = rng.NextBounded(failed.size());
        auto it = failed.begin();
        std::advance(it, static_cast<int64_t>(pick));
        const HostId h = *it;
        failed.erase(it);
        events.push_back(Event::HostJoin(now, h));
        break;
      }
      case kDrift: {
        if (config.closed_loop) {
          // Closed loop: script the *cause* (a ground-truth trajectory),
          // never the measurement — the replaying service observes it
          // through its own periodic self-measurements.
          const StreamId s = workload.base_streams[rng.NextBounded(
              workload.base_streams.size())];
          ++drifts;
          events.push_back(Event::RateDirective(
              now, SampleTrajectory(config, catalog, s, &rng)));
          break;
        }
        std::map<StreamId, double> rates;
        const int samples =
            std::max(1, std::min(config.drift_streams_per_report,
                                 static_cast<int>(workload.base_streams.size())));
        while (static_cast<int>(rates.size()) < samples) {
          const StreamId s = workload.base_streams[rng.NextBounded(
              workload.base_streams.size())];
          const double scale =
              rng.NextDouble(config.drift_scale_lo, config.drift_scale_hi);
          rates[s] = catalog.stream(s).rate_mbps * scale;
        }
        ++drifts;
        events.push_back(Event::MonitorReport(now, std::move(rates)));
        break;
      }
      case kTick:
      default:
        events.push_back(Event::Tick(now));
        break;
    }
  }
  return events;
}

Status SaveTrace(const std::vector<Event>& events, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::InvalidArgument("cannot open " + path);
  out << "# sqpr service trace v1 (" << events.size() << " events)\n";
  for (const Event& e : events) {
    out << e.time_ms << ' ';
    switch (e.kind) {
      case EventKind::kQueryArrival:
        out << "arrival " << e.query;
        break;
      case EventKind::kQueryDeparture:
        out << "departure " << e.query;
        break;
      case EventKind::kHostFailure:
        out << "host-failure " << e.host;
        break;
      case EventKind::kHostJoin:
        out << "host-join " << e.host;
        break;
      case EventKind::kMonitorReport: {
        out << "monitor " << e.measured_base_rates.size();
        char buf[64];
        for (const auto& [s, rate] : e.measured_base_rates) {
          std::snprintf(buf, sizeof(buf), " %d %.17g", s, rate);
          out << buf;
        }
        if (!e.cpu_utilization.empty()) {
          out << " cpu " << e.cpu_utilization.size();
          for (double u : e.cpu_utilization) {
            std::snprintf(buf, sizeof(buf), " %.17g", u);
            out << buf;
          }
        }
        break;
      }
      case EventKind::kTick:
        out << "tick";
        break;
      case EventKind::kRateDirective: {
        const RateTrajectory& t = e.trajectory;
        out << "rate " << t.stream << ' '
            << RateTrajectoryKindName(t.kind);
        char buf[160];
        switch (t.kind) {
          case RateTrajectory::Kind::kConstant:
            std::snprintf(buf, sizeof(buf), " %.17g", t.base_rate_mbps);
            break;
          case RateTrajectory::Kind::kStep:
            std::snprintf(buf, sizeof(buf), " %.17g %lld %.17g",
                          t.base_rate_mbps,
                          static_cast<long long>(t.step_at_ms),
                          t.step_factor);
            break;
          case RateTrajectory::Kind::kRandomWalk:
            std::snprintf(buf, sizeof(buf), " %.17g %lld %.17g %.17g %.17g",
                          t.base_rate_mbps,
                          static_cast<long long>(t.period_ms), t.volatility,
                          t.min_factor, t.max_factor);
            break;
          case RateTrajectory::Kind::kPeriodic:
            std::snprintf(buf, sizeof(buf), " %.17g %lld %.17g %.17g",
                          t.base_rate_mbps,
                          static_cast<long long>(t.period_ms), t.amplitude,
                          t.phase);
            break;
        }
        out << buf;
        break;
      }
    }
    out << '\n';
  }
  return out.good() ? Status::OK()
                    : Status::Internal("write failed: " + path);
}

namespace {

/// Bounded excerpt of an offending trace line for parse diagnostics.
std::string LineSnippet(const std::string& line) {
  constexpr size_t kMaxSnippet = 48;
  if (line.size() <= kMaxSnippet) return line;
  return line.substr(0, kMaxSnippet) + "...";
}

}  // namespace

Result<std::vector<Event>> LoadTrace(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::vector<Event> events;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    int64_t t;
    std::string kind;
    // Every diagnostic names the offending line and quotes it: a trace
    // is often generated or hand-edited far from where it is replayed,
    // and "malformed line" without the line is undebuggable.
    auto bad = [&](const std::string& what) {
      return Status::InvalidArgument(path + ":" + std::to_string(lineno) +
                                     ": " + what + " in '" +
                                     LineSnippet(line) + "'");
    };
    if (!(ss >> t >> kind)) {
      return bad("malformed line (expected '<time_ms> <kind> ...')");
    }
    if (kind == "arrival" || kind == "departure") {
      StreamId q;
      if (!(ss >> q)) return bad("missing stream id");
      events.push_back(kind == "arrival" ? Event::Arrival(t, q)
                                         : Event::Departure(t, q));
    } else if (kind == "host-failure" || kind == "host-join") {
      HostId h;
      if (!(ss >> h)) return bad("missing host id");
      events.push_back(kind == "host-failure" ? Event::HostFailure(t, h)
                                              : Event::HostJoin(t, h));
    } else if (kind == "monitor") {
      size_t n;
      if (!(ss >> n)) return bad("missing rate count");
      std::map<StreamId, double> rates;
      for (size_t i = 0; i < n; ++i) {
        StreamId s;
        double rate;
        if (!(ss >> s >> rate)) return bad("missing rate entry");
        rates[s] = rate;
      }
      std::vector<double> cpu;
      std::string marker;
      if (ss >> marker) {
        if (marker != "cpu") return bad("unexpected trailing token");
        size_t m;
        if (!(ss >> m)) return bad("missing cpu count");
        cpu.resize(m);
        for (size_t i = 0; i < m; ++i) {
          if (!(ss >> cpu[i])) return bad("missing cpu entry");
        }
      }
      events.push_back(
          Event::MonitorReport(t, std::move(rates), std::move(cpu)));
    } else if (kind == "tick") {
      events.push_back(Event::Tick(t));
    } else if (kind == "rate") {
      RateTrajectory traj;
      std::string shape;
      if (!(ss >> traj.stream >> shape)) {
        return bad("missing stream id or trajectory kind");
      }
      if (!(ss >> traj.base_rate_mbps)) return bad("missing base rate");
      if (shape == "constant") {
        traj.kind = RateTrajectory::Kind::kConstant;
      } else if (shape == "step") {
        traj.kind = RateTrajectory::Kind::kStep;
        if (!(ss >> traj.step_at_ms >> traj.step_factor)) {
          return bad("step needs '<at_ms> <factor>'");
        }
      } else if (shape == "walk") {
        traj.kind = RateTrajectory::Kind::kRandomWalk;
        if (!(ss >> traj.period_ms >> traj.volatility >> traj.min_factor >>
              traj.max_factor)) {
          return bad("walk needs '<period_ms> <vol> <min_f> <max_f>'");
        }
      } else if (shape == "periodic") {
        traj.kind = RateTrajectory::Kind::kPeriodic;
        if (!(ss >> traj.period_ms >> traj.amplitude >> traj.phase)) {
          return bad("periodic needs '<period_ms> <amplitude> <phase>'");
        }
      } else {
        return bad("unknown trajectory kind '" + shape + "'");
      }
      events.push_back(Event::RateDirective(t, std::move(traj)));
    } else {
      return bad("unknown event kind '" + kind + "'");
    }
  }
  return events;
}

}  // namespace sqpr
