#include "workload/trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "common/rng.h"

namespace sqpr {
namespace {

/// Event kinds weighted for sampling; eligibility is state-dependent.
enum Kind { kArr, kDep, kFail, kJoin, kDrift, kTick, kKindCount };

}  // namespace

Result<std::vector<Event>> GenerateTrace(const TraceConfig& config,
                                         const Workload& workload,
                                         int num_hosts,
                                         const Catalog& catalog) {
  if (config.num_events <= 0) {
    return Status::InvalidArgument("trace needs at least one event");
  }
  if (workload.queries.empty()) {
    return Status::InvalidArgument("workload has no queries");
  }
  if (workload.base_streams.empty()) {
    return Status::InvalidArgument("workload has no base streams");
  }
  if (num_hosts < 2 && (config.failure_weight > 0 || config.min_failures > 0)) {
    return Status::InvalidArgument(
        "host failures need at least two hosts");
  }

  Rng rng(config.seed);
  std::vector<Event> events;
  events.reserve(config.num_events);

  int64_t now = 0;
  size_t next_arrival = 0;            // index into workload.queries
  std::vector<StreamId> active;       // arrived, not yet departed
  std::set<HostId> failed;
  int failures = 0, drifts = 0;

  const double weights[kKindCount] = {
      config.arrival_weight, config.departure_weight, config.failure_weight,
      config.join_weight,    config.drift_weight,     config.tick_weight,
  };

  for (int i = 0; i < config.num_events; ++i) {
    now += 1 + static_cast<int64_t>(
                   rng.NextBounded(std::max<int64_t>(1, 2 * config.mean_gap_ms)));

    // Eligibility under the current trace state.
    bool eligible[kKindCount];
    eligible[kArr] = true;
    eligible[kDep] = !active.empty();
    eligible[kFail] =
        static_cast<int>(failed.size()) + 2 <= num_hosts;  // keep a survivor
    eligible[kJoin] = !failed.empty();
    eligible[kDrift] = true;
    eligible[kTick] = true;

    // Tail enforcement of the failure/drift floors: once the remaining
    // slots shrink to the outstanding minimums, stop sampling and emit
    // them. An owed failure reserves two slots: when every remaining
    // host but one is already down (failure ineligible), a host-join is
    // emitted first to make the failure possible on the next event.
    const int remaining = config.num_events - i;
    const int owed_failures =
        std::max(0, config.min_failures - failures);
    const int owed_drifts = std::max(0, config.min_drift_reports - drifts);
    int kind;
    if (owed_failures + owed_drifts > 0 &&
        2 * owed_failures + owed_drifts >= remaining) {
      if (owed_failures > 0) {
        // Failure ineligible implies a failed host exists, so the join
        // is always available as the unblocking move.
        kind = eligible[kFail] ? kFail : kJoin;
      } else {
        kind = kDrift;
      }
    } else {
      double total = 0.0;
      for (int k = 0; k < kKindCount; ++k) {
        if (eligible[k] && weights[k] > 0) total += weights[k];
      }
      if (total <= 0) {
        kind = kTick;
      } else {
        double draw = rng.NextDouble(0.0, total);
        kind = kTick;
        for (int k = 0; k < kKindCount; ++k) {
          if (!eligible[k] || weights[k] <= 0) continue;
          draw -= weights[k];
          if (draw <= 0) {
            kind = k;
            break;
          }
        }
      }
    }

    switch (kind) {
      case kArr: {
        const StreamId q =
            workload.queries[next_arrival++ % workload.queries.size()];
        events.push_back(Event::Arrival(now, q));
        active.push_back(q);
        break;
      }
      case kDep: {
        const size_t pick = rng.NextBounded(active.size());
        const StreamId q = active[pick];
        active.erase(active.begin() + static_cast<int64_t>(pick));
        events.push_back(Event::Departure(now, q));
        break;
      }
      case kFail: {
        HostId h;
        do {
          h = static_cast<HostId>(rng.NextBounded(num_hosts));
        } while (failed.count(h) > 0);
        failed.insert(h);
        ++failures;
        events.push_back(Event::HostFailure(now, h));
        break;
      }
      case kJoin: {
        const size_t pick = rng.NextBounded(failed.size());
        auto it = failed.begin();
        std::advance(it, static_cast<int64_t>(pick));
        const HostId h = *it;
        failed.erase(it);
        events.push_back(Event::HostJoin(now, h));
        break;
      }
      case kDrift: {
        std::map<StreamId, double> rates;
        const int samples =
            std::max(1, std::min(config.drift_streams_per_report,
                                 static_cast<int>(workload.base_streams.size())));
        while (static_cast<int>(rates.size()) < samples) {
          const StreamId s = workload.base_streams[rng.NextBounded(
              workload.base_streams.size())];
          const double scale =
              rng.NextDouble(config.drift_scale_lo, config.drift_scale_hi);
          rates[s] = catalog.stream(s).rate_mbps * scale;
        }
        ++drifts;
        events.push_back(Event::MonitorReport(now, std::move(rates)));
        break;
      }
      case kTick:
      default:
        events.push_back(Event::Tick(now));
        break;
    }
  }
  return events;
}

Status SaveTrace(const std::vector<Event>& events, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::InvalidArgument("cannot open " + path);
  out << "# sqpr service trace v1 (" << events.size() << " events)\n";
  for (const Event& e : events) {
    out << e.time_ms << ' ';
    switch (e.kind) {
      case EventKind::kQueryArrival:
        out << "arrival " << e.query;
        break;
      case EventKind::kQueryDeparture:
        out << "departure " << e.query;
        break;
      case EventKind::kHostFailure:
        out << "host-failure " << e.host;
        break;
      case EventKind::kHostJoin:
        out << "host-join " << e.host;
        break;
      case EventKind::kMonitorReport: {
        out << "monitor " << e.measured_base_rates.size();
        char buf[64];
        for (const auto& [s, rate] : e.measured_base_rates) {
          std::snprintf(buf, sizeof(buf), " %d %.17g", s, rate);
          out << buf;
        }
        if (!e.cpu_utilization.empty()) {
          out << " cpu " << e.cpu_utilization.size();
          for (double u : e.cpu_utilization) {
            std::snprintf(buf, sizeof(buf), " %.17g", u);
            out << buf;
          }
        }
        break;
      }
      case EventKind::kTick:
        out << "tick";
        break;
    }
    out << '\n';
  }
  return out.good() ? Status::OK()
                    : Status::Internal("write failed: " + path);
}

Result<std::vector<Event>> LoadTrace(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::vector<Event> events;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    int64_t t;
    std::string kind;
    if (!(ss >> t >> kind)) {
      return Status::InvalidArgument(path + ":" + std::to_string(lineno) +
                                     ": malformed line");
    }
    auto bad = [&](const char* what) {
      return Status::InvalidArgument(path + ":" + std::to_string(lineno) +
                                     ": " + what);
    };
    if (kind == "arrival" || kind == "departure") {
      StreamId q;
      if (!(ss >> q)) return bad("missing stream id");
      events.push_back(kind == "arrival" ? Event::Arrival(t, q)
                                         : Event::Departure(t, q));
    } else if (kind == "host-failure" || kind == "host-join") {
      HostId h;
      if (!(ss >> h)) return bad("missing host id");
      events.push_back(kind == "host-failure" ? Event::HostFailure(t, h)
                                              : Event::HostJoin(t, h));
    } else if (kind == "monitor") {
      size_t n;
      if (!(ss >> n)) return bad("missing rate count");
      std::map<StreamId, double> rates;
      for (size_t i = 0; i < n; ++i) {
        StreamId s;
        double rate;
        if (!(ss >> s >> rate)) return bad("missing rate entry");
        rates[s] = rate;
      }
      std::vector<double> cpu;
      std::string marker;
      if (ss >> marker) {
        if (marker != "cpu") return bad("unexpected trailing token");
        size_t m;
        if (!(ss >> m)) return bad("missing cpu count");
        cpu.resize(m);
        for (size_t i = 0; i < m; ++i) {
          if (!(ss >> cpu[i])) return bad("missing cpu entry");
        }
      }
      events.push_back(
          Event::MonitorReport(t, std::move(rates), std::move(cpu)));
    } else if (kind == "tick") {
      events.push_back(Event::Tick(t));
    } else {
      return bad("unknown event kind");
    }
  }
  return events;
}

}  // namespace sqpr
