#include "workload/generator.h"

#include <algorithm>
#include <set>

#include "common/zipf.h"

namespace sqpr {

int Workload::DistinctQueryCount() const {
  std::set<StreamId> distinct(queries.begin(), queries.end());
  return static_cast<int>(distinct.size());
}

Result<Workload> GenerateWorkload(const WorkloadConfig& config,
                                  int num_hosts, Catalog* catalog) {
  if (config.num_base_streams <= 0) {
    return Status::InvalidArgument("need at least one base stream");
  }
  if (num_hosts <= 0) {
    return Status::InvalidArgument("need at least one host");
  }
  if (config.arities.empty()) {
    return Status::InvalidArgument("need at least one query arity");
  }
  int max_arity = 0;
  for (int a : config.arities) {
    if (a < 2) return Status::InvalidArgument("join arity must be >= 2");
    max_arity = std::max(max_arity, a);
  }
  if (max_arity > config.num_base_streams) {
    return Status::InvalidArgument("arity exceeds base stream pool");
  }

  Rng rng(config.seed);
  Workload workload;
  workload.base_streams.reserve(config.num_base_streams);
  for (int i = 0; i < config.num_base_streams; ++i) {
    // "Base streams uniformly distributed over the hosts" (§V).
    const HostId host = static_cast<HostId>(i % num_hosts);
    workload.base_streams.push_back(
        catalog->AddBaseStream(host, config.base_rate_mbps));
  }

  const ZipfSampler zipf(workload.base_streams.size(), config.zipf_s);
  workload.queries.reserve(config.num_queries);
  for (int qi = 0; qi < config.num_queries; ++qi) {
    const int arity = config.arities[rng.NextBounded(config.arities.size())];
    // Draw `arity` distinct base streams by Zipf rank; rejection on
    // duplicates keeps the marginal distribution intact.
    std::set<StreamId> chosen;
    while (static_cast<int>(chosen.size()) < arity) {
      chosen.insert(workload.base_streams[zipf.Sample(rng)]);
    }
    Result<StreamId> query = catalog->CanonicalJoinStream(
        std::vector<StreamId>(chosen.begin(), chosen.end()));
    if (!query.ok()) return query.status();
    workload.queries.push_back(*query);
  }
  return workload;
}

}  // namespace sqpr
