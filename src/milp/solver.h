#ifndef SQPR_MILP_SOLVER_H_
#define SQPR_MILP_SOLVER_H_

#include <cstdint>
#include <vector>

#include "common/deadline.h"
#include "lp/model.h"
#include "lp/simplex.h"
#include "milp/cuts.h"

namespace sqpr {
namespace milp {

/// A mixed-integer linear program: an LP relaxation plus integrality marks.
struct Model {
  lp::Model lp;
  /// integer[v] == true constrains variable v to integral values. Must be
  /// resized to lp.num_variables() before solving.
  std::vector<bool> integer;
  /// Optional branching priority per variable (higher branches first;
  /// default 0). Lets a model rank structural decisions — e.g. SQPR
  /// branches admission, then operator placement, then availability,
  /// then flows — which collapses the symmetric search space.
  std::vector<int> branch_priority;

  /// Adds a variable to the relaxation and records its integrality.
  int AddVariable(double lb, double ub, double obj, bool is_integer,
                  std::string name = "", int priority = 0) {
    const int v = lp.AddVariable(lb, ub, obj, std::move(name));
    integer.resize(static_cast<size_t>(v) + 1, false);
    integer[static_cast<size_t>(v)] = is_integer;
    branch_priority.resize(static_cast<size_t>(v) + 1, 0);
    branch_priority[static_cast<size_t>(v)] = priority;
    return v;
  }

  /// Convenience for binary decision variables.
  int AddBinary(double obj, std::string name = "") {
    return AddVariable(0.0, 1.0, obj, true, std::move(name));
  }
};

/// Callback used to enforce constraint families that are too large to add
/// up front (SQPR's acyclicity constraints). Invoked on every integral
/// candidate; implementations append violated rows to the relaxation and
/// return how many were added. Added rows must be valid for every integer
/// solution of the true problem (globally valid cuts).
class LazyConstraintHandler {
 public:
  virtual ~LazyConstraintHandler() = default;
  virtual int AddViolatedCuts(const std::vector<double>& candidate,
                              lp::Model* relaxation) = 0;
  /// Optional separation on *fractional* LP points, invoked after each
  /// node relaxation. Returning violated cuts here keeps the search from
  /// exploring regions an integral candidate would only be rejected from
  /// later (e.g. SQPR's near-integral flow cycles). Default: none.
  virtual int AddFractionalCuts(const std::vector<double>& point,
                                lp::Model* relaxation) {
    (void)point;
    (void)relaxation;
    return 0;
  }
};

enum class MipStatus {
  kOptimal,       // incumbent proven optimal (within gap tolerance)
  kFeasible,      // limit hit with an incumbent in hand
  kInfeasible,    // proven no integer solution
  kNoSolution,    // limit hit before any incumbent was found
};

const char* MipStatusName(MipStatus status);

struct SolverOptions {
  Deadline deadline;
  /// Per-solve wall budget in milliseconds for degraded-mode solving
  /// (docs/ARCHITECTURE.md "Durability & degraded modes"). 0 disables;
  /// when set, the effective deadline is the *earlier* of `deadline` and
  /// now + solve_deadline_ms. A negative value yields an
  /// already-expired deadline — the solver returns its warm-start
  /// incumbent (or nothing) before exploring a single node, which is
  /// the deterministic lever the degraded-mode tests use: a wall-clock
  /// budget can never breach reproducibly, an instantly-expired one
  /// always does.
  int64_t solve_deadline_ms = 0;
  int64_t max_nodes = 1000000;
  /// Run presolve (fixed-column elimination, singleton-row absorption,
  /// activity-based bound propagation) before branch-and-bound. Exact:
  /// never changes the optimal value. SQPR's §IV-A variable fixing makes
  /// this especially effective — every fixed decision becomes a removed
  /// column. Lazy handlers keep seeing original-space candidates; their
  /// cuts are translated into the reduced space transparently.
  bool presolve = true;
  /// Root-node cutting planes (Gomory mixed-integer + knapsack covers),
  /// applied cut-and-branch style: rows stay valid for the whole tree.
  CutOptions cuts;
  double integrality_tol = 1e-6;
  /// Prune when node bound <= incumbent + max(gap_abs, gap_rel*|inc|)
  /// (maximisation). CPLEX-style relative gap default.
  double gap_abs = 1e-9;
  double gap_rel = 1e-6;
  lp::SimplexOptions lp_options;
  LazyConstraintHandler* lazy = nullptr;
  /// Optional known feasible integral point (e.g. the previous plan in
  /// SQPR's incremental planning); installed as the initial incumbent
  /// after a feasibility check.
  const std::vector<double>* warm_start = nullptr;
  /// Optional root LP basis from a previous solve of the same model
  /// structure (MipResult::root_basis of that solve), used to warm-start
  /// the root relaxation. Only honoured when `root_warm_basis_columns`
  /// matches the set of columns presolve keeps this time — presolve
  /// eliminating a different column set re-indexes the reduced space, so
  /// a stale basis would pair statuses with the wrong variables; on
  /// mismatch the basis is discarded (MipResult::warm_basis_discarded)
  /// and the solve cold-starts. The simplex phase-1 repairs any accepted
  /// basis, so reuse affects iteration counts, never correctness.
  const std::vector<lp::BasisState>* root_warm_basis = nullptr;
  /// Original-space column ids that survived presolve when the basis was
  /// harvested (MipResult::root_basis_columns). Required alongside
  /// root_warm_basis.
  const std::vector<int>* root_warm_basis_columns = nullptr;
  /// Run the root rounding dive (primal heuristic). Callers chaining a
  /// previous solve of the same structure set this false: the warm-start
  /// incumbent already plays the dive's role, and re-deriving it from the
  /// root fractional point is pure repeated work on every re-solve. The
  /// dive always runs when no incumbent is in hand, regardless of this
  /// flag — skipping is a policy for warm chains, never a correctness
  /// lever.
  bool root_dive = true;
};

struct MipResult {
  MipStatus status = MipStatus::kNoSolution;
  /// Incumbent assignment (empty when status is kInfeasible/kNoSolution).
  std::vector<double> x;
  double objective = 0.0;
  /// Valid dual (upper, for maximisation) bound on the true optimum.
  double best_bound = 0.0;
  int64_t nodes = 0;
  int64_t lp_iterations = 0;
  double wall_ms = 0.0;
  /// True when the search stopped because the (effective) deadline
  /// expired — as opposed to the node limit or a proven optimum. The
  /// caller decides whether the incumbent (kFeasible) is good enough or
  /// a heuristic fallback should take over (kNoSolution).
  bool deadline_hit = false;
  /// Basis of the first root LP solve (before root cuts — the fewest-row
  /// form maximises reuse: later solves may carry different cut rows and
  /// the simplex pads missing trailing rows with basic slacks). Feed back
  /// via SolverOptions::root_warm_basis. Empty when the root was never
  /// solved.
  std::vector<lp::BasisState> root_basis;
  /// Original-space columns surviving presolve in this solve (all
  /// columns when presolve was off); the compatibility signature for
  /// root_basis reuse.
  std::vector<int> root_basis_columns;
  /// Whether a supplied root_warm_basis was actually installed.
  bool used_warm_basis = false;
  /// Whether a supplied root_warm_basis was rejected because presolve
  /// eliminated a different column set than when it was harvested.
  bool warm_basis_discarded = false;

  bool has_solution() const {
    return status == MipStatus::kOptimal || status == MipStatus::kFeasible;
  }
  /// Relative optimality gap; 0 when proven optimal.
  double Gap() const;
};

/// Branch-and-bound MILP solver over SimplexSolver relaxations.
///
/// Node selection is best-bound with depth-first plunging (after a branch
/// the child on the "nearest integer" side is explored immediately, which
/// finds incumbents early the way the paper relies on CPLEX's feasibility
/// emphasis under tight deadlines). Branching picks the most fractional
/// integer variable, tie-broken by objective magnitude.
class Solver {
 public:
  MipResult Solve(const Model& model, const SolverOptions& options);
};

}  // namespace milp
}  // namespace sqpr

#endif  // SQPR_MILP_SOLVER_H_
