#ifndef SQPR_MILP_CUTS_H_
#define SQPR_MILP_CUTS_H_

#include <vector>

#include "lp/model.h"
#include "lp/simplex.h"

namespace sqpr {
namespace milp {

/// Root-node cutting-plane configuration (cut-and-branch).
struct CutOptions {
  bool enable = true;
  /// Separation rounds at the root: separate, re-solve, repeat while
  /// violated cuts are found.
  int max_rounds = 4;
  /// Cap per family per round; prefer the most violated.
  int max_cuts_per_round = 25;
  /// Minimum violation for a cut to be worth adding.
  double min_violation = 1e-4;
  /// Reject cuts whose |max coef| / |min coef| exceeds this (numerical
  /// hygiene; wildly scaled cuts destabilise the basis).
  double max_dynamism = 1e7;
  /// Skip Gomory separation above this row count — the dense basis LU
  /// would dominate solve time.
  int gomory_max_rows = 2000;
  bool gomory = true;
  bool knapsack_cover = true;
};

/// Generates globally valid cutting planes at the root relaxation.
///
/// Two families, chosen for the structure of SQPR models:
///
///  * **Knapsack cover cuts.** Every resource constraint (III.6a-d) is a
///    0/1 knapsack over flow/operator indicators; when the LP spreads
///    fractional mass over a set whose total demand exceeds the budget,
///    the (extended) cover inequality sum_{j in C} x_j <= |C|-1 cuts it.
///  * **Gomory mixed-integer cuts** reconstructed from the optimal
///    simplex basis: for each basic integer variable with fractional
///    value, the corresponding tableau row yields a GMI inequality. The
///    tableau is rebuilt from the returned basis via one dense LU
///    factorisation per separation round (bounded by gomory_max_rows).
///
/// Both families are valid for every integer-feasible point, so rows can
/// stay in the relaxation for the whole branch-and-bound search.
class CutGenerator {
 public:
  /// `integer` marks the integral columns of the model being solved (the
  /// reduced model when presolve ran). The mask is copied.
  CutGenerator(std::vector<bool> integer, CutOptions options);

  /// Appends violated cuts to `work` given the optimal relaxation result
  /// `rel` of `work`. Returns the number of rows added.
  int Separate(const lp::SimplexResult& rel, lp::Model* work);

  int total_gomory() const { return total_gomory_; }
  int total_cover() const { return total_cover_; }

 private:
  int SeparateCovers(const std::vector<double>& x, lp::Model* work);
  int SeparateGomory(const lp::SimplexResult& rel, lp::Model* work);

  std::vector<bool> integer_;
  CutOptions options_;
  int total_gomory_ = 0;
  int total_cover_ = 0;
  /// Rows already used to spawn a cover cut (avoid duplicates across
  /// rounds; keyed by row index).
  std::vector<bool> cover_used_;
};

}  // namespace milp
}  // namespace sqpr

#endif  // SQPR_MILP_CUTS_H_
