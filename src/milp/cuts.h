#ifndef SQPR_MILP_CUTS_H_
#define SQPR_MILP_CUTS_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "lp/model.h"
#include "lp/simplex.h"

namespace sqpr {
namespace milp {

/// One pooled cut row, stored in the *original* (pre-presolve) variable
/// space of the model family it was separated from.
struct PooledCut {
  double lb = 0.0;
  double ub = 0.0;
  std::vector<std::pair<int, double>> terms;
  std::string name;
};

/// A bounded pool of cuts reusable across consecutive solves of the same
/// model skeleton.
///
/// Soundness contract: a cut may enter the pool ONLY when it is valid for
/// every integer-feasible point of every model sharing the skeleton —
/// e.g. SQPR's lazy cycle cuts (Σ arcs of a cycle ≤ |C|−1 holds for any
/// acyclic integral flow regardless of residual capacities). Cuts derived
/// from a particular relaxation's right-hand sides (Gomory mixed-integer,
/// knapsack covers over residual budgets) are NOT poolable: residuals
/// move between rounds, so those rows can cut off the new optimum.
/// Callers key pools by structure version and drop them wholesale when
/// the skeleton changes (variable indices would dangle).
class CutPool {
 public:
  explicit CutPool(size_t max_cuts = 64) : max_cuts_(max_cuts) {}

  /// Records a cut; exact duplicates (same sorted terms and bounds) are
  /// ignored. When full, the oldest cut is evicted (FIFO) — determinism
  /// over cleverness.
  void Add(PooledCut cut);

  const std::vector<PooledCut>& cuts() const { return cuts_; }
  size_t size() const { return cuts_.size(); }
  bool empty() const { return cuts_.empty(); }

  /// Appends every pooled cut as a row of `lp`. The model must share the
  /// variable space the cuts were separated from.
  void InjectInto(lp::Model* lp) const;

 private:
  size_t max_cuts_;
  std::vector<PooledCut> cuts_;
};

/// Root-node cutting-plane configuration (cut-and-branch).
struct CutOptions {
  bool enable = true;
  /// Separation rounds at the root: separate, re-solve, repeat while
  /// violated cuts are found.
  int max_rounds = 4;
  /// Cap per family per round; prefer the most violated.
  int max_cuts_per_round = 25;
  /// Minimum violation for a cut to be worth adding.
  double min_violation = 1e-4;
  /// Reject cuts whose |max coef| / |min coef| exceeds this (numerical
  /// hygiene; wildly scaled cuts destabilise the basis).
  double max_dynamism = 1e7;
  /// Skip Gomory separation above this row count — the dense basis LU
  /// would dominate solve time.
  int gomory_max_rows = 2000;
  bool gomory = true;
  bool knapsack_cover = true;
};

/// Generates globally valid cutting planes at the root relaxation.
///
/// Two families, chosen for the structure of SQPR models:
///
///  * **Knapsack cover cuts.** Every resource constraint (III.6a-d) is a
///    0/1 knapsack over flow/operator indicators; when the LP spreads
///    fractional mass over a set whose total demand exceeds the budget,
///    the (extended) cover inequality sum_{j in C} x_j <= |C|-1 cuts it.
///  * **Gomory mixed-integer cuts** reconstructed from the optimal
///    simplex basis: for each basic integer variable with fractional
///    value, the corresponding tableau row yields a GMI inequality. The
///    tableau is rebuilt from the returned basis via one dense LU
///    factorisation per separation round (bounded by gomory_max_rows).
///
/// Both families are valid for every integer-feasible point, so rows can
/// stay in the relaxation for the whole branch-and-bound search.
class CutGenerator {
 public:
  /// `integer` marks the integral columns of the model being solved (the
  /// reduced model when presolve ran). The mask is copied.
  CutGenerator(std::vector<bool> integer, CutOptions options);

  /// Appends violated cuts to `work` given the optimal relaxation result
  /// `rel` of `work`. Returns the number of rows added.
  int Separate(const lp::SimplexResult& rel, lp::Model* work);

  int total_gomory() const { return total_gomory_; }
  int total_cover() const { return total_cover_; }

 private:
  int SeparateCovers(const std::vector<double>& x, lp::Model* work);
  int SeparateGomory(const lp::SimplexResult& rel, lp::Model* work);

  std::vector<bool> integer_;
  CutOptions options_;
  int total_gomory_ = 0;
  int total_cover_ = 0;
  /// Rows already used to spawn a cover cut (avoid duplicates across
  /// rounds; keyed by row index).
  std::vector<bool> cover_used_;
};

}  // namespace milp
}  // namespace sqpr

#endif  // SQPR_MILP_CUTS_H_
