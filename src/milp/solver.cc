#include "milp/solver.h"

#include <algorithm>
#include <cmath>
#include <climits>
#include <cstdlib>
#include <queue>

#include "common/logging.h"
#include "milp/presolve.h"
#include "obs/trace.h"

namespace sqpr {
namespace milp {
namespace {

/// One branch decision: tighten `var` to [lb, ub].
struct BoundChange {
  int var;
  double lb;
  double ub;
};

/// Open node in the search tree. Bound changes are stored as a chain to
/// the root so open nodes cost O(1) memory each.
struct Node {
  int parent = -1;          // index into the node arena, -1 for root
  BoundChange change{};     // no-op for the root
  double bound = 0.0;       // inherited dual bound (maximisation)
  int depth = 0;
};

struct QueueEntry {
  double bound;
  int node;
  bool operator<(const QueueEntry& other) const {
    return bound < other.bound;  // max-heap on bound
  }
};

class BranchAndBound {
 public:
  BranchAndBound(const Model& model, const SolverOptions& options)
      : base_(model), options_(options), work_(model.lp) {}

  /// Installs a starting basis for the first (root) LP solve. The caller
  /// is responsible for compatibility (Solver::Solve gates on the
  /// presolve column signature); the simplex itself repairs or silently
  /// drops a basis it cannot use, so a bad seed costs iterations, not
  /// correctness.
  void SeedBasis(std::vector<lp::BasisState> basis) {
    last_basis_ = std::move(basis);
  }

  MipResult Run();

 private:
  // Applies the bound-change chain of `node` onto work_ (after resetting
  // integer-variable bounds to the base model's).
  void ApplyBounds(int node);
  // Picks the most fractional integer variable; -1 if integral.
  int PickBranchVariable(const std::vector<double>& x) const;
  double PruneThreshold() const;
  bool IsIntegral(const std::vector<double>& x) const;
  void MaybeUpdateIncumbent(const std::vector<double>& x, double obj);
  // Processes one node; pushes children onto the queue / plunge slot.
  // Returns the node index to plunge into next, or -1.
  int ProcessNode(int node_index);
  // Aggressive rounding dive from a fractional LP point: fixes every
  // near-integral binary, rounds the most fractional one, re-solves, and
  // repeats. Installs an incumbent when it bottoms out integral. This is
  // how good solutions appear long before the branching tree would reach
  // them — the role CPLEX's feasibility heuristics play for the paper's
  // tight per-query timeouts.
  void DivingHeuristic(const std::vector<double>& start);
  double QueueBestBound() const;

  const Model& base_;
  SolverOptions options_;
  lp::Model work_;  // mutable copy; lazy cuts append rows here
  // Basis of the most recently solved relaxation; used to warm-start the
  // next node/dive LP (plunging makes consecutive LPs near-identical).
  std::vector<lp::BasisState> last_basis_;
  // Basis of the first root LP solve, exported via MipResult::root_basis
  // for cross-solve warm starts.
  std::vector<lp::BasisState> root_basis_;

  std::vector<Node> arena_;
  std::priority_queue<QueueEntry> open_;
  std::vector<double> incumbent_;
  double incumbent_obj_ = -lp::kInf;
  bool have_incumbent_ = false;
  double root_bound_ = lp::kInf;
  int64_t nodes_ = 0;
  int64_t lp_iterations_ = 0;
  int plunge_child_ = -1;
};

void BranchAndBound::ApplyBounds(int node) {
  for (int v = 0; v < base_.lp.num_variables(); ++v) {
    if (base_.integer[v]) {
      work_.SetVariableBounds(v, base_.lp.variable_lb(v),
                              base_.lp.variable_ub(v));
    }
  }
  for (int cur = node; cur >= 0; cur = arena_[cur].parent) {
    if (arena_[cur].parent < 0) break;  // root carries no change
    const BoundChange& bc = arena_[cur].change;
    const double lb = std::max(work_.variable_lb(bc.var), bc.lb);
    const double ub = std::min(work_.variable_ub(bc.var), bc.ub);
    if (lb > ub) {
      // Conflicting ancestors cannot happen: each branch only tightens
      // one side and descendants never relax it.
      SQPR_LOG_FATAL << "crossed bounds applying branch chain";
    }
    work_.SetVariableBounds(bc.var, lb, ub);
  }
}

int BranchAndBound::PickBranchVariable(const std::vector<double>& x) const {
  // Lexicographic: highest branching-priority class first, then the most
  // fractional variable weighted by objective importance within it.
  int best = -1;
  int best_priority = INT_MIN;
  double best_score = -1.0;
  for (int v = 0; v < base_.lp.num_variables(); ++v) {
    if (!base_.integer[v]) continue;
    const double frac = x[v] - std::floor(x[v]);
    const double dist = std::min(frac, 1.0 - frac);
    if (dist <= options_.integrality_tol) continue;
    const int priority = v < static_cast<int>(base_.branch_priority.size())
                             ? base_.branch_priority[v]
                             : 0;
    const double score =
        dist * (1.0 + std::sqrt(std::abs(base_.lp.objective(v))));
    if (priority > best_priority ||
        (priority == best_priority && score > best_score)) {
      best_priority = priority;
      best_score = score;
      best = v;
    }
  }
  return best;
}

double BranchAndBound::PruneThreshold() const {
  if (!have_incumbent_) return -lp::kInf;
  return incumbent_obj_ +
         std::max(options_.gap_abs,
                  options_.gap_rel * std::abs(incumbent_obj_));
}

bool BranchAndBound::IsIntegral(const std::vector<double>& x) const {
  for (int v = 0; v < base_.lp.num_variables(); ++v) {
    if (!base_.integer[v]) continue;
    const double frac = x[v] - std::floor(x[v]);
    if (std::min(frac, 1.0 - frac) > options_.integrality_tol) return false;
  }
  return true;
}

void BranchAndBound::MaybeUpdateIncumbent(const std::vector<double>& x,
                                          double obj) {
  if (have_incumbent_ && obj <= incumbent_obj_) return;
  incumbent_ = x;
  // Snap integer values exactly so downstream plan extraction can compare
  // against 0/1 without tolerances.
  for (int v = 0; v < base_.lp.num_variables(); ++v) {
    if (base_.integer[v]) incumbent_[v] = std::round(incumbent_[v]);
  }
  incumbent_obj_ = obj;
  have_incumbent_ = true;
}

double BranchAndBound::QueueBestBound() const {
  return open_.empty() ? -lp::kInf : open_.top().bound;
}

void BranchAndBound::DivingHeuristic(const std::vector<double>& start) {
  SQPR_TRACE_SPAN("milp/dive");
  const int n = base_.lp.num_variables();
  // Work on a private copy of the current bounds (includes lazy cuts via
  // work_ rows; variable bounds here are the *root* bounds).
  std::vector<std::pair<double, double>> saved(n);
  for (int v = 0; v < n; ++v) {
    saved[v] = {work_.variable_lb(v), work_.variable_ub(v)};
  }
  std::vector<double> x = start;
  lp::SimplexOptions lp_opts = options_.lp_options;
  lp_opts.deadline = options_.deadline;
  std::vector<lp::BasisState> dive_basis = last_basis_;

  const int max_rounds = 2 * n + 10;
  for (int round = 0; round < max_rounds; ++round) {
    if (options_.deadline.Expired()) break;
    // Fix near-integral binaries; round the most important fractional one.
    int frac_var = -1;
    int frac_priority = INT_MIN;
    double frac_score = -1.0;
    for (int v = 0; v < n; ++v) {
      if (!base_.integer[v]) continue;
      if (work_.variable_lb(v) == work_.variable_ub(v)) continue;
      const double frac = x[v] - std::floor(x[v]);
      const double dist = std::min(frac, 1.0 - frac);
      if (dist <= options_.integrality_tol) continue;
      const int priority = v < static_cast<int>(base_.branch_priority.size())
                               ? base_.branch_priority[v]
                               : 0;
      const double score =
          dist * (1.0 + std::sqrt(std::abs(base_.lp.objective(v))));
      if (priority > frac_priority ||
          (priority == frac_priority && score > frac_score)) {
        frac_priority = priority;
        frac_score = score;
        frac_var = v;
      }
    }
    double rounded_to = 0.0;
    if (frac_var >= 0) {
      // Round up when the variable carries positive objective (SQPR
      // admission) or meaningful fractional mass: covering-style models
      // need the mass committed, not shaved.
      const bool up = base_.lp.objective(frac_var) > 1e-9 ||
                      (x[frac_var] - std::floor(x[frac_var])) >= 0.2;
      rounded_to = up ? std::ceil(x[frac_var]) : std::floor(x[frac_var]);
      work_.SetVariableBounds(frac_var, rounded_to, rounded_to);
    }

    if (!dive_basis.empty()) lp_opts.warm_basis = &dive_basis;
    lp::SimplexSolver lp_solver(lp_opts);
    lp::SimplexResult rel = lp_solver.Solve(work_);
    lp_iterations_ += rel.iterations;
    for (int pass = 0; pass < 3 && rel.status == lp::SolveStatus::kOptimal &&
                       options_.lazy != nullptr;
         ++pass) {
      if (options_.lazy->AddFractionalCuts(rel.values, &work_) == 0) break;
      std::vector<lp::BasisState> keep = rel.basis_state;
      lp_opts.warm_basis = &keep;
      lp::SimplexSolver cut_solver(lp_opts);
      rel = cut_solver.Solve(work_);
      lp_iterations_ += rel.iterations;
    }
    if (rel.status == lp::SolveStatus::kInfeasible && frac_var >= 0) {
      // The rounding direction broke feasibility: try the other side
      // before giving up on the dive.
      const double flipped =
          rounded_to > x[frac_var] ? std::floor(x[frac_var])
                                   : std::ceil(x[frac_var]);
      work_.SetVariableBounds(frac_var, flipped, flipped);
      rel = lp_solver.Solve(work_);
      lp_iterations_ += rel.iterations;
    }
    if (getenv("SQPR_MILP_DEBUG")) {
      fprintf(stderr, "[dive] round=%d status=%s iters=%lld obj=%.3f\n",
              round, lp::SolveStatusName(rel.status),
              (long long)rel.iterations, rel.objective);
    }
    if (rel.status != lp::SolveStatus::kOptimal) break;
    dive_basis = std::move(rel.basis_state);
    x = rel.values;
    if (IsIntegral(x)) {
      bool cuts_ok = true;
      if (options_.lazy != nullptr) {
        cuts_ok = options_.lazy->AddViolatedCuts(x, &work_) == 0;
      }
      const Status feas = work_.CheckFeasible(x, 1e-5);
      if (getenv("SQPR_MILP_DEBUG")) {
        fprintf(stderr, "[dive] integral cuts_ok=%d feas=%s obj=%.3f\n",
                cuts_ok, feas.ToString().c_str(), rel.objective);
      }
      if (cuts_ok && feas.ok()) {
        MaybeUpdateIncumbent(x, rel.objective);
        break;
      }
      if (!cuts_ok) continue;  // cycle cuts added: keep diving against them
      break;
    }
  }

  for (int v = 0; v < n; ++v) {
    work_.SetVariableBounds(v, saved[v].first, saved[v].second);
  }
}

int BranchAndBound::ProcessNode(int node_index) {
  SQPR_TRACE_SPAN_ARGS(span, "milp/node", "node", "arena_index");
  span.set_args(static_cast<uint64_t>(nodes_),
                static_cast<uint64_t>(node_index));
  ++nodes_;
  ApplyBounds(node_index);

  lp::SimplexOptions lp_opts = options_.lp_options;
  lp_opts.deadline = options_.deadline;
  if (!last_basis_.empty()) lp_opts.warm_basis = &last_basis_;
  lp::SimplexSolver lp_solver(lp_opts);
  lp::SimplexResult rel = lp_solver.Solve(work_);
  lp_iterations_ += rel.iterations;
  if (node_index == 0 && rel.status == lp::SolveStatus::kOptimal) {
    // Harvest the root basis before any cut rows land: the next solve of
    // this structure will carry different cut rows, and the simplex pads
    // missing trailing rows with basic slacks, so the fewest-row basis
    // is the most reusable one.
    root_basis_ = rel.basis_state;
  }
  // Fractional cut separation loop: tighten the relaxation in place
  // while the handler keeps finding violated rows.
  for (int pass = 0; pass < 5 && rel.status == lp::SolveStatus::kOptimal &&
                     options_.lazy != nullptr;
       ++pass) {
    if (options_.lazy->AddFractionalCuts(rel.values, &work_) == 0) break;
    lp::SimplexOptions cut_opts = options_.lp_options;
    cut_opts.deadline = options_.deadline;
    cut_opts.warm_basis = &rel.basis_state;
    std::vector<lp::BasisState> keep = rel.basis_state;
    cut_opts.warm_basis = &keep;
    lp::SimplexSolver cut_solver(cut_opts);
    rel = cut_solver.Solve(work_);
    lp_iterations_ += rel.iterations;
  }
  if (rel.status == lp::SolveStatus::kOptimal) {
    last_basis_ = std::move(rel.basis_state);
  }

  switch (rel.status) {
    case lp::SolveStatus::kInfeasible:
      return -1;  // prune
    case lp::SolveStatus::kUnbounded:
      // The SQPR models are always bounded; treat as numerical failure of
      // this node and prune conservatively only if we have an incumbent.
      SQPR_LOG_WARN << "unbounded node relaxation (numerical); pruning";
      return -1;
    case lp::SolveStatus::kIterationLimit:
    case lp::SolveStatus::kTimeLimit: {
      // The relaxation was not solved to optimality: its objective is not
      // a valid dual bound. Keep the parent's bound and branch on the
      // current iterate if it is available; otherwise drop the node.
      break;
    }
    case lp::SolveStatus::kOptimal:
      arena_[node_index].bound = rel.objective;
      break;
  }

  if (node_index == 0 && rel.status == lp::SolveStatus::kOptimal &&
      options_.cuts.enable && !IsIntegral(rel.values)) {
    // Root cutting-plane loop (cut-and-branch): separate, re-solve with
    // the warm basis, repeat while the relaxation keeps moving.
    SQPR_TRACE_SPAN_ARGS(cut_span, "milp/root_cuts", "rounds", "cuts_added");
    uint64_t cut_rounds = 0, cuts_added = 0;
    CutGenerator cg(base_.integer, options_.cuts);
    for (int round = 0; round < options_.cuts.max_rounds; ++round) {
      if (options_.deadline.Expired()) break;
      const int separated = cg.Separate(rel, &work_);
      if (separated == 0) break;
      ++cut_rounds;
      cuts_added += static_cast<uint64_t>(separated);
      cut_span.set_args(cut_rounds, cuts_added);
      lp::SimplexOptions cut_opts = options_.lp_options;
      cut_opts.deadline = options_.deadline;
      std::vector<lp::BasisState> keep = rel.basis_state;
      cut_opts.warm_basis = &keep;
      lp::SimplexSolver cut_solver(cut_opts);
      lp::SimplexResult tightened = cut_solver.Solve(work_);
      lp_iterations_ += tightened.iterations;
      if (tightened.status != lp::SolveStatus::kOptimal) break;
      rel = std::move(tightened);
      arena_[node_index].bound = rel.objective;
      if (IsIntegral(rel.values)) break;
    }
    if (getenv("SQPR_MILP_DEBUG")) {
      fprintf(stderr, "[cuts] gomory=%d cover=%d root bound %.4f\n",
              cg.total_gomory(), cg.total_cover(), rel.objective);
    }
    last_basis_ = rel.basis_state;
  }

  const double node_bound = arena_[node_index].bound;
  if (node_index == 0 && rel.status == lp::SolveStatus::kOptimal) {
    root_bound_ = rel.objective;
    // Warm chains (root_dive=false) skip the dive when the warm-start
    // incumbent already covers its job; without an incumbent the dive is
    // the only primal heuristic, so it always runs.
    if (!IsIntegral(rel.values) && (options_.root_dive || !have_incumbent_)) {
      DivingHeuristic(rel.values);
    }
  }
  if (node_bound <= PruneThreshold()) {
    return -1;  // cannot improve on the incumbent beyond the gap
  }

  const std::vector<double>& x = rel.values;
  if (x.empty()) return -1;

  if (IsIntegral(x)) {
    if (options_.lazy != nullptr) {
      const int cuts = options_.lazy->AddViolatedCuts(x, &work_);
      if (cuts > 0) {
        // Lazy rows are global: also append them to every future node by
        // keeping them in work_ (ApplyBounds only resets bounds, never
        // rows). Re-solve this node against the strengthened relaxation.
        return node_index;
      }
    }
    // CheckFeasible guards against tolerance drift before accepting.
    const Status feas = work_.CheckFeasible(x, 1e-5);
    if (feas.ok()) {
      MaybeUpdateIncumbent(x, rel.objective);
    } else if (getenv("SQPR_MILP_DEBUG")) {
      fprintf(stderr, "[milp] integral candidate rejected: %s\n",
              feas.ToString().c_str());
    }
    return -1;
  }

  const int branch_var = PickBranchVariable(x);
  if (branch_var < 0) return -1;  // only sub-tolerance fractionality left
  if (getenv("SQPR_MILP_DEBUG") && nodes_ < 60) {
    fprintf(stderr, "[milp] node=%lld depth=%d bound=%.4f branch %s=%.4f\n",
            (long long)nodes_, arena_[node_index].depth, node_bound,
            work_.variable_name(branch_var).c_str(), x[branch_var]);
  }

  const double value = x[branch_var];
  const double down_ub = std::floor(value);
  const double up_lb = std::ceil(value);

  Node down;
  down.parent = node_index;
  down.change = {branch_var, -lp::kInf, down_ub};
  down.bound = node_bound;
  down.depth = arena_[node_index].depth + 1;

  Node up = down;
  up.change = {branch_var, up_lb, lp::kInf};

  const int down_index = static_cast<int>(arena_.size());
  arena_.push_back(down);
  const int up_index = static_cast<int>(arena_.size());
  arena_.push_back(up);

  // Plunge upward whenever the fractional part is non-negligible. In
  // covering-style models (SQPR: "some host must provide this") symmetric
  // LP optima spread mass thinly across equivalent choices; rounding a
  // 1/H fraction *down* merely reshuffles the spread, while rounding it
  // *up* commits to a concrete choice and reaches integrality in a
  // support-chain's worth of dives.
  const bool go_down = base_.lp.objective(branch_var) <= 1e-9 &&
                       (value - down_ub) < 0.2;
  const int near = go_down ? down_index : up_index;
  const int far = go_down ? up_index : down_index;
  open_.push({node_bound, far});
  return near;
}

MipResult BranchAndBound::Run() {
  Stopwatch watch;
  MipResult result;

  SQPR_CHECK(base_.integer.size() ==
             static_cast<size_t>(base_.lp.num_variables()))
      << "integrality mask size mismatch";

  if (options_.warm_start != nullptr) {
    const std::vector<double>& ws = *options_.warm_start;
    if (base_.lp.CheckFeasible(ws, 1e-6).ok() && IsIntegral(ws)) {
      bool cuts_ok = true;
      if (options_.lazy != nullptr) {
        cuts_ok = options_.lazy->AddViolatedCuts(ws, &work_) == 0;
      }
      if (cuts_ok) MaybeUpdateIncumbent(ws, base_.lp.ObjectiveValue(ws));
    }
  }

  arena_.push_back(Node{});  // root
  arena_[0].bound = lp::kInf;
  int current = 0;

  bool limit_hit = false;
  while (true) {
    if (current < 0) {
      if (open_.empty()) break;
      const QueueEntry top = open_.top();
      open_.pop();
      if (top.bound <= PruneThreshold()) {
        // Best-first: every remaining node is dominated too.
        break;
      }
      current = top.node;
    }
    if (nodes_ >= options_.max_nodes || options_.deadline.Expired()) {
      limit_hit = true;
      // The two limits can trip together; deadline expiry wins the
      // attribution — it is what the degraded-mode fallback keys on.
      result.deadline_hit = options_.deadline.Expired();
      break;
    }
    current = ProcessNode(current);
  }

  result.nodes = nodes_;
  result.lp_iterations = lp_iterations_;
  result.wall_ms = watch.ElapsedMillis();
  result.root_basis = root_basis_;

  double residual_bound = QueueBestBound();
  if (current >= 0) {
    residual_bound = std::max(residual_bound, arena_[current].bound);
  }
  if (limit_hit) {
    result.best_bound =
        std::isfinite(residual_bound)
            ? std::min(root_bound_, std::max(residual_bound, incumbent_obj_))
            : root_bound_;
    if (have_incumbent_) {
      result.status = MipStatus::kFeasible;
      result.x = incumbent_;
      result.objective = incumbent_obj_;
    } else {
      result.status = MipStatus::kNoSolution;
    }
    return result;
  }

  if (have_incumbent_) {
    result.status = MipStatus::kOptimal;
    result.x = incumbent_;
    result.objective = incumbent_obj_;
    result.best_bound = incumbent_obj_;
  } else {
    result.status = MipStatus::kInfeasible;
    result.best_bound = -lp::kInf;
  }
  return result;
}

}  // namespace

const char* MipStatusName(MipStatus status) {
  switch (status) {
    case MipStatus::kOptimal:
      return "Optimal";
    case MipStatus::kFeasible:
      return "Feasible";
    case MipStatus::kInfeasible:
      return "Infeasible";
    case MipStatus::kNoSolution:
      return "NoSolution";
  }
  return "Unknown";
}

double MipResult::Gap() const {
  if (status == MipStatus::kOptimal) return 0.0;
  if (!has_solution()) return lp::kInf;
  const double denom = std::max(1.0, std::abs(objective));
  return (best_bound - objective) / denom;
}

namespace {

/// Bridges a user lazy handler (which thinks in original-space variable
/// indices) to the presolved relaxation: candidates are postsolved to
/// full space before the handler sees them, and rows the handler appends
/// to the accumulating full-space model are translated (pinned columns
/// folded into the bounds) and appended to the reduced relaxation.
class PresolvedLazyAdapter : public LazyConstraintHandler {
 public:
  PresolvedLazyAdapter(LazyConstraintHandler* inner, const Presolver* pre,
                       lp::Model* full_space)
      : inner_(inner), pre_(pre), full_space_(full_space) {}

  int AddViolatedCuts(const std::vector<double>& candidate,
                      lp::Model* relaxation) override {
    return Forward(candidate, relaxation, /*fractional=*/false);
  }

  int AddFractionalCuts(const std::vector<double>& point,
                        lp::Model* relaxation) override {
    return Forward(point, relaxation, /*fractional=*/true);
  }

 private:
  int Forward(const std::vector<double>& reduced_point, lp::Model* relaxation,
              bool fractional) {
    const std::vector<double> full = pre_->Postsolve(reduced_point);
    const int before = full_space_->num_rows();
    const int reported =
        fractional ? inner_->AddFractionalCuts(full, full_space_)
                   : inner_->AddViolatedCuts(full, full_space_);
    int appended = 0;
    for (int r = before; r < full_space_->num_rows(); ++r) {
      std::vector<std::pair<int, double>> terms;
      double lb, ub;
      pre_->TranslateRow(full_space_->row_terms(r), full_space_->row_lb(r),
                         full_space_->row_ub(r), &terms, &lb, &ub);
      if (terms.empty()) continue;  // cut only involves pinned columns
      relaxation->AddRow(lb, ub, std::move(terms), full_space_->row_name(r));
      ++appended;
    }
    // Report the handler's own count when it appended nothing that
    // survives translation but still signalled violations: a violated
    // cut over pinned columns only means the pinned assignment itself is
    // off-limits, which the caller must treat as a rejection.
    return std::max(appended, reported > 0 && appended == 0 ? reported : 0);
  }

  LazyConstraintHandler* inner_;
  const Presolver* pre_;
  lp::Model* full_space_;
};

}  // namespace

MipResult Solver::Solve(const Model& model, const SolverOptions& caller_options) {
  // Degraded-mode wall budget: fold solve_deadline_ms into the deadline
  // once, up front, so both the presolve and no-presolve paths — and
  // every LP sub-solve, dive and cut round under them — inherit it.
  SolverOptions options = caller_options;
  if (options.solve_deadline_ms != 0) {
    const Deadline budget = Deadline::AfterMillis(options.solve_deadline_ms);
    if (!options.deadline.is_finite() ||
        budget.RemainingMillis() < options.deadline.RemainingMillis()) {
      options.deadline = budget;
    }
  }
  SQPR_TRACE_SPAN_ARGS(span, "milp/solve", "variables", "rows");
  span.set_args(static_cast<uint64_t>(model.lp.num_variables()),
                static_cast<uint64_t>(model.lp.num_rows()));
  if (!options.presolve) {
    BranchAndBound bb(model, options);
    std::vector<int> all_columns(model.lp.num_variables());
    for (int v = 0; v < model.lp.num_variables(); ++v) all_columns[v] = v;
    bool used_warm = false, discarded_warm = false;
    if (options.root_warm_basis != nullptr &&
        options.root_warm_basis_columns != nullptr) {
      if (*options.root_warm_basis_columns == all_columns) {
        bb.SeedBasis(*options.root_warm_basis);
        used_warm = true;
      } else {
        discarded_warm = true;
      }
    }
    MipResult result = bb.Run();
    result.root_basis_columns = std::move(all_columns);
    result.used_warm_basis = used_warm;
    result.warm_basis_discarded = discarded_warm;
    return result;
  }

  Presolver pre;
  PresolveStats pstats;
  {
    SQPR_TRACE_SPAN_ARGS(pre_span, "milp/presolve", "fixed_columns",
                         "removed_rows");
    pstats = pre.Apply(model);
    pre_span.set_args(static_cast<uint64_t>(pstats.fixed_columns),
                      static_cast<uint64_t>(pstats.removed_rows));
  }
  if (getenv("SQPR_MILP_DEBUG")) {
    fprintf(stderr,
            "[presolve] cols %d->%d rows %d->%d (fixed=%d removed=%d "
            "tightened=%d rounds=%d infeasible=%d)\n",
            model.lp.num_variables(), pre.reduced().lp.num_variables(),
            model.lp.num_rows(), pre.reduced().lp.num_rows(),
            pstats.fixed_columns, pstats.removed_rows,
            pstats.tightened_bounds, pstats.rounds,
            pstats.proven_infeasible);
  }
  if (pstats.proven_infeasible) {
    MipResult result;
    result.status = MipStatus::kInfeasible;
    result.best_bound = -lp::kInf;
    return result;
  }

  if (pre.reduced().lp.num_variables() == 0) {
    // Everything is pinned: the unique candidate is the pinned point.
    MipResult result;
    result.x = pre.Postsolve({});
    lp::Model scratch = model.lp;
    if (options.lazy != nullptr &&
        options.lazy->AddViolatedCuts(result.x, &scratch) > 0) {
      result.x.clear();
      result.status = MipStatus::kInfeasible;
      result.best_bound = -lp::kInf;
      return result;
    }
    result.status = MipStatus::kOptimal;
    result.objective = pre.objective_constant();
    result.best_bound = result.objective;
    return result;
  }

  SolverOptions inner = options;
  std::vector<double> reduced_ws;
  inner.warm_start = nullptr;
  if (options.warm_start != nullptr &&
      pre.ProjectToReduced(*options.warm_start, &reduced_ws)) {
    inner.warm_start = &reduced_ws;
  }
  lp::Model full_space = model.lp;  // accumulates original-space lazy rows
  PresolvedLazyAdapter adapter(options.lazy, &pre, &full_space);
  if (options.lazy != nullptr) inner.lazy = &adapter;

  BranchAndBound bb(pre.reduced(), inner);
  // Cross-solve basis reuse is gated on presolve keeping the *same*
  // original columns as the solve the basis came from: the reduced space
  // is indexed by surviving-column order, so a different elimination set
  // would silently pair basis statuses with the wrong variables (the
  // stale-basis bug the regression test in milp_test pins). On mismatch,
  // discard and cold-start.
  std::vector<int> surviving_columns;
  surviving_columns.reserve(pre.reduced().lp.num_variables());
  for (int v = 0; v < pre.num_original_columns(); ++v) {
    if (pre.column_map(v) >= 0) surviving_columns.push_back(v);
  }
  bool used_warm = false, discarded_warm = false;
  if (options.root_warm_basis != nullptr &&
      options.root_warm_basis_columns != nullptr) {
    if (*options.root_warm_basis_columns == surviving_columns) {
      bb.SeedBasis(*options.root_warm_basis);
      used_warm = true;
    } else {
      discarded_warm = true;
    }
  }
  MipResult result = bb.Run();
  result.root_basis_columns = std::move(surviving_columns);
  result.used_warm_basis = used_warm;
  result.warm_basis_discarded = discarded_warm;
  if (result.has_solution()) {
    result.x = pre.Postsolve(result.x);
    result.objective += pre.objective_constant();
  }
  if (std::isfinite(result.best_bound)) {
    result.best_bound += pre.objective_constant();
  }
  return result;
}

}  // namespace milp
}  // namespace sqpr
