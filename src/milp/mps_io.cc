#include "milp/mps_io.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

namespace sqpr {
namespace milp {
namespace {

enum class Section {
  kNone,
  kObjsense,
  kRows,
  kColumns,
  kRhs,
  kRanges,
  kBounds,
  kEnd,
};

std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string tok;
  while (in >> tok) tokens.push_back(tok);
  return tokens;
}

Status ParseError(int line_no, const std::string& what) {
  return Status::InvalidArgument("MPS line " + std::to_string(line_no) +
                                 ": " + what);
}

Result<double> ParseNumber(const std::string& tok, int line_no) {
  char* end = nullptr;
  const double v = std::strtod(tok.c_str(), &end);
  if (end == tok.c_str() || *end != '\0') {
    return ParseError(line_no, "bad number '" + tok + "'");
  }
  return v;
}

/// Per-row accumulation while parsing; converted to Model rows at the
/// end so RHS/RANGES can arrive in any order.
struct RowDef {
  char type = 'N';  // N, L, G, E
  std::string name;
  double rhs = 0.0;
  bool has_range = false;
  double range = 0.0;
  std::vector<std::pair<int, double>> terms;
};

/// Formats a double the way MPS consumers expect (full precision,
/// no locale surprises).
std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

Result<Model> ReadMpsFromString(const std::string& text) {
  Model model;
  model.lp.set_sense(lp::Sense::kMinimize);  // MPS default

  Section section = Section::kNone;
  std::map<std::string, int> row_index;   // constraint rows only
  std::map<std::string, int> col_index;
  std::vector<RowDef> rows;
  std::string objective_row;
  bool in_integer_block = false;

  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '*') continue;  // comment
    const bool is_header = !std::isspace(static_cast<unsigned char>(line[0]));
    std::vector<std::string> tok = Tokenize(line);
    if (tok.empty()) continue;

    if (is_header) {
      const std::string& head = tok[0];
      if (head == "NAME") {
        continue;  // model name ignored
      } else if (head == "OBJSENSE") {
        section = Section::kObjsense;
        // Inline form: "OBJSENSE MAX".
        if (tok.size() >= 2) {
          model.lp.set_sense(tok[1] == "MAX" || tok[1] == "MAXIMIZE"
                                 ? lp::Sense::kMaximize
                                 : lp::Sense::kMinimize);
          section = Section::kNone;
        }
      } else if (head == "ROWS") {
        section = Section::kRows;
      } else if (head == "COLUMNS") {
        section = Section::kColumns;
      } else if (head == "RHS") {
        section = Section::kRhs;
      } else if (head == "RANGES") {
        section = Section::kRanges;
      } else if (head == "BOUNDS") {
        section = Section::kBounds;
      } else if (head == "ENDATA") {
        section = Section::kEnd;
        break;
      } else {
        return ParseError(line_no, "unknown section '" + head + "'");
      }
      continue;
    }

    switch (section) {
      case Section::kObjsense: {
        model.lp.set_sense(tok[0] == "MAX" || tok[0] == "MAXIMIZE"
                               ? lp::Sense::kMaximize
                               : lp::Sense::kMinimize);
        section = Section::kNone;
        break;
      }
      case Section::kRows: {
        if (tok.size() != 2) return ParseError(line_no, "ROWS wants 2 fields");
        const char type = std::toupper(static_cast<unsigned char>(tok[0][0]));
        if (type == 'N') {
          if (objective_row.empty()) objective_row = tok[1];
          // Extra free rows are legal MPS; they are ignored.
        } else if (type == 'L' || type == 'G' || type == 'E') {
          RowDef def;
          def.type = type;
          def.name = tok[1];
          row_index[def.name] = static_cast<int>(rows.size());
          rows.push_back(std::move(def));
        } else {
          return ParseError(line_no, std::string("bad row type '") + tok[0] +
                                         "'");
        }
        break;
      }
      case Section::kColumns: {
        if (tok.size() >= 3 && tok[1] == "'MARKER'") {
          if (tok[2] == "'INTORG'") in_integer_block = true;
          if (tok[2] == "'INTEND'") in_integer_block = false;
          break;
        }
        if (tok.size() < 3 || tok.size() % 2 == 0) {
          return ParseError(line_no, "COLUMNS wants name + (row,val) pairs");
        }
        auto it = col_index.find(tok[0]);
        int col;
        if (it == col_index.end()) {
          col = model.AddVariable(0.0, in_integer_block ? 1.0 : lp::kInf, 0.0,
                                  in_integer_block, tok[0]);
          col_index[tok[0]] = col;
        } else {
          col = it->second;
        }
        for (size_t i = 1; i + 1 < tok.size(); i += 2) {
          Result<double> v = ParseNumber(tok[i + 1], line_no);
          if (!v.ok()) return v.status();
          if (tok[i] == objective_row) {
            model.lp.SetObjective(col, model.lp.objective(col) + *v);
          } else {
            auto row_it = row_index.find(tok[i]);
            if (row_it == row_index.end()) {
              return ParseError(line_no, "unknown row '" + tok[i] + "'");
            }
            rows[row_it->second].terms.emplace_back(col, *v);
          }
        }
        break;
      }
      case Section::kRhs: {
        if (tok.size() < 3 || tok.size() % 2 == 0) {
          return ParseError(line_no, "RHS wants set-name + (row,val) pairs");
        }
        for (size_t i = 1; i + 1 < tok.size(); i += 2) {
          Result<double> v = ParseNumber(tok[i + 1], line_no);
          if (!v.ok()) return v.status();
          if (tok[i] == objective_row) continue;  // objective offset: skip
          auto row_it = row_index.find(tok[i]);
          if (row_it == row_index.end()) {
            return ParseError(line_no, "unknown row '" + tok[i] + "'");
          }
          rows[row_it->second].rhs = *v;
        }
        break;
      }
      case Section::kRanges: {
        if (tok.size() < 3 || tok.size() % 2 == 0) {
          return ParseError(line_no, "RANGES wants set-name + pairs");
        }
        for (size_t i = 1; i + 1 < tok.size(); i += 2) {
          Result<double> v = ParseNumber(tok[i + 1], line_no);
          if (!v.ok()) return v.status();
          auto row_it = row_index.find(tok[i]);
          if (row_it == row_index.end()) {
            return ParseError(line_no, "unknown row '" + tok[i] + "'");
          }
          rows[row_it->second].has_range = true;
          rows[row_it->second].range = *v;
        }
        break;
      }
      case Section::kBounds: {
        if (tok.size() < 3) return ParseError(line_no, "BOUNDS too short");
        const std::string& type = tok[0];
        auto col_it = col_index.find(tok[2]);
        if (col_it == col_index.end()) {
          return ParseError(line_no, "unknown column '" + tok[2] + "'");
        }
        const int col = col_it->second;
        double value = 0.0;
        if (type != "FR" && type != "MI" && type != "PL" && type != "BV") {
          if (tok.size() < 4) return ParseError(line_no, "missing bound");
          Result<double> v = ParseNumber(tok[3], line_no);
          if (!v.ok()) return v.status();
          value = *v;
        }
        const double lb = model.lp.variable_lb(col);
        const double ub = model.lp.variable_ub(col);
        if (type == "UP" || type == "UI") {
          model.lp.SetVariableBounds(col, lb, value);
          if (type == "UI") model.integer[col] = true;
        } else if (type == "LO" || type == "LI") {
          model.lp.SetVariableBounds(col, value, ub);
          if (type == "LI") model.integer[col] = true;
        } else if (type == "FX") {
          model.lp.SetVariableBounds(col, value, value);
        } else if (type == "FR") {
          model.lp.SetVariableBounds(col, -lp::kInf, lp::kInf);
        } else if (type == "MI") {
          model.lp.SetVariableBounds(col, -lp::kInf, ub);
        } else if (type == "PL") {
          model.lp.SetVariableBounds(col, lb, lp::kInf);
        } else if (type == "BV") {
          model.lp.SetVariableBounds(col, 0.0, 1.0);
          model.integer[col] = true;
        } else {
          return ParseError(line_no, "unknown bound type '" + type + "'");
        }
        break;
      }
      case Section::kNone:
      case Section::kEnd:
        return ParseError(line_no, "data outside any section");
    }
  }

  // Convert accumulated rows.
  for (RowDef& def : rows) {
    double lb, ub;
    switch (def.type) {
      case 'L':
        lb = -lp::kInf;
        ub = def.rhs;
        if (def.has_range) lb = def.rhs - std::abs(def.range);
        break;
      case 'G':
        lb = def.rhs;
        ub = lp::kInf;
        if (def.has_range) ub = def.rhs + std::abs(def.range);
        break;
      default:  // 'E'
        lb = ub = def.rhs;
        if (def.has_range) {
          if (def.range >= 0) {
            ub = def.rhs + def.range;
          } else {
            lb = def.rhs + def.range;
          }
        }
        break;
    }
    model.lp.AddRow(lb, ub, std::move(def.terms), def.name);
  }
  return model;
}

Result<Model> ReadMpsFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ReadMpsFromString(buffer.str());
}

namespace {

/// Unique names for MPS emission. Model names may repeat (SQPR labels
/// whole constraint families, e.g. every (III.7) row is "acyc"), but MPS
/// addresses rows/columns by name — collisions silently merge rows on
/// re-read. Suffix duplicates with their index.
std::vector<std::string> UniqueNames(int count, const char* fallback,
                                     const std::string& (*get)(const Model&,
                                                               int),
                                     const Model& model) {
  std::vector<std::string> names(count);
  std::map<std::string, int> seen;
  for (int i = 0; i < count; ++i) {
    std::string name = get(model, i);
    if (name.empty()) name = fallback + std::to_string(i);
    auto [it, fresh] = seen.emplace(name, i);
    if (!fresh) name += "_" + std::to_string(i);
    names[i] = std::move(name);
  }
  return names;
}

const std::string& GetVarName(const Model& m, int v) {
  return m.lp.variable_name(v);
}
const std::string& GetRowName(const Model& m, int r) {
  return m.lp.row_name(r);
}

}  // namespace

std::string WriteMpsToString(const Model& model) {
  const std::vector<std::string> col_names =
      UniqueNames(model.lp.num_variables(), "x", GetVarName, model);
  const std::vector<std::string> row_names =
      UniqueNames(model.lp.num_rows(), "r", GetRowName, model);
  std::ostringstream out;
  out << "NAME sqpr_model\n";
  out << "OBJSENSE\n "
      << (model.lp.sense() == lp::Sense::kMaximize ? "MAX" : "MIN") << "\n";
  out << "ROWS\n N obj\n";
  const int m = model.lp.num_rows();
  const int n = model.lp.num_variables();
  // Interval rows (finite lb < ub) are written as L rows plus RANGES.
  for (int r = 0; r < m; ++r) {
    const double lb = model.lp.row_lb(r), ub = model.lp.row_ub(r);
    char type;
    if (lb == ub) {
      type = 'E';
    } else if (std::isfinite(ub)) {
      type = 'L';
    } else {
      type = 'G';
    }
    out << " " << type << " " << row_names[r] << "\n";
  }

  // Column-major terms.
  std::vector<std::vector<std::pair<int, double>>> cols(n);
  for (int r = 0; r < m; ++r) {
    for (const auto& [v, coef] : model.lp.row_terms(r)) {
      cols[v].emplace_back(r, coef);
    }
  }
  out << "COLUMNS\n";
  bool in_int = false;
  int marker = 0;
  for (int v = 0; v < n; ++v) {
    if (model.integer[v] != in_int) {
      out << " MARKER" << marker++ << " 'MARKER' "
          << (model.integer[v] ? "'INTORG'" : "'INTEND'") << "\n";
      in_int = model.integer[v];
    }
    if (model.lp.objective(v) != 0.0) {
      out << " " << col_names[v] << " obj " << Num(model.lp.objective(v))
          << "\n";
    }
    for (const auto& [r, coef] : cols[v]) {
      out << " " << col_names[v] << " " << row_names[r] << " " << Num(coef)
          << "\n";
    }
    if (model.lp.objective(v) == 0.0 && cols[v].empty()) {
      // MPS requires every column to appear; emit a zero objective entry.
      out << " " << col_names[v] << " obj 0\n";
    }
  }
  if (in_int) out << " MARKER" << marker++ << " 'MARKER' 'INTEND'\n";

  out << "RHS\n";
  for (int r = 0; r < m; ++r) {
    const double lb = model.lp.row_lb(r), ub = model.lp.row_ub(r);
    const double rhs = lb == ub ? lb : (std::isfinite(ub) ? ub : lb);
    if (rhs != 0.0) {
      out << " rhs " << row_names[r] << " " << Num(rhs) << "\n";
    }
  }
  bool any_range = false;
  for (int r = 0; r < m; ++r) {
    const double lb = model.lp.row_lb(r), ub = model.lp.row_ub(r);
    if (lb != ub && std::isfinite(lb) && std::isfinite(ub)) {
      if (!any_range) {
        out << "RANGES\n";
        any_range = true;
      }
      out << " rng " << row_names[r] << " " << Num(ub - lb) << "\n";
    }
  }

  out << "BOUNDS\n";
  for (int v = 0; v < n; ++v) {
    const double lb = model.lp.variable_lb(v), ub = model.lp.variable_ub(v);
    const std::string& name = col_names[v];
    if (lb == ub) {
      out << " FX bnd " << name << " " << Num(lb) << "\n";
      continue;
    }
    if (!std::isfinite(lb)) {
      out << " MI bnd " << name << "\n";
    } else if (lb != 0.0) {
      out << " LO bnd " << name << " " << Num(lb) << "\n";
    }
    if (std::isfinite(ub)) {
      out << " UP bnd " << name << " " << Num(ub) << "\n";
    } else if (model.integer[v]) {
      out << " PL bnd " << name << "\n";  // undo the INTORG [0,1] default
    }
  }
  out << "ENDATA\n";
  return out.str();
}

Status WriteMpsFile(const Model& model, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::InvalidArgument("cannot write '" + path + "'");
  out << WriteMpsToString(model);
  return out ? Status::OK()
             : Status::Internal("short write to '" + path + "'");
}

std::string WriteLpToString(const Model& model) {
  const std::vector<std::string> col_names =
      UniqueNames(model.lp.num_variables(), "x", GetVarName, model);
  const std::vector<std::string> row_names =
      UniqueNames(model.lp.num_rows(), "r", GetRowName, model);
  std::ostringstream out;
  out << (model.lp.sense() == lp::Sense::kMaximize ? "Maximize" : "Minimize")
      << "\n obj:";
  const int n = model.lp.num_variables();
  for (int v = 0; v < n; ++v) {
    const double c = model.lp.objective(v);
    if (c == 0.0) continue;
    out << (c >= 0 ? " + " : " - ") << Num(std::abs(c)) << " "
        << col_names[v];
  }
  out << "\nSubject To\n";
  for (int r = 0; r < model.lp.num_rows(); ++r) {
    const double lb = model.lp.row_lb(r), ub = model.lp.row_ub(r);
    std::ostringstream expr;
    bool first = true;
    for (const auto& [v, coef] : model.lp.row_terms(r)) {
      expr << (coef >= 0 ? (first ? "" : " + ") : " - ")
           << Num(std::abs(coef)) << " " << col_names[v];
      first = false;
    }
    if (lb == ub) {
      out << " " << row_names[r] << ": " << expr.str() << " = " << Num(lb)
          << "\n";
    } else {
      if (std::isfinite(ub)) {
        out << " " << row_names[r] << ": " << expr.str() << " <= " << Num(ub)
            << "\n";
      }
      if (std::isfinite(lb)) {
        out << " " << row_names[r] << (std::isfinite(ub) ? "_lo" : "") << ": "
            << expr.str() << " >= " << Num(lb) << "\n";
      }
    }
  }
  out << "Bounds\n";
  for (int v = 0; v < n; ++v) {
    const double lb = model.lp.variable_lb(v), ub = model.lp.variable_ub(v);
    out << " " << (std::isfinite(lb) ? Num(lb) : "-inf") << " <= "
        << col_names[v] << " <= " << (std::isfinite(ub) ? Num(ub) : "+inf")
        << "\n";
  }
  out << "Generals\n";
  for (int v = 0; v < n; ++v) {
    if (model.integer[v]) out << " " << col_names[v];
  }
  out << "\nEnd\n";
  return out.str();
}

Status WriteLpFile(const Model& model, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::InvalidArgument("cannot write '" + path + "'");
  out << WriteLpToString(model);
  return out ? Status::OK()
             : Status::Internal("short write to '" + path + "'");
}

}  // namespace milp
}  // namespace sqpr
