#ifndef SQPR_MILP_MPS_IO_H_
#define SQPR_MILP_MPS_IO_H_

#include <string>

#include "common/status.h"
#include "milp/solver.h"

namespace sqpr {
namespace milp {

/// MPS and CPLEX-LP model exchange.
///
/// SQPR's per-query models are built in memory, but a solver substrate is
/// only debuggable when its inputs can be captured and replayed in
/// isolation. These functions implement free-format MPS (the lingua
/// franca CPLEX itself speaks) with the common extensions:
///
///  * `OBJSENSE` section with `MAX`/`MIN` (default: minimise, per spec);
///  * `MARKER` lines with `'INTORG'`/`'INTEND'` delimiting integer
///    columns;
///  * `RANGES` turning a one-sided row into an interval row;
///  * `BOUNDS` types UP, LO, FX, FR, MI, PL, BV, UI, LI.
///
/// The LP-format writer produces human-readable `Maximize/Subject To/
/// Bounds/Generals` text for eyeballing small reduced models; it is
/// write-only.

/// Parses an MPS model from a string. Unknown sections or malformed
/// fields produce an error with the offending line number.
Result<Model> ReadMpsFromString(const std::string& text);

/// Reads an MPS file from disk.
Result<Model> ReadMpsFile(const std::string& path);

/// Serialises a model to free-format MPS. Variables and rows without
/// names are given synthetic ones (`x12`, `r7`) — names survive a
/// round-trip when present.
std::string WriteMpsToString(const Model& model);

Status WriteMpsFile(const Model& model, const std::string& path);

/// Serialises to CPLEX LP format (write-only, for inspection).
std::string WriteLpToString(const Model& model);

Status WriteLpFile(const Model& model, const std::string& path);

}  // namespace milp
}  // namespace sqpr

#endif  // SQPR_MILP_MPS_IO_H_
