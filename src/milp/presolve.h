#ifndef SQPR_MILP_PRESOLVE_H_
#define SQPR_MILP_PRESOLVE_H_

#include <utility>
#include <vector>

#include "milp/solver.h"

namespace sqpr {
namespace milp {

/// Statistics of one presolve application (for logging and tests).
struct PresolveStats {
  int fixed_columns = 0;      // columns removed because lb == ub
  int removed_rows = 0;       // redundant or singleton rows dropped
  int singleton_rows = 0;     // rows converted into variable bounds
  int tightened_bounds = 0;   // variable bound tightenings from activities
  int rounds = 0;             // propagation rounds until fixpoint
  bool proven_infeasible = false;
};

/// MILP presolve: shrinks a model before branch-and-bound.
///
/// SQPR's problem reduction (§IV-A) works by *fixing* every decision
/// variable outside S(q)/O(q) at its incumbent value — the model handed
/// to the solver therefore contains thousands of columns whose bounds
/// already pin them. Presolve removes exactly that dead weight, the role
/// CPLEX's presolve plays for the paper:
///
///  * fixed columns (lb == ub) are substituted into every row and the
///    objective, then dropped;
///  * singleton rows become variable bounds and are dropped;
///  * activity-based bound propagation tightens variable bounds row by
///    row (with floor/ceil rounding for integer columns) and removes
///    rows whose activity range makes them redundant;
///  * rounds repeat until a fixpoint (tightening can fix new columns).
///
/// The transformation is *exact*: the reduced model has the same optimal
/// value (shifted by a constant) and Postsolve maps any reduced solution
/// back to a full-space solution. Infeasibility discovered during
/// propagation is reported so the caller can skip the solve entirely.
class Presolver {
 public:
  struct Options {
    double feasibility_tol = 1e-9;
    int max_rounds = 20;
  };

  Presolver() = default;
  explicit Presolver(Options options) : options_(options) {}

  /// Reduces `model`. The reduced model is available via reduced();
  /// returns the stats. When stats.proven_infeasible is set the reduced
  /// model is meaningless and must not be solved.
  PresolveStats Apply(const Model& model);

  const Model& reduced() const { return reduced_; }

  /// Objective constant contributed by fixed columns: the true objective
  /// of a full-space solution is reduced-objective + constant.
  double objective_constant() const { return objective_constant_; }

  /// Maps a reduced-space assignment back to the original variable space
  /// (fixed columns take their pinned values).
  std::vector<double> Postsolve(const std::vector<double>& reduced_x) const;

  /// Projects a full-space assignment onto the reduced space. Returns
  /// false when the assignment disagrees with a pinned column by more
  /// than the feasibility tolerance (then the projection is invalid).
  bool ProjectToReduced(const std::vector<double>& full_x,
                        std::vector<double>* reduced_x) const;

  /// Translates an original-space row (terms over original column
  /// indices) into the reduced space: pinned columns fold into the
  /// bounds, surviving columns are re-indexed. Used to forward lazy cuts
  /// generated in full space into the reduced relaxation.
  void TranslateRow(const std::vector<std::pair<int, double>>& terms,
                    double lb, double ub,
                    std::vector<std::pair<int, double>>* reduced_terms,
                    double* reduced_lb, double* reduced_ub) const;

  /// reduced column index of original column v, or -1 when pinned.
  int column_map(int v) const { return col_map_[v]; }
  int num_original_columns() const { return static_cast<int>(col_map_.size()); }

 private:
  Options options_{};
  Model reduced_;
  std::vector<int> col_map_;         // orig -> reduced, -1 if pinned
  std::vector<double> fixed_value_;  // orig-indexed; valid where pinned
  double objective_constant_ = 0.0;
};

}  // namespace milp
}  // namespace sqpr

#endif  // SQPR_MILP_PRESOLVE_H_
