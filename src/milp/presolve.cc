#include "milp/presolve.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace sqpr {
namespace milp {
namespace {

constexpr double kIntTol = 1e-6;

/// Rounds an integer variable's bounds inward to the integral lattice.
void RoundIntegerBounds(double* lb, double* ub) {
  if (std::isfinite(*lb)) *lb = std::ceil(*lb - kIntTol);
  if (std::isfinite(*ub)) *ub = std::floor(*ub + kIntTol);
}

}  // namespace

PresolveStats Presolver::Apply(const Model& model) {
  PresolveStats stats;
  const int n = model.lp.num_variables();
  const int m = model.lp.num_rows();

  std::vector<double> lb(n), ub(n);
  std::vector<bool> pinned(n, false);
  std::vector<bool> row_alive(m, true);
  for (int v = 0; v < n; ++v) {
    lb[v] = model.lp.variable_lb(v);
    ub[v] = model.lp.variable_ub(v);
    if (model.integer[v]) RoundIntegerBounds(&lb[v], &ub[v]);
  }

  // Row bounds are mutable: singleton absorption folds nothing here, but
  // the translation step later needs the *original* row bounds, so copy.
  std::vector<double> rlb(m), rub(m);
  for (int r = 0; r < m; ++r) {
    rlb[r] = model.lp.row_lb(r);
    rub[r] = model.lp.row_ub(r);
  }

  const double tol = options_.feasibility_tol;
  bool changed = true;
  while (changed && stats.rounds < options_.max_rounds) {
    changed = false;
    ++stats.rounds;

    for (int v = 0; v < n; ++v) {
      if (lb[v] > ub[v] + tol) {
        stats.proven_infeasible = true;
        return stats;
      }
    }

    for (int r = 0; r < m; ++r) {
      if (!row_alive[r]) continue;
      const auto& terms = model.lp.row_terms(r);

      // Singleton rows become variable bounds.
      if (terms.size() == 1) {
        const int v = terms[0].first;
        const double a = terms[0].second;
        if (a != 0.0) {
          double vlo = a > 0 ? rlb[r] / a : rub[r] / a;
          double vhi = a > 0 ? rub[r] / a : rlb[r] / a;
          if (std::isnan(vlo)) vlo = -lp::kInf;  // 0/0 from inf bounds
          if (std::isnan(vhi)) vhi = lp::kInf;
          if (vlo > lb[v] + tol) {
            lb[v] = vlo;
            changed = true;
            ++stats.tightened_bounds;
          }
          if (vhi < ub[v] - tol) {
            ub[v] = vhi;
            changed = true;
            ++stats.tightened_bounds;
          }
          if (model.integer[v]) RoundIntegerBounds(&lb[v], &ub[v]);
        }
        row_alive[r] = false;
        ++stats.singleton_rows;
        ++stats.removed_rows;
        continue;
      }

      // Activity range of the row under current bounds.
      double min_act = 0.0, max_act = 0.0;
      int min_inf = 0, max_inf = 0;  // contributors at infinity
      for (const auto& [v, a] : terms) {
        const double lo_c = a > 0 ? a * lb[v] : a * ub[v];
        const double hi_c = a > 0 ? a * ub[v] : a * lb[v];
        if (std::isfinite(lo_c)) {
          min_act += lo_c;
        } else {
          ++min_inf;
        }
        if (std::isfinite(hi_c)) {
          max_act += hi_c;
        } else {
          ++max_inf;
        }
      }
      const double row_min = min_inf > 0 ? -lp::kInf : min_act;
      const double row_max = max_inf > 0 ? lp::kInf : max_act;

      if (row_min > rub[r] + tol || row_max < rlb[r] - tol) {
        stats.proven_infeasible = true;
        return stats;
      }
      if (row_min >= rlb[r] - tol && row_max <= rub[r] + tol) {
        row_alive[r] = false;  // redundant under the bounds alone
        ++stats.removed_rows;
        continue;
      }

      // Bound propagation: x_v must keep the row satisfiable when every
      // other variable sits at its extreme.
      for (const auto& [v, a] : terms) {
        if (a == 0.0) continue;
        // Residual activity excluding v's own contribution.
        const double lo_c = a > 0 ? a * lb[v] : a * ub[v];
        const double hi_c = a > 0 ? a * ub[v] : a * lb[v];
        const bool lo_fin = std::isfinite(lo_c);
        const bool hi_fin = std::isfinite(hi_c);
        const double rest_min_inf = min_inf - (lo_fin ? 0 : 1);
        const double rest_max_inf = max_inf - (hi_fin ? 0 : 1);
        const double rest_min =
            rest_min_inf > 0 ? -lp::kInf : min_act - (lo_fin ? lo_c : 0.0);
        const double rest_max =
            rest_max_inf > 0 ? lp::kInf : max_act - (hi_fin ? hi_c : 0.0);

        double new_lb = -lp::kInf, new_ub = lp::kInf;
        if (std::isfinite(rub[r]) && std::isfinite(rest_min)) {
          const double limit = (rub[r] - rest_min) / a;
          if (a > 0) {
            new_ub = limit;
          } else {
            new_lb = limit;
          }
        }
        if (std::isfinite(rlb[r]) && std::isfinite(rest_max)) {
          const double limit = (rlb[r] - rest_max) / a;
          if (a > 0) {
            new_lb = std::max(new_lb, limit);
          } else {
            new_ub = std::min(new_ub, limit);
          }
        }
        if (model.integer[v]) RoundIntegerBounds(&new_lb, &new_ub);
        if (new_lb > lb[v] + tol) {
          lb[v] = new_lb;
          changed = true;
          ++stats.tightened_bounds;
        }
        if (new_ub < ub[v] - tol) {
          ub[v] = new_ub;
          changed = true;
          ++stats.tightened_bounds;
        }
      }
    }
  }

  // Pin columns whose bounds have collapsed.
  fixed_value_.assign(n, 0.0);
  col_map_.assign(n, -1);
  objective_constant_ = 0.0;
  for (int v = 0; v < n; ++v) {
    if (lb[v] > ub[v] + tol) {
      stats.proven_infeasible = true;
      return stats;
    }
    const bool pin = model.integer[v] ? lb[v] == ub[v]
                                      : (ub[v] - lb[v]) <= 1e-12;
    if (pin) {
      pinned[v] = true;
      fixed_value_[v] = model.integer[v] ? lb[v] : 0.5 * (lb[v] + ub[v]);
      objective_constant_ += model.lp.objective(v) * fixed_value_[v];
      ++stats.fixed_columns;
    }
  }

  // Emit the reduced model.
  reduced_ = Model();
  reduced_.lp.set_sense(model.lp.sense());
  for (int v = 0; v < n; ++v) {
    if (pinned[v]) continue;
    const int priority = v < static_cast<int>(model.branch_priority.size())
                             ? model.branch_priority[v]
                             : 0;
    col_map_[v] = reduced_.AddVariable(lb[v], ub[v], model.lp.objective(v),
                                       model.integer[v],
                                       model.lp.variable_name(v), priority);
  }
  for (int r = 0; r < m; ++r) {
    if (!row_alive[r]) continue;
    std::vector<std::pair<int, double>> terms;
    double new_lb, new_ub;
    TranslateRow(model.lp.row_terms(r), rlb[r], rub[r], &terms, &new_lb,
                 &new_ub);
    if (terms.empty()) {
      if (0.0 < new_lb - tol || 0.0 > new_ub + tol) {
        stats.proven_infeasible = true;
        return stats;
      }
      ++stats.removed_rows;
      continue;
    }
    reduced_.lp.AddRow(new_lb, new_ub, std::move(terms),
                       model.lp.row_name(r));
  }
  return stats;
}

std::vector<double> Presolver::Postsolve(
    const std::vector<double>& reduced_x) const {
  std::vector<double> full(col_map_.size(), 0.0);
  for (size_t v = 0; v < col_map_.size(); ++v) {
    full[v] = col_map_[v] >= 0 ? reduced_x[col_map_[v]] : fixed_value_[v];
  }
  return full;
}

bool Presolver::ProjectToReduced(const std::vector<double>& full_x,
                                 std::vector<double>* reduced_x) const {
  reduced_x->assign(reduced_.lp.num_variables(), 0.0);
  for (size_t v = 0; v < col_map_.size(); ++v) {
    if (col_map_[v] >= 0) {
      (*reduced_x)[col_map_[v]] = full_x[v];
    } else if (std::abs(full_x[v] - fixed_value_[v]) > 1e-6) {
      return false;
    }
  }
  return true;
}

void Presolver::TranslateRow(
    const std::vector<std::pair<int, double>>& terms, double lb, double ub,
    std::vector<std::pair<int, double>>* reduced_terms, double* reduced_lb,
    double* reduced_ub) const {
  reduced_terms->clear();
  double shift = 0.0;
  for (const auto& [v, a] : terms) {
    if (col_map_[v] >= 0) {
      reduced_terms->emplace_back(col_map_[v], a);
    } else {
      shift += a * fixed_value_[v];
    }
  }
  *reduced_lb = std::isfinite(lb) ? lb - shift : lb;
  *reduced_ub = std::isfinite(ub) ? ub - shift : ub;
}

}  // namespace milp
}  // namespace sqpr
