#include "milp/cuts.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace sqpr {
namespace milp {

void CutPool::Add(PooledCut cut) {
  std::sort(cut.terms.begin(), cut.terms.end());
  for (const PooledCut& have : cuts_) {
    if (have.lb == cut.lb && have.ub == cut.ub && have.terms == cut.terms) {
      return;
    }
  }
  if (cuts_.size() >= max_cuts_ && !cuts_.empty()) {
    cuts_.erase(cuts_.begin());
  }
  cuts_.push_back(std::move(cut));
}

void CutPool::InjectInto(lp::Model* lp) const {
  for (const PooledCut& cut : cuts_) {
    lp->AddRow(cut.lb, cut.ub, cut.terms, cut.name);
  }
}

namespace {

constexpr double kCoefDropTol = 1e-12;
constexpr double kAlphaTol = 1e-11;

double Frac(double v) { return v - std::floor(v); }

/// Dense row-major matrix inverse by Gauss-Jordan with partial pivoting.
/// Returns false when singular.
bool InvertDense(std::vector<double>* a, int m) {
  std::vector<double>& mat = *a;
  std::vector<double> inv(static_cast<size_t>(m) * m, 0.0);
  for (int i = 0; i < m; ++i) inv[static_cast<size_t>(i) * m + i] = 1.0;
  for (int col = 0; col < m; ++col) {
    int pivot = -1;
    double best = 1e-10;
    for (int r = col; r < m; ++r) {
      const double v = std::abs(mat[static_cast<size_t>(r) * m + col]);
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (pivot < 0) return false;
    if (pivot != col) {
      for (int c = 0; c < m; ++c) {
        std::swap(mat[static_cast<size_t>(pivot) * m + c],
                  mat[static_cast<size_t>(col) * m + c]);
        std::swap(inv[static_cast<size_t>(pivot) * m + c],
                  inv[static_cast<size_t>(col) * m + c]);
      }
    }
    const double d = mat[static_cast<size_t>(col) * m + col];
    const double dinv = 1.0 / d;
    for (int c = 0; c < m; ++c) {
      mat[static_cast<size_t>(col) * m + c] *= dinv;
      inv[static_cast<size_t>(col) * m + c] *= dinv;
    }
    for (int r = 0; r < m; ++r) {
      if (r == col) continue;
      const double f = mat[static_cast<size_t>(r) * m + col];
      if (f == 0.0) continue;
      for (int c = 0; c < m; ++c) {
        mat[static_cast<size_t>(r) * m + c] -=
            f * mat[static_cast<size_t>(col) * m + c];
        inv[static_cast<size_t>(r) * m + c] -=
            f * inv[static_cast<size_t>(col) * m + c];
      }
    }
  }
  *a = std::move(inv);
  return true;
}

}  // namespace

CutGenerator::CutGenerator(std::vector<bool> integer, CutOptions options)
    : integer_(std::move(integer)), options_(options) {}

int CutGenerator::Separate(const lp::SimplexResult& rel, lp::Model* work) {
  if (!options_.enable) return 0;
  int added = 0;
  if (options_.knapsack_cover) added += SeparateCovers(rel.values, work);
  if (options_.gomory && work->num_rows() <= options_.gomory_max_rows) {
    added += SeparateGomory(rel, work);
  }
  return added;
}

int CutGenerator::SeparateCovers(const std::vector<double>& x,
                                 lp::Model* work) {
  const int m = work->num_rows();
  if (static_cast<int>(cover_used_.size()) < m) cover_used_.resize(m, false);
  int added = 0;

  for (int r = 0; r < m && added < options_.max_cuts_per_round; ++r) {
    if (cover_used_[r]) continue;
    // Normalise to  sum a_j x_j <= b  over binary columns with a_j > 0.
    // Rows with a finite lower bound are also usable after negation; we
    // handle the (dominant in SQPR) <= direction first and the negated
    // >= direction second.
    for (int dir = 0; dir < 2; ++dir) {
      const double bound = dir == 0 ? work->row_ub(r) : -work->row_lb(r);
      if (!std::isfinite(bound)) continue;
      const double sign = dir == 0 ? 1.0 : -1.0;
      bool eligible = true;
      std::vector<std::pair<int, double>> items;  // (var, a_j > 0)
      for (const auto& [v, coef] : work->row_terms(r)) {
        const double a = sign * coef;
        if (a == 0.0) continue;
        const bool binary = v < static_cast<int>(integer_.size()) &&
                            integer_[v] && work->variable_lb(v) >= 0.0 &&
                            work->variable_ub(v) <= 1.0;
        if (!binary || a < 0.0) {
          eligible = false;
          break;
        }
        items.emplace_back(v, a);
      }
      if (!eligible || items.size() < 2 || bound <= 0.0) continue;

      // Greedy cover seeded by the current LP point: take items with the
      // largest fractional mass until the weight budget is exceeded.
      std::sort(items.begin(), items.end(),
                [&](const auto& a, const auto& b) {
                  return x[a.first] > x[b.first];
                });
      std::vector<std::pair<int, double>> cover;
      double weight = 0.0;
      for (const auto& it : items) {
        cover.push_back(it);
        weight += it.second;
        if (weight > bound + 1e-9) break;
      }
      if (weight <= bound + 1e-9) continue;  // row not coverable

      // Minimalise: drop the smallest weights that keep it a cover
      // (required for the extended-cover inequality to be valid).
      std::sort(cover.begin(), cover.end(),
                [](const auto& a, const auto& b) {
                  return a.second < b.second;
                });
      for (size_t i = 0; i < cover.size();) {
        if (weight - cover[i].second > bound + 1e-9) {
          weight -= cover[i].second;
          cover.erase(cover.begin() + static_cast<long>(i));
        } else {
          ++i;
        }
      }
      if (cover.size() < 2) continue;

      // Extended cover: every item at least as heavy as the heaviest
      // cover member also gets coefficient 1.
      double max_weight = 0.0;
      for (const auto& [v, a] : cover) max_weight = std::max(max_weight, a);
      std::vector<int> members;
      for (const auto& [v, a] : cover) members.push_back(v);
      for (const auto& [v, a] : items) {
        if (a >= max_weight - 1e-12 &&
            std::find(members.begin(), members.end(), v) == members.end()) {
          members.push_back(v);
        }
      }

      const double rhs = static_cast<double>(cover.size()) - 1.0;
      double lhs = 0.0;
      for (int v : members) lhs += x[v];
      if (lhs <= rhs + options_.min_violation) continue;

      std::vector<std::pair<int, double>> terms;
      terms.reserve(members.size());
      for (int v : members) terms.emplace_back(v, 1.0);
      work->AddRow(-lp::kInf, rhs, std::move(terms), "cover");
      cover_used_[r] = true;
      ++added;
      ++total_cover_;
      break;  // one cut per source row
    }
  }
  return added;
}

int CutGenerator::SeparateGomory(const lp::SimplexResult& rel,
                                 lp::Model* work) {
  const int n = work->num_variables();
  const int m = work->num_rows();
  if (m == 0) return 0;
  if (static_cast<int>(rel.basis_state.size()) != n + m) return 0;

  // Column bounds and values in the slack-form space (structural 0..n-1,
  // slack n..n+m-1 with coefficient -1; slack value = row activity).
  std::vector<double> lb(n + m), ub(n + m), val(n + m);
  for (int v = 0; v < n; ++v) {
    lb[v] = work->variable_lb(v);
    ub[v] = work->variable_ub(v);
    val[v] = rel.values[v];
  }
  for (int r = 0; r < m; ++r) {
    lb[n + r] = work->row_lb(r);
    ub[n + r] = work->row_ub(r);
    double act = 0.0;
    for (const auto& [v, coef] : work->row_terms(r)) act += coef * val[v];
    val[n + r] = act;
  }

  std::vector<int> basic_cols;
  basic_cols.reserve(m);
  for (int c = 0; c < n + m; ++c) {
    if (rel.basis_state[c] == lp::BasisState::kBasic) basic_cols.push_back(c);
  }
  if (static_cast<int>(basic_cols.size()) != m) return 0;

  // Dense basis matrix (row-major) and its inverse.
  std::vector<int> basic_pos(n + m, -1);
  for (int k = 0; k < m; ++k) basic_pos[basic_cols[k]] = k;
  std::vector<double> binv(static_cast<size_t>(m) * m, 0.0);
  for (int k = 0; k < m; ++k) {
    const int c = basic_cols[k];
    if (c >= n) binv[static_cast<size_t>(c - n) * m + k] = -1.0;
  }
  for (int r = 0; r < m; ++r) {
    for (const auto& [v, coef] : work->row_terms(r)) {
      const int k = basic_pos[v];
      if (k >= 0) binv[static_cast<size_t>(r) * m + k] = coef;
    }
  }
  if (!InvertDense(&binv, m)) return 0;

  // Candidate rows: basic *structural integer* columns at fractional
  // values, most fractional first.
  std::vector<std::pair<double, int>> candidates;  // (frac-dist, k)
  for (int k = 0; k < m; ++k) {
    const int c = basic_cols[k];
    if (c >= n || !integer_[c]) continue;
    const double f = Frac(val[c]);
    const double dist = std::min(f, 1.0 - f);
    if (f < 0.01 || f > 0.99) continue;  // numerically safe band
    candidates.emplace_back(-dist, k);
  }
  std::sort(candidates.begin(), candidates.end());

  int added = 0;
  std::vector<double> w(m);
  for (const auto& [neg_dist, k] : candidates) {
    if (added >= options_.max_cuts_per_round) break;
    // w = row k of B^-1.
    for (int i = 0; i < m; ++i) w[i] = binv[static_cast<size_t>(k) * m + i];

    // alpha_j = w . A_j over all columns. Structural: accumulate by
    // scanning rows once; slack j (row r): -w[r].
    std::vector<double> alpha(n + m, 0.0);
    for (int r = 0; r < m; ++r) {
      if (w[r] == 0.0) continue;
      for (const auto& [v, coef] : work->row_terms(r)) {
        alpha[v] += w[r] * coef;
      }
      alpha[n + r] = -w[r];
    }

    const double beta0 = val[basic_cols[k]];
    const double f0 = Frac(beta0);

    // GMI coefficients on the bound-shifted nonbasics t_j >= 0, where
    // the tableau row reads  x_B + sum abar_j t_j = beta0.
    bool ok = true;
    std::vector<std::pair<int, double>> gamma;  // (column, coef on t_j)
    std::vector<int> at_upper;                  // columns shifted from ub
    for (int j = 0; j < n + m && ok; ++j) {
      if (rel.basis_state[j] == lp::BasisState::kBasic) continue;
      if (std::abs(alpha[j]) <= kAlphaTol) continue;
      double abar;
      bool from_upper;
      switch (rel.basis_state[j]) {
        case lp::BasisState::kAtLower:
          abar = alpha[j];
          from_upper = false;
          break;
        case lp::BasisState::kAtUpper:
          abar = -alpha[j];
          from_upper = true;
          break;
        default:
          ok = false;  // free nonbasic: shift undefined
          continue;
      }
      const bool j_integer = j < n && integer_[j] && std::isfinite(lb[j]) &&
                             std::isfinite(ub[j]);
      double g;
      if (j_integer) {
        const double fj = Frac(abar);
        g = fj <= f0 + 1e-12 ? fj : f0 * (1.0 - fj) / (1.0 - f0);
      } else {
        g = abar > 0.0 ? abar : f0 * (-abar) / (1.0 - f0);
      }
      if (g <= kCoefDropTol) continue;
      gamma.emplace_back(j, g);
      if (from_upper) at_upper.push_back(j);
    }
    if (!ok || gamma.empty()) continue;

    // Translate  sum gamma_j t_j >= f0  back to structural space.
    std::vector<double> coef(n, 0.0);
    double rhs = f0;
    bool numerically_sane = true;
    for (const auto& [j, g] : gamma) {
      const bool from_upper =
          std::find(at_upper.begin(), at_upper.end(), j) != at_upper.end();
      const double shift_bound = from_upper ? ub[j] : lb[j];
      if (!std::isfinite(shift_bound)) {
        numerically_sane = false;
        break;
      }
      const double s = from_upper ? -g : g;
      if (j < n) {
        coef[j] += s;
      } else {
        for (const auto& [v, a] : work->row_terms(j - n)) {
          coef[v] += s * a;
        }
      }
      rhs += s * shift_bound;
    }
    if (!numerically_sane) continue;

    std::vector<std::pair<int, double>> terms;
    double max_c = 0.0, min_c = lp::kInf;
    for (int v = 0; v < n; ++v) {
      const double c = coef[v];
      if (std::abs(c) <= kCoefDropTol) {
        // Dropping a coefficient is only safe when the variable cannot
        // move the row materially.
        const double reach =
            std::max(std::abs(work->variable_lb(v)),
                     std::abs(work->variable_ub(v)));
        if (std::isfinite(reach) && std::abs(c) * reach < 1e-9) continue;
        if (c == 0.0) continue;
        numerically_sane = false;
        break;
      }
      terms.emplace_back(v, c);
      max_c = std::max(max_c, std::abs(c));
      min_c = std::min(min_c, std::abs(c));
    }
    if (!numerically_sane || terms.empty()) continue;
    if (max_c / min_c > options_.max_dynamism) continue;

    // Require genuine violation at the current point.
    double lhs = 0.0;
    for (const auto& [v, c] : terms) lhs += c * val[v];
    if (lhs >= rhs - options_.min_violation) continue;

    work->AddRow(rhs, lp::kInf, std::move(terms), "gmi");
    ++added;
    ++total_gomory_;
  }
  return added;
}

}  // namespace milp
}  // namespace sqpr
