#ifndef SQPR_COMMON_FAULT_H_
#define SQPR_COMMON_FAULT_H_

namespace sqpr {
namespace fault {

/// Deterministic crash injection for the durability tests
/// (docs/ARCHITECTURE.md "Durability & degraded modes").
///
/// Armed via the environment:
///
///   SQPR_FAULT=<point>:<n>
///
/// kills the process — std::_Exit(kCrashExitCode), no destructors, no
/// atexit, exactly like a SIGKILL as far as the filesystem is concerned
/// — on the n-th (1-based) execution of crash point `<point>`. The
/// counter is a plain per-point hit count on the calling process, so a
/// given trace + fault spec crashes at the same logical instant on
/// every run: that determinism is what lets CI compare a
/// crash-restore-finish replay byte-for-byte against an uninterrupted
/// one.
///
/// Crash points wired in:
///   event            after each consumed service event
///                    (tools/sqpr_service.cc event loop)
///   mid-round        after a re-planning round is dispatched into the
///                    speculative pipeline, before its commit point
///                    (PlanningService::DispatchReplanRound)
///   checkpoint-write mid-write of a checkpoint temp file, before the
///                    atomic rename (WriteFileAtomic) — the torn-write
///                    case the rename protocol must survive
///
/// Unset (the default, and always in unit tests), every hook is a
/// no-op after one cached getenv.

/// Exit code of an injected crash; distinguishes "the harness fired"
/// from real failures in CI scripts.
constexpr int kCrashExitCode = 43;

/// True when SQPR_FAULT names `point` (regardless of the count) —
/// lets call sites pay for crash-window setup only when armed.
bool Armed(const char* point);

/// Counts one hit of `point`; kills the process if this is the
/// configured n-th hit of the armed point.
void MaybeCrash(const char* point);

}  // namespace fault
}  // namespace sqpr

#endif  // SQPR_COMMON_FAULT_H_
