#ifndef SQPR_COMMON_LOGGING_H_
#define SQPR_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>

namespace sqpr {
namespace logging_internal {

/// Severity ranks for the SQPR_LOG_LEVEL filter (higher = louder).
enum class LogLevel : int { kInfo = 0, kWarn = 1, kFatal = 2 };

/// Maps an SQPR_LOG_LEVEL value to a severity floor: "WARN"/"WARNING",
/// "FATAL"/"ERROR"; anything else (including unset) is "INFO".
inline LogLevel ParseLogLevel(const char* env) {
  if (env == nullptr) return LogLevel::kInfo;
  if (std::strcmp(env, "WARN") == 0 || std::strcmp(env, "WARNING") == 0) {
    return LogLevel::kWarn;
  }
  if (std::strcmp(env, "FATAL") == 0 || std::strcmp(env, "ERROR") == 0) {
    return LogLevel::kFatal;
  }
  return LogLevel::kInfo;
}

/// Minimum severity that is emitted, from the SQPR_LOG_LEVEL environment
/// variable. Read once per process — tools that want runtime control
/// re-exec. FATAL messages always abort even when their text is
/// suppressed.
inline LogLevel MinLogLevel() {
  static const LogLevel level = ParseLogLevel(std::getenv("SQPR_LOG_LEVEL"));
  return level;
}

/// Collects a message via operator<< and emits it (plus abort for fatal
/// severities) on destruction. Used only through the macros below.
class LogMessage {
 public:
  LogMessage(const char* severity, const char* file, int line, LogLevel level)
      : level_(level) {
    stream_ << "[" << severity << " " << file << ":" << line << "] ";
  }
  ~LogMessage() {
    if (level_ >= MinLogLevel()) {
      stream_ << "\n";
      // One fwrite per message, not per chunk: worker threads log
      // concurrently (speculative solves, warm failures) and stdio only
      // guarantees atomicity per call — a single write keeps lines from
      // interleaving mid-record.
      const std::string text = stream_.str();
      std::fwrite(text.data(), 1, text.size(), stderr);
    }
    if (level_ == LogLevel::kFatal) std::abort();
  }

  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
  LogLevel level_;
};

}  // namespace logging_internal
}  // namespace sqpr

#define SQPR_LOG_INFO                                      \
  ::sqpr::logging_internal::LogMessage(                    \
      "INFO", __FILE__, __LINE__,                          \
      ::sqpr::logging_internal::LogLevel::kInfo)           \
      .stream()
#define SQPR_LOG_WARN                                      \
  ::sqpr::logging_internal::LogMessage(                    \
      "WARN", __FILE__, __LINE__,                          \
      ::sqpr::logging_internal::LogLevel::kWarn)           \
      .stream()
#define SQPR_LOG_FATAL                                     \
  ::sqpr::logging_internal::LogMessage(                    \
      "FATAL", __FILE__, __LINE__,                         \
      ::sqpr::logging_internal::LogLevel::kFatal)          \
      .stream()

/// Aborts with a message when an invariant is violated. Active in all
/// build modes: planner correctness depends on these invariants and the
/// cost of the check is negligible next to simplex pivots.
#define SQPR_CHECK(cond)                                        \
  if (!(cond)) SQPR_LOG_FATAL << "Check failed: " #cond << " "

#define SQPR_CHECK_OK(expr)                                          \
  do {                                                               \
    ::sqpr::Status _s = (expr);                                      \
    if (!_s.ok()) SQPR_LOG_FATAL << "Status not OK: " << _s.ToString(); \
  } while (0)

#define SQPR_DCHECK(cond) SQPR_CHECK(cond)

#endif  // SQPR_COMMON_LOGGING_H_
