#ifndef SQPR_COMMON_LOGGING_H_
#define SQPR_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace sqpr {
namespace logging_internal {

/// Collects a message via operator<< and emits it (plus abort for fatal
/// severities) on destruction. Used only through the macros below.
class LogMessage {
 public:
  LogMessage(const char* severity, const char* file, int line, bool fatal)
      : fatal_(fatal) {
    stream_ << "[" << severity << " " << file << ":" << line << "] ";
  }
  ~LogMessage() {
    stream_ << "\n";
    std::fputs(stream_.str().c_str(), stderr);
    if (fatal_) std::abort();
  }

  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
  bool fatal_;
};

}  // namespace logging_internal
}  // namespace sqpr

#define SQPR_LOG_INFO \
  ::sqpr::logging_internal::LogMessage("INFO", __FILE__, __LINE__, false).stream()
#define SQPR_LOG_WARN \
  ::sqpr::logging_internal::LogMessage("WARN", __FILE__, __LINE__, false).stream()
#define SQPR_LOG_FATAL \
  ::sqpr::logging_internal::LogMessage("FATAL", __FILE__, __LINE__, true).stream()

/// Aborts with a message when an invariant is violated. Active in all
/// build modes: planner correctness depends on these invariants and the
/// cost of the check is negligible next to simplex pivots.
#define SQPR_CHECK(cond)                                        \
  if (!(cond)) SQPR_LOG_FATAL << "Check failed: " #cond << " "

#define SQPR_CHECK_OK(expr)                                          \
  do {                                                               \
    ::sqpr::Status _s = (expr);                                      \
    if (!_s.ok()) SQPR_LOG_FATAL << "Status not OK: " << _s.ToString(); \
  } while (0)

#define SQPR_DCHECK(cond) SQPR_CHECK(cond)

#endif  // SQPR_COMMON_LOGGING_H_
