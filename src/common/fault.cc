#include "common/fault.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace sqpr {
namespace fault {
namespace {

struct FaultSpec {
  bool armed = false;
  std::string point;
  long long count = 0;
};

const FaultSpec& Spec() {
  static const FaultSpec spec = [] {
    FaultSpec s;
    const char* raw = std::getenv("SQPR_FAULT");
    if (raw == nullptr || *raw == '\0') return s;
    const char* colon = std::strrchr(raw, ':');
    if (colon == nullptr || colon == raw) {
      std::fprintf(stderr,
                   "SQPR_FAULT: expected \"<point>:<n>\", got \"%s\" — "
                   "fault injection disabled\n",
                   raw);
      return s;
    }
    char* end = nullptr;
    const long long n = std::strtoll(colon + 1, &end, 10);
    if (end == nullptr || *end != '\0' || n < 1) {
      std::fprintf(stderr,
                   "SQPR_FAULT: crash count must be a positive integer in "
                   "\"%s\" — fault injection disabled\n",
                   raw);
      return s;
    }
    s.armed = true;
    s.point.assign(raw, static_cast<size_t>(colon - raw));
    s.count = n;
    return s;
  }();
  return spec;
}

// One counter per distinct armed point suffices: a process runs under a
// single SQPR_FAULT spec, so hits of other points are never counted.
std::atomic<long long> hits{0};

}  // namespace

bool Armed(const char* point) {
  const FaultSpec& spec = Spec();
  return spec.armed && spec.point == point;
}

void MaybeCrash(const char* point) {
  const FaultSpec& spec = Spec();
  if (!spec.armed || spec.point != point) return;
  const long long hit = hits.fetch_add(1, std::memory_order_relaxed) + 1;
  if (hit != spec.count) return;
  std::fprintf(stderr, "SQPR_FAULT: injected crash at %s hit %lld\n", point,
               hit);
  std::fflush(stderr);
  std::_Exit(kCrashExitCode);
}

}  // namespace fault
}  // namespace sqpr
