#include "common/json.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"

namespace sqpr {
namespace {

constexpr int kMaxDepth = 128;

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue v;
    SQPR_RETURN_IF_ERROR(ParseValue(&v, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after document");
    }
    return v;
  }

 private:
  Status Error(const std::string& what) const {
    const size_t from = pos_ < text_.size() ? pos_ : text_.size();
    std::string near = text_.substr(from, 16);
    for (char& c : near) {
      if (static_cast<unsigned char>(c) < 0x20) c = '?';
    }
    return Status::InvalidArgument("json: " + what + " at offset " +
                                   std::to_string(pos_) + " near \"" + near +
                                   "\"");
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(const char* word) {
    const size_t n = std::strlen(word);
    if (text_.compare(pos_, n, word) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        SQPR_RETURN_IF_ERROR(ParseString(&s));
        *out = JsonValue::Str(std::move(s));
        return Status::OK();
      }
      case 't':
        if (ConsumeWord("true")) {
          *out = JsonValue::Bool(true);
          return Status::OK();
        }
        return Error("invalid literal");
      case 'f':
        if (ConsumeWord("false")) {
          *out = JsonValue::Bool(false);
          return Status::OK();
        }
        return Error("invalid literal");
      case 'n':
        if (ConsumeWord("null")) {
          *out = JsonValue::Null();
          return Status::OK();
        }
        return Error("invalid literal");
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    *out = JsonValue::Object();
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      std::string key;
      SQPR_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':'");
      JsonValue value;
      SQPR_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->Set(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Error("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    *out = JsonValue::Array();
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue value;
      SQPR_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->Append(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Error("expected ',' or ']'");
    }
  }

  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + i];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid \\u escape digit");
      }
    }
    pos_ += 4;
    *out = value;
    return Status::OK();
  }

  static void AppendUtf8(uint32_t cp, std::string* s) {
    if (cp < 0x80) {
      s->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      s->push_back(static_cast<char>(0xc0 | (cp >> 6)));
      s->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    } else if (cp < 0x10000) {
      s->push_back(static_cast<char>(0xe0 | (cp >> 12)));
      s->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
      s->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    } else {
      s->push_back(static_cast<char>(0xf0 | (cp >> 18)));
      s->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3f)));
      s->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
      s->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (c < 0x20) return Error("raw control character in string");
      if (c != '\\') {
        out->push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      ++pos_;  // '\'
      if (pos_ >= text_.size()) return Error("truncated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          uint32_t cp = 0;
          SQPR_RETURN_IF_ERROR(ParseHex4(&cp));
          if (cp >= 0xd800 && cp <= 0xdbff) {
            // High surrogate: require the paired low surrogate.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Error("lone high surrogate");
            }
            pos_ += 2;
            uint32_t low = 0;
            SQPR_RETURN_IF_ERROR(ParseHex4(&low));
            if (low < 0xdc00 || low > 0xdfff) {
              return Error("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xd800) << 10) + (low - 0xdc00);
          } else if (cp >= 0xdc00 && cp <= 0xdfff) {
            return Error("lone low surrogate");
          }
          AppendUtf8(cp, out);
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    bool any_digits = false;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
      any_digits = true;
    }
    bool is_integer = true;
    if (Consume('.')) {
      is_integer = false;
      bool frac_digits = false;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        frac_digits = true;
      }
      if (!frac_digits) {
        pos_ = start;
        return Error("invalid number");
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_integer = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      bool exp_digits = false;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        exp_digits = true;
      }
      if (!exp_digits) {
        pos_ = start;
        return Error("invalid number");
      }
    }
    if (!any_digits) {
      pos_ = start;
      return Error("invalid number");
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (is_integer) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        *out = JsonValue::Int(static_cast<int64_t>(v));
        return Status::OK();
      }
      // Out-of-range integer literal: fall through to double semantics.
    }
    errno = 0;
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || !std::isfinite(d)) {
      pos_ = start;
      return Error("number out of range");
    }
    *out = JsonValue::Double(d);
    return Status::OK();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

void WriteString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (const char raw : s) {
    const unsigned char c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(raw);
        }
    }
  }
  out->push_back('"');
}

/// Shortest decimal rendering that round-trips the exact double — the
/// canonical form that makes Write(Parse(Write(v))) byte-stable.
void WriteDouble(double d, std::string* out) {
  SQPR_CHECK(std::isfinite(d)) << "JSON cannot carry non-finite doubles";
  char buf[40];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, d);
    if (std::strtod(buf, nullptr) == d) break;
  }
  *out += buf;
  // A double that rendered like an integer must not re-parse as kInt.
  if (std::strpbrk(buf, ".eE") == nullptr) *out += ".0";
}

void WriteValue(const JsonValue& v, std::string* out) {
  switch (v.kind()) {
    case JsonValue::Kind::kNull:
      *out += "null";
      break;
    case JsonValue::Kind::kBool:
      *out += v.bool_value() ? "true" : "false";
      break;
    case JsonValue::Kind::kInt:
      *out += std::to_string(v.int_value());
      break;
    case JsonValue::Kind::kDouble:
      WriteDouble(v.double_value(), out);
      break;
    case JsonValue::Kind::kString:
      WriteString(v.string_value(), out);
      break;
    case JsonValue::Kind::kArray: {
      out->push_back('[');
      bool first = true;
      for (const JsonValue& item : v.items()) {
        if (!first) out->push_back(',');
        first = false;
        WriteValue(item, out);
      }
      out->push_back(']');
      break;
    }
    case JsonValue::Kind::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& m : v.members()) {
        if (!first) out->push_back(',');
        first = false;
        WriteString(m.first, out);
        out->push_back(':');
        WriteValue(m.second, out);
      }
      out->push_back('}');
      break;
    }
  }
}

}  // namespace

Result<JsonValue> ParseJson(const std::string& text) {
  Parser parser(text);
  return parser.Parse();
}

std::string WriteJson(const JsonValue& value) {
  std::string out;
  WriteValue(value, &out);
  return out;
}

}  // namespace sqpr
