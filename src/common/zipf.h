#ifndef SQPR_COMMON_ZIPF_H_
#define SQPR_COMMON_ZIPF_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace sqpr {

/// Samples ranks 0..n-1 with P(rank k) proportional to 1/(k+1)^s.
///
/// The paper draws the base streams of each query "according to a Zipfian
/// distribution with parameter 1" (§V) and sweeps the parameter in
/// [0, 2] for Fig. 4(c); s = 0 degenerates to the uniform distribution.
/// n is at most a few thousand in all experiments, so we precompute the
/// CDF once and sample by binary search, which is exact and O(log n).
class ZipfSampler {
 public:
  /// Builds a sampler over n ranks with skew parameter s >= 0.
  ZipfSampler(size_t n, double s);

  /// Draws one rank in [0, n).
  size_t Sample(Rng& rng) const;

  size_t n() const { return cdf_.size(); }
  double s() const { return s_; }

  /// Probability of rank k (for tests and analytical expectations).
  double Probability(size_t k) const;

 private:
  double s_ = 0.0;
  std::vector<double> cdf_;  // cdf_[k] = P(rank <= k); cdf_.back() == 1.
};

}  // namespace sqpr

#endif  // SQPR_COMMON_ZIPF_H_
