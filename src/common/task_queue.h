#ifndef SQPR_COMMON_TASK_QUEUE_H_
#define SQPR_COMMON_TASK_QUEUE_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sqpr {

/// Count-down latch (a C++17-compatible stand-in for std::latch). The
/// planning service pairs one Latch with each round of worker-pool
/// solves; Wait() establishes the happens-before edge that makes results
/// written before the matching CountDown() visible to the waiter.
class Latch {
 public:
  explicit Latch(int count) : count_(count < 0 ? 0 : count) {}

  Latch(const Latch&) = delete;
  Latch& operator=(const Latch&) = delete;

  /// Decrements the count; wakes waiters when it reaches zero.
  /// Decrementing past zero is a no-op.
  void CountDown();

  /// Blocks until the count reaches zero.
  void Wait();

  /// Non-blocking probe: true when the count has reached zero.
  bool TryWait();

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int count_;
};

/// Fixed-size FIFO worker pool for CPU-bound planning work. Tasks are
/// opaque closures; completion signalling and result ordering are the
/// caller's business (the planning service pairs each round of solve
/// tasks with a Latch and commits the results on its own thread in
/// deterministic order — see docs/ARCHITECTURE.md).
///
/// The destructor drains every queued task before joining, so a Latch
/// counted down by queued tasks always completes.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  /// `on_worker_start` runs once on each worker thread before it takes
  /// its first task (worker index as argument) — the seam observability
  /// uses to name the threads without coupling this layer to it.
  ThreadPool(int num_threads, std::function<void(int)> on_worker_start);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; runs on some worker thread in FIFO dispatch order.
  void Submit(std::function<void()> task);

  int num_threads() const { return static_cast<int>(threads_.size()); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace sqpr

#endif  // SQPR_COMMON_TASK_QUEUE_H_
