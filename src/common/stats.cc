#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/logging.h"

namespace sqpr {

void RunningStats::Add(double v) {
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
  sum_sq_ += v * v;
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  const double m = mean();
  double var = sum_sq_ / count_ - m * m;
  return var < 0.0 ? 0.0 : var;  // clamp tiny negative rounding noise
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  SQPR_CHECK(q >= 0.0 && q <= 1.0) << "percentile q out of range: " << q;
  std::sort(samples.begin(), samples.end());
  const auto rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(samples.size())));
  const size_t index = rank == 0 ? 0 : rank - 1;
  return samples[std::min(index, samples.size() - 1)];
}

std::vector<std::pair<double, double>> EmpiricalCdf(
    std::vector<double> samples) {
  std::vector<std::pair<double, double>> cdf;
  if (samples.empty()) return cdf;
  std::sort(samples.begin(), samples.end());
  const double n = static_cast<double>(samples.size());
  cdf.reserve(samples.size());
  for (size_t i = 0; i < samples.size(); ++i) {
    // Collapse ties onto the highest cumulative probability.
    if (!cdf.empty() && cdf.back().first == samples[i]) {
      cdf.back().second = static_cast<double>(i + 1) / n;
    } else {
      cdf.emplace_back(samples[i], static_cast<double>(i + 1) / n);
    }
  }
  return cdf;
}

std::string FormatCdf(const std::vector<std::pair<double, double>>& cdf) {
  std::string out;
  char line[64];
  for (const auto& [value, prob] : cdf) {
    std::snprintf(line, sizeof(line), "%.6g\t%.4f\n", value, prob);
    out += line;
  }
  return out;
}

}  // namespace sqpr
