#ifndef SQPR_COMMON_JSON_H_
#define SQPR_COMMON_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace sqpr {

/// Minimal JSON document model backing the durable artifacts (the
/// sqpr-checkpoint-v1 schema in src/service/checkpoint.h). Two
/// properties matter more than generality:
///
///  * Canonical writing: Write() renders a value with no whitespace,
///    object members in insertion order, integers as plain decimals and
///    doubles in shortest-round-trip form, so
///    Write(Parse(Write(v))) == Write(v) byte for byte — the
///    write->parse->write equality the checkpoint tests pin, and the
///    reason two services in the same state produce cmp-equal
///    checkpoint files.
///  * Defensive parsing: Parse() is a bounded recursive-descent parser
///    that turns any malformed input — truncation, bad escapes,
///    non-finite numbers, absurd nesting — into an InvalidArgument
///    Status quoting the offset, never UB or an abort (the
///    corrupted-checkpoint fuzz contract).
///
/// Readers ignore object members they do not recognise (Find() simply
/// never asks for them), which is the schema's forward-compatibility
/// rule.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}

  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b) {
    JsonValue v;
    v.kind_ = Kind::kBool;
    v.bool_ = b;
    return v;
  }
  static JsonValue Int(int64_t i) {
    JsonValue v;
    v.kind_ = Kind::kInt;
    v.int_ = i;
    return v;
  }
  static JsonValue Double(double d) {
    JsonValue v;
    v.kind_ = Kind::kDouble;
    v.double_ = d;
    return v;
  }
  static JsonValue Str(std::string s) {
    JsonValue v;
    v.kind_ = Kind::kString;
    v.string_ = std::move(s);
    return v;
  }
  static JsonValue Array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_int() const { return kind_ == Kind::kInt; }
  bool is_double() const { return kind_ == Kind::kDouble; }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool bool_value() const { return bool_; }
  int64_t int_value() const { return int_; }
  double double_value() const { return double_; }
  /// Numeric value of either number kind.
  double AsDouble() const {
    return kind_ == Kind::kInt ? static_cast<double>(int_) : double_;
  }
  const std::string& string_value() const { return string_; }

  const std::vector<JsonValue>& items() const { return items_; }
  std::vector<JsonValue>& items() { return items_; }
  /// Appends to an array value.
  void Append(JsonValue v) { items_.push_back(std::move(v)); }

  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }
  /// Appends a member to an object value (insertion order is the
  /// canonical write order; callers never add a key twice).
  void Set(std::string key, JsonValue v) {
    members_.emplace_back(std::move(key), std::move(v));
  }
  /// First member with `key`, or null — absent and unknown keys are both
  /// simply "not found".
  const JsonValue* Find(const std::string& key) const {
    for (const auto& m : members_) {
      if (m.first == key) return &m.second;
    }
    return nullptr;
  }

 private:
  Kind kind_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parses a complete JSON document (trailing garbage is an error).
/// Numbers without '.', 'e' or 'E' that fit int64 parse as kInt;
/// everything else numeric parses as kDouble. Non-finite results
/// (overflowing literals like 1e999) are rejected. Nesting is bounded
/// (128 levels) so hostile input cannot overflow the stack.
Result<JsonValue> ParseJson(const std::string& text);

/// Canonical single-line rendering; see the class comment for the
/// write->parse->write byte-equality contract. Doubles must be finite
/// (the checkpoint layer encodes non-finite values as strings).
std::string WriteJson(const JsonValue& value);

}  // namespace sqpr

#endif  // SQPR_COMMON_JSON_H_
