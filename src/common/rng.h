#ifndef SQPR_COMMON_RNG_H_
#define SQPR_COMMON_RNG_H_

#include <array>
#include <cstdint>
#include <limits>

namespace sqpr {

/// Deterministic pseudo-random generator (xoshiro256** seeded via
/// SplitMix64). All randomness in the library flows through explicitly
/// seeded Rng instances so that every experiment is reproducible from the
/// seed printed in its output header.
class Rng {
 public:
  explicit Rng(uint64_t seed) { Seed(seed); }

  /// Re-seeds the generator deterministically.
  void Seed(uint64_t seed) {
    // SplitMix64 expansion of the seed into the xoshiro state; avoids the
    // all-zero state xoshiro cannot leave.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  uint64_t NextUint64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). Requires bound > 0.
  uint64_t NextBounded(uint64_t bound) {
    // Lemire's nearly-divisionless bounded generation.
    uint64_t x = NextUint64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<uint64_t>(m);
    if (low < bound) {
      const uint64_t threshold = -bound % bound;
      while (low < threshold) {
        x = NextUint64();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    NextBounded(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Bernoulli draw with probability p of returning true.
  bool NextBool(double p) { return NextDouble() < p; }

  /// Forks an independent generator; the child stream is a deterministic
  /// function of (parent state, label), so sub-components can be given
  /// their own streams without correlating draws.
  Rng Fork(uint64_t label) {
    return Rng(NextUint64() ^ (label * 0x9e3779b97f4a7c15ULL));
  }

  /// Raw generator state for checkpointing: restoring the four words
  /// resumes the stream at exactly the next draw. Used by consumers
  /// whose draw count is data-dependent (measurement noise shaping) and
  /// therefore cannot be replayed positionally.
  std::array<uint64_t, 4> SaveState() const {
    return {state_[0], state_[1], state_[2], state_[3]};
  }
  void RestoreState(const std::array<uint64_t, 4>& state) {
    for (int i = 0; i < 4; ++i) state_[i] = state[i];
  }

 private:
  static uint64_t Rotl(uint64_t v, int k) { return (v << k) | (v >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace sqpr

#endif  // SQPR_COMMON_RNG_H_
