#ifndef SQPR_COMMON_DEADLINE_H_
#define SQPR_COMMON_DEADLINE_H_

#include <chrono>
#include <cstdint>

namespace sqpr {

/// Wall-clock deadline used to bound branch-and-bound search, mirroring
/// the fixed CPLEX timeout the paper gives the planner per query (§IV-C).
/// A default-constructed Deadline never expires.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Never-expiring deadline.
  Deadline() : has_deadline_(false) {}

  /// Expires `ms` milliseconds from now.
  static Deadline AfterMillis(int64_t ms) {
    Deadline d;
    d.has_deadline_ = true;
    d.expiry_ = Clock::now() + std::chrono::milliseconds(ms);
    return d;
  }

  static Deadline Infinite() { return Deadline(); }

  bool Expired() const {
    return has_deadline_ && Clock::now() >= expiry_;
  }

  bool is_finite() const { return has_deadline_; }

  /// Milliseconds until expiry; large sentinel when infinite, 0 if passed.
  int64_t RemainingMillis() const {
    if (!has_deadline_) return INT64_MAX / 2;
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                    expiry_ - Clock::now())
                    .count();
    return left < 0 ? 0 : left;
  }

 private:
  bool has_deadline_;
  Clock::time_point expiry_{};
};

/// Simple wall-clock stopwatch for measuring planner latencies.
class Stopwatch {
 public:
  Stopwatch() : start_(Deadline::Clock::now()) {}

  void Reset() { start_ = Deadline::Clock::now(); }

  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Deadline::Clock::now() -
                                                     start_)
        .count();
  }

 private:
  Deadline::Clock::time_point start_;
};

}  // namespace sqpr

#endif  // SQPR_COMMON_DEADLINE_H_
