#ifndef SQPR_COMMON_STATS_H_
#define SQPR_COMMON_STATS_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace sqpr {

/// Streaming accumulator for count/mean/min/max/stddev of a scalar series.
class RunningStats {
 public:
  void Add(double v);

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }
  double min() const { return min_; }
  double max() const { return max_; }
  /// Population variance; 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double sum() const { return sum_; }

 private:
  size_t count_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact percentile (nearest-rank) of a sample set; copies and sorts.
/// q in [0, 1]. Returns 0 for an empty sample.
double Percentile(std::vector<double> samples, double q);

/// Empirical CDF as sorted (value, cumulative probability) points, the
/// format used by the Fig. 7(b)/(c) utilisation plots.
std::vector<std::pair<double, double>> EmpiricalCdf(
    std::vector<double> samples);

/// Renders a CDF as gnuplot-ready rows "value<TAB>cum_prob\n".
std::string FormatCdf(const std::vector<std::pair<double, double>>& cdf);

}  // namespace sqpr

#endif  // SQPR_COMMON_STATS_H_
