#include "common/zipf.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace sqpr {

ZipfSampler::ZipfSampler(size_t n, double s) : s_(s) {
  SQPR_CHECK(n > 0) << "ZipfSampler needs at least one rank";
  SQPR_CHECK(s >= 0.0) << "Zipf parameter must be non-negative, got " << s;
  cdf_.resize(n);
  double total = 0.0;
  for (size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = total;
  }
  for (double& v : cdf_) v /= total;
  cdf_.back() = 1.0;  // guard against accumulated rounding
}

size_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

double ZipfSampler::Probability(size_t k) const {
  SQPR_CHECK(k < cdf_.size());
  if (k == 0) return cdf_[0];
  return cdf_[k] - cdf_[k - 1];
}

}  // namespace sqpr
