#ifndef SQPR_COMMON_STATUS_H_
#define SQPR_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace sqpr {

/// Error categories used across the library. Library code never throws;
/// fallible operations return a Status or a Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kResourceExhausted,
  kDeadlineExceeded,
  kInfeasible,
  kInternal,
  kUnimplemented,
};

/// Human-readable name of a StatusCode (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// A cheap, value-semantic success/error carrier in the RocksDB/Arrow
/// idiom. An ok() Status carries no message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Infeasible(std::string msg) {
    return Status(StatusCode::kInfeasible, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsInfeasible() const { return code_ == StatusCode::kInfeasible; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Accessing value() on an
/// error Result is a programming bug and aborts via CHECK in debug.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or an error Status keeps call
  /// sites terse: `return Status::NotFound(...)` or `return value;`.
  Result(T value) : state_(std::move(value)) {}        // NOLINT(runtime/explicit)
  Result(Status status) : state_(std::move(status)) {  // NOLINT(runtime/explicit)
  }

  bool ok() const { return std::holds_alternative<T>(state_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(state_);
  }

  const T& value() const& { return std::get<T>(state_); }
  T& value() & { return std::get<T>(state_); }
  T&& value() && { return std::get<T>(std::move(state_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> state_;
};

/// Propagates a non-OK Status from an expression, RocksDB-style.
#define SQPR_RETURN_IF_ERROR(expr)               \
  do {                                           \
    ::sqpr::Status _sqpr_status = (expr);        \
    if (!_sqpr_status.ok()) return _sqpr_status; \
  } while (0)

}  // namespace sqpr

#endif  // SQPR_COMMON_STATUS_H_
