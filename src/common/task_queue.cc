#include "common/task_queue.h"

#include <algorithm>
#include <utility>

namespace sqpr {

void Latch::CountDown() {
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ > 0 && --count_ == 0) cv_.notify_all();
}

void Latch::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return count_ == 0; });
}

bool Latch::TryWait() {
  std::lock_guard<std::mutex> lock(mu_);
  return count_ == 0;
}

ThreadPool::ThreadPool(int num_threads) : ThreadPool(num_threads, nullptr) {}

ThreadPool::ThreadPool(int num_threads,
                       std::function<void(int)> on_worker_start) {
  const int n = std::max(1, num_threads);
  threads_.reserve(n);
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this, i, on_worker_start] {
      if (on_worker_start) on_worker_start(i);
      WorkerLoop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping and fully drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

}  // namespace sqpr
