#include "plan/deployment.h"

#include <algorithm>

#include "common/logging.h"

namespace sqpr {

Deployment::Deployment(const Cluster* cluster, const Catalog* catalog)
    : cluster_(cluster), catalog_(catalog) {
  SQPR_CHECK(cluster != nullptr && catalog != nullptr);
  Clear();
}

void Deployment::Clear() {
  flows_by_stream_.clear();
  ops_by_host_.assign(cluster_->num_hosts(), {});
  serving_.clear();
  cpu_used_.assign(cluster_->num_hosts(), 0.0);
  mem_used_.assign(cluster_->num_hosts(), 0.0);
  nic_out_used_.assign(cluster_->num_hosts(), 0.0);
  nic_in_used_.assign(cluster_->num_hosts(), 0.0);
  link_used_.clear();
  RecordMutation(DeploymentMutation::Kind::kClear, kInvalidHost, kInvalidHost,
                 kInvalidStream, kInvalidOperator);
}

void Deployment::RecordMutation(DeploymentMutation::Kind kind, HostId a,
                                HostId b, StreamId stream, OperatorId op) {
  ++version_;
  if (kind != DeploymentMutation::Kind::kRecompute) ++structure_version_;
  if (!journal_enabled_ || journal_truncated_) return;
  if (journal_.size() >= journal_limit_) {
    // Epoch overflow: drop the suffix and stop recording until the next
    // EnableJournal. An incomplete journal must never replay (it would
    // silently materialise the wrong state), and appending past the
    // limit would grow without bound when no consumer drains it.
    journal_.clear();
    journal_.shrink_to_fit();
    journal_truncated_ = true;
    return;
  }
  journal_.push_back({kind, a, b, stream, op});
}

Status Deployment::AddFlow(HostId from, HostId to, StreamId s) {
  if (from == to) return Status::InvalidArgument("self-flow");
  if (HasFlow(from, to, s)) return Status::AlreadyExists("duplicate flow");
  const double rate = catalog_->stream(s).rate_mbps;
  flows_by_stream_[s].emplace_back(from, to);
  nic_out_used_[from] += rate;
  nic_in_used_[to] += rate;
  link_used_[{from, to}] += rate;
  RecordMutation(DeploymentMutation::Kind::kAddFlow, from, to, s,
                 kInvalidOperator);
  return Status::OK();
}

Status Deployment::RemoveFlow(HostId from, HostId to, StreamId s) {
  auto it = flows_by_stream_.find(s);
  if (it == flows_by_stream_.end()) return Status::NotFound("no such flow");
  auto& flows = it->second;
  auto fit = std::find(flows.begin(), flows.end(), std::make_pair(from, to));
  if (fit == flows.end()) return Status::NotFound("no such flow");
  flows.erase(fit);
  if (flows.empty()) flows_by_stream_.erase(it);
  const double rate = catalog_->stream(s).rate_mbps;
  nic_out_used_[from] -= rate;
  nic_in_used_[to] -= rate;
  link_used_[{from, to}] -= rate;
  RecordMutation(DeploymentMutation::Kind::kRemoveFlow, from, to, s,
                 kInvalidOperator);
  return Status::OK();
}

Status Deployment::PlaceOperator(HostId h, OperatorId o) {
  if (!ops_by_host_[h].insert(o).second) {
    return Status::AlreadyExists("operator already on host");
  }
  cpu_used_[h] += catalog_->op(o).cpu_cost;
  mem_used_[h] += catalog_->op(o).mem_mb;
  RecordMutation(DeploymentMutation::Kind::kPlaceOperator, h, kInvalidHost,
                 kInvalidStream, o);
  return Status::OK();
}

Status Deployment::RemoveOperator(HostId h, OperatorId o) {
  if (ops_by_host_[h].erase(o) == 0) {
    return Status::NotFound("operator not on host");
  }
  cpu_used_[h] -= catalog_->op(o).cpu_cost;
  mem_used_[h] -= catalog_->op(o).mem_mb;
  RecordMutation(DeploymentMutation::Kind::kRemoveOperator, h, kInvalidHost,
                 kInvalidStream, o);
  return Status::OK();
}

Status Deployment::SetServing(StreamId s, HostId h) {
  auto it = serving_.find(s);
  if (it != serving_.end()) {
    if (it->second == h) return Status::OK();
    return Status::AlreadyExists("stream already served elsewhere");
  }
  serving_[s] = h;
  nic_out_used_[h] += catalog_->stream(s).rate_mbps;  // client delivery
  RecordMutation(DeploymentMutation::Kind::kSetServing, h, kInvalidHost, s,
                 kInvalidOperator);
  return Status::OK();
}

Status Deployment::ClearServing(StreamId s) {
  auto it = serving_.find(s);
  if (it == serving_.end()) return Status::NotFound("stream not served");
  nic_out_used_[it->second] -= catalog_->stream(s).rate_mbps;
  const HostId host = it->second;
  serving_.erase(it);
  RecordMutation(DeploymentMutation::Kind::kClearServing, host, kInvalidHost,
                 s, kInvalidOperator);
  return Status::OK();
}

void Deployment::EnableJournal(size_t limit) {
  journal_enabled_ = true;
  journal_truncated_ = false;
  journal_limit_ = limit;
  journal_.clear();
}

Status Deployment::ApplyJournal(
    const std::vector<DeploymentMutation>& records) {
  for (const DeploymentMutation& r : records) {
    switch (r.kind) {
      case DeploymentMutation::Kind::kAddFlow:
        SQPR_RETURN_IF_ERROR(AddFlow(r.a, r.b, r.stream));
        break;
      case DeploymentMutation::Kind::kRemoveFlow:
        SQPR_RETURN_IF_ERROR(RemoveFlow(r.a, r.b, r.stream));
        break;
      case DeploymentMutation::Kind::kPlaceOperator:
        SQPR_RETURN_IF_ERROR(PlaceOperator(r.a, r.op));
        break;
      case DeploymentMutation::Kind::kRemoveOperator:
        SQPR_RETURN_IF_ERROR(RemoveOperator(r.a, r.op));
        break;
      case DeploymentMutation::Kind::kSetServing:
        SQPR_RETURN_IF_ERROR(SetServing(r.stream, r.a));
        break;
      case DeploymentMutation::Kind::kClearServing:
        SQPR_RETURN_IF_ERROR(ClearServing(r.stream));
        break;
      case DeploymentMutation::Kind::kRecompute:
        RecomputeAggregates();
        break;
      case DeploymentMutation::Kind::kClear:
        Clear();
        break;
    }
  }
  return Status::OK();
}

size_t Deployment::ApproxSizeBytes() const {
  size_t bytes = 0;
  for (const auto& [s, flows] : flows_by_stream_) {
    (void)s;
    // Map node + vector payload.
    bytes += sizeof(StreamId) + 3 * sizeof(void*) +
             flows.size() * sizeof(std::pair<HostId, HostId>);
  }
  for (const auto& ops : ops_by_host_) {
    // std::set nodes are ~3 pointers + key each.
    bytes += ops.size() * (sizeof(OperatorId) + 3 * sizeof(void*));
  }
  bytes += serving_.size() *
           (sizeof(StreamId) + sizeof(HostId) + 3 * sizeof(void*));
  bytes += (cpu_used_.size() + mem_used_.size() + nic_out_used_.size() +
            nic_in_used_.size()) *
           sizeof(double);
  bytes += link_used_.size() *
           (sizeof(std::pair<HostId, HostId>) + sizeof(double) +
            3 * sizeof(void*));
  return bytes;
}

bool Deployment::HasFlow(HostId from, HostId to, StreamId s) const {
  auto it = flows_by_stream_.find(s);
  if (it == flows_by_stream_.end()) return false;
  return std::find(it->second.begin(), it->second.end(),
                   std::make_pair(from, to)) != it->second.end();
}

bool Deployment::RunsOperator(HostId h, OperatorId o) const {
  return ops_by_host_[h].count(o) > 0;
}

HostId Deployment::ServingHost(StreamId s) const {
  auto it = serving_.find(s);
  return it == serving_.end() ? kInvalidHost : it->second;
}

std::vector<StreamId> Deployment::ServedStreams() const {
  std::vector<StreamId> out;
  out.reserve(serving_.size());
  for (const auto& [s, h] : serving_) {
    (void)h;
    out.push_back(s);
  }
  return out;
}

const std::vector<std::pair<HostId, HostId>>& Deployment::FlowsOf(
    StreamId s) const {
  static const std::vector<std::pair<HostId, HostId>> kEmpty;
  auto it = flows_by_stream_.find(s);
  return it == flows_by_stream_.end() ? kEmpty : it->second;
}

const std::set<OperatorId>& Deployment::OperatorsOn(HostId h) const {
  return ops_by_host_[h];
}

std::vector<HostId> Deployment::HostsRunning(OperatorId o) const {
  std::vector<HostId> hosts;
  for (HostId h = 0; h < cluster_->num_hosts(); ++h) {
    if (ops_by_host_[h].count(o) > 0) hosts.push_back(h);
  }
  return hosts;
}

bool Deployment::CanAddFlow(HostId from, HostId to, StreamId s,
                            double tol) const {
  if (from == to) return false;
  const double rate = catalog_->stream(s).rate_mbps;
  if (nic_out_used_[from] + rate > cluster_->host(from).nic_out_mbps + tol) {
    return false;
  }
  if (nic_in_used_[to] + rate > cluster_->host(to).nic_in_mbps + tol) {
    return false;
  }
  return LinkUsed(from, to) + rate <= cluster_->link_mbps(from, to) + tol;
}

bool Deployment::CanPlaceOperator(HostId h, OperatorId o, double tol) const {
  return cpu_used_[h] + catalog_->op(o).cpu_cost <=
             cluster_->host(h).cpu + tol &&
         mem_used_[h] + catalog_->op(o).mem_mb <=
             cluster_->host(h).mem_mb + tol;
}

bool Deployment::CanServe(StreamId s, HostId h, double tol) const {
  return nic_out_used_[h] + catalog_->stream(s).rate_mbps <=
         cluster_->host(h).nic_out_mbps + tol;
}

double Deployment::LinkUsed(HostId from, HostId to) const {
  auto it = link_used_.find({from, to});
  return it == link_used_.end() ? 0.0 : it->second;
}

double Deployment::TotalNetworkUsed() const {
  double total = 0.0;
  for (const auto& [s, flows] : flows_by_stream_) {
    total += catalog_->stream(s).rate_mbps * flows.size();
  }
  return total;
}

double Deployment::TotalCpuUsed() const {
  double total = 0.0;
  for (double c : cpu_used_) total += c;
  return total;
}

double Deployment::MaxHostCpuUsed() const {
  double best = 0.0;
  for (double c : cpu_used_) best = std::max(best, c);
  return best;
}

int Deployment::num_flows() const {
  int count = 0;
  for (const auto& [s, flows] : flows_by_stream_) {
    (void)s;
    count += static_cast<int>(flows.size());
  }
  return count;
}

int Deployment::num_placed_operators() const {
  int count = 0;
  for (const auto& ops : ops_by_host_) count += static_cast<int>(ops.size());
  return count;
}

GroundedMap Deployment::GroundedAvailability() const {
  GroundedMap grounded;
  grounded.num_hosts = cluster_->num_hosts();
  // The single catalog-size read that defines this map's stride.
  grounded.num_streams = catalog_->num_streams();
  grounded.bits.assign(
      static_cast<size_t>(grounded.num_hosts) * grounded.num_streams, false);

  // Base streams are grounded at their source hosts.
  for (StreamId s = 0; s < grounded.num_streams; ++s) {
    const StreamInfo& info = catalog_->stream(s);
    if (info.is_base && info.source_host != kInvalidHost &&
        info.source_host < grounded.num_hosts) {
      grounded.set(info.source_host, s);
    }
  }

  // Least fixpoint over operator execution and flows. The iteration count
  // is bounded by the longest support chain; each pass is cheap at the
  // committed-state sizes involved.
  bool changed = true;
  while (changed) {
    changed = false;
    for (HostId h = 0; h < grounded.num_hosts; ++h) {
      for (OperatorId o : ops_by_host_[h]) {
        const OperatorInfo& op = catalog_->op(o);
        if (grounded.at(h, op.output)) continue;
        bool all_inputs = true;
        for (StreamId in : op.inputs) {
          if (!grounded.at(h, in)) {
            all_inputs = false;
            break;
          }
        }
        if (all_inputs) {
          grounded.set(h, op.output);
          changed = true;
        }
      }
    }
    for (const auto& [s, flows] : flows_by_stream_) {
      for (const auto& [from, to] : flows) {
        if (grounded.at(from, s) && !grounded.at(to, s)) {
          grounded.set(to, s);
          changed = true;
        }
      }
    }
  }
  return grounded;
}

void Deployment::RecomputeAggregates() {
  RecordMutation(DeploymentMutation::Kind::kRecompute, kInvalidHost,
                 kInvalidHost, kInvalidStream, kInvalidOperator);
  const int num_hosts = cluster_->num_hosts();
  cpu_used_.assign(num_hosts, 0.0);
  mem_used_.assign(num_hosts, 0.0);
  nic_out_used_.assign(num_hosts, 0.0);
  nic_in_used_.assign(num_hosts, 0.0);
  link_used_.clear();
  for (HostId h = 0; h < num_hosts; ++h) {
    for (OperatorId o : ops_by_host_[h]) {
      cpu_used_[h] += catalog_->op(o).cpu_cost;
      mem_used_[h] += catalog_->op(o).mem_mb;
    }
  }
  for (const auto& [s, flows] : flows_by_stream_) {
    const double rate = catalog_->stream(s).rate_mbps;
    for (const auto& [from, to] : flows) {
      nic_out_used_[from] += rate;
      nic_in_used_[to] += rate;
      link_used_[{from, to}] += rate;
    }
  }
  for (const auto& [s, h] : serving_) {
    nic_out_used_[h] += catalog_->stream(s).rate_mbps;
  }
}

Status Deployment::Validate(double tol) const {
  const int num_hosts = cluster_->num_hosts();
  const GroundedMap grounded = GroundedAvailability();

  // Causality of flows (subsumes acyclicity): a flow must leave a host
  // where the stream is grounded *without counting the flow's own cycle*.
  for (const auto& [s, flows] : flows_by_stream_) {
    for (const auto& [from, to] : flows) {
      (void)to;
      if (!grounded.at(from, s)) {
        return Status::Infeasible("flow of stream " +
                                  catalog_->stream(s).name + " leaves host " +
                                  std::to_string(from) +
                                  " where it is not grounded (acausal)");
      }
    }
  }

  // Operators need all inputs grounded at their host.
  for (HostId h = 0; h < num_hosts; ++h) {
    for (OperatorId o : ops_by_host_[h]) {
      for (StreamId in : catalog_->op(o).inputs) {
        if (!grounded.at(h, in)) {
          return Status::Infeasible(
              "operator " + std::to_string(o) + " on host " +
              std::to_string(h) + " is missing input " +
              catalog_->stream(in).name);
        }
      }
    }
  }

  // Served streams must be grounded at their server (III.4a with y).
  for (const auto& [s, h] : serving_) {
    if (!grounded.at(h, s)) {
      return Status::Infeasible("served stream " + catalog_->stream(s).name +
                                " not grounded at host " + std::to_string(h));
    }
  }

  // Resource budgets.
  for (HostId h = 0; h < num_hosts; ++h) {
    const HostSpec& spec = cluster_->host(h);
    if (cpu_used_[h] > spec.cpu + tol) {
      return Status::ResourceExhausted("CPU over budget on host " +
                                       std::to_string(h));
    }
    if (mem_used_[h] > spec.mem_mb + tol) {
      return Status::ResourceExhausted("memory over budget on host " +
                                       std::to_string(h));
    }
    if (nic_out_used_[h] > spec.nic_out_mbps + tol) {
      return Status::ResourceExhausted("outgoing NIC over budget on host " +
                                       std::to_string(h));
    }
    if (nic_in_used_[h] > spec.nic_in_mbps + tol) {
      return Status::ResourceExhausted("incoming NIC over budget on host " +
                                       std::to_string(h));
    }
  }
  for (const auto& [link, used] : link_used_) {
    if (used > cluster_->link_mbps(link.first, link.second) + tol) {
      return Status::ResourceExhausted(
          "link " + std::to_string(link.first) + "->" +
          std::to_string(link.second) + " over budget");
    }
  }
  return Status::OK();
}

std::string Deployment::Fingerprint() const {
  std::string out;
  for (const auto& [s, h] : serving_) {
    out += "serve " + std::to_string(s) + "@" + std::to_string(h) + "\n";
  }
  for (HostId h = 0; h < cluster_->num_hosts(); ++h) {
    for (OperatorId o : ops_by_host_[h]) {
      out += "op " + std::to_string(h) + ":" + std::to_string(o) + "\n";
    }
  }
  for (const auto& [s, flows] : flows_by_stream_) {
    // Flow lists are append-ordered; sort for canonical output.
    std::vector<std::pair<HostId, HostId>> sorted = flows;
    std::sort(sorted.begin(), sorted.end());
    for (const auto& [from, to] : sorted) {
      out += "flow " + std::to_string(from) + ">" + std::to_string(to) + ":" +
             std::to_string(s) + "\n";
    }
  }
  return out;
}

DeploymentDelta DiffDeployments(const Deployment& base,
                                const Deployment& next) {
  DeploymentDelta delta;
  const Cluster& cluster = base.cluster();
  const int num_streams = base.catalog().num_streams();

  for (HostId h = 0; h < cluster.num_hosts(); ++h) {
    for (OperatorId o : next.OperatorsOn(h)) {
      if (!base.RunsOperator(h, o)) delta.ops_added.emplace_back(h, o);
    }
    for (OperatorId o : base.OperatorsOn(h)) {
      if (!next.RunsOperator(h, o)) delta.ops_removed.emplace_back(h, o);
    }
  }

  for (StreamId s = 0; s < num_streams; ++s) {
    for (const auto& [from, to] : next.FlowsOf(s)) {
      if (!base.HasFlow(from, to, s)) {
        delta.flows_added.emplace_back(from, to, s);
      }
    }
    for (const auto& [from, to] : base.FlowsOf(s)) {
      if (!next.HasFlow(from, to, s)) {
        delta.flows_removed.emplace_back(from, to, s);
      }
    }
    const HostId before = base.ServingHost(s);
    const HostId after = next.ServingHost(s);
    if (before != after) {
      delta.serving_changes.push_back({s, before, after});
    }
  }
  return delta;
}

Status ApplyDeploymentDelta(const DeploymentDelta& delta,
                            Deployment* deployment) {
  // Removals first, so freed capacity and slots are available to the
  // additions below (the delta's source deployment interleaved them).
  for (const auto& [from, to, s] : delta.flows_removed) {
    if (!deployment->HasFlow(from, to, s)) continue;  // already gone
    SQPR_RETURN_IF_ERROR(deployment->RemoveFlow(from, to, s));
  }
  for (const auto& [h, o] : delta.ops_removed) {
    if (!deployment->RunsOperator(h, o)) continue;  // already gone
    SQPR_RETURN_IF_ERROR(deployment->RemoveOperator(h, o));
  }
  for (const DeploymentDelta::ServingChange& change : delta.serving_changes) {
    const HostId current = deployment->ServingHost(change.stream);
    // Idempotent: an earlier commit (solved from the same snapshot)
    // already made this exact move — e.g. two proposals migrating the
    // same shared-support query identically.
    if (current == change.after) continue;
    if (current != change.before) {
      return Status::FailedPrecondition(
          "serving of stream " + std::to_string(change.stream) +
          " changed since the delta was computed");
    }
    if (change.before != kInvalidHost) {
      SQPR_RETURN_IF_ERROR(deployment->ClearServing(change.stream));
    }
    if (change.after != kInvalidHost) {
      SQPR_RETURN_IF_ERROR(deployment->SetServing(change.stream, change.after));
    }
  }
  for (const auto& [h, o] : delta.ops_added) {
    if (deployment->RunsOperator(h, o)) continue;  // shared with another plan
    SQPR_RETURN_IF_ERROR(deployment->PlaceOperator(h, o));
  }
  for (const auto& [from, to, s] : delta.flows_added) {
    if (deployment->HasFlow(from, to, s)) continue;  // shared
    SQPR_RETURN_IF_ERROR(deployment->AddFlow(from, to, s));
  }
  return Status::OK();
}

}  // namespace sqpr
