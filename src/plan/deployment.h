#ifndef SQPR_PLAN_DEPLOYMENT_H_
#define SQPR_PLAN_DEPLOYMENT_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/status.h"
#include "model/catalog.h"
#include "model/cluster.h"
#include "model/ids.h"

namespace sqpr {

/// A host × stream availability snapshot (the derived y_hs of §III),
/// carrying its own stream-count stride. The stride matters for thread
/// safety: worker-thread solves read a shared Catalog that the event
/// loop may be growing concurrently (speculative arrival interning), so
/// a consumer must index the bitmap with the catalog size *at build
/// time*, never with a fresh Catalog::num_streams() read. Streams
/// interned after the snapshot are trivially not grounded anywhere,
/// which at() encodes by returning false for out-of-stride ids.
struct GroundedMap {
  int num_hosts = 0;
  /// Catalog stream count when the map was built (the row stride).
  int num_streams = 0;
  std::vector<bool> bits;  // num_hosts x num_streams, row-major by host

  bool at(HostId h, StreamId s) const {
    return s < num_streams &&
           bits[static_cast<size_t>(h) * num_streams + s];
  }
  void set(HostId h, StreamId s) {
    bits[static_cast<size_t>(h) * num_streams + s] = true;
  }
};

/// One successful Deployment mutation, recorded in the optional journal
/// (EnableJournal). A journal suffix replayed onto a copy of the state
/// it started from reproduces the source deployment bit for bit —
/// including flow-list order and the floating-point ledger history —
/// which is what lets planner snapshots ship O(changes) overlays instead
/// of full deployment copies (see SqprPlanner::MakeSnapshot).
struct DeploymentMutation {
  enum class Kind : uint8_t {
    kAddFlow,
    kRemoveFlow,
    kPlaceOperator,
    kRemoveOperator,
    kSetServing,
    kClearServing,
    /// RecomputeAggregates(): ledgers rebuilt from the catalog's rates
    /// *at replay time*. Safe because every UpdateBaseRate is followed
    /// by a recompute, so entries after the journal's last kRecompute
    /// replay under exactly the rates they originally used.
    kRecompute,
    kClear,
  };
  Kind kind = Kind::kRecompute;
  HostId a = kInvalidHost;  // from / operator host / serving host
  HostId b = kInvalidHost;  // flow destination
  StreamId stream = kInvalidStream;
  OperatorId op = kInvalidOperator;
};

/// The global allocation state of the DSPS — the committed values of the
/// paper's decision variables:
///   serving map            d_hs = 1  (host h answers requests for s)
///   flows                  x_hms = 1 (h sends stream s to m)
///   operator placements    z_ho = 1  (h executes operator o)
/// Availability (y_hs) is derived, not stored: a stream is available at a
/// host iff it is *grounded* there (see GroundedAvailability below).
///
/// Deployment is a value type: planners copy it, edit the copy while
/// solving, and commit by assignment — which is exactly how SQPR's
/// replanning "removes and re-adds" queries (§IV-B).
class Deployment {
 public:
  Deployment(const Cluster* cluster, const Catalog* catalog);

  /// Resets to the empty allocation (Algorithm 1 line 1).
  void Clear();

  // ---- Mutators (resource aggregates maintained incrementally). ----
  Status AddFlow(HostId from, HostId to, StreamId s);
  Status RemoveFlow(HostId from, HostId to, StreamId s);
  Status PlaceOperator(HostId h, OperatorId o);
  Status RemoveOperator(HostId h, OperatorId o);
  /// Marks host h as the (single) server of requested stream s; includes
  /// the client-delivery bandwidth of (III.6c).
  Status SetServing(StreamId s, HostId h);
  Status ClearServing(StreamId s);

  // ---- Lookups. ----
  bool HasFlow(HostId from, HostId to, StreamId s) const;
  bool RunsOperator(HostId h, OperatorId o) const;
  /// Host serving stream s, or kInvalidHost.
  HostId ServingHost(StreamId s) const;
  /// All streams currently served (the admitted queries).
  std::vector<StreamId> ServedStreams() const;
  /// All flows carrying stream s as (from, to) pairs.
  const std::vector<std::pair<HostId, HostId>>& FlowsOf(StreamId s) const;
  /// All operators placed on host h.
  const std::set<OperatorId>& OperatorsOn(HostId h) const;
  /// Hosts executing operator o (the paper's model allows an operator to
  /// be instantiated on several hosts for different queries' benefit).
  std::vector<HostId> HostsRunning(OperatorId o) const;

  // ---- Capacity headroom checks (used by the greedy planners). ----
  /// True when the flow fits the sender NIC, receiver NIC and link.
  bool CanAddFlow(HostId from, HostId to, StreamId s, double tol = 1e-9) const;
  /// True when host h has CPU headroom for operator o.
  bool CanPlaceOperator(HostId h, OperatorId o, double tol = 1e-9) const;
  /// True when host h has outgoing NIC headroom to deliver s to clients.
  bool CanServe(StreamId s, HostId h, double tol = 1e-9) const;

  // ---- Resource accounting. ----
  double CpuUsed(HostId h) const { return cpu_used_[h]; }
  double MemUsed(HostId h) const { return mem_used_[h]; }
  double NicOutUsed(HostId h) const { return nic_out_used_[h]; }
  double NicInUsed(HostId h) const { return nic_in_used_[h]; }
  double LinkUsed(HostId from, HostId to) const;
  double TotalNetworkUsed() const;  // objective O2 over committed flows
  double TotalCpuUsed() const;      // objective O3
  double MaxHostCpuUsed() const;    // objective O4

  /// Least-fixpoint availability: at(h, s) is true iff stream s can
  /// causally reach host h through base injection, local operator
  /// execution (all inputs grounded) or an incoming flow from a host
  /// where s is grounded. Acausal flow cycles are *not* grounded — this
  /// is the semantic content of the paper's acyclicity constraints
  /// (III.7). The catalog size is read once; consumers must index
  /// through GroundedMap::at (see its comment for why).
  GroundedMap GroundedAvailability() const;

  /// Rebuilds every resource ledger (CPU, memory, NIC, links) from the
  /// committed placements, flows and servings using the catalog's
  /// *current* costs and rates. Required after Catalog::UpdateBaseRate
  /// (§IV-B), which changes costs under committed state.
  void RecomputeAggregates();

  /// Full §III feasibility audit of the committed state:
  ///  * every flow leaves a host where the stream is grounded,
  ///  * every operator has all inputs grounded at its host,
  ///  * every served stream is grounded at its serving host,
  ///  * CPU (III.6d), link (III.6a), NIC in/out (III.6b/c) within budget.
  /// Returns OK or a description of the first violation.
  Status Validate(double tol = 1e-6) const;

  const Cluster& cluster() const { return *cluster_; }
  const Catalog& catalog() const { return *catalog_; }

  int num_flows() const;
  int num_placed_operators() const;

  /// Canonical textual dump of the committed decision variables
  /// (serving arcs, operator placements, flows) in fixed enumeration
  /// order. Two deployments over the same catalog/cluster are equal iff
  /// their fingerprints match — the replay-equality check behind the
  /// determinism contract (docs/ARCHITECTURE.md).
  std::string Fingerprint() const;

  // ---- Change tracking (snapshot overlays & reuse-index deltas). ----

  /// Monotone change counter: every successful mutator call (including
  /// Clear and RecomputeAggregates) bumps it exactly once.
  uint64_t version() const { return version_; }

  /// Like version(), but counting only *structural* mutations — flows,
  /// placements, serving arcs, Clear — not ledger recomputes
  /// (RecomputeAggregates rewrites resource numbers under unchanged
  /// structure). Consumers that index structure-derived state off the
  /// deployment (the service's PlanCache: groundedness and serving)
  /// key their staleness checks on this, so rate installs neither
  /// defeat no-op skips nor hide structural fallout behind them.
  uint64_t structure_version() const { return structure_version_; }

  /// Starts (or restarts) journalling: clears any recorded mutations and
  /// records every subsequent successful mutator call, up to `limit`
  /// records. Past the limit the journal is dropped and marked
  /// truncated — the epoch no longer replays, consumers (MakeSnapshot)
  /// must rebase — which bounds both the journal's memory and the
  /// per-copy cost it adds to scratch deployments, no matter how long
  /// the service runs between snapshots. The journal is part of the
  /// value — copies carry it — so callers that care about the epoch
  /// boundary re-enable right before copying.
  void EnableJournal(size_t limit);
  bool journal_enabled() const { return journal_enabled_; }
  /// True when the journal overflowed its limit since EnableJournal:
  /// the recorded suffix was dropped and cannot reproduce this state.
  bool journal_truncated() const { return journal_truncated_; }
  const std::vector<DeploymentMutation>& journal() const { return journal_; }

  /// Replays recorded mutations in order. Starting from a copy of the
  /// state the journal's epoch began at, this reproduces the source
  /// deployment exactly (see DeploymentMutation).
  Status ApplyJournal(const std::vector<DeploymentMutation>& records);

  /// Rough heap footprint of the committed state (flows, placements,
  /// serving arcs, ledgers) — the bytes a full deployment copy moves,
  /// reported against the bytes a snapshot overlay moves instead.
  size_t ApproxSizeBytes() const;

  // ---- Checkpoint support (src/service/checkpoint.h). ----

  /// Streams carrying at least one committed flow, ascending — the
  /// checkpoint writer's enumeration of the flow table (FlowsOf gives
  /// each stream's per-flow insertion order, which the restore path
  /// replays verbatim).
  std::vector<StreamId> FlowStreams() const {
    std::vector<StreamId> out;
    out.reserve(flows_by_stream_.size());
    for (const auto& entry : flows_by_stream_) {
      if (!entry.second.empty()) out.push_back(entry.first);
    }
    return out;
  }

  /// Overwrites the change counters with checkpointed values, after a
  /// restore rebuilt the structure through the ordinary mutators (which
  /// counted from zero). Only relative consistency matters for the
  /// planner's commit gate; restoring the absolute values keeps audit
  /// records and version-keyed caches continuous across a crash.
  void RestoreVersions(uint64_t version, uint64_t structure_version) {
    version_ = version;
    structure_version_ = structure_version;
  }

 private:
  /// Bumps version_ and journals one successful mutation.
  void RecordMutation(DeploymentMutation::Kind kind, HostId a, HostId b,
                      StreamId stream, OperatorId op);
  const Cluster* cluster_;
  const Catalog* catalog_;

  std::map<StreamId, std::vector<std::pair<HostId, HostId>>> flows_by_stream_;
  std::vector<std::set<OperatorId>> ops_by_host_;
  std::map<StreamId, HostId> serving_;

  std::vector<double> cpu_used_, mem_used_, nic_out_used_, nic_in_used_;
  std::map<std::pair<HostId, HostId>, double> link_used_;

  uint64_t version_ = 0;
  uint64_t structure_version_ = 0;
  bool journal_enabled_ = false;
  bool journal_truncated_ = false;
  size_t journal_limit_ = 0;
  std::vector<DeploymentMutation> journal_;
};

/// The difference between two deployments over the same cluster and
/// catalog, expressed as the mutator calls that turn `base` into `next`.
/// This is the unit of work a speculative (worker-thread) solve hands
/// back to the event loop: the solve edits a private copy of the
/// committed state, and the loop thread later re-applies the diff to the
/// live state — which may have drifted — via ApplyDeploymentDelta.
struct DeploymentDelta {
  struct ServingChange {
    StreamId stream = kInvalidStream;
    /// kInvalidHost means the stream was unserved before (after).
    HostId before = kInvalidHost;
    HostId after = kInvalidHost;
  };

  std::vector<std::pair<HostId, OperatorId>> ops_added;
  std::vector<std::pair<HostId, OperatorId>> ops_removed;
  std::vector<std::tuple<HostId, HostId, StreamId>> flows_added;
  std::vector<std::tuple<HostId, HostId, StreamId>> flows_removed;
  std::vector<ServingChange> serving_changes;

  bool empty() const {
    return ops_added.empty() && ops_removed.empty() && flows_added.empty() &&
           flows_removed.empty() && serving_changes.empty();
  }
};

/// Computes the delta turning `base` into `next`. Both must be built
/// over the same cluster and catalog. Enumeration order is canonical
/// (hosts, then streams ascending), so equal inputs yield equal deltas.
DeploymentDelta DiffDeployments(const Deployment& base,
                                const Deployment& next);

/// Re-applies a delta to a deployment that may have drifted since the
/// delta was computed. Additions already present and removals already
/// gone are skipped (another commit got there first — shared reuse);
/// a serving change whose `before` no longer matches, or an addition the
/// mutators reject, returns FailedPrecondition: the delta conflicts with
/// the drift and the caller should fall back to a fresh solve. On any
/// error the deployment is left partially modified — apply to a scratch
/// copy and swap on success (Deployment is a value type).
///
/// Note: this re-checks *structural* applicability only; callers must
/// run Deployment::Validate() afterwards to audit groundedness and
/// resource budgets before adopting the result.
Status ApplyDeploymentDelta(const DeploymentDelta& delta,
                            Deployment* deployment);

}  // namespace sqpr

#endif  // SQPR_PLAN_DEPLOYMENT_H_
