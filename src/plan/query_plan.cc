#include "plan/query_plan.h"

#include <algorithm>
#include <set>

#include "common/logging.h"

namespace sqpr {
namespace {

int CountNodes(const PlanNode* node, PlanNodeKind* filter) {
  if (node == nullptr) return 0;
  int count = (filter == nullptr || node->kind == *filter) ? 1 : 0;
  for (const auto& child : node->children) {
    count += CountNodes(child.get(), filter);
  }
  return count;
}

void PrintNode(const PlanNode* node, const Catalog& catalog, int depth,
               std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  switch (node->kind) {
    case PlanNodeKind::kOperator:
      out->append("<h" + std::to_string(node->host) + ", " +
                  OpKindName(catalog.op(node->op).kind) + std::to_string(node->op) +
                  "> -> " + catalog.stream(node->stream).name + "\n");
      break;
    case PlanNodeKind::kRelay:
      out->append("<h" + std::to_string(node->host) + ", relay> -> " +
                  catalog.stream(node->stream).name + "\n");
      break;
    case PlanNodeKind::kBaseSource:
      out->append("[source h" + std::to_string(node->host) + "] -> " +
                  catalog.stream(node->stream).name + "\n");
      break;
  }
  for (const auto& child : node->children) {
    PrintNode(child.get(), catalog, depth + 1, out);
  }
}

Status ValidateNode(const PlanNode* node, const Catalog& catalog) {
  switch (node->kind) {
    case PlanNodeKind::kOperator: {
      const OperatorInfo& op = catalog.op(node->op);
      // C2: emits s_o and receives a superset of S_o.
      if (node->stream != op.output) {
        return Status::Infeasible("C2: operator node emits wrong stream");
      }
      std::set<StreamId> incoming;
      for (const auto& child : node->children) incoming.insert(child->stream);
      for (StreamId in : op.inputs) {
        if (incoming.count(in) == 0) {
          return Status::Infeasible("C2: operator node missing input " +
                                    catalog.stream(in).name);
        }
      }
      break;
    }
    case PlanNodeKind::kRelay: {
      // C3: exactly one child, same stream in and out.
      if (node->children.size() != 1) {
        return Status::Infeasible("C3: relay node must have one child");
      }
      if (node->children.front()->stream != node->stream) {
        return Status::Infeasible("C3: relay changes the stream label");
      }
      break;
    }
    case PlanNodeKind::kBaseSource: {
      // C4: leaf emitting a base stream from its source host.
      if (!node->children.empty()) {
        return Status::Infeasible("C4: base source must be a leaf");
      }
      const StreamInfo& info = catalog.stream(node->stream);
      if (!info.is_base) {
        return Status::Infeasible("C4: source leaf emits a composite");
      }
      if (info.source_host != node->host) {
        return Status::Infeasible("C4: base stream rooted at wrong host");
      }
      break;
    }
  }
  // Host-consistency: a child either runs on the same host (local hand-
  // over) or is a remote node, implying an inter-host arc.
  for (const auto& child : node->children) {
    SQPR_RETURN_IF_ERROR(ValidateNode(child.get(), catalog));
  }
  return Status::OK();
}

}  // namespace

int QueryPlan::NodeCount() const { return CountNodes(root.get(), nullptr); }

int QueryPlan::RelayCount() const {
  PlanNodeKind relay = PlanNodeKind::kRelay;
  return CountNodes(root.get(), &relay);
}

std::string QueryPlan::ToString(const Catalog& catalog) const {
  std::string out = "plan for " + catalog.stream(query).name + " served by h" +
                    std::to_string(serving_host) + "\n";
  if (root != nullptr) PrintNode(root.get(), catalog, 1, &out);
  return out;
}

Status ValidatePlanTree(const QueryPlan& plan, const Catalog& catalog) {
  if (plan.root == nullptr) return Status::InvalidArgument("empty plan");
  // C1: the root emits the query stream.
  if (plan.root->stream != plan.query) {
    return Status::Infeasible("C1: root does not emit the query stream");
  }
  if (plan.root->host != plan.serving_host) {
    return Status::Infeasible("C1: root not on the serving host");
  }
  return ValidateNode(plan.root.get(), catalog);
}

namespace {

/// Builds the subtree materialising `stream` at `host` from committed
/// deployment state. `visiting` guards against support cycles (which a
/// validated deployment cannot contain, but extraction is also used on
/// unvalidated states in tests).
Result<std::unique_ptr<PlanNode>> BuildNode(
    const Deployment& dep, const GroundedMap& grounded, HostId host,
    StreamId stream, std::set<std::pair<HostId, StreamId>>* visiting) {
  const Catalog& catalog = dep.catalog();
  if (!grounded.at(host, stream)) {
    return Status::Infeasible("stream " + catalog.stream(stream).name +
                              " not grounded at host " + std::to_string(host));
  }
  const auto key = std::make_pair(host, stream);
  if (!visiting->insert(key).second) {
    return Status::Infeasible("support cycle during plan extraction");
  }
  struct Cleanup {
    std::set<std::pair<HostId, StreamId>>* set;
    std::pair<HostId, StreamId> key;
    ~Cleanup() { set->erase(key); }
  } cleanup{visiting, key};

  const StreamInfo& info = catalog.stream(stream);

  // Preference 1: base injection at this host.
  if (info.is_base && info.source_host == host) {
    auto node = std::make_unique<PlanNode>();
    node->kind = PlanNodeKind::kBaseSource;
    node->host = host;
    node->stream = stream;
    return node;
  }

  // Preference 2: a local producer operator whose inputs are grounded.
  for (OperatorId o : dep.OperatorsOn(host)) {
    const OperatorInfo& op = catalog.op(o);
    if (op.output != stream) continue;
    bool inputs_ok = true;
    for (StreamId in : op.inputs) {
      if (!grounded.at(host, in)) {
        inputs_ok = false;
        break;
      }
    }
    if (!inputs_ok) continue;
    auto node = std::make_unique<PlanNode>();
    node->kind = PlanNodeKind::kOperator;
    node->host = host;
    node->op = o;
    node->stream = stream;
    bool built_all = true;
    for (StreamId in : op.inputs) {
      auto child = BuildNode(dep, grounded, host, in, visiting);
      if (!child.ok()) {
        built_all = false;
        break;
      }
      node->children.push_back(std::move(child).value());
    }
    if (built_all) return node;
  }

  // Preference 3: an incoming flow from a host where the stream is
  // grounded — a relay arc in the tree.
  for (const auto& [from, to] : dep.FlowsOf(stream)) {
    if (to != host) continue;
    if (!grounded.at(from, stream)) continue;
    auto upstream = BuildNode(dep, grounded, from, stream, visiting);
    if (!upstream.ok()) continue;
    auto node = std::make_unique<PlanNode>();
    node->kind = PlanNodeKind::kRelay;
    node->host = host;
    node->stream = stream;
    node->children.push_back(std::move(upstream).value());
    return node;
  }

  return Status::Infeasible("no usable support for " +
                            catalog.stream(stream).name + " at host " +
                            std::to_string(host));
}

}  // namespace

Result<QueryPlan> ExtractPlan(const Deployment& deployment, StreamId query) {
  const HostId server = deployment.ServingHost(query);
  if (server == kInvalidHost) {
    return Status::NotFound("query not served by the deployment");
  }
  const GroundedMap grounded = deployment.GroundedAvailability();
  std::set<std::pair<HostId, StreamId>> visiting;
  auto root = BuildNode(deployment, grounded, server, query, &visiting);
  if (!root.ok()) return root.status();
  QueryPlan plan;
  plan.query = query;
  plan.serving_host = server;
  plan.root = std::move(root).value();
  return plan;
}

bool PlanUsesAnyHost(const Deployment& deployment, StreamId query,
                     const std::set<HostId>& hosts) {
  if (hosts.empty()) return false;
  Result<QueryPlan> plan = ExtractPlan(deployment, query);
  if (!plan.ok()) return false;
  if (hosts.count(plan->serving_host) > 0) return true;
  std::vector<const PlanNode*> stack = {plan->root.get()};
  while (!stack.empty()) {
    const PlanNode* node = stack.back();
    stack.pop_back();
    if (node == nullptr) continue;
    if (hosts.count(node->host) > 0) return true;
    for (const auto& child : node->children) stack.push_back(child.get());
  }
  return false;
}

}  // namespace sqpr
