#ifndef SQPR_PLAN_QUERY_PLAN_H_
#define SQPR_PLAN_QUERY_PLAN_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "model/catalog.h"
#include "plan/deployment.h"

namespace sqpr {

/// Node kinds of the §III-A query-plan tree. Operator nodes carry
/// ⟨h, o⟩ labels, relay nodes ⟨h, µ⟩; base-source leaves model the
/// external injection arcs into the DSPS.
enum class PlanNodeKind : uint8_t {
  kOperator,
  kRelay,
  kBaseSource,
};

/// A node of a query plan tree. The outgoing arc of every node carries
/// `stream`; children provide the incoming arcs.
struct PlanNode {
  PlanNodeKind kind = PlanNodeKind::kOperator;
  HostId host = kInvalidHost;
  OperatorId op = kInvalidOperator;  // set iff kind == kOperator
  StreamId stream = kInvalidStream;  // label of the outgoing arc
  std::vector<std::unique_ptr<PlanNode>> children;
};

/// A complete query plan for one query (requested stream).
struct QueryPlan {
  StreamId query = kInvalidStream;
  /// Host whose outgoing arc delivers the result to the client.
  HostId serving_host = kInvalidHost;
  std::unique_ptr<PlanNode> root;

  /// Number of nodes (all kinds) in the tree.
  int NodeCount() const;
  /// Number of relay nodes (µ operators, §II-C).
  int RelayCount() const;
  /// Pretty-printed tree for logs and examples.
  std::string ToString(const Catalog& catalog) const;
};

/// Checks the §III-A well-formedness conditions:
///   C1 the root's outgoing arc is labelled with the query stream;
///   C2 an operator node's children carry a superset of S_o and the node
///      emits s_o;
///   C3 a relay node has exactly one child carrying the same stream it
///      emits;
///   C4 base-source leaves emit a base stream from its source host.
/// Also checks host consistency: a node's children either run on the same
/// host or hand over via an inter-host arc that the child's host emits.
Status ValidatePlanTree(const QueryPlan& plan, const Catalog& catalog);

/// Extracts a query plan tree for `query` from a committed deployment by
/// walking grounded supports (local producer first, then base injection,
/// then incoming flows). Fails if the deployment does not actually serve
/// the query. The extraction mirrors how DISSP would instantiate the
/// admitted plan on hosts (§IV-C).
Result<QueryPlan> ExtractPlan(const Deployment& deployment, StreamId query);

/// True when `query`'s committed plan touches any host in `hosts` — an
/// operator node, a relay hop or the client-serving arc. Extracts the
/// plan once regardless of the host-set size. Used by the resource
/// monitor to map host shortages to affected queries (§IV-B) and by the
/// planning service to compute host-failure fallout. False when the
/// deployment does not serve the query.
bool PlanUsesAnyHost(const Deployment& deployment, StreamId query,
                     const std::set<HostId>& hosts);
inline bool PlanUsesHost(const Deployment& deployment, StreamId query,
                         HostId host) {
  return PlanUsesAnyHost(deployment, query, {host});
}

}  // namespace sqpr

#endif  // SQPR_PLAN_QUERY_PLAN_H_
