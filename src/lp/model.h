#ifndef SQPR_LP_MODEL_H_
#define SQPR_LP_MODEL_H_

#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace sqpr {
namespace lp {

/// Positive infinity sentinel for unbounded variable/row bounds.
inline constexpr double kInf = std::numeric_limits<double>::infinity();

enum class Sense { kMaximize, kMinimize };

/// A linear program over bounded variables:
///
///   max/min  c^T v
///   s.t.     row_lb <= A v <= row_ub     (equality when row_lb == row_ub)
///            var_lb <=   v <= var_ub
///
/// The model is a plain builder: variables and rows are appended, then the
/// whole object is handed to SimplexSolver. Rows are stored sparsely.
class Model {
 public:
  explicit Model(Sense sense = Sense::kMaximize) : sense_(sense) {}

  Sense sense() const { return sense_; }
  void set_sense(Sense sense) { sense_ = sense; }

  /// Adds a variable with bounds [lb, ub] and objective coefficient obj.
  /// Returns its dense index. Fixed variables (lb == ub) are legal.
  int AddVariable(double lb, double ub, double obj, std::string name = "");

  /// Adds a constraint row `lb <= sum coef_i * var_i <= ub`. Terms must
  /// reference existing variables; duplicate variable entries within one
  /// row are summed. Returns the row index.
  int AddRow(double lb, double ub,
             std::vector<std::pair<int, double>> terms,
             std::string name = "");

  /// Overwrites a variable's bounds (used by branch-and-bound).
  void SetVariableBounds(int var, double lb, double ub);

  /// Overwrites a row's bounds in place, keeping its terms. Used by the
  /// incremental SQPR model patcher: the constraint *skeleton* of a
  /// grounded query structure is base-state independent, only the
  /// right-hand sides (residual capacities) move between rounds.
  void SetRowBounds(int row, double lb, double ub);

  /// Overwrites a variable's objective coefficient.
  void SetObjective(int var, double obj) { obj_[var] = obj; }

  int num_variables() const { return static_cast<int>(var_lb_.size()); }
  int num_rows() const { return static_cast<int>(row_lb_.size()); }

  double variable_lb(int v) const { return var_lb_[v]; }
  double variable_ub(int v) const { return var_ub_[v]; }
  double objective(int v) const { return obj_[v]; }
  double row_lb(int r) const { return row_lb_[r]; }
  double row_ub(int r) const { return row_ub_[r]; }
  const std::vector<std::pair<int, double>>& row_terms(int r) const {
    return rows_[r];
  }
  const std::string& variable_name(int v) const { return var_names_[v]; }
  const std::string& row_name(int r) const { return row_names_[r]; }

  /// Computes c^T v for a full assignment.
  double ObjectiveValue(const std::vector<double>& v) const;

  /// Checks an assignment against all rows and variable bounds with the
  /// given absolute tolerance. Returns OK or a description of the first
  /// violated constraint (used by tests and by the MILP incumbent check).
  Status CheckFeasible(const std::vector<double>& v, double tol) const;

 private:
  Sense sense_;
  std::vector<double> var_lb_, var_ub_, obj_;
  std::vector<double> row_lb_, row_ub_;
  std::vector<std::vector<std::pair<int, double>>> rows_;
  std::vector<std::string> var_names_, row_names_;
};

}  // namespace lp
}  // namespace sqpr

#endif  // SQPR_LP_MODEL_H_
