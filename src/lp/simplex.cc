#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/logging.h"
#include "obs/trace.h"

namespace sqpr {
namespace lp {
namespace {

constexpr double kPivotTol = 1e-9;

/// Internal standard-form workspace:
///   columns 0..n-1    structural variables
///   columns n..n+m-1  row slacks (coefficient -1 in their row)
/// with every equation  A_full * v = 0. There are no artificial columns:
/// primal infeasibility is carried by out-of-bounds *basic* variables and
/// removed by a composite (infeasibility-minimising) phase 1, which is
/// what makes warm-starting from a related basis possible — the key to
/// cheap branch-and-bound node re-solves.
struct Tableau {
  int m = 0;         // rows
  int n_struct = 0;  // structural columns
  int n_total = 0;   // structural + slack columns

  // CSC storage of all columns.
  std::vector<int> col_start;
  std::vector<int> entry_row;
  std::vector<double> entry_val;

  std::vector<double> lb, ub;      // per column
  std::vector<double> cost;        // phase-2 cost, minimisation sense
  std::vector<BasisState> state;   // per column
  std::vector<double> value;       // per column current value
  std::vector<int> basis;          // basis[i] = column basic in row i
  std::vector<int> basic_pos;      // basic_pos[col] = row position or -1

  std::vector<double> binv;  // m*m column-major: binv[c*m + i]

  int ColEntries(int c, const int** rows, const double** vals) const {
    *rows = entry_row.data() + col_start[c];
    *vals = entry_val.data() + col_start[c];
    return col_start[c + 1] - col_start[c];
  }
};

class SimplexImpl {
 public:
  SimplexImpl(const Model& model, const SimplexOptions& options)
      : model_(model), options_(options) {}

  SimplexResult Run();

 private:
  void BuildTableau();
  // Installs the warm basis if provided and dimensionally sound,
  // otherwise the all-slack basis.
  void InstallBasis();
  void InstallSlackBasis();
  // Rebuilds the dense basis inverse. Returns false when singular.
  bool Refactorize();
  void RecomputeBasicValues();
  double NonbasicValue(int c) const;
  // Total primal infeasibility of basic variables.
  double Infeasibility() const;
  // One simplex iteration. phase1 selects the composite infeasibility
  // objective. Returns: 0 = no improving column, 1 = pivoted,
  // 2 = unbounded direction, 3 = singular refactorisation.
  int Iterate(bool phase1, bool bland);
  void Ftran(int col, std::vector<double>* w) const;
  // Reduced costs for all nonbasic columns under the given basic cost
  // vector cb (indexed by basis position) and per-column costs `cost`
  // (nullptr = all-zero, used by phase 1).
  void PriceAll(const std::vector<double>& cb, const double* column_cost,
                std::vector<double>* reduced) const;

  SimplexResult Finish(SolveStatus status);

  const Model& model_;
  SimplexOptions options_;
  Tableau t_;
  int64_t iterations_ = 0;
  int64_t max_iterations_ = 0;
  int pivots_since_refactor_ = 0;
  int degenerate_run_ = 0;
  double feas_tol_ = 1e-7;
  double opt_tol_ = 1e-7;
};

void SimplexImpl::BuildTableau() {
  const int n = model_.num_variables();
  const int m = model_.num_rows();
  t_.m = m;
  t_.n_struct = n;
  t_.n_total = n + m;

  std::vector<int> counts(n, 0);
  for (int r = 0; r < m; ++r) {
    for (const auto& [var, coef] : model_.row_terms(r)) {
      (void)coef;
      ++counts[var];
    }
  }
  t_.col_start.assign(n + m + 1, 0);
  for (int c = 0; c < n; ++c) {
    t_.col_start[c + 1] = t_.col_start[c] + counts[c];
  }
  for (int c = n; c < n + m; ++c) {
    t_.col_start[c + 1] = t_.col_start[c] + 1;  // slack: one entry
  }
  const int nnz = t_.col_start[n + m];
  t_.entry_row.resize(nnz);
  t_.entry_val.resize(nnz);
  std::vector<int> fill(n, 0);
  for (int r = 0; r < m; ++r) {
    for (const auto& [var, coef] : model_.row_terms(r)) {
      const int pos = t_.col_start[var] + fill[var]++;
      t_.entry_row[pos] = r;
      t_.entry_val[pos] = coef;
    }
  }
  for (int i = 0; i < m; ++i) {
    const int pos = t_.col_start[n + i];
    t_.entry_row[pos] = i;
    t_.entry_val[pos] = -1.0;  // row activity - slack = 0
  }

  t_.lb.resize(n + m);
  t_.ub.resize(n + m);
  for (int c = 0; c < n; ++c) {
    t_.lb[c] = model_.variable_lb(c);
    t_.ub[c] = model_.variable_ub(c);
  }
  for (int i = 0; i < m; ++i) {
    t_.lb[n + i] = model_.row_lb(i);
    t_.ub[n + i] = model_.row_ub(i);
  }
  t_.cost.assign(n + m, 0.0);
  const double sense = model_.sense() == Sense::kMaximize ? -1.0 : 1.0;
  for (int c = 0; c < n; ++c) t_.cost[c] = sense * model_.objective(c);
  t_.state.assign(n + m, BasisState::kAtLower);
  t_.value.assign(n + m, 0.0);
  t_.basic_pos.assign(n + m, -1);
}

double SimplexImpl::NonbasicValue(int c) const {
  switch (t_.state[c]) {
    case BasisState::kAtLower:
      return t_.lb[c];
    case BasisState::kAtUpper:
      return t_.ub[c];
    case BasisState::kFree:
      return 0.0;
    case BasisState::kBasic:
      break;
  }
  SQPR_LOG_FATAL << "NonbasicValue on basic column";
  return 0.0;
}

void SimplexImpl::InstallSlackBasis() {
  const int n = t_.n_struct;
  const int m = t_.m;
  for (int c = 0; c < n; ++c) {
    if (std::isfinite(t_.lb[c]) && std::isfinite(t_.ub[c])) {
      t_.state[c] = (std::abs(t_.lb[c]) <= std::abs(t_.ub[c]))
                        ? BasisState::kAtLower
                        : BasisState::kAtUpper;
    } else if (std::isfinite(t_.lb[c])) {
      t_.state[c] = BasisState::kAtLower;
    } else if (std::isfinite(t_.ub[c])) {
      t_.state[c] = BasisState::kAtUpper;
    } else {
      t_.state[c] = BasisState::kFree;
    }
    t_.basic_pos[c] = -1;
  }
  t_.basis.resize(m);
  for (int i = 0; i < m; ++i) {
    const int slack = n + i;
    t_.basis[i] = slack;
    t_.state[slack] = BasisState::kBasic;
    t_.basic_pos[slack] = i;
  }
}

void SimplexImpl::InstallBasis() {
  const int n = t_.n_struct;
  const int m = t_.m;
  bool warm_ok = false;
  if (options_.warm_basis != nullptr) {
    const std::vector<BasisState>& warm = *options_.warm_basis;
    // A warm basis may come from the same model with fewer rows (lazy
    // cuts appended since): pad by making the new slacks basic. Any
    // other size mismatch is rejected.
    if (warm.size() >= static_cast<size_t>(n) &&
        warm.size() <= static_cast<size_t>(n + m)) {
      std::vector<BasisState> padded(warm);
      padded.resize(static_cast<size_t>(n + m), BasisState::kBasic);
      int basic_count = 0;
      for (BasisState s : padded) basic_count += s == BasisState::kBasic;
      if (basic_count == m) {
        t_.basis.clear();
        for (int c = 0; c < n + m; ++c) {
          t_.state[c] = padded[c];
          if (t_.state[c] == BasisState::kBasic) {
            t_.basic_pos[c] = static_cast<int>(t_.basis.size());
            t_.basis.push_back(c);
            continue;
          }
          // Nonbasic columns must rest on a finite bound; repair states
          // that no longer match the (possibly branched) bounds.
          if (t_.state[c] == BasisState::kAtLower &&
              !std::isfinite(t_.lb[c])) {
            t_.state[c] = std::isfinite(t_.ub[c]) ? BasisState::kAtUpper
                                                  : BasisState::kFree;
          } else if (t_.state[c] == BasisState::kAtUpper &&
                     !std::isfinite(t_.ub[c])) {
            t_.state[c] = std::isfinite(t_.lb[c]) ? BasisState::kAtLower
                                                  : BasisState::kFree;
          }
          t_.basic_pos[c] = -1;
        }
        warm_ok = true;
      }
    }
  }
  if (!warm_ok) InstallSlackBasis();
  if (!Refactorize()) {
    // Singular warm basis: fall back to the always-regular slack basis.
    InstallSlackBasis();
    const bool ok = Refactorize();
    SQPR_CHECK(ok) << "slack basis cannot be singular";
  }
  RecomputeBasicValues();
}

bool SimplexImpl::Refactorize() {
  const int m = t_.m;
  std::vector<double> mat(static_cast<size_t>(m) * m, 0.0);
  for (int i = 0; i < m; ++i) {
    const int col = t_.basis[i];
    const int* rows;
    const double* vals;
    const int cnt = t_.ColEntries(col, &rows, &vals);
    for (int k = 0; k < cnt; ++k) {
      mat[static_cast<size_t>(i) * m + rows[k]] = vals[k];
    }
  }
  t_.binv.assign(static_cast<size_t>(m) * m, 0.0);
  for (int i = 0; i < m; ++i) t_.binv[static_cast<size_t>(i) * m + i] = 1.0;

  // Gauss-Jordan with partial pivoting; mat and binv share row ops.
  std::vector<int> perm(m);
  for (int i = 0; i < m; ++i) perm[i] = i;
  for (int k = 0; k < m; ++k) {
    int piv = -1;
    double best = kPivotTol;
    for (int r = 0; r < m; ++r) {
      if (perm[r] < 0) continue;
      const double v = std::abs(mat[static_cast<size_t>(k) * m + r]);
      if (v > best) {
        best = v;
        piv = r;
      }
    }
    if (piv < 0) return false;  // numerically singular basis
    perm[piv] = -1;
    const double p = mat[static_cast<size_t>(k) * m + piv];
    for (int c = 0; c < m; ++c) {
      mat[static_cast<size_t>(c) * m + piv] /= p;
      t_.binv[static_cast<size_t>(c) * m + piv] /= p;
    }
    for (int r = 0; r < m; ++r) {
      if (r == piv) continue;
      const double f = mat[static_cast<size_t>(k) * m + r];
      if (f == 0.0) continue;
      for (int c = 0; c < m; ++c) {
        mat[static_cast<size_t>(c) * m + r] -=
            f * mat[static_cast<size_t>(c) * m + piv];
        t_.binv[static_cast<size_t>(c) * m + r] -=
            f * t_.binv[static_cast<size_t>(c) * m + piv];
      }
    }
    if (piv != k) {
      for (int c = 0; c < m; ++c) {
        std::swap(mat[static_cast<size_t>(c) * m + piv],
                  mat[static_cast<size_t>(c) * m + k]);
        std::swap(t_.binv[static_cast<size_t>(c) * m + piv],
                  t_.binv[static_cast<size_t>(c) * m + k]);
      }
      std::swap(perm[piv], perm[k]);
    }
  }
  pivots_since_refactor_ = 0;
  return true;
}

void SimplexImpl::RecomputeBasicValues() {
  const int m = t_.m;
  std::vector<double> q(m, 0.0);
  for (int c = 0; c < t_.n_total; ++c) {
    if (t_.state[c] == BasisState::kBasic) continue;
    const double v = NonbasicValue(c);
    t_.value[c] = v;
    if (v == 0.0) continue;
    const int* rows;
    const double* vals;
    const int cnt = t_.ColEntries(c, &rows, &vals);
    for (int k = 0; k < cnt; ++k) q[rows[k]] += vals[k] * v;
  }
  for (int i = 0; i < m; ++i) {
    double acc = 0.0;
    for (int c = 0; c < m; ++c) {
      acc += t_.binv[static_cast<size_t>(c) * m + i] * q[c];
    }
    t_.value[t_.basis[i]] = -acc;
  }
}

double SimplexImpl::Infeasibility() const {
  double total = 0.0;
  for (int i = 0; i < t_.m; ++i) {
    const int c = t_.basis[i];
    if (t_.value[c] > t_.ub[c]) total += t_.value[c] - t_.ub[c];
    if (t_.value[c] < t_.lb[c]) total += t_.lb[c] - t_.value[c];
  }
  return total;
}

void SimplexImpl::Ftran(int col, std::vector<double>* w) const {
  const int m = t_.m;
  w->assign(m, 0.0);
  const int* rows;
  const double* vals;
  const int cnt = t_.ColEntries(col, &rows, &vals);
  for (int k = 0; k < cnt; ++k) {
    const double a = vals[k];
    const double* bcol = t_.binv.data() + static_cast<size_t>(rows[k]) * m;
    for (int i = 0; i < m; ++i) (*w)[i] += a * bcol[i];
  }
}

void SimplexImpl::PriceAll(const std::vector<double>& cb,
                           const double* column_cost,
                           std::vector<double>* reduced) const {
  const int m = t_.m;
  std::vector<double> y(m, 0.0);
  for (int c = 0; c < m; ++c) {
    const double* bcol = t_.binv.data() + static_cast<size_t>(c) * m;
    double acc = 0.0;
    for (int i = 0; i < m; ++i) acc += cb[i] * bcol[i];
    y[c] = acc;
  }
  reduced->assign(t_.n_total, 0.0);
  for (int c = 0; c < t_.n_total; ++c) {
    if (t_.state[c] == BasisState::kBasic) continue;
    if (t_.lb[c] == t_.ub[c]) continue;  // fixed: never enters, skip price
    const int* rows;
    const double* vals;
    const int cnt = t_.ColEntries(c, &rows, &vals);
    double dot = 0.0;
    for (int k = 0; k < cnt; ++k) dot += y[rows[k]] * vals[k];
    (*reduced)[c] = (column_cost != nullptr ? column_cost[c] : 0.0) - dot;
  }
}

int SimplexImpl::Iterate(bool phase1, bool bland) {
  const int m = t_.m;

  // Basic cost vector: the composite phase-1 gradient (+1 above ub, -1
  // below lb) or the phase-2 objective restricted to the basis.
  std::vector<double> cb(m);
  if (phase1) {
    for (int i = 0; i < m; ++i) {
      const int c = t_.basis[i];
      if (t_.value[c] > t_.ub[c] + feas_tol_) {
        cb[i] = 1.0;
      } else if (t_.value[c] < t_.lb[c] - feas_tol_) {
        cb[i] = -1.0;
      } else {
        cb[i] = 0.0;
      }
    }
  } else {
    for (int i = 0; i < m; ++i) cb[i] = t_.cost[t_.basis[i]];
  }
  std::vector<double> reduced;
  PriceAll(cb, phase1 ? nullptr : t_.cost.data(), &reduced);

  int enter = -1;
  int enter_dir = 0;
  double best_score = opt_tol_;
  for (int c = 0; c < t_.n_total; ++c) {
    const BasisState st = t_.state[c];
    if (st == BasisState::kBasic) continue;
    if (t_.lb[c] == t_.ub[c]) continue;
    const double d = reduced[c];
    int dir = 0;
    if (st == BasisState::kAtLower && d < -opt_tol_) {
      dir = +1;
    } else if (st == BasisState::kAtUpper && d > opt_tol_) {
      dir = -1;
    } else if (st == BasisState::kFree && std::abs(d) > opt_tol_) {
      dir = d < 0 ? +1 : -1;
    }
    if (dir == 0) continue;
    if (bland) {
      enter = c;
      enter_dir = dir;
      break;
    }
    if (std::abs(d) > best_score) {
      best_score = std::abs(d);
      enter = c;
      enter_dir = dir;
    }
  }
  if (enter < 0) return 0;  // no improving column for this phase

  std::vector<double> w;
  Ftran(enter, &w);

  // Two-pass (Harris-style) ratio test. Out-of-bounds basic variables
  // (phase 1) contribute a breakpoint where they *reach* their violated
  // bound; feasible ones where they would leave their range. The second
  // pass picks the largest |pivot| among near-tied limits, which keeps
  // the basis well conditioned through degenerate pivot chains.
  const double range = t_.ub[enter] - t_.lb[enter];
  auto row_limit = [&](int i, double* g_out, int* to_upper) -> double {
    const double g = enter_dir * w[i];  // rate of decrease of basic value
    const int bcol = t_.basis[i];
    *g_out = g;
    const double v = t_.value[bcol];
    if (g > kPivotTol) {  // basic value decreasing
      if (v < t_.lb[bcol] - feas_tol_) {
        // Already below its lower bound and moving further away: no
        // breakpoint — the phase-1 pricing charged for this movement.
        return kInf;
      }
      double target;
      if (v > t_.ub[bcol] + feas_tol_) {
        target = t_.ub[bcol];  // infeasible above: stop once feasible
        *to_upper = 1;
      } else {
        if (!std::isfinite(t_.lb[bcol])) return kInf;
        target = t_.lb[bcol];
        *to_upper = 0;
      }
      return std::max(0.0, v - target) / g;
    }
    if (g < -kPivotTol) {  // basic value increasing
      if (v > t_.ub[bcol] + feas_tol_) {
        return kInf;  // already above its upper bound, moving away
      }
      double target;
      if (v < t_.lb[bcol] - feas_tol_) {
        target = t_.lb[bcol];  // infeasible below: stop once feasible
        *to_upper = 0;
      } else {
        if (!std::isfinite(t_.ub[bcol])) return kInf;
        target = t_.ub[bcol];
        *to_upper = 1;
      }
      return std::max(0.0, target - v) / (-g);
    }
    return kInf;
  };

  double min_limit = std::isfinite(range) ? range : kInf;
  for (int i = 0; i < m; ++i) {
    double g;
    int tu;
    min_limit = std::min(min_limit, row_limit(i, &g, &tu));
  }
  if (!std::isfinite(min_limit)) return 2;  // unbounded direction

  const double tie_tol = 1e-9 + 1e-7 * min_limit;
  int leave_pos = -1;
  int leave_to_upper = 0;
  double best_pivot = 0.0;
  double limit = min_limit;
  for (int i = 0; i < m; ++i) {
    double g;
    int tu = 0;
    const double a = row_limit(i, &g, &tu);
    if (a > min_limit + tie_tol) continue;
    if (std::abs(g) > best_pivot) {
      best_pivot = std::abs(g);
      leave_pos = i;
      leave_to_upper = tu;
      limit = std::max(0.0, a);
    }
  }
  const bool bound_flip =
      leave_pos < 0 ||
      (std::isfinite(range) && range <= min_limit + tie_tol &&
       range <= limit);
  if (bound_flip) limit = range;

  degenerate_run_ = (limit < 1e-10) ? degenerate_run_ + 1 : 0;

  const double alpha = limit;
  for (int i = 0; i < m; ++i) {
    if (w[i] != 0.0) t_.value[t_.basis[i]] -= enter_dir * alpha * w[i];
  }
  const double enter_val = t_.value[enter] + enter_dir * alpha;

  if (bound_flip) {
    t_.state[enter] =
        enter_dir > 0 ? BasisState::kAtUpper : BasisState::kAtLower;
    t_.value[enter] = NonbasicValue(enter);
    return 1;
  }

  const int leave_col = t_.basis[leave_pos];
  t_.state[leave_col] =
      leave_to_upper ? BasisState::kAtUpper : BasisState::kAtLower;
  t_.value[leave_col] = NonbasicValue(leave_col);
  t_.basic_pos[leave_col] = -1;

  t_.basis[leave_pos] = enter;
  t_.state[enter] = BasisState::kBasic;
  t_.basic_pos[enter] = leave_pos;
  t_.value[enter] = enter_val;

  const double piv = w[leave_pos];
  if (std::abs(piv) < kPivotTol / 10) return 3;
  for (int c = 0; c < m; ++c) {
    double* bcol = t_.binv.data() + static_cast<size_t>(c) * m;
    const double pr = bcol[leave_pos] / piv;
    if (pr == 0.0) continue;
    for (int i = 0; i < m; ++i) {
      if (i == leave_pos) continue;
      bcol[i] -= w[i] * pr;
    }
    bcol[leave_pos] = pr;
  }

  if (++pivots_since_refactor_ >= options_.refactor_interval) {
    if (Refactorize()) {
      RecomputeBasicValues();
    } else {
      return 3;
    }
  }
  return 1;
}

SimplexResult SimplexImpl::Finish(SolveStatus status) {
  SimplexResult result;
  result.status = status;
  result.iterations = iterations_;
  result.values.assign(t_.value.begin(), t_.value.begin() + t_.n_struct);
  result.objective = model_.ObjectiveValue(result.values);
  result.basis_state = t_.state;
  return result;
}

SimplexResult SimplexImpl::Run() {
  feas_tol_ = options_.feasibility_tol;
  opt_tol_ = options_.optimality_tol;
  BuildTableau();
  InstallBasis();

  max_iterations_ = options_.max_iterations > 0
                        ? options_.max_iterations
                        : 200LL * (t_.m + t_.n_struct) + 2000;

  int resets = 0;
  while (true) {
    if (iterations_ >= max_iterations_) {
      return Finish(SolveStatus::kIterationLimit);
    }
    if ((iterations_ & 0x3f) == 0 && options_.deadline.Expired()) {
      return Finish(SolveStatus::kTimeLimit);
    }

    const bool phase1 = Infeasibility() > feas_tol_;
    const bool bland = degenerate_run_ > 40 || resets > 1;
    const int step = Iterate(phase1, bland);
    ++iterations_;

    if (step == 1) continue;

    if (step == 0) {
      if (phase1) {
        // Phase-1 stall with residual infeasibility: LP is infeasible.
        return Finish(SolveStatus::kInfeasible);
      }
      // Phase-2 optimal. Only pay for a polish (refactorise + recompute)
      // when enough product-form updates have accumulated to matter;
      // warm-started solves typically finish in a handful of pivots on a
      // freshly factorised basis.
      if (pivots_since_refactor_ < 20) return Finish(SolveStatus::kOptimal);
      if (Refactorize()) {
        RecomputeBasicValues();
        if (Infeasibility() > feas_tol_ * 100) {
          // Drift surfaced by the polish: resume from phase 1.
          if (++resets > 4) return Finish(SolveStatus::kIterationLimit);
          continue;
        }
        return Finish(SolveStatus::kOptimal);
      }
      // Singular at polish: fall through to reset.
    } else if (step == 2) {
      if (!phase1) return Finish(SolveStatus::kUnbounded);
      // An unbounded phase-1 ray is numerical nonsense; reset.
    }

    // step == 3 (singular) or numerical trouble: reset to slack basis.
    if (++resets > 4) {
      SQPR_LOG_WARN << "simplex giving up after repeated singular bases";
      return Finish(SolveStatus::kIterationLimit);
    }
    InstallSlackBasis();
    const bool ok = Refactorize();
    SQPR_CHECK(ok) << "slack basis cannot be singular";
    RecomputeBasicValues();
    degenerate_run_ = 0;
  }
}

}  // namespace

const char* SolveStatusName(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOptimal:
      return "Optimal";
    case SolveStatus::kInfeasible:
      return "Infeasible";
    case SolveStatus::kUnbounded:
      return "Unbounded";
    case SolveStatus::kIterationLimit:
      return "IterationLimit";
    case SolveStatus::kTimeLimit:
      return "TimeLimit";
  }
  return "Unknown";
}

SimplexResult SimplexSolver::Solve(const Model& model) {
  SQPR_TRACE_SPAN_ARGS(span, "lp/simplex", "iterations", "rows");
  SimplexImpl impl(model, options_);
  SimplexResult result = impl.Run();
  span.set_args(static_cast<uint64_t>(result.iterations),
                static_cast<uint64_t>(model.num_rows()));
  return result;
}

}  // namespace lp
}  // namespace sqpr
