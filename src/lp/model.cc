#include "lp/model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace sqpr {
namespace lp {

int Model::AddVariable(double lb, double ub, double obj, std::string name) {
  SQPR_CHECK(lb <= ub) << "variable bounds crossed: [" << lb << ", " << ub
                       << "] for " << name;
  var_lb_.push_back(lb);
  var_ub_.push_back(ub);
  obj_.push_back(obj);
  var_names_.push_back(std::move(name));
  return num_variables() - 1;
}

int Model::AddRow(double lb, double ub,
                  std::vector<std::pair<int, double>> terms,
                  std::string name) {
  SQPR_CHECK(lb <= ub) << "row bounds crossed: [" << lb << ", " << ub
                       << "] for " << name;
  // Merge duplicate variable references and drop zero coefficients so the
  // solver sees each column at most once per row.
  std::sort(terms.begin(), terms.end());
  std::vector<std::pair<int, double>> merged;
  merged.reserve(terms.size());
  for (const auto& [var, coef] : terms) {
    SQPR_CHECK(var >= 0 && var < num_variables())
        << "row " << name << " references unknown variable " << var;
    if (!merged.empty() && merged.back().first == var) {
      merged.back().second += coef;
    } else {
      merged.emplace_back(var, coef);
    }
  }
  merged.erase(std::remove_if(merged.begin(), merged.end(),
                              [](const auto& t) { return t.second == 0.0; }),
               merged.end());
  row_lb_.push_back(lb);
  row_ub_.push_back(ub);
  rows_.push_back(std::move(merged));
  row_names_.push_back(std::move(name));
  return num_rows() - 1;
}

void Model::SetVariableBounds(int var, double lb, double ub) {
  SQPR_CHECK(lb <= ub) << "variable bounds crossed on update: [" << lb << ", "
                       << ub << "]";
  var_lb_[var] = lb;
  var_ub_[var] = ub;
}

void Model::SetRowBounds(int row, double lb, double ub) {
  SQPR_CHECK(row >= 0 && row < num_rows()) << "row index " << row;
  SQPR_CHECK(lb <= ub) << "row bounds crossed on update: [" << lb << ", " << ub
                       << "] for " << row_names_[row];
  row_lb_[row] = lb;
  row_ub_[row] = ub;
}

double Model::ObjectiveValue(const std::vector<double>& v) const {
  SQPR_CHECK(static_cast<int>(v.size()) == num_variables());
  double total = 0.0;
  for (int i = 0; i < num_variables(); ++i) total += obj_[i] * v[i];
  return total;
}

Status Model::CheckFeasible(const std::vector<double>& v, double tol) const {
  if (static_cast<int>(v.size()) != num_variables()) {
    return Status::InvalidArgument("assignment size mismatch");
  }
  for (int i = 0; i < num_variables(); ++i) {
    if (v[i] < var_lb_[i] - tol || v[i] > var_ub_[i] + tol) {
      return Status::Infeasible("variable " + var_names_[i] + " = " +
                                std::to_string(v[i]) + " outside [" +
                                std::to_string(var_lb_[i]) + ", " +
                                std::to_string(var_ub_[i]) + "]");
    }
  }
  for (int r = 0; r < num_rows(); ++r) {
    double activity = 0.0;
    for (const auto& [var, coef] : rows_[r]) activity += coef * v[var];
    if (activity < row_lb_[r] - tol || activity > row_ub_[r] + tol) {
      return Status::Infeasible("row " + row_names_[r] + " activity " +
                                std::to_string(activity) + " outside [" +
                                std::to_string(row_lb_[r]) + ", " +
                                std::to_string(row_ub_[r]) + "]");
    }
  }
  return Status::OK();
}

}  // namespace lp
}  // namespace sqpr
