#ifndef SQPR_LP_SIMPLEX_H_
#define SQPR_LP_SIMPLEX_H_

#include <cstdint>
#include <vector>

#include "common/deadline.h"
#include "lp/model.h"

namespace sqpr {
namespace lp {

enum class SolveStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
  kTimeLimit,
};

const char* SolveStatusName(SolveStatus status);

/// Column status in a simplex basis; the unit of warm-start exchange
/// between solves. Order: structural columns 0..n-1, then row slacks.
enum class BasisState : uint8_t {
  kBasic,
  kAtLower,
  kAtUpper,
  kFree,
};

struct SimplexOptions {
  /// Hard cap on total simplex iterations across both phases. Zero means
  /// "choose automatically from the problem size".
  int64_t max_iterations = 0;
  /// Wall-clock bound; checked every few iterations.
  Deadline deadline;
  /// Absolute primal feasibility / reduced-cost tolerance.
  double feasibility_tol = 1e-7;
  double optimality_tol = 1e-7;
  /// Rebuild the basis inverse from scratch every this many pivots.
  int refactor_interval = 100;
  /// Optional starting basis (from a previous solve of a closely related
  /// model, e.g. the parent branch-and-bound node). Must describe the
  /// same columns; extra trailing rows (lazy cuts added since) are
  /// padded with basic slacks. A singular or mismatched warm basis falls
  /// back to the slack basis silently. The pointee must outlive Solve().
  const std::vector<BasisState>* warm_basis = nullptr;
};

struct SimplexResult {
  SolveStatus status = SolveStatus::kIterationLimit;
  /// Structural variable values (model.num_variables() entries). On
  /// kOptimal this is the optimal vertex; on iteration/time limit in
  /// phase 2 it is the last primal-feasible iterate.
  std::vector<double> values;
  /// Objective in the model's own sense.
  double objective = 0.0;
  int64_t iterations = 0;
  /// Final basis, reusable as SimplexOptions::warm_basis for subsequent
  /// related solves.
  std::vector<BasisState> basis_state;
};

/// Two-phase bounded-variable revised primal simplex with a dense basis
/// inverse and periodic refactorisation.
///
/// This is the LP engine underneath the branch-and-bound MILP solver that
/// stands in for CPLEX in the SQPR reproduction. Design points:
///  * rows are turned into equalities with bounded slack columns; a
///    composite (infeasibility-minimising) phase 1 removes out-of-bound
///    basic values, so any basis — including a warm one from a related
///    solve — is a legal start;
///  * Dantzig pricing with an automatic switch to Bland's rule after a
///    run of degenerate pivots (anti-cycling);
///  * bound flips are handled without basis changes;
///  * the basis inverse is maintained column-major via product-form
///    updates and rebuilt by Gauss-Jordan every refactor_interval pivots.
///
/// The solver is stateless across calls, but callers can chain solves
/// cheaply by passing the previous SimplexResult::basis_state as the
/// next SimplexOptions::warm_basis — branch-and-bound node re-solves
/// then typically take a handful of iterations instead of hundreds.
class SimplexSolver {
 public:
  explicit SimplexSolver(SimplexOptions options = {}) : options_(options) {}

  /// Solves the LP. The model is read-only.
  SimplexResult Solve(const Model& model);

 private:
  SimplexOptions options_;
};

}  // namespace lp
}  // namespace sqpr

#endif  // SQPR_LP_SIMPLEX_H_
