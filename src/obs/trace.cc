#include "obs/trace.h"

#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>

#include "common/logging.h"

namespace sqpr {
namespace obs {
namespace {

uint64_t SteadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

/// Single-writer, any-reader span ring. The owning thread emits; drains
/// from any thread skip torn slots via per-slot stamps. Every field a
/// drain may read concurrently with an emit is a relaxed atomic, so the
/// whole structure is data-race-free by construction (and under TSan).
class TraceRecorder::ThreadBuffer {
 public:
  ThreadBuffer(uint32_t tid, std::string name, size_t capacity)
      : tid_(tid), name_(std::move(name)), mask_(capacity - 1),
        slots_(capacity) {}

  void Emit(uint32_t name_id, uint64_t start_ns, uint64_t dur_ns,
            int64_t virt_ms, uint64_t arg1, uint64_t arg2) {
    const uint64_t i = head_.load(std::memory_order_relaxed);
    Slot& s = slots_[i & mask_];
    // Invalidate the slot first so a concurrent drain never stitches
    // the old record's stamp onto the new payload.
    s.stamp.store(kInProgress, std::memory_order_relaxed);
    s.name_id.store(name_id, std::memory_order_relaxed);
    s.start_ns.store(start_ns, std::memory_order_relaxed);
    s.dur_ns.store(dur_ns, std::memory_order_relaxed);
    s.virt_ms.store(virt_ms, std::memory_order_relaxed);
    s.arg1.store(arg1, std::memory_order_relaxed);
    s.arg2.store(arg2, std::memory_order_relaxed);
    // Publish: stamp == record index marks the payload complete.
    s.stamp.store(i, std::memory_order_release);
    head_.store(i + 1, std::memory_order_release);
  }

  /// Appends the retained window to `out`; updates cumulative drops.
  void Drain(std::vector<SpanRecord>* out, ThreadTraceStats* stats) {
    const uint64_t head = head_.load(std::memory_order_acquire);
    const size_t capacity = mask_ + 1;
    const uint64_t first = head > capacity ? head - capacity : 0;
    // Everything before the retained window that no drain ever saw was
    // overwritten in place — flight-recorder drops.
    if (first > drained_to_) dropped_ += first - drained_to_;
    for (uint64_t i = std::max(first, drained_to_); i < head; ++i) {
      const Slot& s = slots_[i & mask_];
      if (s.stamp.load(std::memory_order_acquire) != i) continue;  // torn
      SpanRecord r;
      r.name_id = s.name_id.load(std::memory_order_relaxed);
      r.tid = tid_;
      r.start_ns = s.start_ns.load(std::memory_order_relaxed);
      r.dur_ns = s.dur_ns.load(std::memory_order_relaxed);
      r.virt_ms = s.virt_ms.load(std::memory_order_relaxed);
      r.args[0] = s.arg1.load(std::memory_order_relaxed);
      r.args[1] = s.arg2.load(std::memory_order_relaxed);
      out->push_back(r);
    }
    drained_to_ = head;
    if (stats != nullptr) {
      stats->thread_name = name_;
      stats->emitted = head;
      stats->dropped = dropped_;
    }
  }

  /// Restarts recording from an empty window (Enable). Concurrent
  /// emitters are tolerated: slots invalidated here that an emit is
  /// mid-writing simply get re-published by that emit.
  void Reset() {
    const uint64_t head = head_.load(std::memory_order_acquire);
    for (Slot& s : slots_) s.stamp.store(kInProgress, std::memory_order_relaxed);
    drained_to_ = head;
    dropped_ = 0;
  }

  uint32_t tid() const { return tid_; }
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

 private:
  static constexpr uint64_t kInProgress = ~0ull;

  struct Slot {
    std::atomic<uint64_t> stamp{kInProgress};
    std::atomic<uint32_t> name_id{0};
    std::atomic<uint64_t> start_ns{0};
    std::atomic<uint64_t> dur_ns{0};
    std::atomic<int64_t> virt_ms{-1};
    std::atomic<uint64_t> arg1{0};
    std::atomic<uint64_t> arg2{0};
  };

  const uint32_t tid_;
  std::string name_;
  const size_t mask_;
  std::vector<Slot> slots_;
  std::atomic<uint64_t> head_{0};
  // Reader-side bookkeeping (drains are serialised by the registry
  // mutex; emitters never touch these).
  uint64_t drained_to_ = 0;
  uint64_t dropped_ = 0;
};

struct TraceRecorder::Impl {
  // Guards buffer registration, the intern table and drains — never an
  // emit.
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  std::vector<SpanMeta> metas;
  Options options;
  uint32_t next_tid = 1;
  // Pending name for a thread that called SetCurrentThreadName before
  // emitting its first span (buffer not created yet).
  thread_local static ThreadBuffer* tl_buffer;
  thread_local static std::string* tl_pending_name;
};

thread_local TraceRecorder::ThreadBuffer* TraceRecorder::Impl::tl_buffer =
    nullptr;
thread_local std::string* TraceRecorder::Impl::tl_pending_name = nullptr;

TraceRecorder::TraceRecorder() : impl_(new Impl) {
  base_ns_.store(SteadyNowNs(), std::memory_order_relaxed);
}

TraceRecorder& TraceRecorder::Get() {
  // Leaked singleton: worker threads may emit during static destruction
  // of other objects; the recorder must outlive them all.
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

void TraceRecorder::Enable(const Options& options) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->options = options;
  impl_->options.per_thread_capacity =
      RoundUpPow2(std::max<size_t>(16, options.per_thread_capacity));
  for (auto& buffer : impl_->buffers) buffer->Reset();
  base_ns_.store(SteadyNowNs(), std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_release);
}

void TraceRecorder::Disable() {
  enabled_.store(false, std::memory_order_release);
}

uint64_t TraceRecorder::NowNs() const {
  return SteadyNowNs() - base_ns_.load(std::memory_order_relaxed);
}

uint32_t TraceRecorder::RegisterSpan(const char* name, const char* arg1,
                                     const char* arg2) {
  TraceRecorder& rec = Get();
  std::lock_guard<std::mutex> lock(rec.impl_->mu);
  SpanMeta meta;
  meta.name = name;
  const size_t slash = meta.name.find('/');
  meta.cat = slash == std::string::npos ? meta.name : meta.name.substr(0, slash);
  if (arg1 != nullptr) meta.arg_names[0] = arg1;
  if (arg2 != nullptr) meta.arg_names[1] = arg2;
  rec.impl_->metas.push_back(std::move(meta));
  return static_cast<uint32_t>(rec.impl_->metas.size() - 1);
}

const SpanMeta& TraceRecorder::span_meta(uint32_t id) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  SQPR_CHECK(id < impl_->metas.size()) << "unknown span id " << id;
  return impl_->metas[id];
}

void TraceRecorder::SetCurrentThreadName(const std::string& name) {
  TraceRecorder& rec = Get();
  if (Impl::tl_buffer != nullptr) {
    std::lock_guard<std::mutex> lock(rec.impl_->mu);
    Impl::tl_buffer->set_name(name);
    return;
  }
  // Buffer not created yet (lazy): stash for creation time. The string
  // is leaked with the thread_local pointer — bounded by thread count.
  if (Impl::tl_pending_name == nullptr) {
    Impl::tl_pending_name = new std::string();
  }
  *Impl::tl_pending_name = name;
}

TraceRecorder::ThreadBuffer* TraceRecorder::BufferForThisThread() {
  if (Impl::tl_buffer != nullptr) return Impl::tl_buffer;
  std::lock_guard<std::mutex> lock(impl_->mu);
  const uint32_t tid = impl_->next_tid++;
  std::string name = Impl::tl_pending_name != nullptr
                         ? *Impl::tl_pending_name
                         : "thread-" + std::to_string(tid);
  impl_->buffers.push_back(std::make_unique<ThreadBuffer>(
      tid, std::move(name), impl_->options.per_thread_capacity));
  Impl::tl_buffer = impl_->buffers.back().get();
  return Impl::tl_buffer;
}

void TraceRecorder::Emit(uint32_t name_id, uint64_t start_ns, uint64_t dur_ns,
                         int64_t virt_ms, uint64_t arg1, uint64_t arg2) {
  // Note: no enabled() re-check — a span that *started* while tracing
  // was on records even if Disable() raced its end, which keeps the
  // bookkeeping simple and loses nothing.
  BufferForThisThread()->Emit(name_id, start_ns, dur_ns, virt_ms, arg1, arg2);
}

std::vector<SpanRecord> TraceRecorder::Drain(
    std::vector<ThreadTraceStats>* stats) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::vector<SpanRecord> out;
  if (stats != nullptr) stats->clear();
  for (auto& buffer : impl_->buffers) {
    ThreadTraceStats ts;
    buffer->Drain(&out, &ts);
    if (stats != nullptr) stats->push_back(std::move(ts));
  }
  return out;
}

std::string TraceRecorder::ChromeTraceJson() {
  std::vector<ThreadTraceStats> stats;
  std::vector<SpanRecord> spans = Drain(&stats);

  // Snapshot metas under the lock; rendering happens outside it.
  std::vector<SpanMeta> metas;
  std::vector<std::pair<uint32_t, std::string>> thread_names;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    metas = impl_->metas;
    for (const auto& buffer : impl_->buffers) {
      thread_names.emplace_back(buffer->tid(), buffer->name());
    }
  }

  std::string out;
  out.reserve(spans.size() * 144 + 4096);
  out += "{\"traceEvents\": [\n";
  bool first = true;
  char buf[256];
  for (const auto& [tid, name] : thread_names) {
    std::snprintf(buf, sizeof(buf),
                  "%s{\"ph\": \"M\", \"pid\": 1, \"tid\": %u, "
                  "\"name\": \"thread_name\", \"args\": {\"name\": \"%s\"}}",
                  first ? "" : ",\n", tid, JsonEscape(name).c_str());
    out += buf;
    first = false;
  }
  for (const SpanRecord& span : spans) {
    if (span.name_id >= metas.size()) continue;  // stale torn slot
    const SpanMeta& meta = metas[span.name_id];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"ph\": \"X\", \"pid\": 1, \"tid\": %u, "
                  "\"name\": \"%s\", \"cat\": \"%s\", "
                  "\"ts\": %.3f, \"dur\": %.3f, \"args\": {",
                  first ? "" : ",\n", span.tid, JsonEscape(meta.name).c_str(),
                  JsonEscape(meta.cat).c_str(), span.start_ns / 1000.0,
                  span.dur_ns / 1000.0);
    out += buf;
    first = false;
    bool first_arg = true;
    if (span.virt_ms >= 0) {
      std::snprintf(buf, sizeof(buf), "\"vclock_ms\": %lld",
                    static_cast<long long>(span.virt_ms));
      out += buf;
      first_arg = false;
    }
    for (int a = 0; a < 2; ++a) {
      if (meta.arg_names[a].empty()) continue;
      std::snprintf(buf, sizeof(buf), "%s\"%s\": %llu",
                    first_arg ? "" : ", ",
                    JsonEscape(meta.arg_names[a]).c_str(),
                    static_cast<unsigned long long>(span.args[a]));
      out += buf;
      first_arg = false;
    }
    out += "}}";
  }
  uint64_t total_emitted = 0;
  uint64_t total_dropped = 0;
  for (const ThreadTraceStats& ts : stats) {
    total_emitted += ts.emitted;
    total_dropped += ts.dropped;
  }
  out += "\n], \"displayTimeUnit\": \"ms\", \"otherData\": {";
  std::snprintf(buf, sizeof(buf),
                "\"schema\": \"sqpr-trace-v1\", \"emitted_spans\": %llu, "
                "\"dropped_spans\": %llu, \"threads\": %zu, ",
                static_cast<unsigned long long>(total_emitted),
                static_cast<unsigned long long>(total_dropped), stats.size());
  out += buf;
  // Per-thread emit/drop accounting: aggregate drop counts hide which
  // ring actually wrapped (a hot worker can lose a round's spans while
  // the totals still look benign); tools/check_trace.py reports these
  // in its gate output.
  out += "\"per_thread\": [";
  for (size_t i = 0; i < stats.size(); ++i) {
    std::snprintf(buf, sizeof(buf),
                  "%s{\"name\": \"%s\", \"emitted\": %llu, \"dropped\": %llu}",
                  i == 0 ? "" : ", ", JsonEscape(stats[i].thread_name).c_str(),
                  static_cast<unsigned long long>(stats[i].emitted),
                  static_cast<unsigned long long>(stats[i].dropped));
    out += buf;
  }
  out += "]}}\n";
  return out;
}

Status TraceRecorder::WriteChromeTrace(const std::string& path) {
  const std::string json = ChromeTraceJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot write trace to " + path);
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::Internal("short write to " + path);
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace sqpr
