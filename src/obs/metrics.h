#ifndef SQPR_OBS_METRICS_H_
#define SQPR_OBS_METRICS_H_

// Metrics registry: named counters and log-bucketed histograms with
// lock-free updates, snapshot-able to JSON with a stable schema.
//
// The Histogram replaces the hand-rolled latency machinery the service
// grew organically (RunningStats + a bounded sample window re-sorted
// for every percentile): it keeps count/sum/min/max exactly and
// resolves quantiles from log-spaced buckets — p50/p95/p99 without
// storing samples, O(1) memory, <= half a sub-bucket of relative error
// (~6% with the default 8 sub-buckets per octave; tests pin the bound
// against the exact nearest-rank Percentile()).
//
// Thread safety: Add()/Increment() are lock-free atomics, safe from any
// thread (the solver workers record into the same histogram the loop
// thread reads). Reads are racy-but-coherent snapshots — each field is
// atomically read, the set may straddle concurrent updates; callers
// wanting a consistent view quiesce writers first (every current caller
// reads after the run).

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace sqpr {
namespace obs {

/// Monotonic named counter (the registry owns the name).
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Log-bucketed histogram of non-negative scalars (latencies in ms,
/// sizes in bytes). Buckets are octaves (powers of two) split into
/// kSubBuckets linear sub-buckets — HDR-histogram style — spanning
/// [2^kMinExp, 2^kMaxExp); values outside clamp into the edge buckets.
/// Copyable (snapshot semantics) so it can live in result structs.
class Histogram {
 public:
  static constexpr int kSubBuckets = 8;   // <= 12.5% bucket width
  static constexpr int kMinExp = -20;     // ~1e-6: sub-ns in ms units
  static constexpr int kMaxExp = 40;      // ~1e12
  static constexpr int kNumBuckets = (kMaxExp - kMinExp) * kSubBuckets;

  Histogram() = default;
  Histogram(const Histogram& other) { CopyFrom(other); }
  Histogram& operator=(const Histogram& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }

  /// Records one sample. Negative and NaN samples clamp to 0 (counted,
  /// lowest bucket) — latency sources never legitimately produce them.
  void Add(double v);

  size_t count() const {
    return static_cast<size_t>(count_.load(std::memory_order_relaxed));
  }
  double sum() const { return LoadD(sum_bits_); }
  double mean() const {
    const size_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }
  /// Exact observed extrema (not bucket bounds); 0 when empty.
  double min() const { return count() == 0 ? 0.0 : LoadD(min_bits_); }
  double max() const { return count() == 0 ? 0.0 : LoadD(max_bits_); }

  /// Quantile q in [0, 1] resolved from the buckets: the nearest-rank
  /// sample's bucket, linearly interpolated across the bucket's value
  /// range. Exact for the extrema (q over the min/max buckets clamps to
  /// the observed min/max). 0 when empty.
  double Quantile(double q) const;

  /// Lower value bound of bucket index i (test access).
  static double BucketLowerBound(int i);
  /// Bucket index a value lands in (test access).
  static int BucketIndex(double v);
  uint64_t bucket_count(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Shared quantile resolution over a bucket array (the Histogram and
  /// its snapshots use the same math): nearest-rank bucket, linearly
  /// interpolated, clamped to the observed [min, max].
  static double QuantileFromBuckets(const uint64_t* buckets, uint64_t n,
                                    double q, double min_v, double max_v);

 private:
  static double LoadD(const std::atomic<uint64_t>& bits);
  static void StoreMin(std::atomic<uint64_t>* bits, double v);
  static void StoreMax(std::atomic<uint64_t>* bits, double v);
  static void AddD(std::atomic<uint64_t>* bits, double delta);
  void CopyFrom(const Histogram& other);

  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_bits_{0};       // double bits, CAS-accumulated
  std::atomic<uint64_t> min_bits_{0x7FF0000000000000ull};   // +inf
  std::atomic<uint64_t> max_bits_{0xFFF0000000000000ull};   // -inf
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
};

/// Point-in-time copy of one histogram's state, delta-capable: keeping
/// the full bucket array makes window quantiles honest — a delta's
/// p95 is resolved from the *window's* samples, not approximated from
/// two cumulative quantiles.
struct HistogramSnapshot {
  uint64_t count = 0;
  double sum = 0.0;
  /// Cumulative observed extrema at snapshot time. A delta inherits the
  /// later snapshot's extrema (per-window extrema are not recoverable
  /// from monotone state) — quantiles stay clamped correctly, since the
  /// window's samples lie within the cumulative range.
  double min = 0.0;
  double max = 0.0;
  std::vector<uint64_t> buckets;  ///< Histogram::kNumBuckets entries

  double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
  double Quantile(double q) const;
  /// Window between `earlier` and this snapshot of the SAME histogram:
  /// bucket-wise subtraction of the monotone counters. Every delta
  /// bucket (and the count and sum) is >= 0 by monotonicity; a racing
  /// reader that observed torn state clamps at 0 instead of wrapping.
  HistogramSnapshot DeltaSince(const HistogramSnapshot& earlier) const;
};

/// Point-in-time copy of a whole registry.
struct MetricsSnapshot {
  std::map<std::string, int64_t> counters;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Counter/histogram deltas vs an earlier snapshot (metrics absent
  /// from `earlier` delta against zero).
  MetricsSnapshot DeltaSince(const MetricsSnapshot& earlier) const;

  /// Compact single-line JSON object — {"counters":{...},
  /// "histograms":{"<name>":{count,sum,mean,min,max,p50,p90,p95,p99}}}
  /// — one building block of the sqpr-metrics-series-v1 JSONL time
  /// series (tools/sqpr_service.cc composes the lines).
  std::string ToJson() const;

  /// OpenMetrics text rendering: counters as `<name>_total`, histograms
  /// as summaries (quantile-labelled samples plus _sum/_count). Metric
  /// names are sanitised ([^a-zA-Z0-9_:] -> '_'); `labels` are attached
  /// to every sample with their values escaped per the OpenMetrics ABNF
  /// (backslash, double quote, newline). Ends with "# EOF".
  std::string ToOpenMetrics(
      const std::map<std::string, std::string>& labels) const;
};

/// Named metric registry. Registration (name lookup) takes a mutex and
/// returns a stable pointer; updates through the pointer are lock-free.
/// Use one registry per subsystem or the process-wide Global().
class MetricsRegistry {
 public:
  /// Finds or creates; the returned pointer lives as long as the
  /// registry. Names are dotted paths ("service.solve_ms").
  Counter* counter(const std::string& name);
  Histogram* histogram(const std::string& name);

  /// Stable-schema JSON snapshot:
  ///   {"schema": "sqpr-metrics-v1",
  ///    "counters": {"<name>": N, ...},
  ///    "histograms": {"<name>": {"count": N, "sum": F, "mean": F,
  ///      "min": F, "max": F, "p50": F, "p90": F, "p95": F, "p99": F},
  ///      ...}}
  /// Keys are sorted (std::map), so snapshots diff cleanly.
  std::string ToJson() const;

  /// Copies every registered metric (racy-but-coherent per field, like
  /// all registry reads) — the periodic-exposition primitive: take one
  /// per interval, DeltaSince the previous, serialise both.
  MetricsSnapshot TakeSnapshot() const;

  static MetricsRegistry& Global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace obs
}  // namespace sqpr

#endif  // SQPR_OBS_METRICS_H_
