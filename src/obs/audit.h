#ifndef SQPR_OBS_AUDIT_H_
#define SQPR_OBS_AUDIT_H_

// Decision audit journal (schema sqpr-audit-v1): every operational
// decision the planning service takes — admit, reject, re-plan, evict,
// drift, conflict resolution, barrier unwind — appended in commit order
// as one JSONL record, so "why was query Q rejected at t=412?" is a
// grep, not a debugger session.
//
// Determinism contract. The service commits bit-identical deployments
// across worker counts and pipeline depths (docs/ARCHITECTURE.md §4);
// the journal inherits that by splitting every record into two strata:
//
//  * canonical fields — virtual time, decision kind, query/host, the
//    commit-order round sequence number, and pre/post deployment
//    fingerprints. These depend only on the committed decision sequence,
//    so the canonical rendering (ToJsonl(/*canonical=*/true)) is
//    byte-identical across workers {0,1,4} x pipeline depth {1,2,4} —
//    asserted by the replay property suite and bench_service_churn.
//  * operational fields — wall-clock solve/commit latencies and the
//    pipeline dispatch id ("wall": {...}), plus whole records marked
//    speculative (dispatches, unwinds, conflicts, scheduler requeues,
//    watchdog stalls). Wall time and speculation are exactly what the
//    worker count and depth DO change, so the full rendering carries
//    them and the canonical rendering strips them.
//
// Thread safety: none — Append() is loop-thread-only, like every other
// commit-ordered structure in the service. Renders happen after the run
// (or between events on the loop thread).

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace sqpr {
namespace obs {

/// One audited decision. `kind` is a stable dotted reason code; the
/// full vocabulary is documented in docs/ARCHITECTURE.md §7:
///   admit.solve admit.cache admit.dedup reject.capacity reject.error
///   depart.served depart.unknown host.failure host.join
///   evict.host_failure evict.drift drift.report drift.measure
///   measure.tick rate.directive replan.enqueue replan.round
///   replan.admit replan.reject replan.fail close.admitted
///   close.pending journal.close
/// and (speculative) round.dispatch round.unwind replan.requeue
/// replan.discard replan.conflict watchdog.stall.
struct AuditRecord {
  // ---- canonical ----
  int64_t t_ms = 0;          ///< virtual clock at the decision
  std::string kind;          ///< reason code (see above)
  int64_t query = -1;        ///< StreamId, -1 when not query-scoped
  int64_t host = -1;         ///< HostId, -1 when not host-scoped
  int64_t round = -1;        ///< commit-order round seq, -1 when n/a
  int64_t detail = -1;       ///< kind-specific count (evicted, queries…)
  int64_t aux = -1;          ///< secondary kind-specific value
  /// Stream lists for the close records (sorted admitted set, pending
  /// backlog in FIFO order); empty elsewhere.
  std::vector<int64_t> streams;
  /// Pre/post deployment state around the decision: ledger version,
  /// structure version and an FNV-1a hash of Deployment::Fingerprint().
  /// Rendered only when pre_fp != 0 (summary-level records set them;
  /// per-query sub-records skip the fingerprint cost).
  uint64_t pre_version = 0;
  uint64_t pre_structure = 0;
  uint64_t pre_fp = 0;
  uint64_t post_version = 0;
  uint64_t post_structure = 0;
  uint64_t post_fp = 0;
  // ---- operational (stripped by the canonical rendering) ----
  /// Whole-record marker: this decision only exists on some
  /// worker/depth configurations (speculation artifacts).
  bool speculative = false;
  double solve_ms = -1.0;    ///< wall-clock solve latency, -1 = none
  double commit_ms = -1.0;   ///< wall-clock commit latency, -1 = none
  int64_t dispatch_id = -1;  ///< pipeline dispatch id (depth-variant)
};

/// Append-only decision journal. Canonical records are numbered by
/// their own sequence counter ("seq") and speculative records by a
/// separate one ("sseq"), so filtering speculation out never perforates
/// the canonical numbering — the invariant the byte-identity contract
/// rides on.
class AuditJournal {
 public:
  /// Appends one record, assigning its sequence number.
  void Append(AuditRecord record);

  size_t size() const { return records_.size(); }
  size_t canonical_size() const { return canonical_seq_; }
  const std::vector<AuditRecord>& records() const { return records_; }

  /// Renders the journal as JSONL: a schema header line followed by one
  /// record per line. `canonical` drops speculative records and the
  /// "wall" object — the rendering the determinism contract covers.
  std::string ToJsonl(bool canonical) const;

  Status WriteFile(const std::string& path, bool canonical) const;

  /// FNV-1a 64-bit — the deployment fingerprint hash the records carry.
  static uint64_t Fnv1a(const std::string& s);

 private:
  std::vector<AuditRecord> records_;
  /// Per-record sequence numbers, parallel to records_ (canonical and
  /// speculative records draw from separate counters).
  std::vector<int64_t> seqs_;
  int64_t canonical_seq_ = 0;
  int64_t speculative_seq_ = 0;
};

}  // namespace obs
}  // namespace sqpr

#endif  // SQPR_OBS_AUDIT_H_
