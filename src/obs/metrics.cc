#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace sqpr {
namespace obs {

namespace {

uint64_t Bits(double v) {
  uint64_t b;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

double FromBits(uint64_t b) {
  double v;
  std::memcpy(&v, &b, sizeof(v));
  return v;
}

}  // namespace

double Histogram::LoadD(const std::atomic<uint64_t>& bits) {
  return FromBits(bits.load(std::memory_order_relaxed));
}

void Histogram::StoreMin(std::atomic<uint64_t>* bits, double v) {
  uint64_t cur = bits->load(std::memory_order_relaxed);
  while (v < FromBits(cur) &&
         !bits->compare_exchange_weak(cur, Bits(v),
                                      std::memory_order_relaxed)) {
  }
}

void Histogram::StoreMax(std::atomic<uint64_t>* bits, double v) {
  uint64_t cur = bits->load(std::memory_order_relaxed);
  while (v > FromBits(cur) &&
         !bits->compare_exchange_weak(cur, Bits(v),
                                      std::memory_order_relaxed)) {
  }
}

void Histogram::AddD(std::atomic<uint64_t>* bits, double delta) {
  uint64_t cur = bits->load(std::memory_order_relaxed);
  while (!bits->compare_exchange_weak(cur, Bits(FromBits(cur) + delta),
                                      std::memory_order_relaxed)) {
  }
}

int Histogram::BucketIndex(double v) {
  if (!(v > 0.0)) return 0;  // <= 0 and NaN clamp to the lowest bucket
  int exp;
  // v = m * 2^exp with m in [0.5, 1): octave = exp - 1, and the
  // sub-bucket is the linear position of m within [0.5, 1).
  const double m = std::frexp(v, &exp);
  const int octave = exp - 1;
  if (octave < kMinExp) return 0;
  if (octave >= kMaxExp) return kNumBuckets - 1;
  int sub = static_cast<int>((m - 0.5) * 2.0 * kSubBuckets);
  sub = std::clamp(sub, 0, kSubBuckets - 1);
  return (octave - kMinExp) * kSubBuckets + sub;
}

double Histogram::BucketLowerBound(int i) {
  const int octave = kMinExp + i / kSubBuckets;
  const int sub = i % kSubBuckets;
  return std::ldexp(1.0 + static_cast<double>(sub) / kSubBuckets, octave);
}

void Histogram::Add(double v) {
  if (!(v >= 0.0)) v = 0.0;
  buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AddD(&sum_bits_, v);
  StoreMin(&min_bits_, v);
  StoreMax(&max_bits_, v);
}

double Histogram::Quantile(double q) const {
  const uint64_t n = count_.load(std::memory_order_relaxed);
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank (1-based), matching the exact Percentile() helper.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(n))));
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    const uint64_t c = buckets_[i].load(std::memory_order_relaxed);
    if (c == 0) continue;
    if (seen + c >= rank) {
      // Interpolate the rank's position across the bucket's value
      // range, clamped to the exact observed extrema so tails are
      // sharp.
      const double lo = BucketLowerBound(i);
      const double hi = i + 1 < kNumBuckets ? BucketLowerBound(i + 1) : lo;
      const double within =
          c == 0 ? 0.0
                 : (static_cast<double>(rank - seen) - 0.5) /
                       static_cast<double>(c);
      double v = lo + (hi - lo) * std::clamp(within, 0.0, 1.0);
      v = std::clamp(v, min(), max());
      return v;
    }
    seen += c;
  }
  return max();
}

void Histogram::CopyFrom(const Histogram& other) {
  count_.store(other.count_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
  sum_bits_.store(other.sum_bits_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
  min_bits_.store(other.min_bits_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
  max_bits_.store(other.max_bits_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
  for (int i = 0; i < kNumBuckets; ++i) {
    buckets_[i].store(other.buckets_[i].load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  }
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\n  \"schema\": \"sqpr-metrics-v1\",\n  \"counters\": {";
  char buf[192];
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    std::snprintf(buf, sizeof(buf), "%s\n    \"%s\": %lld",
                  first ? "" : ",", name.c_str(),
                  static_cast<long long>(counter->value()));
    out += buf;
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    std::snprintf(
        buf, sizeof(buf),
        "%s\n    \"%s\": {\"count\": %zu, \"sum\": %.6g, \"mean\": %.6g, "
        "\"min\": %.6g, \"max\": %.6g, ",
        first ? "" : ",", name.c_str(), h->count(), h->sum(), h->mean(),
        h->min(), h->max());
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  "\"p50\": %.6g, \"p90\": %.6g, \"p95\": %.6g, "
                  "\"p99\": %.6g}",
                  h->Quantile(0.50), h->Quantile(0.90), h->Quantile(0.95),
                  h->Quantile(0.99));
    out += buf;
    first = false;
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace obs
}  // namespace sqpr
