#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace sqpr {
namespace obs {

namespace {

uint64_t Bits(double v) {
  uint64_t b;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

double FromBits(uint64_t b) {
  double v;
  std::memcpy(&v, &b, sizeof(v));
  return v;
}

}  // namespace

double Histogram::LoadD(const std::atomic<uint64_t>& bits) {
  return FromBits(bits.load(std::memory_order_relaxed));
}

void Histogram::StoreMin(std::atomic<uint64_t>* bits, double v) {
  uint64_t cur = bits->load(std::memory_order_relaxed);
  while (v < FromBits(cur) &&
         !bits->compare_exchange_weak(cur, Bits(v),
                                      std::memory_order_relaxed)) {
  }
}

void Histogram::StoreMax(std::atomic<uint64_t>* bits, double v) {
  uint64_t cur = bits->load(std::memory_order_relaxed);
  while (v > FromBits(cur) &&
         !bits->compare_exchange_weak(cur, Bits(v),
                                      std::memory_order_relaxed)) {
  }
}

void Histogram::AddD(std::atomic<uint64_t>* bits, double delta) {
  uint64_t cur = bits->load(std::memory_order_relaxed);
  while (!bits->compare_exchange_weak(cur, Bits(FromBits(cur) + delta),
                                      std::memory_order_relaxed)) {
  }
}

int Histogram::BucketIndex(double v) {
  if (!(v > 0.0)) return 0;  // <= 0 and NaN clamp to the lowest bucket
  int exp;
  // v = m * 2^exp with m in [0.5, 1): octave = exp - 1, and the
  // sub-bucket is the linear position of m within [0.5, 1).
  const double m = std::frexp(v, &exp);
  const int octave = exp - 1;
  if (octave < kMinExp) return 0;
  if (octave >= kMaxExp) return kNumBuckets - 1;
  int sub = static_cast<int>((m - 0.5) * 2.0 * kSubBuckets);
  sub = std::clamp(sub, 0, kSubBuckets - 1);
  return (octave - kMinExp) * kSubBuckets + sub;
}

double Histogram::BucketLowerBound(int i) {
  const int octave = kMinExp + i / kSubBuckets;
  const int sub = i % kSubBuckets;
  return std::ldexp(1.0 + static_cast<double>(sub) / kSubBuckets, octave);
}

void Histogram::Add(double v) {
  if (!(v >= 0.0)) v = 0.0;
  buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AddD(&sum_bits_, v);
  StoreMin(&min_bits_, v);
  StoreMax(&max_bits_, v);
}

double Histogram::QuantileFromBuckets(const uint64_t* buckets, uint64_t n,
                                      double q, double min_v, double max_v) {
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank (1-based), matching the exact Percentile() helper.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(n))));
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    const uint64_t c = buckets[i];
    if (c == 0) continue;
    if (seen + c >= rank) {
      // Interpolate the rank's position across the bucket's value
      // range, clamped to the exact observed extrema so tails are
      // sharp.
      const double lo = BucketLowerBound(i);
      const double hi = i + 1 < kNumBuckets ? BucketLowerBound(i + 1) : lo;
      const double within =
          c == 0 ? 0.0
                 : (static_cast<double>(rank - seen) - 0.5) /
                       static_cast<double>(c);
      double v = lo + (hi - lo) * std::clamp(within, 0.0, 1.0);
      v = std::clamp(v, min_v, max_v);
      return v;
    }
    seen += c;
  }
  return max_v;
}

double Histogram::Quantile(double q) const {
  const uint64_t n = count_.load(std::memory_order_relaxed);
  if (n == 0) return 0.0;
  uint64_t buckets[kNumBuckets];
  for (int i = 0; i < kNumBuckets; ++i) {
    buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return QuantileFromBuckets(buckets, n, q, min(), max());
}

void Histogram::CopyFrom(const Histogram& other) {
  count_.store(other.count_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
  sum_bits_.store(other.sum_bits_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
  min_bits_.store(other.min_bits_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
  max_bits_.store(other.max_bits_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
  for (int i = 0; i < kNumBuckets; ++i) {
    buckets_[i].store(other.buckets_[i].load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  }
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0 || buckets.empty()) return 0.0;
  return Histogram::QuantileFromBuckets(buckets.data(), count, q, min, max);
}

HistogramSnapshot HistogramSnapshot::DeltaSince(
    const HistogramSnapshot& earlier) const {
  HistogramSnapshot delta;
  delta.count = count >= earlier.count ? count - earlier.count : 0;
  delta.sum = std::max(0.0, sum - earlier.sum);
  delta.min = min;
  delta.max = max;
  delta.buckets.resize(buckets.size(), 0);
  for (size_t i = 0; i < buckets.size(); ++i) {
    const uint64_t before = i < earlier.buckets.size() ? earlier.buckets[i] : 0;
    delta.buckets[i] = buckets[i] >= before ? buckets[i] - before : 0;
  }
  return delta;
}

MetricsSnapshot MetricsSnapshot::DeltaSince(
    const MetricsSnapshot& earlier) const {
  MetricsSnapshot delta;
  for (const auto& [name, value] : counters) {
    const auto it = earlier.counters.find(name);
    const int64_t before = it == earlier.counters.end() ? 0 : it->second;
    delta.counters[name] = value >= before ? value - before : 0;
  }
  static const HistogramSnapshot kEmpty;
  for (const auto& [name, h] : histograms) {
    const auto it = earlier.histograms.find(name);
    delta.histograms[name] =
        h.DeltaSince(it == earlier.histograms.end() ? kEmpty : it->second);
  }
  return delta;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  char buf[192];
  bool first = true;
  for (const auto& [name, value] : counters) {
    std::snprintf(buf, sizeof(buf), "%s\"%s\":%lld", first ? "" : ",",
                  name.c_str(), static_cast<long long>(value));
    out += buf;
    first = false;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    std::snprintf(buf, sizeof(buf),
                  "%s\"%s\":{\"count\":%llu,\"sum\":%.6g,\"mean\":%.6g,"
                  "\"min\":%.6g,\"max\":%.6g,",
                  first ? "" : ",", name.c_str(),
                  static_cast<unsigned long long>(h.count), h.sum, h.mean(),
                  h.min, h.max);
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  "\"p50\":%.6g,\"p90\":%.6g,\"p95\":%.6g,\"p99\":%.6g}",
                  h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.95),
                  h.Quantile(0.99));
    out += buf;
    first = false;
  }
  out += "}}";
  return out;
}

namespace {

/// OpenMetrics metric names: [a-zA-Z0-9_:], everything else folded to
/// '_' ("service.admit_ms" -> "service_admit_ms").
std::string SanitizeMetricName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

/// OpenMetrics label-value escaping: backslash, double quote and
/// newline (the three the exposition-format ABNF escapes).
std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string RenderLabels(const std::map<std::string, std::string>& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    out += SanitizeMetricName(k) + "=\"" + EscapeLabelValue(v) + "\"";
    first = false;
  }
  out += "}";
  return out;
}

/// Labels + one extra pair (the quantile label).
std::string RenderLabelsPlus(const std::map<std::string, std::string>& labels,
                             const std::string& key,
                             const std::string& value) {
  std::map<std::string, std::string> all = labels;
  all[key] = value;
  return RenderLabels(all);
}

}  // namespace

std::string MetricsSnapshot::ToOpenMetrics(
    const std::map<std::string, std::string>& labels) const {
  std::string out;
  char buf[192];
  const std::string label_str = RenderLabels(labels);
  for (const auto& [name, value] : counters) {
    const std::string metric = SanitizeMetricName(name);
    out += "# TYPE " + metric + " counter\n";
    std::snprintf(buf, sizeof(buf), "%s_total%s %lld\n", metric.c_str(),
                  label_str.c_str(), static_cast<long long>(value));
    out += buf;
  }
  static const char* kQuantiles[] = {"0.5", "0.9", "0.95", "0.99"};
  static const double kQ[] = {0.50, 0.90, 0.95, 0.99};
  for (const auto& [name, h] : histograms) {
    const std::string metric = SanitizeMetricName(name);
    out += "# TYPE " + metric + " summary\n";
    for (int i = 0; i < 4; ++i) {
      std::snprintf(buf, sizeof(buf), "%s%s %.6g\n", metric.c_str(),
                    RenderLabelsPlus(labels, "quantile", kQuantiles[i]).c_str(),
                    h.Quantile(kQ[i]));
      out += buf;
    }
    std::snprintf(buf, sizeof(buf), "%s_sum%s %.6g\n%s_count%s %llu\n",
                  metric.c_str(), label_str.c_str(), h.sum, metric.c_str(),
                  label_str.c_str(), static_cast<unsigned long long>(h.count));
    out += buf;
  }
  out += "# EOF\n";
  return out;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\n  \"schema\": \"sqpr-metrics-v1\",\n  \"counters\": {";
  char buf[192];
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    std::snprintf(buf, sizeof(buf), "%s\n    \"%s\": %lld",
                  first ? "" : ",", name.c_str(),
                  static_cast<long long>(counter->value()));
    out += buf;
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    std::snprintf(
        buf, sizeof(buf),
        "%s\n    \"%s\": {\"count\": %zu, \"sum\": %.6g, \"mean\": %.6g, "
        "\"min\": %.6g, \"max\": %.6g, ",
        first ? "" : ",", name.c_str(), h->count(), h->sum(), h->mean(),
        h->min(), h->max());
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  "\"p50\": %.6g, \"p90\": %.6g, \"p95\": %.6g, "
                  "\"p99\": %.6g}",
                  h->Quantile(0.50), h->Quantile(0.90), h->Quantile(0.95),
                  h->Quantile(0.99));
    out += buf;
    first = false;
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

MetricsSnapshot MetricsRegistry::TakeSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->value();
  }
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.count = h->count();
    hs.sum = h->sum();
    hs.min = h->min();
    hs.max = h->max();
    hs.buckets.resize(Histogram::kNumBuckets);
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      hs.buckets[i] = h->bucket_count(i);
    }
    snap.histograms[name] = std::move(hs);
  }
  return snap;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace obs
}  // namespace sqpr
