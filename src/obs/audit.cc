#include "obs/audit.h"

#include <cstdio>

namespace sqpr {
namespace obs {

namespace {

/// %.6g matches the bench/metrics writers: enough precision for
/// latencies, stable across platforms for the values we emit.
void AppendDouble(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  *out += buf;
}

void AppendInt(std::string* out, long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  *out += buf;
}

void AppendHex(std::string* out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  *out += buf;
}

}  // namespace

uint64_t AuditJournal::Fnv1a(const std::string& s) {
  uint64_t h = 14695981039346656037ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

void AuditJournal::Append(AuditRecord record) {
  seqs_.push_back(record.speculative ? speculative_seq_++ : canonical_seq_++);
  records_.push_back(std::move(record));
}

std::string AuditJournal::ToJsonl(bool canonical) const {
  std::string out;
  out.reserve(records_.size() * 160 + 128);
  out += "{\"schema\":\"sqpr-audit-v1\",\"canonical\":";
  out += canonical ? "true" : "false";
  out += "}\n";
  for (size_t i = 0; i < records_.size(); ++i) {
    const AuditRecord& r = records_[i];
    if (canonical && r.speculative) continue;
    out += r.speculative ? "{\"sseq\":" : "{\"seq\":";
    AppendInt(&out, seqs_[i]);
    out += ",\"t_ms\":";
    AppendInt(&out, r.t_ms);
    out += ",\"kind\":\"";
    out += r.kind;  // reason codes are fixed identifiers, never escaped
    out += "\"";
    if (r.query >= 0) {
      out += ",\"query\":";
      AppendInt(&out, r.query);
    }
    if (r.host >= 0) {
      out += ",\"host\":";
      AppendInt(&out, r.host);
    }
    if (r.round >= 0) {
      out += ",\"round\":";
      AppendInt(&out, r.round);
    }
    if (r.detail >= 0) {
      out += ",\"detail\":";
      AppendInt(&out, r.detail);
    }
    if (r.aux >= 0) {
      out += ",\"aux\":";
      AppendInt(&out, r.aux);
    }
    if (!r.streams.empty()) {
      out += ",\"streams\":[";
      for (size_t k = 0; k < r.streams.size(); ++k) {
        if (k > 0) out += ",";
        AppendInt(&out, r.streams[k]);
      }
      out += "]";
    }
    if (r.pre_fp != 0) {
      out += ",\"pre\":{\"v\":";
      AppendInt(&out, static_cast<long long>(r.pre_version));
      out += ",\"s\":";
      AppendInt(&out, static_cast<long long>(r.pre_structure));
      out += ",\"fp\":\"";
      AppendHex(&out, r.pre_fp);
      out += "\"},\"post\":{\"v\":";
      AppendInt(&out, static_cast<long long>(r.post_version));
      out += ",\"s\":";
      AppendInt(&out, static_cast<long long>(r.post_structure));
      out += ",\"fp\":\"";
      AppendHex(&out, r.post_fp);
      out += "\"}";
    }
    if (!canonical &&
        (r.solve_ms >= 0.0 || r.commit_ms >= 0.0 || r.dispatch_id >= 0)) {
      out += ",\"wall\":{";
      bool first = true;
      if (r.solve_ms >= 0.0) {
        out += "\"solve_ms\":";
        AppendDouble(&out, r.solve_ms);
        first = false;
      }
      if (r.commit_ms >= 0.0) {
        if (!first) out += ",";
        out += "\"commit_ms\":";
        AppendDouble(&out, r.commit_ms);
        first = false;
      }
      if (r.dispatch_id >= 0) {
        if (!first) out += ",";
        out += "\"dispatch\":";
        AppendInt(&out, r.dispatch_id);
      }
      out += "}";
    }
    out += "}\n";
  }
  return out;
}

Status AuditJournal::WriteFile(const std::string& path,
                               bool canonical) const {
  const std::string jsonl = ToJsonl(canonical);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot write audit journal to " + path);
  }
  const size_t written = std::fwrite(jsonl.data(), 1, jsonl.size(), f);
  std::fclose(f);
  if (written != jsonl.size()) {
    return Status::Internal("short write to " + path);
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace sqpr
