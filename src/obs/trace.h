#ifndef SQPR_OBS_TRACE_H_
#define SQPR_OBS_TRACE_H_

// Flight-recorder tracing: bounded, lock-free per-thread span buffers
// drained on demand into Chrome trace_event JSON (loadable in Perfetto
// / chrome://tracing).
//
// Design constraints, in priority order:
//  * Zero mutexes on the emitting thread. A span emit is two
//    steady_clock reads plus a handful of relaxed atomic stores into a
//    thread-local ring slot; publication is one release store. The
//    event-loop thread and the solver workers never contend on
//    anything.
//  * Near-zero cost when tracing is off. The disabled fast path is a
//    single relaxed atomic load — the closed-loop bench gates the
//    events/s regression at < 3% (ARCHITECTURE.md §7 has the budget).
//  * Bounded memory. Each thread owns one fixed-capacity ring
//    (allocated lazily on its first traced span, never before); when
//    it wraps, the oldest spans are overwritten and counted as drops —
//    flight-recorder semantics: a drain always returns the most recent
//    window, plus per-thread drop counters.
//  * Torn reads are detected, not locked away. Every slot carries a
//    sequence stamp written (release) after the payload; a drain
//    running concurrently with emits skips slots whose stamp does not
//    match the record index it expects. All slot fields are relaxed
//    atomics, so a concurrent drain is race-free under TSan.
//
// Tracing never gates behavior: spans read the clocks (steady + the
// service's virtual clock tag) and write to private buffers. The
// determinism contract is pinned by a replay-property run with tracing
// enabled (tests/obs_test.cc).
//
// Usage:
//   void Solve() {
//     SQPR_TRACE_SPAN("milp/solve");          // RAII: emits on scope exit
//     ...
//   }
//   // with numeric args (names fixed at the call site, values per span):
//   SQPR_TRACE_SPAN_ARGS(span, "lp/simplex", "iterations", "rows");
//   ...
//   span.set_args(result.iterations, model.num_rows());
//
// Span names are '/'-separated taxonomy paths ("service/round.commit",
// "milp/cuts.separate"); the category Perfetto groups by is the first
// segment. docs/ARCHITECTURE.md §7 lists the full taxonomy.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace sqpr {
namespace obs {

/// One drained span, in logical (reader-side) form.
struct SpanRecord {
  uint32_t name_id = 0;
  uint32_t tid = 0;
  uint64_t start_ns = 0;  // relative to the recorder's enable time
  uint64_t dur_ns = 0;
  int64_t virt_ms = -1;   // service virtual clock at span start (-1: none)
  uint64_t args[2] = {0, 0};
};

/// Interned span metadata: name plus optional arg key names. Registered
/// once per call site (function-local static), so steady-state emits
/// never touch the intern table.
struct SpanMeta {
  std::string name;
  std::string cat;  // first '/' segment of name
  std::string arg_names[2];
};

/// Per-thread drain statistics (drop accounting is cumulative).
struct ThreadTraceStats {
  std::string thread_name;
  uint64_t emitted = 0;
  uint64_t dropped = 0;  // overwritten before any drain saw them
};

/// Process-wide flight recorder. All methods are safe to call from any
/// thread; Enable/Disable/Drain are expected from a coordinating thread
/// (tool main, test body) and may run concurrently with emitters.
class TraceRecorder {
 public:
  struct Options {
    /// Spans retained per thread; rounded up to a power of two. At 64
    /// bytes per slot the default keeps ~2 MiB per traced thread.
    size_t per_thread_capacity = 1 << 15;
  };

  static TraceRecorder& Get();

  /// Starts recording. Existing buffers are reset (head, drop counters
  /// and slot stamps cleared); buffers created later use `options`.
  /// Emits between Enable and Disable are recorded; everything else is
  /// the one-relaxed-load fast path.
  void Enable(const Options& options);
  void Enable() { Enable(Options()); }
  void Disable();
  static bool enabled() {
    return Get().enabled_.load(std::memory_order_relaxed);
  }

  /// Interns span metadata; returns a dense id. Never call per emit —
  /// the SQPR_TRACE_SPAN macros cache the id in a function-local
  /// static. Ids stay valid for the process lifetime.
  static uint32_t RegisterSpan(const char* name, const char* arg1 = nullptr,
                               const char* arg2 = nullptr);

  /// Names the calling thread in drained traces ("loop", "worker-2").
  /// Unnamed threads appear as "thread-<tid>".
  static void SetCurrentThreadName(const std::string& name);

  /// Tags subsequently emitted spans with the service's virtual clock.
  /// A process-wide debugging tag (last writer wins when several
  /// services coexist, e.g. in tests) — never read back by any control
  /// path.
  static void SetVirtualTimeMs(int64_t t_ms) {
    Get().virt_ms_.store(t_ms, std::memory_order_relaxed);
  }

  /// Emits one finished span for the calling thread. Called by
  /// SpanScope; public for tests that exercise wrap/drop behavior
  /// directly.
  void Emit(uint32_t name_id, uint64_t start_ns, uint64_t dur_ns,
            int64_t virt_ms, uint64_t arg1, uint64_t arg2);

  /// Nanoseconds since the recorder's enable point (steady clock).
  uint64_t NowNs() const;
  int64_t virtual_time_ms() const {
    return virt_ms_.load(std::memory_order_relaxed);
  }

  /// Collects the retained window of every thread buffer (most recent
  /// spans first come out oldest-first per thread). Safe concurrently
  /// with emitters: in-flight slots are skipped via their stamps.
  /// Cumulative per-thread drop counters are updated as a side effect.
  std::vector<SpanRecord> Drain(std::vector<ThreadTraceStats>* stats = nullptr);

  /// Drains and renders Chrome trace_event JSON:
  ///   {"traceEvents": [{"ph":"X","name":...,"cat":...,"ts":...,
  ///     "dur":...,"pid":1,"tid":N,"args":{...}}, ...],
  ///    "displayTimeUnit":"ms",
  ///    "otherData":{"dropped_spans": ...}}
  /// plus one "M" thread_name metadata event per thread. ts/dur are
  /// microseconds (fractional); args carry vclock_ms and the span's
  /// registered arg keys.
  std::string ChromeTraceJson();

  /// ChromeTraceJson() to a file.
  Status WriteChromeTrace(const std::string& path);

  const SpanMeta& span_meta(uint32_t id) const;  // test/render access

 private:
  friend class SpanScope;
  class ThreadBuffer;

  TraceRecorder();
  ThreadBuffer* BufferForThisThread();

  std::atomic<bool> enabled_{false};
  std::atomic<int64_t> virt_ms_{-1};
  std::atomic<uint64_t> base_ns_{0};

  struct Impl;
  Impl* impl_;  // intentionally leaked: emitters may outlive main's exit
};

/// RAII span scope. Construct via the macros below; on destruction the
/// span is emitted to the calling thread's ring (if tracing is on and
/// was on at construction).
class SpanScope {
 public:
  explicit SpanScope(uint32_t name_id) {
    if (!TraceRecorder::enabled()) return;
    name_id_ = name_id;
    TraceRecorder& rec = TraceRecorder::Get();
    virt_ms_ = rec.virtual_time_ms();
    start_ns_ = rec.NowNs();
    active_ = true;
  }
  ~SpanScope() {
    if (!active_) return;
    TraceRecorder& rec = TraceRecorder::Get();
    rec.Emit(name_id_, start_ns_, rec.NowNs() - start_ns_, virt_ms_, args_[0],
             args_[1]);
  }

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  /// Attaches numeric args (rendered under the keys given at
  /// registration). Call any time before scope exit.
  void set_args(uint64_t a1, uint64_t a2 = 0) {
    args_[0] = a1;
    args_[1] = a2;
  }

  bool active() const { return active_; }

 private:
  bool active_ = false;
  uint32_t name_id_ = 0;
  int64_t virt_ms_ = -1;
  uint64_t start_ns_ = 0;
  uint64_t args_[2] = {0, 0};
};

#define SQPR_TRACE_CONCAT_INNER(a, b) a##b
#define SQPR_TRACE_CONCAT(a, b) SQPR_TRACE_CONCAT_INNER(a, b)

/// Anonymous span covering the rest of the enclosing scope.
#define SQPR_TRACE_SPAN(name)                                         \
  static const uint32_t SQPR_TRACE_CONCAT(sqpr_span_id_, __LINE__) =  \
      ::sqpr::obs::TraceRecorder::RegisterSpan(name);                 \
  ::sqpr::obs::SpanScope SQPR_TRACE_CONCAT(sqpr_span_, __LINE__)(     \
      SQPR_TRACE_CONCAT(sqpr_span_id_, __LINE__))

/// Named span scope with up to two numeric args: `var.set_args(...)`.
#define SQPR_TRACE_SPAN_ARGS(var, name, arg1, arg2)          \
  static const uint32_t var##_sqpr_id =                      \
      ::sqpr::obs::TraceRecorder::RegisterSpan(name, arg1, arg2); \
  ::sqpr::obs::SpanScope var(var##_sqpr_id)

}  // namespace obs
}  // namespace sqpr

#endif  // SQPR_OBS_TRACE_H_
