#include "model/cost_model.h"

namespace sqpr {
namespace {

uint64_t MixHash(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return h;
}

}  // namespace

double CostModel::JoinSelectivity(
    const std::vector<int32_t>& sorted_leaves) const {
  uint64_t h = selectivity_seed;
  for (int32_t leaf : sorted_leaves) {
    h = MixHash(h, static_cast<uint64_t>(leaf) + 1);
  }
  const double unit =
      static_cast<double>(h >> 11) * 0x1.0p-53;  // uniform in [0,1)
  return selectivity_min + (selectivity_max - selectivity_min) * unit;
}

double CostModel::JoinOutputRate(const std::vector<int32_t>& sorted_leaves,
                                 double sum_leaf_base_rates) const {
  return JoinSelectivity(sorted_leaves) * sum_leaf_base_rates;
}

double CostModel::OperatorCpuCost(double sum_input_rates) const {
  return cpu_per_mbps * sum_input_rates;
}

double CostModel::OperatorMemMb(double sum_input_rates) const {
  return mem_per_mbps * sum_input_rates;
}

}  // namespace sqpr
