#ifndef SQPR_MODEL_CATALOG_H_
#define SQPR_MODEL_CATALOG_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/status.h"
#include "model/cost_model.h"
#include "model/ids.h"

namespace sqpr {

/// Relational operator kinds supported by the planner model. The paper's
/// model is semantics-agnostic (§II-A); joins are what the evaluation
/// workload uses, filters/projections exist for the engine examples.
enum class OpKind : uint8_t {
  kJoin,
  kFilter,
  kProject,
};

const char* OpKindName(OpKind kind);

/// Immutable description of a stream (base or composite).
struct StreamInfo {
  StreamId id = kInvalidStream;
  bool is_base = false;
  /// Host where a base stream is injected (S0_h membership); kInvalidHost
  /// for composite streams.
  HostId source_host = kInvalidHost;
  /// Average data rate ̺_s in Mbps.
  double rate_mbps = 0.0;
  /// Sorted base-leaf set: {id} for a base stream, the union of input
  /// leaves for composites. Two streams are equivalent (§II-C) iff their
  /// kind-tagged leaf signature matches; the catalog hash-conses on it.
  std::vector<StreamId> leaves;
  std::string name;
};

/// Immutable description of an operator o = (S_o, s_o, γ_o).
struct OperatorInfo {
  OperatorId id = kInvalidOperator;
  OpKind kind = OpKind::kJoin;
  /// Input streams S_o (sorted).
  std::vector<StreamId> inputs;
  /// Output stream s_o.
  StreamId output = kInvalidStream;
  /// Computational cost γ_o in CPU units.
  double cpu_cost = 0.0;
  /// Window-state memory in MB (the §VII memory-resource extension).
  double mem_mb = 0.0;
  /// For unary operators: output rate as a fraction of the input rate
  /// (selectivity). Unused for joins, whose output rate is derived from
  /// the leaf set via the cost model.
  double output_rate_fraction = 1.0;
};

/// The closure (S(q), O(q)) of §IV-A: every stream and operator that can
/// appear in some query plan for q, determined recursively.
struct Closure {
  std::vector<StreamId> streams;      // includes q itself and base leaves
  std::vector<OperatorId> operators;  // every producer of any closure stream
};

/// Append-only store with stable addresses, lock-free reads and
/// externally serialised appends — the backing the catalog needs so that
/// planner worker threads can read already-interned entries while the
/// event-loop thread interns new ones.
///
/// Entries live in fixed-size blocks reached through a fixed spine of
/// atomic block pointers, so a published `const T&` is never moved or
/// reallocated. Publication protocol: the writer fully constructs the
/// entry, then release-stores the new size; readers acquire-load the
/// size (inside operator[]'s bounds check), which establishes the
/// happens-before edge making the entry's contents visible. Writers must
/// be serialised by the owner (the catalog's intern mutex); published
/// entries must not be mutated while readers are live (see
/// Catalog::UpdateBaseRate for the one exclusive-mode exception).
template <typename T, int kBlockBits = 10, int kSpineBits = 13>
class StableStore {
 public:
  static constexpr size_t kBlockSize = size_t{1} << kBlockBits;
  static constexpr size_t kSpineSize = size_t{1} << kSpineBits;

  StableStore() = default;
  ~StableStore() {
    for (auto& slot : spine_) delete[] slot.load(std::memory_order_relaxed);
  }

  StableStore(const StableStore&) = delete;
  StableStore& operator=(const StableStore&) = delete;

  size_t size() const { return size_.load(std::memory_order_acquire); }

  /// True when the store cannot accept another entry. Writers must test
  /// this *before* appending: NextSlot's capacity check is a last-resort
  /// invariant, not an admission policy.
  bool Full() const { return size() >= capacity_limit_; }

  size_t capacity() const { return capacity_limit_; }

  /// Shrinks the admission capacity so tests can exercise graceful
  /// exhaustion without interning millions of entries. Never grows past
  /// the physical spine capacity. Owner-serialised like appends; only
  /// call before concurrent readers exist.
  void set_capacity_for_testing(size_t limit) {
    capacity_limit_ = std::min(limit, kBlockSize * kSpineSize);
  }

  /// Lock-free read of a published entry. The acquire load in the bounds
  /// check synchronises with the writer's release publication.
  const T& operator[](size_t i) const {
    SQPR_CHECK(i < size()) << "StableStore index out of range";
    return spine_[i >> kBlockBits].load(std::memory_order_acquire)
        [i & (kBlockSize - 1)];
  }

  /// Appends a fully constructed entry (writer side; callers serialise).
  T& Append(T value) {
    T& slot = NextSlot();
    slot = std::move(value);
    Publish();
    return slot;
  }

  /// Appends a default-constructed entry — for non-movable Ts such as
  /// ProducerList (writer side; callers serialise).
  T& AppendDefault() {
    T& slot = NextSlot();
    Publish();
    return slot;
  }

  /// Writer-side mutable access to a published entry. Only legal when
  /// the owner guarantees no concurrent readers (exclusive phases like
  /// Catalog::UpdateBaseRate) or when the mutation is itself internally
  /// synchronised (ProducerList::Append).
  T& Mutable(size_t i) { return const_cast<T&>((*this)[i]); }

 private:
  T& NextSlot() {
    const size_t i = size_.load(std::memory_order_relaxed);
    SQPR_CHECK(i < capacity_limit_) << "StableStore capacity";
    T* block = spine_[i >> kBlockBits].load(std::memory_order_relaxed);
    if (block == nullptr) {
      block = new T[kBlockSize];
      spine_[i >> kBlockBits].store(block, std::memory_order_release);
    }
    return block[i & (kBlockSize - 1)];
  }

  void Publish() {
    size_.store(size_.load(std::memory_order_relaxed) + 1,
                std::memory_order_release);
  }

  std::array<std::atomic<T*>, kSpineSize> spine_{};
  std::atomic<size_t> size_{0};
  size_t capacity_limit_ = kBlockSize * kSpineSize;
};

/// Append-only list of the operators producing one stream, readable
/// lock-free while the (serialised) interning writer appends. Chunked
/// linked list: chunks are never moved, the element count is the
/// publication point (release store; acquire load in size()).
class ProducerList {
 private:
  struct Node;  // defined below; iterators hold pointers into the chain

 public:
  static constexpr size_t kChunk = 8;

  ProducerList() = default;
  ~ProducerList();

  ProducerList(const ProducerList&) = delete;
  ProducerList& operator=(const ProducerList&) = delete;

  size_t size() const { return size_.load(std::memory_order_acquire); }
  bool empty() const { return size() == 0; }
  OperatorId operator[](size_t i) const;
  OperatorId front() const { return (*this)[0]; }

  /// Appends a producer (writer side; serialised by the intern mutex).
  void Append(OperatorId op);

  /// Forward iteration over the producers published at begin() time.
  class const_iterator {
   public:
    OperatorId operator*() const { return node_->ops[idx_]; }
    const_iterator& operator++() {
      --remaining_;
      if (++idx_ == kChunk && remaining_ > 0) {
        node_ = node_->next.load(std::memory_order_acquire);
        idx_ = 0;
      }
      return *this;
    }
    bool operator!=(const const_iterator& other) const {
      return remaining_ != other.remaining_;
    }

   private:
    friend class ProducerList;
    const_iterator(const Node* node, size_t remaining)
        : node_(node), idx_(0), remaining_(remaining) {}
    const Node* node_;
    size_t idx_;
    size_t remaining_;
  };

  const_iterator begin() const { return const_iterator(&head_, size()); }
  const_iterator end() const { return const_iterator(nullptr, 0); }

 private:
  struct Node {
    std::array<OperatorId, kChunk> ops{};
    std::atomic<Node*> next{nullptr};
  };

  Node head_;
  Node* tail_ = &head_;  // writer-only
  std::atomic<size_t> size_{0};
};

/// Registry of all streams and operators known to the DSPS, with
/// hash-consed canonical identity.
///
/// Canonicalisation makes reuse discovery (§II-C) a dictionary lookup:
/// the join of leaf set L is one StreamId regardless of join order, while
/// each join *order* contributes distinct operators all producing that
/// one stream. The SQPR model's availability constraint (III.5a) then
/// naturally lets the solver pick any producer — or reuse the stream if a
/// previous query already materialised it.
///
/// Thread-safety contract (the continuous planning service's tentpole —
/// see docs/ARCHITECTURE.md §3):
///  * *Interning* (AddBaseStream, JoinOperator, CanonicalJoinStream,
///    UnaryOperator, JoinClosure) is internally synchronised by a mutex
///    over the canonical maps and may be called from any thread. New
///    entries are published atomically, after they are fully built.
///  * *Reads of already-interned entries* (stream(), op(),
///    ProducersOf(), num_streams(), num_operators(), SumLeafRates())
///    are lock-free and may run concurrently with interning. A reader
///    may observe a catalog size smaller than the writer's — never a
///    partially constructed entry.
///  * UpdateBaseRate mutates *published* entries (rates, costs) and
///    therefore requires exclusive access: callers must quiesce every
///    concurrent reader first (the planning service retires the
///    in-flight re-planning round before monitor reports install rates).
///
/// Note that interning safety is distinct from *determinism*: StreamIds
/// are assigned in interning order, so replayable systems must intern
/// only at deterministic points (the service interns on the loop thread
/// — WarmCatalog before dispatch/solve — and never from workers).
///
/// Capacity: the stable stores are bounded (kBlockSize * kSpineSize =
/// 8M streams and 8M operators — roughly a GB of operator metadata,
/// far past the point where solves stop being practical) and entries
/// are never reclaimed. Exhaustion is a *graceful* condition, not an
/// abort: interning entry points return kInvalidStream /
/// ResourceExhausted when a store is full, and the planning service
/// turns that into a reason-coded admission rejection
/// (ServiceStats::catalog_exhausted). Catalog growth is driven by
/// *distinct* query leaf sets (an 8-leaf closure interns ~3k
/// operators), so a service intending to run against unbounded novel
/// workloads needs catalog GC first — a ROADMAP item.
/// set_capacity_for_testing shrinks the limits so tests can reach the
/// condition cheaply.
class Catalog {
 public:
  explicit Catalog(CostModel cost_model) : cost_model_(cost_model) {}

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Registers a base stream injected at `source_host` with rate ̺.
  /// Returns kInvalidStream when the stream store is at capacity.
  StreamId AddBaseStream(HostId source_host, double rate_mbps,
                         std::string name = "");

  /// Canonical stream for the join over the union of the two inputs' leaf
  /// sets, along with the operator performing this particular (left,
  /// right) combination. Creates either lazily; returns the existing ids
  /// when an equivalent stream/operator is already registered. Inputs
  /// must have disjoint leaf sets.
  Result<OperatorId> JoinOperator(StreamId left, StreamId right);

  /// Canonical join stream over explicit base leaves (must be >= 2 and
  /// distinct base streams). Does not create any operator.
  Result<StreamId> CanonicalJoinStream(std::vector<StreamId> base_leaves);

  /// Registers (or finds) a filter/project over `input` with a semantic
  /// discriminator `tag` (two filters with the same tag on the same input
  /// are the same deterministic operator, hence shareable; §II-C limits
  /// sharing to well-known deterministic operators).
  Result<OperatorId> UnaryOperator(OpKind kind, StreamId input, int32_t tag,
                                   double output_rate_fraction);

  /// Expands S(q)/O(q) for a canonical join stream: all subset joins of
  /// its leaf set and all binary split operators producing them. The
  /// expansion is memoised; repeated calls are cheap. For base streams
  /// the closure is the stream itself.
  Result<Closure> JoinClosure(StreamId stream);

  const StreamInfo& stream(StreamId id) const { return streams_[id]; }
  const OperatorInfo& op(OperatorId id) const { return operators_[id]; }
  int num_streams() const { return static_cast<int>(streams_.size()); }
  int num_operators() const { return static_cast<int>(operators_.size()); }

  /// All operators producing stream s ({o : s_o = s}). For a stream
  /// reached through a warmed join closure the list is complete and
  /// stable; in general it may still be growing (lock-free iteration
  /// sees a published prefix).
  const ProducerList& ProducersOf(StreamId s) const { return producers_[s]; }

  const CostModel& cost_model() const { return cost_model_; }

  /// Sum of base rates of a leaf set (helper for rate derivations).
  double SumLeafRates(const std::vector<StreamId>& leaves) const;

  /// §IV-B adaptive planning: replaces a base stream's rate estimate
  /// with a measured value and recomputes every dependent composite
  /// stream rate and operator cost (composite rates are functions of
  /// the base leaf rates, so the recomputation is exact). Callers
  /// holding Deployments over this catalog must refresh their resource
  /// ledgers afterwards (Deployment::RecomputeAggregates).
  ///
  /// Unlike interning this mutates already-published entries, so it
  /// requires *exclusive* access: no concurrent reader or interner.
  Status UpdateBaseRate(StreamId base, double new_rate_mbps);

  /// Monotonic counter bumped by every successful UpdateBaseRate. Rates
  /// and operator costs feed the SQPR model's objective coefficients and
  /// resource rows, so any cache keyed on model *structure* must include
  /// this epoch: a rate install invalidates every cached model built
  /// from the old rates. Lock-free to read (planner hot path).
  uint64_t rate_epoch() const {
    return rate_epoch_.load(std::memory_order_acquire);
  }

  /// Shrinks both stores' admission capacity (see
  /// StableStore::set_capacity_for_testing). The producer store tracks
  /// the stream store one-to-one, so it gets the stream limit too.
  void set_capacity_for_testing(size_t max_streams, size_t max_operators) {
    std::lock_guard<std::mutex> lock(intern_mu_);
    streams_.set_capacity_for_testing(max_streams);
    producers_.set_capacity_for_testing(max_streams);
    operators_.set_capacity_for_testing(max_operators);
  }

 private:
  // *Locked variants assume intern_mu_ is held; the public entry points
  // take the lock once (JoinClosure recurses, so the public methods must
  // not re-lock).
  StreamId InternJoinStreamLocked(std::vector<StreamId> sorted_leaves);
  Result<OperatorId> JoinOperatorLocked(StreamId left, StreamId right);
  Result<Closure> JoinClosureLocked(StreamId stream);

  CostModel cost_model_;

  // Stable, lock-free-readable entry stores (see StableStore).
  StableStore<StreamInfo> streams_;
  StableStore<OperatorInfo> operators_;
  StableStore<ProducerList> producers_;  // by output stream

  /// Serialises interning: guards the canonical maps below and the
  /// append side of the stores. Lock-free readers never take it.
  mutable std::mutex intern_mu_;

  std::atomic<uint64_t> rate_epoch_{0};

  // Canonical maps. Keys are (kind-tagged) signatures.
  std::map<std::vector<StreamId>, StreamId> join_stream_by_leaves_;
  std::map<std::vector<StreamId>, OperatorId> join_op_by_inputs_;
  std::map<std::pair<std::pair<int, StreamId>, int32_t>, StreamId>
      unary_stream_by_sig_;
  std::map<StreamId, Closure> closure_cache_;
};

}  // namespace sqpr

#endif  // SQPR_MODEL_CATALOG_H_
