#ifndef SQPR_MODEL_CATALOG_H_
#define SQPR_MODEL_CATALOG_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "model/cost_model.h"
#include "model/ids.h"

namespace sqpr {

/// Relational operator kinds supported by the planner model. The paper's
/// model is semantics-agnostic (§II-A); joins are what the evaluation
/// workload uses, filters/projections exist for the engine examples.
enum class OpKind : uint8_t {
  kJoin,
  kFilter,
  kProject,
};

const char* OpKindName(OpKind kind);

/// Immutable description of a stream (base or composite).
struct StreamInfo {
  StreamId id = kInvalidStream;
  bool is_base = false;
  /// Host where a base stream is injected (S0_h membership); kInvalidHost
  /// for composite streams.
  HostId source_host = kInvalidHost;
  /// Average data rate ̺_s in Mbps.
  double rate_mbps = 0.0;
  /// Sorted base-leaf set: {id} for a base stream, the union of input
  /// leaves for composites. Two streams are equivalent (§II-C) iff their
  /// kind-tagged leaf signature matches; the catalog hash-conses on it.
  std::vector<StreamId> leaves;
  std::string name;
};

/// Immutable description of an operator o = (S_o, s_o, γ_o).
struct OperatorInfo {
  OperatorId id = kInvalidOperator;
  OpKind kind = OpKind::kJoin;
  /// Input streams S_o (sorted).
  std::vector<StreamId> inputs;
  /// Output stream s_o.
  StreamId output = kInvalidStream;
  /// Computational cost γ_o in CPU units.
  double cpu_cost = 0.0;
  /// Window-state memory in MB (the §VII memory-resource extension).
  double mem_mb = 0.0;
  /// For unary operators: output rate as a fraction of the input rate
  /// (selectivity). Unused for joins, whose output rate is derived from
  /// the leaf set via the cost model.
  double output_rate_fraction = 1.0;
};

/// The closure (S(q), O(q)) of §IV-A: every stream and operator that can
/// appear in some query plan for q, determined recursively.
struct Closure {
  std::vector<StreamId> streams;      // includes q itself and base leaves
  std::vector<OperatorId> operators;  // every producer of any closure stream
};

/// Registry of all streams and operators known to the DSPS, with
/// hash-consed canonical identity.
///
/// Canonicalisation makes reuse discovery (§II-C) a dictionary lookup:
/// the join of leaf set L is one StreamId regardless of join order, while
/// each join *order* contributes distinct operators all producing that
/// one stream. The SQPR model's availability constraint (III.5a) then
/// naturally lets the solver pick any producer — or reuse the stream if a
/// previous query already materialised it.
class Catalog {
 public:
  explicit Catalog(CostModel cost_model) : cost_model_(cost_model) {}

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Registers a base stream injected at `source_host` with rate ̺.
  StreamId AddBaseStream(HostId source_host, double rate_mbps,
                         std::string name = "");

  /// Canonical stream for the join over the union of the two inputs' leaf
  /// sets, along with the operator performing this particular (left,
  /// right) combination. Creates either lazily; returns the existing ids
  /// when an equivalent stream/operator is already registered. Inputs
  /// must have disjoint leaf sets.
  Result<OperatorId> JoinOperator(StreamId left, StreamId right);

  /// Canonical join stream over explicit base leaves (must be >= 2 and
  /// distinct base streams). Does not create any operator.
  Result<StreamId> CanonicalJoinStream(std::vector<StreamId> base_leaves);

  /// Registers (or finds) a filter/project over `input` with a semantic
  /// discriminator `tag` (two filters with the same tag on the same input
  /// are the same deterministic operator, hence shareable; §II-C limits
  /// sharing to well-known deterministic operators).
  Result<OperatorId> UnaryOperator(OpKind kind, StreamId input, int32_t tag,
                                   double output_rate_fraction);

  /// Expands S(q)/O(q) for a canonical join stream: all subset joins of
  /// its leaf set and all binary split operators producing them. The
  /// expansion is memoised; repeated calls are cheap. For base streams
  /// the closure is the stream itself.
  Result<Closure> JoinClosure(StreamId stream);

  const StreamInfo& stream(StreamId id) const { return streams_[id]; }
  const OperatorInfo& op(OperatorId id) const { return operators_[id]; }
  int num_streams() const { return static_cast<int>(streams_.size()); }
  int num_operators() const { return static_cast<int>(operators_.size()); }

  /// All operators producing stream s ({o : s_o = s}).
  const std::vector<OperatorId>& ProducersOf(StreamId s) const;

  const CostModel& cost_model() const { return cost_model_; }

  /// Sum of base rates of a leaf set (helper for rate derivations).
  double SumLeafRates(const std::vector<StreamId>& leaves) const;

  /// §IV-B adaptive planning: replaces a base stream's rate estimate
  /// with a measured value and recomputes every dependent composite
  /// stream rate and operator cost (composite rates are functions of
  /// the base leaf rates, so the recomputation is exact). Callers
  /// holding Deployments over this catalog must refresh their resource
  /// ledgers afterwards (Deployment::RecomputeAggregates).
  Status UpdateBaseRate(StreamId base, double new_rate_mbps);

 private:
  StreamId InternJoinStream(std::vector<StreamId> sorted_leaves);

  CostModel cost_model_;
  std::vector<StreamInfo> streams_;
  std::vector<OperatorInfo> operators_;
  std::vector<std::vector<OperatorId>> producers_;  // by output stream

  // Canonical maps. Keys are (kind-tagged) signatures.
  std::map<std::vector<StreamId>, StreamId> join_stream_by_leaves_;
  std::map<std::vector<StreamId>, OperatorId> join_op_by_inputs_;
  std::map<std::pair<std::pair<int, StreamId>, int32_t>, StreamId>
      unary_stream_by_sig_;
  std::map<StreamId, Closure> closure_cache_;
};

}  // namespace sqpr

#endif  // SQPR_MODEL_CATALOG_H_
