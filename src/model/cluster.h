#ifndef SQPR_MODEL_CLUSTER_H_
#define SQPR_MODEL_CLUSTER_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/status.h"
#include "model/ids.h"

namespace sqpr {

/// Per-host resources of §II-B: computational budget ζ_h and NIC
/// bandwidth β_h (outgoing; the paper's (III.6b) also bounds incoming
/// traffic by the same NIC figure, which we keep as a separate knob).
struct HostSpec {
  double cpu = 1.0;          // ζ_h, CPU units
  double nic_out_mbps = 0.0; // β_h
  double nic_in_mbps = 0.0;  // incoming bound used by (III.6b)
  std::string name;
  /// Memory budget in MB (§VII extension). Unlimited by default, so
  /// memory only participates in planning when explicitly configured.
  double mem_mb = std::numeric_limits<double>::infinity();
};

/// The DSPS host set with pairwise link capacities κ_hm.
///
/// Links default to a uniform full-bisection capacity (the paper's
/// simulation uses 1 Gbps everywhere); individual links can be overridden
/// to model heterogeneous topologies.
class Cluster {
 public:
  /// Uniform cluster: `num_hosts` identical hosts, all links at
  /// `link_mbps`.
  Cluster(int num_hosts, const HostSpec& host, double link_mbps);

  /// Heterogeneous cluster from explicit specs; links start uniform.
  Cluster(std::vector<HostSpec> hosts, double link_mbps);

  int num_hosts() const { return static_cast<int>(hosts_.size()); }
  const HostSpec& host(HostId h) const { return hosts_[h]; }

  /// κ_hm; h == m returns +inf conceptually but self-links are never used
  /// by the planner, so we return 0 to catch accidental self-flows.
  double link_mbps(HostId from, HostId to) const;

  /// Overrides the capacity of one directed link.
  void SetLink(HostId from, HostId to, double mbps);

  /// Replaces one host's resource budgets in place. The planning service
  /// models host failure/rejoin by swapping a host's spec for an
  /// all-zero one and back — committed state indexed by HostId stays
  /// stable, while every §III capacity constraint immediately forbids
  /// new work on the failed host.
  void SetHostSpec(HostId h, const HostSpec& spec);

  /// Scales every host's CPU budget (fig. 5(b) resource sweeps).
  void ScaleCpu(double factor);
  /// Scales every NIC and link capacity.
  void ScaleBandwidth(double factor);

  double TotalCpu() const;
  double TotalNicOut() const;
  double TotalLinkCapacity() const;

  /// Monotonic counter bumped by every spec mutation (SetLink,
  /// SetHostSpec, ScaleCpu, ScaleBandwidth). Host/link capacities shape
  /// the SQPR model's rows, bounds and default objective weights, so
  /// model caches key on this epoch; failure/rejoin (spec swaps) and
  /// resource sweeps invalidate cached models automatically. Cluster
  /// mutations happen only on quiesced barriers, so a plain counter
  /// suffices.
  uint64_t spec_epoch() const { return spec_epoch_; }

 private:
  std::vector<HostSpec> hosts_;
  double default_link_mbps_;
  // Sparse overrides keyed by from * num_hosts + to.
  std::vector<std::pair<int64_t, double>> link_overrides_;
  uint64_t spec_epoch_ = 0;
};

}  // namespace sqpr

#endif  // SQPR_MODEL_CLUSTER_H_
