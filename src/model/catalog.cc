#include "model/catalog.h"

#include <algorithm>
#include <set>

#include "common/logging.h"

namespace sqpr {

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kJoin:
      return "join";
    case OpKind::kFilter:
      return "filter";
    case OpKind::kProject:
      return "project";
  }
  return "unknown";
}

// ---- ProducerList -----------------------------------------------------

ProducerList::~ProducerList() {
  Node* node = head_.next.load(std::memory_order_relaxed);
  while (node != nullptr) {
    Node* next = node->next.load(std::memory_order_relaxed);
    delete node;
    node = next;
  }
}

OperatorId ProducerList::operator[](size_t i) const {
  SQPR_CHECK(i < size()) << "producer index out of range";
  const Node* node = &head_;
  while (i >= kChunk) {
    node = node->next.load(std::memory_order_acquire);
    i -= kChunk;
  }
  return node->ops[i];
}

void ProducerList::Append(OperatorId op) {
  const size_t i = size_.load(std::memory_order_relaxed);
  if (i > 0 && i % kChunk == 0) {
    Node* node = new Node;
    tail_->next.store(node, std::memory_order_release);
    tail_ = node;
  }
  tail_->ops[i % kChunk] = op;
  // Publication point: readers that acquire a size covering slot i also
  // see the slot's contents (and the chunk link stored above).
  size_.store(i + 1, std::memory_order_release);
}

// ---- Catalog ----------------------------------------------------------

StreamId Catalog::AddBaseStream(HostId source_host, double rate_mbps,
                                std::string name) {
  SQPR_CHECK(rate_mbps > 0) << "base stream needs a positive rate";
  std::lock_guard<std::mutex> lock(intern_mu_);
  if (streams_.Full()) return kInvalidStream;
  StreamInfo info;
  info.id = static_cast<StreamId>(streams_.size());
  info.is_base = true;
  info.source_host = source_host;
  info.rate_mbps = rate_mbps;
  info.leaves = {info.id};
  info.name = name.empty() ? "base" + std::to_string(info.id) : std::move(name);
  const StreamId id = info.id;
  streams_.Append(std::move(info));
  producers_.AppendDefault();
  return id;
}

double Catalog::SumLeafRates(const std::vector<StreamId>& leaves) const {
  double total = 0.0;
  for (StreamId leaf : leaves) {
    SQPR_CHECK(streams_[leaf].is_base);
    total += streams_[leaf].rate_mbps;
  }
  return total;
}

StreamId Catalog::InternJoinStreamLocked(std::vector<StreamId> sorted_leaves) {
  auto it = join_stream_by_leaves_.find(sorted_leaves);
  if (it != join_stream_by_leaves_.end()) return it->second;

  // Graceful exhaustion: finding an existing stream (above) always
  // works; only *new* interning is refused.
  if (streams_.Full()) return kInvalidStream;

  StreamInfo info;
  info.id = static_cast<StreamId>(streams_.size());
  info.is_base = false;
  info.rate_mbps = cost_model_.JoinOutputRate(sorted_leaves,
                                              SumLeafRates(sorted_leaves));
  info.name = "join{";
  for (size_t i = 0; i < sorted_leaves.size(); ++i) {
    if (i > 0) info.name += ",";
    info.name += std::to_string(sorted_leaves[i]);
  }
  info.name += "}";
  info.leaves = sorted_leaves;
  const StreamId id = info.id;
  streams_.Append(std::move(info));
  producers_.AppendDefault();
  join_stream_by_leaves_.emplace(std::move(sorted_leaves), id);
  return id;
}

Result<StreamId> Catalog::CanonicalJoinStream(
    std::vector<StreamId> base_leaves) {
  std::sort(base_leaves.begin(), base_leaves.end());
  if (base_leaves.size() < 2) {
    return Status::InvalidArgument("join needs at least two leaves");
  }
  if (std::adjacent_find(base_leaves.begin(), base_leaves.end()) !=
      base_leaves.end()) {
    return Status::InvalidArgument("join leaves must be distinct");
  }
  std::lock_guard<std::mutex> lock(intern_mu_);
  for (StreamId leaf : base_leaves) {
    if (leaf < 0 || leaf >= num_streams() || !streams_[leaf].is_base) {
      return Status::InvalidArgument("leaf " + std::to_string(leaf) +
                                     " is not a base stream");
    }
  }
  const StreamId id = InternJoinStreamLocked(std::move(base_leaves));
  if (id == kInvalidStream) {
    return Status::ResourceExhausted("catalog stream store is full");
  }
  return id;
}

Result<OperatorId> Catalog::JoinOperatorLocked(StreamId left, StreamId right) {
  if (left < 0 || left >= num_streams() || right < 0 ||
      right >= num_streams()) {
    return Status::InvalidArgument("unknown join input stream");
  }
  const StreamInfo& l = streams_[left];
  const StreamInfo& r = streams_[right];

  std::vector<StreamId> leaves;
  leaves.reserve(l.leaves.size() + r.leaves.size());
  std::merge(l.leaves.begin(), l.leaves.end(), r.leaves.begin(),
             r.leaves.end(), std::back_inserter(leaves));
  if (std::adjacent_find(leaves.begin(), leaves.end()) != leaves.end()) {
    return Status::InvalidArgument(
        "join inputs must have disjoint base-leaf sets");
  }

  std::vector<StreamId> inputs = {left, right};
  std::sort(inputs.begin(), inputs.end());
  auto it = join_op_by_inputs_.find(inputs);
  if (it != join_op_by_inputs_.end()) return it->second;

  if (operators_.Full()) {
    return Status::ResourceExhausted("catalog operator store is full");
  }
  const StreamId output = InternJoinStreamLocked(leaves);
  if (output == kInvalidStream) {
    return Status::ResourceExhausted("catalog stream store is full");
  }

  OperatorInfo op;
  op.id = static_cast<OperatorId>(operators_.size());
  op.kind = OpKind::kJoin;
  op.inputs = inputs;
  op.output = output;
  op.cpu_cost = cost_model_.OperatorCpuCost(streams_[left].rate_mbps +
                                            streams_[right].rate_mbps);
  op.mem_mb = cost_model_.OperatorMemMb(streams_[left].rate_mbps +
                                        streams_[right].rate_mbps);
  const OperatorId id = op.id;
  // Publication order matters for lock-free readers: the operator entry
  // first (so a producer list never names an unpublished operator), then
  // the producer-list append.
  operators_.Append(std::move(op));
  producers_.Mutable(output).Append(id);
  join_op_by_inputs_.emplace(std::move(inputs), id);
  return id;
}

Result<OperatorId> Catalog::JoinOperator(StreamId left, StreamId right) {
  std::lock_guard<std::mutex> lock(intern_mu_);
  return JoinOperatorLocked(left, right);
}

Result<OperatorId> Catalog::UnaryOperator(OpKind kind, StreamId input,
                                          int32_t tag,
                                          double output_rate_fraction) {
  if (kind == OpKind::kJoin) {
    return Status::InvalidArgument("use JoinOperator for joins");
  }
  if (output_rate_fraction <= 0.0 || output_rate_fraction > 1.0) {
    return Status::InvalidArgument("output fraction must be in (0, 1]");
  }
  std::lock_guard<std::mutex> lock(intern_mu_);
  if (input < 0 || input >= num_streams()) {
    return Status::InvalidArgument("unknown input stream");
  }
  const auto sig = std::make_pair(
      std::make_pair(static_cast<int>(kind), input), tag);
  auto it = unary_stream_by_sig_.find(sig);
  if (it != unary_stream_by_sig_.end()) {
    // The stream (and its unique producer) already exist.
    const ProducerList& prods = producers_[it->second];
    SQPR_CHECK(!prods.empty());
    return prods.front();
  }

  if (streams_.Full() || operators_.Full()) {
    return Status::ResourceExhausted("catalog store is full");
  }

  const StreamInfo& in = streams_[input];
  StreamInfo out;
  out.id = static_cast<StreamId>(streams_.size());
  out.is_base = false;
  out.rate_mbps = in.rate_mbps * output_rate_fraction;
  out.leaves = in.leaves;
  out.name = std::string(OpKindName(kind)) + std::to_string(tag) + "(" +
             in.name + ")";
  const StreamId output = out.id;
  const double in_rate = in.rate_mbps;
  streams_.Append(std::move(out));
  producers_.AppendDefault();
  unary_stream_by_sig_.emplace(sig, output);

  OperatorInfo op;
  op.id = static_cast<OperatorId>(operators_.size());
  op.kind = kind;
  op.inputs = {input};
  op.output = output;
  op.cpu_cost = cost_model_.OperatorCpuCost(in_rate);
  op.mem_mb = cost_model_.OperatorMemMb(in_rate);
  op.output_rate_fraction = output_rate_fraction;
  const OperatorId id = op.id;
  operators_.Append(std::move(op));
  producers_.Mutable(output).Append(id);
  return id;
}

Status Catalog::UpdateBaseRate(StreamId base, double new_rate_mbps) {
  // Exclusive by contract: no concurrent reader or interner (the
  // planning service quiesces workers before installing measured rates).
  // The lock still serialises against a stray interner defensively.
  std::lock_guard<std::mutex> lock(intern_mu_);
  if (base < 0 || base >= num_streams()) {
    return Status::InvalidArgument("unknown stream");
  }
  if (!streams_[base].is_base) {
    return Status::InvalidArgument("only base stream rates can be measured");
  }
  if (new_rate_mbps <= 0) {
    return Status::InvalidArgument("rate must be positive");
  }
  streams_.Mutable(base).rate_mbps = new_rate_mbps;

  // Streams are created after their inputs, so one pass in id order
  // refreshes every composite. A composite with a unary producer takes
  // fraction x input rate; otherwise it is a canonical join stream whose
  // rate is a function of its base leaves.
  for (StreamId s = 0; s < num_streams(); ++s) {
    StreamInfo& info = streams_.Mutable(s);
    if (info.is_base) continue;
    const OperatorInfo* unary = nullptr;
    for (OperatorId o : producers_[s]) {
      if (operators_[o].kind != OpKind::kJoin) {
        unary = &operators_[o];
        break;
      }
    }
    if (unary != nullptr) {
      info.rate_mbps = streams_[unary->inputs[0]].rate_mbps *
                       unary->output_rate_fraction;
    } else {
      info.rate_mbps =
          cost_model_.JoinOutputRate(info.leaves, SumLeafRates(info.leaves));
    }
  }
  for (OperatorId o = 0; o < num_operators(); ++o) {
    OperatorInfo& op = operators_.Mutable(o);
    double in_rate = 0.0;
    for (StreamId in : op.inputs) in_rate += streams_[in].rate_mbps;
    op.cpu_cost = cost_model_.OperatorCpuCost(in_rate);
    op.mem_mb = cost_model_.OperatorMemMb(in_rate);
  }
  rate_epoch_.fetch_add(1, std::memory_order_acq_rel);
  return Status::OK();
}

Result<Closure> Catalog::JoinClosure(StreamId stream) {
  std::lock_guard<std::mutex> lock(intern_mu_);
  return JoinClosureLocked(stream);
}

Result<Closure> Catalog::JoinClosureLocked(StreamId stream) {
  if (stream < 0 || stream >= num_streams()) {
    return Status::InvalidArgument("unknown stream");
  }
  auto cached = closure_cache_.find(stream);
  if (cached != closure_cache_.end()) return cached->second;

  const bool is_base = streams_[stream].is_base;
  const std::vector<StreamId> leaves = streams_[stream].leaves;
  Closure closure;
  if (is_base) {
    closure.streams = {stream};
    closure_cache_[stream] = closure;
    return closure;
  }

  // Unary composites: closure is own stream + producer + input closure.
  if (!producers_[stream].empty() &&
      operators_[producers_[stream].front()].kind != OpKind::kJoin) {
    const OperatorId producer_id = producers_[stream].front();
    const StreamId producer_input = operators_[producer_id].inputs.front();
    Result<Closure> sub = JoinClosureLocked(producer_input);
    if (!sub.ok()) return sub.status();
    closure = *sub;
    closure.streams.push_back(stream);
    closure.operators.push_back(producer_id);
    closure_cache_[stream] = closure;
    return closure;
  }

  // Join composite: enumerate every subset of the leaf set with >= 2
  // elements (its canonical stream) and every unordered binary split of
  // each subset (one operator per split). k <= ~6 keeps this tiny.
  const int k = static_cast<int>(leaves.size());
  SQPR_CHECK(k >= 2);
  SQPR_CHECK(k <= 16) << "join arity too large for closure expansion";

  std::set<StreamId> streams_set(leaves.begin(), leaves.end());
  std::set<OperatorId> ops_set;

  // Map from leaf-subset mask to its canonical stream id.
  std::vector<StreamId> by_mask(static_cast<size_t>(1) << k, kInvalidStream);
  for (int i = 0; i < k; ++i) by_mask[static_cast<size_t>(1) << i] = leaves[i];

  for (uint32_t mask = 1; mask < (1u << k); ++mask) {
    if (__builtin_popcount(mask) < 2) continue;
    std::vector<StreamId> subset;
    for (int i = 0; i < k; ++i) {
      if (mask & (1u << i)) subset.push_back(leaves[i]);
    }
    by_mask[mask] = InternJoinStreamLocked(subset);  // already sorted
    if (by_mask[mask] == kInvalidStream) {
      // Graceful exhaustion mid-expansion: whatever interned so far
      // stays published and reusable, but this closure is incomplete —
      // report it rather than caching a partial expansion. (The caller
      // turns this into an admission rejection.)
      return Status::ResourceExhausted(
          "catalog stream store exhausted expanding the closure of stream " +
          std::to_string(stream));
    }
    streams_set.insert(by_mask[mask]);
  }
  for (uint32_t mask = 1; mask < (1u << k); ++mask) {
    if (__builtin_popcount(mask) < 2) continue;
    // Enumerate unordered splits: iterate proper non-empty submasks and
    // take each {sub, mask^sub} pair once.
    for (uint32_t sub = (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask) {
      const uint32_t other = mask ^ sub;
      if (sub < other) continue;  // count each unordered split once
      Result<OperatorId> op = JoinOperatorLocked(by_mask[sub], by_mask[other]);
      if (!op.ok()) {
        if (op.status().IsResourceExhausted()) return op.status();
        SQPR_CHECK(op.ok()) << op.status().ToString();
      }
      ops_set.insert(*op);
    }
  }

  closure.streams.assign(streams_set.begin(), streams_set.end());
  closure.operators.assign(ops_set.begin(), ops_set.end());
  closure_cache_[stream] = closure;
  return closure;
}

}  // namespace sqpr
