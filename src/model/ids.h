#ifndef SQPR_MODEL_IDS_H_
#define SQPR_MODEL_IDS_H_

#include <cstdint>

namespace sqpr {

/// Dense identifiers into the catalog/cluster tables. Kept as plain ints
/// (not strong typedefs) because they index vectors on hot planner paths;
/// the name of the alias documents intent at API boundaries.
using HostId = int32_t;
using StreamId = int32_t;
using OperatorId = int32_t;

inline constexpr HostId kInvalidHost = -1;
inline constexpr StreamId kInvalidStream = -1;
inline constexpr OperatorId kInvalidOperator = -1;

}  // namespace sqpr

#endif  // SQPR_MODEL_IDS_H_
