#ifndef SQPR_MODEL_COST_MODEL_H_
#define SQPR_MODEL_COST_MODEL_H_

#include <cstdint>
#include <vector>

namespace sqpr {

/// The linear cost model of §II-B: operator CPU demand and composite
/// stream rates are linear functions of the input stream rates.
///
/// Join selectivities are a deterministic pseudo-random function of the
/// joined *base leaf set*, drawn from [selectivity_min, selectivity_max]
/// (the paper uses 0.1%–0.5%, §V). Determinism in the leaf set — rather
/// than in the join order — is what makes equivalent sub-queries have
/// identical rates, which in turn makes stream reuse well-defined.
struct CostModel {
  /// CPU units consumed per Mbps of operator input (γ_o = cpu_per_mbps ×
  /// Σ input rates). The cluster experiment calibration (§V-B: one host ≈
  /// 15 concurrent 2-/3-way joins at ζ = 1.0 with 10 Mbps inputs) gives
  /// the default 1 / (15 × 20).
  double cpu_per_mbps = 1.0 / 300.0;

  /// Join selectivity band, applied to the sum of input rates.
  double selectivity_min = 0.001;
  double selectivity_max = 0.005;

  /// Seed mixed into the per-leaf-set selectivity hash.
  uint64_t selectivity_seed = 0x5172u;

  /// Memory (MB) an operator's window state holds per Mbps of input —
  /// the §VII "more resources (including memory)" extension. A 1-second
  /// tuple window on a 10 Mbps input is 10 Mbit = 1.25 MB, giving the
  /// default 0.125 MB/Mbps. Hosts default to unlimited memory, so this
  /// only binds when a Cluster is configured with finite HostSpec::mem_mb.
  double mem_per_mbps = 0.125;

  /// Selectivity of the join producing the given sorted base-leaf set.
  double JoinSelectivity(const std::vector<int32_t>& sorted_leaves) const;

  /// Output rate of the canonical join stream over `sorted_leaves`.
  /// Defined from the summed *base* rates of the leaves (not from the
  /// particular join order's intermediate rates) so that every join order
  /// yields the same composite stream rate — a requirement for the §II-C
  /// stream-equivalence used in reuse.
  double JoinOutputRate(const std::vector<int32_t>& sorted_leaves,
                        double sum_leaf_base_rates) const;

  /// γ_o for an operator consuming `sum_input_rates` Mbps.
  double OperatorCpuCost(double sum_input_rates) const;

  /// Window-state memory (MB) of an operator consuming `sum_input_rates`
  /// Mbps (linear, like the CPU model of §II-B).
  double OperatorMemMb(double sum_input_rates) const;
};

}  // namespace sqpr

#endif  // SQPR_MODEL_COST_MODEL_H_
