#include "model/cluster.h"

#include <algorithm>

#include "common/logging.h"

namespace sqpr {

Cluster::Cluster(int num_hosts, const HostSpec& host, double link_mbps)
    : default_link_mbps_(link_mbps) {
  SQPR_CHECK(num_hosts > 0);
  hosts_.resize(num_hosts, host);
  for (int h = 0; h < num_hosts; ++h) {
    if (hosts_[h].name.empty()) hosts_[h].name = "host" + std::to_string(h);
  }
}

Cluster::Cluster(std::vector<HostSpec> hosts, double link_mbps)
    : hosts_(std::move(hosts)), default_link_mbps_(link_mbps) {
  SQPR_CHECK(!hosts_.empty());
}

double Cluster::link_mbps(HostId from, HostId to) const {
  if (from == to) return 0.0;
  const int64_t key = static_cast<int64_t>(from) * num_hosts() + to;
  for (const auto& [k, v] : link_overrides_) {
    if (k == key) return v;
  }
  return default_link_mbps_;
}

void Cluster::SetLink(HostId from, HostId to, double mbps) {
  ++spec_epoch_;
  const int64_t key = static_cast<int64_t>(from) * num_hosts() + to;
  for (auto& [k, v] : link_overrides_) {
    if (k == key) {
      v = mbps;
      return;
    }
  }
  link_overrides_.emplace_back(key, mbps);
}

void Cluster::SetHostSpec(HostId h, const HostSpec& spec) {
  SQPR_CHECK(h >= 0 && h < num_hosts());
  ++spec_epoch_;
  hosts_[h] = spec;
  if (hosts_[h].name.empty()) hosts_[h].name = "host" + std::to_string(h);
}

void Cluster::ScaleCpu(double factor) {
  ++spec_epoch_;
  for (HostSpec& h : hosts_) h.cpu *= factor;
}

void Cluster::ScaleBandwidth(double factor) {
  ++spec_epoch_;
  for (HostSpec& h : hosts_) {
    h.nic_out_mbps *= factor;
    h.nic_in_mbps *= factor;
  }
  default_link_mbps_ *= factor;
  for (auto& [k, v] : link_overrides_) {
    (void)k;
    v *= factor;
  }
}

double Cluster::TotalCpu() const {
  double total = 0.0;
  for (const HostSpec& h : hosts_) total += h.cpu;
  return total;
}

double Cluster::TotalNicOut() const {
  double total = 0.0;
  for (const HostSpec& h : hosts_) total += h.nic_out_mbps;
  return total;
}

double Cluster::TotalLinkCapacity() const {
  double total = 0.0;
  for (int h = 0; h < num_hosts(); ++h) {
    for (int m = 0; m < num_hosts(); ++m) {
      if (h != m) total += link_mbps(h, m);
    }
  }
  return total;
}

}  // namespace sqpr
