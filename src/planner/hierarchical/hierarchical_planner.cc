#include "planner/hierarchical/hierarchical_planner.h"

#include <algorithm>
#include <set>

#include "common/deadline.h"
#include "common/logging.h"
#include "milp/solver.h"

namespace sqpr {

HierarchicalPlanner::HierarchicalPlanner(const Cluster* cluster,
                                         Catalog* catalog, Options options)
    : cluster_(cluster),
      catalog_(catalog),
      options_(options),
      deployment_(cluster, catalog) {
  SQPR_CHECK(options_.num_sites >= 1);
}

std::vector<HostId> HierarchicalPlanner::SiteHosts(int site) const {
  // Contiguous partition: site i owns hosts [i*H/K, (i+1)*H/K).
  const int H = cluster_->num_hosts();
  const int K = options_.num_sites;
  const int lo = static_cast<int>(static_cast<int64_t>(site) * H / K);
  const int hi = static_cast<int>(static_cast<int64_t>(site + 1) * H / K);
  std::vector<HostId> hosts;
  for (HostId h = lo; h < hi; ++h) hosts.push_back(h);
  return hosts;
}

Result<int> HierarchicalPlanner::AssignSite(StreamId query) {
  if (query < 0 || query >= catalog_->num_streams()) {
    return Status::InvalidArgument("unknown stream");
  }
  const int H = cluster_->num_hosts();
  const int K = options_.num_sites;
  auto site_of = [&](HostId h) {
    return static_cast<int>(static_cast<int64_t>(h) * K / H);
  };

  std::vector<int> leaf_count(K, 0);
  for (StreamId leaf : catalog_->stream(query).leaves) {
    const HostId src = catalog_->stream(leaf).source_host;
    if (src != kInvalidHost) ++leaf_count[site_of(src)];
  }
  std::vector<double> spare_cpu(K, 0.0);
  for (HostId h = 0; h < H; ++h) {
    spare_cpu[site_of(h)] += cluster_->host(h).cpu - deployment_.CpuUsed(h);
  }

  int best = 0;
  for (int site = 1; site < K; ++site) {
    if (leaf_count[site] > leaf_count[best] ||
        (leaf_count[site] == leaf_count[best] &&
         spare_cpu[site] > spare_cpu[best])) {
      best = site;
    }
  }
  return best;
}

Result<std::vector<HostId>> HierarchicalPlanner::BuildSubset(StreamId query,
                                                             int site) {
  std::set<HostId> subset;
  for (HostId h : SiteHosts(site)) subset.insert(h);

  Result<Closure> closure = catalog_->JoinClosure(query);
  if (!closure.ok()) return closure.status();

  // Border hosts: sources of the query's base leaves (inter-site stream
  // imports, the "federated data centres" case of §VII).
  for (StreamId s : closure->streams) {
    const StreamInfo& info = catalog_->stream(s);
    if (info.is_base && info.source_host != kInvalidHost) {
      subset.insert(info.source_host);
    }
  }

  // Hosts carrying relevant committed state: keeps warm starts feasible
  // and lets the no-drop constraints re-place related queries in place.
  for (StreamId s : closure->streams) {
    const HostId server = deployment_.ServingHost(s);
    if (server != kInvalidHost) subset.insert(server);
    for (const auto& [from, to] : deployment_.FlowsOf(s)) {
      subset.insert(from);
      subset.insert(to);
    }
  }
  for (OperatorId o : closure->operators) {
    for (HostId h : deployment_.HostsRunning(o)) subset.insert(h);
  }
  return std::vector<HostId>(subset.begin(), subset.end());
}

Result<PlanningStats> HierarchicalPlanner::SubmitQuery(StreamId query) {
  Stopwatch watch;
  PlanningStats stats;

  if (query < 0 || query >= catalog_->num_streams()) {
    return Status::InvalidArgument("unknown stream");
  }
  if (deployment_.ServingHost(query) != kInvalidHost) {
    stats.admitted = true;
    stats.already_served = true;
    stats.wall_ms = watch.ElapsedMillis();
    return stats;
  }

  Result<int> site = AssignSite(query);
  if (!site.ok()) return site.status();
  Result<std::vector<HostId>> subset = BuildSubset(query, *site);
  if (!subset.ok()) return subset.status();

  // Relevant sets exactly as flat SQPR computes them (§IV-A).
  Result<Closure> closure = catalog_->JoinClosure(query);
  if (!closure.ok()) return closure.status();
  std::vector<DemandSpec> demands;
  demands.push_back({query, /*must_serve=*/false});
  const std::set<StreamId> rel(closure->streams.begin(),
                               closure->streams.end());
  for (StreamId q : admitted_) {
    if (rel.count(q)) demands.push_back({q, /*must_serve=*/true});
  }

  SqprModelOptions model_options = options_.model;
  model_options.host_subset = *subset;
  SqprMip mip(deployment_, closure->streams, closure->operators,
              std::move(demands), model_options);
  const std::vector<double> warm = mip.WarmStart();
  SqprMip::CycleCutHandler cycle_handler(&mip);

  milp::SolverOptions solver_options;
  solver_options.deadline = Deadline::AfterMillis(options_.timeout_ms);
  solver_options.max_nodes = options_.max_nodes;
  solver_options.gap_abs = options_.mip_gap_abs;
  solver_options.gap_rel = options_.mip_gap_rel;
  solver_options.warm_start = &warm;
  if (model_options.acyclicity == AcyclicityMode::kLazyCycleCuts) {
    solver_options.lazy = &cycle_handler;
  }

  milp::Solver solver;
  const milp::MipResult result = solver.Solve(mip.mip(), solver_options);

  if (result.has_solution()) {
    SQPR_CHECK_OK(mip.Commit(result.x, &deployment_));
    if (options_.validate_commits) {
      const Status valid = deployment_.Validate();
      SQPR_CHECK(valid.ok()) << "hierarchical commit broke invariants: "
                             << valid.ToString();
    }
    if (mip.Serves(result.x, query)) {
      stats.admitted = true;
      admitted_.push_back(query);
    }
  }

  stats.wall_ms = watch.ElapsedMillis();
  stats.solver_nodes = result.nodes;
  stats.lp_iterations = result.lp_iterations;
  stats.objective = result.has_solution() ? result.objective : 0.0;
  stats.proved_optimal = result.status == milp::MipStatus::kOptimal;
  return stats;
}

}  // namespace sqpr
