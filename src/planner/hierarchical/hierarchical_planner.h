#ifndef SQPR_PLANNER_HIERARCHICAL_HIERARCHICAL_PLANNER_H_
#define SQPR_PLANNER_HIERARCHICAL_HIERARCHICAL_PLANNER_H_

#include <string>
#include <vector>

#include "model/catalog.h"
#include "model/cluster.h"
#include "plan/deployment.h"
#include "planner/planner.h"
#include "planner/sqpr/model_builder.h"

namespace sqpr {

/// The §VII hierarchical decomposition the paper proposes as future
/// work: "first assigning queries to sites and then planning queries
/// within sites".
///
/// Hosts are partitioned into contiguous *sites*. Each submission is
/// assigned to one site (the one sourcing the most of the query's base
/// leaves, ties broken by spare CPU) and planned with the regular SQPR
/// reduced MILP — but restricted via SqprModelOptions::host_subset to
///
///   site hosts ∪ source hosts of the query's leaves
///             ∪ hosts carrying relevant committed state,
///
/// so the MILP sees a bounded number of hosts regardless of cluster
/// size. The last group keeps the (IV.9) no-drop constraints satisfiable
/// when related queries were planned by other sites. All sites share one
/// Deployment, so resource accounting (including the NIC bandwidth of
/// "border" source hosts outside the site) stays globally consistent.
///
/// The trade-off versus flat SQPR — near-flat planning latency in the
/// number of hosts against some admission loss from the restricted
/// placement freedom — is measured by bench_hierarchical.
class HierarchicalPlanner : public Planner {
 public:
  struct Options {
    /// Number of contiguous host groups. 1 degenerates to flat SQPR
    /// (without the greedy fallback).
    int num_sites = 2;
    /// Per-query solver budget (matches SqprPlanner::Options::timeout_ms).
    int64_t timeout_ms = 1000;
    int64_t max_nodes = 1000000;
    double mip_gap_abs = 0.1;
    double mip_gap_rel = 1e-4;
    bool validate_commits = true;
    SqprModelOptions model;
  };

  HierarchicalPlanner(const Cluster* cluster, Catalog* catalog,
                      Options options);

  std::string name() const override { return "sqpr-hierarchical"; }
  Result<PlanningStats> SubmitQuery(StreamId query) override;
  const Deployment& deployment() const override { return deployment_; }
  const std::vector<StreamId>& admitted_queries() const override {
    return admitted_;
  }

  /// Hosts of site `site` (for tests and benches).
  std::vector<HostId> SiteHosts(int site) const;
  int num_sites() const { return options_.num_sites; }

  /// Site that would be chosen for `query` (exposed for tests).
  Result<int> AssignSite(StreamId query);

 private:
  /// Builds the host subset for planning `query` in `site`.
  Result<std::vector<HostId>> BuildSubset(StreamId query, int site);

  const Cluster* cluster_;
  Catalog* catalog_;
  Options options_;
  Deployment deployment_;
  std::vector<StreamId> admitted_;
};

}  // namespace sqpr

#endif  // SQPR_PLANNER_HIERARCHICAL_HIERARCHICAL_PLANNER_H_
