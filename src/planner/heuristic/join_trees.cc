#include "planner/heuristic/join_trees.h"

#include <algorithm>

#include "common/logging.h"

namespace sqpr {
namespace {

std::unique_ptr<JoinTree> Leaf(StreamId s) {
  auto node = std::make_unique<JoinTree>();
  node->stream = s;
  return node;
}

std::unique_ptr<JoinTree> CloneTree(const JoinTree& tree) {
  auto node = std::make_unique<JoinTree>();
  node->stream = tree.stream;
  node->op = tree.op;
  if (tree.left) node->left = CloneTree(*tree.left);
  if (tree.right) node->right = CloneTree(*tree.right);
  return node;
}

/// Recursively enumerates all unordered binary trees over the leaves
/// selected by `mask` (indices into `leaves`).
Result<std::vector<std::unique_ptr<JoinTree>>> TreesOver(
    uint32_t mask, const std::vector<StreamId>& leaves, Catalog* catalog) {
  std::vector<std::unique_ptr<JoinTree>> out;
  const int bits = __builtin_popcount(mask);
  if (bits == 1) {
    const int i = __builtin_ctz(mask);
    out.push_back(Leaf(leaves[i]));
    return out;
  }
  // Each unordered split {sub, mask^sub} visited once (sub > other).
  for (uint32_t sub = (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask) {
    const uint32_t other = mask ^ sub;
    if (sub < other) continue;
    Result<std::vector<std::unique_ptr<JoinTree>>> left_trees =
        TreesOver(sub, leaves, catalog);
    if (!left_trees.ok()) return left_trees.status();
    Result<std::vector<std::unique_ptr<JoinTree>>> right_trees =
        TreesOver(other, leaves, catalog);
    if (!right_trees.ok()) return right_trees.status();
    for (const auto& lt : *left_trees) {
      for (const auto& rt : *right_trees) {
        Result<OperatorId> op = catalog->JoinOperator(lt->stream, rt->stream);
        if (!op.ok()) return op.status();
        auto node = std::make_unique<JoinTree>();
        node->op = *op;
        node->stream = catalog->op(*op).output;
        node->left = CloneTree(*lt);
        node->right = CloneTree(*rt);
        out.push_back(std::move(node));
      }
    }
  }
  return out;
}

}  // namespace

Result<std::vector<std::unique_ptr<JoinTree>>> EnumerateJoinTrees(
    StreamId query, Catalog* catalog) {
  if (catalog->stream(query).is_base) {
    std::vector<std::unique_ptr<JoinTree>> out;
    out.push_back(Leaf(query));
    return out;
  }
  // Copy for clarity; catalog entries have stable addresses, so the
  // interning TreesOver does below could not invalidate the reference.
  // On a warmed query (SqprPlanner::WarmCatalog) every JoinOperator
  // call here is a canonical-map hit — no new ids, which is what lets
  // the greedy fallback run on worker threads deterministically.
  const std::vector<StreamId> leaves = catalog->stream(query).leaves;
  if (leaves.size() > 8) {
    return Status::InvalidArgument(
        "abstract plan enumeration limited to 8-way joins");
  }
  return TreesOver((1u << leaves.size()) - 1, leaves, catalog);
}

Result<std::unique_ptr<JoinTree>> LeftDeepTree(StreamId query,
                                               Catalog* catalog) {
  if (catalog->stream(query).is_base) return Leaf(query);
  // Copy for clarity (catalog entries have stable addresses).
  const std::vector<StreamId> leaves = catalog->stream(query).leaves;
  SQPR_CHECK(leaves.size() >= 2);
  std::unique_ptr<JoinTree> acc = Leaf(leaves[0]);
  for (size_t i = 1; i < leaves.size(); ++i) {
    Result<OperatorId> op = catalog->JoinOperator(acc->stream, leaves[i]);
    if (!op.ok()) return op.status();
    auto node = std::make_unique<JoinTree>();
    node->op = *op;
    node->stream = catalog->op(*op).output;
    node->left = std::move(acc);
    node->right = Leaf(leaves[i]);
    acc = std::move(node);
  }
  return acc;
}

std::vector<OperatorId> BottomUpOperators(const JoinTree& tree) {
  std::vector<OperatorId> out;
  if (tree.left) {
    const auto sub = BottomUpOperators(*tree.left);
    out.insert(out.end(), sub.begin(), sub.end());
  }
  if (tree.right) {
    const auto sub = BottomUpOperators(*tree.right);
    out.insert(out.end(), sub.begin(), sub.end());
  }
  if (!tree.is_leaf()) out.push_back(tree.op);
  return out;
}

}  // namespace sqpr
