#ifndef SQPR_PLANNER_HEURISTIC_HEURISTIC_PLANNER_H_
#define SQPR_PLANNER_HEURISTIC_HEURISTIC_PLANNER_H_

#include <set>
#include <string>
#include <vector>

#include "model/catalog.h"
#include "model/cluster.h"
#include "plan/deployment.h"
#include "planner/heuristic/join_trees.h"
#include "planner/planner.h"
#include "planner/sqpr/model_builder.h"  // ObjectiveWeights

namespace sqpr {

/// Greedy single-shot admission: enumerates every abstract plan (join
/// order) for `query`, tries to realise each entirely on each host with
/// aggressive reuse of already-materialised streams, scores feasible
/// candidates with the weighted objective and commits the best one into
/// `deployment`. Returns true on admission. This is the §V-A heuristic's
/// core, shared with SqprPlanner's optional greedy fallback (the
/// "combine heuristics with SQPR" extension of §VII).
bool GreedyAdmit(const Cluster& cluster, Catalog* catalog, StreamId query,
                 const ObjectiveWeights& weights, Deployment* deployment);

/// The hand-crafted comparison planner of §V-A (inspired by Ahmad et
/// al. [15]):
///  * enumerates every abstract query plan (join order) for the new
///    query;
///  * for each abstract plan and each host h, tries to implement the
///    whole plan *at h*, aggressively reusing existing sub-query streams
///    (a reusable composite is fetched from the host that has it rather
///    than recomputed — "favouring the transfer of complete sub-queries
///    over base streams");
///  * scores every feasible candidate with the same weighted objective
///    SQPR uses and commits the best one.
/// Unlike SQPR it never revisits earlier placements and never spreads a
/// single query plan across multiple hosts.
class HeuristicPlanner : public Planner {
 public:
  struct Options {
    ObjectiveWeights weights;
  };

  HeuristicPlanner(const Cluster* cluster, Catalog* catalog, Options options);

  std::string name() const override { return "heuristic"; }
  Result<PlanningStats> SubmitQuery(StreamId query) override;
  const Deployment& deployment() const override { return deployment_; }
  const std::vector<StreamId>& admitted_queries() const override {
    return admitted_;
  }

 private:
  const Cluster* cluster_;
  Catalog* catalog_;
  Options options_;
  ObjectiveWeights resolved_weights_;
  Deployment deployment_;
  std::vector<StreamId> admitted_;
};

}  // namespace sqpr

#endif  // SQPR_PLANNER_HEURISTIC_HEURISTIC_PLANNER_H_
