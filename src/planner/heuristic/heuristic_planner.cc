#include "planner/heuristic/heuristic_planner.h"

#include <algorithm>
#include <set>

#include "common/deadline.h"
#include "common/logging.h"

namespace sqpr {

HeuristicPlanner::HeuristicPlanner(const Cluster* cluster, Catalog* catalog,
                                   Options options)
    : cluster_(cluster),
      catalog_(catalog),
      options_(options),
      deployment_(cluster, catalog) {
  resolved_weights_ = options_.weights;
  if (resolved_weights_.lambda2 <= 0) {
    resolved_weights_.lambda2 = 1.0 / std::max(1.0, cluster->TotalNicOut());
  }
  if (resolved_weights_.lambda3 <= 0) {
    resolved_weights_.lambda3 =
        1.0 / std::max(1.0, cluster->TotalLinkCapacity());
  }
  if (resolved_weights_.lambda4 < 0) resolved_weights_.lambda4 = 1.0;
}

namespace {

/// Weighted objective (higher = better); admission (O1) is equal across
/// candidates for one query, so only -λ2·O2 - λ3·O3 - λ4·O4 differ.
double Score(const ObjectiveWeights& weights, const Deployment& dep) {
  return -weights.lambda2 * dep.TotalNetworkUsed() -
         weights.lambda3 * dep.TotalCpuUsed() -
         weights.lambda4 * dep.MaxHostCpuUsed();
}

/// Attempts to realise `tree` entirely on host `host`, editing `scratch`.
/// `local` accumulates streams made available at `host` during this
/// placement. Returns false when resources run out.
bool PlaceTreeAt(const Cluster& cluster, const Catalog& catalog,
                 const JoinTree& tree, HostId host,
                 const GroundedMap& grounded,
                 std::set<StreamId>* local, Deployment* scratch) {
  const StreamId s = tree.stream;

  // Already locally available: from the committed state or made so
  // earlier during this candidate placement.
  if (grounded.at(host, s) || local->count(s) > 0) return true;

  // Aggressive reuse: fetch the complete sub-query stream from any host
  // that has it, preferring the sender with the most NIC headroom.
  HostId best_sender = kInvalidHost;
  double best_headroom = -1.0;
  for (HostId m = 0; m < cluster.num_hosts(); ++m) {
    if (m == host || !grounded.at(m, s)) continue;
    if (!scratch->CanAddFlow(m, host, s)) continue;
    const double headroom =
        cluster.host(m).nic_out_mbps - scratch->NicOutUsed(m);
    if (headroom > best_headroom) {
      best_headroom = headroom;
      best_sender = m;
    }
  }
  if (best_sender != kInvalidHost) {
    SQPR_CHECK_OK(scratch->AddFlow(best_sender, host, s));
    local->insert(s);
    return true;
  }

  // No reuse possible: compute locally. Leaves that reach this point are
  // base streams not present anywhere reachable — unplaceable.
  if (tree.is_leaf()) return false;
  if (!PlaceTreeAt(cluster, catalog, *tree.left, host, grounded, local,
                   scratch)) {
    return false;
  }
  if (!PlaceTreeAt(cluster, catalog, *tree.right, host, grounded, local,
                   scratch)) {
    return false;
  }
  if (!scratch->RunsOperator(host, tree.op)) {
    if (!scratch->CanPlaceOperator(host, tree.op)) return false;
    SQPR_CHECK_OK(scratch->PlaceOperator(host, tree.op));
  }
  local->insert(s);
  return true;
}

}  // namespace

bool GreedyAdmit(const Cluster& cluster, Catalog* catalog, StreamId query,
                 const ObjectiveWeights& weights, Deployment* deployment) {
  // Resolve defaulted weights the same way the SQPR model builder does.
  ObjectiveWeights w = weights;
  if (w.lambda2 <= 0) w.lambda2 = 1.0 / std::max(1.0, cluster.TotalNicOut());
  if (w.lambda3 <= 0) {
    w.lambda3 = 1.0 / std::max(1.0, cluster.TotalLinkCapacity());
  }
  if (w.lambda4 < 0) w.lambda4 = 1.0;

  Result<std::vector<std::unique_ptr<JoinTree>>> trees =
      EnumerateJoinTrees(query, catalog);
  if (!trees.ok()) return false;

  // Availability snapshot of the committed state; reuse decisions are
  // made against it (streams materialised by previous queries).
  const GroundedMap grounded = deployment->GroundedAvailability();

  double best_score = -lp::kInf;
  Deployment best = *deployment;
  bool found = false;

  for (const auto& tree : *trees) {
    for (HostId host = 0; host < cluster.num_hosts(); ++host) {
      Deployment scratch = *deployment;
      std::set<StreamId> local;
      if (!PlaceTreeAt(cluster, *catalog, *tree, host, grounded, &local,
                       &scratch)) {
        continue;
      }
      if (!scratch.CanServe(query, host)) continue;
      SQPR_CHECK_OK(scratch.SetServing(query, host));
      if (!scratch.Validate().ok()) continue;
      const double score = Score(w, scratch);
      if (score > best_score) {
        best_score = score;
        best = std::move(scratch);
        found = true;
      }
    }
  }

  if (found) *deployment = std::move(best);
  return found;
}

Result<PlanningStats> HeuristicPlanner::SubmitQuery(StreamId query) {
  Stopwatch watch;
  PlanningStats stats;

  if (deployment_.ServingHost(query) != kInvalidHost) {
    stats.admitted = true;
    stats.already_served = true;
    stats.wall_ms = watch.ElapsedMillis();
    return stats;
  }

  if (GreedyAdmit(*cluster_, catalog_, query, resolved_weights_,
                  &deployment_)) {
    admitted_.push_back(query);
    stats.admitted = true;
  }
  stats.wall_ms = watch.ElapsedMillis();
  return stats;
}

}  // namespace sqpr
