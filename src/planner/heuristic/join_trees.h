#ifndef SQPR_PLANNER_HEURISTIC_JOIN_TREES_H_
#define SQPR_PLANNER_HEURISTIC_JOIN_TREES_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "model/catalog.h"

namespace sqpr {

/// A node of an abstract query plan (a join order): leaves are base
/// streams, internal nodes are catalog join operators. "Abstract" in the
/// paper's sense (§V-A): operators are not yet assigned to hosts.
struct JoinTree {
  StreamId stream = kInvalidStream;     // stream this subtree produces
  OperatorId op = kInvalidOperator;     // producing operator; leaf if invalid
  std::unique_ptr<JoinTree> left;
  std::unique_ptr<JoinTree> right;

  bool is_leaf() const { return op == kInvalidOperator; }
};

/// Enumerates every abstract query plan for the canonical join stream
/// `query`: all (2k-3)!! unordered binary join trees over its k leaves
/// (3 for k=3, 15 for k=4, 105 for k=5 — the §V-A heuristic relies on the
/// arity being small enough for exhaustive enumeration). For a base
/// stream this returns a single leaf tree.
Result<std::vector<std::unique_ptr<JoinTree>>> EnumerateJoinTrees(
    StreamId query, Catalog* catalog);

/// A canonical single plan: the left-deep tree in increasing leaf order.
/// This is the "user-given template" that the SODA comparison planner is
/// bound to (§V-B).
Result<std::unique_ptr<JoinTree>> LeftDeepTree(StreamId query,
                                               Catalog* catalog);

/// All operators of a tree in bottom-up (children before parent) order.
std::vector<OperatorId> BottomUpOperators(const JoinTree& tree);

}  // namespace sqpr

#endif  // SQPR_PLANNER_HEURISTIC_JOIN_TREES_H_
