#include "planner/sqpr/model_builder.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <set>

#include "common/logging.h"
#include "obs/trace.h"

namespace sqpr {
namespace {

/// Longest-outgoing-path depth of each host in one stream's flow DAG;
/// used to construct warm-start potentials. Flows must be acyclic (true
/// for any validated deployment).
std::map<HostId, double> FlowPotentials(
    const std::vector<std::pair<HostId, HostId>>& flows) {
  std::map<HostId, std::vector<HostId>> out;
  std::set<HostId> hosts;
  for (const auto& [from, to] : flows) {
    out[from].push_back(to);
    hosts.insert(from);
    hosts.insert(to);
  }
  std::map<HostId, double> depth;
  // Memoised DFS; recursion depth bounded by host count.
  std::function<double(HostId)> visit = [&](HostId h) -> double {
    auto it = depth.find(h);
    if (it != depth.end()) return it->second;
    depth[h] = 0.0;  // provisional (breaks accidental cycles safely)
    double best = 0.0;
    auto oit = out.find(h);
    if (oit != out.end()) {
      for (HostId m : oit->second) best = std::max(best, 1.0 + visit(m));
    }
    depth[h] = best;
    return best;
  };
  for (HostId h : hosts) visit(h);
  return depth;
}

}  // namespace

SqprMip::SqprMip(const Deployment& base, std::vector<StreamId> streams,
                 std::vector<OperatorId> operators,
                 std::vector<DemandSpec> demands,
                 const SqprModelOptions& options)
    : base_(&base),
      streams_(std::move(streams)),
      ops_(std::move(operators)),
      demands_(std::move(demands)),
      options_(options),
      num_hosts_(base.cluster().num_hosts()) {
  std::sort(streams_.begin(), streams_.end());
  streams_.erase(std::unique(streams_.begin(), streams_.end()),
                 streams_.end());
  std::sort(ops_.begin(), ops_.end());
  ops_.erase(std::unique(ops_.begin(), ops_.end()), ops_.end());
  for (size_t i = 0; i < streams_.size(); ++i) {
    stream_index_[streams_[i]] = static_cast<int>(i);
  }
  for (size_t i = 0; i < ops_.size(); ++i) {
    op_index_[ops_[i]] = static_cast<int>(i);
  }
  BuildSkeleton();
  ApplyBaseState();
}

void SqprMip::Rebind(const Deployment& base) {
  SQPR_TRACE_SPAN("planner/model_patch");
  SQPR_CHECK(base.cluster().num_hosts() == num_hosts_)
      << "Rebind across clusters of different size";
  base_ = &base;
  ApplyBaseState();
}

int SqprMip::StreamIndex(StreamId s) const {
  auto it = stream_index_.find(s);
  return it == stream_index_.end() ? -1 : it->second;
}

int SqprMip::OpIndex(OperatorId o) const {
  auto it = op_index_.find(o);
  return it == op_index_.end() ? -1 : it->second;
}

int SqprMip::VarD(HostId h, StreamId s) const {
  auto it = var_d_.find({h, s});
  return it == var_d_.end() ? -1 : it->second;
}

int SqprMip::VarX(HostId from, HostId to, StreamId s) const {
  const int si = StreamIndex(s);
  if (si < 0) return -1;
  const size_t slot =
      (static_cast<size_t>(from) * num_hosts_ + to) * streams_.size() + si;
  return var_x_[slot];
}

int SqprMip::VarY(HostId h, StreamId s) const {
  const int si = StreamIndex(s);
  if (si < 0) return -1;
  return var_y_[static_cast<size_t>(h) * streams_.size() + si];
}

int SqprMip::VarZ(HostId h, OperatorId o) const {
  const int oi = OpIndex(o);
  if (oi < 0) return -1;
  return var_z_[static_cast<size_t>(h) * ops_.size() + oi];
}

SqprMip::BaseState SqprMip::ComputeBaseState() const {
  const Cluster& cluster = base_->cluster();
  const Catalog& catalog = base_->catalog();
  const int H = num_hosts_;
  const int S = static_cast<int>(streams_.size());
  const std::set<OperatorId> rel_ops(ops_.begin(), ops_.end());
  BaseState st;

  // ---- Residual capacities: subtract the *irrelevant* committed load
  // (fixed variables of §IV-A); relevant load is re-decided. ----
  st.cpu_resid.resize(H);
  st.mem_resid.resize(H);
  st.nic_out_resid.resize(H);
  st.nic_in_resid.resize(H);
  for (HostId h = 0; h < H; ++h) {
    st.cpu_resid[h] = cluster.host(h).cpu - base_->CpuUsed(h);
    st.mem_resid[h] = cluster.host(h).mem_mb - base_->MemUsed(h);
    st.nic_out_resid[h] = cluster.host(h).nic_out_mbps - base_->NicOutUsed(h);
    st.nic_in_resid[h] = cluster.host(h).nic_in_mbps - base_->NicInUsed(h);
    for (OperatorId o : base_->OperatorsOn(h)) {
      if (rel_ops.count(o)) {
        st.cpu_resid[h] += catalog.op(o).cpu_cost;
        st.mem_resid[h] += catalog.op(o).mem_mb;
      }
    }
  }
  for (StreamId s : streams_) {
    const double rate = catalog.stream(s).rate_mbps;
    for (const auto& [from, to] : base_->FlowsOf(s)) {
      st.nic_out_resid[from] += rate;
      st.nic_in_resid[to] += rate;
      st.link_extra[{from, to}] += rate;
    }
    const HostId server = base_->ServingHost(s);
    if (server != kInvalidHost) st.nic_out_resid[server] += rate;
  }

  // Availability pins and fixed producers from irrelevant operators that
  // touch relevant streams.
  st.fixed_producer.assign(static_cast<size_t>(H) * S, 0);
  st.pin_y.assign(static_cast<size_t>(H) * S, false);
  for (HostId h = 0; h < H; ++h) {
    for (OperatorId o : base_->OperatorsOn(h)) {
      if (rel_ops.count(o)) continue;
      const OperatorInfo& op = catalog.op(o);
      const int out_si = StreamIndex(op.output);
      if (out_si >= 0) {
        st.fixed_producer[static_cast<size_t>(h) * S + out_si] += 1;
      }
      for (StreamId in : op.inputs) {
        const int si = StreamIndex(in);
        if (si >= 0) st.pin_y[static_cast<size_t>(h) * S + si] = true;
      }
    }
  }
  return st;
}

void SqprMip::BuildSkeleton() {
  SQPR_TRACE_SPAN_ARGS(span, "planner/model_build", "streams", "operators");
  span.set_args(streams_.size(), ops_.size());
  const Cluster& cluster = base_->cluster();
  const Catalog& catalog = base_->catalog();
  const SqprModelOptions& options = options_;
  const int H = num_hosts_;
  const int S = static_cast<int>(streams_.size());
  const int O = static_cast<int>(ops_.size());

  // ---- Objective weights (§IV-A defaults). ----
  ObjectiveWeights w = options.weights;
  if (w.lambda2 <= 0) {
    w.lambda2 = 1.0 / std::max(1.0, cluster.TotalNicOut());
  }
  if (w.lambda3 <= 0) {
    w.lambda3 = 1.0 / std::max(1.0, cluster.TotalLinkCapacity());
  }
  if (w.lambda4 < 0) w.lambda4 = 1.0;
  if (w.lambda1 <= 0) {
    // "Sufficiently large": admission of one query must outweigh every
    // resource term combined. λ2·O2 ≤ 1 and λ3·O3 ≪ 1 by construction;
    // λ4·O4 ≤ λ4·max ζ_h.
    double max_cpu = 0.0;
    for (HostId h = 0; h < H; ++h) max_cpu = std::max(max_cpu, cluster.host(h).cpu);
    w.lambda1 = 100.0 * (2.0 + w.lambda4 * max_cpu);
  }

  // ---- Variables. ----
  var_x_.assign(static_cast<size_t>(H) * H * S, -1);
  var_y_.assign(static_cast<size_t>(H) * S, -1);
  var_z_.assign(static_cast<size_t>(H) * O, -1);

  // Row tables patched by ApplyBaseState.
  avail_rows_.assign(static_cast<size_t>(H) * S, -1);
  send_rows_.assign(static_cast<size_t>(H) * S, -1);
  send_fanout_.assign(static_cast<size_t>(H) * S, 0);
  link_rows_.assign(static_cast<size_t>(H) * H, -1);
  nic_in_rows_.assign(H, -1);
  nic_out_rows_.assign(H, -1);
  cpu_rows_.assign(H, -1);
  mem_rows_.assign(H, -1);
  loadbal_rows_.assign(H, -1);

  // Tiny anchor cost on otherwise-free binaries. Availability flags that
  // nothing consumes would be fractional noise at LP vertices and drag
  // branch-and-bound through meaningless dichotomies; an epsilon well
  // below any real objective difference pins them to 0.
  constexpr double kEps = 1e-4;

  for (HostId h = 0; h < H; ++h) {
    for (int si = 0; si < S; ++si) {
      const StreamId s = streams_[si];
      const size_t hs = static_cast<size_t>(h) * S + si;
      // Bounds are provisional: ApplyBaseState() pins availability from
      // the committed deployment (and the §VII subset restriction).
      var_y_[hs] = mip_.AddVariable(
          0.0, 1.0, -kEps, /*is_integer=*/true,
          "y_h" + std::to_string(h) + "_s" + std::to_string(s),
          /*priority=*/1);
    }
  }
  for (HostId from = 0; from < H; ++from) {
    for (HostId to = 0; to < H; ++to) {
      if (from == to) continue;
      const double cap = cluster.link_mbps(from, to);
      for (int si = 0; si < S; ++si) {
        const StreamId s = streams_[si];
        const double rate = catalog.stream(s).rate_mbps;
        if (rate > cap + 1e-9) continue;  // can never carry this stream
        const size_t slot =
            (static_cast<size_t>(from) * H + to) * S + si;
        var_x_[slot] = mip_.AddVariable(
            0.0, 1.0, -w.lambda2 * rate - kEps, /*is_integer=*/true,
            "x_h" + std::to_string(from) + "_h" + std::to_string(to) + "_s" +
                std::to_string(s),
            /*priority=*/0);
      }
    }
  }
  for (HostId h = 0; h < H; ++h) {
    for (int oi = 0; oi < O; ++oi) {
      const OperatorInfo& op = catalog.op(ops_[oi]);
      var_z_[static_cast<size_t>(h) * O + oi] = mip_.AddVariable(
          0.0, 1.0, -w.lambda3 * op.cpu_cost - kEps, /*is_integer=*/true,
          "z_h" + std::to_string(h) + "_o" + std::to_string(op.id),
          /*priority=*/2);
    }
  }
  for (const DemandSpec& demand : demands_) {
    SQPR_CHECK(StreamIndex(demand.stream) >= 0)
        << "demanded stream not in the relevant set";
    for (HostId h = 0; h < H; ++h) {
      var_d_[{h, demand.stream}] = mip_.AddVariable(
          0.0, 1.0, w.lambda1, /*is_integer=*/true,
          "d_h" + std::to_string(h) + "_s" + std::to_string(demand.stream),
          /*priority=*/3);
    }
  }
  // Load-balance auxiliary t >= per-host CPU (linearised O4).
  var_t_ = mip_.AddVariable(0.0, lp::kInf, -w.lambda4,
                            /*is_integer=*/false, "t_loadbal");
  // Potentials (III.7) when requested.
  if (options.acyclicity == AcyclicityMode::kPotentials) {
    var_p_.assign(static_cast<size_t>(H) * S, -1);
    for (HostId h = 0; h < H; ++h) {
      for (int si = 0; si < S; ++si) {
        var_p_[static_cast<size_t>(h) * S + si] = mip_.AddVariable(
            0.0, H + 1.0, 0.0, /*is_integer=*/false,
            "p_h" + std::to_string(h) + "_s" + std::to_string(streams_[si]));
      }
    }
  }

  // ---- §VII host-subset restriction: pin fresh decisions outside the
  // subset to zero. Only the base-independent x/z/d pins live here;
  // y bounds (which interact with availability pins from the committed
  // state) are written by ApplyBaseState. Presolve removes every pinned
  // column before branch-and-bound. ----
  if (!options.host_subset.empty()) {
    std::vector<bool> in_subset(H, false);
    for (HostId h : options.host_subset) {
      if (h >= 0 && h < H) in_subset[h] = true;
    }
    for (HostId h = 0; h < H; ++h) {
      if (in_subset[h]) continue;
      for (int oi = 0; oi < O; ++oi) {
        const int z = var_z_[static_cast<size_t>(h) * O + oi];
        if (z >= 0) mip_.lp.SetVariableBounds(z, 0.0, 0.0);
      }
      for (const DemandSpec& demand : demands_) {
        const int d = VarD(h, demand.stream);
        if (d >= 0) mip_.lp.SetVariableBounds(d, 0.0, 0.0);
      }
    }
    for (HostId from = 0; from < H; ++from) {
      for (HostId to = 0; to < H; ++to) {
        if (from == to || (in_subset[from] && in_subset[to])) continue;
        for (int si = 0; si < S; ++si) {
          const int x = var_x_[(static_cast<size_t>(from) * H + to) * S + si];
          if (x >= 0) mip_.lp.SetVariableBounds(x, 0.0, 0.0);
        }
      }
    }
  }

  // ---- Demand constraints (III.4a, III.4b / IV.9). ----
  for (const DemandSpec& demand : demands_) {
    std::vector<std::pair<int, double>> sum_terms;
    for (HostId h = 0; h < H; ++h) {
      const int d = VarD(h, demand.stream);
      const int y = VarY(h, demand.stream);
      // (III.4a): d_hs <= y_hs  (δ_s = 1 for every demanded stream).
      mip_.lp.AddRow(-lp::kInf, 0.0, {{d, 1.0}, {y, -1.0}},
                     "demand_avail_h" + std::to_string(h));
      sum_terms.emplace_back(d, 1.0);
    }
    // (III.4b) or (IV.9).
    if (demand.must_serve) {
      mip_.lp.AddRow(1.0, 1.0, sum_terms,
                     "keep_s" + std::to_string(demand.stream));
    } else {
      mip_.lp.AddRow(-lp::kInf, 1.0, sum_terms,
                     "admit_s" + std::to_string(demand.stream));
    }
  }

  // ---- Availability constraints (III.5a, III.5b, III.5c-aggregated). --
  for (HostId m = 0; m < H; ++m) {
    for (int si = 0; si < S; ++si) {
      const StreamId s = streams_[si];
      // (III.5a): y_ms <= Σ_h x_hms + Σ_{o: s_o = s} z_mo + 1[base at m]
      //                 + fixed producers. The right-hand side (base
      //                 injection + fixed producers) comes from
      //                 ApplyBaseState.
      std::vector<std::pair<int, double>> terms;
      terms.emplace_back(VarY(m, s), 1.0);
      for (HostId h = 0; h < H; ++h) {
        const int x = (h == m) ? -1 : VarX(h, m, s);
        if (x >= 0) terms.emplace_back(x, -1.0);
      }
      for (OperatorId o : catalog.ProducersOf(s)) {
        const int z = VarZ(m, o);
        if (z >= 0) terms.emplace_back(z, -1.0);
      }
      avail_rows_[static_cast<size_t>(m) * S + si] = mip_.lp.AddRow(
          -lp::kInf, 0.0, std::move(terms),
          "avail_h" + std::to_string(m) + "_s" + std::to_string(s));
    }
  }
  // (III.5b): z_ho <= y_hs for every input s of o, aggregated per
  // operator as |S_o|·z_ho <= Σ_{s in S_o} y_hs. For binary variables
  // this admits exactly the same integer points (z = 1 forces every y to
  // 1) at a fraction of the row count; the LP relaxation is marginally
  // weaker, which branching on z (priority 2) compensates for.
  for (HostId h = 0; h < H; ++h) {
    for (int oi = 0; oi < O; ++oi) {
      const OperatorInfo& op = catalog.op(ops_[oi]);
      const int z = var_z_[static_cast<size_t>(h) * O + oi];
      std::vector<std::pair<int, double>> terms;
      terms.emplace_back(z, static_cast<double>(op.inputs.size()));
      for (StreamId in : op.inputs) {
        const int y = VarY(h, in);
        SQPR_CHECK(y >= 0) << "operator input outside the relevant set";
        terms.emplace_back(y, -1.0);
      }
      mip_.lp.AddRow(-lp::kInf, 0.0, std::move(terms),
                     "opin_h" + std::to_string(h) + "_o" +
                         std::to_string(op.id));
    }
  }
  // (III.5c) aggregated per (h, s): Σ_m x_hms <= (H-1) · y_hs. With
  // binary x and y this admits exactly the same integer points as the
  // disaggregated family while costing H·S rows instead of H²·S.
  // In the no-relay ablation the right-hand side uses the *generation*
  // capability instead of availability: hosts cannot forward streams
  // they merely received.
  for (HostId h = 0; h < H; ++h) {
    for (int si = 0; si < S; ++si) {
      const StreamId s = streams_[si];
      std::vector<std::pair<int, double>> terms;
      int fanout = 0;
      for (HostId m = 0; m < H; ++m) {
        const int x = (h == m) ? -1 : VarX(h, m, s);
        if (x >= 0) {
          terms.emplace_back(x, 1.0);
          ++fanout;
        }
      }
      // Client delivery (d) needs possession only, which (III.4a)
      // already enforces — it is not forwarding, so it is exempt from
      // the no-relay restriction and omitted here.
      if (terms.empty()) continue;
      if (options.enable_relay) {
        terms.emplace_back(VarY(h, s), -static_cast<double>(fanout));
      } else {
        // Right-hand side (base injection + fixed producers, scaled by
        // fanout) comes from ApplyBaseState.
        for (OperatorId o : catalog.ProducersOf(s)) {
          const int z = VarZ(h, o);
          if (z >= 0) terms.emplace_back(z, -static_cast<double>(fanout));
        }
      }
      const size_t hs = static_cast<size_t>(h) * S + si;
      send_fanout_[hs] = fanout;
      send_rows_[hs] = mip_.lp.AddRow(
          -lp::kInf, 0.0, std::move(terms),
          "send_h" + std::to_string(h) + "_s" + std::to_string(s));
    }
  }

  // ---- Resource constraints (III.6a-d). ----
  for (HostId from = 0; from < H; ++from) {
    for (HostId to = 0; to < H; ++to) {
      if (from == to) continue;
      std::vector<std::pair<int, double>> terms;
      for (int si = 0; si < S; ++si) {
        const int x = var_x_[(static_cast<size_t>(from) * H + to) * S + si];
        if (x >= 0) {
          terms.emplace_back(x, catalog.stream(streams_[si]).rate_mbps);
        }
      }
      if (terms.empty()) continue;
      // Residual link capacity comes from ApplyBaseState.
      link_rows_[static_cast<size_t>(from) * H + to] = mip_.lp.AddRow(
          -lp::kInf, 0.0, std::move(terms),
          "link_" + std::to_string(from) + "_" + std::to_string(to));
    }
  }
  for (HostId m = 0; m < H; ++m) {
    // (III.6b) incoming NIC.
    std::vector<std::pair<int, double>> in_terms;
    for (HostId h = 0; h < H; ++h) {
      if (h == m) continue;
      for (int si = 0; si < S; ++si) {
        const int x = var_x_[(static_cast<size_t>(h) * H + m) * S + si];
        if (x >= 0) {
          in_terms.emplace_back(x, catalog.stream(streams_[si]).rate_mbps);
        }
      }
    }
    if (!in_terms.empty()) {
      nic_in_rows_[m] = mip_.lp.AddRow(-lp::kInf, 0.0, std::move(in_terms),
                                       "nic_in_h" + std::to_string(m));
    }
    // (III.6c) outgoing NIC including client delivery.
    std::vector<std::pair<int, double>> out_terms;
    for (HostId to = 0; to < H; ++to) {
      if (to == m) continue;
      for (int si = 0; si < S; ++si) {
        const int x = var_x_[(static_cast<size_t>(m) * H + to) * S + si];
        if (x >= 0) {
          out_terms.emplace_back(x, catalog.stream(streams_[si]).rate_mbps);
        }
      }
    }
    for (const DemandSpec& demand : demands_) {
      const int d = VarD(m, demand.stream);
      if (d >= 0) {
        out_terms.emplace_back(d, catalog.stream(demand.stream).rate_mbps);
      }
    }
    if (!out_terms.empty()) {
      nic_out_rows_[m] = mip_.lp.AddRow(-lp::kInf, 0.0, std::move(out_terms),
                                        "nic_out_h" + std::to_string(m));
    }
    // (III.6d) CPU plus the O4 linearisation row
    //   Σ γ_o z_mo <= t - fixed_cpu(m)  ⇔  Σ γ z - t <= -fixed_cpu(m).
    std::vector<std::pair<int, double>> cpu_terms;
    for (int oi = 0; oi < O; ++oi) {
      const int z = var_z_[static_cast<size_t>(m) * O + oi];
      cpu_terms.emplace_back(z, catalog.op(ops_[oi]).cpu_cost);
    }
    if (!cpu_terms.empty()) {
      cpu_rows_[m] = mip_.lp.AddRow(-lp::kInf, 0.0, cpu_terms,
                                    "cpu_h" + std::to_string(m));
    }
    // Memory budget (the paper's §VII "more resources" extension): a row
    // per host with a finite budget, shaped exactly like (III.6d).
    if (std::isfinite(cluster.host(m).mem_mb)) {
      std::vector<std::pair<int, double>> mem_terms;
      for (int oi = 0; oi < O; ++oi) {
        const double mem = catalog.op(ops_[oi]).mem_mb;
        if (mem <= 0.0) continue;
        mem_terms.emplace_back(var_z_[static_cast<size_t>(m) * O + oi], mem);
      }
      if (!mem_terms.empty()) {
        mem_rows_[m] = mip_.lp.AddRow(-lp::kInf, 0.0, std::move(mem_terms),
                                      "mem_h" + std::to_string(m));
      }
    }
    cpu_terms.emplace_back(var_t_, -1.0);
    loadbal_rows_[m] = mip_.lp.AddRow(-lp::kInf, 0.0, std::move(cpu_terms),
                                      "loadbal_h" + std::to_string(m));
  }

  // ---- Acyclicity (III.7), potential formulation. ----
  if (options.acyclicity == AcyclicityMode::kPotentials) {
    const double big_m = H + 2.0;
    for (HostId h = 0; h < H; ++h) {
      for (HostId m = 0; m < H; ++m) {
        if (h == m) continue;
        for (int si = 0; si < S; ++si) {
          const int x = var_x_[(static_cast<size_t>(h) * H + m) * S + si];
          if (x < 0) continue;
          const int ph = var_p_[static_cast<size_t>(h) * S + si];
          const int pm = var_p_[static_cast<size_t>(m) * S + si];
          // p_hs >= p_ms + 1 - M(1 - x_hms)
          //   ⇔  -p_hs + p_ms + M·x_hms <= M - 1.
          mip_.lp.AddRow(-lp::kInf, big_m - 1.0,
                         {{ph, -1.0}, {pm, 1.0}, {x, big_m}},
                         "acyc");
        }
      }
    }
  }
}

void SqprMip::ApplyBaseState() {
  const Cluster& cluster = base_->cluster();
  const Catalog& catalog = base_->catalog();
  const int H = num_hosts_;
  const int S = static_cast<int>(streams_.size());
  const BaseState st = ComputeBaseState();

  // ---- y bounds: availability pins from irrelevant committed consumers,
  // overlaid with the §VII host-subset restriction (committed pins win —
  // warm starts must stay feasible on restricted hosts too). ----
  std::vector<bool> in_subset;
  if (!options_.host_subset.empty()) {
    in_subset.assign(H, false);
    for (HostId h : options_.host_subset) {
      if (h >= 0 && h < H) in_subset[h] = true;
    }
  }
  for (HostId h = 0; h < H; ++h) {
    const bool restricted = !in_subset.empty() && !in_subset[h];
    for (int si = 0; si < S; ++si) {
      const size_t hs = static_cast<size_t>(h) * S + si;
      const int y = var_y_[hs];
      if (st.pin_y[hs]) {
        mip_.lp.SetVariableBounds(y, 1.0, 1.0);
      } else if (restricted) {
        mip_.lp.SetVariableBounds(y, 0.0, 0.0);
      } else {
        mip_.lp.SetVariableBounds(y, 0.0, 1.0);
      }
    }
  }

  // ---- (III.5a) right-hand sides: base injection + fixed producers. ----
  for (HostId m = 0; m < H; ++m) {
    for (int si = 0; si < S; ++si) {
      const StreamInfo& info = catalog.stream(streams_[si]);
      double constant = 0.0;
      if (info.is_base && info.source_host == m) constant += 1.0;
      constant += st.fixed_producer[static_cast<size_t>(m) * S + si];
      mip_.lp.SetRowBounds(avail_rows_[static_cast<size_t>(m) * S + si],
                           -lp::kInf, constant);
    }
  }

  // ---- (III.5c) send rows: the right-hand side is base-dependent only
  // in the no-relay ablation (generation capability counts fixed
  // producers); with relays it is identically zero. ----
  for (HostId h = 0; h < H; ++h) {
    for (int si = 0; si < S; ++si) {
      const size_t hs = static_cast<size_t>(h) * S + si;
      const int row = send_rows_[hs];
      if (row < 0) continue;
      double constant = 0.0;
      if (!options_.enable_relay) {
        const StreamInfo& info = catalog.stream(streams_[si]);
        const int fanout = send_fanout_[hs];
        if (info.is_base && info.source_host == h) constant += fanout;
        constant += static_cast<double>(fanout) * st.fixed_producer[hs];
      }
      mip_.lp.SetRowBounds(row, -lp::kInf, constant);
    }
  }

  // ---- (III.6a) residual link capacities. ----
  for (HostId from = 0; from < H; ++from) {
    for (HostId to = 0; to < H; ++to) {
      if (from == to) continue;
      const int row = link_rows_[static_cast<size_t>(from) * H + to];
      if (row < 0) continue;
      double cap = cluster.link_mbps(from, to);
      auto it = st.link_extra.find({from, to});
      const double used = base_->LinkUsed(from, to) -
                          (it == st.link_extra.end() ? 0.0 : it->second);
      cap -= used;
      mip_.lp.SetRowBounds(row, -lp::kInf, cap);
    }
  }

  // ---- (III.6b-d) + memory + O4 linearisation residuals. ----
  for (HostId m = 0; m < H; ++m) {
    if (nic_in_rows_[m] >= 0) {
      mip_.lp.SetRowBounds(nic_in_rows_[m], -lp::kInf, st.nic_in_resid[m]);
    }
    if (nic_out_rows_[m] >= 0) {
      mip_.lp.SetRowBounds(nic_out_rows_[m], -lp::kInf, st.nic_out_resid[m]);
    }
    if (cpu_rows_[m] >= 0) {
      mip_.lp.SetRowBounds(cpu_rows_[m], -lp::kInf, st.cpu_resid[m]);
    }
    if (mem_rows_[m] >= 0) {
      mip_.lp.SetRowBounds(mem_rows_[m], -lp::kInf, st.mem_resid[m]);
    }
    const double fixed_cpu = cluster.host(m).cpu - st.cpu_resid[m];
    mip_.lp.SetRowBounds(loadbal_rows_[m], -lp::kInf, -fixed_cpu);
  }
}

Status SqprMip::CheckModelEquals(const SqprMip& other) const {
  const lp::Model& a = mip_.lp;
  const lp::Model& b = other.mip_.lp;
  if (a.num_variables() != b.num_variables()) {
    return Status::Internal("variable count " +
                            std::to_string(a.num_variables()) + " vs " +
                            std::to_string(b.num_variables()));
  }
  if (a.num_rows() != b.num_rows()) {
    return Status::Internal("row count " + std::to_string(a.num_rows()) +
                            " vs " + std::to_string(b.num_rows()));
  }
  for (int v = 0; v < a.num_variables(); ++v) {
    if (a.variable_lb(v) != b.variable_lb(v) ||
        a.variable_ub(v) != b.variable_ub(v) ||
        a.objective(v) != b.objective(v) ||
        a.variable_name(v) != b.variable_name(v) ||
        mip_.integer[v] != other.mip_.integer[v] ||
        mip_.branch_priority[v] != other.mip_.branch_priority[v]) {
      return Status::Internal("variable " + std::to_string(v) + " (" +
                              a.variable_name(v) + ") differs");
    }
  }
  for (int r = 0; r < a.num_rows(); ++r) {
    if (a.row_lb(r) != b.row_lb(r) || a.row_ub(r) != b.row_ub(r) ||
        a.row_terms(r) != b.row_terms(r) || a.row_name(r) != b.row_name(r)) {
      return Status::Internal("row " + std::to_string(r) + " (" +
                              a.row_name(r) + ") differs: ub " +
                              std::to_string(a.row_ub(r)) + " vs " +
                              std::to_string(b.row_ub(r)));
    }
  }
  return Status::OK();
}

std::vector<double> SqprMip::WarmStart() const {
  SQPR_TRACE_SPAN("planner/warm_start");
  std::vector<double> x(mip_.lp.num_variables(), 0.0);

  // Committed flows / placements / servings restricted to relevant sets.
  for (StreamId s : streams_) {
    for (const auto& [from, to] : base_->FlowsOf(s)) {
      const int var = VarX(from, to, s);
      if (var >= 0) x[var] = 1.0;
    }
  }
  for (HostId h = 0; h < num_hosts_; ++h) {
    for (OperatorId o : base_->OperatorsOn(h)) {
      const int var = VarZ(h, o);
      if (var >= 0) x[var] = 1.0;
    }
  }
  for (const DemandSpec& demand : demands_) {
    const HostId server = base_->ServingHost(demand.stream);
    if (server != kInvalidHost) {
      const int var = VarD(server, demand.stream);
      if (var >= 0) x[var] = 1.0;
    }
  }

  // Availability from grounded state; pinned y bounds are honoured by
  // construction because pins only arise from supported consumers.
  const GroundedMap grounded = base_->GroundedAvailability();
  for (HostId h = 0; h < num_hosts_; ++h) {
    for (StreamId s : streams_) {
      if (grounded.at(h, s)) {
        const int var = VarY(h, s);
        if (var >= 0) x[var] = 1.0;
      }
    }
  }

  // Load-balance auxiliary: max committed CPU over hosts.
  double max_cpu = 0.0;
  for (HostId h = 0; h < num_hosts_; ++h) {
    max_cpu = std::max(max_cpu, base_->CpuUsed(h));
  }
  x[static_cast<size_t>(var_t_)] = max_cpu;

  // Potentials from per-stream flow DAG depths.
  if (!var_p_.empty()) {
    for (size_t si = 0; si < streams_.size(); ++si) {
      const StreamId s = streams_[si];
      const auto depths = FlowPotentials(base_->FlowsOf(s));
      for (const auto& [h, depth] : depths) {
        const int var = var_p_[static_cast<size_t>(h) * streams_.size() + si];
        if (var >= 0) x[var] = depth;
      }
    }
  }
  return x;
}

bool SqprMip::Serves(const std::vector<double>& x, StreamId s) const {
  for (HostId h = 0; h < num_hosts_; ++h) {
    const int var = VarD(h, s);
    if (var >= 0 && x[var] > 0.5) return true;
  }
  return false;
}

Status SqprMip::Commit(const std::vector<double>& x,
                       Deployment* target) const {
  SQPR_TRACE_SPAN("planner/model_commit");
  // Clear all relevant state (it was re-decided).
  for (StreamId s : streams_) {
    auto flows = target->FlowsOf(s);  // copy: we mutate while iterating
    for (const auto& [from, to] : flows) {
      SQPR_RETURN_IF_ERROR(target->RemoveFlow(from, to, s));
    }
    if (target->ServingHost(s) != kInvalidHost) {
      SQPR_RETURN_IF_ERROR(target->ClearServing(s));
    }
  }
  for (HostId h = 0; h < num_hosts_; ++h) {
    std::vector<OperatorId> to_remove;
    for (OperatorId o : target->OperatorsOn(h)) {
      if (op_index_.count(o)) to_remove.push_back(o);
    }
    for (OperatorId o : to_remove) {
      SQPR_RETURN_IF_ERROR(target->RemoveOperator(h, o));
    }
  }

  // Install the solution.
  for (HostId h = 0; h < num_hosts_; ++h) {
    for (OperatorId o : ops_) {
      const int z = VarZ(h, o);
      if (z >= 0 && x[z] > 0.5) {
        SQPR_RETURN_IF_ERROR(target->PlaceOperator(h, o));
      }
    }
  }
  for (HostId from = 0; from < num_hosts_; ++from) {
    for (HostId to = 0; to < num_hosts_; ++to) {
      if (from == to) continue;
      for (StreamId s : streams_) {
        const int var = VarX(from, to, s);
        if (var >= 0 && x[var] > 0.5) {
          SQPR_RETURN_IF_ERROR(target->AddFlow(from, to, s));
        }
      }
    }
  }
  for (const DemandSpec& demand : demands_) {
    for (HostId h = 0; h < num_hosts_; ++h) {
      const int d = VarD(h, demand.stream);
      if (d >= 0 && x[d] > 0.5) {
        SQPR_RETURN_IF_ERROR(target->SetServing(demand.stream, h));
        break;
      }
    }
  }
  return Status::OK();
}

int SqprMip::CycleCutHandler::Separate(const std::vector<double>& point,
                                        double arc_threshold,
                                        lp::Model* relaxation) {
  SQPR_TRACE_SPAN_ARGS(span, "milp/lazy_cuts.separate", "cuts", nullptr);
  const SqprMip& mip = *owner_;
  const int H = mip.num_hosts_;
  int cuts = 0;

  for (StreamId s : mip.streams_) {
    // Adjacency over arcs above the threshold.
    std::vector<std::vector<HostId>> next(H);
    bool any = false;
    for (HostId from = 0; from < H; ++from) {
      for (HostId to = 0; to < H; ++to) {
        if (from == to) continue;
        const int var = mip.VarX(from, to, s);
        if (var >= 0 && point[var] > arc_threshold) {
          next[from].push_back(to);
          any = true;
        }
      }
    }
    if (!any) continue;

    // DFS cycle detection with colouring; finds one cycle per stream per
    // invocation (the fractional loop re-separates until clean).
    std::vector<int> colour(H, 0);  // 0 white, 1 grey, 2 black
    std::vector<HostId> parent(H, kInvalidHost);
    std::vector<HostId> cycle;
    std::function<bool(HostId)> dfs = [&](HostId u) -> bool {
      colour[u] = 1;
      for (HostId v : next[u]) {
        if (colour[v] == 0) {
          parent[v] = u;
          if (dfs(v)) return true;
        } else if (colour[v] == 1) {
          cycle.clear();
          cycle.push_back(v);
          for (HostId w = u; w != v; w = parent[w]) cycle.push_back(w);
          std::reverse(cycle.begin() + 1, cycle.end());
          return true;
        }
      }
      colour[u] = 2;
      return false;
    };
    for (HostId h = 0; h < H && cycle.empty(); ++h) {
      if (colour[h] == 0) dfs(h);
    }
    if (cycle.empty()) continue;

    // Cut Σ arcs of the cycle <= |C| - 1, added only if violated.
    std::vector<std::pair<int, double>> terms;
    double activity = 0.0;
    for (size_t i = 0; i < cycle.size(); ++i) {
      const HostId from = cycle[i];
      const HostId to = cycle[(i + 1) % cycle.size()];
      const int var = mip.VarX(from, to, s);
      SQPR_CHECK(var >= 0);
      terms.emplace_back(var, 1.0);
      activity += point[var];
    }
    const double rhs = static_cast<double>(cycle.size()) - 1.0;
    if (activity <= rhs + 1e-7) continue;  // heuristic cycle not violated
    std::string name = "cycle_cut_s" + std::to_string(s);
    if (harvest_ != nullptr) {
      // Cycle cuts are valid for every integral acyclic point of this
      // skeleton, independent of the base deployment — poolable.
      harvest_->Add({-lp::kInf, rhs, terms, name});
    }
    relaxation->AddRow(-lp::kInf, rhs, std::move(terms), std::move(name));
    ++cuts;
  }
  span.set_args(static_cast<uint64_t>(cuts));
  return cuts;
}

int SqprMip::CycleCutHandler::SeparateFromPool(
    const std::vector<double>& point, lp::Model* relaxation) {
  if (pool_ == nullptr || pool_->empty()) return 0;
  const std::vector<milp::PooledCut>& cuts = pool_->cuts();
  if (pool_added_.size() < cuts.size()) pool_added_.resize(cuts.size(), false);
  int added = 0;
  for (size_t i = 0; i < cuts.size(); ++i) {
    if (pool_added_[i]) continue;
    const milp::PooledCut& cut = cuts[i];
    double activity = 0.0;
    for (const auto& term : cut.terms) {
      activity += point[term.first] * term.second;
    }
    if (activity <= cut.ub + 1e-7) continue;
    pool_added_[i] = true;
    relaxation->AddRow(cut.lb, cut.ub, cut.terms, cut.name);
    ++added;
  }
  return added;
}

int SqprMip::CycleCutHandler::AddViolatedCuts(
    const std::vector<double>& candidate, lp::Model* relaxation) {
  // Violated pooled cuts first: they can kill several cycles in one
  // callback, where the DFS detector emits one per stream.
  int cuts = SeparateFromPool(candidate, relaxation);
  cuts += Separate(candidate, /*arc_threshold=*/0.5, relaxation);
  return cuts;
}

int SqprMip::CycleCutHandler::AddFractionalCuts(
    const std::vector<double>& point, lp::Model* relaxation) {
  int cuts = SeparateFromPool(point, relaxation);
  // Arcs above 0.35 can participate in violated 2- and 3-cycles; the
  // violation test filters false positives from longer cycles.
  cuts += Separate(point, /*arc_threshold=*/0.35, relaxation);
  return cuts;
}

}  // namespace sqpr
