#ifndef SQPR_PLANNER_SQPR_MODEL_CACHE_H_
#define SQPR_PLANNER_SQPR_MODEL_CACHE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <utility>
#include <vector>

#include "lp/simplex.h"
#include "milp/cuts.h"
#include "planner/sqpr/model_builder.h"

namespace sqpr {

/// Identity of one grounded SQPR solve *structure*. Two solves with equal
/// keys build bit-identical model skeletons (same variables, rows, terms,
/// objective coefficients and names): the skeleton depends only on the
/// relevant sets, the demand flags, the catalog's rates/costs and the
/// cluster specs — never on the committed deployment, which only moves
/// bounds (see SqprMip::Rebind). The epochs fold every mutable input into
/// the key, so a measured-rate install or a host failure/rejoin makes old
/// cache entries unreachable instead of stale.
struct SolveKey {
  std::vector<StreamId> streams;    // sorted, deduped
  std::vector<OperatorId> operators;
  /// (stream, must_serve) per demand, in demand order.
  std::vector<std::pair<StreamId, uint8_t>> demands;
  uint64_t rate_epoch = 0;  // Catalog::rate_epoch()
  uint64_t spec_epoch = 0;  // Cluster::spec_epoch()

  friend bool operator<(const SolveKey& a, const SolveKey& b) {
    return std::tie(a.rate_epoch, a.spec_epoch, a.streams, a.operators,
                    a.demands) < std::tie(b.rate_epoch, b.spec_epoch,
                                          b.streams, b.operators, b.demands);
  }
  friend bool operator==(const SolveKey& a, const SolveKey& b) {
    return a.rate_epoch == b.rate_epoch && a.spec_epoch == b.spec_epoch &&
           a.streams == b.streams && a.operators == b.operators &&
           a.demands == b.demands;
  }
};

/// Cross-round solve by-products for one SolveKey, reusable to warm-start
/// the next solve of the same structure:
///  * the root LP basis (and the presolve column signature it was
///    harvested under — reuse requires presolve to eliminate the same
///    columns, else the basis is discarded);
///  * pooled lazy cycle cuts (valid for every integral point of the
///    skeleton, so they can seed the next relaxation up front).
/// Immutable after construction; shared by pointer between the live
/// planner, speculative scratch planners and snapshots.
struct SolveArtifacts {
  std::vector<lp::BasisState> root_basis;
  std::vector<int> root_basis_columns;
  milp::CutPool cuts;
};

/// A bounded, thread-safe pool of built SqprMip models keyed by solve
/// structure. Checkout() hands out *exclusive* ownership (the entry is
/// removed from the pool), so a checked-out model can be Rebind()-ed and
/// solved without synchronisation; Return() puts it back for the next
/// round. Concurrent same-key checkouts simply miss and build fresh —
/// correct because a rebound cached model is bit-identical to a fresh
/// build, which also makes the whole cache performance-only: hit/miss
/// timing can never change a solve's result.
///
/// A checked-in model's base-deployment pointer may dangle (scratch
/// deployments die with their proposal); callers must Rebind() before
/// any other use, which is what re-targets the pointer.
class SqprSolveCache {
 public:
  explicit SqprSolveCache(size_t capacity = 16) : capacity_(capacity) {}

  SqprSolveCache(const SqprSolveCache&) = delete;
  SqprSolveCache& operator=(const SqprSolveCache&) = delete;

  /// Removes and returns the model cached for `key`; null on miss.
  std::unique_ptr<SqprMip> Checkout(const SolveKey& key);

  /// Re-inserts a model under `key`, evicting the least-recently-used
  /// entry past capacity.
  void Return(const SolveKey& key, std::unique_ptr<SqprMip> model);

  size_t size() const;

 private:
  struct Entry {
    std::unique_ptr<SqprMip> model;
    uint64_t last_used = 0;
  };

  mutable std::mutex mu_;
  const size_t capacity_;
  uint64_t tick_ = 0;
  std::map<SolveKey, Entry> entries_;
};

}  // namespace sqpr

#endif  // SQPR_PLANNER_SQPR_MODEL_CACHE_H_
