#include "planner/sqpr/sqpr_planner.h"

#include <algorithm>
#include <memory>
#include <mutex>
#include <set>
#include <utility>

#include "common/logging.h"
#include "milp/solver.h"
#include "obs/trace.h"
#include "plan/query_plan.h"
#include "planner/heuristic/heuristic_planner.h"

namespace sqpr {
namespace {

/// Payoff gate for pooled-cut replay: every replayed cut is a candidate
/// extra row in every node LP, so replay only engages when the model has
/// at least this many rows per pooled cut. Below the gate the lazy DFS
/// rediscovers cycles cheaply and replay is a measured net loss.
constexpr int kMinRowsPerPooledCut = 8;

}  // namespace

SqprPlanner::SqprPlanner(const Cluster* cluster, Catalog* catalog,
                         Options options)
    : cluster_(cluster),
      catalog_(catalog),
      options_(options),
      deployment_(cluster, catalog),
      cache_(std::make_shared<SqprSolveCache>()) {}

Result<SqprPlanner::RelevantSets> SqprPlanner::ComputeRelevantSets(
    const std::vector<StreamId>& new_queries) {
  SQPR_TRACE_SPAN("planner/relevant_sets");
  RelevantSets sets;
  std::set<StreamId> stream_set;
  std::set<OperatorId> op_set;

  auto add_closure = [&](StreamId q) -> Status {
    Result<Closure> closure = catalog_->JoinClosure(q);
    if (!closure.ok()) return closure.status();
    stream_set.insert(closure->streams.begin(), closure->streams.end());
    op_set.insert(closure->operators.begin(), closure->operators.end());
    return Status::OK();
  };

  for (StreamId q : new_queries) SQPR_RETURN_IF_ERROR(add_closure(q));
  if (!options_.reduce_problem) {
    // Full re-planning: every admitted query joins the model.
    for (StreamId q : admitted_) SQPR_RETURN_IF_ERROR(add_closure(q));
  }

  sets.streams.assign(stream_set.begin(), stream_set.end());
  sets.operators.assign(op_set.begin(), op_set.end());

  // Demands: new queries are optional (admission maximised); admitted
  // queries inside the relevant set carry the (IV.9) no-drop equality.
  std::set<StreamId> demanded;
  for (StreamId q : new_queries) {
    if (demanded.insert(q).second) {
      sets.demands.push_back({q, /*must_serve=*/false});
    }
  }
  for (StreamId q : admitted_) {
    if (stream_set.count(q) && demanded.insert(q).second) {
      sets.demands.push_back({q, /*must_serve=*/true});
    }
  }
  return sets;
}

Result<PlanningStats> SqprPlanner::SubmitQuery(StreamId query) {
  Result<std::vector<PlanningStats>> batch = SubmitBatch({query});
  if (!batch.ok()) return batch.status();
  return batch->front();
}

Result<std::vector<PlanningStats>> SqprPlanner::SubmitBatch(
    const std::vector<StreamId>& queries) {
  SQPR_TRACE_SPAN_ARGS(span, "planner/solve", "fresh_queries",
                       "relevant_streams");
  Stopwatch watch;
  std::vector<PlanningStats> stats(queries.size());

  // Algorithm 1 line 3: drop already-admitted duplicates from the solve.
  std::vector<StreamId> fresh;
  for (size_t i = 0; i < queries.size(); ++i) {
    if (deployment_.ServingHost(queries[i]) != kInvalidHost) {
      stats[i].admitted = true;
      stats[i].already_served = true;
    } else {
      fresh.push_back(queries[i]);
    }
  }
  std::sort(fresh.begin(), fresh.end());
  fresh.erase(std::unique(fresh.begin(), fresh.end()), fresh.end());
  if (fresh.empty()) {
    for (auto& s : stats) s.wall_ms = watch.ElapsedMillis();
    return stats;
  }

  Result<RelevantSets> sets = ComputeRelevantSets(fresh);
  if (!sets.ok()) return sets.status();

  // Structural identity of this solve: equal keys build bit-identical
  // skeletons, so a cached model can be rebound instead of rebuilt and
  // the previous round's basis/cuts can seed the search.
  SolveKey key;
  key.streams = sets->streams;
  key.operators = sets->operators;
  key.demands.reserve(sets->demands.size());
  for (const DemandSpec& d : sets->demands) {
    key.demands.emplace_back(d.stream, d.must_serve ? 1 : 0);
  }
  key.rate_epoch = catalog_->rate_epoch();
  key.spec_epoch = cluster_->spec_epoch();

  std::unique_ptr<SqprMip> mip_owned;
  bool patched = false;
  if (options_.enable_model_cache && cache_ != nullptr) {
    mip_owned = cache_->Checkout(key);
  }
  if (mip_owned != nullptr) {
    mip_owned->Rebind(deployment_);
    patched = true;
    if (options_.verify_incremental) {
      // Differential mode: the patched skeleton must match a fresh build
      // bit for bit — any divergence means a base-dependent quantity
      // leaked into the skeleton (or a patch missed a bound).
      SqprMip reference(deployment_, sets->streams, sets->operators,
                        sets->demands, options_.model);
      const Status same = mip_owned->CheckModelEquals(reference);
      SQPR_CHECK(same.ok()) << "patched model diverged from fresh build: "
                            << same.ToString();
    }
  } else {
    mip_owned = std::make_unique<SqprMip>(deployment_, sets->streams,
                                          sets->operators, sets->demands,
                                          options_.model);
  }
  SqprMip& mip = *mip_owned;
  const std::vector<double> warm = mip.WarmStart();

  // Prior-round artifacts for this structure, if any. Three warm levers,
  // each gated deterministically (never on measured wall time — replay
  // and fingerprint determinism depend on identical decisions at every
  // worker count):
  //  * the root basis warm-starts the first LP (discarded inside the
  //    solver if presolve keeps different columns this round);
  //  * the root rounding dive is skipped — the warm-start incumbent
  //    already plays its role, and the cut rows the dive's throwaway
  //    points separate pollute every later node LP;
  //  * pooled cycle cuts become a *separation source* for the lazy
  //    handler, but only when the model is large enough that extra rows
  //    can pay for themselves (bulk up-front injection measured slower
  //    than cold on small models: +33% rows in every node LP for ~5%
  //    fewer nodes).
  std::shared_ptr<const SolveArtifacts> prior;
  auto art_it = artifacts_.find(key);
  if (art_it != artifacts_.end()) prior = art_it->second;

  auto next_art = std::make_shared<SolveArtifacts>();
  if (prior != nullptr) next_art->cuts = prior->cuts;
  SqprMip::CycleCutHandler cycle_handler(&mip);
  cycle_handler.set_harvest(&next_art->cuts);
  if (prior != nullptr && !prior->cuts.empty() &&
      mip.mip().lp.num_rows() >=
          kMinRowsPerPooledCut * static_cast<int>(prior->cuts.size())) {
    cycle_handler.set_pool(&prior->cuts);
  }

  milp::SolverOptions solver_options;
  solver_options.deadline = Deadline::AfterMillis(
      options_.timeout_ms * static_cast<int64_t>(fresh.size()));
  // The degraded-mode budget is per *solve*, deliberately not scaled by
  // the batch size: it caps how long any one solve can stall the
  // service event loop.
  solver_options.solve_deadline_ms = options_.solve_deadline_ms;
  solver_options.max_nodes = options_.max_nodes;
  solver_options.gap_abs = options_.mip_gap_abs;
  solver_options.gap_rel = options_.mip_gap_rel;
  solver_options.warm_start = &warm;
  if (options_.model.acyclicity == AcyclicityMode::kLazyCycleCuts) {
    solver_options.lazy = &cycle_handler;
  }
  if (prior != nullptr && !prior->root_basis.empty()) {
    solver_options.root_warm_basis = &prior->root_basis;
    solver_options.root_warm_basis_columns = &prior->root_basis_columns;
  }
  if (prior != nullptr) solver_options.root_dive = false;

  span.set_args(fresh.size(), sets->streams.size());
  milp::Solver solver;
  milp::MipResult result = solver.Solve(mip.mip(), solver_options);

  if (result.has_solution()) {
    SQPR_CHECK_OK(mip.Commit(result.x, &deployment_));
    if (options_.validate_commits) {
      const Status valid = deployment_.Validate();
      SQPR_CHECK(valid.ok()) << "commit broke deployment invariants: "
                             << valid.ToString();
    }
    for (size_t i = 0; i < queries.size(); ++i) {
      if (stats[i].already_served) continue;
      if (mip.Serves(result.x, queries[i]) ||
          deployment_.ServingHost(queries[i]) != kInvalidHost) {
        stats[i].admitted = true;
        // A batch may contain duplicates; admit each stream once.
        if (std::find(admitted_.begin(), admitted_.end(), queries[i]) ==
            admitted_.end()) {
          admitted_.push_back(queries[i]);
        }
      }
    }
  }

  // Harvest this round's by-products for the next solve of the same
  // structure, and return the skeleton to the pool. Both are keyed by
  // `key`, so a rate/spec epoch bump or a different relevant set makes
  // them unreachable rather than stale.
  next_art->root_basis = std::move(result.root_basis);
  next_art->root_basis_columns = std::move(result.root_basis_columns);
  last_artifact_key_ = key;
  last_artifacts_ = next_art;
  artifacts_[key] = std::move(next_art);
  if (artifacts_.size() > 64) artifacts_.clear();
  if (options_.enable_model_cache && cache_ != nullptr) {
    cache_->Return(key, std::move(mip_owned));
  }

  // §VII greedy fallback: queries the deadline-bound solver could not
  // place may still have a straightforward single-host plan.
  if (options_.greedy_fallback &&
      result.status != milp::MipStatus::kOptimal) {
    SQPR_TRACE_SPAN("planner/greedy");
    for (size_t i = 0; i < queries.size(); ++i) {
      if (stats[i].admitted) continue;
      if (deployment_.ServingHost(queries[i]) != kInvalidHost) continue;
      if (GreedyAdmit(*cluster_, catalog_, queries[i],
                      options_.model.weights, &deployment_)) {
        stats[i].admitted = true;
        stats[i].admitted_via_heuristic = true;
        admitted_.push_back(queries[i]);
        if (options_.validate_commits) {
          const Status valid = deployment_.Validate();
          SQPR_CHECK(valid.ok()) << valid.ToString();
        }
      }
    }
  }

  const double elapsed = watch.ElapsedMillis();
  for (auto& s : stats) {
    s.wall_ms = elapsed;
    s.solver_nodes = result.nodes;
    s.lp_iterations = result.lp_iterations;
    s.objective = result.has_solution() ? result.objective : 0.0;
    s.proved_optimal = result.status == milp::MipStatus::kOptimal;
    s.deadline_hit = result.deadline_hit;
    s.model_patched = patched;
    s.model_rebuilt = !patched;
    s.warm_started = result.used_warm_basis;
    s.basis_discarded = result.warm_basis_discarded;
  }
  return stats;
}

Status SqprPlanner::RemoveQuery(StreamId query) {
  auto it = std::find(admitted_.begin(), admitted_.end(), query);
  if (it == admitted_.end()) {
    return Status::NotFound("query not admitted");
  }
  admitted_.erase(it);
  SQPR_RETURN_IF_ERROR(deployment_.ClearServing(query));
  GarbageCollect();
  if (options_.validate_commits) {
    SQPR_RETURN_IF_ERROR(deployment_.Validate());
  }
  return Status::OK();
}

Result<PlanningStats> SqprPlanner::AdmitMaterialized(
    StreamId query, const std::vector<HostId>& hosts) {
  Stopwatch watch;
  if (query < 0 || query >= catalog_->num_streams()) {
    return Status::InvalidArgument("unknown stream");
  }
  for (HostId host : hosts) {
    if (host < 0 || host >= cluster_->num_hosts()) {
      return Status::InvalidArgument("unknown host");
    }
  }
  PlanningStats stats;
  if (deployment_.ServingHost(query) != kInvalidHost) {
    stats.admitted = true;
    stats.already_served = true;
    stats.wall_ms = watch.ElapsedMillis();
    return stats;
  }
  const GroundedMap grounded = deployment_.GroundedAvailability();
  bool any_grounded = false;
  for (HostId host : hosts) {
    if (!grounded.at(host, query)) continue;
    any_grounded = true;
    if (!deployment_.CanServe(query, host)) continue;
    SQPR_RETURN_IF_ERROR(deployment_.SetServing(query, host));
    admitted_.push_back(query);
    if (options_.validate_commits) {
      const Status valid = deployment_.Validate();
      if (!valid.ok()) {
        admitted_.pop_back();
        SQPR_CHECK_OK(deployment_.ClearServing(query));
        return valid;
      }
    }
    stats.admitted = true;
    stats.via_cache = true;
    stats.wall_ms = watch.ElapsedMillis();
    return stats;
  }
  if (any_grounded) {
    return Status::ResourceExhausted(
        "no serving NIC headroom on any materialising host");
  }
  return Status::FailedPrecondition(
      "stream not materialised at any candidate host");
}

Result<std::vector<StreamId>> SqprPlanner::EvictHost(HostId host) {
  if (host < 0 || host >= cluster_->num_hosts()) {
    return Status::InvalidArgument("unknown host");
  }

  // Pass 1: queries whose extracted plan runs through the host. The
  // removals may legitimately leave the ledgers over a (shrunken) budget
  // mid-flight, so ResourceExhausted from the post-removal audit is not
  // fatal — the removal itself has been applied.
  std::vector<StreamId> affected;
  for (StreamId q : admitted_) {
    if (PlanUsesHost(deployment_, q, host)) affected.push_back(q);
  }
  for (StreamId q : affected) {
    const Status st = RemoveQuery(q);
    if (!st.ok() && !st.IsResourceExhausted() && !st.IsNotFound()) return st;
  }

  // Pass 2: purge residual allocations — redundant supports of surviving
  // queries that the conservative per-query GC keeps alive.
  const std::vector<OperatorId> residual_ops(
      deployment_.OperatorsOn(host).begin(),
      deployment_.OperatorsOn(host).end());
  for (OperatorId o : residual_ops) {
    SQPR_RETURN_IF_ERROR(deployment_.RemoveOperator(host, o));
  }
  for (StreamId s = 0; s < catalog_->num_streams(); ++s) {
    const auto flows = deployment_.FlowsOf(s);  // copy: mutation below
    for (const auto& [from, to] : flows) {
      if (from == host || to == host) {
        SQPR_RETURN_IF_ERROR(deployment_.RemoveFlow(from, to, s));
      }
    }
  }

  // Pass 3: the purge may have been the sole support of a surviving
  // query that extraction happened to route around — evict those too,
  // then GC the now-unsupported residue.
  const GroundedMap grounded = deployment_.GroundedAvailability();
  const std::vector<StreamId> admitted_snapshot = admitted_;
  for (StreamId q : admitted_snapshot) {
    const HostId server = deployment_.ServingHost(q);
    if (server == kInvalidHost || !grounded.at(server, q)) {
      const Status st = RemoveQuery(q);
      if (!st.ok() && !st.IsResourceExhausted() && !st.IsNotFound()) {
        return st;
      }
      affected.push_back(q);
    }
  }
  GarbageCollect();
  if (options_.validate_commits) {
    const Status valid = deployment_.Validate();
    if (!valid.ok() && !valid.IsResourceExhausted()) return valid;
  }
  return affected;
}

void SqprPlanner::GarbageCollect() {
  const Catalog& catalog = *catalog_;
  const GroundedMap grounded = deployment_.GroundedAvailability();

  // Mark phase: (host, stream) needs seeded by the served streams; every
  // grounded support of a needed pair is kept (conservative: redundant
  // supports of live streams survive).
  std::set<std::pair<HostId, StreamId>> needed;
  std::vector<std::pair<HostId, StreamId>> worklist;
  for (StreamId s : deployment_.ServedStreams()) {
    const HostId h = deployment_.ServingHost(s);
    if (needed.insert({h, s}).second) worklist.push_back({h, s});
  }
  std::set<std::pair<HostId, OperatorId>> live_ops;
  std::set<std::tuple<HostId, HostId, StreamId>> live_flows;
  while (!worklist.empty()) {
    const auto [h, s] = worklist.back();
    worklist.pop_back();
    // Local producers with grounded inputs.
    for (OperatorId o : deployment_.OperatorsOn(h)) {
      const OperatorInfo& op = catalog.op(o);
      if (op.output != s) continue;
      bool ok = true;
      for (StreamId in : op.inputs) {
        if (!grounded.at(h, in)) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      if (live_ops.insert({h, o}).second) {
        for (StreamId in : op.inputs) {
          if (needed.insert({h, in}).second) worklist.push_back({h, in});
        }
      }
    }
    // Incoming flows from grounded senders.
    for (const auto& [from, to] : deployment_.FlowsOf(s)) {
      if (to != h || !grounded.at(from, s)) continue;
      if (live_flows.insert({from, to, s}).second) {
        if (needed.insert({from, s}).second) worklist.push_back({from, s});
      }
    }
  }

  // Sweep phase.
  for (HostId h = 0; h < cluster_->num_hosts(); ++h) {
    std::vector<OperatorId> dead;
    for (OperatorId o : deployment_.OperatorsOn(h)) {
      if (live_ops.count({h, o}) == 0) dead.push_back(o);
    }
    for (OperatorId o : dead) {
      SQPR_CHECK_OK(deployment_.RemoveOperator(h, o));
    }
  }
  std::vector<std::tuple<HostId, HostId, StreamId>> dead_flows;
  for (StreamId s = 0; s < grounded.num_streams; ++s) {
    for (const auto& [from, to] : deployment_.FlowsOf(s)) {
      if (live_flows.count({from, to, s}) == 0) {
        dead_flows.emplace_back(from, to, s);
      }
    }
  }
  for (const auto& [from, to, s] : dead_flows) {
    SQPR_CHECK_OK(deployment_.RemoveFlow(from, to, s));
  }
}

Status SqprPlanner::WarmCatalog(StreamId query) {
  if (query < 0 || query >= catalog_->num_streams()) {
    return Status::InvalidArgument("unknown stream " + std::to_string(query));
  }
  SQPR_TRACE_SPAN("planner/warm_catalog");
  // JoinClosure interns every subset join stream and every binary split
  // operator of the leaf set — the complete universe both the reduced
  // MILP (ComputeRelevantSets) and the greedy fallback (join-tree
  // enumeration) can reference. Afterwards, solves for this query only
  // ever *find* catalog entries.
  return catalog_->JoinClosure(query).status();
}

Result<AdmissionProposal> SqprPlanner::ProposeAdmission(
    StreamId query) const {
  if (query < 0 || query >= catalog_->num_streams()) {
    return Status::InvalidArgument("unknown stream " + std::to_string(query));
  }
  SQPR_TRACE_SPAN("planner/propose");
  // Solve on a private scratch planner seeded with the committed state;
  // *this stays untouched, so concurrent proposals may share it.
  SqprPlanner scratch(cluster_, catalog_, options_);
  scratch.deployment_ = deployment_;
  scratch.admitted_ = admitted_;
  // Share the model pool (internally synchronised; Checkout is
  // exclusive) and copy the artifact table so the scratch solve can
  // warm-start; its own harvest travels back inside the proposal.
  scratch.cache_ = cache_;
  scratch.artifacts_ = artifacts_;

  AdmissionProposal proposal;
  proposal.query = query;
  proposal.base_version = deployment_.structure_version();
  Result<PlanningStats> stats = scratch.SubmitQuery(query);
  if (!stats.ok()) return stats.status();
  proposal.stats = *stats;
  proposal.artifact_key = scratch.last_artifact_key_;
  proposal.artifacts = std::move(scratch.last_artifacts_);
  if (stats->admitted && !stats->already_served) {
    proposal.delta = DiffDeployments(deployment_, scratch.deployment_);
  }
  return proposal;
}

std::shared_ptr<const SqprPlanner::Snapshot> SqprPlanner::MakeSnapshot(
    SnapshotStats* stats) {
  SnapshotStats local;
  // Rebase when this is the first snapshot ever (journalling starts
  // here — before that the journal is not anchored to any core), the
  // overlay has outgrown the threshold, or the journal overflowed its
  // bound between snapshots (a truncated epoch cannot replay). The
  // rebase pays one full copy; amortised over the >= threshold
  // mutations that forced it.
  const size_t threshold =
      static_cast<size_t>(std::max(0, options_.snapshot_rebase_threshold));
  const bool rebase = snapshot_core_ == nullptr ||
                      !deployment_.journal_enabled() ||
                      deployment_.journal_truncated() ||
                      deployment_.journal().size() > threshold;
  if (rebase) {
    // The journal bound doubles the threshold so back-to-back
    // snapshots straddling exactly `threshold` mutations rebase via
    // the size check, not the truncation path; past 2x with no
    // snapshot draining it, recording stops and memory stays bounded.
    deployment_.EnableJournal(2 * threshold + 1);
    snapshot_core_ = std::make_shared<const Deployment>(deployment_);
    local.rebased = true;
    local.bytes_copied += deployment_.ApproxSizeBytes();
  }
  std::shared_ptr<Snapshot> snap(new Snapshot());
  snap->cluster_ = cluster_;
  snap->catalog_ = catalog_;
  snap->options_ = options_;
  snap->core_ = snapshot_core_;
  snap->overlay_ = deployment_.journal();
  snap->admitted_ = admitted_;
  snap->cache_ = cache_;
  snap->artifacts_ = artifacts_;
  local.overlay_entries = snap->overlay_.size();
  local.bytes_copied += snap->overlay_.size() * sizeof(DeploymentMutation) +
                        snap->admitted_.size() * sizeof(StreamId);
  if (stats != nullptr) *stats = local;
  return snap;
}

const SqprPlanner& SqprPlanner::Snapshot::Materialized() const {
  std::call_once(once_, [this] {
    SQPR_TRACE_SPAN_ARGS(span, "service/snapshot.materialize",
                         "overlay_entries", nullptr);
    span.set_args(overlay_.size());
    auto planner =
        std::make_unique<SqprPlanner>(cluster_, catalog_, options_);
    planner->deployment_ = *core_;
    // Replaying the journal suffix reproduces the live deployment at
    // MakeSnapshot time bit for bit (see DeploymentMutation) — the same
    // state the retired deep copy used to capture, at O(changes) loop
    // -thread cost instead of O(deployment).
    SQPR_CHECK_OK(planner->deployment_.ApplyJournal(overlay_));
    planner->admitted_ = admitted_;
    planner->cache_ = cache_;
    planner->artifacts_ = artifacts_;
    materialized_ = std::move(planner);
  });
  return *materialized_;
}

Result<AdmissionProposal> SqprPlanner::Snapshot::ProposeAdmission(
    StreamId query) const {
  return Materialized().ProposeAdmission(query);
}

Result<PlanningStats> SqprPlanner::CommitProposal(
    const AdmissionProposal& proposal) {
  if (proposal.query < 0 || proposal.query >= catalog_->num_streams()) {
    return Status::InvalidArgument("unknown stream " +
                                   std::to_string(proposal.query));
  }
  SQPR_TRACE_SPAN("planner/commit");
  PlanningStats stats = proposal.stats;
  if (deployment_.ServingHost(proposal.query) != kInvalidHost) {
    // Someone (an earlier commit, a cache fast path) admitted an
    // equivalent query meanwhile: free dedup, nothing to apply. A fresh
    // inline solve at this point would dedup identically — and would
    // not have run a MILP — so taking this path before the version gate
    // (and installing no artifacts) is exactly what pipeline-depth
    // invariance requires.
    stats.admitted = true;
    stats.already_served = true;
    return stats;
  }
  if (proposal.base_version != deployment_.structure_version()) {
    // Strict staleness gate: the committed state structurally diverged
    // from the state the proposal was solved against, so the delta may
    // encode decisions (placements, reuse) a fresh solve of the live
    // state would not make. Nothing is adopted — not even the solve
    // artifacts: a stale solve's root basis and pooled cuts steer the
    // node-bounded search of later solves, so installing them would let
    // pipeline depth change which incumbents those solves stop on. The
    // caller re-solves inline; that solve installs its own artifacts at
    // this same logical point.
    return Status::FailedPrecondition(
        "proposal for stream " + std::to_string(proposal.query) +
        " solved against structure version " +
        std::to_string(proposal.base_version) + ", committed state is at " +
        std::to_string(deployment_.structure_version()));
  }
  // The version matched: the proposal's base state is bit-identical to
  // the live state, so these by-products are exactly what an inline
  // solve here would have harvested. Install on the committing thread,
  // in commit order, to keep the artifact table identical across worker
  // counts and pipeline depths.
  if (proposal.artifacts != nullptr) {
    artifacts_[proposal.artifact_key] = proposal.artifacts;
    if (artifacts_.size() > 64) artifacts_.clear();
  }
  if (!stats.admitted || stats.already_served) {
    // The solve rejected the query — or saw it as already served against
    // a state where it no longer is. Either way nothing commits; report
    // a rejection so the caller can re-plan it.
    stats.admitted = false;
    stats.already_served = false;
    return stats;
  }

  // Merge into a scratch copy and audit before adopting, so a conflict
  // leaves the committed state untouched.
  Deployment merged = deployment_;
  const Status applied = ApplyDeploymentDelta(proposal.delta, &merged);
  if (!applied.ok()) {
    return Status::FailedPrecondition(
        "proposal for stream " + std::to_string(proposal.query) +
        " no longer applies: " + applied.ToString());
  }
  const Status valid = merged.Validate();
  if (!valid.ok()) {
    return Status::FailedPrecondition(
        "proposal for stream " + std::to_string(proposal.query) +
        " invalid against drifted state: " + valid.ToString());
  }
  deployment_ = std::move(merged);
  if (std::find(admitted_.begin(), admitted_.end(), proposal.query) ==
      admitted_.end()) {
    admitted_.push_back(proposal.query);
  }
  return stats;
}

Result<std::vector<PlanningStats>> SqprPlanner::ReplanQueries(
    const std::vector<StreamId>& queries) {
  // §IV-B: remove the drifted queries, then re-admit them one by one
  // against the slimmed-down deployment.
  for (StreamId q : queries) {
    const Status removed = RemoveQuery(q);
    if (!removed.ok() && !removed.IsNotFound()) return removed;
  }
  std::vector<PlanningStats> all;
  all.reserve(queries.size());
  for (StreamId q : queries) {
    Result<PlanningStats> stats = SubmitQuery(q);
    if (!stats.ok()) return stats.status();
    all.push_back(*stats);
  }
  return all;
}

}  // namespace sqpr
