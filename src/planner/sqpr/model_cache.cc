#include "planner/sqpr/model_cache.h"

namespace sqpr {

std::unique_ptr<SqprMip> SqprSolveCache::Checkout(const SolveKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return nullptr;
  std::unique_ptr<SqprMip> model = std::move(it->second.model);
  entries_.erase(it);
  return model;
}

void SqprSolveCache::Return(const SolveKey& key,
                            std::unique_ptr<SqprMip> model) {
  if (model == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = entries_[key];
  entry.model = std::move(model);  // last writer wins on a same-key race
  entry.last_used = ++tick_;
  while (entries_.size() > capacity_) {
    auto victim = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.last_used < victim->second.last_used) victim = it;
    }
    entries_.erase(victim);
  }
}

size_t SqprSolveCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace sqpr
