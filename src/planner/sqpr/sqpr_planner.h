#ifndef SQPR_PLANNER_SQPR_SQPR_PLANNER_H_
#define SQPR_PLANNER_SQPR_SQPR_PLANNER_H_

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "model/catalog.h"
#include "model/cluster.h"
#include "plan/deployment.h"
#include "planner/planner.h"
#include "planner/sqpr/model_builder.h"
#include "planner/sqpr/model_cache.h"

namespace sqpr {

/// The SQPR planner (§IV): query admission, operator placement and reuse
/// solved as one reduced MILP per submission (Algorithm 1).
///
/// Key behaviours reproduced from the paper:
///  * dedup of already-admitted queries (line 3);
///  * problem reduction to S(q)/O(q) with all other decisions fixed
///    (line 4) — switchable off for the ablation benchmark;
///  * the no-drop constraint (IV.9) for admitted queries that fall inside
///    the relevant set, while still allowing their operators to migrate;
///  * a fixed per-query solver timeout after which the best incumbent is
///    used, or the query rejected if none admits it (§IV-C);
///  * batched submission with an n-fold timeout (Fig. 4(b));
///  * adaptive re-planning by removing and re-adding queries (§IV-B).
/// A side-effect-free admission solve, produced by ProposeAdmission —
/// possibly on a worker-pool thread — and applied later, on the thread
/// owning the planner, by CommitProposal. `delta` is relative to the
/// committed deployment the proposal was solved against; it is empty
/// when the solve did not admit the query.
struct AdmissionProposal {
  StreamId query = kInvalidStream;
  PlanningStats stats;
  DeploymentDelta delta;
  /// Deployment::structure_version() of the committed state the solve ran
  /// against. CommitProposal fails FailedPrecondition on *any* mismatch:
  /// between service barriers, structural mutations are the only way the
  /// solve-relevant state changes (rate installs happen solely inside
  /// barrier handlers, which retire every in-flight round first), so
  /// version equality attests the proposal's base state is bit-identical
  /// to the live state — the condition under which committing the delta
  /// equals re-solving inline. Anything weaker would let pipeline depth
  /// change committed plans.
  uint64_t base_version = 0;
  /// Solve by-products (root LP basis, pooled cycle cuts) harvested by
  /// the scratch solve, keyed by the solve's structural identity; null
  /// when no MILP ran (dedup or fast-path admissions). CommitProposal
  /// installs them into the committing planner's artifact table so the
  /// next solve of the same structure warm-starts.
  SolveKey artifact_key;
  std::shared_ptr<const SolveArtifacts> artifacts;
};

class SqprPlanner : public Planner {
 public:
  struct Options {
    /// Per-query CPLEX-analogue timeout. Batches get n× this budget.
    int64_t timeout_ms = 1000;
    /// Degraded-mode wall budget per MILP *solve* (docs/ARCHITECTURE.md
    /// "Durability & degraded modes"): unlike timeout_ms it is NOT
    /// batch-scaled — it caps how long any single solve may stall the
    /// service, however many queries ride in it. 0 disables. On breach
    /// the solver hands back its best incumbent (or the greedy fallback
    /// takes over) and PlanningStats::deadline_hit reports it. Negative
    /// values make the budget expire instantly — the deterministic
    /// every-solve-breaches lever the durability tests use.
    int64_t solve_deadline_ms = 0;
    int64_t max_nodes = 1000000;
    /// Optimality-gap tolerances handed to the MILP solver. Admission is
    /// worth λ1 (hundreds), so a small absolute gap can never flip an
    /// admission decision — it only stops the search from grinding
    /// through symmetric placements of equal quality.
    double mip_gap_abs = 0.1;
    double mip_gap_rel = 1e-4;
    /// §IV-A problem reduction; false re-plans every admitted query on
    /// each submission (the ablation configuration).
    bool reduce_problem = true;
    /// Re-audit the committed deployment after every commit. Cheap at
    /// experiment scale and catches planner bugs immediately.
    bool validate_commits = true;
    /// When the MILP hits its deadline without an admitting incumbent,
    /// fall back to the §V-A greedy placement before rejecting — the
    /// "combine heuristics with SQPR to increase satisfied queries"
    /// extension the paper proposes in §VII. The MILP keeps first say,
    /// so reuse/replanning quality is unchanged whenever the solver
    /// finishes in time.
    bool greedy_fallback = true;
    /// Snapshot overlays (MakeSnapshot) rebase onto a fresh shared core
    /// — one full deployment copy — once the mutation journal exceeds
    /// this many entries, keeping the per-snapshot copy O(changes since
    /// the last rebase) with an amortised-O(1) rebase cost per mutation.
    int snapshot_rebase_threshold = 256;
    /// Reuse built model skeletons across rounds of the same solve
    /// structure (SqprSolveCache): a cache hit patches bounds against the
    /// current deployment (SqprMip::Rebind) instead of rebuilding every
    /// row, and carries the previous round's root basis and pooled cycle
    /// cuts into the solve. Performance-only — a patched model is
    /// bit-identical to a fresh build.
    bool enable_model_cache = true;
    /// Debug/differential-test mode: after every cache hit, also build
    /// the model from scratch and SQPR_CHECK the patched copy is
    /// bit-identical (CheckModelEquals). Defeats the point of the cache;
    /// keep off outside tests.
    bool verify_incremental = false;
    SqprModelOptions model;
  };

  SqprPlanner(const Cluster* cluster, Catalog* catalog, Options options);

  std::string name() const override { return "sqpr"; }
  Result<PlanningStats> SubmitQuery(StreamId query) override;
  const Deployment& deployment() const override { return deployment_; }
  const std::vector<StreamId>& admitted_queries() const override {
    return admitted_;
  }

  /// Plans `queries` as one joint model with an |queries|-fold timeout
  /// (Fig. 4(b) batching). Per-query admission is reported positionally.
  Result<std::vector<PlanningStats>> SubmitBatch(
      const std::vector<StreamId>& queries);

  /// Removes an admitted query and garbage-collects operators and flows
  /// that no longer support any served stream.
  Status RemoveQuery(StreamId query);

  /// Plan-reuse fast path (§II-C made O(1) by the service's PlanCache):
  /// admits `query` by adding only the client-serving arc at the first
  /// candidate host where the stream is already grounded through
  /// committed operators/flows and the serving NIC has headroom. No
  /// MILP solve; the availability fixpoint is computed once for the
  /// whole candidate list. Fails FailedPrecondition when the stream is
  /// not materialised at any candidate and ResourceExhausted when it is
  /// materialised but no candidate has serving headroom; neither
  /// failure mutates the deployment.
  Result<PlanningStats> AdmitMaterialized(StreamId query,
                                          const std::vector<HostId>& hosts);
  Result<PlanningStats> AdmitMaterialized(StreamId query, HostId host) {
    return AdmitMaterialized(query, std::vector<HostId>{host});
  }

  /// Host-failure fallout (§IV-C): removes every admitted query whose
  /// committed plan touches `host`, purges residual operators/flows on
  /// the host (redundant supports the per-query GC keeps), then evicts
  /// any query whose serving lost groundedness in the purge. Returns the
  /// removed queries, in eviction order, for the caller to re-admit.
  Result<std::vector<StreamId>> EvictHost(HostId host);

  /// Rebuilds the deployment's resource ledgers from the catalog's
  /// current costs — required after Catalog::UpdateBaseRate (§IV-B).
  void RefreshAccounting() { deployment_.RecomputeAggregates(); }

  /// §IV-B adaptive re-planning: conceptually removes the queries and
  /// re-admits them one by one (e.g. after resource-estimate drift).
  /// Returns one stats entry per query in order.
  Result<std::vector<PlanningStats>> ReplanQueries(
      const std::vector<StreamId>& queries);

  // ---- Speculative solves (worker pool and loop thread alike). ----
  //
  // Concurrency contract: ProposeAdmission never mutates the planner or
  // the shared catalog/cluster, so any number of calls may run in
  // parallel on an *immutable* planner — provided (a) WarmCatalog(query)
  // was called first (it pre-interns every stream and operator a solve
  // for `query` can touch, making the solve's catalog accesses pure
  // reads — and, since StreamIds are assigned in interning order,
  // keeping id assignment at a deterministic point instead of at the
  // workers' mercy), and (b) nobody mutates the cluster or this planner
  // while the calls are in flight. Catalog *interning* may proceed
  // concurrently — it is internally synchronised and publishes entries
  // atomically (the planning service's speculative arrival solves rely
  // on exactly this) — but Catalog::UpdateBaseRate may not: it rewrites
  // published entries and requires all solves quiesced. The planning
  // service enforces all of this (see docs/ARCHITECTURE.md).

  /// Pre-interns the join closure of `query` (every subset stream and
  /// binary split operator) so that a subsequent solve for it — MILP
  /// relevant-set construction and greedy-fallback join-tree enumeration
  /// alike — performs no catalog writes. Call on the thread that owns
  /// event ordering (the service's loop thread): interning is
  /// thread-safe, but *when* it happens decides StreamId assignment,
  /// which replay determinism pins to logical points.
  Status WarmCatalog(StreamId query);

  /// Solves admission for `query` against a private copy of the
  /// committed state and returns the stats plus the deployment delta the
  /// solve would commit, without mutating the planner.
  Result<AdmissionProposal> ProposeAdmission(StreamId query) const;

  /// Applies a proposal's delta to the committed state. Returns
  /// FailedPrecondition when the deployment drifted since the proposal
  /// was solved such that the delta no longer applies cleanly (structural
  /// conflict, or the merged state fails the §III audit); the caller
  /// should then fall back to a fresh synchronous solve. A proposal whose
  /// solve rejected the query commits nothing and reports the rejection.
  Result<PlanningStats> CommitProposal(const AdmissionProposal& proposal);

  // ---- Copy-on-write snapshots (the worker pool's round inputs). ----

  /// What one MakeSnapshot call copied on the calling (loop) thread.
  struct SnapshotStats {
    /// A fresh shared core was captured (full deployment copy).
    bool rebased = false;
    /// Journal entries shipped as the snapshot's overlay.
    size_t overlay_entries = 0;
    /// Bytes the call copied: overlay + admitted list, plus the full
    /// deployment when it rebased.
    size_t bytes_copied = 0;
  };

  /// An immutable view of the planner at MakeSnapshot time: a shared
  /// core deployment (the last rebase point, shared by every snapshot
  /// since) plus a thin overlay of the mutations recorded after it.
  /// ProposeAdmission lazily materialises core+overlay into a full
  /// planner — once per snapshot, on the first worker that needs it,
  /// off the loop thread — and is safe to call from any number of
  /// threads concurrently (same contract as on the live planner:
  /// WarmCatalog must have run first).
  class Snapshot {
   public:
    Result<AdmissionProposal> ProposeAdmission(StreamId query) const;

   private:
    friend class SqprPlanner;
    Snapshot() = default;
    const SqprPlanner& Materialized() const;

    const Cluster* cluster_ = nullptr;
    Catalog* catalog_ = nullptr;
    Options options_;
    std::shared_ptr<const Deployment> core_;
    std::vector<DeploymentMutation> overlay_;
    std::vector<StreamId> admitted_;
    std::shared_ptr<SqprSolveCache> cache_;
    std::map<SolveKey, std::shared_ptr<const SolveArtifacts>> artifacts_;
    mutable std::once_flag once_;
    mutable std::unique_ptr<SqprPlanner> materialized_;
  };

  /// Captures the committed state as a Snapshot in O(changes since the
  /// last rebase): the core is a shared_ptr copy, the overlay is the
  /// deployment's mutation journal. Rebases (one full copy) when the
  /// journal exceeds Options::snapshot_rebase_threshold. Loop-thread
  /// only, like every other mutator.
  std::shared_ptr<const Snapshot> MakeSnapshot(SnapshotStats* stats = nullptr);

  // ---- Checkpoint support (src/service/checkpoint.h). ----

  /// Mutable access to the committed deployment, for restore-time
  /// reconstruction only: the restorer replays the checkpointed
  /// structure through the ordinary mutators, calls
  /// RefreshAccounting() to canonicalize the ledger floats, then
  /// reinstates the version counters. Never call while snapshots or
  /// proposals are in flight.
  Deployment* mutable_deployment() { return &deployment_; }

  /// Reinstates the admitted-query list (submission order) alongside a
  /// restored deployment.
  void RestoreAdmitted(std::vector<StreamId> admitted) {
    admitted_ = std::move(admitted);
  }

 private:
  struct RelevantSets {
    std::vector<StreamId> streams;
    std::vector<OperatorId> operators;
    std::vector<DemandSpec> demands;
  };

  /// Computes S(q)/O(q) (or the full sets when reduction is off) plus the
  /// demand list for a submission of `new_queries`.
  Result<RelevantSets> ComputeRelevantSets(
      const std::vector<StreamId>& new_queries);

  /// Removes operators/flows not (transitively) supporting any served
  /// stream.
  void GarbageCollect();

  const Cluster* cluster_;
  Catalog* catalog_;
  Options options_;
  Deployment deployment_;
  std::vector<StreamId> admitted_;
  /// Last rebase point of MakeSnapshot; outstanding snapshots keep it
  /// alive after the planner moves on. Null until the first snapshot.
  std::shared_ptr<const Deployment> snapshot_core_;

  // ---- Incremental-solve state (performance-only; see model_cache.h).
  // The model cache is shared — by pointer — with every scratch planner
  // and snapshot spawned from this one, so speculative solves on worker
  // threads benefit from (and refill) the same pool. The artifact table
  // is value-copied into scratch planners; updates flow back through the
  // proposal (AdmissionProposal::artifacts → CommitProposal), which
  // keeps installation on the committing thread in deterministic commit
  // order.
  std::shared_ptr<SqprSolveCache> cache_;
  std::map<SolveKey, std::shared_ptr<const SolveArtifacts>> artifacts_;
  /// Key + artifacts of the most recent SubmitBatch MILP solve on *this*
  /// planner; ProposeAdmission harvests them from its scratch planner
  /// into the proposal. Null when the last submission skipped the MILP.
  SolveKey last_artifact_key_;
  std::shared_ptr<const SolveArtifacts> last_artifacts_;
};

}  // namespace sqpr

#endif  // SQPR_PLANNER_SQPR_SQPR_PLANNER_H_
