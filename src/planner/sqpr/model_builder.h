#ifndef SQPR_PLANNER_SQPR_MODEL_BUILDER_H_
#define SQPR_PLANNER_SQPR_MODEL_BUILDER_H_

#include <map>
#include <vector>

#include "milp/solver.h"
#include "plan/deployment.h"

namespace sqpr {

/// How the acyclicity requirement of §III-B is enforced.
enum class AcyclicityMode {
  /// Violated cycle-elimination cuts (Σ_{(h,m)∈C} x_hms ≤ |C|−1) are
  /// added lazily on integral candidates. Equivalent integer feasible
  /// set to the potential formulation, far fewer rows up front.
  kLazyCycleCuts,
  /// The paper's literal potential constraints (III.7), all H²·S of
  /// them, with M = |H| + 2.
  kPotentials,
};

/// One demanded stream in the reduced model.
struct DemandSpec {
  StreamId stream = kInvalidStream;
  /// true → constraint (IV.9): Σ_h d_hs = 1 (already-admitted query that
  /// must not be dropped). false → Σ_h d_hs ≤ 1 (the new query; admission
  /// is what the objective maximises).
  bool must_serve = false;
};

/// Objective weights λ1..λ4 of (III.3). Non-positive entries are replaced
/// by the §IV-A defaults: λ1 = M (admission dominates), λ2 = 1/Σ_h β_h,
/// λ3 = 1/Σ_hm κ_hm, λ4 = 1. (The paper's λ3 scales CPU usage by total
/// link capacity — reproduced literally.)
struct ObjectiveWeights {
  double lambda1 = -1.0;
  double lambda2 = -1.0;
  double lambda3 = -1.0;
  double lambda4 = 1.0;
};

struct SqprModelOptions {
  AcyclicityMode acyclicity = AcyclicityMode::kLazyCycleCuts;
  ObjectiveWeights weights;
  /// When false, hosts may only send streams they *generate* (base
  /// injection or a local producer operator) — the §II-C relay ablation.
  bool enable_relay = true;
  /// §VII hierarchical decomposition: when non-empty, only the listed
  /// hosts may take new placements, flows or servings — every fresh
  /// decision variable on other hosts is pinned to zero (committed
  /// availability pins are kept, so warm starts stay feasible). Presolve
  /// then eliminates the pinned columns, shrinking the model from H to
  /// |subset| hosts. Callers must include every host that currently
  /// carries relevant committed state, or the no-drop constraints can
  /// become unsatisfiable.
  std::vector<HostId> host_subset;
};

/// The reduced SQPR MILP for one planning round, together with the
/// variable layout needed to interpret solutions and to translate them
/// back into Deployment edits.
///
/// The model covers exactly the relevant streams S(q) and operators O(q)
/// (§IV-A problem reduction): everything else in the committed deployment
/// is folded in as residual capacities and availability pins rather than
/// as variables.
///
/// Construction is split into a *skeleton* and a *base-state* pass. The
/// skeleton — which variables and rows exist, their terms, objective
/// coefficients and names — depends only on the relevant sets, the
/// catalog's stream rates/operator costs and the cluster specs, never on
/// the committed deployment. The committed deployment only moves row
/// right-hand sides (residual capacities), availability pins (y bounds)
/// and the warm start. Rebind() re-runs just the base-state pass, which
/// is how a model cached for a grounded structure is patched between
/// rounds instead of rebuilt; both paths execute the same code, so a
/// rebound model is bit-identical to a fresh build by construction.
class SqprMip {
 public:
  /// Builds the reduced model.
  ///  * `base`      — the committed deployment (fixed state);
  ///  * `streams`   — relevant streams (closure union, sorted, deduped);
  ///  * `operators` — relevant operators;
  ///  * `demands`   — demanded streams with their (IV.9) flags; each
  ///                  demanded stream must be in `streams`.
  SqprMip(const Deployment& base, std::vector<StreamId> streams,
          std::vector<OperatorId> operators, std::vector<DemandSpec> demands,
          const SqprModelOptions& options);

  milp::Model& mip() { return mip_; }
  const milp::Model& mip() const { return mip_; }

  // Variable lookups; -1 when the variable was pruned or does not exist.
  int VarD(HostId h, StreamId s) const;
  int VarX(HostId from, HostId to, StreamId s) const;
  int VarY(HostId h, StreamId s) const;
  int VarZ(HostId h, OperatorId o) const;

  const std::vector<StreamId>& relevant_streams() const { return streams_; }
  const std::vector<OperatorId>& relevant_operators() const { return ops_; }
  const std::vector<DemandSpec>& demands() const { return demands_; }

  /// A warm-start assignment reproducing the committed deployment (the
  /// previous solution restricted to the relevant sets), which is always
  /// feasible for the new model and gives branch-and-bound an incumbent
  /// on arrival. Empty when the committed state is not representable
  /// (never happens for deployments produced by this planner).
  std::vector<double> WarmStart() const;

  /// Re-targets the model at a different committed deployment with the
  /// same grounded structure (identical relevant sets, catalog rates and
  /// cluster specs — callers key their cache on exactly that) by
  /// re-running the base-state pass: row right-hand sides, availability
  /// pins and nothing else. O(rows) instead of O(rows · terms) — no
  /// allocation, no term rebuilding, no name formatting. After Rebind,
  /// WarmStart()/Commit() operate against the new deployment, which must
  /// outlive the model.
  void Rebind(const Deployment& base);

  /// Deep structural + numeric equality against another built model:
  /// variable count/bounds/objective/integrality/priority/names and row
  /// count/bounds/terms/names. Used by the differential solver-equivalence
  /// harness to pin "incrementally patched == freshly built"; returns a
  /// description of the first mismatch.
  Status CheckModelEquals(const SqprMip& other) const;

  /// True when the candidate admits the demanded stream (Σ_h d_hs ≥ 1).
  bool Serves(const std::vector<double>& x, StreamId s) const;

  /// Applies an integral solution to `target` (must equal the base
  /// deployment the model was built from): clears all relevant flows,
  /// placements and servings, then installs the solution's choices.
  Status Commit(const std::vector<double>& x, Deployment* target) const;

  /// Lazy handler enforcing per-stream flow acyclicity via cycle cuts.
  /// Only used in kLazyCycleCuts mode. Integral candidates get exact
  /// separation; fractional LP points get heuristic separation (cycles
  /// among high-valued arcs), which prevents the relaxation from
  /// "creating" streams through near-integral self-sustaining loops.
  class CycleCutHandler : public milp::LazyConstraintHandler {
   public:
    explicit CycleCutHandler(const SqprMip* owner) : owner_(owner) {}
    int AddViolatedCuts(const std::vector<double>& candidate,
                        lp::Model* relaxation) override;
    int AddFractionalCuts(const std::vector<double>& point,
                          lp::Model* relaxation) override;

    /// Optional pool that every emitted cycle cut is also recorded into
    /// (terms are in this model's original variable space). Cycle cuts
    /// are valid for *every* integral acyclic point of the same skeleton
    /// — they do not depend on the base deployment — so a planner can
    /// replay pooled cuts into later solves of the same grounded
    /// structure instead of rediscovering them node by node.
    void set_harvest(milp::CutPool* pool) { harvest_ = pool; }

    /// Optional read-only pool consulted as a *separation source*: at
    /// each lazy callback, pooled cuts violated by the current point are
    /// appended (each at most once per solve) before the DFS detector
    /// runs. This replaces bulk up-front injection — injecting the whole
    /// pool bloats every node LP with rows the search never violates,
    /// which is measurably slower than solving cold on small models,
    /// while violation-gated replay only pays for rows that bind.
    void set_pool(const milp::CutPool* pool) { pool_ = pool; }

   private:
    // Shared separation: consider arcs with value > arc_threshold and
    // emit the cut only when actually violated by `point`.
    int Separate(const std::vector<double>& point, double arc_threshold,
                 lp::Model* relaxation);
    // Appends pooled cuts violated by `point` that this handler has not
    // already added. Returns the number of rows appended.
    int SeparateFromPool(const std::vector<double>& point,
                         lp::Model* relaxation);

    const SqprMip* owner_;
    milp::CutPool* harvest_ = nullptr;
    const milp::CutPool* pool_ = nullptr;
    std::vector<bool> pool_added_;
  };

 private:
  /// Base-dependent inputs of one ApplyBaseState() pass, recomputed from
  /// *base_ each time the model is (re)bound.
  struct BaseState {
    std::vector<double> cpu_resid, mem_resid, nic_out_resid, nic_in_resid;
    std::map<std::pair<HostId, HostId>, double> link_extra;
    std::vector<int> fixed_producer;  // [h * S' + si]
    std::vector<bool> pin_y;          // [h * S' + si]
  };

  int StreamIndex(StreamId s) const;
  int OpIndex(OperatorId o) const;
  /// Creates variables and rows (base-independent) and records the row
  /// indices the base-state pass patches.
  void BuildSkeleton();
  BaseState ComputeBaseState() const;
  /// Writes every base-dependent value: y bounds and the right-hand
  /// sides of avail/send/link/nic/cpu/mem/loadbal rows. Fresh builds and
  /// Rebind() both end here, so the two are indistinguishable.
  void ApplyBaseState();

  const Deployment* base_;
  std::vector<StreamId> streams_;
  std::vector<OperatorId> ops_;
  std::vector<DemandSpec> demands_;
  SqprModelOptions options_;

  milp::Model mip_;
  int num_hosts_ = 0;

  // Dense variable index tables (-1 = absent).
  std::vector<int> var_x_;  // [from * H + to] * S' + si
  std::vector<int> var_y_;  // h * S' + si
  std::vector<int> var_z_;  // h * O' + oi
  std::vector<int> var_p_;  // h * S' + si (potentials mode only)
  std::map<std::pair<HostId, StreamId>, int> var_d_;
  int var_t_ = -1;

  // Row indices patched by ApplyBaseState (-1 = row absent).
  std::vector<int> avail_rows_;    // m * S' + si
  std::vector<int> send_rows_;     // h * S' + si
  std::vector<int> send_fanout_;   // h * S' + si (valid where send row)
  std::vector<int> link_rows_;     // from * H + to
  std::vector<int> nic_in_rows_;   // per host
  std::vector<int> nic_out_rows_;  // per host
  std::vector<int> cpu_rows_;      // per host
  std::vector<int> mem_rows_;      // per host
  std::vector<int> loadbal_rows_;  // per host

  std::map<StreamId, int> stream_index_;
  std::map<OperatorId, int> op_index_;
};

}  // namespace sqpr

#endif  // SQPR_PLANNER_SQPR_MODEL_BUILDER_H_
