#ifndef SQPR_PLANNER_OPTIMISTIC_OPTIMISTIC_BOUND_H_
#define SQPR_PLANNER_OPTIMISTIC_OPTIMISTIC_BOUND_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "model/catalog.h"
#include "model/cluster.h"
#include "common/status.h"

namespace sqpr {

/// The §V-A optimistic upper bound: all hosts are collapsed into one
/// aggregate host that owns every base stream and the pooled CPU budget;
/// all network constraints vanish. On this synthetic host the planning
/// model (III.8) "simplifies dramatically and allows for an analytical
/// solution": a query is admitted iff the cheapest *incremental* CPU cost
/// of producing its result — reusing every stream materialised by earlier
/// admissions — fits the remaining budget. The cheapest increment is a
/// subset dynamic program over join orders.
///
/// The resulting admission count upper-bounds what any distributed
/// planner can achieve on the same submission sequence, because any
/// distributed plan can be replayed on the aggregate host at no greater
/// CPU cost and zero network cost.
class OptimisticBound {
 public:
  /// Reuse credit given to an admission.
  enum class ReuseCredit {
    /// Materialise the outputs of the chosen cheapest join tree — what
    /// an actual execution of the admitted plan produces. Tight, and
    /// still above every planner evaluated here in practice.
    kChosenTree,
    /// Materialise the query's whole join closure (every subset join of
    /// its leaves). Provably above any sequential planner regardless of
    /// its tree choices, but the credit grows ~2^arity and the bound
    /// becomes very loose for complex queries (see EXPERIMENTS.md).
    kFullClosure,
  };

  explicit OptimisticBound(const Cluster& cluster, Catalog* catalog,
                           ReuseCredit credit = ReuseCredit::kChosenTree);

  std::string name() const { return "optimistic-bound"; }

  /// Admission decision for the next query in sequence; commits the
  /// chosen operators' CPU on success.
  Result<bool> SubmitQuery(StreamId query);

  int admitted_count() const { return admitted_count_; }
  double cpu_used() const { return cpu_used_; }
  double cpu_budget() const { return cpu_budget_; }

 private:
  /// Minimum extra CPU to materialise `stream`, given everything already
  /// materialised; fills `chosen_ops` with the argmin operator set.
  double MinIncrementalCpu(StreamId stream,
                           std::vector<OperatorId>* chosen_ops);

  Catalog* catalog_;
  ReuseCredit credit_;
  double cpu_budget_;
  double cpu_used_ = 0.0;
  int admitted_count_ = 0;
  std::set<StreamId> materialized_;
  std::set<StreamId> served_;
};

}  // namespace sqpr

#endif  // SQPR_PLANNER_OPTIMISTIC_OPTIMISTIC_BOUND_H_
