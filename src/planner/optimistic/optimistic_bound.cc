#include "planner/optimistic/optimistic_bound.h"

#include <algorithm>
#include <map>

#include "common/logging.h"
#include "lp/model.h"

namespace sqpr {

OptimisticBound::OptimisticBound(const Cluster& cluster, Catalog* catalog,
                                 ReuseCredit credit)
    : catalog_(catalog), credit_(credit), cpu_budget_(cluster.TotalCpu()) {}

double OptimisticBound::MinIncrementalCpu(
    StreamId stream, std::vector<OperatorId>* chosen_ops) {
  if (catalog_->stream(stream).is_base || materialized_.count(stream)) {
    return 0.0;
  }

  // Subset DP over the leaf set: cost(T) = min over splits (A, B) of
  // cost(A) + cost(B) + γ(join(S_A, S_B)), with cost 0 for leaves and
  // already-materialised subsets. (Copy the leaves: interning below may
  // reallocate the catalog's stream table.)
  const std::vector<StreamId> leaves = catalog_->stream(stream).leaves;
  const int k = static_cast<int>(leaves.size());
  SQPR_CHECK(k >= 2 && k <= 16);

  // Ensure the closure exists so every subset stream/operator is interned.
  Result<Closure> closure = catalog_->JoinClosure(stream);
  SQPR_CHECK(closure.ok());

  const uint32_t full = (1u << k) - 1;
  std::vector<double> cost(full + 1, 0.0);
  std::vector<std::pair<uint32_t, uint32_t>> split(full + 1, {0, 0});
  std::vector<StreamId> by_mask(full + 1, kInvalidStream);
  for (int i = 0; i < k; ++i) by_mask[1u << i] = leaves[i];
  for (uint32_t mask = 1; mask <= full; ++mask) {
    if (__builtin_popcount(mask) < 2) continue;
    std::vector<StreamId> subset;
    for (int i = 0; i < k; ++i) {
      if (mask & (1u << i)) subset.push_back(leaves[i]);
    }
    Result<StreamId> sid = catalog_->CanonicalJoinStream(subset);
    SQPR_CHECK(sid.ok());
    by_mask[mask] = *sid;
    if (materialized_.count(*sid)) {
      cost[mask] = 0.0;
      continue;
    }
    double best = lp::kInf;
    std::pair<uint32_t, uint32_t> best_split = {0, 0};
    for (uint32_t sub = (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask) {
      const uint32_t other = mask ^ sub;
      if (sub < other) continue;
      const double join_cpu = catalog_->cost_model().OperatorCpuCost(
          catalog_->stream(by_mask[sub]).rate_mbps +
          catalog_->stream(by_mask[other]).rate_mbps);
      const double total = cost[sub] + cost[other] + join_cpu;
      if (total < best) {
        best = total;
        best_split = {sub, other};
      }
    }
    cost[mask] = best;
    split[mask] = best_split;
  }

  // Recover the argmin operator set (skipping already-materialised
  // subtrees, whose cost is zero and split is unset).
  std::vector<uint32_t> stack = {full};
  while (!stack.empty()) {
    const uint32_t mask = stack.back();
    stack.pop_back();
    if (__builtin_popcount(mask) < 2) continue;
    if (materialized_.count(by_mask[mask])) continue;
    const auto [a, b] = split[mask];
    if (a == 0 && b == 0) continue;
    Result<OperatorId> op = catalog_->JoinOperator(by_mask[a], by_mask[b]);
    SQPR_CHECK(op.ok());
    chosen_ops->push_back(*op);
    stack.push_back(a);
    stack.push_back(b);
  }
  return cost[full];
}

Result<bool> OptimisticBound::SubmitQuery(StreamId query) {
  if (query < 0 || query >= catalog_->num_streams()) {
    return Status::InvalidArgument("unknown stream");
  }
  if (served_.count(query)) {
    return true;  // dedup: an equivalent query is already satisfied
  }
  std::vector<OperatorId> chosen;
  const double extra = MinIncrementalCpu(query, &chosen);
  if (cpu_used_ + extra > cpu_budget_ + 1e-9) return false;

  cpu_used_ += extra;
  ++admitted_count_;
  served_.insert(query);
  switch (credit_) {
    case ReuseCredit::kChosenTree:
      // Materialise what executing the chosen tree actually produces.
      materialized_.insert(query);
      for (OperatorId op : chosen) {
        materialized_.insert(catalog_->op(op).output);
      }
      break;
    case ReuseCredit::kFullClosure: {
      // Materialise every subset join — an over-approximation of any
      // planner's materialisation choices (see header).
      Result<Closure> closure = catalog_->JoinClosure(query);
      SQPR_CHECK(closure.ok());
      for (StreamId s : closure->streams) materialized_.insert(s);
      break;
    }
  }
  return true;
}

}  // namespace sqpr
