#ifndef SQPR_PLANNER_SODA_SODA_PLANNER_H_
#define SQPR_PLANNER_SODA_SODA_PLANNER_H_

#include <string>
#include <vector>

#include "model/catalog.h"
#include "model/cluster.h"
#include "plan/deployment.h"
#include "planner/heuristic/join_trees.h"
#include "planner/planner.h"

namespace sqpr {

/// Re-implementation of the basic SODA scheduler functionality used as
/// the §V-B comparison baseline (Wolf et al., Middleware'08), with the
/// structure the paper describes:
///
///  * **Templates.** Every query is bound to its user-given query plan —
///    here the left-deep join tree in leaf order. SODA cannot restructure
///    the plan ("the SODA scheduler is bound by the initial user-given
///    query plan").
///  * **macroQ** (admission): a system-wide resource check — the CPU the
///    template's not-yet-placed operators need must fit the total spare
///    CPU, and the template's transfer needs the total spare bandwidth.
///  * **macroW** (placement): places each new operator, in template
///    order, on the host minimising a load-balance score, fetching each
///    input stream once from its producing host and propagating it
///    locally thereafter (local reuse only).
///  * **miniW** (improvement): bounded local-search passes that try to
///    move each newly placed operator to a less-loaded host; improving
///    moves are applied. miniW provides the final placement whether or
///    not macroW succeeded in full.
///
/// Cross-query reuse is supported the way the paper configures it for
/// the comparison: "each stream is generated once and used by all other
/// queries when needed" — an operator whose output already exists
/// anywhere is never re-instantiated; the existing stream is fetched.
/// SODA never revisits previous placement decisions.
class SodaPlanner : public Planner {
 public:
  struct Options {
    /// miniW local-search passes over the newly placed operators.
    int miniw_passes = 2;
  };

  SodaPlanner(const Cluster* cluster, Catalog* catalog, Options options);

  std::string name() const override { return "soda"; }
  Result<PlanningStats> SubmitQuery(StreamId query) override;
  const Deployment& deployment() const override { return deployment_; }
  const std::vector<StreamId>& admitted_queries() const override {
    return admitted_;
  }

 private:
  /// Load-balance score after hypothetically adding `cpu` to host h.
  double HostScore(const Deployment& dep, HostId h, double cpu) const;

  const Cluster* cluster_;
  Catalog* catalog_;
  Options options_;
  Deployment deployment_;
  std::vector<StreamId> admitted_;
};

}  // namespace sqpr

#endif  // SQPR_PLANNER_SODA_SODA_PLANNER_H_
