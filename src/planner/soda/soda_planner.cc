#include "planner/soda/soda_planner.h"

#include <algorithm>

#include "common/deadline.h"
#include "common/logging.h"
#include "lp/model.h"

namespace sqpr {
namespace {

/// Working state of one placement attempt: a scratch deployment plus a
/// host × stream availability matrix seeded from the committed grounded
/// state and extended by this attempt's flows and operators.
struct PlacementContext {
  Deployment scratch;
  GroundedMap avail;

  PlacementContext(const Deployment& base, const GroundedMap& grounded)
      : scratch(base), avail(grounded) {}

  bool Available(HostId h, StreamId s) const { return avail.at(h, s); }
  void MarkAvailable(HostId h, StreamId s) { avail.set(h, s); }
};

}  // namespace

SodaPlanner::SodaPlanner(const Cluster* cluster, Catalog* catalog,
                         Options options)
    : cluster_(cluster),
      catalog_(catalog),
      options_(options),
      deployment_(cluster, catalog) {}

double SodaPlanner::HostScore(const Deployment& dep, HostId h,
                              double cpu) const {
  const double cap = cluster_->host(h).cpu;
  if (cap <= 0) return lp::kInf;
  return (dep.CpuUsed(h) + cpu) / cap;
}

namespace {

/// Makes `s` available at `host`, fetching it once from another host if
/// needed ("input streams are received once from the original host and
/// locally propagated", §V-B). Returns false when no grounded sender has
/// the bandwidth.
bool EnsureAvailable(const Cluster& cluster, StreamId s, HostId host,
                     PlacementContext* ctx) {
  if (ctx->Available(host, s)) return true;
  HostId best = kInvalidHost;
  double best_headroom = -1.0;
  for (HostId m = 0; m < cluster.num_hosts(); ++m) {
    if (m == host || !ctx->Available(m, s)) continue;
    if (!ctx->scratch.CanAddFlow(m, host, s)) continue;
    const double headroom =
        cluster.host(m).nic_out_mbps - ctx->scratch.NicOutUsed(m);
    if (headroom > best_headroom) {
      best_headroom = headroom;
      best = m;
    }
  }
  if (best == kInvalidHost) return false;
  SQPR_CHECK_OK(ctx->scratch.AddFlow(best, host, s));
  ctx->MarkAvailable(host, s);
  return true;
}

/// Replays a complete assignment (template operators -> hosts, then
/// serving). Returns the context, or nullopt on infeasibility.
struct ReplayResult {
  PlacementContext ctx;
  HostId serve_host = kInvalidHost;
};

Result<ReplayResult> Replay(
    const Cluster& cluster, const Catalog& catalog, const Deployment& base,
    const GroundedMap& grounded,
    const std::vector<std::pair<OperatorId, HostId>>& assignment,
    StreamId query) {
  ReplayResult out{PlacementContext(base, grounded), kInvalidHost};
  PlacementContext& ctx = out.ctx;
  for (const auto& [op_id, host] : assignment) {
    const OperatorInfo& op = catalog.op(op_id);
    for (StreamId in : op.inputs) {
      if (!EnsureAvailable(cluster, in, host, &ctx)) {
        return Status::Infeasible("input fetch failed");
      }
    }
    if (!ctx.scratch.CanPlaceOperator(host, op_id)) {
      return Status::Infeasible("cpu exhausted");
    }
    SQPR_CHECK_OK(ctx.scratch.PlaceOperator(host, op_id));
    ctx.MarkAvailable(host, op.output);
  }
  // Serve from the root operator's host when the template placed ops;
  // otherwise (full reuse) from the best host already holding the query.
  HostId serve = assignment.empty() ? kInvalidHost : assignment.back().second;
  if (serve == kInvalidHost || !ctx.Available(serve, query)) {
    for (HostId h = 0; h < cluster.num_hosts(); ++h) {
      if (ctx.Available(h, query) && ctx.scratch.CanServe(query, h)) {
        serve = h;
        break;
      }
    }
  }
  if (serve == kInvalidHost || !ctx.Available(serve, query) ||
      !ctx.scratch.CanServe(query, serve)) {
    return Status::Infeasible("no serving host");
  }
  SQPR_CHECK_OK(ctx.scratch.SetServing(query, serve));
  out.serve_host = serve;
  return out;
}

/// macroW/miniW placement quality: lexicographically (max CPU
/// utilisation fraction, total network). Lower is better.
std::pair<double, double> PlacementScore(const Cluster& cluster,
                                         const Deployment& dep) {
  double worst = 0.0;
  for (HostId h = 0; h < cluster.num_hosts(); ++h) {
    const double cap = cluster.host(h).cpu;
    if (cap > 0) worst = std::max(worst, dep.CpuUsed(h) / cap);
  }
  return {worst, dep.TotalNetworkUsed()};
}

}  // namespace

Result<PlanningStats> SodaPlanner::SubmitQuery(StreamId query) {
  Stopwatch watch;
  PlanningStats stats;

  if (deployment_.ServingHost(query) != kInvalidHost) {
    stats.admitted = true;
    stats.already_served = true;
    stats.wall_ms = watch.ElapsedMillis();
    return stats;
  }

  // The fixed user-given template.
  Result<std::unique_ptr<JoinTree>> tree = LeftDeepTree(query, catalog_);
  if (!tree.ok()) return tree.status();
  const std::vector<OperatorId> template_ops = BottomUpOperators(**tree);

  const GroundedMap grounded = deployment_.GroundedAvailability();
  auto grounded_anywhere = [&](StreamId s) {
    for (HostId h = 0; h < cluster_->num_hosts(); ++h) {
      if (grounded.at(h, s)) return true;
    }
    return false;
  };

  // Operators whose output is not yet generated anywhere must be newly
  // instantiated; existing streams are reused ("each stream is generated
  // once and used by all other queries").
  std::vector<OperatorId> new_ops;
  for (OperatorId o : template_ops) {
    if (!grounded_anywhere(catalog_->op(o).output)) new_ops.push_back(o);
  }

  // ---- macroQ: system-wide admission check. ----
  double needed_cpu = 0.0;
  for (OperatorId o : new_ops) needed_cpu += catalog_->op(o).cpu_cost;
  double spare_cpu = 0.0;
  for (HostId h = 0; h < cluster_->num_hosts(); ++h) {
    spare_cpu += cluster_->host(h).cpu - deployment_.CpuUsed(h);
  }
  if (needed_cpu > spare_cpu + 1e-9) {
    stats.wall_ms = watch.ElapsedMillis();
    return stats;  // rejected by macroQ
  }

  // ---- macroW: greedy per-operator placement. ----
  std::vector<std::pair<OperatorId, HostId>> assignment;
  for (OperatorId o : new_ops) {
    HostId best_host = kInvalidHost;
    std::pair<double, double> best_score = {lp::kInf, lp::kInf};
    for (HostId h = 0; h < cluster_->num_hosts(); ++h) {
      // Partial replay (without client serving) tests feasibility of
      // this prefix; the score is taken on its scratch state.
      auto prefix = assignment;
      prefix.emplace_back(o, h);
      Result<ReplayResult> replay =
          Replay(*cluster_, *catalog_, deployment_, grounded, prefix,
                 catalog_->op(o).output);
      if (!replay.ok()) continue;
      const auto score = PlacementScore(*cluster_, replay->ctx.scratch);
      if (score < best_score) {
        best_score = score;
        best_host = h;
      }
    }
    if (best_host == kInvalidHost) {
      stats.wall_ms = watch.ElapsedMillis();
      return stats;  // macroW found no feasible host for this operator
    }
    assignment.emplace_back(o, best_host);
  }

  // ---- miniW: bounded local improvement over the assignment. ----
  for (int pass = 0; pass < options_.miniw_passes; ++pass) {
    bool improved = false;
    for (size_t i = 0; i < assignment.size(); ++i) {
      Result<ReplayResult> current = Replay(*cluster_, *catalog_, deployment_,
                                            grounded, assignment, query);
      if (!current.ok()) break;
      auto current_score = PlacementScore(*cluster_, current->ctx.scratch);
      HostId kept = assignment[i].second;
      for (HostId h = 0; h < cluster_->num_hosts(); ++h) {
        if (h == kept) continue;
        assignment[i].second = h;
        Result<ReplayResult> moved = Replay(*cluster_, *catalog_, deployment_,
                                            grounded, assignment, query);
        if (moved.ok()) {
          const auto score = PlacementScore(*cluster_, moved->ctx.scratch);
          if (score < current_score) {
            current_score = score;
            kept = h;
            improved = true;
            continue;  // keep the move, try further hosts
          }
        }
        assignment[i].second = kept;
      }
    }
    if (!improved) break;
  }

  // ---- Final replay and commit. ----
  Result<ReplayResult> final_replay =
      Replay(*cluster_, *catalog_, deployment_, grounded, assignment, query);
  if (!final_replay.ok()) {
    stats.wall_ms = watch.ElapsedMillis();
    return stats;
  }
  const Status valid = final_replay->ctx.scratch.Validate();
  if (!valid.ok()) {
    stats.wall_ms = watch.ElapsedMillis();
    return stats;
  }
  deployment_ = std::move(final_replay->ctx.scratch);
  admitted_.push_back(query);
  stats.admitted = true;
  stats.wall_ms = watch.ElapsedMillis();
  return stats;
}

}  // namespace sqpr
