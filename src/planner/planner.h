#ifndef SQPR_PLANNER_PLANNER_H_
#define SQPR_PLANNER_PLANNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "plan/deployment.h"

namespace sqpr {

/// Per-submission planning outcome reported by every planner.
struct PlanningStats {
  /// Whether the query was admitted (resources committed).
  bool admitted = false;
  /// True when an equivalent query was already being served, so admission
  /// was free (dedup hit on line 3 of Algorithm 1).
  bool already_served = false;
  /// Wall-clock planning latency.
  double wall_ms = 0.0;
  /// Branch-and-bound nodes explored (0 for non-MILP planners).
  int64_t solver_nodes = 0;
  int64_t lp_iterations = 0;
  /// Objective value of the committed plan (planner-specific scale).
  double objective = 0.0;
  /// True when the solver proved optimality of the reduced problem
  /// before its deadline.
  bool proved_optimal = false;
  /// True when admission bypassed the solver entirely because the
  /// requested stream was already materialised by committed operators
  /// (plan-reuse cache fast path; see service/plan_cache.h).
  bool via_cache = false;
  /// Incremental-solve telemetry (SQPR planner only). A submission that
  /// ran the MILP either patched a cached model skeleton (bounds-only
  /// rebind against the current deployment) or built one from scratch;
  /// a patched solve may additionally install the previous round's root
  /// LP basis, unless presolve eliminated a different column set this
  /// time, in which case the basis is discarded and the solve
  /// cold-starts.
  bool model_patched = false;
  bool model_rebuilt = false;
  bool warm_started = false;
  bool basis_discarded = false;
  /// Degraded-mode solving (docs/ARCHITECTURE.md "Durability & degraded
  /// modes"). deadline_hit: the MILP ran out of its per-solve wall
  /// budget (SqprPlanner::Options::solve_deadline_ms) before proving
  /// optimality; the planner then committed the best incumbent, or fell
  /// back to the greedy heuristic. admitted_via_heuristic: admission
  /// came from the greedy fallback rather than a MILP solution — the
  /// plan is feasible but carries no optimality claim.
  bool deadline_hit = false;
  bool admitted_via_heuristic = false;
};

/// Common interface of all query planners (SQPR, heuristic, SODA).
///
/// A planner owns a Deployment and mutates it as queries are admitted.
/// Submitting a query never returns an error for a plain "cannot admit" —
/// that is a normal outcome reported via PlanningStats::admitted. Errors
/// are reserved for malformed inputs.
class Planner {
 public:
  virtual ~Planner() = default;

  virtual std::string name() const = 0;

  /// Plans (and on success commits) the requested stream. Repeated
  /// submission of an already-served stream reports already_served.
  virtual Result<PlanningStats> SubmitQuery(StreamId query) = 0;

  /// The committed allocation state.
  virtual const Deployment& deployment() const = 0;

  /// Streams admitted so far, in submission order.
  virtual const std::vector<StreamId>& admitted_queries() const = 0;
};

}  // namespace sqpr

#endif  // SQPR_PLANNER_PLANNER_H_
