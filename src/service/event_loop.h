#ifndef SQPR_SERVICE_EVENT_LOOP_H_
#define SQPR_SERVICE_EVENT_LOOP_H_

#include <cstdint>
#include <map>
#include <queue>
#include <string>
#include <vector>

#include "common/status.h"
#include "model/ids.h"
#include "telemetry/rate_model.h"

namespace sqpr {

/// Kinds of events the continuous planning service consumes. Together
/// they cover the lifecycle the paper assumes around the SQPR planner:
/// queries arrive and depart over time (§IV-A), hosts join and fail, and
/// the DISSP resource monitor periodically reports measured utilisation
/// and stream rates (§IV-B/§IV-C).
enum class EventKind : uint8_t {
  kQueryArrival,
  kQueryDeparture,
  kHostJoin,
  kHostFailure,
  kMonitorReport,
  kTick,
  /// Installs a ground-truth rate trajectory into the service's
  /// telemetry rate model (closed-loop mode, §IV-C): the base stream's
  /// *actual* rate starts following the trajectory from this event's
  /// timestamp, to be observed by the service's own periodic
  /// self-measurements. Replaces scripted kMonitorReport events in
  /// closed-loop traces; ignored (counted only) when the service runs
  /// open-loop.
  kRateDirective,
};

const char* EventKindName(EventKind kind);

/// One timestamped input to the planning service. Only the fields
/// relevant to `kind` are meaningful:
///   kQueryArrival / kQueryDeparture — `query`;
///   kHostJoin / kHostFailure       — `host`;
///   kMonitorReport                 — `measured_base_rates` and/or
///                                    `cpu_utilization`;
///   kTick                          — none (drives deferred re-planning
///                                    rounds and, in closed-loop mode,
///                                    periodic self-measurement);
///   kRateDirective                 — `trajectory` (ground-truth rate
///                                    model input, closed loop only).
struct Event {
  int64_t time_ms = 0;
  EventKind kind = EventKind::kTick;
  StreamId query = kInvalidStream;
  HostId host = kInvalidHost;
  /// Observed Mbps per base stream (absent streams are on-estimate).
  std::map<StreamId, double> measured_base_rates;
  /// Per-host CPU as a fraction of budget (empty = no CPU observations).
  std::vector<double> cpu_utilization;
  /// Ground-truth trajectory installed by kRateDirective; its times are
  /// relative to this event's timestamp.
  RateTrajectory trajectory;

  static Event Arrival(int64_t t, StreamId q);
  static Event Departure(int64_t t, StreamId q);
  static Event HostJoin(int64_t t, HostId h);
  static Event HostFailure(int64_t t, HostId h);
  static Event MonitorReport(int64_t t, std::map<StreamId, double> rates,
                             std::vector<double> cpu = {});
  static Event Tick(int64_t t);
  static Event RateDirective(int64_t t, RateTrajectory trajectory);

  std::string ToString() const;
};

/// Injectable virtual clock. The service and its tests advance time by
/// consuming events, never by reading the wall clock, so every replay of
/// the same trace is bit-for-bit reproducible.
class VirtualClock {
 public:
  int64_t now_ms() const { return now_ms_; }

  /// Moves time forward; moving backwards is a programming error and is
  /// clamped (events are popped in timestamp order).
  void AdvanceTo(int64_t t_ms) {
    if (t_ms > now_ms_) now_ms_ = t_ms;
  }

 private:
  int64_t now_ms_ = 0;
};

/// Deterministic event queue: events pop in (timestamp, insertion
/// sequence) order, so same-timestamp events preserve their submission
/// order regardless of heap internals.
class EventQueue {
 public:
  void Push(Event event);

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  /// Timestamp of the next event; kNoEvent when empty.
  static constexpr int64_t kNoEvent = INT64_MAX;
  int64_t NextTime() const;

  /// Pops the earliest event. Requires !empty().
  Event Pop();

 private:
  struct Entry {
    int64_t seq;
    Event event;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.event.time_ms != b.event.time_ms) {
        return a.event.time_ms > b.event.time_ms;
      }
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  int64_t next_seq_ = 0;
};

}  // namespace sqpr

#endif  // SQPR_SERVICE_EVENT_LOOP_H_
