#include "service/planning_service.h"

#include <algorithm>
#include <cmath>
#include <thread>
#include <utility>

#include "common/deadline.h"
#include "common/fault.h"
#include "common/logging.h"
#include "obs/trace.h"
#include "plan/query_plan.h"

namespace sqpr {

std::string EventOutcome::ToString(const Catalog& catalog) const {
  std::string out = event.ToString();
  if (event.kind == EventKind::kQueryArrival) {
    if (event.query >= 0 && event.query < catalog.num_streams() &&
        !catalog.stream(event.query).name.empty()) {
      out += " (" + catalog.stream(event.query).name + ")";
    }
    out += already_served ? " dedup"
           : admitted     ? (via_cache ? " admit[cache]" : " admit")
                          : " reject";
    if (reuse_candidates > 0) {
      out += " reuse-candidates=" + std::to_string(reuse_candidates);
    }
  }
  if (measured) out += " measure";
  if (evicted > 0) out += " evicted=" + std::to_string(evicted);
  if (replanned_admitted + replanned_rejected > 0) {
    out += " replanned=" + std::to_string(replanned_admitted) + "/" +
           std::to_string(replanned_admitted + replanned_rejected);
  }
  return out;
}

PlanningService::PlanningService(Cluster* cluster, Catalog* catalog,
                                 ServiceOptions options)
    : cluster_(cluster),
      catalog_(catalog),
      options_(options),
      planner_(cluster, catalog, options.planner),
      monitor_(catalog, options.drift),
      cache_(catalog),
      scheduler_(options.replan) {
  SQPR_CHECK(cluster != nullptr && catalog != nullptr);
  if (options_.replan.workers > 0) {
    int threads = options_.replan.workers;
    if (options_.replan.clamp_workers_to_cores) {
      const int cores =
          static_cast<int>(std::thread::hardware_concurrency());
      if (cores > 0) threads = std::min(threads, cores);
    }
    pool_ = std::make_unique<ThreadPool>(threads, [](int i) {
      obs::TraceRecorder::SetCurrentThreadName("worker-" + std::to_string(i));
    });
  }
  if (options_.closed_loop) {
    telemetry_ =
        std::make_unique<MeasurementEngine>(catalog, options_.telemetry);
  }
  // The scheduler audits its own enqueue/discard/requeue decisions;
  // it shares the service's journal and virtual clock.
  scheduler_.set_audit(options_.audit, &clock_);
}

void ServiceMetricsPublisher::Bump(const char* name, int64_t value,
                                   int64_t* last) {
  registry_->counter(name)->Increment(value - *last);
  *last = value;
}

void ServiceMetricsPublisher::Publish(const ServiceStats& stats) {
  Bump("service.events", stats.events, &last_.events);
  Bump("service.arrivals", stats.arrivals, &last_.arrivals);
  Bump("service.admitted", stats.admitted, &last_.admitted);
  Bump("service.rejected", stats.rejected, &last_.rejected);
  Bump("service.dedup_hits", stats.dedup_hits, &last_.dedup_hits);
  Bump("service.cache_fast_path", stats.cache_fast_path,
       &last_.cache_fast_path);
  Bump("service.departures", stats.departures, &last_.departures);
  Bump("service.host_failures", stats.host_failures, &last_.host_failures);
  Bump("service.host_joins", stats.host_joins, &last_.host_joins);
  Bump("service.monitor_reports", stats.monitor_reports,
       &last_.monitor_reports);
  Bump("service.ticks", stats.ticks, &last_.ticks);
  Bump("service.rate_directives", stats.rate_directives,
       &last_.rate_directives);
  Bump("service.measurement_ticks", stats.measurement_ticks,
       &last_.measurement_ticks);
  Bump("service.auto_replan_rounds", stats.auto_replan_rounds,
       &last_.auto_replan_rounds);
  Bump("service.analytic_ticks", stats.analytic_ticks, &last_.analytic_ticks);
  Bump("service.cache_delta_updates", stats.cache_delta_updates,
       &last_.cache_delta_updates);
  Bump("service.snapshot_bytes_copied", stats.snapshot_bytes_copied,
       &last_.snapshot_bytes_copied);
  Bump("service.snapshot_rebases", stats.snapshot_rebases,
       &last_.snapshot_rebases);
  Bump("service.evictions", stats.evictions, &last_.evictions);
  Bump("service.replan_rounds", stats.replan_rounds, &last_.replan_rounds);
  Bump("service.replanned_admitted", stats.replanned_admitted,
       &last_.replanned_admitted);
  Bump("service.replanned_rejected", stats.replanned_rejected,
       &last_.replanned_rejected);
  Bump("service.replan_dispatches", stats.replan_dispatches,
       &last_.replan_dispatches);
  Bump("service.commit_conflicts", stats.commit_conflicts,
       &last_.commit_conflicts);
  Bump("service.round_unwinds", stats.round_unwinds, &last_.round_unwinds);
  Bump("service.overlapped_arrival_solves", stats.overlapped_arrival_solves,
       &last_.overlapped_arrival_solves);
  Bump("service.model_patches", stats.model_patches, &last_.model_patches);
  Bump("service.model_rebuilds", stats.model_rebuilds,
       &last_.model_rebuilds);
  Bump("service.warm_starts", stats.warm_starts, &last_.warm_starts);
  Bump("service.basis_discards", stats.basis_discards,
       &last_.basis_discards);
  Bump("service.catalog_exhausted", stats.catalog_exhausted,
       &last_.catalog_exhausted);
  Bump("service.solver_deadline_breaches", stats.solver_deadline_breaches,
       &last_.solver_deadline_breaches);
  Bump("service.heuristic_fallbacks", stats.heuristic_fallbacks,
       &last_.heuristic_fallbacks);
  Bump("service.loop_stalls", stats.loop_stalls, &last_.loop_stalls);
  Bump("service.admit_budget_breaches", stats.admit_budget_breaches,
       &last_.admit_budget_breaches);
  Bump("service.solve_budget_breaches", stats.solve_budget_breaches,
       &last_.solve_budget_breaches);
  Bump("service.commit_budget_breaches", stats.commit_budget_breaches,
       &last_.commit_budget_breaches);
  Bump("service.barrier_budget_breaches", stats.barrier_budget_breaches,
       &last_.barrier_budget_breaches);
  Bump("service.measure_budget_breaches", stats.measure_budget_breaches,
       &last_.measure_budget_breaches);
  *registry_->histogram("service.admit_ms") = stats.admit_ms;
  *registry_->histogram("service.solve_ms") = stats.solve_ms;
  *registry_->histogram("service.commit_ms") = stats.commit_ms;
  *registry_->histogram("service.barrier_ms") = stats.barrier_ms;
  *registry_->histogram("service.measure_ms") = stats.measure_ms;
}

obs::AuditRecord PlanningService::AuditBase(const char* kind) const {
  obs::AuditRecord r;
  r.t_ms = clock_.now_ms();
  r.kind = kind;
  return r;
}

void PlanningService::AuditFingerprint(obs::AuditRecord* r, bool post) const {
  const Deployment& d = deployment();
  const uint64_t fp = obs::AuditJournal::Fnv1a(d.Fingerprint());
  if (post) {
    r->post_version = d.version();
    r->post_structure = d.structure_version();
    r->post_fp = fp;
  } else {
    r->pre_version = d.version();
    r->pre_structure = d.structure_version();
    r->pre_fp = fp;
  }
}

void PlanningService::AuditAppend(obs::AuditRecord r) const {
  options_.audit->Append(std::move(r));
}

void PlanningService::SampleStage(obs::Histogram* h, double ms,
                                  double budget_ms, int64_t* breaches) {
  h->Add(ms);
  if (budget_ms > 0 && ms > budget_ms) ++(*breaches);
}

void PlanningService::FinalizeAudit() {
  if (!AuditOn()) return;
  // Final-state records close every lifecycle the journal opened:
  // tools/sqpr_inspect.py replays the record chain into per-query states
  // and requires them to equal these lists exactly.
  obs::AuditRecord a = AuditBase("close.admitted");
  std::vector<StreamId> admitted = planner_.admitted_queries();
  std::sort(admitted.begin(), admitted.end());
  a.detail = static_cast<int64_t>(admitted.size());
  a.streams.assign(admitted.begin(), admitted.end());
  AuditFingerprint(&a, /*post=*/false);
  AuditFingerprint(&a, /*post=*/true);
  AuditAppend(std::move(a));

  obs::AuditRecord p = AuditBase("close.pending");
  const std::vector<StreamId> pending = scheduler_.PendingQueries();
  p.detail = static_cast<int64_t>(pending.size());
  p.streams.assign(pending.begin(), pending.end());
  AuditAppend(std::move(p));

  obs::AuditRecord c = AuditBase("journal.close");
  c.detail = stats_.events;
  AuditFingerprint(&c, /*post=*/false);
  AuditFingerprint(&c, /*post=*/true);
  AuditAppend(std::move(c));
}

Status PlanningService::Enqueue(Event event) {
  if (event.time_ms < clock_.now_ms()) {
    return Status::InvalidArgument(
        "event at t=" + std::to_string(event.time_ms) +
        " is before the virtual clock (t=" + std::to_string(clock_.now_ms()) +
        ")");
  }
  queue_.Push(std::move(event));
  return Status::OK();
}

bool PlanningService::HostActive(HostId h) const {
  return h >= 0 && h < cluster_->num_hosts() && failed_hosts_.count(h) == 0;
}

Result<EventOutcome> PlanningService::Step() {
  if (queue_.empty()) {
    return Status::FailedPrecondition("no pending events");
  }
  Stopwatch watch;
  Event event = queue_.Pop();
  clock_.AdvanceTo(event.time_ms);
  // Tag spans with the virtual clock so a trace correlates wall time
  // with trace time; pure observation, read back by nothing.
  obs::TraceRecorder::SetVirtualTimeMs(clock_.now_ms());
  // One span per event, named by kind (indexed registration keeps the
  // per-event cost at one array load when tracing is on, zero when off).
  static const uint32_t kEventSpanIds[] = {
      obs::TraceRecorder::RegisterSpan("service/event.arrival"),
      obs::TraceRecorder::RegisterSpan("service/event.departure"),
      obs::TraceRecorder::RegisterSpan("service/event.host_join"),
      obs::TraceRecorder::RegisterSpan("service/event.host_failure"),
      obs::TraceRecorder::RegisterSpan("service/event.monitor_report"),
      obs::TraceRecorder::RegisterSpan("service/event.tick"),
      obs::TraceRecorder::RegisterSpan("service/event.rate_directive")};
  obs::SpanScope event_span(kEventSpanIds[static_cast<int>(event.kind)]);

  EventOutcome outcome;
  outcome.event = event;
  ++stats_.events;

  // Handlers below mutate *published* state the worker solves read
  // through shared pointers — measured-rate installation rewrites
  // catalog entries in place, failure/join swaps host specs — so they
  // must retire the whole in-flight pipeline first: commit the oldest
  // round (the barrier is its pinned commit point) and unwind the
  // younger speculative ones back to the scheduler. (Arrivals are
  // exempt: they only *intern*, which the catalog synchronises
  // internally.) This barrier is also what keeps replays deterministic:
  // rounds commit at fixed logical points, never "when the solve
  // happens to finish" — and never *early* at a barrier, which would
  // let pipeline depth move their solves ahead of the rate install.
  switch (event.kind) {
    case EventKind::kHostFailure:
    case EventKind::kHostJoin:
    case EventKind::kMonitorReport:
      RetireAllRounds(&outcome);
      break;
    case EventKind::kTick:
      // A measuring tick is a monitor report the service writes itself:
      // it crosses the same barrier before installing measured rates.
      if (MeasurementDue()) RetireAllRounds(&outcome);
      break;
    default:
      break;
  }

  Status st;
  switch (event.kind) {
    case EventKind::kQueryArrival:
      HandleArrival(event, &outcome);
      break;
    case EventKind::kQueryDeparture:
      HandleDeparture(event, &outcome);
      break;
    case EventKind::kHostFailure:
      st = HandleHostFailure(event, &outcome);
      break;
    case EventKind::kHostJoin:
      st = HandleHostJoin(event, &outcome);
      break;
    case EventKind::kMonitorReport:
      st = HandleMonitorReport(event, &outcome);
      break;
    case EventKind::kTick:
      ++stats_.ticks;
      if (telemetry_ != nullptr &&
          ++ticks_since_measure_ >= telemetry_->options().measure_period) {
        ticks_since_measure_ = 0;
        st = HandleSelfMeasurement(&outcome);
      }
      break;
    case EventKind::kRateDirective: {
      ++stats_.rate_directives;
      // Ground truth only exists in closed-loop mode; an open-loop
      // replay of a closed-loop trace counts and skips the directive
      // (there is nothing to measure it with).
      bool installed_ok = false;
      if (telemetry_ != nullptr) {
        // Only base streams have an injection rate to steer: a directive
        // for a composite or unknown stream would install fine but could
        // never be observed (measurements filter on is_base), so reject
        // it loudly instead of letting the trajectory vanish silently.
        const StreamId s = event.trajectory.stream;
        Status installed =
            (s >= 0 && s < catalog_->num_streams() && catalog_->stream(s).is_base)
                ? telemetry_->rate_model().Install(event.trajectory,
                                                   event.time_ms)
                : Status::InvalidArgument("stream " + std::to_string(s) +
                                          " is not a base stream");
        if (!installed.ok()) {
          SQPR_LOG_WARN << "rate directive rejected: "
                        << installed.ToString();
        } else {
          installed_ok = true;
        }
      }
      if (AuditOn()) {
        obs::AuditRecord r = AuditBase("rate.directive");
        r.query = event.trajectory.stream;
        r.detail = installed_ok ? 1 : 0;
        AuditAppend(std::move(r));
      }
      break;
    }
  }
  if (!st.ok()) return st;

  // Every event ends with bounded re-admission work, so fallout queued
  // by failures and drift reports drains steadily without ever letting
  // one event monopolise the loop.
  DrainReplanRounds(&outcome);

  // One reuse-index update per mutating event, not per mutation:
  // incremental deltas when everything was additive, one rebuild
  // otherwise.
  SyncPlanCache();

  outcome.wall_ms = watch.ElapsedMillis();
  stats_.total_wall_ms += outcome.wall_ms;
  stats_.max_event_ms = std::max(stats_.max_event_ms, outcome.wall_ms);
  // Stall detector: the virtual clock stood still for this entire
  // Step() while the wall clock ran `wall_ms` — over budget counts as a
  // loop stall. Wall-clock, so speculative in the journal.
  const double stall_budget = options_.watchdog.event_stall_ms;
  if (stall_budget > 0 && outcome.wall_ms > stall_budget) {
    ++stats_.loop_stalls;
    stats_.worst_stall_ms = std::max(stats_.worst_stall_ms, outcome.wall_ms);
    if (AuditOn()) {
      obs::AuditRecord r = AuditBase("watchdog.stall");
      r.speculative = true;
      r.detail = static_cast<int64_t>(event.kind);
      r.solve_ms = outcome.wall_ms;
      AuditAppend(std::move(r));
    }
  }
  return outcome;
}

Status PlanningService::RunUntilIdle(std::vector<EventOutcome>* outcomes) {
  while (HasPendingEvents()) {
    Result<EventOutcome> outcome = Step();
    if (!outcome.ok()) return outcome.status();
    if (outcomes != nullptr) outcomes->push_back(std::move(*outcome));
  }
  FinishInFlightRound();
  return Status::OK();
}

void PlanningService::FinishInFlightRound() {
  if (inflight_.empty()) return;
  EventOutcome scratch;  // results land in the aggregate stats_
  // Same semantics as a barrier: only the oldest round's pinned commit
  // point is due, so only it commits; younger speculative rounds return
  // to the scheduler. A depth-1 service stopped here holds exactly this
  // state — those rounds still queued, not yet dispatched.
  RetireAllRounds(&scratch);
  SyncPlanCache();
}

void PlanningService::MarkCacheDelta(const DeploymentDelta& delta) {
  if (!options_.use_plan_cache) return;
  if (!delta.ops_removed.empty() || !delta.flows_removed.empty()) {
    // Removals un-ground; the cache can only close monotonically.
    cache_rebuild_ = true;
    return;
  }
  if (!cache_rebuild_) cache_deltas_.push_back(delta);
}

void PlanningService::MarkCacheServing(StreamId stream, HostId before,
                                       HostId after) {
  if (!options_.use_plan_cache || cache_rebuild_) return;
  DeploymentDelta delta;
  delta.serving_changes.push_back({stream, before, after});
  cache_deltas_.push_back(std::move(delta));
}

void PlanningService::SyncPlanCache() {
  if (!options_.use_plan_cache) return;
  if (cache_rebuild_) {
    SQPR_TRACE_SPAN("service/cache.rebuild");
    // Rebuild itself no-ops (version check) when nothing actually moved
    // — e.g. a failure event whose host carried no allocations.
    cache_.Rebuild(deployment());
  } else if (!cache_deltas_.empty()) {
    SQPR_TRACE_SPAN_ARGS(span, "service/cache.delta", "deltas", nullptr);
    span.set_args(cache_deltas_.size());
    for (const DeploymentDelta& delta : cache_deltas_) {
      const bool incremental = cache_.ApplyDelta(deployment(), delta);
      if (incremental) {
        ++stats_.cache_delta_updates;
      } else {
        // The cache fell back to a full scan (first build); that scan
        // already reflects the final deployment, so the remaining
        // deltas are subsumed.
        break;
      }
    }
  }
  cache_rebuild_ = false;
  cache_deltas_.clear();
}

Result<PlanningStats> PlanningService::Admit(StreamId query,
                                             int* reuse_candidates,
                                             bool overlapped_arrival) {
  if (query < 0 || query >= catalog_->num_streams()) {
    return Status::InvalidArgument("unknown stream " + std::to_string(query));
  }

  SQPR_TRACE_SPAN("service/admit");
  Stopwatch watch;

  if (options_.use_plan_cache) {
    PlanCache::Lookup lookup = cache_.OnArrival(query);
    if (reuse_candidates != nullptr) {
      *reuse_candidates = static_cast<int>(lookup.partial.size());
    }
    if (lookup.exact && !lookup.served) {
      // Materialised but unserved: admission is one serving arc. The
      // planner tries the grounded hosts in order over one availability
      // fixpoint; capacity misses fall through to the solver, which may
      // still admit by re-routing. This path only touches the
      // loop-owned deployment.
      Result<PlanningStats> fast =
          planner_.AdmitMaterialized(query, lookup.exact_hit.hosts);
      if (fast.ok()) {
        // A dedup outcome (already served) changed nothing — flagging it
        // used to schedule a full no-op rebuild scan. Only a genuinely
        // new serving arc needs indexing, and it is a pure serving
        // delta.
        if (fast->admitted && !fast->already_served) {
          MarkCacheServing(query, kInvalidHost, deployment().ServingHost(query));
        }
        SampleStage(&stats_.admit_ms, watch.ElapsedMillis(),
                options_.watchdog.admit_budget_ms,
                &stats_.admit_budget_breaches);
        return fast;
      }
      if (fast.status().IsInvalidArgument()) {
        SampleStage(&stats_.admit_ms, watch.ElapsedMillis(),
                options_.watchdog.admit_budget_ms,
                &stats_.admit_budget_breaches);
        return fast.status();
      }
    }
  }

  // Authoritative dedup (Algorithm 1 line 3), cheap and before any
  // speculation: a served stream's repeat arrival must not pay the
  // planner-copy of a speculative solve (or count as an overlapped
  // solve) just to discover it was a duplicate.
  if (deployment().ServingHost(query) != kInvalidHost) {
    PlanningStats dedup;
    dedup.admitted = true;
    dedup.already_served = true;
    dedup.wall_ms = watch.ElapsedMillis();
    SampleStage(&stats_.admit_ms, dedup.wall_ms,
                options_.watchdog.admit_budget_ms,
                &stats_.admit_budget_breaches);
    return dedup;
  }

  // Cache miss: speculative solve on the loop thread, overlapping any
  // in-flight re-planning rounds. WarmCatalog pre-interns the query's
  // join closure — the only catalog *writes* a solve needs, performed
  // here on the loop thread so StreamId assignment stays at a
  // deterministic point (interning itself is thread-safe; workers
  // reading the catalog concurrently only ever see published entries).
  // The solve then runs against a private copy of the committed state
  // and commits its delta immediately; in-flight rounds keep solving
  // throughout and reconcile at their own pinned commit points (FIFO,
  // conflicts re-solved).
  if (!inflight_.empty() && overlapped_arrival) {
    ++stats_.overlapped_arrival_solves;
  }
  const Status warmed = WarmCatalogLogged(query);
  if (!warmed.ok()) {
    SampleStage(&stats_.admit_ms, watch.ElapsedMillis(),
                options_.watchdog.admit_budget_ms,
                &stats_.admit_budget_breaches);
    return warmed;
  }
  Result<AdmissionProposal> proposal = planner_.ProposeAdmission(query);
  if (!proposal.ok()) {
    SampleStage(&stats_.admit_ms, watch.ElapsedMillis(),
                options_.watchdog.admit_budget_ms,
                &stats_.admit_budget_breaches);
    return proposal.status();
  }

  if (options_.inject_between_propose_and_commit) {
    options_.inject_between_propose_and_commit(planner_);
  }
  Stopwatch commit_watch;
  double solve_wall_ms = proposal->stats.wall_ms;
  bool committed_via_delta = true;
  Result<PlanningStats> stats = planner_.CommitProposal(*proposal);
  SampleStage(&stats_.commit_ms, commit_watch.ElapsedMillis(),
              options_.watchdog.commit_budget_ms,
              &stats_.commit_budget_breaches);
  if (!stats.ok() && stats.status().IsFailedPrecondition()) {
    // The strict version gate bounced the proposal: the conflict
    // re-solves of a round commit (which call back into Admit while
    // younger rounds are in flight) and test injection can both land a
    // commit between this arrival's propose and commit. Re-solve as a
    // fresh propose/commit pair against the live state — adjacent on
    // the loop thread, so the retry cannot conflict again — and sample
    // each leg where an inline solve would have: the fresh solve's wall
    // time into solve_ms, the fresh commit's into commit_ms, so
    // conflict re-solves are indistinguishable in the histograms from
    // solves that never conflicted. (The bounced proposal's solve time
    // was thrown away with the proposal; its failed commit was already
    // sampled above, like any other commit attempt.)
    ++stats_.commit_conflicts;
    committed_via_delta = false;
    Result<AdmissionProposal> fresh = planner_.ProposeAdmission(query);
    if (fresh.ok()) {
      solve_wall_ms = fresh->stats.wall_ms;
      Stopwatch retry_watch;
      stats = planner_.CommitProposal(*fresh);
      SampleStage(&stats_.commit_ms, retry_watch.ElapsedMillis(),
                  options_.watchdog.commit_budget_ms,
                  &stats_.commit_budget_breaches);
    } else {
      stats = fresh.status();
    }
  }
  if (stats.ok()) {
    CountSolveStats(*stats);
    AuditDeadlineBreach(query, *stats);
    if (!stats->already_served && !stats->via_cache) {
      SampleStage(&stats_.solve_ms, solve_wall_ms,
                  options_.watchdog.solve_budget_ms,
                  &stats_.solve_budget_breaches);
    }
    if (stats->admitted && !stats->already_served) {
      // The committed delta is exactly what the reuse index must learn.
      // After a conflict, deliberately schedule a full rebuild instead
      // of feeding the retry's delta: the bounced proposal is evidence
      // this admission raced other committed changes, and the rebuild's
      // grounded fixpoint re-derives the index from the merged truth
      // rather than trusting a delta chain across the conflict.
      if (committed_via_delta) {
        MarkCacheDelta(proposal->delta);
      } else {
        MarkCacheRebuild();
      }
    }
  }
  SampleStage(&stats_.admit_ms, watch.ElapsedMillis(),
              options_.watchdog.admit_budget_ms,
              &stats_.admit_budget_breaches);
  return stats;
}

void PlanningService::CountSolveStats(const PlanningStats& stats) {
  if (stats.model_patched) ++stats_.model_patches;
  if (stats.model_rebuilt) ++stats_.model_rebuilds;
  if (stats.warm_started) ++stats_.warm_starts;
  if (stats.basis_discarded) ++stats_.basis_discards;
  if (stats.deadline_hit) ++stats_.solver_deadline_breaches;
  if (stats.admitted && stats.admitted_via_heuristic) {
    ++stats_.heuristic_fallbacks;
  }
}

Status PlanningService::WarmCatalogLogged(StreamId query) {
  // First-call order, recorded regardless of outcome: a restore must
  // replay failing warms too, so the catalog reaches the same partial
  // interning state a graceful exhaustion left behind.
  if (warm_logged_.insert(query).second) warm_log_.push_back(query);
  Status warmed = planner_.WarmCatalog(query);
  if (warmed.IsResourceExhausted()) ++stats_.catalog_exhausted;
  return warmed;
}

void PlanningService::AuditDeadlineBreach(StreamId query,
                                          const PlanningStats& stats) const {
  if (!AuditOn() || !stats.deadline_hit) return;
  obs::AuditRecord r = AuditBase("solve.deadline");
  // Wall-clock-driven with a positive budget, so never canonical.
  r.speculative = true;
  r.query = query;
  r.detail = !stats.admitted                ? 3
             : stats.admitted_via_heuristic ? 2
                                            : 1;
  r.solve_ms = stats.wall_ms;
  AuditAppend(std::move(r));
}

void PlanningService::RememberRejected(StreamId query) {
  if (!options_.retry_rejected_on_join) return;
  if (std::find(rejected_recently_.begin(), rejected_recently_.end(),
                query) != rejected_recently_.end()) {
    return;
  }
  rejected_recently_.push_back(query);
  while (static_cast<int>(rejected_recently_.size()) >
         std::max(0, options_.max_rejected_remembered)) {
    rejected_recently_.pop_front();
  }
}

void PlanningService::HandleArrival(const Event& event,
                                    EventOutcome* outcome) {
  ++stats_.arrivals;
  obs::AuditRecord ar;
  if (AuditOn()) {
    ar = AuditBase("");
    ar.query = event.query;
    AuditFingerprint(&ar, /*post=*/false);
  }
  Result<PlanningStats> stats = Admit(event.query, &outcome->reuse_candidates);
  const char* kind;
  if (!stats.ok()) {
    SQPR_LOG_WARN << "arrival of query " << event.query
                  << " failed: " << stats.status().ToString();
    ++stats_.rejected;
    // Catalog exhaustion is permanent for this process: do NOT remember
    // the query for retry-on-join — a bigger cluster cannot un-fill the
    // interning stores.
    kind = stats.status().IsResourceExhausted() ? "reject.exhausted"
                                                : "reject.error";
  } else {
    outcome->admitted = stats->admitted;
    outcome->already_served = stats->already_served;
    outcome->via_cache = stats->via_cache;
    if (stats->already_served) {
      ++stats_.dedup_hits;
      ++stats_.admitted;
      kind = "admit.dedup";
    } else if (stats->admitted) {
      ++stats_.admitted;
      if (stats->via_cache) ++stats_.cache_fast_path;
      kind = stats->via_cache ? "admit.cache" : "admit.solve";
    } else {
      ++stats_.rejected;
      RememberRejected(event.query);
      kind = "reject.capacity";
      // A deadline-truncated solve may have rejected a query the full
      // search would have placed. Give it exactly one more chance on the
      // re-planning path; once per query, or a permanently infeasible
      // query would ping-pong forever under a tiny budget.
      if (stats->deadline_hit &&
          deadline_retried_.insert(event.query).second) {
        scheduler_.Enqueue(event.query);
      }
    }
  }
  if (AuditOn()) {
    ar.kind = kind;
    ar.detail = outcome->reuse_candidates;
    if (stats.ok()) ar.solve_ms = stats->wall_ms;
    AuditFingerprint(&ar, /*post=*/true);
    AuditAppend(std::move(ar));
  }
}

void PlanningService::HandleDeparture(const Event& event,
                                      EventOutcome* outcome) {
  (void)outcome;
  ++stats_.departures;
  obs::AuditRecord dr;
  if (AuditOn()) {
    dr = AuditBase("");
    dr.query = event.query;
    AuditFingerprint(&dr, /*post=*/false);
  }
  scheduler_.Discard(event.query);
  // A query sits in at most one in-flight round (re-enqueues only
  // happen at barriers, which drain the pipeline first), but scan them
  // all: the discard must land in the round that carries it.
  for (InFlightRound& round : inflight_) {
    if (std::find(round.queries.begin(), round.queries.end(), event.query) !=
        round.queries.end()) {
      round.discards.insert(event.query);
      break;
    }
  }
  auto it = std::find(rejected_recently_.begin(), rejected_recently_.end(),
                      event.query);
  if (it != rejected_recently_.end()) rejected_recently_.erase(it);

  const uint64_t structure_before = deployment().structure_version();
  const HostId served_at = deployment().ServingHost(event.query);
  const Status st = planner_.RemoveQuery(event.query);
  // NotFound: never admitted (or already departed). Other hard errors
  // are logged; both leave the deployment untouched.
  const bool removed = st.ok() || st.IsResourceExhausted();
  if (!removed && !st.IsNotFound()) {
    SQPR_LOG_WARN << "departure of query " << event.query
                  << " failed: " << st.ToString();
  }
  if (removed) {
    if (deployment().structure_version() == structure_before + 1) {
      // Exactly one mutation: the serving arc cleared and the GC found
      // nothing unshared to reclaim (the support is shared with
      // surviving queries). Groundedness is untouched — a pure serving
      // delta.
      MarkCacheServing(event.query, served_at, kInvalidHost);
    } else {
      MarkCacheRebuild();
    }
  }
  if (AuditOn()) {
    dr.kind = removed ? "depart.served" : "depart.unknown";
    if (removed) dr.host = served_at;
    AuditFingerprint(&dr, /*post=*/true);
    AuditAppend(std::move(dr));
  }
}

Status PlanningService::HandleHostFailure(const Event& event,
                                          EventOutcome* outcome) {
  ++stats_.host_failures;
  const HostId h = event.host;
  if (h < 0 || h >= cluster_->num_hosts()) {
    return Status::InvalidArgument("unknown host " + std::to_string(h));
  }
  if (failed_hosts_.count(h) > 0) return Status::OK();  // already down
  obs::AuditRecord hr;
  if (AuditOn()) {
    hr = AuditBase("host.failure");
    hr.host = h;
    AuditFingerprint(&hr, /*post=*/false);
  }

  // Zero the budgets first so every constraint (and the post-removal
  // audits) immediately sees the host as unusable, then clear its
  // fallout. Operators and flows indexed by HostId stay addressable.
  HostSpec dead;
  dead.cpu = 0.0;
  dead.nic_out_mbps = 0.0;
  dead.nic_in_mbps = 0.0;
  dead.mem_mb = 0.0;
  dead.name = cluster_->host(h).name;
  failed_hosts_[h] = cluster_->host(h);
  cluster_->SetHostSpec(h, dead);

  Result<std::vector<StreamId>> evicted = planner_.EvictHost(h);
  if (!evicted.ok()) return evicted.status();
  for (StreamId q : *evicted) {
    if (AuditOn()) {
      obs::AuditRecord er = AuditBase("evict.host_failure");
      er.query = q;
      er.host = h;
      AuditAppend(std::move(er));
    }
    scheduler_.Enqueue(q);
    ++outcome->evicted;
    ++stats_.evictions;
  }
  // Structural removals: full rebuild (a no-op skip when the failed
  // host carried nothing and the purge removed nothing).
  MarkCacheRebuild();
  if (AuditOn()) {
    hr.detail = static_cast<int64_t>(evicted->size());
    AuditFingerprint(&hr, /*post=*/true);
    AuditAppend(std::move(hr));
  }
  return Status::OK();
}

Status PlanningService::HandleHostJoin(const Event& event,
                                       EventOutcome* outcome) {
  (void)outcome;
  ++stats_.host_joins;
  const HostId h = event.host;
  if (h < 0 || h >= cluster_->num_hosts()) {
    return Status::InvalidArgument("unknown host " + std::to_string(h));
  }
  auto it = failed_hosts_.find(h);
  if (it == failed_hosts_.end()) return Status::OK();  // already active
  obs::AuditRecord jr;
  if (AuditOn()) {
    jr = AuditBase("host.join");
    jr.host = h;
    AuditFingerprint(&jr, /*post=*/false);
  }
  cluster_->SetHostSpec(h, it->second);
  failed_hosts_.erase(it);

  // Fresh capacity: give recently rejected queries another chance
  // through the bounded rounds.
  int retried = 0;
  if (options_.retry_rejected_on_join) {
    for (StreamId q : rejected_recently_) {
      if (scheduler_.Enqueue(q)) ++retried;
    }
    rejected_recently_.clear();
  }
  if (AuditOn()) {
    jr.detail = retried;
    AuditFingerprint(&jr, /*post=*/true);
    AuditAppend(std::move(jr));
  }
  return Status::OK();
}

Status PlanningService::HandleMonitorReport(const Event& event,
                                            EventOutcome* outcome) {
  ++stats_.monitor_reports;
  obs::AuditRecord r;
  if (AuditOn()) {
    r = AuditBase("drift.report");
    r.aux = static_cast<int64_t>(event.measured_base_rates.size());
    AuditFingerprint(&r, /*post=*/false);
  }
  const int evicted_before = outcome->evicted;
  Status st = ApplyMonitorData(event.measured_base_rates,
                               event.cpu_utilization, outcome);
  if (AuditOn() && st.ok()) {
    r.detail = outcome->evicted - evicted_before;
    AuditFingerprint(&r, /*post=*/true);
    AuditAppend(std::move(r));
  }
  return st;
}

Status PlanningService::ApplyMonitorData(
    const std::map<StreamId, double>& measured_rates,
    const std::vector<double>& cpu_utilization, EventOutcome* outcome) {
  const uint64_t structure_before = deployment().structure_version();
  const DriftReport report =
      monitor_.Analyze(measured_rates, cpu_utilization,
                       planner_.admitted_queries(), &deployment());

  // Note: the cycle's install step runs even when the report flags
  // nothing — sub-threshold measurements are still installed (matching
  // AdaptiveReplan), so estimates converge instead of sitting
  // permanently just under the drift threshold.
  //
  // The §IV-B remove+install+evict cycle itself is the shared
  // RunDriftCycle; this call site's re-admission sink is the bounded
  // scheduler (AdaptiveReplan's is immediate re-admission).
  SQPR_RETURN_IF_ERROR(RunDriftCycle(
      &planner_, catalog_, measured_rates, report,
      [this, outcome](StreamId q) {
        if (AuditOn()) {
          obs::AuditRecord er = AuditBase("evict.drift");
          er.query = q;
          AuditAppend(std::move(er));
        }
        scheduler_.Enqueue(q);
        ++outcome->evicted;
        ++stats_.evictions;
      }));

  // Rate updates alone do not change groundedness, so rebuild only on
  // structural fallout. The structure-version check (not the eviction
  // count) is the gate: the drift cycle's shortage step can purge
  // *residual* support via an EvictHost pass that removes operators
  // and flows without evicting a single query — fallout an eviction
  // count misses, which would leave the incremental cache stale
  // indefinitely.
  if (deployment().structure_version() != structure_before) {
    MarkCacheRebuild();
  }
  return Status::OK();
}

Status PlanningService::HandleSelfMeasurement(EventOutcome* outcome) {
  ++stats_.measurement_ticks;
  if (telemetry_->options().mode == MeasureMode::kAnalytic) {
    ++stats_.analytic_ticks;
  }
  outcome->measured = true;
  SQPR_TRACE_SPAN("service/measure");
  Stopwatch measure_watch;
  Result<Measurement> measurement =
      telemetry_->Measure(deployment(), clock_.now_ms());
  SampleStage(&stats_.measure_ms, measure_watch.ElapsedMillis(),
              options_.watchdog.measure_budget_ms,
              &stats_.measure_budget_breaches);
  if (!measurement.ok()) {
    // A failed measurement must not take the loop down — skip the
    // reporting period. Deterministic: the measurement is a pure
    // function of the committed deployment, identical across replays.
    SQPR_LOG_WARN << "self-measurement failed: "
                  << measurement.status().ToString();
    return Status::OK();
  }
  if (AuditOn()) {
    obs::AuditRecord mr = AuditBase("measure.tick");
    mr.aux = measurement->index;
    mr.detail = static_cast<int64_t>(measurement->measured_base_rates.size());
    AuditAppend(std::move(mr));
  }
  obs::AuditRecord dr;
  if (AuditOn()) {
    dr = AuditBase("drift.measure");
    AuditFingerprint(&dr, /*post=*/false);
  }
  const int evicted_before = outcome->evicted;
  SQPR_RETURN_IF_ERROR(ApplyMonitorData(measurement->measured_base_rates,
                                        measurement->cpu_utilization,
                                        outcome));
  // An eviction here means the service detected drift in its *own*
  // measurement and queued re-planning with no scripted report — the
  // closed loop the counter makes visible.
  if (outcome->evicted > evicted_before) ++stats_.auto_replan_rounds;
  if (AuditOn()) {
    dr.detail = outcome->evicted - evicted_before;
    AuditFingerprint(&dr, /*post=*/true);
    AuditAppend(std::move(dr));
  }
  return Status::OK();
}

void PlanningService::DrainReplanRounds(EventOutcome* outcome) {
  // Commit the oldest round — dispatched at least one event ago; with
  // workers it had that event's entire processing to solve in the
  // background — then top the pipeline back up against the state as of
  // *this* event's mutations. Committing before filling means a round
  // dispatched here never commits here: its pinned point is the next
  // event, at every depth. Identical for every worker count: with
  // workers == 0 the dispatches below solve synchronously, producing
  // exactly the proposals a pool would have computed from snapshots
  // taken at the same points.
  CommitOldestRound(outcome);
  const int depth = std::max(1, options_.replan.pipeline_depth);
  while (static_cast<int>(inflight_.size()) < depth &&
         scheduler_.HasPending()) {
    DispatchReplanRound();
  }
}

void PlanningService::DispatchReplanRound() {
  if (!scheduler_.HasPending()) return;

  SQPR_TRACE_SPAN_ARGS(span, "service/round.dispatch", "round", "queries");
  InFlightRound flight;
  flight.id = next_round_id_++;
  flight.queries = scheduler_.NextRound();
  // Pre-intern, on this thread, everything a solve for these queries
  // can touch in the shared catalog. This keeps StreamId assignment at
  // a deterministic point (worker scheduling must never decide intern
  // order) and makes the round's catalog accesses pure reads.
  for (StreamId q : flight.queries) {
    const Status warmed = WarmCatalogLogged(q);
    if (!warmed.ok()) {
      SQPR_LOG_WARN << "warming catalog for query " << q
                    << " failed: " << warmed.ToString();
    }
  }
  flight.proposals = std::make_shared<std::vector<Result<AdmissionProposal>>>(
      flight.queries.size(),
      Result<AdmissionProposal>(Status::Internal("not solved yet")));
  flight.latch = std::make_shared<Latch>(
      static_cast<int>(flight.queries.size()));
  if (pool_ == nullptr) {
    // Inline mode: the speculative solves run right here against the
    // live planner — the same inputs a snapshot taken at this point
    // would give a worker, so the proposals (and everything downstream
    // of the shared commit path) are bit-identical across worker
    // counts. With pipeline_depth > 1 this round may be speculating
    // past an uncommitted older round, exactly like a worker would:
    // the live planner holds only *committed* state, so the solve sees
    // the same snapshot-equivalent view.
    for (size_t i = 0; i < flight.queries.size(); ++i) {
      (*flight.proposals)[i] = planner_.ProposeAdmission(flight.queries[i]);
      flight.latch->CountDown();
    }
  } else {
    // Copy-on-write snapshot: a shared immutable core plus the mutation
    // journal since the last rebase — O(changes) on the loop thread.
    // The first worker to need it materialises the full planner copy
    // off this thread (the deep copy the dispatch used to pay here).
    SqprPlanner::SnapshotStats snap_stats;
    {
      SQPR_TRACE_SPAN_ARGS(snap_span, "service/snapshot.make", "bytes_copied",
                           "rebased");
      flight.snapshot = planner_.MakeSnapshot(&snap_stats);
      snap_span.set_args(snap_stats.bytes_copied, snap_stats.rebased ? 1 : 0);
    }
    stats_.snapshot_bytes_copied +=
        static_cast<int64_t>(snap_stats.bytes_copied);
    if (snap_stats.rebased) ++stats_.snapshot_rebases;
    for (size_t i = 0; i < flight.queries.size(); ++i) {
      // Tasks capture the shared state by value, never `this`: the
      // pool's destructor (which drains and joins) is then always safe.
      pool_->Submit([snapshot = flight.snapshot, proposals = flight.proposals,
                     latch = flight.latch, i, query = flight.queries[i]] {
        (*proposals)[i] = snapshot->ProposeAdmission(query);
        latch->CountDown();
      });
    }
  }
  span.set_args(flight.id, flight.queries.size());
  if (AuditOn()) {
    obs::AuditRecord r = AuditBase("round.dispatch");
    r.speculative = true;
    r.detail = static_cast<int64_t>(flight.queries.size());
    r.dispatch_id = flight.id;
    r.streams.assign(flight.queries.begin(), flight.queries.end());
    AuditAppend(std::move(r));
  }
  inflight_.push_back(std::move(flight));
  ++stats_.replan_dispatches;
  // Crash point: a round has been dispatched but not committed. A
  // checkpoint taken before this event never saw the round, so restore
  // re-derives it from the scheduler groups.
  fault::MaybeCrash("mid-round");
}

void PlanningService::CommitOldestRound(EventOutcome* outcome) {
  if (inflight_.empty()) return;
  InFlightRound flight = std::move(inflight_.front());
  inflight_.pop_front();

  SQPR_TRACE_SPAN_ARGS(span, "service/round.commit", "round", "queries");
  span.set_args(flight.id, flight.queries.size());
  Stopwatch wait;
  {
    SQPR_TRACE_SPAN("service/round.barrier");
    flight.latch->Wait();
  }
  const double barrier_wall_ms = wait.ElapsedMillis();
  SampleStage(&stats_.barrier_ms, barrier_wall_ms,
              options_.watchdog.barrier_budget_ms,
              &stats_.barrier_budget_breaches);

  ++stats_.replan_rounds;
  // Canonical round sequencing: a round that commits with at least one
  // un-departed query consumes the next sequence number. Rounds whose
  // every query departed in flight exist only at depth > 1 (depth 1
  // discards them in the scheduler before dispatch), so they must not
  // number — the journal's round column stays depth-invariant.
  std::vector<int64_t> live;
  for (StreamId q : flight.queries) {
    if (flight.discards.count(q) == 0) live.push_back(q);
  }
  int64_t round_seq = -1;
  obs::AuditRecord round_r;
  if (AuditOn() && !live.empty()) {
    round_seq = audit_round_seq_++;
    round_r = AuditBase("replan.round");
    round_r.round = round_seq;
    round_r.detail = static_cast<int64_t>(live.size());
    round_r.streams = live;
    round_r.dispatch_id = flight.id;
    round_r.commit_ms = barrier_wall_ms;
    AuditFingerprint(&round_r, /*post=*/false);
  }
  for (size_t i = 0; i < flight.queries.size(); ++i) {
    const StreamId q = flight.queries[i];
    const Result<AdmissionProposal>& proposal = (*flight.proposals)[i];
    if (flight.discards.count(q) > 0) {
      // Departed after dispatch: drop the proposal — the async twin of
      // the scheduler discard a depth-1 service performed directly (and
      // audited there), hence speculative here.
      if (AuditOn()) {
        obs::AuditRecord r = AuditBase("replan.discard");
        r.speculative = true;
        r.query = q;
        r.dispatch_id = flight.id;
        AuditAppend(std::move(r));
      }
      continue;
    }

    bool resolved = false;
    bool admitted = false;
    bool solve_failed = false;
    double solve_wall_ms = -1.0;
    double commit_wall_ms = -1.0;
    if (proposal.ok()) {
      solve_wall_ms = proposal->stats.wall_ms;
      SampleStage(&stats_.solve_ms, solve_wall_ms,
                  options_.watchdog.solve_budget_ms,
                  &stats_.solve_budget_breaches);
      Stopwatch commit_watch;
      Result<PlanningStats> committed = planner_.CommitProposal(*proposal);
      commit_wall_ms = commit_watch.ElapsedMillis();
      SampleStage(&stats_.commit_ms, commit_wall_ms,
                  options_.watchdog.commit_budget_ms,
                  &stats_.commit_budget_breaches);
      if (committed.ok()) {
        resolved = true;
        CountSolveStats(*committed);
        AuditDeadlineBreach(q, *committed);
        admitted = committed->admitted;
        if (admitted && !committed->already_served) {
          MarkCacheDelta(proposal->delta);
        }
      } else if (!committed.status().IsFailedPrecondition()) {
        // Hard error (malformed input) — mirrors an inline solve error.
        SQPR_LOG_WARN << "committing proposal for query " << q
                      << " failed: " << committed.status().ToString();
        resolved = true;
        solve_failed = true;
      }
      // FailedPrecondition: the strict version gate found the committed
      // state structurally diverged from the proposal's base — an
      // arrival, a departure with fallout, an earlier commit in this
      // round, or (depth > 1) a whole older round committed since this
      // round's snapshot. Fall through to a synchronous re-solve
      // against the live state — still deterministic, since it depends
      // only on the commit order, and warm: the model cache and the
      // artifacts installed by whichever commit caused the conflict
      // are exactly the structures the retry re-solves against.
    } else {
      SQPR_LOG_WARN << "speculative solve for query " << q
                    << " failed: " << proposal.status().ToString();
      resolved = true;
      solve_failed = true;
    }

    if (!resolved) {
      ++stats_.commit_conflicts;
      // Conflict counts are depth-variant (deeper pipelines speculate
      // across more uncommitted state), so the record is speculative;
      // the resolution below lands in the canonical per-query record.
      if (AuditOn()) {
        obs::AuditRecord r = AuditBase("replan.conflict");
        r.speculative = true;
        r.query = q;
        r.round = round_seq;
        r.dispatch_id = flight.id;
        AuditAppend(std::move(r));
      }
      Result<PlanningStats> stats =
          Admit(q, nullptr, /*overlapped_arrival=*/false);
      admitted = stats.ok() && stats->admitted;
      solve_failed = !stats.ok();
      if (stats.ok()) solve_wall_ms = stats->wall_ms;
    }

    if (admitted) {
      ++outcome->replanned_admitted;
      ++stats_.replanned_admitted;
    } else {
      ++outcome->replanned_rejected;
      ++stats_.replanned_rejected;
      if (!solve_failed) RememberRejected(q);
    }

    if (AuditOn()) {
      obs::AuditRecord r = AuditBase(admitted ? "replan.admit"
                                    : solve_failed ? "replan.fail"
                                                   : "replan.reject");
      r.query = q;
      r.round = round_seq;
      r.solve_ms = solve_wall_ms;
      r.commit_ms = commit_wall_ms;
      r.dispatch_id = flight.id;
      AuditAppend(std::move(r));
    }
  }
  if (AuditOn() && !live.empty()) {
    AuditFingerprint(&round_r, /*post=*/true);
    AuditAppend(std::move(round_r));
  }
}

void PlanningService::UnwindYoungestRound() {
  InFlightRound flight = std::move(inflight_.back());
  inflight_.pop_back();

  SQPR_TRACE_SPAN_ARGS(span, "service/round.unwind", "round", "queries");
  Stopwatch wait;
  {
    // The proposals are dropped unread, but the solves must still
    // quiesce: workers read the shared catalog, and the barrier handler
    // about to run rewrites published entries in place
    // (Catalog::UpdateBaseRate, host spec swaps).
    SQPR_TRACE_SPAN("service/round.barrier");
    flight.latch->Wait();
  }
  SampleStage(&stats_.barrier_ms, wait.ElapsedMillis(),
              options_.watchdog.barrier_budget_ms,
              &stats_.barrier_budget_breaches);

  std::vector<StreamId> requeue;
  requeue.reserve(flight.queries.size());
  for (StreamId q : flight.queries) {
    if (flight.discards.count(q) == 0) requeue.push_back(q);
  }
  span.set_args(flight.id, requeue.size());
  if (AuditOn()) {
    obs::AuditRecord r = AuditBase("round.unwind");
    r.speculative = true;
    r.detail = static_cast<int64_t>(requeue.size());
    r.dispatch_id = flight.id;
    r.streams.assign(requeue.begin(), requeue.end());
    AuditAppend(std::move(r));
  }
  // Front of the scheduler, as one group: the next dispatch pops this
  // exact round again. Discarded (departed) queries stay out, matching
  // the scheduler discard a depth-1 service performed directly.
  scheduler_.Requeue(requeue);
  ++stats_.round_unwinds;
}

void PlanningService::RetireAllRounds(EventOutcome* outcome) {
  // The oldest round's pinned commit point coincides with the barrier,
  // so it commits; every younger round is ahead of its point and
  // unwinds instead. Committing them here would move their solves
  // before the barrier's rate/spec installation — state depth 1 only
  // lets them see *after* it — breaking cross-depth bit-identity.
  // Unwinding youngest-first stacks the requeued groups so the oldest
  // unwound round ends up frontmost, preserving FIFO order.
  CommitOldestRound(outcome);
  while (!inflight_.empty()) {
    UnwindYoungestRound();
  }
}

Event PlanningService::MonitorReportFromSim(int64_t time_ms,
                                            const SimReport& report) const {
  std::map<StreamId, double> base_rates;
  for (const auto& [s, rate] : report.measured_rate_mbps) {
    if (s >= 0 && s < catalog_->num_streams() &&
        catalog_->stream(s).is_base) {
      base_rates[s] = rate;
    }
  }
  return Event::MonitorReport(time_ms, std::move(base_rates),
                              report.cpu_utilization);
}

}  // namespace sqpr
