#include "service/planning_service.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/deadline.h"
#include "common/logging.h"
#include "plan/query_plan.h"

namespace sqpr {

std::string EventOutcome::ToString(const Catalog& catalog) const {
  std::string out = event.ToString();
  if (event.kind == EventKind::kQueryArrival) {
    if (event.query >= 0 && event.query < catalog.num_streams() &&
        !catalog.stream(event.query).name.empty()) {
      out += " (" + catalog.stream(event.query).name + ")";
    }
    out += already_served ? " dedup"
           : admitted     ? (via_cache ? " admit[cache]" : " admit")
                          : " reject";
    if (reuse_candidates > 0) {
      out += " reuse-candidates=" + std::to_string(reuse_candidates);
    }
  }
  if (evicted > 0) out += " evicted=" + std::to_string(evicted);
  if (replanned_admitted + replanned_rejected > 0) {
    out += " replanned=" + std::to_string(replanned_admitted) + "/" +
           std::to_string(replanned_admitted + replanned_rejected);
  }
  return out;
}

PlanningService::PlanningService(Cluster* cluster, Catalog* catalog,
                                 ServiceOptions options)
    : cluster_(cluster),
      catalog_(catalog),
      options_(options),
      planner_(cluster, catalog, options.planner),
      monitor_(catalog, options.drift),
      cache_(catalog),
      scheduler_(options.replan) {
  SQPR_CHECK(cluster != nullptr && catalog != nullptr);
}

Status PlanningService::Enqueue(Event event) {
  if (event.time_ms < clock_.now_ms()) {
    return Status::InvalidArgument(
        "event at t=" + std::to_string(event.time_ms) +
        " is before the virtual clock (t=" + std::to_string(clock_.now_ms()) +
        ")");
  }
  queue_.Push(std::move(event));
  return Status::OK();
}

bool PlanningService::HostActive(HostId h) const {
  return h >= 0 && h < cluster_->num_hosts() && failed_hosts_.count(h) == 0;
}

Result<EventOutcome> PlanningService::Step() {
  if (queue_.empty()) {
    return Status::FailedPrecondition("no pending events");
  }
  Stopwatch watch;
  Event event = queue_.Pop();
  clock_.AdvanceTo(event.time_ms);

  EventOutcome outcome;
  outcome.event = event;
  ++stats_.events;

  Status st;
  switch (event.kind) {
    case EventKind::kQueryArrival:
      HandleArrival(event, &outcome);
      break;
    case EventKind::kQueryDeparture:
      HandleDeparture(event, &outcome);
      break;
    case EventKind::kHostFailure:
      st = HandleHostFailure(event, &outcome);
      break;
    case EventKind::kHostJoin:
      st = HandleHostJoin(event, &outcome);
      break;
    case EventKind::kMonitorReport:
      st = HandleMonitorReport(event, &outcome);
      break;
    case EventKind::kTick:
      ++stats_.ticks;
      break;
  }
  if (!st.ok()) return st;

  // Every event ends with bounded re-admission work, so fallout queued
  // by failures and drift reports drains steadily without ever letting
  // one event monopolise the loop.
  DrainReplanRounds(&outcome);

  // One reuse-index rebuild per mutating event, not per mutation.
  if (options_.use_plan_cache && cache_dirty_) {
    cache_.Rebuild(deployment());
    cache_dirty_ = false;
  }

  outcome.wall_ms = watch.ElapsedMillis();
  stats_.total_wall_ms += outcome.wall_ms;
  stats_.max_event_ms = std::max(stats_.max_event_ms, outcome.wall_ms);
  return outcome;
}

Status PlanningService::RunUntilIdle(std::vector<EventOutcome>* outcomes) {
  while (HasPendingEvents()) {
    Result<EventOutcome> outcome = Step();
    if (!outcome.ok()) return outcome.status();
    if (outcomes != nullptr) outcomes->push_back(std::move(*outcome));
  }
  return Status::OK();
}

Result<PlanningStats> PlanningService::Admit(StreamId query,
                                             int* reuse_candidates) {
  if (query < 0 || query >= catalog_->num_streams()) {
    return Status::InvalidArgument("unknown stream " + std::to_string(query));
  }

  if (options_.use_plan_cache) {
    PlanCache::Lookup lookup = cache_.OnArrival(query);
    if (reuse_candidates != nullptr) {
      *reuse_candidates = static_cast<int>(lookup.partial.size());
    }
    if (lookup.exact && !lookup.served) {
      // Materialised but unserved: admission is one serving arc. The
      // planner tries the grounded hosts in order over one availability
      // fixpoint; capacity misses fall through to the solver, which may
      // still admit by re-routing.
      Result<PlanningStats> fast =
          planner_.AdmitMaterialized(query, lookup.exact_hit.hosts);
      if (fast.ok()) {
        cache_dirty_ = true;
        return fast;
      }
      if (fast.status().IsInvalidArgument()) return fast.status();
    }
    // Served streams fall through to SubmitQuery's dedup short-circuit,
    // which is authoritative and O(log n).
  }

  Result<PlanningStats> stats = planner_.SubmitQuery(query);
  if (stats.ok() && stats->admitted && !stats->already_served) {
    cache_dirty_ = true;
  }
  return stats;
}

void PlanningService::RememberRejected(StreamId query) {
  if (!options_.retry_rejected_on_join) return;
  if (std::find(rejected_recently_.begin(), rejected_recently_.end(),
                query) != rejected_recently_.end()) {
    return;
  }
  rejected_recently_.push_back(query);
  while (static_cast<int>(rejected_recently_.size()) >
         std::max(0, options_.max_rejected_remembered)) {
    rejected_recently_.pop_front();
  }
}

void PlanningService::HandleArrival(const Event& event,
                                    EventOutcome* outcome) {
  ++stats_.arrivals;
  Result<PlanningStats> stats = Admit(event.query, &outcome->reuse_candidates);
  if (!stats.ok()) {
    SQPR_LOG_WARN << "arrival of query " << event.query
                  << " failed: " << stats.status().ToString();
    ++stats_.rejected;
    return;
  }
  outcome->admitted = stats->admitted;
  outcome->already_served = stats->already_served;
  outcome->via_cache = stats->via_cache;
  if (stats->already_served) {
    ++stats_.dedup_hits;
    ++stats_.admitted;
  } else if (stats->admitted) {
    ++stats_.admitted;
    if (stats->via_cache) ++stats_.cache_fast_path;
  } else {
    ++stats_.rejected;
    RememberRejected(event.query);
  }
}

void PlanningService::HandleDeparture(const Event& event,
                                      EventOutcome* outcome) {
  (void)outcome;
  ++stats_.departures;
  scheduler_.Discard(event.query);
  auto it = std::find(rejected_recently_.begin(), rejected_recently_.end(),
                      event.query);
  if (it != rejected_recently_.end()) rejected_recently_.erase(it);

  const Status st = planner_.RemoveQuery(event.query);
  if (st.IsNotFound()) return;  // never admitted (or already departed)
  if (!st.ok() && !st.IsResourceExhausted()) {
    SQPR_LOG_WARN << "departure of query " << event.query
                  << " failed: " << st.ToString();
    return;
  }
  cache_dirty_ = true;
}

Status PlanningService::HandleHostFailure(const Event& event,
                                          EventOutcome* outcome) {
  ++stats_.host_failures;
  const HostId h = event.host;
  if (h < 0 || h >= cluster_->num_hosts()) {
    return Status::InvalidArgument("unknown host " + std::to_string(h));
  }
  if (failed_hosts_.count(h) > 0) return Status::OK();  // already down

  // Zero the budgets first so every constraint (and the post-removal
  // audits) immediately sees the host as unusable, then clear its
  // fallout. Operators and flows indexed by HostId stay addressable.
  HostSpec dead;
  dead.cpu = 0.0;
  dead.nic_out_mbps = 0.0;
  dead.nic_in_mbps = 0.0;
  dead.mem_mb = 0.0;
  dead.name = cluster_->host(h).name;
  failed_hosts_[h] = cluster_->host(h);
  cluster_->SetHostSpec(h, dead);

  Result<std::vector<StreamId>> evicted = planner_.EvictHost(h);
  if (!evicted.ok()) return evicted.status();
  for (StreamId q : *evicted) {
    scheduler_.Enqueue(q);
    ++outcome->evicted;
    ++stats_.evictions;
  }
  cache_dirty_ = true;
  return Status::OK();
}

Status PlanningService::HandleHostJoin(const Event& event,
                                       EventOutcome* outcome) {
  (void)outcome;
  ++stats_.host_joins;
  const HostId h = event.host;
  if (h < 0 || h >= cluster_->num_hosts()) {
    return Status::InvalidArgument("unknown host " + std::to_string(h));
  }
  auto it = failed_hosts_.find(h);
  if (it == failed_hosts_.end()) return Status::OK();  // already active
  cluster_->SetHostSpec(h, it->second);
  failed_hosts_.erase(it);

  // Fresh capacity: give recently rejected queries another chance
  // through the bounded rounds.
  if (options_.retry_rejected_on_join) {
    for (StreamId q : rejected_recently_) scheduler_.Enqueue(q);
    rejected_recently_.clear();
  }
  return Status::OK();
}

Status PlanningService::HandleMonitorReport(const Event& event,
                                            EventOutcome* outcome) {
  ++stats_.monitor_reports;
  const DriftReport report =
      monitor_.Analyze(event.measured_base_rates, event.cpu_utilization,
                       planner_.admitted_queries(), &deployment());

  // Note: steps 2 and 3 run even when the report flags nothing —
  // sub-threshold measurements are still installed (matching
  // AdaptiveReplan), so estimates converge instead of sitting
  // permanently just under the drift threshold.

  // §IV-B step 1: remove the affected queries (deduplicated by Analyze)
  // and queue them for bounded re-admission. Mid-cycle the ledgers may
  // legitimately over-commit, so ResourceExhausted is tolerated.
  for (StreamId q : report.queries_to_replan) {
    const Status st = planner_.RemoveQuery(q);
    if (st.IsNotFound()) continue;
    if (!st.ok() && !st.IsResourceExhausted()) return st;
    scheduler_.Enqueue(q);
    ++outcome->evicted;
    ++stats_.evictions;
  }

  // Step 2: install the measured base rates; composite rates and
  // operator costs recompute exactly, then the ledgers are rebuilt.
  for (const auto& [s, rate] : event.measured_base_rates) {
    if (s >= 0 && s < catalog_->num_streams() &&
        catalog_->stream(s).is_base && rate > 0 &&
        std::abs(rate - catalog_->stream(s).rate_mbps) > 1e-12) {
      SQPR_RETURN_IF_ERROR(catalog_->UpdateBaseRate(s, rate));
    }
  }
  planner_.RefreshAccounting();

  // Step 3: under the corrected costs the committed state may exceed a
  // budget (§IV-B condition (b)) — evict queries touching the offending
  // host until every ledger fits again.
  while (true) {
    const HostId h = FirstOverBudgetHost(deployment(), 1e-6);
    if (h == kInvalidHost) break;
    StreamId victim = kInvalidStream;
    for (StreamId q : planner_.admitted_queries()) {
      if (PlanUsesHost(deployment(), q, h)) {
        victim = q;
        break;
      }
    }
    if (victim != kInvalidStream) {
      const Status st = planner_.RemoveQuery(victim);
      if (!st.ok() && !st.IsResourceExhausted() && !st.IsNotFound()) {
        return st;
      }
      scheduler_.Enqueue(victim);
      ++outcome->evicted;
      ++stats_.evictions;
      continue;
    }
    // No extractable plan touches the host: the usage is redundant
    // support — purge it.
    Result<std::vector<StreamId>> purged = planner_.EvictHost(h);
    if (!purged.ok()) return purged.status();
    for (StreamId q : *purged) {
      scheduler_.Enqueue(q);
      ++outcome->evicted;
      ++stats_.evictions;
    }
    if (FirstOverBudgetHost(deployment(), 1e-6) == h) {
      return Status::Internal("host " + std::to_string(h) +
                              " over budget with nothing left to evict");
    }
  }
  // Rate updates alone do not change groundedness, so the cache only
  // goes stale when queries were actually removed.
  if (outcome->evicted > 0) cache_dirty_ = true;
  return Status::OK();
}

void PlanningService::DrainReplanRounds(EventOutcome* outcome) {
  const int max_rounds = std::max(1, options_.replan.max_rounds_per_event);
  for (int round = 0; round < max_rounds && scheduler_.HasPending();
       ++round) {
    ++stats_.replan_rounds;
    for (StreamId q : scheduler_.NextRound()) {
      Result<PlanningStats> stats = Admit(q, nullptr);
      if (stats.ok() && stats->admitted) {
        ++outcome->replanned_admitted;
        ++stats_.replanned_admitted;
      } else {
        ++outcome->replanned_rejected;
        ++stats_.replanned_rejected;
        if (stats.ok()) RememberRejected(q);
      }
    }
  }
}

Event PlanningService::MonitorReportFromSim(int64_t time_ms,
                                            const SimReport& report) const {
  std::map<StreamId, double> base_rates;
  for (const auto& [s, rate] : report.measured_rate_mbps) {
    if (s >= 0 && s < catalog_->num_streams() &&
        catalog_->stream(s).is_base) {
      base_rates[s] = rate;
    }
  }
  return Event::MonitorReport(time_ms, std::move(base_rates),
                              report.cpu_utilization);
}

}  // namespace sqpr
